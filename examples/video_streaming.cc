// Video streaming: the multimedia workload the paper's conclusion argues
// FMTCP suits ("suitable for multimedia transportation and real-time
// applications with low delay and jitter").
//
// Each 10 KB block is treated as one video frame. A frame is useful only
// if its delivery delay fits the receiver's playout buffer; we compare
// FMTCP and IETF-MPTCP on late-frame ratio across playout budgets while
// one network path is a flaky wireless link.
#include <cstdio>

#include "harness/printer.h"
#include "harness/runner.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

double late_ratio(const std::vector<double>& delays_ms, double budget_ms) {
  if (delays_ms.empty()) return 1.0;
  std::size_t late = 0;
  for (double d : delays_ms) {
    if (d > budget_ms) ++late;
  }
  return static_cast<double>(late) / static_cast<double>(delays_ms.size());
}

}  // namespace

int main() {
  // Wired path (clean) + flaky wireless path (12% loss, shorter delay).
  Scenario scenario;
  scenario.path1 = {100.0, 0.0};
  scenario.path2 = {40.0, 0.12};
  scenario.duration = 120 * kSecond;
  scenario.seed = 7;

  const RunResult fmtcp_run = run_scenario(Protocol::kFmtcp, scenario);
  const RunResult mptcp_run = run_scenario(Protocol::kMptcp, scenario);

  print_header("Video streaming over wired + flaky wireless");
  std::printf("frames delivered: FMTCP %llu, MPTCP %llu (120 s)\n",
              static_cast<unsigned long long>(fmtcp_run.blocks_completed),
              static_cast<unsigned long long>(mptcp_run.blocks_completed));
  std::printf("frame delay:      FMTCP %.0f ms mean / %.0f ms jitter, "
              "MPTCP %.0f ms mean / %.0f ms jitter\n\n",
              fmtcp_run.mean_delay_ms, fmtcp_run.jitter_ms,
              mptcp_run.mean_delay_ms, mptcp_run.jitter_ms);

  std::vector<std::vector<std::string>> rows;
  for (double budget : {300.0, 400.0, 500.0, 750.0, 1000.0}) {
    rows.push_back(
        {fmt(budget, 0),
         fmt(late_ratio(fmtcp_run.block_delays_ms, budget) * 100, 2),
         fmt(late_ratio(mptcp_run.block_delays_ms, budget) * 100, 2)});
  }
  print_table({"playout budget(ms)", "FMTCP late(%)", "MPTCP late(%)"},
              rows);

  std::printf(
      "\nA smaller playout buffer means lower glass-to-glass latency; "
      "FMTCP's flat per-frame delay keeps frames inside tight budgets "
      "where MPTCP's loss-driven spikes miss them.\n");
  return 0;
}
