// Bulk file transfer: move a fixed-size file over two heterogeneous
// paths with each protocol and compare completion times. Uses the
// finite-transfer mode of each sender (total_blocks / total_bytes).
#include <cstdio>

#include "baselines/fixed_rate.h"
#include "baselines/hmtp.h"
#include "core/connection.h"
#include "harness/printer.h"
#include "mptcp/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

constexpr std::uint64_t kFileBytes = 5 * 1000 * 1000;  // 5 MB.
constexpr std::uint32_t kBlockSymbols = 64;
constexpr std::size_t kSymbolBytes = 160;
constexpr std::uint64_t kFileBlocks =
    kFileBytes / (kBlockSymbols * kSymbolBytes);

net::PathConfig make_path(double delay_ms, double loss) {
  net::PathConfig config;
  config.one_way_delay = from_seconds(delay_ms / 1e3);
  config.loss_rate = loss;
  config.bandwidth_Bps = 0.625e6;
  config.queue_packets = 100;
  return config;
}

core::FmtcpParams coded_params() {
  core::FmtcpParams params;
  params.block_symbols = kBlockSymbols;
  params.symbol_bytes = kSymbolBytes;
  params.total_blocks = kFileBlocks;
  params.max_pending_blocks = 128;
  return params;
}

tcp::SubflowConfig subflow_config() {
  tcp::SubflowConfig config;
  config.mss_payload = 7 * coded_params().symbol_wire_bytes();
  config.rtt.max_rto = 4 * kSecond;
  return config;
}

/// Runs until `done()` or the deadline; returns completion seconds or -1.
template <typename DoneFn>
double run_to_completion(sim::Simulator& simulator, DoneFn done) {
  const SimTime deadline = 600 * kSecond;
  while (simulator.now() < deadline) {
    if (done()) return to_seconds(simulator.now());
    simulator.run_until(simulator.now() + kSecond);
  }
  return -1.0;
}

}  // namespace

int main() {
  print_header("Bulk transfer: 5 MB over 100ms/clean + 100ms/10% paths");
  std::vector<std::vector<std::string>> rows;

  {
    sim::Simulator simulator(3);
    net::Topology topology(simulator,
                           {make_path(100, 0.0), make_path(100, 0.1)});
    core::FmtcpConnectionConfig config;
    config.params = coded_params();
    config.subflow = subflow_config();
    core::FmtcpConnection connection(simulator, topology, config);
    connection.start();
    const double seconds = run_to_completion(simulator, [&] {
      return connection.receiver().blocks_delivered() >= kFileBlocks;
    });
    rows.push_back({"FMTCP", fmt(seconds, 1),
                    connection.receiver().payload_verified() ? "yes" : "NO"});
  }
  {
    sim::Simulator simulator(3);
    net::Topology topology(simulator,
                           {make_path(100, 0.0), make_path(100, 0.1)});
    mptcp::MptcpConnectionConfig config;
    config.sender.segment_bytes = subflow_config().mss_payload;
    config.sender.total_bytes = kFileBytes;
    config.subflow = subflow_config();
    mptcp::MptcpConnection connection(simulator, topology, config);
    connection.start();
    const double seconds = run_to_completion(simulator, [&] {
      return connection.receiver().delivered_bytes() >= kFileBytes;
    });
    rows.push_back({"IETF-MPTCP", fmt(seconds, 1), "n/a"});
  }
  {
    sim::Simulator simulator(3);
    net::Topology topology(simulator,
                           {make_path(100, 0.0), make_path(100, 0.1)});
    baselines::HmtpConnectionConfig config;
    config.params = coded_params();
    config.subflow = subflow_config();
    baselines::HmtpConnection connection(simulator, topology, config);
    connection.start();
    const double seconds = run_to_completion(simulator, [&] {
      return connection.receiver().blocks_delivered() >= kFileBlocks;
    });
    rows.push_back({"HMTP", fmt(seconds, 1),
                    connection.receiver().payload_verified() ? "yes" : "NO"});
  }
  {
    sim::Simulator simulator(3);
    net::Topology topology(simulator,
                           {make_path(100, 0.0), make_path(100, 0.1)});
    baselines::FixedRateConnectionConfig config;
    config.params.block_symbols = kBlockSymbols;
    config.params.symbol_bytes = kSymbolBytes;
    config.params.total_blocks = kFileBlocks;
    config.params.assumed_loss = 0.02;
    config.subflow = subflow_config();
    baselines::FixedRateConnection connection(simulator, topology, config);
    connection.start();
    const double seconds = run_to_completion(simulator, [&] {
      return connection.receiver().blocks_delivered() >= kFileBlocks;
    });
    rows.push_back({"FixedRate", fmt(seconds, 1), "n/a"});
  }

  print_table({"protocol", "completion(s)", "payload verified"}, rows);
  std::printf("\n(-1 means the 600 s deadline was hit before completion "
              "- expected for HMTP's stop-and-wait.)\n");
  return 0;
}
