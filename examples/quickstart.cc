// Quickstart: one FMTCP connection over two heterogeneous paths.
//
// Builds the paper's two-disjoint-path topology (a clean 100 ms path and
// a lossy one), streams data for 30 simulated seconds, and prints the
// goodput and block-delay metrics. Start here to see the public API:
//   Simulator -> Topology -> FmtcpConnection -> run -> metrics.
#include <cstdio>

#include "core/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

using namespace fmtcp;

int main() {
  // 1. One Simulator per run; the seed fixes every random draw.
  sim::Simulator simulator(/*seed=*/1);

  // 2. Two disjoint paths: path 1 clean, path 2 lossy.
  net::PathConfig path1;
  path1.one_way_delay = from_ms(100);
  path1.loss_rate = 0.0;
  path1.bandwidth_Bps = 0.625e6;  // 5 Mb/s.

  net::PathConfig path2 = path1;
  path2.loss_rate = 0.10;

  net::Topology topology(simulator, {path1, path2});

  // 3. FMTCP connection: fountain-coded blocks of 64 x 160 B symbols,
  //    delta-hat = 5% decoding-failure threshold.
  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 64;
  config.params.symbol_bytes = 160;
  config.params.delta_hat = 0.05;
  config.subflow.mss_payload = 7 * config.params.symbol_wire_bytes();

  core::FmtcpConnection connection(simulator, topology, config);
  connection.start();

  // 4. Run 30 simulated seconds.
  simulator.run_until(30 * kSecond);

  // 5. Read the metrics.
  std::printf("delivered:   %llu blocks (%.2f MB), all in order\n",
              static_cast<unsigned long long>(
                  connection.receiver().blocks_delivered()),
              static_cast<double>(connection.goodput().total_bytes()) / 1e6);
  std::printf("goodput:     %.3f MB/s\n",
              connection.goodput().mean_rate_MBps(30 * kSecond));
  std::printf("block delay: %.1f ms mean, %.1f ms jitter\n",
              connection.block_delays().mean_delay_ms(),
              connection.block_delays().jitter_ms());
  std::printf("payload:     %s\n", connection.receiver().payload_verified()
                                       ? "verified byte-exact"
                                       : "CORRUPT");
  std::printf("per subflow: path1 sent %llu segments, path2 sent %llu\n",
              static_cast<unsigned long long>(
                  connection.subflow(0).segments_sent()),
              static_cast<unsigned long long>(
                  connection.subflow(1).segments_sent()));
  return 0;
}
