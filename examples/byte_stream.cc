// Byte-stream API: carry real application bytes (not synthetic blocks)
// over FMTCP, with an application that trickles data in while the
// connection runs — the closest example to how a downstream user would
// embed the library.
#include <cstdio>
#include <string>

#include "core/connection.h"
#include "core/stream.h"
#include "net/topology.h"
#include "sim/simulator.h"

using namespace fmtcp;

int main() {
  sim::Simulator simulator(7);

  net::PathConfig path1;
  path1.one_way_delay = from_ms(100);
  path1.bandwidth_Bps = 0.625e6;
  net::PathConfig path2 = path1;
  path2.one_way_delay = from_ms(40);
  path2.loss_rate = 0.10;
  net::Topology topology(simulator, {path1, path2});

  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 64;
  config.params.symbol_bytes = 160;
  config.subflow.mss_payload = 7 * config.params.symbol_wire_bytes();

  // Application plumbing: a writer feeding blocks, a reader emitting the
  // byte stream on arrival.
  core::FmtcpStreamWriter writer(config.params.block_symbols,
                                 config.params.symbol_bytes);
  std::string received;
  core::FmtcpStreamReader reader(
      [&](const std::uint8_t* data, std::size_t size) {
        received.append(reinterpret_cast<const char*>(data), size);
      });
  config.source = &writer;
  config.block_sink = &reader;

  core::FmtcpConnection connection(simulator, topology, config);
  writer.attach(&connection.sender());
  connection.start();

  // The "application": a log producer writing one record every 50 ms
  // for 20 seconds, flushing once per second so records ship with
  // bounded latency instead of waiting for a 10 KB block to fill.
  std::string sent;
  for (int i = 0; i < 400; ++i) {
    simulator.schedule_at(i * from_ms(50), [&, i] {
      char record[64];
      std::snprintf(record, sizeof(record),
                    "record %04d at t=%.2fs: sensor=%d\n", i,
                    to_seconds(simulator.now()), (i * 37) % 100);
      sent += record;
      writer.write(record);
      if (i % 20 == 19) writer.flush();
    });
  }
  simulator.schedule_at(20 * kSecond + kMillisecond,
                        [&] { writer.close(); });
  simulator.run_until(40 * kSecond);

  std::printf("sent:     %zu bytes in 400 records over 20 s\n",
              sent.size());
  std::printf("received: %zu bytes, %s\n", received.size(),
              received == sent ? "byte-identical" : "MISMATCH");
  std::printf("blocks:   %llu delivered in order, framing %s\n",
              static_cast<unsigned long long>(reader.blocks_received()),
              reader.framing_ok() ? "ok" : "BROKEN");
  std::printf("\nfirst record:  %s", received.substr(0, 40).c_str());
  std::printf("last record:   %s",
              received.substr(received.rfind("record")).c_str());
  return 0;
}
