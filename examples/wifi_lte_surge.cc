// WiFi + LTE with an interference burst: the Fig. 4 scenario as an
// application story. A phone streams over WiFi (path 2) and LTE
// (path 1); at t=50 s the WiFi link degrades badly (e.g. microwave
// interference), recovering at t=200 s. The example prints a minute-by-
// minute goodput timeline showing FMTCP riding through the burst while
// IETF-MPTCP's head-of-line blocking drags the whole connection down.
#include <cstdio>

#include "harness/printer.h"
#include "harness/runner.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main() {
  Scenario scenario;
  scenario.path1 = {60.0, 0.0};    // LTE: higher delay, clean.
  scenario.path2 = {20.0, 0.01};   // WiFi: low delay, mostly clean.
  scenario.duration = 300 * kSecond;
  scenario.seed = 21;
  scenario.path2_loss_schedule = {
      {0, 0.01}, {50 * kSecond, 0.30}, {200 * kSecond, 0.01}};

  ProtocolOptions options = ProtocolOptions::defaults();
  // Size the receive buffer to the sum of both paths' BDPs; with the
  // default 128 KB the LTE subflow's window alone fills it and starves
  // WiFi outright (an interesting failure, but not this example's story).
  options.mptcp_receive_buffer = 256 * 1024;

  const RunResult fmtcp_run =
      run_scenario(Protocol::kFmtcp, scenario, options);
  const RunResult mptcp_run =
      run_scenario(Protocol::kMptcp, scenario, options);

  print_header("WiFi interference burst (30% loss during [50s,200s))");
  std::vector<std::vector<std::string>> rows;
  const auto& f = fmtcp_run.goodput_series_MBps;
  const auto& m = mptcp_run.goodput_series_MBps;
  for (std::size_t start = 0; start < 300; start += 30) {
    double f_sum = 0.0;
    double m_sum = 0.0;
    std::size_t n = 0;
    for (std::size_t t = start; t < start + 30; ++t, ++n) {
      if (t < f.size()) f_sum += f[t];
      if (t < m.size()) m_sum += m[t];
    }
    const bool in_burst = start >= 30 && start < 200;
    rows.push_back({std::to_string(start) + "-" +
                        std::to_string(start + 30) + "s",
                    in_burst ? "burst" : "clean",
                    fmt(f_sum / static_cast<double>(n), 3),
                    fmt(m_sum / static_cast<double>(n), 3)});
  }
  print_table({"window", "wifi state", "FMTCP(MB/s)", "MPTCP(MB/s)"}, rows);

  std::printf("\ntotals over 300 s: FMTCP %.2f MB, MPTCP %.2f MB\n",
              static_cast<double>(fmtcp_run.delivered_bytes) / 1e6,
              static_cast<double>(mptcp_run.delivered_bytes) / 1e6);
  return 0;
}
