// Standalone fountain-codec demo: uses the coding library without any
// networking. Encodes a block, simulates an erasure channel, decodes,
// and reports the redundancy — then does the same with the GF(256) RLC
// ablation and the sparse LT codec extension.
#include <cstdio>

#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/gf256_kernels.h"
#include "fountain/gf256_rlc.h"
#include "fountain/lt_codec.h"
#include "fountain/random_linear.h"

using namespace fmtcp;
using namespace fmtcp::fountain;

int main() {
  const std::uint32_t k = 64;
  const std::size_t symbol_bytes = 160;
  const double channel_loss = 0.2;

  Rng rng(2024);
  const BlockData original = make_deterministic_block(7, k, symbol_bytes);

  std::printf("block: %u symbols x %zu bytes = %zu bytes\n", k,
              symbol_bytes, original.total_bytes());
  std::printf("channel: %.0f%% i.i.d. erasures\n\n", channel_loss * 100);

  // --- Dense random linear fountain (the FMTCP code, paper Eq. 1). ---
  {
    RandomLinearEncoder encoder(7, original, rng.fork());
    BlockDecoder decoder(k, symbol_bytes, /*track_data=*/true);
    Rng channel = rng.fork();
    std::uint64_t sent = 0;
    std::uint64_t erased = 0;
    while (!decoder.complete()) {
      const net::EncodedSymbol symbol = encoder.next_symbol();
      ++sent;
      if (channel.bernoulli(channel_loss)) {
        ++erased;
        continue;
      }
      decoder.add_symbol(symbol);
    }
    const bool ok = decoder.decode().bytes() == original.bytes();
    std::printf("random linear fountain:\n");
    std::printf("  sent %llu symbols (%llu erased, %llu redundant)\n",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(erased),
                static_cast<unsigned long long>(decoder.redundant_count()));
    std::printf("  received %llu, rank %u/%u, decode %s\n",
                static_cast<unsigned long long>(decoder.received_count()),
                decoder.rank(), k, ok ? "byte-exact" : "FAILED");
    std::printf("  overhead beyond k/(1-p): %.1f%%\n\n",
                100.0 * (static_cast<double>(sent) /
                             (k / (1.0 - channel_loss)) -
                         1.0));
  }

  // --- Dense GF(256) RLC (CTCP-style ablation, gf256_rlc.h). ---
  {
    Gf256RlcEncoder encoder(7, original, rng.fork());
    Gf256RlcDecoder decoder(k, symbol_bytes, /*track_data=*/true);
    Rng channel = rng.fork();
    std::uint64_t sent = 0;
    std::uint64_t erased = 0;
    while (!decoder.complete()) {
      net::EncodedSymbol symbol = encoder.next_symbol();
      ++sent;
      if (channel.bernoulli(channel_loss)) {
        ++erased;
        continue;
      }
      decoder.add_symbol(std::move(symbol));
    }
    const bool ok = decoder.decode().bytes() == original.bytes();
    std::printf("GF(256) random linear (kernel: %s):\n",
                gf256_kernel().name);
    std::printf("  sent %llu symbols (%llu erased, %llu redundant)\n",
                static_cast<unsigned long long>(sent),
                static_cast<unsigned long long>(erased),
                static_cast<unsigned long long>(decoder.redundant_count()));
    std::printf("  received %llu, rank %u/%u, decode %s\n",
                static_cast<unsigned long long>(decoder.received_count()),
                decoder.rank(), k, ok ? "byte-exact" : "FAILED");
    std::printf(
        "  (byte coefficients: dependent receptions ~256x rarer than "
        "GF(2), at multiply-kernel decode cost)\n\n");
  }

  // --- Sparse LT codec with robust-soliton degrees (extension). ---
  {
    const RobustSoliton dist(k, 0.1, 0.05);
    LtEncoder encoder(7, original, dist, rng.fork());
    LtDecoder decoder(k, symbol_bytes, dist);
    Rng channel = rng.fork();
    std::uint64_t sent = 0;
    while (!decoder.complete()) {
      const net::EncodedSymbol symbol = encoder.next_symbol();
      ++sent;
      if (channel.bernoulli(channel_loss)) continue;
      decoder.add_symbol(symbol);
    }
    const bool ok = decoder.decode().bytes() == original.bytes();
    std::printf("LT codec (robust soliton, c=0.1, delta=0.05):\n");
    std::printf("  sent %llu symbols, recovered %u/%u, decode %s\n",
                static_cast<unsigned long long>(sent), decoder.recovered(),
                k, ok ? "byte-exact" : "FAILED");
    std::printf(
        "  (sparse symbols decode by peeling; cheaper per symbol, more "
        "overhead than the dense code at this k)\n");
  }
  return 0;
}
