// GF(256) field-layer properties: the log/exp tables must realise a
// field (randomized axiom checks), div/inv must invert mul exactly, and
// the split-nibble tables the SIMD kernels load must agree with the
// log/exp reference for every (constant, byte) pair.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "fountain/gf256.h"

namespace fmtcp::fountain {
namespace {

/// Carry-less reference multiply straight from the polynomial
/// definition — independent of the log/exp tables under test.
std::uint8_t poly_mul(std::uint8_t a, std::uint8_t b) {
  std::uint16_t acc = 0;
  std::uint16_t shifted = a;
  for (int bit = 0; bit < 8; ++bit) {
    if ((b >> bit) & 1) acc ^= shifted << bit;
  }
  for (int bit = 15; bit >= 8; --bit) {
    if ((acc >> bit) & 1) acc ^= kGf256Poly << (bit - 8);
  }
  return static_cast<std::uint8_t>(acc);
}

TEST(Gf256Field, MulMatchesPolynomialReferenceExhaustively) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gf256_mul(static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b)),
                poly_mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)))
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Gf256Field, LogExpRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(gf256_exp(gf256_log(static_cast<std::uint8_t>(a))), a);
  }
  // alpha = 2 generates the multiplicative group: all 255 powers distinct.
  bool seen[256] = {};
  for (std::size_t i = 0; i < 255; ++i) {
    const std::uint8_t v = gf256_exp(i);
    ASSERT_NE(v, 0u);
    ASSERT_FALSE(seen[v]) << "alpha^" << i << " repeats";
    seen[v] = true;
  }
}

TEST(Gf256Field, RandomizedFieldAxioms) {
  Rng rng(256256);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    // Commutativity and associativity of ·.
    ASSERT_EQ(gf256_mul(a, b), gf256_mul(b, a));
    ASSERT_EQ(gf256_mul(gf256_mul(a, b), c), gf256_mul(a, gf256_mul(b, c)));
    // Distributivity over the field's + (XOR).
    ASSERT_EQ(gf256_mul(a, b ^ c),
              static_cast<std::uint8_t>(gf256_mul(a, b) ^ gf256_mul(a, c)));
    // Identities and annihilator.
    ASSERT_EQ(gf256_mul(a, 1), a);
    ASSERT_EQ(gf256_mul(a, 0), 0);
  }
}

TEST(Gf256Field, InverseAndDivision) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    ASSERT_EQ(gf256_mul(ua, gf256_inv(ua)), 1) << "a=" << a;
  }
  Rng rng(77);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.next_below(255));
    ASSERT_EQ(gf256_mul(gf256_div(a, b), b), a);
    ASSERT_EQ(gf256_div(a, b), gf256_mul(a, gf256_inv(b)));
  }
  EXPECT_EQ(gf256_div(0, 7), 0);
}

TEST(Gf256Field, NibbleTablesMatchLogExpMulForAllPairs) {
  const Gf256NibbleTables* tables = gf256_nibble_tables();
  for (int c = 0; c < 256; ++c) {
    const Gf256NibbleTables& t = tables[c];
    for (int v = 0; v < 256; ++v) {
      const std::uint8_t via_tables =
          static_cast<std::uint8_t>(t.lo[v & 0x0F] ^ t.hi[v >> 4]);
      ASSERT_EQ(via_tables, gf256_mul(static_cast<std::uint8_t>(c),
                                      static_cast<std::uint8_t>(v)))
          << "c=" << c << " v=" << v;
    }
  }
}

TEST(Gf256Field, DecodeFailureProbabilityShape) {
  // Below k̂: certain failure. At k̂ + m: shrinks by 256× per extra
  // symbol and sits far below the GF(2) 2^-m bound.
  EXPECT_EQ(gf256_decode_failure_probability(64, 63.0), 1.0);
  const double at_k = gf256_decode_failure_probability(64, 64.0);
  EXPECT_LE(at_k, 1.0);
  const double at_k1 = gf256_decode_failure_probability(64, 65.0);
  const double at_k2 = gf256_decode_failure_probability(64, 66.0);
  EXPECT_NEAR(at_k1 / at_k2, 256.0, 1e-6);
  EXPECT_LT(at_k1, std::exp2(-1.0));
}

}  // namespace
}  // namespace fmtcp::fountain
