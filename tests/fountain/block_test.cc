#include "fountain/block.h"

#include <gtest/gtest.h>

namespace fmtcp::fountain {
namespace {

TEST(BlockData, Dimensions) {
  BlockData block(8, 32);
  EXPECT_EQ(block.symbols(), 8u);
  EXPECT_EQ(block.symbol_bytes(), 32u);
  EXPECT_EQ(block.total_bytes(), 256u);
}

TEST(BlockData, SymbolsAreContiguousSlices) {
  BlockData block(4, 3);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::size_t b = 0; b < 3; ++b) {
      block.symbol(i)[b] = static_cast<std::uint8_t>(i * 10 + b);
    }
  }
  EXPECT_EQ(block.bytes()[0], 0);
  EXPECT_EQ(block.bytes()[3], 10);
  EXPECT_EQ(block.bytes()[11], 32);
  EXPECT_EQ(block.symbol_copy(2),
            (AlignedBytes{20, 21, 22}));
}

TEST(DeterministicBlock, SameIdSameBytes) {
  const BlockData a = make_deterministic_block(7, 16, 64);
  const BlockData b = make_deterministic_block(7, 16, 64);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(DeterministicBlock, DifferentIdsDiffer) {
  const BlockData a = make_deterministic_block(1, 16, 64);
  const BlockData b = make_deterministic_block(2, 16, 64);
  EXPECT_NE(a.bytes(), b.bytes());
}

TEST(DeterministicBlock, BlockZeroIsNotAllZero) {
  const BlockData block = make_deterministic_block(0, 4, 32);
  bool nonzero = false;
  for (std::uint8_t byte : block.bytes()) nonzero = nonzero || byte != 0;
  EXPECT_TRUE(nonzero);
}

}  // namespace
}  // namespace fmtcp::fountain
