// Systematic random-linear fountain tests.
#include <gtest/gtest.h>

#include "fountain/decoder.h"
#include "fountain/random_linear.h"

namespace fmtcp::fountain {
namespace {

TEST(Systematic, FirstKSymbolsAreSource) {
  const BlockData original = make_deterministic_block(1, 8, 16);
  RandomLinearEncoder encoder(1, original, Rng(3), /*systematic=*/true);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const net::EncodedSymbol s = encoder.next_symbol();
    EXPECT_TRUE(s.is_systematic());
    EXPECT_EQ(s.systematic_index, i);
    EXPECT_EQ(s.data, original.symbol_copy(i));
  }
  const net::EncodedSymbol repair = encoder.next_symbol();
  EXPECT_FALSE(repair.is_systematic());
}

TEST(Systematic, LosslessDecodeWithExactlyK) {
  const BlockData original = make_deterministic_block(2, 16, 8);
  RandomLinearEncoder encoder(2, original, Rng(5), true);
  BlockDecoder decoder(16, 8, true);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(decoder.add_symbol(encoder.next_symbol()));
  }
  EXPECT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.received_count(), 16u);
  EXPECT_EQ(decoder.redundant_count(), 0u);
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

TEST(Systematic, RepairSymbolsRecoverErasures) {
  const BlockData original = make_deterministic_block(3, 16, 8);
  RandomLinearEncoder encoder(3, original, Rng(7), true);
  BlockDecoder decoder(16, 8, true);
  // Drop every fourth systematic symbol; feed repairs until complete.
  for (std::uint32_t i = 0; i < 16; ++i) {
    const net::EncodedSymbol s = encoder.next_symbol();
    if (i % 4 == 0) continue;
    decoder.add_symbol(s);
  }
  EXPECT_FALSE(decoder.complete());
  int repairs = 0;
  while (!decoder.complete()) {
    decoder.add_symbol(encoder.next_symbol());
    ASSERT_LT(++repairs, 64);
  }
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

TEST(Systematic, NonSystematicDefaultUnchanged) {
  RandomLinearEncoder encoder(4, 8, 16, Rng(9));
  EXPECT_FALSE(encoder.systematic());
  EXPECT_FALSE(encoder.next_symbol().is_systematic());
}

TEST(Systematic, RankOnlyModeCarriesIndex) {
  RandomLinearEncoder encoder(5, 8, 16, Rng(11), true);
  const net::EncodedSymbol s = encoder.next_symbol();
  EXPECT_TRUE(s.is_systematic());
  EXPECT_TRUE(s.data.empty());
  BlockDecoder decoder(8, 16, false);
  EXPECT_TRUE(decoder.add_symbol(s));
  EXPECT_EQ(decoder.rank(), 1u);
}

TEST(Systematic, DuplicateSourceSymbolRedundant) {
  const BlockData original = make_deterministic_block(6, 8, 4);
  RandomLinearEncoder encoder(6, original, Rng(13), true);
  const net::EncodedSymbol s = encoder.next_symbol();
  BlockDecoder decoder(8, 4, true);
  EXPECT_TRUE(decoder.add_symbol(s));
  EXPECT_FALSE(decoder.add_symbol(s));
  EXPECT_EQ(decoder.redundant_count(), 1u);
}

}  // namespace
}  // namespace fmtcp::fountain
