#include "fountain/random_linear.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fmtcp::fountain {
namespace {

TEST(Coefficients, DeterministicFromSeed) {
  const BitVector a = coefficients_from_seed(42, 64);
  const BitVector b = coefficients_from_seed(42, 64);
  EXPECT_TRUE(a == b);
}

TEST(Coefficients, DifferentSeedsDiffer) {
  const BitVector a = coefficients_from_seed(1, 64);
  const BitVector b = coefficients_from_seed(2, 64);
  EXPECT_FALSE(a == b);
}

TEST(Coefficients, NeverAllZero) {
  for (std::uint64_t seed = 0; seed < 2000; ++seed) {
    EXPECT_TRUE(coefficients_from_seed(seed, 4).any());
  }
}

TEST(Encode, XorOfSelectedSymbols) {
  BlockData block(3, 2);
  block.symbol(0)[0] = 0x01;
  block.symbol(0)[1] = 0x10;
  block.symbol(1)[0] = 0x02;
  block.symbol(1)[1] = 0x20;
  block.symbol(2)[0] = 0x04;
  block.symbol(2)[1] = 0x40;

  BitVector coeffs(3);
  coeffs.set(0, true);
  coeffs.set(2, true);
  const auto encoded = encode_with_coefficients(block, coeffs);
  EXPECT_EQ(encoded, (AlignedBytes{0x05, 0x50}));
}

TEST(Encode, SingleCoefficientCopiesSymbol) {
  const BlockData block = make_deterministic_block(3, 4, 8);
  BitVector coeffs(4);
  coeffs.set(2, true);
  EXPECT_EQ(encode_with_coefficients(block, coeffs), block.symbol_copy(2));
}

TEST(FailureProbability, PaperEquationTwo) {
  EXPECT_EQ(decode_failure_probability(64, 0), 1.0);
  EXPECT_EQ(decode_failure_probability(64, 63), 1.0);
  EXPECT_EQ(decode_failure_probability(64, 64), 1.0);  // 2^0.
  EXPECT_DOUBLE_EQ(decode_failure_probability(64, 65), 0.5);
  EXPECT_DOUBLE_EQ(decode_failure_probability(64, 70), 1.0 / 64.0);
  EXPECT_DOUBLE_EQ(decode_failure_probability(64, 68.5),
                   std::exp2(-4.5));
}

TEST(Encoder, PayloadModeEncodesBytes) {
  Rng rng(5);
  RandomLinearEncoder encoder(9, make_deterministic_block(9, 8, 16), rng);
  const net::EncodedSymbol symbol = encoder.next_symbol();
  EXPECT_EQ(symbol.block, 9u);
  EXPECT_EQ(symbol.block_symbols, 8u);
  EXPECT_EQ(symbol.data.size(), 16u);
  // Re-encode with the regenerated coefficients: must match.
  const BitVector coeffs = coefficients_from_seed(symbol.coeff_seed, 8);
  EXPECT_EQ(symbol.data,
            encode_with_coefficients(make_deterministic_block(9, 8, 16),
                                     coeffs));
}

TEST(Encoder, RankOnlyModeOmitsData) {
  Rng rng(5);
  RandomLinearEncoder encoder(1, 8, 16, rng);
  const net::EncodedSymbol symbol = encoder.next_symbol();
  EXPECT_TRUE(symbol.data.empty());
  EXPECT_EQ(symbol.block_symbols, 8u);
}

TEST(Encoder, SymbolsUseFreshSeeds) {
  Rng rng(5);
  RandomLinearEncoder encoder(1, 8, 16, rng);
  const auto a = encoder.next_symbol();
  const auto b = encoder.next_symbol();
  EXPECT_NE(a.coeff_seed, b.coeff_seed);
  EXPECT_EQ(encoder.generated_count(), 2u);
}

}  // namespace
}  // namespace fmtcp::fountain
