// Kernel-plane equivalence: every SIMD variant available in this build on
// this CPU must be bit-identical to the scalar reference for every entry
// point, across the awkward sizes (0, sub-word, vector-width ± 1) and
// every source/destination misalignment. This is the property that lets
// the runtime dispatcher change throughput without ever changing a
// simulation result.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "fountain/gf2_kernels.h"

namespace fmtcp::fountain {
namespace {

/// Restores the process-wide kernel selection after a test that switches
/// it, so suites sharing this binary see the default dispatch again.
class KernelGuard {
 public:
  KernelGuard() : saved_(gf2_kernel().name) {}
  ~KernelGuard() { gf2_set_kernel(saved_.c_str()); }

 private:
  std::string saved_;
};

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

class KernelEquivalence : public ::testing::TestWithParam<const Gf2KernelOps*> {
};

TEST_P(KernelEquivalence, XorBytesRawMatchesScalarAllSizesAndOffsets) {
  const Gf2KernelOps& ops = *GetParam();
  const Gf2KernelOps& ref = gf2_scalar_kernel();
  Rng rng(2024);
  // Slack beyond the largest size so offset + size stays in bounds.
  const std::size_t max_size = 257;
  for (std::size_t dst_off : {0u, 1u, 3u, 7u}) {
    for (std::size_t src_off : {0u, 2u, 5u}) {
      for (std::size_t size = 0; size <= max_size; ++size) {
        const auto dst0 = random_bytes(rng, max_size + 8);
        const auto src = random_bytes(rng, max_size + 8);
        auto got = dst0;
        auto want = dst0;
        ops.xor_bytes_raw(got.data() + dst_off, src.data() + src_off, size);
        ref.xor_bytes_raw(want.data() + dst_off, src.data() + src_off, size);
        ASSERT_EQ(got, want) << ops.name << " size=" << size
                             << " dst_off=" << dst_off
                             << " src_off=" << src_off;
      }
    }
  }
}

TEST_P(KernelEquivalence, XorIntoMatchesScalar) {
  const Gf2KernelOps& ops = *GetParam();
  const Gf2KernelOps& ref = gf2_scalar_kernel();
  Rng rng(77);
  for (std::size_t off : {0u, 1u, 6u}) {
    for (std::size_t size = 0; size <= 257; ++size) {
      const auto a = random_bytes(rng, 257 + 8);
      const auto b = random_bytes(rng, 257 + 8);
      std::vector<std::uint8_t> got(257 + 8, 0xAA), want(257 + 8, 0xAA);
      ops.xor_into(got.data() + off, a.data() + off, b.data() + off, size);
      ref.xor_into(want.data() + off, a.data() + off, b.data() + off, size);
      ASSERT_EQ(got, want) << ops.name << " size=" << size << " off=" << off;
    }
  }
}

TEST_P(KernelEquivalence, XorAccumulateMatchesScalarAllFanIns) {
  const Gf2KernelOps& ops = *GetParam();
  const Gf2KernelOps& ref = gf2_scalar_kernel();
  Rng rng(91);
  for (std::size_t n = 0; n <= 9; ++n) {  // Exercises the 4-way fold + tail.
    for (std::size_t size : {0u, 1u, 15u, 16u, 63u, 64u, 160u, 257u}) {
      std::vector<std::vector<std::uint8_t>> srcs;
      std::vector<const std::uint8_t*> ptrs;
      for (std::size_t i = 0; i < n; ++i) {
        srcs.push_back(random_bytes(rng, size));
        ptrs.push_back(srcs.back().data());
      }
      const auto dst0 = random_bytes(rng, size);
      auto got = dst0;
      auto want = dst0;
      ops.xor_accumulate(got.data(), ptrs.data(), n, size);
      ref.xor_accumulate(want.data(), ptrs.data(), n, size);
      ASSERT_EQ(got, want) << ops.name << " n=" << n << " size=" << size;
    }
  }
}

TEST_P(KernelEquivalence, XorWordsMatchesScalar) {
  const Gf2KernelOps& ops = *GetParam();
  const Gf2KernelOps& ref = gf2_scalar_kernel();
  Rng rng(123);
  for (std::size_t nwords = 0; nwords <= 33; ++nwords) {
    std::vector<std::uint64_t> src(nwords + 1), got(nwords + 1),
        want(nwords + 1);
    for (auto& w : src) w = rng.next_u64();
    for (std::size_t i = 0; i < got.size(); ++i) got[i] = want[i] = rng.next_u64();
    ops.xor_words(got.data(), src.data(), nwords);
    ref.xor_words(want.data(), src.data(), nwords);
    ASSERT_EQ(got, want) << ops.name << " nwords=" << nwords;
  }
}

/// Builds a random pivot arena in reduced form (pivot row p has lowest
/// bit p, and only bits ≥ p set) plus its present bitmap, then checks
/// reduce_row against the scalar reference: identical record bytes,
/// identical returned pivot, identical step count.
TEST_P(KernelEquivalence, ReduceRowMatchesScalar) {
  const Gf2KernelOps& ops = *GetParam();
  const Gf2KernelOps& ref = gf2_scalar_kernel();
  Rng rng(31337);
  for (std::uint32_t k : {8u, 64u, 65u, 128u, 256u, 320u, 512u}) {
    const std::size_t cw = (k + 63) / 64;
    for (std::size_t stride : {cw, 2 * cw}) {  // Rank-only and fused track.
      AlignedWords arena(k * stride);
      std::vector<std::uint64_t> present(cw, 0);
      for (std::uint32_t p = 0; p < k; ++p) {
        if (!rng.bernoulli(0.7)) continue;  // Leave some pivots absent.
        present[p >> 6] |= 1ULL << (p & 63);
        std::uint64_t* rec = arena.data() + p * stride;
        rec[p >> 6] |= 1ULL << (p & 63);
        for (std::uint32_t b = p + 1; b < k; ++b) {
          if (rng.bernoulli(0.4)) rec[b >> 6] |= 1ULL << (b & 63);
        }
        for (std::size_t w = cw; w < stride; ++w) rec[w] = rng.next_u64();
      }
      for (int trial = 0; trial < 32; ++trial) {
        AlignedWords got(stride), want(stride);
        for (std::size_t w = 0; w < cw; ++w) {
          got[w] = rng.next_u64();
          if ((w + 1) * 64 > k) got[w] &= (1ULL << (k & 63)) - 1;
        }
        for (std::size_t w = cw; w < stride; ++w) got[w] = rng.next_u64();
        std::memcpy(want.data(), got.data(), stride * 8);
        std::size_t got_steps = 0, want_steps = 0;
        const std::size_t got_pivot =
            ops.reduce_row(got.data(), arena.data(), present.data(), k, cw,
                           stride, &got_steps);
        const std::size_t want_pivot =
            ref.reduce_row(want.data(), arena.data(), present.data(), k, cw,
                           stride, &want_steps);
        ASSERT_EQ(got_pivot, want_pivot)
            << ops.name << " k=" << k << " stride=" << stride;
        ASSERT_EQ(got_steps, want_steps);
        ASSERT_EQ(0, std::memcmp(got.data(), want.data(), stride * 8));
        // Contract: fully reduced — no coefficient bit on a present pivot.
        for (std::size_t w = 0; w < cw; ++w) {
          ASSERT_EQ(got[w] & present[w], 0u);
        }
        if (got_pivot < k) {
          ASSERT_TRUE((got[got_pivot >> 6] >> (got_pivot & 63)) & 1ULL);
        } else {
          ASSERT_EQ(got_pivot, k);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAvailable, KernelEquivalence,
    ::testing::ValuesIn(gf2_available_kernels()),
    [](const ::testing::TestParamInfo<const Gf2KernelOps*>& param_info) {
      return std::string(param_info.param->name);
    });

TEST(KernelDispatch, AvailableKernelsStartWithScalarAndHaveUniqueNames) {
  const auto kernels = gf2_available_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front()->name, "scalar");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    for (std::size_t j = i + 1; j < kernels.size(); ++j) {
      EXPECT_STRNE(kernels[i]->name, kernels[j]->name);
    }
  }
}

TEST(KernelDispatch, SetKernelSwitchesAndRejectsUnknown) {
  KernelGuard guard;
  EXPECT_FALSE(gf2_set_kernel("mmx"));
  EXPECT_FALSE(gf2_set_kernel(""));
  for (const Gf2KernelOps* ops : gf2_available_kernels()) {
    ASSERT_TRUE(gf2_set_kernel(ops->name));
    EXPECT_STREQ(gf2_kernel().name, ops->name);
  }
}

}  // namespace
}  // namespace fmtcp::fountain
