#include "fountain/lt_codec.h"

#include <gtest/gtest.h>

#include <set>

namespace fmtcp::fountain {
namespace {

RobustSoliton test_dist(std::uint32_t k) {
  return RobustSoliton(k, 0.1, 0.05);
}

TEST(LtNeighbors, DeterministicFromSeed) {
  const RobustSoliton dist = test_dist(32);
  EXPECT_EQ(lt_neighbors_from_seed(99, dist),
            lt_neighbors_from_seed(99, dist));
}

TEST(LtNeighbors, DistinctIndicesInRange) {
  const RobustSoliton dist = test_dist(32);
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    const auto neighbors = lt_neighbors_from_seed(seed, dist);
    EXPECT_GE(neighbors.size(), 1u);
    std::set<std::uint32_t> unique(neighbors.begin(), neighbors.end());
    EXPECT_EQ(unique.size(), neighbors.size());
    for (std::uint32_t idx : neighbors) EXPECT_LT(idx, 32u);
  }
}

TEST(LtCodec, RoundTrip) {
  const std::uint32_t k = 64;
  const BlockData original = make_deterministic_block(1, k, 16);
  Rng rng(5);
  LtEncoder encoder(1, original, test_dist(k), rng);
  LtDecoder decoder(k, 16, test_dist(k));
  int sent = 0;
  while (!decoder.complete() && sent < 10 * static_cast<int>(k)) {
    decoder.add_symbol(encoder.next_symbol());
    ++sent;
  }
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

TEST(LtCodec, RecoveredMonotone) {
  const std::uint32_t k = 32;
  const BlockData original = make_deterministic_block(2, k, 8);
  Rng rng(7);
  LtEncoder encoder(2, original, test_dist(k), rng);
  LtDecoder decoder(k, 8, test_dist(k));
  std::uint32_t last = 0;
  for (int i = 0; i < 500 && !decoder.complete(); ++i) {
    decoder.add_symbol(encoder.next_symbol());
    EXPECT_GE(decoder.recovered(), last);
    last = decoder.recovered();
  }
  EXPECT_TRUE(decoder.complete());
}

TEST(LtCodec, OverheadReasonable) {
  // LT with robust soliton should decode within a modest overhead.
  const std::uint32_t k = 128;
  Rng seed_rng(11);
  double total = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const BlockData original = make_deterministic_block(t, k, 4);
    LtEncoder encoder(t, original, test_dist(k), seed_rng.fork());
    LtDecoder decoder(k, 4, test_dist(k));
    while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
    total += static_cast<double>(decoder.received_count());
  }
  const double mean_overhead_factor = total / trials / k;
  EXPECT_LT(mean_overhead_factor, 2.0);
}

TEST(LtCodec, SingleSymbolBlock) {
  const BlockData original = make_deterministic_block(3, 1, 12);
  Rng rng(13);
  LtEncoder encoder(3, original, test_dist(1), rng);
  LtDecoder decoder(1, 12, test_dist(1));
  decoder.add_symbol(encoder.next_symbol());
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

}  // namespace
}  // namespace fmtcp::fountain
