// GF(256) kernel-plane equivalence: every SIMD variant available in this
// build on this CPU must be bit-identical to the scalar reference for
// every entry point, across the awkward sizes (0, sub-vector,
// vector-width ± 1) and every source/destination misalignment — the
// property that lets the dispatcher change throughput without changing a
// codec result. The scalar kernel itself is additionally anchored to the
// gf256_mul field reference, so the chain field → scalar → SIMD is
// closed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fountain/gf256.h"
#include "fountain/gf256_kernels.h"

namespace fmtcp::fountain {
namespace {

/// Restores the process-wide kernel selection after a test that switches
/// it, so suites sharing this binary see the default dispatch again.
class KernelGuard {
 public:
  KernelGuard() : saved_(gf256_kernel().name) {}
  ~KernelGuard() { gf256_set_kernel(saved_.c_str()); }

 private:
  std::string saved_;
};

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

/// Coefficients cycled through every region test: the special cases
/// (annihilator, identity) plus generic bytes.
constexpr std::uint8_t kCoeffs[] = {0, 1, 2, 3, 0x53, 0x8E, 0xFF};

TEST(Gf256ScalarKernel, MulRegionMatchesFieldReference) {
  const Gf256KernelOps& ref = gf256_scalar_kernel();
  Rng rng(1);
  for (std::uint8_t c : kCoeffs) {
    for (std::size_t size : {0u, 1u, 7u, 160u, 257u}) {
      const auto src = random_bytes(rng, size);
      const auto dst0 = random_bytes(rng, size);
      auto got = dst0;
      ref.mul_region(got.data(), src.data(), c, size);
      for (std::size_t i = 0; i < size; ++i) {
        ASSERT_EQ(got[i], dst0[i] ^ gf256_mul(c, src[i]))
            << "c=" << int(c) << " size=" << size << " i=" << i;
      }
    }
  }
}

class Gf256KernelEquivalence
    : public ::testing::TestWithParam<const Gf256KernelOps*> {};

TEST_P(Gf256KernelEquivalence, MulRegionMatchesScalarAllSizesAndOffsets) {
  const Gf256KernelOps& ops = *GetParam();
  const Gf256KernelOps& ref = gf256_scalar_kernel();
  Rng rng(2026);
  // Slack beyond the largest size so offset + size stays in bounds.
  const std::size_t max_size = 257;
  for (std::size_t dst_off : {0u, 1u, 3u, 7u}) {
    for (std::size_t src_off : {0u, 2u, 5u}) {
      for (std::size_t size = 0; size <= max_size; ++size) {
        const auto c = static_cast<std::uint8_t>(rng.next_below(256));
        const auto dst0 = random_bytes(rng, max_size + 8);
        const auto src = random_bytes(rng, max_size + 8);
        auto got = dst0;
        auto want = dst0;
        ops.mul_region(got.data() + dst_off, src.data() + src_off, c, size);
        ref.mul_region(want.data() + dst_off, src.data() + src_off, c, size);
        ASSERT_EQ(got, want) << ops.name << " c=" << int(c)
                             << " size=" << size << " dst_off=" << dst_off
                             << " src_off=" << src_off;
      }
    }
  }
  // The special coefficients across one vector-spanning size each.
  for (std::uint8_t c : kCoeffs) {
    const auto dst0 = random_bytes(rng, 257);
    const auto src = random_bytes(rng, 257);
    auto got = dst0;
    auto want = dst0;
    ops.mul_region(got.data(), src.data(), c, 257);
    ref.mul_region(want.data(), src.data(), c, 257);
    ASSERT_EQ(got, want) << ops.name << " c=" << int(c);
  }
}

TEST_P(Gf256KernelEquivalence, ScaleRegionMatchesScalar) {
  const Gf256KernelOps& ops = *GetParam();
  const Gf256KernelOps& ref = gf256_scalar_kernel();
  Rng rng(88);
  for (std::size_t off : {0u, 1u, 6u}) {
    for (std::size_t size = 0; size <= 257; ++size) {
      const auto c = static_cast<std::uint8_t>(rng.next_below(256));
      const auto dst0 = random_bytes(rng, 257 + 8);
      auto got = dst0;
      auto want = dst0;
      ops.scale_region(got.data() + off, c, size);
      ref.scale_region(want.data() + off, c, size);
      ASSERT_EQ(got, want) << ops.name << " c=" << int(c) << " size=" << size
                           << " off=" << off;
    }
  }
  for (std::uint8_t c : kCoeffs) {
    auto got = random_bytes(rng, 257);
    auto want = got;
    ops.scale_region(got.data(), c, 257);
    ref.scale_region(want.data(), c, 257);
    ASSERT_EQ(got, want) << ops.name << " c=" << int(c);
  }
}

TEST_P(Gf256KernelEquivalence, MulAccumulateMatchesScalarAllFanIns) {
  const Gf256KernelOps& ops = *GetParam();
  const Gf256KernelOps& ref = gf256_scalar_kernel();
  Rng rng(91);
  for (std::size_t n = 0; n <= 9; ++n) {  // Exercises the 4-way fold + tail.
    for (std::size_t size : {0u, 1u, 15u, 16u, 63u, 64u, 160u, 257u}) {
      std::vector<std::vector<std::uint8_t>> srcs;
      std::vector<const std::uint8_t*> ptrs;
      std::vector<std::uint8_t> coeffs;
      for (std::size_t i = 0; i < n; ++i) {
        srcs.push_back(random_bytes(rng, size));
        ptrs.push_back(srcs.back().data());
        // Bias towards the special values so zero-skipping and the XOR
        // fast path hit inside every fold shape.
        coeffs.push_back(
            rng.bernoulli(0.3)
                ? static_cast<std::uint8_t>(rng.next_below(2))
                : static_cast<std::uint8_t>(rng.next_below(256)));
      }
      const auto dst0 = random_bytes(rng, size);
      auto got = dst0;
      auto want = dst0;
      ops.mul_accumulate(got.data(), ptrs.data(), coeffs.data(), n, size);
      ref.mul_accumulate(want.data(), ptrs.data(), coeffs.data(), n, size);
      ASSERT_EQ(got, want) << ops.name << " n=" << n << " size=" << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAvailable, Gf256KernelEquivalence,
    ::testing::ValuesIn(gf256_available_kernels()),
    [](const ::testing::TestParamInfo<const Gf256KernelOps*>& param_info) {
      return std::string(param_info.param->name);
    });

TEST(Gf256KernelDispatch, AvailableKernelsStartWithScalarAndHaveUniqueNames) {
  const auto kernels = gf256_available_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.front()->name, "scalar");
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    for (std::size_t j = i + 1; j < kernels.size(); ++j) {
      EXPECT_STRNE(kernels[i]->name, kernels[j]->name);
    }
  }
}

TEST(Gf256KernelDispatch, SetKernelSwitchesAndRejectsUnknown) {
  KernelGuard guard;
  EXPECT_FALSE(gf256_set_kernel("mmx"));
  EXPECT_FALSE(gf256_set_kernel(""));
  for (const Gf256KernelOps* ops : gf256_available_kernels()) {
    ASSERT_TRUE(gf256_set_kernel(ops->name));
    EXPECT_STREQ(gf256_kernel().name, ops->name);
  }
}

TEST(Gf256KernelDispatch, Sse2AliasSelectsScalar) {
  // Pre-SSSE3 x86 has no PSHUFB, so the GF(2) plane's "sse2" value maps
  // to the scalar table walk here — one FMTCP_FORCE_KERNEL value stays
  // valid for both planes.
  KernelGuard guard;
  ASSERT_TRUE(gf256_set_kernel("sse2"));
  EXPECT_STREQ(gf256_kernel().name, "scalar");
}

}  // namespace
}  // namespace fmtcp::fountain
