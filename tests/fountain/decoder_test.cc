#include "fountain/decoder.h"

#include <gtest/gtest.h>

#include "fountain/random_linear.h"

namespace fmtcp::fountain {
namespace {

TEST(BlockDecoder, RoundTrip) {
  const BlockData original = make_deterministic_block(1, 16, 32);
  Rng rng(3);
  RandomLinearEncoder encoder(1, original, rng);
  BlockDecoder decoder(16, 32, /*track_data=*/true);
  while (!decoder.complete()) {
    decoder.add_symbol(encoder.next_symbol());
  }
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

TEST(BlockDecoder, RankMonotoneAndBounded) {
  Rng rng(5);
  RandomLinearEncoder encoder(1, 32, 8, rng);
  BlockDecoder decoder(32, 8, /*track_data=*/false);
  std::uint32_t last_rank = 0;
  for (int i = 0; i < 100; ++i) {
    decoder.add_symbol(encoder.next_symbol());
    EXPECT_GE(decoder.rank(), last_rank);
    EXPECT_LE(decoder.rank(), 32u);
    last_rank = decoder.rank();
  }
  EXPECT_TRUE(decoder.complete());
}

TEST(BlockDecoder, DuplicateSymbolIsRedundant) {
  Rng rng(7);
  RandomLinearEncoder encoder(1, 8, 4, rng);
  BlockDecoder decoder(8, 4, false);
  const net::EncodedSymbol symbol = encoder.next_symbol();
  EXPECT_TRUE(decoder.add_symbol(symbol));
  EXPECT_FALSE(decoder.add_symbol(symbol));
  EXPECT_EQ(decoder.rank(), 1u);
  EXPECT_EQ(decoder.redundant_count(), 1u);
  EXPECT_EQ(decoder.received_count(), 2u);
}

TEST(BlockDecoder, DependentCombinationIsRedundant) {
  // Insert e1, e2, then e1^e2: the third must be rejected.
  BlockDecoder decoder(4, 2, false);
  BitVector a(4);
  a.set(0, true);
  BitVector b(4);
  b.set(1, true);
  BitVector c(4);
  c.set(0, true);
  c.set(1, true);
  EXPECT_TRUE(decoder.add_symbol(a, {}));
  EXPECT_TRUE(decoder.add_symbol(b, {}));
  EXPECT_FALSE(decoder.add_symbol(c, {}));
  EXPECT_EQ(decoder.rank(), 2u);
}

TEST(BlockDecoder, SymbolsAfterCompletionRedundant) {
  Rng rng(9);
  RandomLinearEncoder encoder(1, 4, 4, rng);
  BlockDecoder decoder(4, 4, false);
  while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
  const std::uint64_t redundant_before = decoder.redundant_count();
  EXPECT_FALSE(decoder.add_symbol(encoder.next_symbol()));
  EXPECT_EQ(decoder.redundant_count(), redundant_before + 1);
}

TEST(BlockDecoder, DecodeWithExactBasis) {
  // Feed unit vectors: trivially decodable with exactly k symbols.
  const BlockData original = make_deterministic_block(2, 8, 16);
  BlockDecoder decoder(8, 16, true);
  for (std::uint32_t i = 0; i < 8; ++i) {
    BitVector coeffs(8);
    coeffs.set(i, true);
    EXPECT_TRUE(decoder.add_symbol(coeffs, original.symbol_copy(i)));
  }
  EXPECT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

TEST(BlockDecoder, DecodeWithDenseBasis) {
  // Feed prefix sums e0, e0^e1, e0^e1^e2, ...: decodable, needs real
  // back-substitution.
  const BlockData original = make_deterministic_block(3, 8, 8);
  BlockDecoder decoder(8, 8, true);
  BitVector coeffs(8);
  AlignedBytes acc(8, 0);
  for (std::uint32_t i = 0; i < 8; ++i) {
    coeffs.set(i, true);
    xor_bytes(acc, original.symbol_copy(i));
    EXPECT_TRUE(decoder.add_symbol(coeffs, acc));
  }
  EXPECT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

TEST(BlockDecoder, DecodeIdempotent) {
  const BlockData original = make_deterministic_block(4, 4, 4);
  Rng rng(11);
  RandomLinearEncoder encoder(4, original, rng);
  BlockDecoder decoder(4, 4, true);
  while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
  const AlignedBytes first = decoder.decode().bytes();
  EXPECT_EQ(decoder.decode().bytes(), first);
}

TEST(BlockDecoder, BufferedBytesGrowWithRank) {
  Rng rng(13);
  RandomLinearEncoder encoder(1, 16, 10, rng);
  BlockDecoder decoder(16, 10, false);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  decoder.add_symbol(encoder.next_symbol());
  EXPECT_EQ(decoder.buffered_bytes(), 10u);
  while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
  EXPECT_EQ(decoder.buffered_bytes(), 160u);
}

TEST(BlockDecoder, WireSymbolMatchesExpandedInsert) {
  Rng rng(17);
  RandomLinearEncoder encoder(1, 8, 4, rng);
  const net::EncodedSymbol symbol = encoder.next_symbol();
  BlockDecoder a(8, 4, false);
  BlockDecoder b(8, 4, false);
  EXPECT_TRUE(a.add_symbol(symbol));
  EXPECT_TRUE(b.add_symbol(
      coefficients_from_seed(symbol.coeff_seed, 8), {}));
  EXPECT_EQ(a.rank(), b.rank());
}

TEST(BlockDecoder, SingleSymbolBlock) {
  const BlockData original = make_deterministic_block(5, 1, 100);
  Rng rng(19);
  RandomLinearEncoder encoder(5, original, rng);
  BlockDecoder decoder(1, 100, true);
  decoder.add_symbol(encoder.next_symbol());
  EXPECT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

TEST(BlockDecoder, TypicalOverheadIsSmall) {
  // Random linear fountain needs ~1.6 extra symbols on average.
  Rng rng(23);
  double total_received = 0.0;
  const int trials = 200;
  const std::uint32_t k = 32;
  for (int t = 0; t < trials; ++t) {
    RandomLinearEncoder encoder(t, k, 4, rng.fork());
    BlockDecoder decoder(k, 4, false);
    while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
    total_received += static_cast<double>(decoder.received_count());
  }
  const double mean_overhead = total_received / trials - k;
  EXPECT_GT(mean_overhead, 0.5);
  EXPECT_LT(mean_overhead, 3.5);
}

}  // namespace
}  // namespace fmtcp::fountain
