#include "fountain/soliton.h"

#include <gtest/gtest.h>

#include <vector>

namespace fmtcp::fountain {
namespace {

TEST(IdealSoliton, PmfMatchesDefinition) {
  IdealSoliton dist(10);
  EXPECT_DOUBLE_EQ(dist.pmf(1), 0.1);
  EXPECT_DOUBLE_EQ(dist.pmf(2), 0.5);
  EXPECT_DOUBLE_EQ(dist.pmf(3), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(dist.pmf(10), 1.0 / 90.0);
  EXPECT_EQ(dist.pmf(0), 0.0);
  EXPECT_EQ(dist.pmf(11), 0.0);
}

TEST(IdealSoliton, PmfSumsToOne) {
  IdealSoliton dist(50);
  double total = 0.0;
  for (std::uint32_t d = 1; d <= 50; ++d) total += dist.pmf(d);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(IdealSoliton, SamplesInRange) {
  IdealSoliton dist(20);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t d = dist.sample(rng);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 20u);
  }
}

TEST(IdealSoliton, EmpiricalMatchesPmf) {
  IdealSoliton dist(10);
  Rng rng(7);
  std::vector<int> counts(11, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[dist.sample(rng)];
  for (std::uint32_t d = 1; d <= 10; ++d) {
    EXPECT_NEAR(static_cast<double>(counts[d]) / n, dist.pmf(d), 0.01)
        << "degree " << d;
  }
}

TEST(RobustSoliton, PmfSumsToOne) {
  RobustSoliton dist(100, 0.1, 0.05);
  double total = 0.0;
  for (std::uint32_t d = 1; d <= 100; ++d) total += dist.pmf(d);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(RobustSoliton, BoostsLowDegrees) {
  // The robust distribution adds mass at degree 1 relative to ideal.
  const std::uint32_t k = 100;
  IdealSoliton ideal(k);
  RobustSoliton robust(k, 0.1, 0.05);
  EXPECT_GT(robust.pmf(1), ideal.pmf(1));
}

TEST(RobustSoliton, SamplesInRange) {
  RobustSoliton dist(64, 0.05, 0.1);
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t d = dist.sample(rng);
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 64u);
  }
}

TEST(RobustSoliton, SpikePositive) {
  RobustSoliton dist(100, 0.1, 0.05);
  EXPECT_GT(dist.spike(), 0.0);
}

TEST(IdealSoliton, DegenerateKOne) {
  IdealSoliton dist(1);
  EXPECT_DOUBLE_EQ(dist.pmf(1), 1.0);
  Rng rng(1);
  EXPECT_EQ(dist.sample(rng), 1u);
}

}  // namespace
}  // namespace fmtcp::fountain
