#include "fountain/gf2.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace fmtcp::fountain {
namespace {

TEST(BitVector, StartsZero) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_EQ(v.lowest_set_bit(), 100u);
}

TEST(BitVector, SetAndGet) {
  BitVector v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, LowestSetBit) {
  BitVector v(128);
  v.set(100, true);
  EXPECT_EQ(v.lowest_set_bit(), 100u);
  v.set(5, true);
  EXPECT_EQ(v.lowest_set_bit(), 5u);
}

TEST(BitVector, XorWith) {
  BitVector a(10);
  BitVector b(10);
  a.set(1, true);
  a.set(3, true);
  b.set(3, true);
  b.set(7, true);
  a.xor_with(b);
  EXPECT_TRUE(a.get(1));
  EXPECT_FALSE(a.get(3));
  EXPECT_TRUE(a.get(7));
  EXPECT_EQ(a.popcount(), 2u);
}

TEST(BitVector, XorSelfIsZero) {
  Rng rng(5);
  BitVector v = BitVector::random(200, rng);
  BitVector w = v;
  v.xor_with(w);
  EXPECT_FALSE(v.any());
}

TEST(BitVector, Equality) {
  BitVector a(16);
  BitVector b(16);
  EXPECT_TRUE(a == b);
  a.set(4, true);
  EXPECT_FALSE(a == b);
  b.set(4, true);
  EXPECT_TRUE(a == b);
}

TEST(BitVector, RandomRespectsPadding) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    BitVector v = BitVector::random(67, rng);
    // Popcount must only count the declared 67 bits.
    EXPECT_LE(v.popcount(), 67u);
    EXPECT_TRUE(v.lowest_set_bit() <= 67u);
  }
}

TEST(BitVector, RandomIsDense) {
  Rng rng(11);
  BitVector v = BitVector::random(1024, rng);
  // A fair random vector has ~512 set bits.
  EXPECT_GT(v.popcount(), 400u);
  EXPECT_LT(v.popcount(), 624u);
}

TEST(BitVector, ResetReusesStorageAndZeroes) {
  BitVector v(128);
  v.set(0, true);
  v.set(127, true);
  v.reset(128);
  EXPECT_FALSE(v.any());
  v.reset(64);
  EXPECT_EQ(v.size(), 64u);
  EXPECT_EQ(v.word_count(), 1u);
  v.reset(200);
  EXPECT_EQ(v.size(), 200u);
  EXPECT_EQ(v.word_count(), 4u);
  EXPECT_FALSE(v.any());
}

TEST(BitVector, MoveAndCopyAcrossInlineThreshold) {
  Rng rng(3);
  for (std::size_t bits : {60u, 128u, 129u, 500u}) {
    BitVector v = BitVector::random(bits, rng);
    BitVector copy = v;
    EXPECT_TRUE(copy == v);
    BitVector moved = std::move(copy);
    EXPECT_TRUE(moved == v);
    BitVector assigned(8);
    assigned = v;
    EXPECT_TRUE(assigned == v);
    BitVector move_assigned(8);
    move_assigned = std::move(moved);
    EXPECT_TRUE(move_assigned == v);
  }
}

TEST(BitVector, RandomIntoMatchesRandom) {
  for (std::size_t bits : {7u, 64u, 67u, 128u, 300u}) {
    Rng a(21);
    Rng b(21);
    const BitVector fresh = BitVector::random(bits, a);
    BitVector reused(512);  // Larger scratch; must shrink and match.
    BitVector::random_into(bits, b, reused);
    EXPECT_TRUE(fresh == reused) << bits;
  }
}

TEST(BitVector, ForEachSetBitVisitsAscending) {
  BitVector v(140);
  const std::vector<std::size_t> want{0, 5, 63, 64, 100, 139};
  for (std::size_t i : want) v.set(i, true);
  std::vector<std::size_t> got;
  v.for_each_set_bit([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(BitVector, WordDataExposesPacking) {
  BitVector v(70);
  v.set(1, true);
  v.set(64, true);
  EXPECT_EQ(v.word_count(), 2u);
  EXPECT_EQ(v.word_data()[0], 2ULL);
  EXPECT_EQ(v.word_data()[1], 1ULL);
}

TEST(XorBytes, ElementWise) {
  std::vector<std::uint8_t> a{0x0f, 0xf0, 0xaa};
  std::vector<std::uint8_t> b{0xff, 0xff, 0xaa};
  xor_bytes(a, b);
  EXPECT_EQ(a, (std::vector<std::uint8_t>{0xf0, 0x0f, 0x00}));
}

TEST(XorBytes, RawHandlesUnalignedTailsAtEveryLength) {
  Rng rng(17);
  for (std::size_t size = 0; size <= 100; ++size) {
    std::vector<std::uint8_t> dst(size);
    std::vector<std::uint8_t> src(size);
    std::vector<std::uint8_t> want(size);
    for (std::size_t i = 0; i < size; ++i) {
      dst[i] = static_cast<std::uint8_t>(rng.next_u64());
      src[i] = static_cast<std::uint8_t>(rng.next_u64());
      want[i] = dst[i] ^ src[i];
    }
    xor_bytes_raw(dst.data(), src.data(), size);
    EXPECT_EQ(dst, want) << size;
  }
}

TEST(XorBytes, FusedXorIntoMatchesCopyThenXorAtEveryLength) {
  Rng rng(19);
  for (std::size_t size = 0; size <= 100; ++size) {
    std::vector<std::uint8_t> a(size);
    std::vector<std::uint8_t> b(size);
    std::vector<std::uint8_t> want(size);
    for (std::size_t i = 0; i < size; ++i) {
      a[i] = static_cast<std::uint8_t>(rng.next_u64());
      b[i] = static_cast<std::uint8_t>(rng.next_u64());
      want[i] = a[i] ^ b[i];
    }
    std::vector<std::uint8_t> dst(size, 0xee);
    xor_into(dst.data(), a.data(), b.data(), size);
    EXPECT_EQ(dst, want) << size;
  }
}

TEST(XorAccumulate, MatchesSequentialXorForEveryBatchWidth) {
  Rng rng(23);
  const std::size_t size = 77;  // Exercises the scalar tail too.
  for (std::size_t n = 0; n <= 9; ++n) {
    std::vector<std::vector<std::uint8_t>> sources(n);
    std::vector<const std::uint8_t*> ptrs(n);
    std::vector<std::uint8_t> dst(size);
    std::vector<std::uint8_t> want(size);
    for (std::size_t i = 0; i < size; ++i) {
      dst[i] = static_cast<std::uint8_t>(rng.next_u64());
      want[i] = dst[i];
    }
    for (std::size_t s = 0; s < n; ++s) {
      sources[s].resize(size);
      for (std::size_t i = 0; i < size; ++i) {
        sources[s][i] = static_cast<std::uint8_t>(rng.next_u64());
        want[i] ^= sources[s][i];
      }
      ptrs[s] = sources[s].data();
    }
    xor_accumulate(dst.data(), ptrs.data(), n, size);
    EXPECT_EQ(dst, want) << "n=" << n;
  }
}

}  // namespace
}  // namespace fmtcp::fountain
