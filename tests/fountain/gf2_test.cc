#include "fountain/gf2.h"

#include <gtest/gtest.h>

namespace fmtcp::fountain {
namespace {

TEST(BitVector, StartsZero) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.popcount(), 0u);
  EXPECT_EQ(v.lowest_set_bit(), 100u);
}

TEST(BitVector, SetAndGet) {
  BitVector v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVector, LowestSetBit) {
  BitVector v(128);
  v.set(100, true);
  EXPECT_EQ(v.lowest_set_bit(), 100u);
  v.set(5, true);
  EXPECT_EQ(v.lowest_set_bit(), 5u);
}

TEST(BitVector, XorWith) {
  BitVector a(10);
  BitVector b(10);
  a.set(1, true);
  a.set(3, true);
  b.set(3, true);
  b.set(7, true);
  a.xor_with(b);
  EXPECT_TRUE(a.get(1));
  EXPECT_FALSE(a.get(3));
  EXPECT_TRUE(a.get(7));
  EXPECT_EQ(a.popcount(), 2u);
}

TEST(BitVector, XorSelfIsZero) {
  Rng rng(5);
  BitVector v = BitVector::random(200, rng);
  BitVector w = v;
  v.xor_with(w);
  EXPECT_FALSE(v.any());
}

TEST(BitVector, Equality) {
  BitVector a(16);
  BitVector b(16);
  EXPECT_TRUE(a == b);
  a.set(4, true);
  EXPECT_FALSE(a == b);
  b.set(4, true);
  EXPECT_TRUE(a == b);
}

TEST(BitVector, RandomRespectsPadding) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    BitVector v = BitVector::random(67, rng);
    // Popcount must only count the declared 67 bits.
    EXPECT_LE(v.popcount(), 67u);
    EXPECT_TRUE(v.lowest_set_bit() <= 67u);
  }
}

TEST(BitVector, RandomIsDense) {
  Rng rng(11);
  BitVector v = BitVector::random(1024, rng);
  // A fair random vector has ~512 set bits.
  EXPECT_GT(v.popcount(), 400u);
  EXPECT_LT(v.popcount(), 624u);
}

TEST(XorBytes, ElementWise) {
  std::vector<std::uint8_t> a{0x0f, 0xf0, 0xaa};
  std::vector<std::uint8_t> b{0xff, 0xff, 0xaa};
  xor_bytes(a, b);
  EXPECT_EQ(a, (std::vector<std::uint8_t>{0xf0, 0x0f, 0x00}));
}

}  // namespace
}  // namespace fmtcp::fountain
