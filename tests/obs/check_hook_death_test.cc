// Subprocess (death) tests for the FMTCP_CHECK failure hook: a failed
// check must invoke the installed hook before aborting, and the
// timeline flush+fsync hook (registered by EventTimeline::open_jsonl)
// must leave every emitted JSONL record on disk when the process dies
// mid-run. The hook path takes the annotated g_sinks_mutex, so these
// tests also pin down that the thread-safety-annotation conversion of
// obs/timeline.cc did not deadlock or reorder the crash path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/check.h"
#include "obs/timeline.h"

namespace fmtcp {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

int count_lines(const std::string& path, bool* all_complete) {
  std::ifstream in(path);
  if (!in.is_open()) return -1;
  int lines = 0;
  std::string line;
  *all_complete = true;
  while (std::getline(in, line)) {
    ++lines;
    // Every record the sink writes is one complete JSON object.
    if (line.empty() || line.front() != '{' || line.back() != '}') {
      *all_complete = false;
    }
  }
  return lines;
}

void marker_hook();

const char* g_marker_path = nullptr;

void marker_hook() {
  std::FILE* f = std::fopen(g_marker_path, "w");
  if (f != nullptr) {
    std::fputs("hook ran\n", f);
    std::fclose(f);
  }
}

TEST(CheckFailureHookDeathTest, HookRunsBeforeAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  static const std::string marker = temp_path("check_hook_marker");
  std::remove(marker.c_str());
  EXPECT_DEATH(
      {
        g_marker_path = marker.c_str();
        detail::check_failure_hook().store(&marker_hook);
        FMTCP_CHECK(1 + 1 == 3);
      },
      "CHECK failed: 1 \\+ 1 == 3");
  std::ifstream in(marker);
  ASSERT_TRUE(in.is_open())
      << "check_failed aborted without running the installed hook";
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hook ran");
}

TEST(CheckFailureHookDeathTest, TimelineSinkSurvivesCrashIntact) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  static const std::string jsonl = temp_path("check_hook_timeline.jsonl");
  std::remove(jsonl.c_str());
  constexpr int kEvents = 200;
  EXPECT_DEATH(
      {
        obs::EventTimeline timeline;
        timeline.open_jsonl(jsonl);
        for (int i = 0; i < kEvents; ++i) {
          timeline.emit({obs::EventType::kBlockDecoded, 0,
                         static_cast<SimTime>(i),
                         static_cast<std::uint64_t>(i), 1.0, 2.0});
        }
        // The timeline is still open (not destructed, not flushed by
        // the test): only the check-failure hook stands between the
        // emitted records and the abort.
        FMTCP_CHECK(false);
      },
      "CHECK failed: false");
  bool all_complete = false;
  const int lines = count_lines(jsonl, &all_complete);
  EXPECT_EQ(lines, kEvents)
      << "crashed run lost timeline records despite the flush hook";
  EXPECT_TRUE(all_complete) << "a record was truncated mid-line";
}

}  // namespace
}  // namespace fmtcp
