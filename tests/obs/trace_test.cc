// Span tracer: session control, nesting, ring overflow, cross-thread
// drains, Chrome export round-trip, metrics merge.
//
// Sessions are process-global, so every test opens its own via the RAII
// guard below (gtest runs tests in one process sequentially; a test
// that fails mid-session must not wedge the rest).
#include "obs/trace/span.h"
#include "obs/trace/tracer.h"

#include <gtest/gtest.h>

#include <latch>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace/chrome_trace.h"
#include "obs/trace/span_metrics.h"

namespace fmtcp::obs::trace {
namespace {

/// Opens a session for one test; stops it on scope exit if the test
/// body did not drain it itself.
class SessionGuard {
 public:
  explicit SessionGuard(const TraceConfig& config = {}) { start(config); }
  ~SessionGuard() {
    if (active()) stop();
  }
};

/// Spins until the span has a measurable (> 0 bucket) duration.
void burn_some_time() {
  const std::uint64_t until = clock_ns() + 20'000;  // 20 us.
  while (clock_ns() < until) {
  }
}

const SpanRecord* find_record(const TraceReport& report,
                              const std::string& name) {
  for (const SpanRecord& record : report.records) {
    if (name == record.name) return &record;
  }
  return nullptr;
}

TEST(SpanTracer, DisabledSessionRecordsNothing) {
  ASSERT_FALSE(tracing_enabled());
  {
    FMTCP_SPAN("test.disabled");
    FMTCP_COUNT("test.disabled_count", 3);
    record_complete("test.disabled_rc", 1, 2);
  }
  SessionGuard session;
  const TraceReport report = stop();
  EXPECT_TRUE(report.spans.empty());
  EXPECT_TRUE(report.counters.empty());
  EXPECT_TRUE(report.records.empty());
  EXPECT_EQ(report.dropped_records, 0u);
}

TEST(SpanTracer, NestingTracksParentDepthAndSelfTime) {
  SessionGuard session;
  {
    FMTCP_SPAN("test.outer");
    burn_some_time();
    {
      FMTCP_SPAN("test.inner");
      burn_some_time();
    }
  }
  const TraceReport report = stop();

  const SpanRecord* outer = find_record(report, "test.outer");
  const SpanRecord* inner = find_record(report, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(inner->parent_id, outer->span_id);
  EXPECT_NE(inner->span_id, outer->span_id);

  // The child's interval nests inside the parent's, and the parent's
  // self time is exactly its duration minus the child's.
  EXPECT_GE(inner->begin_ns, outer->begin_ns);
  EXPECT_LE(inner->end_ns, outer->end_ns);
  const std::uint64_t outer_dur = outer->end_ns - outer->begin_ns;
  const std::uint64_t inner_dur = inner->end_ns - inner->begin_ns;
  EXPECT_EQ(outer->self_ns, outer_dur - inner_dur);
  EXPECT_EQ(inner->self_ns, inner_dur);

  const SpanAggregate* outer_agg = report.find("test.outer");
  ASSERT_NE(outer_agg, nullptr);
  EXPECT_EQ(outer_agg->count, 1u);
  EXPECT_LE(outer_agg->self_ms, outer_agg->total_ms);
}

TEST(SpanTracer, AggregatesSurviveWithoutRecordCapture) {
  TraceConfig config;
  config.capture_records = false;
  SessionGuard session(config);
  for (int i = 0; i < 100; ++i) {
    FMTCP_SPAN("test.loop");
  }
  const TraceReport report = stop();
  EXPECT_TRUE(report.records.empty());
  EXPECT_FALSE(report.captured_records);
  const SpanAggregate* agg = report.find("test.loop");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count, 100u);
  EXPECT_GE(agg->total_ms, agg->self_ms);
  EXPECT_LE(agg->p50_ms, agg->p99_ms);
  EXPECT_GT(agg->p99_ms, 0.0);
}

TEST(SpanTracer, RingOverflowDropsOldestAndCountsDropped) {
  TraceConfig config;
  config.ring_capacity = 4;
  SessionGuard session(config);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::uint64_t now = clock_ns();
    record_complete("test.rc", now, now + 1, /*arg=*/i);
  }
  const TraceReport report = stop();
  EXPECT_EQ(report.dropped_records, 6u);
  ASSERT_EQ(report.records.size(), 4u);
  // Drop-oldest: the newest four records (args 6..9) survive, in order.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(report.records[i].arg, 6 + i);
  }
  // The aggregate table is exempt from ring overflow.
  const SpanAggregate* agg = report.find("test.rc");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count, 10u);
}

TEST(SpanTracer, SpanArgAndEarlyCloseAreRecorded) {
  SessionGuard session;
  std::uint64_t closed_at = 0;
  {
    SpanScope span("test.early", 7);
    span.set_arg(42);
    span.close();
    span.close();  // Idempotent.
    closed_at = clock_ns();
    burn_some_time();  // After close(): must not count.
  }
  const TraceReport report = stop();
  const SpanRecord* record = find_record(report, "test.early");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->arg, 42u);
  EXPECT_LE(record->end_ns, closed_at);
  const SpanAggregate* agg = report.find("test.early");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count, 1u);  // close() + destructor record once.
}

TEST(SpanTracer, CrossThreadDrainIsExactAndDeterministic) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  for (int round = 0; round < 2; ++round) {
    SessionGuard session;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          FMTCP_SPAN_ARG("test.worker", static_cast<std::uint64_t>(t));
          FMTCP_COUNT("test.worker_count", 2);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    // join() established the happens-before edge stop() requires.
    const TraceReport report = stop();

    const SpanAggregate* agg = report.find("test.worker");
    ASSERT_NE(agg, nullptr);
    EXPECT_EQ(agg->count,
              static_cast<std::uint64_t>(kThreads * kSpansPerThread));
    ASSERT_EQ(report.counters.size(), 1u);
    EXPECT_EQ(report.counters[0].name, "test.worker_count");
    EXPECT_EQ(report.counters[0].value,
              static_cast<std::uint64_t>(kThreads * kSpansPerThread * 2));

    std::set<std::uint32_t> record_threads;
    std::map<std::uint32_t, int> per_thread;
    for (const SpanRecord& record : report.records) {
      record_threads.insert(record.thread_index);
      ++per_thread[record.thread_index];
    }
    EXPECT_EQ(record_threads.size(), static_cast<std::size_t>(kThreads));
    for (const auto& [index, count] : per_thread) {
      EXPECT_EQ(count, kSpansPerThread);
    }
  }
}

TEST(SpanTracer, ThreadPoolWorkersReportDistinctThreadIds) {
  constexpr unsigned kWorkers = 3;
  SessionGuard session;
  ThreadPool pool(kWorkers);
  // The latch forces every task onto a different worker: none can
  // finish until all three are running.
  std::latch all_running(kWorkers);
  for (unsigned i = 0; i < kWorkers; ++i) {
    pool.submit([&all_running] {
      FMTCP_SPAN("test.pool_task");
      all_running.arrive_and_wait();
    });
  }
  pool.wait();
  // wait() established the happens-before edge stop() requires.
  const TraceReport report = stop();

  std::set<std::uint32_t> task_threads;
  for (const SpanRecord& record : report.records) {
    if (std::string(record.name) == "test.pool_task") {
      task_threads.insert(record.thread_index);
    }
  }
  EXPECT_EQ(task_threads.size(), static_cast<std::size_t>(kWorkers));

  // The pool's own instrumentation fired too, from named threads.
  const SpanAggregate* task_agg = report.find("threadpool.task");
  ASSERT_NE(task_agg, nullptr);
  EXPECT_GE(task_agg->count, static_cast<std::uint64_t>(kWorkers));
  std::set<std::string> names;
  for (const auto& [index, name] : report.threads) names.insert(name);
  bool found_worker_name = false;
  for (const std::string& name : names) {
    if (name.rfind("pool-worker-", 0) == 0) found_worker_name = true;
  }
  EXPECT_TRUE(found_worker_name);
}

TEST(SpanTracer, ChromeExportRoundTripsSpanTable) {
  SessionGuard session;
  set_thread_name("main-test-thread");
  for (int i = 0; i < 5; ++i) {
    FMTCP_SPAN("test.export");
    burn_some_time();
  }
  const TraceReport report = stop();
  const std::string json = to_chrome_trace_json(report);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("main-test-thread"), std::string::npos);

  std::istringstream in(json);
  const ChromeTraceSummary summary = summarize_chrome_trace(in);
  EXPECT_EQ(summary.events_parsed, report.records.size());
  const SpanAggregate* agg = summary.report.find("test.export");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count, 5u);
  EXPECT_GT(agg->total_ms, 0.0);
}

TEST(SpanTracer, MergeReportNamesSpanAndCounterMetrics) {
  SessionGuard session;
  {
    FMTCP_SPAN("test.merged");
    FMTCP_COUNT("test.merged_count", 9);
  }
  const TraceReport report = stop();

  MetricsRegistry metrics;
  merge_report(report, metrics);
  EXPECT_EQ(metrics.counter_value("span.test.merged.count"), 1u);
  EXPECT_GE(metrics.gauge_value("span.test.merged.total_ms"),
            metrics.gauge_value("span.test.merged.self_ms"));
  EXPECT_EQ(metrics.counter_value("trace.test.merged_count"), 9u);
  EXPECT_EQ(metrics.counter_value("trace.dropped_records"), 0u);
}

TEST(SpanTracer, BackToBackSessionsDoNotLeakState) {
  {
    SessionGuard session;
    FMTCP_SPAN("test.first");
    FMTCP_COUNT("test.first_count", 1);
  }
  SessionGuard session;
  {
    FMTCP_SPAN("test.second");
  }
  const TraceReport report = stop();
  EXPECT_EQ(report.find("test.first"), nullptr);
  EXPECT_TRUE(report.counters.empty());
  const SpanAggregate* agg = report.find("test.second");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->count, 1u);
  ASSERT_EQ(report.records.size(), 1u);
}

}  // namespace
}  // namespace fmtcp::obs::trace
