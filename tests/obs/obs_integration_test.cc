// End-to-end observability: a short FMTCP run with an Observer attached
// must produce the documented metrics and timeline events, and turning
// observability on must not change protocol behaviour.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/runner.h"
#include "obs/observer.h"

namespace fmtcp::harness {
namespace {

Scenario lossy_scenario() {
  Scenario scenario;
  scenario.path2.loss = 0.15;
  scenario.duration = 10 * kSecond;
  scenario.seed = 7;
  return scenario;
}

TEST(ObsIntegration, FmtcpRunEmitsProtocolEvents) {
  obs::Observer observer(1u << 18);  // Ring big enough for the whole run.
  Scenario scenario = lossy_scenario();
  scenario.observer = &observer;
  const RunResult result = run_scenario(Protocol::kFmtcp, scenario);
  ASSERT_GT(result.delivered_bytes, 0u);

  // The documented event families for an FMTCP run over a lossy path.
  EXPECT_GT(observer.timeline.recent(obs::EventType::kCwndChange).size(),
            0u);
  EXPECT_GT(observer.timeline.recent(obs::EventType::kBlockDecoded).size(),
            0u);
  EXPECT_GT(
      observer.timeline.recent(obs::EventType::kEatPrediction).size(), 0u);
  EXPECT_GT(observer.timeline.recent(obs::EventType::kAllocation).size(),
            0u);
  // One sim-progress record per simulated second.
  EXPECT_EQ(observer.timeline.recent(obs::EventType::kSimProgress).size(),
            10u);

  // Metrics mirror the run. Decodes can outrun sender-side completion
  // (a block completes when its decode notification is ACK-confirmed),
  // never the reverse.
  EXPECT_GT(observer.metrics.counter_value("tcp.segments_sent"), 0u);
  EXPECT_GE(observer.metrics.counter_value("fmtcp.blocks_decoded"),
            result.blocks_completed);
  EXPECT_GT(observer.metrics.counter_value("sim.events.link.deliver"), 0u);
  const std::string json = observer.metrics.to_json();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("tcp.rtt_ms"), std::string::npos);

  EXPECT_GT(result.sim_events, 0u);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(ObsIntegration, TimelineTimestampsAreMonotone) {
  obs::Observer observer;
  Scenario scenario = lossy_scenario();
  scenario.observer = &observer;
  run_scenario(Protocol::kFmtcp, scenario);

  const std::vector<obs::TimelineEvent> events =
      observer.timeline.recent();
  ASSERT_GT(events.size(), 1u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t, events[i].t) << "at event " << i;
  }
}

TEST(ObsIntegration, ObserverDoesNotChangeProtocolBehaviour) {
  const RunResult plain = run_scenario(Protocol::kFmtcp, lossy_scenario());
  obs::Observer observer;
  Scenario scenario = lossy_scenario();
  scenario.observer = &observer;
  const RunResult observed = run_scenario(Protocol::kFmtcp, scenario);
  EXPECT_EQ(plain.delivered_bytes, observed.delivered_bytes);
  EXPECT_EQ(plain.blocks_completed, observed.blocks_completed);
  EXPECT_EQ(plain.sim_events, observed.sim_events);
}

TEST(ObsIntegration, MptcpRunEmitsSchedulerEvents) {
  obs::Observer observer;
  Scenario scenario = lossy_scenario();
  scenario.observer = &observer;
  run_scenario(Protocol::kMptcp, scenario);
  EXPECT_GT(
      observer.timeline.recent(obs::EventType::kSchedulerGrant).size(), 0u);
  EXPECT_GT(observer.metrics.counter_value("mptcp.scheduler_grants"), 0u);
  EXPECT_GT(observer.metrics.counter_value("tcp.segments_sent"), 0u);
}

TEST(ObsIntegration, RtoEventsAppearUnderHeavyLoss) {
  obs::Observer observer;
  Scenario scenario;
  scenario.path1.loss = 0.3;
  scenario.path2.loss = 0.3;
  scenario.duration = 20 * kSecond;
  scenario.seed = 11;
  scenario.observer = &observer;
  run_scenario(Protocol::kFmtcp, scenario);
  EXPECT_GT(observer.metrics.counter_value("tcp.rto_fires"), 0u);
  EXPECT_GT(observer.timeline.recent(obs::EventType::kRtoFired).size(), 0u);
}

}  // namespace
}  // namespace fmtcp::harness
