#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/timeline_summary.h"

namespace fmtcp::obs {
namespace {

TimelineEvent make_event(EventType type, std::uint64_t id) {
  TimelineEvent event;
  event.type = type;
  event.subflow = 1;
  event.t = from_ms(static_cast<double>(id));
  event.id = id;
  event.a = static_cast<double>(id) * 0.5;
  event.b = 64.0;
  return event;
}

TEST(EventTimeline, RingKeepsNewestEventsOldestFirst) {
  EventTimeline timeline(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    timeline.emit(make_event(EventType::kCwndChange, i));
  }
  EXPECT_EQ(timeline.emitted(), 10u);
  const std::vector<TimelineEvent> tail = timeline.recent();
  ASSERT_EQ(tail.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tail[i].id, 6 + i);
  }
}

TEST(EventTimeline, RecentFiltersByType) {
  EventTimeline timeline;
  timeline.emit(make_event(EventType::kCwndChange, 1));
  timeline.emit(make_event(EventType::kBlockDecoded, 2));
  timeline.emit(make_event(EventType::kCwndChange, 3));
  const auto cwnd = timeline.recent(EventType::kCwndChange);
  ASSERT_EQ(cwnd.size(), 2u);
  EXPECT_EQ(cwnd[0].id, 1u);
  EXPECT_EQ(cwnd[1].id, 3u);
  EXPECT_EQ(timeline.recent(EventType::kRtoFired).size(), 0u);
}

TEST(Timeline, EveryEventTypeHasAStableName) {
  for (int i = 0; i <= static_cast<int>(EventType::kSimProgress); ++i) {
    EXPECT_STRNE(event_type_name(static_cast<EventType>(i)), "?");
  }
}

TEST(Timeline, JsonlRoundTripsEveryField) {
  TimelineEvent event;
  event.type = EventType::kRtoFired;
  event.subflow = 2;
  event.t = from_seconds(1.25);
  event.id = 123456789ULL;
  event.a = 0.75;
  event.b = 12.5;

  TimelineEvent parsed;
  ASSERT_TRUE(parse_jsonl_line(to_jsonl(event), parsed));
  EXPECT_EQ(parsed.type, EventType::kRtoFired);
  EXPECT_EQ(parsed.subflow, 2u);
  EXPECT_NEAR(to_seconds(parsed.t), 1.25, 1e-9);
  EXPECT_EQ(parsed.id, 123456789ULL);
  EXPECT_DOUBLE_EQ(parsed.a, 0.75);
  EXPECT_DOUBLE_EQ(parsed.b, 12.5);
}

TEST(Timeline, JsonlRoundTripsEveryType) {
  for (int i = 0; i <= static_cast<int>(EventType::kSimProgress); ++i) {
    const TimelineEvent event =
        make_event(static_cast<EventType>(i), static_cast<std::uint64_t>(i));
    TimelineEvent parsed;
    ASSERT_TRUE(parse_jsonl_line(to_jsonl(event), parsed))
        << to_jsonl(event);
    EXPECT_EQ(parsed.type, event.type);
    EXPECT_EQ(parsed.id, event.id);
  }
}

TEST(Timeline, MalformedLinesAreRejected) {
  TimelineEvent event;
  EXPECT_FALSE(parse_jsonl_line("", event));
  EXPECT_FALSE(parse_jsonl_line("not json", event));
  EXPECT_FALSE(parse_jsonl_line("{\"ev\":\"no_such_event\",\"t\":1}", event));
  EXPECT_FALSE(parse_jsonl_line("{\"ev\":\"cwnd_change\"}", event));
}

TEST(EventTimeline, JsonlFileSinkWritesOneParseableLinePerEvent) {
  const std::string path = "/tmp/fmtcp_timeline_test.jsonl";
  {
    EventTimeline timeline;
    timeline.open_jsonl(path);
    timeline.emit(make_event(EventType::kCwndChange, 0));
    timeline.emit(make_event(EventType::kBlockDecoded, 1));
    timeline.flush();
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    TimelineEvent parsed;
    while (std::getline(in, line)) {
      EXPECT_TRUE(parse_jsonl_line(line, parsed)) << line;
      ++lines;
    }
    EXPECT_EQ(lines, 2u);
  }
  std::remove(path.c_str());
}

TEST(EventTimelineDeathTest, UnwritablePathFailsLoudlyWithPath) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        EventTimeline timeline;
        timeline.open_jsonl("/nonexistent-dir/timeline.jsonl");
      },
      "cannot open '/nonexistent-dir/timeline.jsonl'");
}

TEST(TimelineSummary, AggregatesPerSubflowAndPerBlock) {
  std::string lines;
  lines += to_jsonl({EventType::kCwndChange, 0, from_seconds(0.1), 0, 2.0,
                     64.0}) + "\n";
  lines += to_jsonl({EventType::kCwndChange, 0, from_seconds(0.5), 0, 6.0,
                     64.0}) + "\n";
  lines += to_jsonl({EventType::kRtoFired, 1, from_seconds(1.0), 7, 0.4,
                     1.0}) + "\n";
  lines += to_jsonl({EventType::kBlockDecoded, 0, from_seconds(1.5), 3,
                     66.0, 2.0}) + "\n";
  lines += to_jsonl({EventType::kBlockDecoded, 1, from_seconds(2.0), 4,
                     70.0, 6.0}) + "\n";
  lines += to_jsonl({EventType::kEatOutcome, 1, from_seconds(2.5), 0, 2.0,
                     2.5}) + "\n";
  lines += "garbage line\n";

  std::istringstream in(lines);
  const TimelineSummary summary = summarize_timeline(in);
  EXPECT_EQ(summary.total_events, 6u);
  EXPECT_EQ(summary.malformed_lines, 1u);
  EXPECT_EQ(summary.per_type.at("cwnd_change"), 2u);
  EXPECT_EQ(summary.per_subflow.at(0).cwnd_changes, 2u);
  EXPECT_EQ(summary.per_subflow.at(0).min_cwnd, 2.0);
  EXPECT_EQ(summary.per_subflow.at(0).max_cwnd, 6.0);
  EXPECT_EQ(summary.per_subflow.at(1).rto_fires, 1u);
  EXPECT_EQ(summary.blocks_decoded, 2u);
  EXPECT_DOUBLE_EQ(summary.mean_symbols_per_block, 68.0);
  EXPECT_NEAR(summary.first_decode_s, 1.5, 1e-9);
  EXPECT_NEAR(summary.last_decode_s, 2.0, 1e-9);
  EXPECT_NEAR(summary.per_subflow.at(1).mean_abs_eat_error_s, 0.5, 1e-9);
  EXPECT_NEAR(summary.first_event_s, 0.1, 1e-9);
  EXPECT_NEAR(summary.last_event_s, 2.5, 1e-9);

  const std::string report = format_timeline_summary(summary);
  EXPECT_NE(report.find("cwnd_change"), std::string::npos);
  EXPECT_NE(report.find("malformed"), std::string::npos);
  EXPECT_NE(report.find("blocks: 2 decoded"), std::string::npos);
}

TEST(Timeline, JsonEscapeHandlesSpecialsAndControlChars) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("cr\rhere"), "cr\\rhere");
  EXPECT_EQ(json_escape(std::string("nul\x01""byte")), "nul\\u0001byte");
  EXPECT_EQ(json_escape(""), "");
}

TEST(Timeline, JsonlLinesNeverContainRawNewlines) {
  for (int i = 0; i <= static_cast<int>(EventType::kSimProgress); ++i) {
    const std::string line =
        to_jsonl({static_cast<EventType>(i), 0, 0, 0, 0.0, 0.0});
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

}  // namespace
}  // namespace fmtcp::obs
