#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fmtcp::obs {
namespace {

TEST(MetricsRegistry, CounterHandlesShareSlotPerName) {
  MetricsRegistry registry;
  Counter a = registry.counter("tcp.rto_fires");
  Counter b = registry.counter("tcp.rto_fires");
  a.inc();
  b.inc(4);
  EXPECT_EQ(registry.counter_value("tcp.rto_fires"), 5u);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

TEST(MetricsRegistry, HandlesStayValidAsRegistryGrows) {
  MetricsRegistry registry;
  Counter first = registry.counter("first");
  // Force many slot allocations after taking the handle; a vector-backed
  // registry would invalidate `first` here.
  for (int i = 0; i < 300; ++i) {
    registry.counter("c" + std::to_string(i)).inc();
  }
  first.inc(7);
  EXPECT_EQ(registry.counter_value("first"), 7u);
  EXPECT_EQ(registry.metric_count(), 301u);
}

TEST(MetricsRegistry, NullHandlesAreNoOps) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  counter.inc();
  gauge.set(3.0);
  histogram.observe(1.0);  // Must not crash.
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(MetricsRegistry, GaugeLastValueWins) {
  MetricsRegistry registry;
  Gauge gauge = registry.gauge("cwnd");
  gauge.set(1.5);
  gauge.set(42.0);
  EXPECT_EQ(registry.gauge_value("cwnd"), 42.0);
}

TEST(MetricsRegistry, UnknownNamesReadAsZeroOrEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("nope"), 0u);
  EXPECT_EQ(registry.gauge_value("nope"), 0.0);
  EXPECT_TRUE(registry.histogram_counts("nope").empty());
}

TEST(MetricsRegistry, HistogramBucketsAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("rtt_ms", {1.0, 10.0, 100.0});
  h.observe(0.5);     // <= 1    -> bucket 0
  h.observe(1.0);     // <= 1    -> bucket 0 (inclusive)
  h.observe(5.0);     // <= 10   -> bucket 1
  h.observe(100.0);   // <= 100  -> bucket 2
  h.observe(1000.0);  // > 100   -> overflow bucket
  const std::vector<std::uint64_t> counts =
      registry.histogram_counts("rtt_ms");
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(MetricsRegistry, HistogramReregistrationKeepsFirstBounds) {
  MetricsRegistry registry;
  Histogram a = registry.histogram("h", {1.0, 2.0});
  Histogram b = registry.histogram("h", {100.0});  // Bounds ignored.
  a.observe(1.5);
  b.observe(1.5);
  const std::vector<std::uint64_t> counts = registry.histogram_counts("h");
  ASSERT_EQ(counts.size(), 3u);  // First registration's 2 bounds + overflow.
  EXPECT_EQ(counts[1], 2u);
}

TEST(MetricsRegistry, ToJsonSerializesEveryKind) {
  MetricsRegistry registry;
  registry.counter("events").inc(3);
  registry.gauge("cwnd").set(12.5);
  registry.histogram("delay", {10.0, 20.0}).observe(15.0);
  const std::string json = registry.to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"events\":3},"
            "\"gauges\":{\"cwnd\":12.5},"
            "\"histograms\":{\"delay\":{\"bounds\":[10,20],"
            "\"counts\":[0,1,0],\"count\":1,\"sum\":15}}}");
}

TEST(MetricsRegistry, EmptyRegistryToJson) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

}  // namespace
}  // namespace fmtcp::obs
