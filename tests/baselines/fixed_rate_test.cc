#include "baselines/fixed_rate.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulator.h"

namespace fmtcp::baselines {
namespace {

TEST(FixedRateParams, BatchSizePerEquationFour) {
  FixedRateParams params;
  params.block_symbols = 64;
  params.assumed_loss = 0.0;
  EXPECT_EQ(params.batch_size(), 64u);
  params.assumed_loss = 0.2;
  EXPECT_EQ(params.batch_size(), 80u);  // ceil(64 / 0.8).
}

FixedRateConnectionConfig test_config(std::uint64_t total_blocks,
                                      double assumed_loss) {
  FixedRateConnectionConfig config;
  config.params.block_symbols = 16;
  config.params.symbol_bytes = 64;
  config.params.assumed_loss = assumed_loss;
  config.params.total_blocks = total_blocks;
  config.subflow.mss_payload = 8 * config.params.symbol_wire_bytes();
  config.subflow.rtt.max_rto = 4 * kSecond;
  return config;
}

net::PathConfig path(double delay_ms, double loss) {
  net::PathConfig config;
  config.one_way_delay = from_seconds(delay_ms / 1e3);
  config.loss_rate = loss;
  config.bandwidth_Bps = 0.625e6;
  return config;
}

struct TestRun {
  sim::Simulator sim;
  net::Topology topology;
  FixedRateConnection connection;

  TestRun(std::uint64_t seed, const FixedRateConnectionConfig& config,
      double loss1, double loss2)
      : sim(seed),
        topology(sim, {path(100.0, loss1), path(100.0, loss2)}),
        connection(sim, topology, config) {
    connection.start();
  }
};

TEST(FixedRate, TransferCompletes) {
  TestRun run(1, test_config(20, 0.05), 0.0, 0.05);
  run.sim.run_until(120 * kSecond);
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 20u);
}

TEST(FixedRate, AccurateEstimateAvoidsTopUps) {
  // Lossless paths, assumed 0: the batch is exactly k̂ and suffices.
  TestRun run(2, test_config(20, 0.0), 0.0, 0.0);
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 20u);
  EXPECT_EQ(run.connection.sender().topup_rounds(), 0u);
  EXPECT_EQ(run.connection.sender().symbols_sent(), 20u * 16u);
}

TEST(FixedRate, UnderestimatedLossForcesTopUps) {
  // Both paths 20% lossy, assumed 2%: Eq. 6 regime — ARQ rounds needed.
  TestRun run(3, test_config(20, 0.02), 0.2, 0.2);
  run.sim.run_until(200 * kSecond);
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 20u);
  EXPECT_GT(run.connection.sender().topup_rounds(), 0u);
}

TEST(FixedRate, OverProvisionedBatchWastesSymbols) {
  // Assumed 30% on lossless paths: ~43% extra symbols all redundant.
  TestRun run(4, test_config(10, 0.3), 0.0, 0.0);
  run.sim.run_until(60 * kSecond);
  ASSERT_EQ(run.connection.receiver().blocks_delivered(), 10u);
  EXPECT_GT(run.connection.receiver().redundant_symbols(), 0u);
}

TEST(FixedRate, DelaysRecorded) {
  TestRun run(5, test_config(10, 0.05), 0.0, 0.05);
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.connection.block_delays().completed_blocks(), 10u);
}

}  // namespace
}  // namespace fmtcp::baselines
