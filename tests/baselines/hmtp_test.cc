#include "baselines/hmtp.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulator.h"

namespace fmtcp::baselines {
namespace {

HmtpConnectionConfig test_config(std::uint64_t total_blocks) {
  HmtpConnectionConfig config;
  config.params.block_symbols = 16;
  config.params.symbol_bytes = 64;
  config.params.total_blocks = total_blocks;
  config.params.carry_payload = true;
  config.subflow.mss_payload = 8 * config.params.symbol_wire_bytes();
  config.subflow.rtt.max_rto = 4 * kSecond;
  return config;
}

net::PathConfig path(double delay_ms, double loss) {
  net::PathConfig config;
  config.one_way_delay = from_seconds(delay_ms / 1e3);
  config.loss_rate = loss;
  config.bandwidth_Bps = 0.625e6;
  return config;
}

struct TestRun {
  sim::Simulator sim;
  net::Topology topology;
  HmtpConnection connection;

  TestRun(std::uint64_t seed, const HmtpConnectionConfig& config, double loss2)
      : sim(seed),
        topology(sim, {path(100.0, 0.0), path(100.0, loss2)}),
        connection(sim, topology, config) {
    connection.start();
  }
};

TEST(Hmtp, FiniteTransferCompletesAndVerifies) {
  TestRun run(1, test_config(20), 0.05);
  run.sim.run_until(120 * kSecond);
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 20u);
  EXPECT_TRUE(run.connection.receiver().payload_verified());
}

TEST(Hmtp, StopAndWaitGeneratesHeavyRedundancy) {
  TestRun run(2, test_config(20), 0.0);
  run.sim.run_until(120 * kSecond);
  ASSERT_EQ(run.connection.receiver().blocks_delivered(), 20u);
  // Keeps streaming until the decode confirmation returns: far more than
  // the k̂ + ~1.6 a smart sender needs.
  const double per_block =
      static_cast<double>(
          run.connection.sender().blocks().total_symbols_sent()) /
      20.0;
  EXPECT_GT(per_block, 20.0);  // k̂ = 16 => over 25% redundancy at least.
}

TEST(Hmtp, BlocksDeliverInOrder) {
  TestRun run(3, test_config(10), 0.1);
  run.sim.run_until(120 * kSecond);
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 10u);
  EXPECT_EQ(run.connection.receiver().deliver_next(), 10u);
}

TEST(Hmtp, SurvivesLossSurges) {
  TestRun run(4, test_config(10), 0.3);
  run.sim.run_until(200 * kSecond);
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 10u);
}

}  // namespace
}  // namespace fmtcp::baselines
