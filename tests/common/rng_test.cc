#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace fmtcp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t x = rng.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == -3;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(31);
  Rng child = parent.fork();
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() != child.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, ForkDeterministic) {
  Rng a(37);
  Rng b(37);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, NextBitRoughlyBalanced) {
  Rng rng(41);
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bit()) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, StreamHasNoShortCycle) {
  Rng rng(GetParam());
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_u64());
  EXPECT_EQ(seen.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 2, 42, 12345,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace fmtcp
