#include "common/timeseries.h"

#include <gtest/gtest.h>

namespace fmtcp {
namespace {

TEST(BinnedSeries, BinsByTime) {
  BinnedSeries s(kSecond);
  s.add(0, 10.0);
  s.add(kSecond - 1, 5.0);
  s.add(kSecond, 7.0);
  ASSERT_EQ(s.bin_count(), 2u);
  EXPECT_DOUBLE_EQ(s.bin_sum(0), 15.0);
  EXPECT_DOUBLE_EQ(s.bin_sum(1), 7.0);
}

TEST(BinnedSeries, RatePerSecond) {
  BinnedSeries s(2 * kSecond);
  s.add(kSecond, 10.0);
  EXPECT_DOUBLE_EQ(s.rate_at(0), 5.0);  // 10 over a 2 s bin.
}

TEST(BinnedSeries, GrowsOnDemand) {
  BinnedSeries s(kSecond);
  s.add(10 * kSecond, 1.0);
  EXPECT_EQ(s.bin_count(), 11u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s.bin_sum(i), 0.0);
  EXPECT_EQ(s.bin_sum(10), 1.0);
}

TEST(BinnedSeries, BinStart) {
  BinnedSeries s(500 * kMillisecond);
  EXPECT_EQ(s.bin_start(0), 0);
  EXPECT_EQ(s.bin_start(3), 1500 * kMillisecond);
}

TEST(BinnedSeries, Total) {
  BinnedSeries s(kSecond);
  s.add(0, 1.0);
  s.add(5 * kSecond, 2.5);
  EXPECT_DOUBLE_EQ(s.total(), 3.5);
}

TEST(BinnedSeries, EmptyTotalZero) {
  BinnedSeries s(kSecond);
  EXPECT_EQ(s.bin_count(), 0u);
  EXPECT_EQ(s.total(), 0.0);
}

}  // namespace
}  // namespace fmtcp
