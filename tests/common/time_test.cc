#include "common/time.h"

#include <gtest/gtest.h>

namespace fmtcp {
namespace {

TEST(Time, Constants) {
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(Time, FromMs) {
  EXPECT_EQ(from_ms(100), 100 * kMillisecond);
  EXPECT_EQ(from_ms(0), 0);
}

TEST(Time, FromSecondsFractional) {
  EXPECT_EQ(from_seconds(0.5), kSecond / 2);
  EXPECT_EQ(from_seconds(1.5), 3 * kSecond / 2);
}

TEST(Time, RoundTripSeconds) {
  const SimTime t = from_seconds(12.345);
  EXPECT_NEAR(to_seconds(t), 12.345, 1e-9);
}

TEST(Time, ToMs) {
  EXPECT_DOUBLE_EQ(to_ms(from_ms(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_ms(kSecond), 1000.0);
}

TEST(Time, NeverOrdersAfterEverything) {
  EXPECT_GT(kNever, from_seconds(1e9));
}

}  // namespace
}  // namespace fmtcp
