#include "common/unique_function.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>

namespace fmtcp {
namespace {

TEST(UniqueFunction, DefaultIsEmpty) {
  UniqueFunction fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(UniqueFunction, InvokesInlineCapture) {
  int calls = 0;
  UniqueFunction fn = [&calls] { ++calls; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunction, InvokesHeapSpilledCapture) {
  // A capture too large for the inline buffer takes the heap path.
  std::array<int, 64> big{};
  big[0] = 7;
  big[63] = 9;
  int sum = 0;
  UniqueFunction fn = [big, &sum] { sum = big[0] + big[63]; };
  fn();
  EXPECT_EQ(sum, 16);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  // The reason this class exists: std::function rejects this lambda.
  auto value = std::make_unique<int>(41);
  int seen = 0;
  UniqueFunction fn = [v = std::move(value), &seen] { seen = *v + 1; };
  fn();
  EXPECT_EQ(seen, 42);
}

TEST(UniqueFunction, MoveTransfersTarget) {
  int calls = 0;
  UniqueFunction a = [&calls] { ++calls; };
  UniqueFunction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(UniqueFunction, MoveAssignReplacesTarget) {
  int first = 0, second = 0;
  UniqueFunction fn = [&first] { ++first; };
  fn = [&second] { ++second; };
  fn();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(UniqueFunction, DestroysCaptureExactlyOnce) {
  auto counter = std::make_shared<int>(0);
  {
    UniqueFunction fn = [counter] { /* keep alive */ };
    EXPECT_EQ(counter.use_count(), 2);
    UniqueFunction moved = std::move(fn);
    EXPECT_EQ(counter.use_count(), 2);  // Move, not copy.
  }
  EXPECT_EQ(counter.use_count(), 1);
}

}  // namespace
}  // namespace fmtcp
