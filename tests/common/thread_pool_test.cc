#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace fmtcp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitWithNothingSubmitted) {
  ThreadPool pool(2);
  pool.wait();  // Must not hang.
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait();
  pool.submit([&done] { done.fetch_add(1); });
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPool, TasksWritingDisjointSlots) {
  // The sweep layer's usage pattern: each task owns one result slot.
  std::vector<int> results(64, 0);
  ThreadPool pool(8);
  for (std::size_t i = 0; i < results.size(); ++i) {
    pool.submit([&results, i] { results[i] = static_cast<int>(i) + 1; });
  }
  pool.wait();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }  // ~ThreadPool waits for queued work.
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ThreadCountMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

}  // namespace
}  // namespace fmtcp
