#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fmtcp {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 10; ++i) {
    const double x = i * 1.7 - 3.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SampleSet, QuantileExact) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 20.0);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(SampleSet, QuantileUnsortedInput) {
  SampleSet s;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, MeanAbsDelta) {
  SampleSet s;
  for (double x : {1.0, 3.0, 2.0, 6.0}) s.add(x);
  // |2| + |-1| + |4| = 7, over 3 gaps.
  EXPECT_NEAR(s.mean_abs_delta(), 7.0 / 3.0, 1e-12);
}

TEST(SampleSet, MeanAbsDeltaNeedsTwo) {
  SampleSet s;
  EXPECT_EQ(s.mean_abs_delta(), 0.0);
  s.add(42.0);
  EXPECT_EQ(s.mean_abs_delta(), 0.0);
}

TEST(SampleSet, AddAfterQuantileResorts) {
  SampleSet s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(SampleSet, SingleSampleStddevZero) {
  SampleSet s;
  s.add(4.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.mean(), 4.0);
}

}  // namespace
}  // namespace fmtcp
