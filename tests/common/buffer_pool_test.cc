#include "common/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/aligned.h"

namespace fmtcp {
namespace {

TEST(BufferPool, AcquireReturnsRequestedSize) {
  BufferPool pool;
  const auto buffer = pool.acquire(160);
  EXPECT_EQ(buffer.size(), 160u);
  EXPECT_EQ(pool.acquired(), 1u);
  EXPECT_EQ(pool.reused(), 0u);
}

TEST(BufferPool, ReleasedBufferIsReused) {
  BufferPool pool;
  auto buffer = pool.acquire(160);
  const std::uint8_t* storage = buffer.data();
  pool.release(std::move(buffer));
  EXPECT_EQ(pool.free_count(), 1u);

  const auto again = pool.acquire(160);
  EXPECT_EQ(again.size(), 160u);
  EXPECT_EQ(again.data(), storage);  // Same allocation came back.
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPool, ReuseResizesToRequest) {
  BufferPool pool;
  pool.release(AlignedBytes(32, 0xAB));
  const auto bigger = pool.acquire(64);
  EXPECT_EQ(bigger.size(), 64u);

  pool.release(AlignedBytes(64, 0xCD));
  const auto smaller = pool.acquire(16);
  EXPECT_EQ(smaller.size(), 16u);
}

TEST(BufferPool, EmptyReleaseIgnored) {
  BufferPool pool;
  pool.release({});
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPool, FreeListCapped) {
  BufferPool pool(/*max_free=*/2);
  for (int i = 0; i < 5; ++i) {
    pool.release(AlignedBytes(8, 0));
  }
  EXPECT_EQ(pool.free_count(), 2u);
}

TEST(BufferPool, StatsTrackOutstandingAndHighWater) {
  BufferPool pool;
  auto a = pool.acquire(32);
  auto b = pool.acquire(32);
  auto c = pool.acquire(32);
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquired, 3u);
  EXPECT_EQ(stats.allocated, 3u);
  EXPECT_EQ(stats.reused, 0u);
  EXPECT_EQ(stats.outstanding, 3);
  EXPECT_EQ(stats.high_water, 3);

  pool.release(std::move(a));
  pool.release(std::move(b));
  stats = pool.stats();
  EXPECT_EQ(stats.released, 2u);
  EXPECT_EQ(stats.outstanding, 1);
  EXPECT_EQ(stats.high_water, 3);  // High-water mark never recedes.
  EXPECT_EQ(stats.free, 2u);

  auto d = pool.acquire(32);  // Served from the free list.
  stats = pool.stats();
  EXPECT_EQ(stats.acquired, 4u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.allocated, 3u);
  EXPECT_EQ(stats.outstanding, 2);
  EXPECT_EQ(stats.free, 1u);
}

TEST(BufferPool, HandoutsAre64ByteAlignedAndCounted) {
  BufferPool pool;
  std::vector<AlignedBytes> out;
  for (std::size_t size : {1u, 8u, 160u, 1400u, 4096u}) {
    out.push_back(pool.acquire(size));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(out.back().data()) %
                  kBufferAlignment,
              0u)
        << "size " << size;
  }
  // Recycled buffers keep the alignment contract too.
  for (auto& buffer : out) pool.release(std::move(buffer));
  const auto recycled = pool.acquire(160);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(recycled.data()) %
                kBufferAlignment,
            0u);
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquired, 6u);
  EXPECT_EQ(stats.aligned_handouts, stats.acquired);
}

TEST(BufferPool, MovePreservesAlignedAllocation) {
  BufferPool pool;
  AlignedBytes buffer = pool.acquire(160);
  const std::uint8_t* storage = buffer.data();
  // The packet path moves payloads sender → packet → receiver → decoder;
  // a move must carry the same (aligned) allocation, not reallocate.
  AlignedBytes moved = std::move(buffer);
  EXPECT_EQ(moved.data(), storage);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(moved.data()) % kBufferAlignment,
            0u);
}

TEST(BufferPool, StatsCountDroppedReleases) {
  BufferPool pool(/*max_free=*/1);
  pool.release(AlignedBytes(8, 0));
  pool.release(AlignedBytes(8, 0));
  pool.release(AlignedBytes(8, 0));
  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.released, 3u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.free, 1u);
  EXPECT_EQ(stats.outstanding, -3);  // Never-acquired buffers released.
}

}  // namespace
}  // namespace fmtcp
