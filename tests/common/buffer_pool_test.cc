#include "common/buffer_pool.h"

#include <gtest/gtest.h>

namespace fmtcp {
namespace {

TEST(BufferPool, AcquireReturnsRequestedSize) {
  BufferPool pool;
  const auto buffer = pool.acquire(160);
  EXPECT_EQ(buffer.size(), 160u);
  EXPECT_EQ(pool.acquired(), 1u);
  EXPECT_EQ(pool.reused(), 0u);
}

TEST(BufferPool, ReleasedBufferIsReused) {
  BufferPool pool;
  auto buffer = pool.acquire(160);
  const std::uint8_t* storage = buffer.data();
  pool.release(std::move(buffer));
  EXPECT_EQ(pool.free_count(), 1u);

  const auto again = pool.acquire(160);
  EXPECT_EQ(again.size(), 160u);
  EXPECT_EQ(again.data(), storage);  // Same allocation came back.
  EXPECT_EQ(pool.reused(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPool, ReuseResizesToRequest) {
  BufferPool pool;
  pool.release(std::vector<std::uint8_t>(32, 0xAB));
  const auto bigger = pool.acquire(64);
  EXPECT_EQ(bigger.size(), 64u);

  pool.release(std::vector<std::uint8_t>(64, 0xCD));
  const auto smaller = pool.acquire(16);
  EXPECT_EQ(smaller.size(), 16u);
}

TEST(BufferPool, EmptyReleaseIgnored) {
  BufferPool pool;
  pool.release({});
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPool, FreeListCapped) {
  BufferPool pool(/*max_free=*/2);
  for (int i = 0; i < 5; ++i) {
    pool.release(std::vector<std::uint8_t>(8, 0));
  }
  EXPECT_EQ(pool.free_count(), 2u);
}

}  // namespace
}  // namespace fmtcp
