#include "common/flags.h"

#include <gtest/gtest.h>

namespace fmtcp {
namespace {

FlagParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  FlagParser flags = parse({"--name=value", "--x=3.5"});
  EXPECT_EQ(flags.get_string("name", "d"), "value");
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0.0), 3.5);
}

TEST(Flags, SpaceSyntax) {
  FlagParser flags = parse({"--name", "value", "--n", "42"});
  EXPECT_EQ(flags.get_string("name", "d"), "value");
  EXPECT_EQ(flags.get_int("n", 0), 42);
}

TEST(Flags, BareBooleanIsTrue) {
  FlagParser flags = parse({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("quiet", false));
  EXPECT_TRUE(flags.get_bool("missing_default_true", true));
}

TEST(Flags, BooleanValues) {
  FlagParser flags = parse({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  FlagParser flags = parse({});
  EXPECT_EQ(flags.get_string("s", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(flags.get_double("x", 2.25), 2.25);
  EXPECT_EQ(flags.get_int("n", -7), -7);
}

TEST(Flags, NegativeAndFloatNumbers) {
  FlagParser flags = parse({"--n=-12", "--x=-0.5"});
  EXPECT_EQ(flags.get_int("n", 0), -12);
  EXPECT_DOUBLE_EQ(flags.get_double("x", 0), -0.5);
}

TEST(Flags, PositionalArguments) {
  FlagParser flags = parse({"pos1", "--k=v", "pos2"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "pos2");
}

TEST(Flags, UnknownFlagsDetected) {
  FlagParser flags = parse({"--known=1", "--mystery=2"});
  flags.get_int("known", 0);
  const auto unknown = flags.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "mystery");
}

TEST(Flags, HasReportsPresence) {
  FlagParser flags = parse({"--present"});
  EXPECT_TRUE(flags.has("present"));
  EXPECT_FALSE(flags.has("absent"));
}

TEST(Flags, UsageListsRegisteredFlags) {
  FlagParser flags = parse({});
  flags.get_int("alpha", 5, "the alpha knob");
  const std::string usage = flags.usage();
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("default: 5"), std::string::npos);
  EXPECT_NE(usage.find("the alpha knob"), std::string::npos);
}

TEST(Flags, LastValueWins) {
  FlagParser flags = parse({"--n=1", "--n=2"});
  EXPECT_EQ(flags.get_int("n", 0), 2);
}

}  // namespace
}  // namespace fmtcp
