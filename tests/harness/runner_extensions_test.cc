// The harness must actually plumb the extension toggles through to the
// protocol stacks (a silent no-op toggle would invalidate the extension
// benches).
#include <gtest/gtest.h>

#include "harness/runner.h"

namespace fmtcp::harness {
namespace {

Scenario lossy_scenario() {
  Scenario scenario;
  scenario.duration = 20 * kSecond;
  scenario.path2 = {100.0, 0.15};
  scenario.seed = 3;
  return scenario;
}

TEST(RunnerExtensions, SackChangesMptcpBehaviour) {
  ProtocolOptions base = ProtocolOptions::defaults();
  ProtocolOptions sack = base;
  sack.sack = true;
  const RunResult without =
      run_scenario(Protocol::kMptcp, lossy_scenario(), base);
  const RunResult with =
      run_scenario(Protocol::kMptcp, lossy_scenario(), sack);
  EXPECT_NE(with.delivered_bytes, without.delivered_bytes);
  // SACK repairs holes without waiting out go-back-N rounds, so MPTCP
  // moves more data (absolute retransmission counts rise with the extra
  // traffic, so throughput is the meaningful comparison).
  EXPECT_GT(with.delivered_bytes, without.delivered_bytes);
}

TEST(RunnerExtensions, ReinjectionToggleReachesSender) {
  ProtocolOptions base = ProtocolOptions::defaults();
  ProtocolOptions reinject = base;
  reinject.mptcp_reinjection = true;
  const RunResult without =
      run_scenario(Protocol::kMptcp, lossy_scenario(), base);
  const RunResult with =
      run_scenario(Protocol::kMptcp, lossy_scenario(), reinject);
  EXPECT_NE(with.delivered_bytes, without.delivered_bytes);
}

TEST(RunnerExtensions, DelayedAcksReduceReverseTraffic) {
  ProtocolOptions base = ProtocolOptions::defaults();
  ProtocolOptions delack = base;
  delack.delayed_acks = true;
  const RunResult without =
      run_scenario(Protocol::kFmtcp, lossy_scenario(), base);
  const RunResult with =
      run_scenario(Protocol::kFmtcp, lossy_scenario(), delack);
  // Behaviour must differ, and the protocol must still work.
  EXPECT_NE(with.delivered_bytes, without.delivered_bytes);
  EXPECT_GT(with.delivered_bytes, 0u);
  EXPECT_TRUE(with.payload_ok);
}

TEST(RunnerExtensions, SystematicCodeStillVerifies) {
  ProtocolOptions options = ProtocolOptions::defaults();
  options.fmtcp.systematic = true;
  const RunResult result =
      run_scenario(Protocol::kFmtcp, lossy_scenario(), options);
  EXPECT_GT(result.blocks_completed, 0u);
  EXPECT_TRUE(result.payload_ok);
}

TEST(RunnerExtensions, LiaToggleRuns) {
  ProtocolOptions options = ProtocolOptions::defaults();
  options.fmtcp_use_lia = true;
  options.mptcp_use_lia = true;
  EXPECT_GT(run_scenario(Protocol::kFmtcp, lossy_scenario(), options)
                .delivered_bytes,
            0u);
  EXPECT_GT(run_scenario(Protocol::kMptcp, lossy_scenario(), options)
                .delivered_bytes,
            0u);
}

TEST(RunnerExtensions, CubicToggleRuns) {
  ProtocolOptions options = ProtocolOptions::defaults();
  options.subflow.congestion = tcp::CongestionAlgo::kCubic;
  const RunResult result =
      run_scenario(Protocol::kFmtcp, lossy_scenario(), options);
  EXPECT_GT(result.delivered_bytes, 0u);
  EXPECT_TRUE(result.payload_ok);
}

}  // namespace
}  // namespace fmtcp::harness
