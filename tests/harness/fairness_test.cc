#include "harness/fairness.h"

#include <gtest/gtest.h>

namespace fmtcp::harness {
namespace {

FairnessConfig base_config() {
  FairnessConfig config;
  config.duration = 60 * kSecond;
  config.seed = 5;
  return config;
}

TEST(Fairness, TcpVsTcpSplitsEvenly) {
  FairnessConfig config = base_config();
  config.protocol_a = Protocol::kMptcp;
  config.protocol_b = Protocol::kMptcp;
  const FairnessResult r = run_fairness(config);
  EXPECT_GT(r.goodput_a_MBps, 0.05);
  EXPECT_GT(r.goodput_b_MBps, 0.05);
  // Lossless drop-tail sharing shows mild phase effects; 0.90 still
  // means neither flow is starved.
  EXPECT_GT(r.jain_index(), 0.90);
}

TEST(Fairness, FmtcpIsTcpFriendly) {
  // The paper's §II claim: coding must not harm fairness. FMTCP runs the
  // same Reno per subflow, so it must not starve a competing TCP flow.
  FairnessConfig config = base_config();
  const FairnessResult r = run_fairness(config);
  EXPECT_GT(r.goodput_a_MBps, 0.05);
  EXPECT_GT(r.goodput_b_MBps, 0.05);
  EXPECT_GT(r.jain_index(), 0.90);
  EXPECT_LT(r.share_a(), 0.65);
  EXPECT_GT(r.share_a(), 0.35);
}

TEST(Fairness, SymmetricFmtcpSplitsEvenly) {
  FairnessConfig config = base_config();
  config.protocol_b = Protocol::kFmtcp;
  const FairnessResult r = run_fairness(config);
  EXPECT_GT(r.jain_index(), 0.95);
}

TEST(Fairness, BothSurviveRandomLoss) {
  FairnessConfig config = base_config();
  config.loss_rate = 0.03;
  const FairnessResult r = run_fairness(config);
  EXPECT_GT(r.goodput_a_MBps, 0.01);
  EXPECT_GT(r.goodput_b_MBps, 0.01);
}

TEST(Fairness, JainIndexMath) {
  FairnessResult r;
  r.goodput_a_MBps = 1.0;
  r.goodput_b_MBps = 1.0;
  EXPECT_DOUBLE_EQ(r.jain_index(), 1.0);
  r.goodput_b_MBps = 0.0;
  EXPECT_DOUBLE_EQ(r.jain_index(), 0.5);
  EXPECT_DOUBLE_EQ(r.share_a(), 1.0);
}

}  // namespace
}  // namespace fmtcp::harness
