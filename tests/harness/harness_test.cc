#include <gtest/gtest.h>

#include "harness/printer.h"
#include "harness/runner.h"
#include "harness/table1.h"

namespace fmtcp::harness {
namespace {

TEST(Table1, MatchesPaperParameters) {
  const auto& cases = table1_cases();
  ASSERT_EQ(cases.size(), 8u);
  const double delays[] = {100, 100, 100, 100, 25, 50, 100, 150};
  const double losses[] = {0.02, 0.05, 0.10, 0.15, 0.10, 0.10, 0.10, 0.10};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(cases[i].delay_ms, delays[i]) << "case " << i + 1;
    EXPECT_DOUBLE_EQ(cases[i].loss, losses[i]) << "case " << i + 1;
  }
}

TEST(Table1, ScenarioFixesSubflowOne) {
  const Scenario scenario = table1_scenario(3);
  EXPECT_DOUBLE_EQ(scenario.path1.delay_ms, 100.0);
  EXPECT_DOUBLE_EQ(scenario.path1.loss, 0.0);
  EXPECT_DOUBLE_EQ(scenario.path2.loss, 0.15);
}

TEST(Scenario, PathConfigConversion) {
  Scenario scenario;
  scenario.bandwidth_Bps = 1e6;
  scenario.queue_packets = 42;
  const net::PathConfig config = scenario.path_config({25.0, 0.07});
  EXPECT_EQ(config.one_way_delay, from_ms(25));
  EXPECT_DOUBLE_EQ(config.loss_rate, 0.07);
  EXPECT_DOUBLE_EQ(config.bandwidth_Bps, 1e6);
  EXPECT_EQ(config.queue_packets, 42u);
}

TEST(ProtocolOptions, DefaultsAreConsistent) {
  const ProtocolOptions options = ProtocolOptions::defaults();
  // MSS is a whole number of symbols (Eq. 9 constraint).
  EXPECT_EQ(options.subflow.mss_payload %
                options.fmtcp.symbol_wire_bytes(),
            0u);
  // Fixed-rate comparator uses the same geometry.
  EXPECT_EQ(options.fixed_rate.block_symbols, options.fmtcp.block_symbols);
  EXPECT_EQ(options.fixed_rate.symbol_bytes, options.fmtcp.symbol_bytes);
}

TEST(ProtocolNames, AllDistinct) {
  EXPECT_STREQ(protocol_name(Protocol::kFmtcp), "FMTCP");
  EXPECT_STREQ(protocol_name(Protocol::kMptcp), "IETF-MPTCP");
  EXPECT_STREQ(protocol_name(Protocol::kHmtp), "HMTP");
  EXPECT_STREQ(protocol_name(Protocol::kFixedRate), "FixedRate");
}

TEST(Runner, ShortRunEveryProtocol) {
  Scenario scenario;
  scenario.duration = 5 * kSecond;
  scenario.path2 = {100.0, 0.05};
  for (Protocol protocol : {Protocol::kFmtcp, Protocol::kMptcp,
                            Protocol::kHmtp, Protocol::kFixedRate}) {
    const RunResult result = run_scenario(protocol, scenario);
    EXPECT_GT(result.delivered_bytes, 0u) << protocol_name(protocol);
    EXPECT_GT(result.goodput_MBps, 0.0) << protocol_name(protocol);
    EXPECT_TRUE(result.payload_ok) << protocol_name(protocol);
    EXPECT_EQ(result.goodput_series_MBps.size(), 5u)
        << protocol_name(protocol);
  }
}

TEST(Runner, LossSurgeScheduleApplies) {
  Scenario scenario;
  scenario.duration = 5 * kSecond;
  scenario.path2 = {100.0, 0.0};
  scenario.path2_loss_schedule = {{0, 0.0}, {2 * kSecond, 0.3}};
  const RunResult result = run_scenario(Protocol::kFmtcp, scenario);
  EXPECT_GT(result.delivered_bytes, 0u);
}

TEST(Runner, DeterministicForFixedSeed) {
  Scenario scenario;
  scenario.duration = 5 * kSecond;
  scenario.seed = 77;
  const RunResult a = run_scenario(Protocol::kFmtcp, scenario);
  const RunResult b = run_scenario(Protocol::kFmtcp, scenario);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.blocks_completed, b.blocks_completed);
  EXPECT_EQ(a.block_delays_ms, b.block_delays_ms);
}

TEST(Runner, CodingOverheadComputation) {
  RunResult result;
  result.blocks_completed = 10;
  result.symbols_sent = 704;  // 10 blocks * 64 symbols = 640 needed.
  EXPECT_NEAR(result.coding_overhead(64), 0.1, 1e-12);
  RunResult empty;
  EXPECT_EQ(empty.coding_overhead(64), 0.0);
}

TEST(Printer, FormatHelper) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.5, 0), "2");
}

}  // namespace
}  // namespace fmtcp::harness
