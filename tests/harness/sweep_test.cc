#include "harness/sweep.h"

#include <gtest/gtest.h>

namespace fmtcp::harness {
namespace {

Scenario short_scenario() {
  Scenario scenario;
  scenario.duration = 5 * kSecond;
  scenario.path2 = {100.0, 0.05};
  return scenario;
}

TEST(Sweep, ParallelMatchesSerial) {
  std::vector<SweepJob> jobs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SweepJob job;
    job.scenario = short_scenario();
    job.scenario.seed = seed;
    jobs.push_back(job);
  }
  const std::vector<RunResult> parallel = run_parallel(jobs, 4);
  ASSERT_EQ(parallel.size(), 6u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const RunResult serial = run_scenario(
        jobs[i].protocol, jobs[i].scenario, jobs[i].options);
    EXPECT_EQ(parallel[i].delivered_bytes, serial.delivered_bytes)
        << "seed " << jobs[i].scenario.seed;
    EXPECT_EQ(parallel[i].blocks_completed, serial.blocks_completed);
  }
}

TEST(Sweep, ResultsInJobOrder) {
  std::vector<SweepJob> jobs;
  // Different protocols so results are distinguishable.
  SweepJob fmtcp_job;
  fmtcp_job.scenario = short_scenario();
  SweepJob mptcp_job = fmtcp_job;
  mptcp_job.protocol = Protocol::kMptcp;
  jobs = {fmtcp_job, mptcp_job, fmtcp_job};
  const auto results = run_parallel(jobs, 3);
  EXPECT_EQ(results[0].protocol, Protocol::kFmtcp);
  EXPECT_EQ(results[1].protocol, Protocol::kMptcp);
  EXPECT_EQ(results[2].protocol, Protocol::kFmtcp);
  EXPECT_EQ(results[0].delivered_bytes, results[2].delivered_bytes);
}

TEST(Sweep, RunSeedsOverridesSeed) {
  const auto results =
      run_seeds(Protocol::kFmtcp, short_scenario(),
                ProtocolOptions::defaults(), {10, 20, 30}, 3);
  ASSERT_EQ(results.size(), 3u);
  // Different seeds should (almost surely) differ in fine-grain counts.
  EXPECT_FALSE(results[0].block_delays_ms == results[1].block_delays_ms &&
               results[1].block_delays_ms == results[2].block_delays_ms);
}

TEST(Sweep, EmptyJobs) {
  EXPECT_TRUE(run_parallel({}, 4).empty());
}

TEST(Sweep, AggregateMeanAndStddev) {
  std::vector<RunResult> results(3);
  results[0].goodput_MBps = 1.0;
  results[1].goodput_MBps = 2.0;
  results[2].goodput_MBps = 3.0;
  const SeedStats stats = aggregate(
      results, [](const RunResult& r) { return r.goodput_MBps; });
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 1.0);
}

TEST(Sweep, AggregateSingleSample) {
  std::vector<RunResult> results(1);
  results[0].goodput_MBps = 5.0;
  const SeedStats stats = aggregate(
      results, [](const RunResult& r) { return r.goodput_MBps; });
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

}  // namespace
}  // namespace fmtcp::harness
