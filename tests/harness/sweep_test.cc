#include "harness/sweep.h"

#include <gtest/gtest.h>

namespace fmtcp::harness {
namespace {

Scenario short_scenario() {
  Scenario scenario;
  scenario.duration = 5 * kSecond;
  scenario.path2 = {100.0, 0.05};
  return scenario;
}

/// Asserts two RunResults are bit-identical in every deterministic field
/// (wall_seconds is the one legitimately nondeterministic member).
void expect_identical(const RunResult& a, const RunResult& b,
                      const char* context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.goodput_MBps, b.goodput_MBps);
  EXPECT_EQ(a.goodput_series_MBps, b.goodput_series_MBps);
  EXPECT_EQ(a.blocks_completed, b.blocks_completed);
  EXPECT_EQ(a.mean_delay_ms, b.mean_delay_ms);
  EXPECT_EQ(a.jitter_ms, b.jitter_ms);
  EXPECT_EQ(a.max_delay_ms, b.max_delay_ms);
  EXPECT_EQ(a.block_delays_ms, b.block_delays_ms);
  EXPECT_EQ(a.redundant_symbols, b.redundant_symbols);
  EXPECT_EQ(a.symbols_sent, b.symbols_sent);
  EXPECT_EQ(a.payload_ok, b.payload_ok);
  EXPECT_EQ(a.sim_events, b.sim_events);
  ASSERT_EQ(a.subflows.size(), b.subflows.size());
  for (std::size_t i = 0; i < a.subflows.size(); ++i) {
    EXPECT_EQ(a.subflows[i].segments_sent, b.subflows[i].segments_sent);
    EXPECT_EQ(a.subflows[i].retransmissions,
              b.subflows[i].retransmissions);
    EXPECT_EQ(a.subflows[i].timeouts, b.subflows[i].timeouts);
    EXPECT_EQ(a.subflows[i].final_cwnd, b.subflows[i].final_cwnd);
    EXPECT_EQ(a.subflows[i].loss_estimate, b.subflows[i].loss_estimate);
  }
}

/// The core determinism contract: the same cells produce bit-identical
/// results whether run serially or on 2 or 8 threads.
TEST(SweepRunner, BitIdenticalAcrossJobCounts) {
  const auto run_with_jobs = [](unsigned jobs) {
    SweepRunner runner(jobs);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      Scenario scenario = short_scenario();
      scenario.seed = seed;
      runner.submit(Protocol::kFmtcp, scenario,
                    ProtocolOptions::defaults());
    }
    Scenario mptcp_scenario = short_scenario();
    runner.submit(Protocol::kMptcp, mptcp_scenario,
                  ProtocolOptions::defaults());
    return runner.run();
  };

  const std::vector<RunResult> serial = run_with_jobs(1);
  const std::vector<RunResult> two = run_with_jobs(2);
  const std::vector<RunResult> eight = run_with_jobs(8);
  ASSERT_EQ(serial.size(), 5u);
  ASSERT_EQ(two.size(), 5u);
  ASSERT_EQ(eight.size(), 5u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], two[i], "jobs=2 vs jobs=1");
    expect_identical(serial[i], eight[i], "jobs=8 vs jobs=1");
  }
}

TEST(SweepRunner, SubmitReturnsResultIndex) {
  SweepRunner runner(2);
  EXPECT_EQ(runner.submit(Protocol::kFmtcp, short_scenario(),
                          ProtocolOptions::defaults()),
            0u);
  EXPECT_EQ(runner.submit(Protocol::kMptcp, short_scenario(),
                          ProtocolOptions::defaults()),
            1u);
  EXPECT_EQ(runner.queued(), 2u);
  const auto results = runner.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].protocol, Protocol::kFmtcp);
  EXPECT_EQ(results[1].protocol, Protocol::kMptcp);
}

TEST(SweepRunner, ReusableAfterRun) {
  SweepRunner runner(2);
  runner.submit(Protocol::kFmtcp, short_scenario(),
                ProtocolOptions::defaults());
  const auto first = runner.run();
  EXPECT_EQ(runner.queued(), 0u);
  // Indices restart for the next batch.
  EXPECT_EQ(runner.submit(Protocol::kFmtcp, short_scenario(),
                          ProtocolOptions::defaults()),
            0u);
  const auto second = runner.run();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  expect_identical(first[0], second[0], "same cell re-run");
}

TEST(SweepRunner, EmptyRun) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.run().empty());
}

TEST(SweepRunner, StreamingDeliversInSubmissionOrder) {
  // More cells than the in-flight window (2*jobs) so the windowed
  // submit/deliver pipeline wraps its slots several times.
  const auto run_with_jobs = [](unsigned jobs) {
    SweepRunner runner(jobs);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Scenario scenario = short_scenario();
      scenario.duration = 2 * kSecond;
      scenario.seed = seed;
      runner.submit(Protocol::kFmtcp, scenario,
                    ProtocolOptions::defaults());
    }
    std::vector<std::size_t> indices;
    std::vector<RunResult> results;
    runner.run_streaming(
        [&](std::size_t i, const SweepJob& job, RunResult&& r) {
          EXPECT_EQ(job.scenario.seed, i + 1);
          indices.push_back(i);
          results.push_back(std::move(r));
        });
    EXPECT_EQ(runner.queued(), 0u);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      EXPECT_EQ(indices[i], i);
    }
    return results;
  };

  const std::vector<RunResult> serial = run_with_jobs(1);
  const std::vector<RunResult> pooled = run_with_jobs(3);
  ASSERT_EQ(serial.size(), 12u);
  ASSERT_EQ(pooled.size(), 12u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], pooled[i], "streaming jobs=3 vs jobs=1");
  }
}

TEST(SweepRunner, StreamingMatchesRun) {
  const auto make = [] {
    SweepRunner runner(2);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Scenario scenario = short_scenario();
      scenario.duration = 2 * kSecond;
      scenario.seed = seed;
      runner.submit(Protocol::kFmtcp, scenario,
                    ProtocolOptions::defaults());
    }
    return runner;
  };
  SweepRunner batch = make();
  const std::vector<RunResult> collected = batch.run();
  SweepRunner streaming = make();
  std::vector<RunResult> streamed;
  streaming.run_streaming(
      [&](std::size_t, const SweepJob&, RunResult&& r) {
        streamed.push_back(std::move(r));
      });
  ASSERT_EQ(collected.size(), streamed.size());
  for (std::size_t i = 0; i < collected.size(); ++i) {
    expect_identical(collected[i], streamed[i], "run() vs run_streaming()");
  }
}

TEST(SweepRunner, StreamingEmpty) {
  SweepRunner runner(4);
  bool called = false;
  runner.run_streaming(
      [&](std::size_t, const SweepJob&, RunResult&&) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Sweep, ParallelMatchesSerial) {
  std::vector<SweepJob> jobs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SweepJob job;
    job.scenario = short_scenario();
    job.scenario.seed = seed;
    jobs.push_back(job);
  }
  const std::vector<RunResult> parallel = run_parallel(jobs, 4);
  ASSERT_EQ(parallel.size(), 6u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const RunResult serial = run_scenario(
        jobs[i].protocol, jobs[i].scenario, jobs[i].options);
    EXPECT_EQ(parallel[i].delivered_bytes, serial.delivered_bytes)
        << "seed " << jobs[i].scenario.seed;
    EXPECT_EQ(parallel[i].blocks_completed, serial.blocks_completed);
  }
}

TEST(Sweep, ResultsInJobOrder) {
  std::vector<SweepJob> jobs;
  // Different protocols so results are distinguishable.
  SweepJob fmtcp_job;
  fmtcp_job.scenario = short_scenario();
  SweepJob mptcp_job = fmtcp_job;
  mptcp_job.protocol = Protocol::kMptcp;
  jobs = {fmtcp_job, mptcp_job, fmtcp_job};
  const auto results = run_parallel(jobs, 3);
  EXPECT_EQ(results[0].protocol, Protocol::kFmtcp);
  EXPECT_EQ(results[1].protocol, Protocol::kMptcp);
  EXPECT_EQ(results[2].protocol, Protocol::kFmtcp);
  EXPECT_EQ(results[0].delivered_bytes, results[2].delivered_bytes);
}

TEST(Sweep, RunSeedsOverridesSeed) {
  const auto results =
      run_seeds(Protocol::kFmtcp, short_scenario(),
                ProtocolOptions::defaults(), {10, 20, 30}, 3);
  ASSERT_EQ(results.size(), 3u);
  // Different seeds should (almost surely) differ in fine-grain counts.
  EXPECT_FALSE(results[0].block_delays_ms == results[1].block_delays_ms &&
               results[1].block_delays_ms == results[2].block_delays_ms);
}

TEST(Sweep, EmptyJobs) {
  EXPECT_TRUE(run_parallel({}, 4).empty());
}

TEST(Sweep, AggregateMeanAndStddev) {
  std::vector<RunResult> results(3);
  results[0].goodput_MBps = 1.0;
  results[1].goodput_MBps = 2.0;
  results[2].goodput_MBps = 3.0;
  const SeedStats stats = aggregate(
      results, [](const RunResult& r) { return r.goodput_MBps; });
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 1.0);
}

TEST(Sweep, AggregateSingleSample) {
  std::vector<RunResult> results(1);
  results[0].goodput_MBps = 5.0;
  const SeedStats stats = aggregate(
      results, [](const RunResult& r) { return r.goodput_MBps; });
  EXPECT_DOUBLE_EQ(stats.mean, 5.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
}

}  // namespace
}  // namespace fmtcp::harness
