#include "mptcp/receiver.h"

#include <gtest/gtest.h>

namespace fmtcp::mptcp {
namespace {

net::Packet data(std::uint64_t seq, std::uint32_t len) {
  net::Packet p;
  p.kind = net::PacketKind::kData;
  p.data_seq = seq;
  p.data_len = len;
  return p;
}

struct Fixture {
  sim::Simulator sim{1};
  metrics::GoodputMeter goodput{kSecond};
  MptcpReceiver receiver{sim, 1000, &goodput};

  // on_segment takes a mutable lvalue; this adapter lets tests feed
  // freshly built packets inline.
  void deliver(net::Packet p) { receiver.on_segment(0, p); }
};

TEST(MptcpReceiver, InOrderDeliversImmediately) {
  Fixture f;
  f.deliver(data(0, 100));
  EXPECT_EQ(f.receiver.rcv_data_next(), 100u);
  EXPECT_EQ(f.receiver.delivered_bytes(), 100u);
  EXPECT_EQ(f.receiver.out_of_order_bytes(), 0u);
}

TEST(MptcpReceiver, OutOfOrderHeldThenDelivered) {
  Fixture f;
  f.deliver(data(100, 100));
  EXPECT_EQ(f.receiver.rcv_data_next(), 0u);
  EXPECT_EQ(f.receiver.out_of_order_bytes(), 100u);
  f.deliver(data(0, 100));
  EXPECT_EQ(f.receiver.rcv_data_next(), 200u);
  EXPECT_EQ(f.receiver.delivered_bytes(), 200u);
  EXPECT_EQ(f.receiver.out_of_order_bytes(), 0u);
}

TEST(MptcpReceiver, WindowShrinksWithHeldBytes) {
  Fixture f;
  EXPECT_EQ(f.receiver.advertised_window(), 1000u);
  f.deliver(data(100, 300));
  EXPECT_EQ(f.receiver.advertised_window(), 700u);
  f.deliver(data(0, 100));
  EXPECT_EQ(f.receiver.advertised_window(), 1000u);
}

TEST(MptcpReceiver, DuplicateFullyBelowAck) {
  Fixture f;
  f.deliver(data(0, 100));
  f.deliver(data(0, 100));
  EXPECT_EQ(f.receiver.delivered_bytes(), 100u);
  EXPECT_EQ(f.receiver.duplicate_bytes(), 100u);
}

TEST(MptcpReceiver, PartialOverlapClipped) {
  Fixture f;
  f.deliver(data(0, 100));
  f.deliver(data(50, 100));  // 50 dup + 50 new.
  EXPECT_EQ(f.receiver.rcv_data_next(), 150u);
  EXPECT_EQ(f.receiver.delivered_bytes(), 150u);
  EXPECT_EQ(f.receiver.duplicate_bytes(), 50u);
}

TEST(MptcpReceiver, MergesAdjacentRanges) {
  Fixture f;
  f.deliver(data(200, 100));
  f.deliver(data(100, 100));
  EXPECT_EQ(f.receiver.out_of_order_bytes(), 200u);
  f.deliver(data(0, 100));
  EXPECT_EQ(f.receiver.rcv_data_next(), 300u);
  EXPECT_EQ(f.receiver.out_of_order_bytes(), 0u);
}

TEST(MptcpReceiver, OverlappingOutOfOrderRanges) {
  Fixture f;
  f.deliver(data(100, 100));
  f.deliver(data(150, 100));  // Overlaps 50.
  EXPECT_EQ(f.receiver.out_of_order_bytes(), 150u);
  f.deliver(data(0, 100));
  EXPECT_EQ(f.receiver.rcv_data_next(), 250u);
}

TEST(MptcpReceiver, GapsHoldDelivery) {
  Fixture f;
  f.deliver(data(100, 50));
  f.deliver(data(300, 50));
  EXPECT_EQ(f.receiver.out_of_order_bytes(), 100u);
  f.deliver(data(0, 100));
  // Only up to the first gap (150..300) delivers.
  EXPECT_EQ(f.receiver.rcv_data_next(), 150u);
  EXPECT_EQ(f.receiver.out_of_order_bytes(), 50u);
}

TEST(MptcpReceiver, FillAckReportsAckAndWindow) {
  Fixture f;
  f.deliver(data(0, 100));
  f.deliver(data(200, 100));
  net::Packet ack;
  std::size_t extra = 0;
  f.receiver.fill_ack(0, data(200, 100), ack, extra);
  EXPECT_EQ(ack.data_seq, 100u);
  EXPECT_EQ(ack.window, 900u);
  EXPECT_GT(extra, 0u);
}

TEST(MptcpReceiver, MaxOooTracksPeak) {
  Fixture f;
  f.deliver(data(100, 400));
  f.deliver(data(0, 100));
  EXPECT_EQ(f.receiver.out_of_order_bytes(), 0u);
  EXPECT_EQ(f.receiver.max_out_of_order_bytes(), 400u);
}

TEST(MptcpReceiver, GoodputMeterFed) {
  Fixture f;
  f.deliver(data(0, 250));
  EXPECT_EQ(f.goodput.total_bytes(), 250u);
}

TEST(MptcpReceiver, ZeroLengthIgnored) {
  Fixture f;
  f.deliver(data(0, 0));
  EXPECT_EQ(f.receiver.rcv_data_next(), 0u);
}

}  // namespace
}  // namespace fmtcp::mptcp
