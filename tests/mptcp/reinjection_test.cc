// Opportunistic-reinjection extension tests.
#include <gtest/gtest.h>

#include "mptcp/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace fmtcp::mptcp {
namespace {

net::PathConfig path(double delay_ms, double loss) {
  net::PathConfig config;
  config.one_way_delay = from_seconds(delay_ms / 1e3);
  config.loss_rate = loss;
  config.bandwidth_Bps = 0.625e6;
  config.queue_packets = 100;
  return config;
}

MptcpConnectionConfig base_config(bool reinject) {
  MptcpConnectionConfig config;
  config.sender.segment_bytes = 1000;
  config.sender.enable_reinjection = reinject;
  config.receive_buffer_bytes = 64 * 1024;
  config.subflow.rtt.max_rto = 4 * kSecond;
  return config;
}

struct TestRun {
  sim::Simulator sim;
  net::Topology topology;
  MptcpConnection connection;

  TestRun(std::uint64_t seed, const MptcpConnectionConfig& config,
          double loss2)
      : sim(seed),
        topology(sim, {path(100.0, 0.0), path(100.0, loss2)}),
        connection(sim, topology, config) {
    connection.start();
  }
};

TEST(Reinjection, LostRangesResentOnOtherSubflow) {
  TestRun run(1, base_config(true), 0.15);
  run.sim.run_until(60 * kSecond);
  EXPECT_GT(run.connection.sender().reinjections(), 0u);
}

TEST(Reinjection, OffByDefault) {
  TestRun run(1, base_config(false), 0.15);
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.connection.sender().reinjections(), 0u);
}

TEST(Reinjection, ImprovesGoodputUnderLossySubflow) {
  const auto goodput = [](bool reinject) {
    TestRun run(7, base_config(reinject), 0.15);
    run.sim.run_until(120 * kSecond);
    return run.connection.receiver().delivered_bytes();
  };
  const auto with = goodput(true);
  const auto without = goodput(false);
  EXPECT_GT(with, without);
}

TEST(Reinjection, FiniteTransferStillExact) {
  MptcpConnectionConfig config = base_config(true);
  config.sender.total_bytes = 50000;
  TestRun run(3, config, 0.20);
  run.sim.run_until(120 * kSecond);
  // Duplicates from reinjection must not corrupt the byte stream.
  EXPECT_EQ(run.connection.receiver().delivered_bytes(), 50000u);
  EXPECT_EQ(run.connection.receiver().rcv_data_next(), 50000u);
}

TEST(Reinjection, ReducesWorstCaseBlockDelay) {
  const auto max_delay = [](bool reinject) {
    MptcpConnectionConfig config = base_config(reinject);
    TestRun run(11, config, 0.15);
    run.sim.run_until(120 * kSecond);
    return run.connection.block_delays().max_delay_ms();
  };
  EXPECT_LT(max_delay(true), max_delay(false));
}

}  // namespace
}  // namespace fmtcp::mptcp
