#include "mptcp/scheduler.h"

#include <gtest/gtest.h>

#include <optional>

#include "net/link.h"
#include "sim/simulator.h"

namespace fmtcp::mptcp {
namespace {

class NullProvider final : public tcp::SegmentProvider {
  std::optional<tcp::SegmentContent> next_segment(std::uint32_t) override {
    return std::nullopt;
  }
};

/// Two idle subflows with configurable ids; both have window space.
struct Fixture {
  sim::Simulator sim{1};
  net::Link link_a;
  net::Link link_b;
  NullProvider provider;
  tcp::Subflow sf0;
  tcp::Subflow sf1;
  std::vector<tcp::Subflow*> subflows;

  Fixture()
      : link_a(sim, {}, nullptr),
        link_b(sim, {}, nullptr),
        sf0(sim, make_config(0), link_a, provider),
        sf1(sim, make_config(1), link_b, provider),
        subflows{&sf0, &sf1} {}

  static tcp::SubflowConfig make_config(std::uint32_t id) {
    tcp::SubflowConfig config;
    config.id = id;
    return config;
  }
};

TEST(Scheduler, OpportunisticAlwaysGrants) {
  Fixture f;
  Scheduler scheduler(SchedulerPolicy::kOpportunistic);
  EXPECT_TRUE(scheduler.grant(0, f.subflows));
  EXPECT_TRUE(scheduler.grant(1, f.subflows));
}

TEST(Scheduler, LowestRttPrefersFasterFlow) {
  Fixture f;
  // Feed RTT samples: sf0 fast, sf1 slow. Subflows expose srtt via the
  // estimator; emulate by injecting samples through ack handling is
  // heavyweight — instead compare with equal RTTs (grant) as baseline.
  Scheduler scheduler(SchedulerPolicy::kLowestRttFirst);
  // Equal (fallback initial) RTTs: no strictly-lower competitor; grant.
  EXPECT_TRUE(scheduler.grant(0, f.subflows));
  EXPECT_TRUE(scheduler.grant(1, f.subflows));
}

TEST(Scheduler, RoundRobinAlternates) {
  Fixture f;
  Scheduler scheduler(SchedulerPolicy::kRoundRobin);
  EXPECT_TRUE(scheduler.grant(0, f.subflows));   // Turn 0 -> passes to 1.
  EXPECT_FALSE(scheduler.grant(0, f.subflows));  // Turn is 1's.
  EXPECT_TRUE(scheduler.grant(1, f.subflows));
  EXPECT_TRUE(scheduler.grant(0, f.subflows));
}

TEST(Scheduler, PolicyAccessor) {
  Scheduler scheduler(SchedulerPolicy::kRoundRobin);
  EXPECT_EQ(scheduler.policy(), SchedulerPolicy::kRoundRobin);
}

}  // namespace
}  // namespace fmtcp::mptcp
