// End-to-end IETF-MPTCP connection tests.
#include <gtest/gtest.h>

#include "mptcp/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace fmtcp::mptcp {
namespace {

MptcpConnectionConfig test_config(std::uint64_t total_bytes = 0) {
  MptcpConnectionConfig config;
  config.sender.segment_bytes = 1000;
  config.sender.total_bytes = total_bytes;
  config.sender.metric_block_bytes = 10000;
  config.receive_buffer_bytes = 64 * 1024;
  config.subflow.rtt.max_rto = 4 * kSecond;
  return config;
}

net::PathConfig path(double delay_ms, double loss) {
  net::PathConfig config;
  config.one_way_delay = from_seconds(delay_ms / 1e3);
  config.loss_rate = loss;
  config.bandwidth_Bps = 0.625e6;
  config.queue_packets = 100;
  return config;
}

struct TestRun {
  sim::Simulator sim;
  net::Topology topology;
  MptcpConnection connection;

  TestRun(std::uint64_t seed, const MptcpConnectionConfig& config, double loss2)
      : sim(seed),
        topology(sim, {path(100.0, 0.0), path(100.0, loss2)}),
        connection(sim, topology, config) {
    connection.start();
  }
};

TEST(MptcpIntegration, FiniteTransferDeliversExactBytes) {
  TestRun run(1, test_config(100000), 0.05);
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.connection.receiver().delivered_bytes(), 100000u);
  EXPECT_EQ(run.connection.sender().data_acked(), 100000u);
}

TEST(MptcpIntegration, InOrderDeliveryInvariant) {
  TestRun run(2, test_config(50000), 0.15);
  run.sim.run_until(60 * kSecond);
  // Everything delivered must be the in-order prefix.
  EXPECT_EQ(run.connection.receiver().delivered_bytes(),
            run.connection.receiver().rcv_data_next());
  EXPECT_EQ(run.connection.receiver().delivered_bytes(), 50000u);
}

TEST(MptcpIntegration, LossyPathCausesWindowLimiting) {
  TestRun run(3, test_config(0), 0.15);
  run.sim.run_until(60 * kSecond);
  // Receive-buffer blocking: the paper's bottleneck mechanism must be
  // observable under a 15%-lossy subflow.
  EXPECT_GT(run.connection.sender().window_limited_events(), 0u);
  EXPECT_GT(run.connection.receiver().max_out_of_order_bytes(), 0u);
}

TEST(MptcpIntegration, GoodputDegradesWithLoss) {
  const auto goodput = [](double loss) {
    TestRun run(4, test_config(0), loss);
    run.sim.run_until(60 * kSecond);
    return run.connection.receiver().delivered_bytes();
  };
  const auto clean = goodput(0.0);
  const auto lossy = goodput(0.15);
  EXPECT_LT(lossy, clean);
}

TEST(MptcpIntegration, BlockDelaysRecorded) {
  TestRun run(5, test_config(100000), 0.05);
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.connection.block_delays().completed_blocks(), 10u);
  EXPECT_GT(run.connection.block_delays().mean_delay_ms(), 0.0);
}

TEST(MptcpIntegration, RetransmissionsRepairLosses) {
  TestRun run(6, test_config(50000), 0.20);
  run.sim.run_until(120 * kSecond);
  EXPECT_EQ(run.connection.receiver().delivered_bytes(), 50000u);
  EXPECT_GT(run.connection.subflow(1).retransmissions(), 0u);
}

TEST(MptcpIntegration, Deterministic) {
  const auto run_once = [](std::uint64_t seed) {
    TestRun run(seed, test_config(0), 0.1);
    run.sim.run_until(20 * kSecond);
    return run.connection.receiver().delivered_bytes();
  };
  EXPECT_EQ(run_once(42), run_once(42));
}

TEST(MptcpIntegration, LiaCoupledRunsAndDelivers) {
  MptcpConnectionConfig config = test_config(50000);
  config.use_lia = true;
  TestRun run(7, config, 0.05);
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.connection.receiver().delivered_bytes(), 50000u);
}

TEST(MptcpIntegration, SchedulerVariantsDeliver) {
  for (SchedulerPolicy policy :
       {SchedulerPolicy::kLowestRttFirst, SchedulerPolicy::kRoundRobin}) {
    MptcpConnectionConfig config = test_config(30000);
    config.sender.scheduler = policy;
    TestRun run(8, config, 0.05);
    run.sim.run_until(60 * kSecond);
    EXPECT_EQ(run.connection.receiver().delivered_bytes(), 30000u)
        << static_cast<int>(policy);
  }
}

TEST(MptcpIntegration, FlowControlNeverOverflowsBuffer) {
  TestRun run(9, test_config(0), 0.25);
  run.sim.run_until(60 * kSecond);
  EXPECT_LE(run.connection.receiver().max_out_of_order_bytes(),
            64u * 1024u);
}

}  // namespace
}  // namespace fmtcp::mptcp
