#include <gtest/gtest.h>

#include "metrics/block_stats.h"
#include "metrics/goodput.h"

namespace fmtcp::metrics {
namespace {

TEST(GoodputMeter, TotalsAndRate) {
  GoodputMeter meter(kSecond);
  meter.on_delivered(0, 1000);
  meter.on_delivered(kSecond / 2, 500);
  meter.on_delivered(3 * kSecond, 1500);
  EXPECT_EQ(meter.total_bytes(), 3000u);
  EXPECT_DOUBLE_EQ(meter.mean_rate(3 * kSecond), 1000.0);
  EXPECT_DOUBLE_EQ(meter.mean_rate_MBps(3 * kSecond), 1e-3);
  EXPECT_EQ(meter.last_delivery(), 3 * kSecond);
}

TEST(GoodputMeter, SeriesBins) {
  GoodputMeter meter(kSecond);
  meter.on_delivered(0, 100);
  meter.on_delivered(kSecond + 1, 200);
  ASSERT_EQ(meter.series().bin_count(), 2u);
  EXPECT_DOUBLE_EQ(meter.series().rate_at(0), 100.0);
  EXPECT_DOUBLE_EQ(meter.series().rate_at(1), 200.0);
}

TEST(GoodputMeter, EmptyMeter) {
  GoodputMeter meter(kSecond);
  EXPECT_EQ(meter.total_bytes(), 0u);
  EXPECT_EQ(meter.mean_rate(kSecond), 0.0);
}

TEST(BlockDelayRecorder, MeanInMilliseconds) {
  BlockDelayRecorder rec;
  rec.record(0, from_ms(100));
  rec.record(1, from_ms(300));
  EXPECT_DOUBLE_EQ(rec.mean_delay_ms(), 200.0);
  EXPECT_EQ(rec.completed_blocks(), 2u);
}

TEST(BlockDelayRecorder, JitterIsStddev) {
  BlockDelayRecorder rec;
  rec.record(0, from_ms(100));
  rec.record(1, from_ms(100));
  rec.record(2, from_ms(100));
  EXPECT_DOUBLE_EQ(rec.jitter_ms(), 0.0);
  rec.record(3, from_ms(500));
  EXPECT_GT(rec.jitter_ms(), 0.0);
  EXPECT_DOUBLE_EQ(rec.jitter_ms(), rec.stddev_delay_ms());
}

TEST(BlockDelayRecorder, ConsecutiveJitter) {
  BlockDelayRecorder rec;
  rec.record(0, from_ms(100));
  rec.record(1, from_ms(150));
  rec.record(2, from_ms(100));
  // |50| + |-50| over 2 gaps.
  EXPECT_DOUBLE_EQ(rec.consecutive_jitter_ms(), 50.0);
}

TEST(BlockDelayRecorder, OutOfOrderCompletionSortsByBlock) {
  BlockDelayRecorder rec;
  rec.record(2, from_ms(300));
  rec.record(0, from_ms(100));
  rec.record(1, from_ms(200));
  EXPECT_EQ(rec.delays_ms_in_order(),
            (std::vector<double>{100.0, 200.0, 300.0}));
}

TEST(BlockDelayRecorder, MaxDelay) {
  BlockDelayRecorder rec;
  rec.record(0, from_ms(100));
  rec.record(1, from_ms(900));
  rec.record(2, from_ms(400));
  EXPECT_DOUBLE_EQ(rec.max_delay_ms(), 900.0);
}

TEST(BlockDelayRecorder, EmptyRecorder) {
  BlockDelayRecorder rec;
  EXPECT_EQ(rec.completed_blocks(), 0u);
  EXPECT_EQ(rec.mean_delay_ms(), 0.0);
  EXPECT_EQ(rec.jitter_ms(), 0.0);
  EXPECT_TRUE(rec.delays_ms_in_order().empty());
}

}  // namespace
}  // namespace fmtcp::metrics
