// Fixture for lint_determinism rule `pointer-key`. Scanned, not
// compiled.
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>

struct SpanShard { int n = 0; };

std::unordered_map<const char*, SpanShard> bad_literal_keys;  // EXPECT-LINT(pointer-key)
std::map<SpanShard*, int> bad_object_keys;                    // EXPECT-LINT(pointer-key)
std::set<const void*> bad_identity_set;                       // EXPECT-LINT(pointer-key)

// Clean: value-keyed maps; pointers in the *mapped* position are fine
// (they are never an iteration order).
std::unordered_map<std::string_view, SpanShard> good_view_keys;
std::map<std::string, SpanShard*> good_pointer_values;
std::set<std::string> good_value_set;
