// Fixture for lint_determinism rule `rand`. Not compiled — scanned by
// tools/lint_determinism.py --self-test. Each line that must produce a
// finding carries an EXPECT-LINT marker naming the rule; every other
// line must scan clean.
#include <cstdlib>
#include <random>

int bad_std_rand() { return std::rand(); }        // EXPECT-LINT(rand)
void bad_srand() { srand(42); }                   // EXPECT-LINT(rand)
int bad_device() {
  std::random_device rd;                          // EXPECT-LINT(rand)
  return static_cast<int>(rd());
}

// Clean: the seeded Rng is the sanctioned entropy source.
struct Rng { explicit Rng(unsigned long seed); unsigned long next(); };
unsigned long good_seeded(unsigned long seed) { return Rng(seed).next(); }

// Clean: identifiers merely containing the banned names.
int my_rand_helper();
int strand_count();
// Clean: banned token in a comment only: std::rand is stripped.
const char* good_string = "std::rand inside a string literal";
