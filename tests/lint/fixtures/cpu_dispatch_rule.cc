// Fixture for lint_determinism rule `cpu-dispatch`. Not compiled —
// scanned by tools/lint_determinism.py --self-test. Each line that must
// produce a finding carries an EXPECT-LINT marker naming the rule; every
// other line must scan clean.
#include <cpuid.h>
#include <sys/auxv.h>

bool bad_supports() {
  return __builtin_cpu_supports("avx2");          // EXPECT-LINT(cpu-dispatch)
}
void bad_init() { __builtin_cpu_init(); }         // EXPECT-LINT(cpu-dispatch)
bool bad_cpuid() {
  unsigned a, b, c, d;
  return __get_cpuid(1, &a, &b, &c, &d) != 0;     // EXPECT-LINT(cpu-dispatch)
}
bool bad_cpuid_count() {
  unsigned a, b, c, d;
  return __get_cpuid_count(7, 0, &a, &b, &c, &d); // EXPECT-LINT(cpu-dispatch)
}
unsigned long bad_auxv() { return getauxval(16); }  // EXPECT-LINT(cpu-dispatch)

// A justified NOLINT does NOT sanction a probe here: only the dispatch
// TU (cpu_features.cc — see the cpu_features_tu.cc-style fixture named
// cpu_features.cc) may probe, however good the reason.
bool bad_nolint_outside_dispatch_tu() {
  // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
  return __builtin_cpu_supports("sse2");                // EXPECT-LINT(cpu-dispatch)
}

// Clean: identifiers merely containing the banned names.
bool my_getauxval_cache();
// Clean: banned token in a comment only: __builtin_cpu_supports is stripped.
const char* good_string = "__get_cpuid inside a string literal";
