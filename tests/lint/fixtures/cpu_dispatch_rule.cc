// Fixture for lint_determinism rule `cpu-dispatch`. Not compiled —
// scanned by tools/lint_determinism.py --self-test. Each line that must
// produce a finding carries an EXPECT-LINT marker naming the rule; every
// other line must scan clean.
#include <cpuid.h>
#include <sys/auxv.h>

bool bad_supports() {
  return __builtin_cpu_supports("avx2");          // EXPECT-LINT(cpu-dispatch)
}
void bad_init() { __builtin_cpu_init(); }         // EXPECT-LINT(cpu-dispatch)
bool bad_cpuid() {
  unsigned a, b, c, d;
  return __get_cpuid(1, &a, &b, &c, &d) != 0;     // EXPECT-LINT(cpu-dispatch)
}
bool bad_cpuid_count() {
  unsigned a, b, c, d;
  return __get_cpuid_count(7, 0, &a, &b, &c, &d); // EXPECT-LINT(cpu-dispatch)
}
unsigned long bad_auxv() { return getauxval(16); }  // EXPECT-LINT(cpu-dispatch)

// Sanctioned: the one probe site, justified so review sees it.
bool good_probe() {
  // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
  return __builtin_cpu_supports("sse2");
}

// Clean: identifiers merely containing the banned names.
bool my_getauxval_cache();
// Clean: banned token in a comment only: __builtin_cpu_supports is stripped.
const char* good_string = "__get_cpuid inside a string literal";
