// Fixture for the NOLINT-DETERMINISM escape hatch. Scanned, not
// compiled.
#include <chrono>
#include <cstdlib>

// Suppressed on the same line: no finding.
auto good_same_line() {
  return std::chrono::steady_clock::now();  // NOLINT-DETERMINISM(diagnostic only)
}

// Suppressed from the preceding line: no finding.
auto good_previous_line() {
  // NOLINT-DETERMINISM(wall time feeds a log message, not a result)
  return std::chrono::steady_clock::now();
}

// A reason-less suppression is itself a finding, and does NOT suppress
// the underlying rule — both fire.
int bad_bare_nolint() {
  return std::rand();  // NOLINT-DETERMINISM  EXPECT-LINT(nolint) EXPECT-LINT(rand)
}

// Empty parens are just as unexplained.
int bad_empty_reason() {
  return std::rand();  // NOLINT-DETERMINISM()  EXPECT-LINT(nolint) EXPECT-LINT(rand)
}

// A suppression two lines up does not reach: the finding still fires.
int bad_too_far() {
  // NOLINT-DETERMINISM(this reason is attached to the blank line below)

  return std::rand();  // EXPECT-LINT(rand)
}
