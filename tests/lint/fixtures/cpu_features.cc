// Fixture for lint_determinism rule `cpu-dispatch`, dispatch-TU side.
// Not compiled — scanned by tools/lint_determinism.py --self-test. This
// file's basename matches the one TU allowed to probe the CPU
// (src/common/cpu_features.cc), so a justified NOLINT is honored here —
// and only here.
#include <cpuid.h>

// Sanctioned: the probe site, justified so review sees it.
bool good_probe_in_dispatch_tu() {
  // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
  return __builtin_cpu_supports("avx2");
}

// Even in the dispatch TU, a probe still needs its NOLINT reason.
bool bad_unjustified_probe() {
  return __builtin_cpu_supports("ssse3");  // EXPECT-LINT(cpu-dispatch)
}
