// Fixture for lint_determinism rule `wall-clock`. Scanned, not compiled.
#include <chrono>
#include <ctime>

auto bad_steady() {
  return std::chrono::steady_clock::now();        // EXPECT-LINT(wall-clock)
}
auto bad_system() {
  return std::chrono::system_clock::now();        // EXPECT-LINT(wall-clock)
}
auto bad_hires() {
  return std::chrono::high_resolution_clock::now();  // EXPECT-LINT(wall-clock)
}
long bad_time_null() { return time(NULL); }       // EXPECT-LINT(wall-clock)
long bad_time_empty() { return time(); }          // EXPECT-LINT(wall-clock)
long bad_std_time() { return std::time(nullptr); }  // EXPECT-LINT(wall-clock)
long bad_clock() { return std::clock(); }         // EXPECT-LINT(wall-clock)
void bad_gettimeofday(struct timeval* tv) {
  gettimeofday(tv, nullptr);                      // EXPECT-LINT(wall-clock)
}
void bad_clock_gettime(struct timespec* ts) {
  clock_gettime(0, ts);                           // EXPECT-LINT(wall-clock)
}

// Clean: sim time and identifiers that merely end in `time`.
double run_time(double t);
double good_sim(double now) { return run_time(now); }
double schedule_at_time(int step);
double good_at_time() { return schedule_at_time(3); }
struct Event { double time; };
double good_member(const Event& e) { return e.time; }
