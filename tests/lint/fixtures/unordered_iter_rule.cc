// Fixture for lint_determinism rule `unordered-iter`. Scanned, not
// compiled.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct State {
  std::unordered_map<std::string, int> spans;
  std::unordered_set<int> ids;
  std::map<std::string, int> ordered;
  std::vector<int> list;
};

int bad_member_iteration(const State& state) {
  int total = 0;
  for (const auto& [name, value] : state.spans) {  // EXPECT-LINT(unordered-iter)
    total += value;
  }
  return total;
}

int bad_set_iteration(const State& state) {
  int total = 0;
  for (int id : state.ids) total += id;            // EXPECT-LINT(unordered-iter)
  return total;
}

int bad_inline_type(std::unordered_map<int, int>& m) {
  int total = 0;
  for (auto& kv : static_cast<std::unordered_map<int, int>&>(m)) {  // EXPECT-LINT(unordered-iter)
    total += kv.second;
  }
  return total;
}

// Clean: ordered containers iterate deterministically.
int good_ordered(const State& state) {
  int total = 0;
  for (const auto& [name, value] : state.ordered) total += value;
  for (int v : state.list) total += v;
  return total;
}

// Clean: lookups into unordered containers are fine; only iteration
// order is hazardous.
int good_lookup(const State& state, const std::string& key) {
  auto it = state.spans.find(key);
  return it == state.spans.end() ? 0 : it->second;
}
