// Delayed-ACK extension tests.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "net/link.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::tcp {
namespace {

class NullSink final : public DataSink {
 public:
  void on_segment(std::uint32_t, net::Packet&) override {}
};

net::Packet data_packet(std::uint64_t seq) {
  net::Packet p;
  p.kind = net::PacketKind::kData;
  p.subflow = 0;
  p.seq = seq;
  p.size_bytes = 100;
  return p;
}

struct Fixture {
  sim::Simulator sim{1};
  net::Link ack_link;
  NullSink sink;
  SubflowReceiver receiver;
  std::vector<net::Packet> acks;

  static net::LinkConfig instant_link() {
    net::LinkConfig config;
    config.bandwidth_Bps = 1e9;
    config.prop_delay = 0;
    config.queue_packets = 0;
    return config;
  }

  explicit Fixture(SubflowReceiverConfig config)
      : ack_link(sim, instant_link(), nullptr),
        receiver(sim, 0, ack_link, sink, config) {
    ack_link.set_sink([this](net::Packet p) { acks.push_back(std::move(p)); });
  }
};

SubflowReceiverConfig delayed() {
  SubflowReceiverConfig config;
  config.delayed_acks = true;
  return config;
}

TEST(DelayedAck, DefaultAcksEveryPacket) {
  Fixture f(SubflowReceiverConfig{});
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    f.receiver.on_data_packet(data_packet(seq));
  }
  f.sim.run();
  EXPECT_EQ(f.acks.size(), 6u);
}

TEST(DelayedAck, AcksEverySecondInOrderPacket) {
  Fixture f(delayed());
  for (std::uint64_t seq = 0; seq < 6; ++seq) {
    f.receiver.on_data_packet(data_packet(seq));
  }
  f.sim.run_until(from_ms(1));
  EXPECT_EQ(f.acks.size(), 3u);
  EXPECT_EQ(f.acks.back().ack_next, 6u);
}

TEST(DelayedAck, TimerFlushesPendingAck) {
  Fixture f(delayed());
  f.receiver.on_data_packet(data_packet(0));  // Held (first of pair).
  f.sim.run_until(from_ms(10));
  EXPECT_EQ(f.acks.size(), 0u);
  f.sim.run_until(from_ms(100));  // 40 ms delack timer fires.
  ASSERT_EQ(f.acks.size(), 1u);
  EXPECT_EQ(f.acks[0].ack_next, 1u);
}

TEST(DelayedAck, OutOfOrderAckedImmediately) {
  Fixture f(delayed());
  f.receiver.on_data_packet(data_packet(2));  // Hole at 0,1.
  f.sim.run_until(from_ms(1));
  ASSERT_EQ(f.acks.size(), 1u);  // Immediate dup-ack.
  EXPECT_EQ(f.acks[0].ack_next, 0u);
}

TEST(DelayedAck, HoleFillAckedImmediately) {
  Fixture f(delayed());
  f.receiver.on_data_packet(data_packet(1));  // OOO: immediate.
  f.receiver.on_data_packet(data_packet(0));  // Fills hole: immediate.
  f.sim.run_until(from_ms(1));
  ASSERT_EQ(f.acks.size(), 2u);
  EXPECT_EQ(f.acks.back().ack_next, 2u);
}

TEST(DelayedAck, ReducesAckTrafficEndToEnd) {
  // A full transfer with delayed ACKs sends roughly half the ACKs.
  const auto acks_for = [](bool delayed_mode) {
    sim::Simulator sim(5);
    net::LinkConfig link_config;
    link_config.prop_delay = from_ms(50);
    net::Link forward(sim, link_config, nullptr);
    net::Link reverse(sim, link_config, nullptr);
    class Provider final : public SegmentProvider {
     public:
      std::optional<SegmentContent> next_segment(std::uint32_t) override {
        if (served_ >= 60) return std::nullopt;
        SegmentContent content;
        content.data_seq = served_++;
        content.payload_bytes = 100;
        return content;
      }
      std::uint64_t served_ = 0;
    } provider;
    NullSink sink;
    SubflowConfig config;
    SubflowReceiverConfig receiver_config;
    receiver_config.delayed_acks = delayed_mode;
    Subflow subflow(sim, config, forward, provider);
    SubflowReceiver receiver(sim, 0, reverse, sink, receiver_config);
    forward.set_sink(
        [&](net::Packet p) { receiver.on_data_packet(std::move(p)); });
    reverse.set_sink(
        [&](net::Packet p) { subflow.on_ack_packet(std::move(p)); });
    subflow.notify_send_opportunity();
    sim.run_until(60 * kSecond);
    EXPECT_EQ(receiver.rcv_next(), 60u);
    return receiver.acks_sent();
  };
  const std::uint64_t with = acks_for(true);
  const std::uint64_t without = acks_for(false);
  EXPECT_LT(with, without * 3 / 4);
}

}  // namespace
}  // namespace fmtcp::tcp
