#include "tcp/subflow.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "net/link.h"
#include "sim/simulator.h"

namespace fmtcp::tcp {
namespace {

/// Drops the i-th packet leaving the link (0-based) for each i in `drops`.
class ScriptedLoss final : public net::LossModel {
 public:
  explicit ScriptedLoss(std::set<std::uint64_t> drops)
      : drops_(std::move(drops)) {}
  bool should_drop(SimTime, Rng&) override {
    return drops_.count(counter_++) != 0;
  }
  double current_rate(SimTime) const override { return 0.0; }

 private:
  std::set<std::uint64_t> drops_;
  std::uint64_t counter_ = 0;
};

/// Serves `limit` segments tagged with an incrementing data_seq; fresh
/// retransmissions get new tags starting at 10000.
class FakeProvider final : public SegmentProvider {
 public:
  explicit FakeProvider(std::uint64_t limit) : limit_(limit) {}

  std::optional<SegmentContent> next_segment(std::uint32_t) override {
    if (served_ >= limit_) return std::nullopt;
    SegmentContent content;
    content.data_seq = served_++;
    content.data_len = 1;
    content.payload_bytes = 100;
    return content;
  }

  std::optional<SegmentContent> retransmit_segment(std::uint32_t,
                                                   std::uint64_t) override {
    ++retransmit_requests_;
    SegmentContent content;
    content.data_seq = 10000 + retransmit_requests_;
    content.data_len = 1;
    content.payload_bytes = 100;
    return content;
  }

  void on_segment_acked(std::uint32_t, std::uint64_t seq,
                        const SegmentContent&) override {
    acked_.push_back(seq);
  }

  void on_segment_lost(std::uint32_t, std::uint64_t seq,
                       const SegmentContent&) override {
    lost_.push_back(seq);
  }

  std::uint64_t served() const { return served_; }
  std::uint64_t retransmit_requests() const { return retransmit_requests_; }
  const std::vector<std::uint64_t>& acked() const { return acked_; }
  const std::vector<std::uint64_t>& lost() const { return lost_; }

 private:
  std::uint64_t limit_;
  std::uint64_t served_ = 0;
  std::uint64_t retransmit_requests_ = 0;
  std::vector<std::uint64_t> acked_;
  std::vector<std::uint64_t> lost_;
};

/// Records every delivered segment's data_seq tag.
class RecordingSink final : public DataSink {
 public:
  void on_segment(std::uint32_t, net::Packet& p) override {
    tags_.push_back(p.data_seq);
  }
  const std::vector<std::uint64_t>& tags() const { return tags_; }

 private:
  std::vector<std::uint64_t> tags_;
};

/// One subflow over a lossy forward link and clean reverse link.
struct Harness {
  sim::Simulator sim{7};
  net::Link forward;
  net::Link reverse;
  FakeProvider provider;
  RecordingSink sink;
  Subflow subflow;
  SubflowReceiver receiver;

  static net::LinkConfig fast_link() {
    net::LinkConfig config;
    config.bandwidth_Bps = 1e7;
    config.prop_delay = from_ms(100);
    return config;
  }

  Harness(std::uint64_t segments, std::set<std::uint64_t> forward_drops,
          bool fresh_retransmit, SubflowConfig config = {})
      : forward(sim, fast_link(),
                std::make_unique<ScriptedLoss>(std::move(forward_drops))),
        reverse(sim, fast_link(), nullptr),
        provider(segments),
        sink(),
        subflow(sim,
                [&] {
                  config.fresh_payload_on_retransmit = fresh_retransmit;
                  return config;
                }(),
                forward, provider),
        receiver(sim, 0, reverse, sink) {
    forward.set_sink(
        [this](net::Packet p) { receiver.on_data_packet(std::move(p)); });
    reverse.set_sink(
        [this](net::Packet p) { subflow.on_ack_packet(std::move(p)); });
  }

  void run(SimTime duration = 60 * kSecond) { sim.run_until(duration); }
};

TEST(Subflow, InitialWindowLimitsFlight) {
  SubflowConfig config;
  config.reno.initial_cwnd = 2.0;
  Harness h(100, {}, false, config);
  h.subflow.notify_send_opportunity();
  EXPECT_EQ(h.subflow.in_flight(), 2u);
  EXPECT_EQ(h.subflow.window_space(), 0u);
}

TEST(Subflow, LosslessTransferDeliversEverything) {
  Harness h(50, {}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_EQ(h.sink.tags().size(), 50u);
  EXPECT_EQ(h.subflow.in_flight(), 0u);
  EXPECT_EQ(h.provider.acked().size(), 50u);
  EXPECT_EQ(h.subflow.retransmissions(), 0u);
}

TEST(Subflow, CumulativeAckOrdersProviderEvents) {
  Harness h(20, {}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  for (std::size_t i = 0; i < h.provider.acked().size(); ++i) {
    EXPECT_EQ(h.provider.acked()[i], i);
  }
}

TEST(Subflow, StopsWhenProviderExhausted) {
  Harness h(5, {}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_EQ(h.subflow.segments_sent(), 5u);
  EXPECT_EQ(h.provider.served(), 5u);
}

TEST(Subflow, FastRetransmitOnTripleDupAck) {
  // Drop the 3rd transmission; plenty of later packets generate dupacks.
  Harness h(30, {2}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_GE(h.subflow.fast_retransmits(), 1u);
  EXPECT_EQ(h.subflow.timeouts(), 0u);
  // All 30 distinct tags eventually delivered (exactly-once content).
  std::set<std::uint64_t> tags(h.sink.tags().begin(), h.sink.tags().end());
  for (std::uint64_t i = 0; i < 30; ++i) EXPECT_TRUE(tags.count(i)) << i;
}

TEST(Subflow, OriginalPayloadModeResendsSameContent) {
  Harness h(30, {2}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_EQ(h.provider.retransmit_requests(), 0u);
  // The lost tag (2) still arrives: the stored copy was retransmitted.
  std::set<std::uint64_t> tags(h.sink.tags().begin(), h.sink.tags().end());
  EXPECT_TRUE(tags.count(2));
}

TEST(Subflow, FreshPayloadModeAsksProvider) {
  Harness h(30, {2}, true);
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_GE(h.provider.retransmit_requests(), 1u);
  // The retransmission slot carried a fresh tag (>= 10000), and the
  // original tag 2 was never re-delivered.
  std::set<std::uint64_t> tags(h.sink.tags().begin(), h.sink.tags().end());
  bool fresh_seen = false;
  for (std::uint64_t tag : tags) fresh_seen = fresh_seen || tag >= 10000;
  EXPECT_TRUE(fresh_seen);
  EXPECT_EQ(tags.count(2), 0u);
}

TEST(Subflow, LossNotificationFiresOnRetransmit) {
  Harness h(30, {2}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  ASSERT_GE(h.provider.lost().size(), 1u);
  EXPECT_EQ(h.provider.lost()[0], 2u);
}

TEST(Subflow, RtoFiresWhenWindowLost) {
  // Initial window is 2; drop both first transmissions: no dupacks
  // possible, so recovery must come from the retransmission timer.
  SubflowConfig config;
  config.reno.initial_cwnd = 2.0;
  Harness h(10, {0, 1}, false, config);
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_GE(h.subflow.timeouts(), 1u);
  std::set<std::uint64_t> tags(h.sink.tags().begin(), h.sink.tags().end());
  EXPECT_EQ(tags.size(), 10u);
}

TEST(Subflow, TimeoutCollapsesWindow) {
  SubflowConfig config;
  config.reno.initial_cwnd = 8.0;
  // Drop a burst so a timeout is forced.
  Harness h(8, {0, 1, 2, 3, 4, 5, 6, 7}, false, config);
  h.subflow.notify_send_opportunity();
  h.run(3 * kSecond);
  EXPECT_GE(h.subflow.timeouts(), 1u);
  EXPECT_LE(h.subflow.cwnd(), 8.0);
}

TEST(Subflow, RttEstimateConvergesToPathRtt) {
  Harness h(200, {}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  // Base RTT = 200 ms plus negligible serialization.
  EXPECT_NEAR(to_ms(h.subflow.srtt()), 200.0, 10.0);
}

TEST(Subflow, LossEstimateMovesOnLoss) {
  SubflowConfig config;
  config.loss_ewma_alpha = 0.2;
  Harness h(40, {2, 5, 8}, false, config);
  h.subflow.notify_send_opportunity();
  EXPECT_EQ(h.subflow.loss_estimate(), 0.0);
  h.run();
  EXPECT_GT(h.subflow.loss_estimate(), 0.0);
}

TEST(Subflow, LossHintSeedsEstimate) {
  Harness h(1, {}, false);
  h.subflow.set_loss_hint(0.25);
  EXPECT_DOUBLE_EQ(h.subflow.loss_estimate(), 0.25);
}

TEST(Subflow, EatEqualsEdtWithWindowSpace) {
  Harness h(0, {}, false);  // Nothing to send: window stays open.
  h.subflow.notify_send_opportunity();
  EXPECT_GT(h.subflow.window_space(), 0u);
  EXPECT_EQ(h.subflow.expected_arrival_time(), h.subflow.expected_edt());
}

TEST(Subflow, EatAtLeastEdtWhenWindowFull) {
  SubflowConfig config;
  config.reno.initial_cwnd = 1.0;
  Harness h(100, {}, false, config);
  h.subflow.notify_send_opportunity();
  EXPECT_EQ(h.subflow.window_space(), 0u);
  EXPECT_GE(h.subflow.expected_arrival_time(), h.subflow.expected_edt());
}

TEST(Subflow, ExpectedRtBlendsRttAndRto) {
  Harness h(50, {}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  h.subflow.set_loss_hint(0.0);
  EXPECT_EQ(h.subflow.expected_rt(), h.subflow.srtt());
  h.subflow.set_loss_hint(0.5);
  const SimTime blended = h.subflow.expected_rt();
  EXPECT_GT(blended, h.subflow.srtt() / 2);
  EXPECT_LE(blended, h.subflow.rto());
}

TEST(Subflow, TauTracksOldestUnacked) {
  SubflowConfig config;
  config.reno.initial_cwnd = 1.0;
  Harness h(10, {}, false, config);
  h.subflow.notify_send_opportunity();
  EXPECT_EQ(h.subflow.time_since_first_unacked(), 0);
  h.sim.run_until(from_ms(50));
  EXPECT_EQ(h.subflow.time_since_first_unacked(), from_ms(50));
}

TEST(Subflow, ReceiverCountsDuplicates) {
  // Dropped ACKs cause retransmissions of data the receiver already has.
  // Scripted here instead: drop a mid-window packet, then the original
  // arrives only once but spurious timeout cases are possible; simply
  // check duplicate accounting stays consistent.
  Harness h(30, {2}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_EQ(h.receiver.segments_received(),
            h.sink.tags().size());
  EXPECT_GE(h.receiver.segments_received(), 30u);
}

TEST(Subflow, SequenceSpaceConsistency) {
  Harness h(25, {3, 7}, false);
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_EQ(h.subflow.snd_una(), h.subflow.snd_next());
  EXPECT_EQ(h.subflow.snd_next(), 25u);
  EXPECT_EQ(h.receiver.rcv_next(), 25u);
}

}  // namespace
}  // namespace fmtcp::tcp
