#include "tcp/congestion.h"

#include <gtest/gtest.h>

namespace fmtcp::tcp {
namespace {

TEST(RenoCc, StartsAtInitialWindow) {
  RenoConfig config;
  config.initial_cwnd = 3.0;
  RenoCc cc(config);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 3.0);
}

TEST(RenoCc, SlowStartDoublesPerWindow) {
  RenoConfig config;
  config.initial_cwnd = 2.0;
  config.initial_ssthresh = 1000.0;
  RenoCc cc(config);
  cc.on_ack(2);  // Full window acked.
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4.0);
  cc.on_ack(4);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 8.0);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(RenoCc, CongestionAvoidanceLinear) {
  RenoConfig config;
  config.initial_cwnd = 10.0;
  config.initial_ssthresh = 10.0;
  RenoCc cc(config);
  EXPECT_FALSE(cc.in_slow_start());
  // One full window of ACKs grows cwnd by ~1.
  cc.on_ack(10);
  EXPECT_NEAR(cc.cwnd(), 11.0, 0.05);
}

TEST(RenoCc, FastRetransmitHalves) {
  RenoConfig config;
  config.initial_cwnd = 20.0;
  config.initial_ssthresh = 5.0;
  RenoCc cc(config);
  cc.on_fast_retransmit();
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 10.0);
}

TEST(RenoCc, FastRetransmitFloorsAtTwo) {
  RenoConfig config;
  config.initial_cwnd = 2.0;
  RenoCc cc(config);
  cc.on_fast_retransmit();
  EXPECT_DOUBLE_EQ(cc.cwnd(), 2.0);
}

TEST(RenoCc, TimeoutCollapsesToOne) {
  RenoConfig config;
  config.initial_cwnd = 16.0;
  RenoCc cc(config);
  cc.on_timeout();
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
  EXPECT_DOUBLE_EQ(cc.ssthresh(), 8.0);
}

TEST(RenoCc, SlowStartAfterTimeoutUntilSsthresh) {
  RenoConfig config;
  config.initial_cwnd = 16.0;
  RenoCc cc(config);
  cc.on_timeout();
  EXPECT_TRUE(cc.in_slow_start());
  cc.on_ack(7);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 8.0);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(RenoCc, MaxWindowCap) {
  RenoConfig config;
  config.initial_cwnd = 2.0;
  config.initial_ssthresh = 1e9;
  config.max_cwnd = 10.0;
  RenoCc cc(config);
  for (int i = 0; i < 10; ++i) cc.on_ack(10);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 10.0);
}

TEST(LiaGroup, AlphaForSymmetricFlows) {
  LiaGroup group;
  RenoConfig config;
  config.initial_cwnd = 10.0;
  LiaCc a(group, config);
  LiaCc b(group, config);
  a.set_rtt(from_ms(100));
  b.set_rtt(from_ms(100));
  // Symmetric: alpha = W * (w/rtt^2) / (2w/rtt)^2 = W/(4w) = 20/40 = 0.5.
  EXPECT_NEAR(group.alpha(), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(group.total_cwnd(), 20.0);
}

TEST(LiaCc, CoupledIncreaseAtMostReno) {
  LiaGroup group;
  RenoConfig config;
  config.initial_cwnd = 10.0;
  config.initial_ssthresh = 1.0;  // Force congestion avoidance.
  LiaCc a(group, config);
  LiaCc b(group, config);
  a.set_rtt(from_ms(100));
  b.set_rtt(from_ms(200));
  const double before = a.cwnd();
  a.on_ack(1);
  const double lia_gain = a.cwnd() - before;
  EXPECT_LE(lia_gain, 1.0 / before + 1e-12);
  EXPECT_GT(lia_gain, 0.0);
}

TEST(LiaCc, DecreaseMatchesReno) {
  LiaGroup group;
  RenoConfig config;
  config.initial_cwnd = 12.0;
  LiaCc cc(group, config);
  cc.on_fast_retransmit();
  EXPECT_DOUBLE_EQ(cc.cwnd(), 6.0);
  cc.on_timeout();
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
}

TEST(LiaCc, MemberRemovalOnDestruction) {
  LiaGroup group;
  RenoConfig config;
  config.initial_cwnd = 10.0;
  LiaCc a(group, config);
  {
    LiaCc b(group, config);
    EXPECT_DOUBLE_EQ(group.total_cwnd(), 20.0);
  }
  EXPECT_DOUBLE_EQ(group.total_cwnd(), 10.0);
}

TEST(LiaCc, SlowStartUncoupled) {
  LiaGroup group;
  RenoConfig config;
  config.initial_cwnd = 2.0;
  config.initial_ssthresh = 100.0;
  LiaCc cc(group, config);
  cc.on_ack(2);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4.0);
}

}  // namespace
}  // namespace fmtcp::tcp
