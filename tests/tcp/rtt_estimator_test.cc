#include "tcp/rtt_estimator.h"

#include <gtest/gtest.h>

namespace fmtcp::tcp {
namespace {

TEST(RttEstimator, InitialRtoBeforeSamples) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), kSecond);
  EXPECT_EQ(est.srtt(), 0);
}

TEST(RttEstimator, FirstSampleInitialisesPerRfc) {
  RttEstimator est;
  est.add_sample(from_ms(100));
  EXPECT_EQ(est.srtt(), from_ms(100));
  EXPECT_EQ(est.rttvar(), from_ms(50));
  // RTO = SRTT + 4*RTTVAR = 100 + 200 = 300 ms.
  EXPECT_EQ(est.rto(), from_ms(300));
}

TEST(RttEstimator, SmoothingFormulas) {
  RttEstimator est;
  est.add_sample(from_ms(100));
  est.add_sample(from_ms(200));
  // RTTVAR = 3/4*50 + 1/4*|100-200| = 62.5 ms; SRTT = 7/8*100 + 1/8*200.
  EXPECT_EQ(est.rttvar(), from_us(62500));
  EXPECT_EQ(est.srtt(), from_us(112500));
}

TEST(RttEstimator, ConstantRttShrinksVariance) {
  RttEstimator est;
  for (int i = 0; i < 50; ++i) est.add_sample(from_ms(100));
  EXPECT_EQ(est.srtt(), from_ms(100));
  EXPECT_LT(est.rttvar(), from_ms(2));
}

TEST(RttEstimator, MinRtoClamp) {
  RttConfig config;
  config.min_rto = from_ms(200);
  RttEstimator est(config);
  for (int i = 0; i < 50; ++i) est.add_sample(from_ms(10));
  EXPECT_EQ(est.rto(), from_ms(200));
}

TEST(RttEstimator, MaxRtoClamp) {
  RttConfig config;
  config.max_rto = 2 * kSecond;
  RttEstimator est(config);
  est.add_sample(10 * kSecond);
  EXPECT_EQ(est.rto(), 2 * kSecond);
}

TEST(RttEstimator, BackoffDoubles) {
  RttEstimator est;
  est.add_sample(from_ms(100));
  const SimTime base = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto(), 2 * base);
  est.backoff();
  EXPECT_EQ(est.rto(), 4 * base);
}

TEST(RttEstimator, BackoffCappedByMaxRto) {
  RttConfig config;
  config.max_rto = 4 * kSecond;
  RttEstimator est(config);
  est.add_sample(kSecond);
  for (int i = 0; i < 20; ++i) est.backoff();
  EXPECT_EQ(est.rto(), 4 * kSecond);
}

TEST(RttEstimator, NewSampleResetsBackoff) {
  RttEstimator est;
  est.add_sample(from_ms(100));
  const SimTime base = est.rto();
  est.backoff();
  est.backoff();
  est.add_sample(from_ms(100));
  EXPECT_LE(est.rto(), base + from_ms(50));
}

TEST(RttEstimator, ClockGranularityFloor) {
  RttConfig config;
  config.clock_granularity = from_ms(10);
  config.min_rto = 1;
  RttEstimator est(config);
  for (int i = 0; i < 100; ++i) est.add_sample(from_ms(50));
  // RTO >= SRTT + G even when variance collapses.
  EXPECT_GE(est.rto(), from_ms(60));
}

}  // namespace
}  // namespace fmtcp::tcp
