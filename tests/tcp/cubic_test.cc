#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "net/link.h"
#include "sim/simulator.h"
#include "tcp/congestion.h"
#include "tcp/subflow.h"

namespace fmtcp::tcp {
namespace {

struct Clock {
  SimTime now = 0;
  std::function<SimTime()> fn() {
    return [this] { return now; };
  }
};

TEST(Cubic, SlowStartLikeReno) {
  Clock clock;
  CubicConfig config;
  config.initial_cwnd = 2.0;
  config.initial_ssthresh = 100.0;
  CubicCc cc(clock.fn(), config);
  cc.on_ack(2);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 4.0);
}

TEST(Cubic, FastRetransmitAppliesBeta) {
  Clock clock;
  CubicConfig config;
  config.initial_cwnd = 100.0;
  config.initial_ssthresh = 1.0;
  CubicCc cc(clock.fn(), config);
  cc.on_fast_retransmit();
  EXPECT_DOUBLE_EQ(cc.cwnd(), 70.0);
  EXPECT_DOUBLE_EQ(cc.w_max(), 100.0);
}

TEST(Cubic, TimeoutCollapsesToOne) {
  Clock clock;
  CubicConfig config;
  config.initial_cwnd = 50.0;
  config.initial_ssthresh = 1.0;
  CubicCc cc(clock.fn(), config);
  cc.on_timeout();
  EXPECT_DOUBLE_EQ(cc.cwnd(), 1.0);
}

TEST(Cubic, GrowsBackTowardWmax) {
  Clock clock;
  CubicConfig config;
  config.initial_cwnd = 100.0;
  config.initial_ssthresh = 1.0;
  CubicCc cc(clock.fn(), config);
  cc.on_fast_retransmit();  // cwnd 70, W_max 100.
  // Advance time past K and feed ACKs: the window must recross W_max.
  for (int second = 1; second <= 20; ++second) {
    clock.now = second * kSecond;
    cc.on_ack(50);
  }
  EXPECT_GT(cc.cwnd(), 100.0);
}

TEST(Cubic, PlateausNearWmax) {
  Clock clock;
  CubicConfig config;
  config.initial_cwnd = 100.0;
  config.initial_ssthresh = 1.0;
  CubicCc cc(clock.fn(), config);
  cc.on_fast_retransmit();
  const double k_est = std::cbrt(100.0 * 0.3 / 0.4);
  // Converge onto the cubic curve just below K...
  clock.now = from_seconds(0.95 * k_est);
  cc.on_ack(2000);
  EXPECT_NEAR(cc.cwnd(), 100.0, 1.0);
  // ...then crossing K barely moves the window: the plateau.
  clock.now = from_seconds(1.05 * k_est);
  const double before = cc.cwnd();
  cc.on_ack(50);
  EXPECT_NEAR(cc.cwnd(), before, 1.0);
}

TEST(Cubic, TracksCubicCurveConcaveThenConvex) {
  // With ample ACKs at each instant the window tracks
  // W(t) = C (t-K)^3 + W_max: below W_max before K, above after.
  Clock clock;
  CubicConfig config;
  config.initial_cwnd = 100.0;
  config.initial_ssthresh = 1.0;
  CubicCc cc(clock.fn(), config);
  cc.on_fast_retransmit();  // cwnd 70, W_max 100, K = cbrt(75).
  const double k_est = std::cbrt(100.0 * 0.3 / 0.4);

  std::vector<double> windows;
  for (double t : {0.2 * k_est, 0.9 * k_est, 1.5 * k_est, 2.0 * k_est}) {
    clock.now = from_seconds(t);
    cc.on_ack(2000);  // Converge to the instantaneous target.
    windows.push_back(cc.cwnd());
    const double dt = t - k_est;
    EXPECT_NEAR(cc.cwnd(), 0.4 * dt * dt * dt + 100.0, 1.5)
        << "t=" << t;
  }
  EXPECT_LT(windows[0], 100.0);
  EXPECT_LT(windows[0], windows[1]);
  EXPECT_LT(windows[1], windows[2]);
  EXPECT_LT(windows[2], windows[3]);
  EXPECT_GT(windows[3], 100.0);
}

TEST(Cubic, MaxWindowCap) {
  Clock clock;
  CubicConfig config;
  config.initial_cwnd = 2.0;
  config.initial_ssthresh = 1e9;
  config.max_cwnd = 20.0;
  CubicCc cc(clock.fn(), config);
  for (int i = 0; i < 10; ++i) cc.on_ack(20);
  EXPECT_DOUBLE_EQ(cc.cwnd(), 20.0);
}

TEST(Cubic, SubflowIntegration) {
  // A subflow configured for CUBIC transfers data end to end.
  sim::Simulator sim(1);
  net::LinkConfig link_config;
  link_config.prop_delay = from_ms(50);
  net::Link forward(sim, link_config, nullptr);
  net::Link reverse(sim, link_config, nullptr);

  class Provider final : public SegmentProvider {
   public:
    std::optional<SegmentContent> next_segment(std::uint32_t) override {
      if (served_ >= 50) return std::nullopt;
      SegmentContent content;
      content.data_seq = served_++;
      content.payload_bytes = 100;
      return content;
    }
    std::uint64_t served_ = 0;
  } provider;

  class Sink final : public DataSink {
   public:
    void on_segment(std::uint32_t, net::Packet&) override {
      ++count_;
    }
    int count_ = 0;
  } sink;

  SubflowConfig config;
  config.congestion = CongestionAlgo::kCubic;
  Subflow subflow(sim, config, forward, provider);
  SubflowReceiver receiver(sim, 0, reverse, sink);
  forward.set_sink(
      [&](net::Packet p) { receiver.on_data_packet(std::move(p)); });
  reverse.set_sink(
      [&](net::Packet p) { subflow.on_ack_packet(std::move(p)); });
  subflow.notify_send_opportunity();
  sim.run_until(30 * kSecond);
  EXPECT_EQ(sink.count_, 50);
}

}  // namespace
}  // namespace fmtcp::tcp
