// SACK extension tests: scoreboard, pipe accounting, hole retransmission,
// and the recovery behaviours SACK improves over NewReno.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <vector>

#include "net/link.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::tcp {
namespace {

/// Drops the i-th packet leaving the link (0-based) for each i in `drops`.
class ScriptedLoss final : public net::LossModel {
 public:
  explicit ScriptedLoss(std::set<std::uint64_t> drops)
      : drops_(std::move(drops)) {}
  bool should_drop(SimTime, Rng&) override {
    return drops_.count(counter_++) != 0;
  }
  double current_rate(SimTime) const override { return 0.0; }

 private:
  std::set<std::uint64_t> drops_;
  std::uint64_t counter_ = 0;
};

class TagProvider final : public SegmentProvider {
 public:
  explicit TagProvider(std::uint64_t limit) : limit_(limit) {}
  std::optional<SegmentContent> next_segment(std::uint32_t) override {
    if (served_ >= limit_) return std::nullopt;
    SegmentContent content;
    content.data_seq = served_++;
    content.payload_bytes = 100;
    return content;
  }
  std::uint64_t served() const { return served_; }

 private:
  std::uint64_t limit_;
  std::uint64_t served_ = 0;
};

class TagSink final : public DataSink {
 public:
  void on_segment(std::uint32_t, net::Packet& p) override {
    tags_.push_back(p.data_seq);
  }
  const std::vector<std::uint64_t>& tags() const { return tags_; }

 private:
  std::vector<std::uint64_t> tags_;
};

struct Harness {
  sim::Simulator sim{7};
  net::Link forward;
  net::Link reverse;
  TagProvider provider;
  TagSink sink;
  Subflow subflow;
  SubflowReceiver receiver;

  static net::LinkConfig fast_link() {
    net::LinkConfig config;
    config.bandwidth_Bps = 1e7;
    config.prop_delay = from_ms(100);
    return config;
  }

  Harness(std::uint64_t segments, std::set<std::uint64_t> drops,
          SubflowConfig config = make_config())
      : forward(sim, fast_link(),
                std::make_unique<ScriptedLoss>(std::move(drops))),
        reverse(sim, fast_link(), nullptr),
        provider(segments),
        subflow(sim, config, forward, provider),
        receiver(sim, 0, reverse, sink) {
    forward.set_sink(
        [this](net::Packet p) { receiver.on_data_packet(std::move(p)); });
    reverse.set_sink(
        [this](net::Packet p) { subflow.on_ack_packet(std::move(p)); });
  }

  static SubflowConfig make_config() {
    SubflowConfig config;
    config.enable_sack = true;
    return config;
  }

  void run(SimTime duration = 60 * kSecond) { sim.run_until(duration); }
};

TEST(Sack, ReceiverAdvertisesRanges) {
  // Without a sender harness: feed the receiver out-of-order packets and
  // inspect the ACK it emits.
  sim::Simulator sim(1);
  net::Link ack_link(sim, Harness::fast_link(), nullptr);
  TagSink sink;
  SubflowReceiver receiver(sim, 0, ack_link, sink);
  std::vector<net::Packet> acks;
  ack_link.set_sink([&](net::Packet p) { acks.push_back(std::move(p)); });

  const auto data_packet = [](std::uint64_t seq) {
    net::Packet p;
    p.kind = net::PacketKind::kData;
    p.subflow = 0;
    p.seq = seq;
    p.size_bytes = 100;
    return p;
  };
  receiver.on_data_packet(data_packet(2));  // Hole at 0,1.
  receiver.on_data_packet(data_packet(3));
  receiver.on_data_packet(data_packet(6));
  sim.run();

  ASSERT_EQ(acks.size(), 3u);
  const auto& last = acks.back();
  EXPECT_EQ(last.ack_next, 0u);
  ASSERT_EQ(last.sack_ranges.size(), 2u);
  EXPECT_EQ(last.sack_ranges[0], (std::pair<std::uint64_t, std::uint64_t>(
                                     2, 4)));
  EXPECT_EQ(last.sack_ranges[1], (std::pair<std::uint64_t, std::uint64_t>(
                                     6, 7)));
}

TEST(Sack, SingleLossRecoversWithoutTimeout) {
  Harness h(30, {2});
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_EQ(h.subflow.timeouts(), 0u);
  EXPECT_GE(h.subflow.fast_retransmits(), 1u);
  std::set<std::uint64_t> tags(h.sink.tags().begin(), h.sink.tags().end());
  EXPECT_EQ(tags.size(), 30u);
}

TEST(Sack, BurstLossRecoversWithoutGoBackNDuplicates) {
  // Drop five consecutive segments out of a large window: SACK must
  // retransmit exactly the holes, not everything after them.
  SubflowConfig config = Harness::make_config();
  config.reno.initial_cwnd = 20.0;
  Harness h(40, {5, 6, 7, 8, 9}, config);
  h.subflow.notify_send_opportunity();
  h.run();
  std::set<std::uint64_t> tags(h.sink.tags().begin(), h.sink.tags().end());
  EXPECT_EQ(tags.size(), 40u);
  // 40 originals + 5 hole retransmissions (+ maybe an RTO straggler).
  EXPECT_LE(h.subflow.retransmissions(), 8u);
  EXPECT_GE(h.subflow.retransmissions(), 5u);
}

TEST(Sack, RecoversBurstFasterThanNewReno) {
  // NewReno repairs one hole per RTT (partial ACKs); SACK repairs the
  // whole burst within roughly one RTT — the motivation for the
  // extension. Compare the time until everything is cumulatively ACKed.
  const auto completion_time = [](bool sack) {
    SubflowConfig config = Harness::make_config();
    config.enable_sack = sack;
    config.reno.initial_cwnd = 20.0;
    Harness h(40, {5, 6, 7, 8, 9}, config);
    h.subflow.notify_send_opportunity();
    while (h.subflow.snd_una() < 40 && h.sim.now() < 60 * kSecond) {
      h.sim.run_until(h.sim.now() + from_ms(10));
    }
    return h.sim.now();
  };
  const SimTime with_sack = completion_time(true);
  const SimTime without = completion_time(false);
  // At least two RTTs (400 ms) faster.
  EXPECT_LT(with_sack + from_ms(400), without);
}

TEST(Sack, ScoreboardPrunedOnCumulativeAck) {
  Harness h(30, {2});
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_EQ(h.subflow.sacked_count(), 0u);
  EXPECT_EQ(h.subflow.snd_una(), h.subflow.snd_next());
}

TEST(Sack, PipeExcludesSackedSegments) {
  // cwnd 4, drop seq 0: segments 1..3 get SACKed, freeing pipe space for
  // new data even before the hole is repaired.
  SubflowConfig config = Harness::make_config();
  config.reno.initial_cwnd = 4.0;
  Harness h(30, {0}, config);
  h.subflow.notify_send_opportunity();
  // After one RTT the SACKs for 1..3 arrive.
  h.sim.run_until(from_ms(320));
  EXPECT_GT(h.subflow.sacked_count(), 0u);
  EXPECT_GT(h.subflow.snd_next(), 4u);  // New data flowed despite hole.
  h.run();
  std::set<std::uint64_t> tags(h.sink.tags().begin(), h.sink.tags().end());
  EXPECT_EQ(tags.size(), 30u);
}

TEST(Sack, HeavyRandomLossStillReliable) {
  // 20% random loss with SACK: everything still arrives exactly once at
  // the content level.
  sim::Simulator sim(11);
  net::LinkConfig link_config = Harness::fast_link();
  net::Link forward(sim, link_config,
                    std::make_unique<net::BernoulliLoss>(0.2));
  net::Link reverse(sim, link_config, nullptr);
  TagProvider provider(100);
  TagSink sink;
  SubflowConfig config = Harness::make_config();
  config.rtt.max_rto = 4 * kSecond;
  Subflow subflow(sim, config, forward, provider);
  SubflowReceiver receiver(sim, 0, reverse, sink);
  forward.set_sink(
      [&](net::Packet p) { receiver.on_data_packet(std::move(p)); });
  reverse.set_sink(
      [&](net::Packet p) { subflow.on_ack_packet(std::move(p)); });
  subflow.notify_send_opportunity();
  sim.run_until(120 * kSecond);
  std::set<std::uint64_t> tags(sink.tags().begin(), sink.tags().end());
  EXPECT_EQ(tags.size(), 100u);
}

TEST(Sack, FmtcpFreshModeCompatible) {
  // SACK + fresh-payload retransmissions: holes are refilled with fresh
  // provider content.
  SubflowConfig config = Harness::make_config();
  config.fresh_payload_on_retransmit = true;
  Harness h(30, {2}, config);
  h.subflow.notify_send_opportunity();
  h.run();
  EXPECT_EQ(h.receiver.rcv_next(), 30u);
  EXPECT_EQ(h.subflow.timeouts(), 0u);
}

}  // namespace
}  // namespace fmtcp::tcp
