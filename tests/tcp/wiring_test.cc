#include "tcp/wiring.h"

#include <gtest/gtest.h>

#include <optional>

namespace fmtcp::tcp {
namespace {

/// Serves a fixed number of tagged segments.
class CountingProvider final : public SegmentProvider {
 public:
  explicit CountingProvider(std::uint64_t limit) : limit_(limit) {}
  std::optional<SegmentContent> next_segment(std::uint32_t) override {
    if (served_ >= limit_) return std::nullopt;
    SegmentContent content;
    content.data_seq = served_++;
    content.payload_bytes = 100;
    return content;
  }
  std::uint64_t served() const { return served_; }

 private:
  std::uint64_t limit_;
  std::uint64_t served_ = 0;
};

class CountingSink final : public DataSink {
 public:
  void on_segment(std::uint32_t subflow, net::Packet&) override {
    ++per_subflow_[subflow];
  }
  std::uint64_t count(std::uint32_t subflow) const {
    const auto it = per_subflow_.find(subflow);
    return it == per_subflow_.end() ? 0 : it->second;
  }

 private:
  std::map<std::uint32_t, std::uint64_t> per_subflow_;
};

TEST(Wiring, BuildsOneSubflowPerPath) {
  sim::Simulator sim(1);
  net::Topology topology(sim, {net::PathConfig{}, net::PathConfig{},
                               net::PathConfig{}});
  CountingProvider provider(0);
  CountingSink sink;
  WiringOptions options;
  WiredSubflows wired =
      wire_subflows(sim, topology, provider, sink, options);
  ASSERT_EQ(wired.subflows.size(), 3u);
  ASSERT_EQ(wired.subflow_receivers.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(wired.subflows[i]->id(), i);
  }
}

TEST(Wiring, SeedsLossHintFromPathConfig) {
  sim::Simulator sim(1);
  net::PathConfig lossy;
  lossy.loss_rate = 0.3;
  net::Topology topology(sim, {lossy});
  CountingProvider provider(0);
  CountingSink sink;
  WiringOptions options;
  options.seed_loss_hint = true;
  WiredSubflows wired =
      wire_subflows(sim, topology, provider, sink, options);
  EXPECT_DOUBLE_EQ(wired.subflows[0]->loss_estimate(), 0.3);

  options.seed_loss_hint = false;
  WiredSubflows unseeded =
      wire_subflows(sim, topology, provider, sink, options);
  EXPECT_DOUBLE_EQ(unseeded.subflows[0]->loss_estimate(), 0.0);
}

TEST(Wiring, DataFlowsEndToEnd) {
  sim::Simulator sim(1);
  net::Topology topology(sim, {net::PathConfig{}});
  CountingProvider provider(10);
  CountingSink sink;
  WiringOptions options;
  WiredSubflows wired =
      wire_subflows(sim, topology, provider, sink, options);
  wired.subflows[0]->notify_send_opportunity();
  sim.run_until(30 * kSecond);
  EXPECT_EQ(sink.count(0), 10u);
  EXPECT_EQ(provider.served(), 10u);
}

TEST(Wiring, CustomCongestionControlFactoryUsed) {
  sim::Simulator sim(1);
  net::Topology topology(sim, {net::PathConfig{}});
  CountingProvider provider(0);
  CountingSink sink;
  WiringOptions options;
  int factory_calls = 0;
  options.make_cc = [&](std::uint32_t) -> std::unique_ptr<CongestionControl> {
    ++factory_calls;
    RenoConfig config;
    config.initial_cwnd = 7.0;
    return std::make_unique<RenoCc>(config);
  };
  WiredSubflows wired =
      wire_subflows(sim, topology, provider, sink, options);
  EXPECT_EQ(factory_calls, 1);
  EXPECT_DOUBLE_EQ(wired.subflows[0]->cwnd(), 7.0);
}

TEST(Wiring, FreshRetransmitFlagPropagates) {
  sim::Simulator sim(1);
  net::Topology topology(sim, {net::PathConfig{}});
  CountingProvider provider(0);
  CountingSink sink;
  WiringOptions options;
  options.subflow.id = 99;  // Must be overridden to the path index.
  options.fresh_payload_on_retransmit = true;
  WiredSubflows wired =
      wire_subflows(sim, topology, provider, sink, options);
  EXPECT_EQ(wired.subflows[0]->id(), 0u);
}

}  // namespace
}  // namespace fmtcp::tcp
