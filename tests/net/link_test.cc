#include "net/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace fmtcp::net {
namespace {

Packet make_packet(std::size_t size) {
  Packet p;
  p.size_bytes = size;
  p.uid = next_packet_uid();
  return p;
}

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  sim::Simulator sim;
  LinkConfig config;
  config.bandwidth_Bps = 1000.0;  // 1000 B/s.
  config.prop_delay = from_ms(50);
  Link link(sim, config, nullptr);
  SimTime arrival = -1;
  link.set_sink([&](Packet) { arrival = sim.now(); });
  link.send(make_packet(500));  // 0.5 s serialization.
  sim.run();
  EXPECT_EQ(arrival, from_ms(550));
}

TEST(Link, BackToBackPacketsQueueForSerialization) {
  sim::Simulator sim;
  LinkConfig config;
  config.bandwidth_Bps = 1000.0;
  config.prop_delay = 0;
  Link link(sim, config, nullptr);
  std::vector<SimTime> arrivals;
  link.set_sink([&](Packet) { arrivals.push_back(sim.now()); });
  link.send(make_packet(1000));  // 1 s each.
  link.send(make_packet(1000));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], kSecond);
  EXPECT_EQ(arrivals[1], 2 * kSecond);
}

TEST(Link, CertainLossDropsEverything) {
  sim::Simulator sim;
  LinkConfig config;
  Link link(sim, config,
            std::make_unique<BernoulliLoss>(1.0 - 1e-12));
  int delivered = 0;
  link.set_sink([&](Packet) { ++delivered; });
  for (int i = 0; i < 50; ++i) link.send(make_packet(100));
  sim.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(link.channel_drop_count(), 50u);
  EXPECT_EQ(link.sent_count(), 50u);
  EXPECT_EQ(link.delivered_count(), 0u);
}

TEST(Link, QueueOverflowDrops) {
  sim::Simulator sim;
  LinkConfig config;
  config.bandwidth_Bps = 1.0;  // Glacial: everything queues.
  config.queue_packets = 3;
  Link link(sim, config, nullptr);
  link.set_sink([](Packet) {});
  for (int i = 0; i < 10; ++i) link.send(make_packet(1));
  EXPECT_EQ(link.queue_drop_count(), 6u);  // 3 queued + 1 in service.
}

TEST(Link, StatisticalLossRate) {
  sim::Simulator sim;
  LinkConfig config;
  config.bandwidth_Bps = 1e9;
  config.prop_delay = 0;
  config.queue_packets = 0;
  Link link(sim, config, std::make_unique<BernoulliLoss>(0.3));
  int delivered = 0;
  link.set_sink([&](Packet) { ++delivered; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) link.send(make_packet(10));
  sim.run();
  EXPECT_NEAR(static_cast<double>(n - delivered) / n, 0.3, 0.02);
}

TEST(Link, LossRateReporting) {
  sim::Simulator sim;
  LinkConfig config;
  Link link(sim, config, std::make_unique<BernoulliLoss>(0.12));
  EXPECT_DOUBLE_EQ(link.loss_rate(), 0.12);
  link.set_loss_model(nullptr);
  EXPECT_DOUBLE_EQ(link.loss_rate(), 0.0);
}

TEST(Link, SetLossModelMidRun) {
  sim::Simulator sim;
  LinkConfig config;
  config.bandwidth_Bps = 1e9;
  config.prop_delay = 0;
  Link link(sim, config, nullptr);
  int delivered = 0;
  link.set_sink([&](Packet) { ++delivered; });
  link.send(make_packet(10));
  sim.run();
  EXPECT_EQ(delivered, 1);
  link.set_loss_model(std::make_unique<BernoulliLoss>(1.0 - 1e-12));
  link.send(make_packet(10));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Link, PreservesPacketContents) {
  sim::Simulator sim;
  LinkConfig config;
  Link link(sim, config, nullptr);
  Packet p = make_packet(64);
  p.seq = 77;
  p.data_seq = 123456;
  const std::uint64_t uid = p.uid;
  Packet received;
  link.set_sink([&](Packet q) { received = std::move(q); });
  link.send(std::move(p));
  sim.run();
  EXPECT_EQ(received.seq, 77u);
  EXPECT_EQ(received.data_seq, 123456u);
  EXPECT_EQ(received.uid, uid);
}

TEST(Link, LostPacketsStillConsumeBandwidth) {
  sim::Simulator sim;
  LinkConfig config;
  config.bandwidth_Bps = 1000.0;
  config.prop_delay = 0;
  Link link(sim, config,
            std::make_unique<TimeVaryingLoss>(std::vector<TimeVaryingLoss::Step>{
                {0, 1.0 - 1e-12}, {from_seconds(1.5), 0.0}}));
  std::vector<SimTime> arrivals;
  link.set_sink([&](Packet) { arrivals.push_back(sim.now()); });
  link.send(make_packet(1000));  // Transmitted [0,1), lost at 1.0.
  link.send(make_packet(1000));  // Transmitted [1,2), delivered at 2.0.
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 2 * kSecond);
}

}  // namespace
}  // namespace fmtcp::net
