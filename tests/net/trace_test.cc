#include "net/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/link.h"
#include "sim/simulator.h"

namespace fmtcp::net {
namespace {

Packet make_packet(std::size_t size) {
  Packet p;
  p.size_bytes = size;
  p.uid = next_packet_uid();
  return p;
}

TEST(CountingTracer, CountsMatchLinkCounters) {
  sim::Simulator sim(1);
  LinkConfig config;
  config.bandwidth_Bps = 1e9;
  config.prop_delay = 0;
  config.queue_packets = 0;  // Unlimited: every send must be enqueued.
  Link link(sim, config, std::make_unique<BernoulliLoss>(0.3));
  link.set_sink([](Packet) {});
  CountingTracer tracer;
  link.set_tracer(&tracer, 7);

  for (int i = 0; i < 1000; ++i) link.send(make_packet(100));
  sim.run();

  EXPECT_EQ(tracer.count(TraceEvent::kEnqueue), 1000u);
  EXPECT_EQ(tracer.count(TraceEvent::kChannelDrop),
            link.channel_drop_count());
  EXPECT_EQ(tracer.count(TraceEvent::kDeliver), link.delivered_count());
  EXPECT_EQ(tracer.count(TraceEvent::kDeliver) +
                tracer.count(TraceEvent::kChannelDrop),
            1000u);
}

TEST(CountingTracer, QueueDropsTraced) {
  sim::Simulator sim(1);
  LinkConfig config;
  config.bandwidth_Bps = 1.0;
  config.queue_packets = 2;
  Link link(sim, config, nullptr);
  link.set_sink([](Packet) {});
  CountingTracer tracer;
  link.set_tracer(&tracer);
  for (int i = 0; i < 10; ++i) link.send(make_packet(1));
  EXPECT_EQ(tracer.count(TraceEvent::kQueueDrop), 7u);
  EXPECT_EQ(tracer.count(TraceEvent::kEnqueue), 3u);
}

TEST(CsvTracer, WritesParseableRows) {
  const std::string path = "/tmp/fmtcp_trace_test.csv";
  {
    sim::Simulator sim(1);
    LinkConfig config;
    config.prop_delay = from_ms(10);
    Link link(sim, config, nullptr);
    link.set_sink([](Packet) {});
    CsvTracer tracer(path);
    link.set_tracer(&tracer, 3);
    Packet p = make_packet(64);
    p.seq = 42;
    link.send(std::move(p));
    sim.run();
    EXPECT_EQ(tracer.rows_written(), 2u);  // Enqueue + deliver.
  }
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("time_s,event,link"), std::string::npos);
  std::string row;
  std::getline(in, row);
  EXPECT_NE(row.find("enqueue,3,"), std::string::npos);
  EXPECT_NE(row.find(",42,"), std::string::npos);
  std::getline(in, row);
  EXPECT_NE(row.find("deliver,3,"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTracerDeathTest, UnwritablePathFailsLoudlyWithPath) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CsvTracer tracer("/nonexistent-dir/trace.csv"),
               "cannot open '/nonexistent-dir/trace.csv'");
}

TEST(CsvTracer, RowsOnDiskAfterDestruction) {
  const std::string path = "/tmp/fmtcp_trace_flush_test.csv";
  {
    CsvTracer tracer(path);
    Packet p = make_packet(8);
    tracer.on_packet(TraceEvent::kEnqueue, from_ms(1), 0, p);
  }  // Destructor must flush + close.
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2u);  // Header + one row.
  std::remove(path.c_str());
}

TEST(TraceEventName, AllNamed) {
  EXPECT_STREQ(trace_event_name(TraceEvent::kEnqueue), "enqueue");
  EXPECT_STREQ(trace_event_name(TraceEvent::kQueueDrop), "queue_drop");
  EXPECT_STREQ(trace_event_name(TraceEvent::kChannelDrop), "channel_drop");
  EXPECT_STREQ(trace_event_name(TraceEvent::kDeliver), "deliver");
}

TEST(Tracer, DetachStopsTracing) {
  sim::Simulator sim(1);
  LinkConfig config;
  config.bandwidth_Bps = 1e9;
  config.prop_delay = 0;
  Link link(sim, config, nullptr);
  link.set_sink([](Packet) {});
  CountingTracer tracer;
  link.set_tracer(&tracer);
  link.send(make_packet(10));
  sim.run();
  const std::uint64_t before = tracer.total();
  link.set_tracer(nullptr);
  link.send(make_packet(10));
  sim.run();
  EXPECT_EQ(tracer.total(), before);
}

}  // namespace
}  // namespace fmtcp::net
