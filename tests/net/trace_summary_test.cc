#include "net/trace_summary.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "net/link.h"
#include "net/trace.h"
#include "sim/simulator.h"

namespace fmtcp::net {
namespace {

TEST(TraceSummary, ParsesHandWrittenRows) {
  std::istringstream in(
      "time_s,event,link,uid,kind,subflow,seq,size_bytes,data_seq,symbols\n"
      "0.000000001,enqueue,0,1,data,0,0,140,0,7\n"
      "0.100000000,deliver,0,1,data,0,0,140,0,7\n"
      "0.200000000,enqueue,0,2,data,0,1,140,0,7\n"
      "0.250000000,channel_drop,0,2,data,0,1,140,0,7\n"
      "0.300000000,enqueue,1,3,ack,0,0,48,0,0\n"
      "0.400000000,deliver,1,3,ack,0,0,48,0,0\n");
  const TraceSummary summary = summarize_trace(in);
  EXPECT_EQ(summary.total_rows, 6u);
  EXPECT_EQ(summary.malformed_rows, 0u);
  ASSERT_EQ(summary.links.size(), 2u);

  const LinkTraceStats& link0 = summary.links.at(0);
  EXPECT_EQ(link0.enqueued, 2u);
  EXPECT_EQ(link0.delivered, 1u);
  EXPECT_EQ(link0.channel_drops, 1u);
  EXPECT_EQ(link0.delivered_bytes, 140u);
  EXPECT_EQ(link0.data_packets, 2u);
  EXPECT_DOUBLE_EQ(link0.channel_loss_rate(), 0.5);

  const LinkTraceStats& link1 = summary.links.at(1);
  EXPECT_EQ(link1.ack_packets, 1u);
  EXPECT_EQ(link1.delivered, 1u);
}

TEST(TraceSummary, CountsMalformedRows) {
  std::istringstream in(
      "time_s,event,link,uid,kind,subflow,seq,size_bytes,data_seq,symbols\n"
      "garbage line without commas\n"
      "0.1,not_an_event,0,1,data,0,0,140,0,7\n");
  const TraceSummary summary = summarize_trace(in);
  EXPECT_EQ(summary.total_rows, 2u);
  EXPECT_EQ(summary.malformed_rows, 2u);
}

TEST(TraceSummary, RoundTripsThroughCsvTracer) {
  const std::string path = "/tmp/fmtcp_trace_summary_test.csv";
  {
    sim::Simulator sim(1);
    LinkConfig config;
    config.bandwidth_Bps = 1e9;
    config.prop_delay = from_ms(10);
    config.queue_packets = 0;
    Link link(sim, config, std::make_unique<BernoulliLoss>(0.3));
    link.set_sink([](Packet) {});
    CsvTracer tracer(path);
    link.set_tracer(&tracer, 5);
    for (int i = 0; i < 500; ++i) {
      Packet p;
      p.size_bytes = 100;
      p.uid = next_packet_uid();
      link.send(std::move(p));
    }
    sim.run();
  }
  std::ifstream in(path);
  const TraceSummary summary = summarize_trace(in);
  std::remove(path.c_str());

  ASSERT_EQ(summary.links.size(), 1u);
  const LinkTraceStats& stats = summary.links.at(5);
  EXPECT_EQ(stats.enqueued, 500u);
  EXPECT_EQ(stats.delivered + stats.channel_drops, 500u);
  EXPECT_NEAR(stats.channel_loss_rate(), 0.3, 0.06);
  EXPECT_EQ(summary.malformed_rows, 0u);

  const std::string rendered = format_trace_summary(summary);
  EXPECT_NE(rendered.find("rows: 1000"), std::string::npos);
}

TEST(TraceSummary, EmptyInput) {
  std::istringstream in("");
  const TraceSummary summary = summarize_trace(in);
  EXPECT_EQ(summary.total_rows, 0u);
  EXPECT_TRUE(summary.links.empty());
}

}  // namespace
}  // namespace fmtcp::net
