#include "net/queue.h"

#include <gtest/gtest.h>

namespace fmtcp::net {
namespace {

Packet make_packet(std::size_t size) {
  Packet p;
  p.size_bytes = size;
  p.uid = next_packet_uid();
  return p;
}

TEST(DropTailQueue, Fifo) {
  DropTailQueue q(10, 0);
  Packet a = make_packet(100);
  Packet b = make_packet(200);
  const std::uint64_t uid_a = a.uid;
  const std::uint64_t uid_b = b.uid;
  EXPECT_TRUE(q.push(std::move(a)));
  EXPECT_TRUE(q.push(std::move(b)));
  EXPECT_EQ(q.pop().uid, uid_a);
  EXPECT_EQ(q.pop().uid, uid_b);
}

TEST(DropTailQueue, PacketCapacity) {
  DropTailQueue q(2, 0);
  EXPECT_TRUE(q.push(make_packet(1)));
  EXPECT_TRUE(q.push(make_packet(1)));
  EXPECT_FALSE(q.push(make_packet(1)));
  EXPECT_EQ(q.drop_count(), 1u);
  EXPECT_EQ(q.packets(), 2u);
}

TEST(DropTailQueue, ByteCapacity) {
  DropTailQueue q(0, 250);
  EXPECT_TRUE(q.push(make_packet(100)));
  EXPECT_TRUE(q.push(make_packet(100)));
  EXPECT_FALSE(q.push(make_packet(100)));
  EXPECT_EQ(q.bytes(), 200u);
}

TEST(DropTailQueue, UnlimitedWhenZero) {
  DropTailQueue q(0, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(q.push(make_packet(1000)));
  EXPECT_EQ(q.packets(), 1000u);
}

TEST(DropTailQueue, BytesTrackPops) {
  DropTailQueue q(0, 0);
  q.push(make_packet(100));
  q.push(make_packet(50));
  EXPECT_EQ(q.bytes(), 150u);
  q.pop();
  EXPECT_EQ(q.bytes(), 50u);
  q.pop();
  EXPECT_EQ(q.bytes(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, CapacityFreesAfterPop) {
  DropTailQueue q(1, 0);
  EXPECT_TRUE(q.push(make_packet(1)));
  EXPECT_FALSE(q.push(make_packet(1)));
  q.pop();
  EXPECT_TRUE(q.push(make_packet(1)));
}

}  // namespace
}  // namespace fmtcp::net
