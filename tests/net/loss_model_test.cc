#include "net/loss_model.h"

#include <gtest/gtest.h>

namespace fmtcp::net {
namespace {

TEST(NoLoss, NeverDrops) {
  NoLoss model;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(model.should_drop(0, rng));
  }
  EXPECT_EQ(model.current_rate(0), 0.0);
}

TEST(BernoulliLoss, MatchesConfiguredRate) {
  BernoulliLoss model(0.2);
  Rng rng(7);
  int drops = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (model.should_drop(0, rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.2, 0.01);
  EXPECT_EQ(model.current_rate(12345), 0.2);
}

TEST(BernoulliLoss, ZeroNeverDrops) {
  BernoulliLoss model(0.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(model.should_drop(0, rng));
}

TEST(TimeVaryingLoss, SwitchesAtBoundaries) {
  TimeVaryingLoss model({{0, 0.0}, {100, 0.5}, {200, 0.1}});
  EXPECT_EQ(model.current_rate(0), 0.0);
  EXPECT_EQ(model.current_rate(99), 0.0);
  EXPECT_EQ(model.current_rate(100), 0.5);
  EXPECT_EQ(model.current_rate(199), 0.5);
  EXPECT_EQ(model.current_rate(200), 0.1);
  EXPECT_EQ(model.current_rate(1000000), 0.1);
}

TEST(TimeVaryingLoss, DropsAtCurrentRate) {
  TimeVaryingLoss model({{0, 0.0}, {100, 1.0 - 1e-9}});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(model.should_drop(50, rng));
  int drops = 0;
  for (int i = 0; i < 100; ++i) {
    if (model.should_drop(150, rng)) ++drops;
  }
  EXPECT_EQ(drops, 100);
}

TEST(TimeVaryingLoss, SingleStep) {
  TimeVaryingLoss model({{0, 0.25}});
  EXPECT_EQ(model.current_rate(0), 0.25);
  EXPECT_EQ(model.current_rate(99999), 0.25);
}

TEST(GilbertElliott, StationaryRate) {
  GilbertElliottLoss::Config config;
  config.p_good_to_bad = 0.1;
  config.p_bad_to_good = 0.3;
  config.loss_good = 0.0;
  config.loss_bad = 0.4;
  GilbertElliottLoss model(config);
  // Stationary P(bad) = 0.1/0.4 = 0.25 -> rate = 0.25*0.4 = 0.1.
  EXPECT_NEAR(model.current_rate(0), 0.1, 1e-12);

  Rng rng(11);
  int drops = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (model.should_drop(0, rng)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.1, 0.01);
}

TEST(GilbertElliott, LossesAreBursty) {
  GilbertElliottLoss::Config config;
  config.p_good_to_bad = 0.01;
  config.p_bad_to_good = 0.1;
  config.loss_good = 0.0;
  config.loss_bad = 0.8;
  GilbertElliottLoss model(config);
  Rng rng(13);
  // P(loss | previous loss) should far exceed the marginal rate.
  int losses = 0;
  int pairs = 0;
  bool prev = false;
  for (int i = 0; i < 200000; ++i) {
    const bool drop = model.should_drop(0, rng);
    if (drop) ++losses;
    if (prev && drop) ++pairs;
    prev = drop;
  }
  const double marginal = losses / 200000.0;
  const double conditional = static_cast<double>(pairs) / losses;
  EXPECT_GT(conditional, 2.0 * marginal);
}

TEST(MakeBernoulli, FactorySelectsModel) {
  auto none = make_bernoulli(0.0);
  EXPECT_EQ(none->current_rate(0), 0.0);
  auto some = make_bernoulli(0.3);
  EXPECT_EQ(some->current_rate(0), 0.3);
}

}  // namespace
}  // namespace fmtcp::net
