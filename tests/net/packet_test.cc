#include "net/packet.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace fmtcp::net {
namespace {

TEST(Packet, UidsAreUniqueAndMonotonic) {
  const std::uint64_t a = next_packet_uid();
  const std::uint64_t b = next_packet_uid();
  EXPECT_LT(a, b);
}

TEST(Packet, GlobalUidsUniqueAcrossThreads) {
  // The process-global fallback counter is atomic so concurrent sweeps
  // that reach it never hand out duplicate uids.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<std::uint64_t>> drawn(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&drawn, t] {
      drawn[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        drawn[t].push_back(next_packet_uid());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::set<std::uint64_t> unique;
  for (const auto& uids : drawn) unique.insert(uids.begin(), uids.end());
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(Packet, FinalizeSizeAddsHeader) {
  Packet p;
  finalize_size(p, 1000);
  EXPECT_EQ(p.size_bytes, 1000 + kHeaderBytes);
  finalize_size(p, 0);
  EXPECT_EQ(p.size_bytes, kHeaderBytes);
}

TEST(Packet, DefaultsAreSane) {
  Packet p;
  EXPECT_EQ(p.kind, PacketKind::kData);
  EXPECT_TRUE(p.symbols.empty());
  EXPECT_TRUE(p.block_acks.empty());
  EXPECT_EQ(p.data_len, 0u);
}

TEST(EncodedSymbol, CarriesBlockGeometry) {
  EncodedSymbol s;
  s.block = 42;
  s.block_symbols = 64;
  s.coeff_seed = 7;
  EXPECT_EQ(s.block, 42u);
  EXPECT_TRUE(s.data.empty());  // Rank-only by default.
}

}  // namespace
}  // namespace fmtcp::net
