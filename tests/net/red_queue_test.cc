#include <gtest/gtest.h>

#include "net/link.h"
#include "net/queue.h"
#include "sim/simulator.h"

namespace fmtcp::net {
namespace {

Packet make_packet(std::size_t size = 100) {
  Packet p;
  p.size_bytes = size;
  p.uid = next_packet_uid();
  return p;
}

RedConfig small_red() {
  RedConfig config;
  config.min_th_packets = 5;
  config.max_th_packets = 15;
  config.limit_packets = 30;
  config.max_p = 0.1;
  config.weight = 0.2;  // Fast-moving average for unit tests.
  return config;
}

TEST(RedQueue, NoDropsBelowMinThreshold) {
  RedQueue q(small_red(), Rng(1));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(make_packet()));
  EXPECT_EQ(q.drop_count(), 0u);
  EXPECT_EQ(q.packets(), 5u);
}

TEST(RedQueue, HardLimitAlwaysDrops) {
  RedConfig config = small_red();
  config.limit_packets = 3;
  RedQueue q(config, Rng(1));
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (q.push(make_packet())) ++accepted;
  }
  EXPECT_LE(accepted, 3);
  EXPECT_GE(q.drop_count(), 17u);
}

TEST(RedQueue, EarlyDropsBetweenThresholds) {
  RedQueue q(small_red(), Rng(7));
  // Fill past min_th without draining: the average climbs and early
  // drops must appear before the hard limit.
  int pushed = 0;
  while (q.packets() < 28 && pushed < 500) {
    q.push(make_packet());
    ++pushed;
  }
  EXPECT_GT(q.early_drops(), 0u);
  EXPECT_LT(q.packets(), 30u);
}

TEST(RedQueue, AverageTracksOccupancy) {
  RedQueue q(small_red(), Rng(3));
  for (int i = 0; i < 4; ++i) q.push(make_packet());
  const double avg_filled = q.average_queue();
  EXPECT_GT(avg_filled, 0.0);
  while (!q.empty()) q.pop();
  // Average only updates on pushes; one push after draining pulls it
  // toward zero occupancy.
  q.push(make_packet());
  EXPECT_LT(q.average_queue(), avg_filled + 1.0);
}

TEST(RedQueue, FifoOrderPreserved) {
  RedQueue q(small_red(), Rng(5));
  Packet a = make_packet();
  Packet b = make_packet();
  const std::uint64_t uid_a = a.uid;
  const std::uint64_t uid_b = b.uid;
  ASSERT_TRUE(q.push(std::move(a)));
  ASSERT_TRUE(q.push(std::move(b)));
  EXPECT_EQ(q.pop().uid, uid_a);
  EXPECT_EQ(q.pop().uid, uid_b);
}

TEST(RedQueue, BytesAccounting) {
  RedQueue q(small_red(), Rng(9));
  q.push(make_packet(120));
  q.push(make_packet(80));
  EXPECT_EQ(q.bytes(), 200u);
  q.pop();
  EXPECT_EQ(q.bytes(), 80u);
}

TEST(RedLink, LinkUsesRedDiscipline) {
  sim::Simulator sim(1);
  LinkConfig config;
  config.bandwidth_Bps = 1000.0;  // Slow: queue builds instantly.
  config.discipline = QueueDiscipline::kRed;
  config.red = small_red();
  Link link(sim, config, nullptr);
  link.set_sink([](Packet) {});
  for (int i = 0; i < 200; ++i) link.send(make_packet(100));
  EXPECT_GT(link.queue_drop_count(), 0u);
  // The RED hard limit (30) bounds occupancy.
  EXPECT_LE(link.queue().packets(), 30u);
}

TEST(RedLink, KeepsQueueShorterThanDropTail) {
  // Same overload with drop-tail vs RED: RED's early drops keep the
  // standing queue (and so the queueing delay) smaller.
  const auto standing_queue = [](QueueDiscipline discipline) {
    sim::Simulator sim(2);
    LinkConfig config;
    config.bandwidth_Bps = 10000.0;
    config.queue_packets = 30;
    config.discipline = discipline;
    config.red = small_red();
    Link link(sim, config, nullptr);
    link.set_sink([](Packet) {});
    // Offered load 2x capacity for 2 seconds.
    for (int t = 0; t < 200; ++t) {
      sim.schedule_at(t * from_ms(10), [&link] {
        link.send(make_packet(100));
        link.send(make_packet(100));
      });
    }
    sim.run_until(2 * kSecond);
    return link.queue().packets();
  };
  EXPECT_LT(standing_queue(QueueDiscipline::kRed),
            standing_queue(QueueDiscipline::kDropTail));
}

}  // namespace
}  // namespace fmtcp::net
