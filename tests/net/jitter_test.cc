// Per-packet delay jitter on links.
#include <gtest/gtest.h>

#include <vector>

#include "core/connection.h"
#include "net/link.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace fmtcp::net {
namespace {

Packet make_packet() {
  Packet p;
  p.size_bytes = 100;
  p.uid = next_packet_uid();
  return p;
}

TEST(LinkJitter, ZeroJitterIsDeterministic) {
  sim::Simulator sim(1);
  LinkConfig config;
  config.bandwidth_Bps = 1e9;
  config.prop_delay = from_ms(50);
  Link link(sim, config, nullptr);
  std::vector<SimTime> arrivals;
  link.set_sink([&](Packet) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 10; ++i) link.send(make_packet());
  sim.run();
  for (SimTime t : arrivals) {
    EXPECT_NEAR(to_ms(t), 50.0, 0.01);
  }
}

TEST(LinkJitter, MeanExtraDelayMatchesConfig) {
  sim::Simulator sim(2);
  LinkConfig config;
  config.bandwidth_Bps = 1e9;
  config.prop_delay = from_ms(50);
  config.prop_jitter_mean = from_ms(20);
  config.queue_packets = 0;
  Link link(sim, config, nullptr);
  double total_ms = 0.0;
  int count = 0;
  link.set_sink([&](Packet) {
    total_ms += to_ms(sim.now());
    ++count;
  });
  const int n = 20000;
  for (int i = 0; i < n; ++i) link.send(make_packet());
  sim.run();
  ASSERT_EQ(count, n);
  // Serialization is sub-microsecond; mean arrival ~= 50 + 20 ms.
  EXPECT_NEAR(total_ms / n, 70.0, 1.0);
}

TEST(LinkJitter, CanReorderDeliveries) {
  sim::Simulator sim(3);
  LinkConfig config;
  config.bandwidth_Bps = 1e9;
  config.prop_delay = from_ms(1);
  config.prop_jitter_mean = from_ms(30);
  config.queue_packets = 0;
  Link link(sim, config, nullptr);
  std::vector<std::uint64_t> order;
  link.set_sink([&](Packet p) { order.push_back(p.uid); });
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 200; ++i) {
    Packet p = make_packet();
    sent.push_back(p.uid);
    link.send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(order.size(), sent.size());
  EXPECT_NE(order, sent);  // Some inversion almost surely happened.
}

TEST(LinkJitter, FmtcpSurvivesJitteryPath) {
  // End-to-end sanity: a reordering path must not break the protocol
  // (symbols are order-free by design).
  sim::Simulator sim(4);
  net::PathConfig path1;
  path1.one_way_delay = from_ms(100);
  path1.bandwidth_Bps = 0.625e6;
  net::PathConfig path2 = path1;
  path2.delay_jitter_mean = from_ms(30);
  path2.loss_rate = 0.05;
  Topology topology(sim, {path1, path2});

  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 16;
  config.params.symbol_bytes = 64;
  config.params.total_blocks = 30;
  config.subflow.mss_payload = 8 * config.params.symbol_wire_bytes();
  config.subflow.rtt.max_rto = 4 * kSecond;
  core::FmtcpConnection connection(sim, topology, config);
  connection.start();
  sim.run_until(60 * kSecond);
  EXPECT_EQ(connection.receiver().blocks_delivered(), 30u);
  EXPECT_TRUE(connection.receiver().payload_verified());
}

}  // namespace
}  // namespace fmtcp::net
