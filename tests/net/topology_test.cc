#include "net/topology.h"

#include <gtest/gtest.h>

namespace fmtcp::net {
namespace {

TEST(Path, BuildsBothDirections) {
  sim::Simulator sim;
  PathConfig config;
  config.one_way_delay = from_ms(30);
  config.loss_rate = 0.1;
  Path path(sim, config);
  EXPECT_EQ(path.base_rtt(), from_ms(60));
  EXPECT_DOUBLE_EQ(path.forward().loss_rate(), 0.1);
  EXPECT_DOUBLE_EQ(path.reverse().loss_rate(), 0.0);
}

TEST(Path, AckLossConfigurable) {
  sim::Simulator sim;
  PathConfig config;
  config.ack_loss_rate = 0.05;
  Path path(sim, config);
  EXPECT_DOUBLE_EQ(path.reverse().loss_rate(), 0.05);
}

TEST(Path, SwapForwardLoss) {
  sim::Simulator sim;
  PathConfig config;
  Path path(sim, config);
  EXPECT_DOUBLE_EQ(path.forward().loss_rate(), 0.0);
  path.set_forward_loss(std::make_unique<BernoulliLoss>(0.5));
  EXPECT_DOUBLE_EQ(path.forward().loss_rate(), 0.5);
}

TEST(Topology, BuildsRequestedPaths) {
  sim::Simulator sim;
  PathConfig a;
  a.one_way_delay = from_ms(10);
  PathConfig b;
  b.one_way_delay = from_ms(99);
  Topology topo(sim, {a, b});
  EXPECT_EQ(topo.path_count(), 2u);
  EXPECT_EQ(topo.path(0).config().one_way_delay, from_ms(10));
  EXPECT_EQ(topo.path(1).config().one_way_delay, from_ms(99));
}

TEST(Topology, MakeTwoPathFixesSubflowOne) {
  sim::Simulator sim;
  PathConfig path2;
  path2.one_way_delay = from_ms(25);
  path2.loss_rate = 0.1;
  Topology topo = make_two_path(sim, path2);
  EXPECT_EQ(topo.path_count(), 2u);
  EXPECT_EQ(topo.path(0).config().one_way_delay, from_ms(100));
  EXPECT_DOUBLE_EQ(topo.path(0).config().loss_rate, 0.0);
  EXPECT_EQ(topo.path(1).config().one_way_delay, from_ms(25));
  EXPECT_DOUBLE_EQ(topo.path(1).config().loss_rate, 0.1);
}

}  // namespace
}  // namespace fmtcp::net
