// Byte-stream adapter tests: framing units plus end-to-end transfers of
// real application bytes over lossy paths.
#include "core/stream.h"

#include <gtest/gtest.h>

#include <string>

#include "core/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace fmtcp::core {
namespace {

// --- Unit level -------------------------------------------------------

TEST(StreamWriter, PayloadCapacityExcludesHeader) {
  EXPECT_EQ(FmtcpStreamWriter::payload_per_block(16, 64), 16u * 64u - 4u);
}

TEST(StreamWriter, NoBlockUntilDataBuffered) {
  FmtcpStreamWriter writer(4, 16);  // Capacity 60.
  EXPECT_FALSE(writer.has_block(0));
  writer.write("hi");
  EXPECT_FALSE(writer.has_block(0));  // Partial, not closed.
  writer.close();
  EXPECT_TRUE(writer.has_block(0));
  EXPECT_FALSE(writer.has_block(1));
}

TEST(StreamWriter, FullBlockAvailableBeforeClose) {
  FmtcpStreamWriter writer(4, 16);  // Capacity 60.
  writer.write(std::string(60, 'x'));
  EXPECT_TRUE(writer.has_block(0));
  EXPECT_FALSE(writer.has_block(1));
  writer.write(std::string(61, 'y'));
  EXPECT_TRUE(writer.has_block(1));
  EXPECT_FALSE(writer.has_block(2));  // 1 byte left, not closed.
}

TEST(StreamRoundTrip, FramingPreservesBytes) {
  FmtcpStreamWriter writer(4, 16);
  std::string received;
  FmtcpStreamReader reader([&](const std::uint8_t* p, std::size_t n) {
    received.append(reinterpret_cast<const char*>(p), n);
  });

  const std::string message = "the quick brown fox";
  writer.write(message);
  writer.close();
  ASSERT_TRUE(writer.has_block(0));
  const fountain::BlockData block = writer.build_block(0, 4, 16);
  reader.on_block(0, block);

  EXPECT_EQ(received, message);
  EXPECT_TRUE(reader.framing_ok());
  EXPECT_EQ(reader.bytes_received(), message.size());
}

TEST(StreamRoundTrip, MultiBlockSplit) {
  FmtcpStreamWriter writer(4, 16);  // Capacity 60 per block.
  FmtcpStreamReader reader;
  reader.set_store(true);

  std::string message;
  for (int i = 0; i < 150; ++i) message.push_back(static_cast<char>(i));
  writer.write(message);
  writer.close();

  for (net::BlockId id = 0; writer.has_block(id); ++id) {
    reader.on_block(id, writer.build_block(id, 4, 16));
  }
  ASSERT_EQ(reader.blocks_received(), 3u);  // 60 + 60 + 30.
  ASSERT_EQ(reader.stored().size(), message.size());
  EXPECT_TRUE(std::equal(message.begin(), message.end(),
                         reader.stored().begin(),
                         [](char c, std::uint8_t b) {
                           return static_cast<std::uint8_t>(c) == b;
                         }));
}

TEST(StreamWriter, FlushCommitsPartialBlock) {
  FmtcpStreamWriter writer(4, 16);  // Capacity 60.
  writer.write("low latency");
  EXPECT_FALSE(writer.has_block(0));
  writer.flush();
  EXPECT_TRUE(writer.has_block(0));
  EXPECT_FALSE(writer.closed());
  // More data after a flush goes into the next block.
  writer.write("more");
  writer.flush();
  EXPECT_TRUE(writer.has_block(1));

  FmtcpStreamReader reader;
  reader.set_store(true);
  reader.on_block(0, writer.build_block(0, 4, 16));
  reader.on_block(1, writer.build_block(1, 4, 16));
  const std::string got(reader.stored().begin(), reader.stored().end());
  EXPECT_EQ(got, "low latencymore");
}

TEST(StreamWriter, FlushOnEmptyIsNoOp) {
  FmtcpStreamWriter writer(4, 16);
  writer.flush();
  EXPECT_FALSE(writer.has_block(0));
}

TEST(StreamReader, DetectsCorruptFrame) {
  FmtcpStreamReader reader;
  fountain::BlockData block(4, 16);
  block.bytes()[0] = 0xff;  // Length 255 > capacity 60.
  block.bytes()[1] = 0x00;
  reader.on_block(0, block);
  EXPECT_FALSE(reader.framing_ok());
}

// --- End to end over the simulated network ---------------------------

struct StreamRun {
  sim::Simulator sim{9};
  net::Topology topology;
  FmtcpStreamWriter writer;
  std::string received;
  FmtcpStreamReader reader;
  FmtcpConnection connection;

  static net::PathConfig path(double delay_ms, double loss) {
    net::PathConfig config;
    config.one_way_delay = from_seconds(delay_ms / 1e3);
    config.loss_rate = loss;
    config.bandwidth_Bps = 0.625e6;
    return config;
  }

  static FmtcpConnectionConfig make_config(FmtcpStreamWriter* writer,
                                           FmtcpStreamReader* reader) {
    FmtcpConnectionConfig config;
    config.params.block_symbols = 16;
    config.params.symbol_bytes = 64;
    config.subflow.mss_payload =
        8 * config.params.symbol_wire_bytes();
    config.subflow.rtt.max_rto = 4 * kSecond;
    config.source = writer;
    config.block_sink = reader;
    return config;
  }

  explicit StreamRun(double loss2)
      : topology(sim, {path(100.0, 0.0), path(100.0, loss2)}),
        writer(16, 64),
        reader([this](const std::uint8_t* p, std::size_t n) {
          received.append(reinterpret_cast<const char*>(p), n);
        }),
        connection(sim, topology, make_config(&writer, &reader)) {
    writer.attach(&connection.sender());
    connection.start();
  }
};

TEST(StreamEndToEnd, ExactBytesOverLossyPaths) {
  StreamRun run(0.15);
  std::string message;
  for (int i = 0; i < 20000; ++i) {
    message.push_back(static_cast<char>('a' + i % 26));
  }
  run.writer.write(message);
  run.writer.close();
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.received, message);
}

TEST(StreamEndToEnd, IncrementalWritesFlow) {
  StreamRun run(0.05);
  std::string expected;
  // The application trickles data in while the connection runs.
  for (int burst = 0; burst < 10; ++burst) {
    run.sim.schedule_at(burst * kSecond, [&run, &expected, burst] {
      const std::string chunk(997, static_cast<char>('A' + burst));
      expected += chunk;
      run.writer.write(chunk);
    });
  }
  run.sim.schedule_at(10 * kSecond, [&run] { run.writer.close(); });
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.received.size(), 9970u);
  EXPECT_EQ(run.received, expected);
}

TEST(StreamEndToEnd, EmptyCloseDeliversNothing) {
  StreamRun run(0.0);
  run.writer.close();
  run.sim.run_until(10 * kSecond);
  EXPECT_TRUE(run.received.empty());
  EXPECT_TRUE(run.reader.framing_ok());
}

}  // namespace
}  // namespace fmtcp::core
