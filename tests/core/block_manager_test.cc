#include "core/block_manager.h"

#include <gtest/gtest.h>

#include <vector>

namespace fmtcp::core {
namespace {

FmtcpParams small_params() {
  FmtcpParams params;
  params.block_symbols = 8;
  params.symbol_bytes = 16;
  params.max_pending_blocks = 4;
  params.carry_payload = false;
  return params;
}

struct Completion {
  net::BlockId id;
  SimTime delay;
};

struct Fixture {
  sim::Simulator sim{1};
  std::vector<Completion> completions;
  BlockManager manager;

  explicit Fixture(FmtcpParams params = small_params())
      : manager(sim, params, [this](net::BlockId id, SimTime delay) {
          completions.push_back({id, delay});
        }) {}
};

TEST(BlockManager, EnsureCreatesSequentially) {
  Fixture f;
  EXPECT_EQ(f.manager.next_block_id(), 0u);
  SenderBlock& b0 = f.manager.ensure_block(0);
  EXPECT_EQ(b0.id, 0u);
  EXPECT_EQ(f.manager.next_block_id(), 1u);
  SenderBlock& b2 = f.manager.ensure_block(2);  // Opens 1 and 2.
  EXPECT_EQ(b2.id, 2u);
  EXPECT_EQ(f.manager.open_blocks().size(), 3u);
  EXPECT_NE(f.manager.find(1), nullptr);
}

TEST(BlockManager, FindMissesClosedAndUnopened) {
  Fixture f;
  f.manager.ensure_block(0);
  EXPECT_EQ(f.manager.find(5), nullptr);
  net::BlockAck ack;
  ack.block = 0;
  ack.independent_symbols = 8;
  ack.decoded = true;
  f.manager.on_block_ack(ack);
  EXPECT_EQ(f.manager.find(0), nullptr);  // Closed.
}

TEST(BlockManager, CanOpenRespectsPendingCap) {
  Fixture f;
  EXPECT_TRUE(f.manager.can_open(4));
  EXPECT_FALSE(f.manager.can_open(5));
  f.manager.ensure_block(3);  // Opens 4 blocks.
  EXPECT_FALSE(f.manager.can_open(1));
}

TEST(BlockManager, CanOpenRespectsTotalBlocks) {
  FmtcpParams params = small_params();
  params.total_blocks = 2;
  Fixture f(params);
  EXPECT_TRUE(f.manager.can_open(2));
  EXPECT_FALSE(f.manager.can_open(3));
  f.manager.ensure_block(1);
  EXPECT_FALSE(f.manager.can_open(1));
}

TEST(BlockManager, KTildeWeightsInFlightByLoss) {
  Fixture f;
  SenderBlock& block = f.manager.ensure_block(0);
  f.manager.on_symbols_sent(0, 0, 4);  // Subflow 0.
  f.manager.on_symbols_sent(0, 1, 10); // Subflow 1.
  block.k_bar = 2;
  const auto loss_of = [](std::uint32_t subflow) {
    return subflow == 0 ? 0.0 : 0.5;
  };
  // 2 + 4*(1-0) + 10*(1-0.5) = 11.
  EXPECT_DOUBLE_EQ(f.manager.k_tilde(block, loss_of), 11.0);
}

TEST(BlockManager, DeltaTildeUsesEquationTwo) {
  Fixture f;
  SenderBlock& block = f.manager.ensure_block(0);
  const auto no_loss = [](std::uint32_t) { return 0.0; };
  EXPECT_EQ(f.manager.delta_tilde(block, no_loss), 1.0);  // k̃=0 < k̂.
  f.manager.on_symbols_sent(0, 0, 10);  // k̃ = 10 = k̂ + 2.
  EXPECT_DOUBLE_EQ(f.manager.delta_tilde(block, no_loss), 0.25);
}

TEST(BlockManager, AckAndLossDrainInFlight) {
  Fixture f;
  SenderBlock& block = f.manager.ensure_block(0);
  f.manager.on_symbols_sent(0, 0, 6);
  EXPECT_EQ(block.total_in_flight(), 6u);
  f.manager.on_symbols_acked(0, 0, 2);
  EXPECT_EQ(block.total_in_flight(), 4u);
  f.manager.on_symbols_lost(0, 0, 3);
  EXPECT_EQ(block.total_in_flight(), 1u);
}

TEST(BlockManager, DrainClampsAtZero) {
  Fixture f;
  SenderBlock& block = f.manager.ensure_block(0);
  f.manager.on_symbols_sent(0, 0, 2);
  f.manager.on_symbols_acked(0, 0, 5);
  EXPECT_EQ(block.total_in_flight(), 0u);
}

TEST(BlockManager, BlockAckUpdatesKBarMonotonically) {
  Fixture f;
  SenderBlock& block = f.manager.ensure_block(0);
  net::BlockAck ack;
  ack.block = 0;
  ack.independent_symbols = 5;
  f.manager.on_block_ack(ack);
  EXPECT_EQ(block.k_bar, 5u);
  ack.independent_symbols = 3;  // Stale.
  f.manager.on_block_ack(ack);
  EXPECT_EQ(block.k_bar, 5u);
}

TEST(BlockManager, CompletionCallbackCarriesDelay) {
  Fixture f;
  f.manager.ensure_block(0);
  f.sim.schedule_at(from_ms(10), [&] {
    f.manager.on_symbols_sent(0, 0, 1);
  });
  f.sim.schedule_at(from_ms(250), [&] {
    net::BlockAck ack;
    ack.block = 0;
    ack.independent_symbols = 8;
    ack.decoded = true;
    f.manager.on_block_ack(ack);
  });
  f.sim.run();
  ASSERT_EQ(f.completions.size(), 1u);
  EXPECT_EQ(f.completions[0].id, 0u);
  EXPECT_EQ(f.completions[0].delay, from_ms(240));
}

TEST(BlockManager, CompletionFiresOnce) {
  Fixture f;
  f.manager.ensure_block(0);
  net::BlockAck ack;
  ack.block = 0;
  ack.independent_symbols = 8;
  ack.decoded = true;
  f.manager.on_block_ack(ack);
  f.manager.on_block_ack(ack);
  EXPECT_EQ(f.completions.size(), 1u);
  EXPECT_EQ(f.manager.blocks_completed(), 1u);
}

TEST(BlockManager, ClosesOnlyFromFront) {
  Fixture f;
  f.manager.ensure_block(1);  // Opens 0 and 1.
  net::BlockAck ack;
  ack.block = 1;
  ack.independent_symbols = 8;
  ack.decoded = true;
  f.manager.on_block_ack(ack);
  // Block 1 decoded but block 0 still open: both remain in the deque.
  EXPECT_EQ(f.manager.open_blocks().size(), 2u);
  ack.block = 0;
  f.manager.on_block_ack(ack);
  EXPECT_EQ(f.manager.open_blocks().size(), 0u);
}

TEST(BlockManager, StaleEventsForClosedBlocksIgnored) {
  Fixture f;
  f.manager.ensure_block(0);
  net::BlockAck ack;
  ack.block = 0;
  ack.independent_symbols = 8;
  ack.decoded = true;
  f.manager.on_block_ack(ack);
  // These must be no-ops, not crashes.
  f.manager.on_symbols_acked(0, 0, 3);
  f.manager.on_symbols_lost(0, 0, 3);
  f.manager.on_block_ack(ack);
  EXPECT_EQ(f.manager.blocks_completed(), 1u);
}

TEST(BlockManager, TotalSymbolCounter) {
  Fixture f;
  f.manager.ensure_block(0);
  f.manager.on_symbols_sent(0, 0, 7);
  f.manager.on_symbols_sent(0, 1, 3);
  EXPECT_EQ(f.manager.total_symbols_sent(), 10u);
}

}  // namespace
}  // namespace fmtcp::core
