#include "core/params.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fmtcp::core {
namespace {

TEST(FmtcpParams, DerivedSizes) {
  FmtcpParams params;
  params.block_symbols = 64;
  params.symbol_bytes = 160;
  params.symbol_header_bytes = 12;
  EXPECT_EQ(params.block_bytes(), 64u * 160u);
  EXPECT_EQ(params.symbol_wire_bytes(), 172u);
}

TEST(FmtcpParams, DeltaMargin) {
  FmtcpParams params;
  params.delta_hat = 0.5;
  EXPECT_DOUBLE_EQ(params.delta_margin_symbols(), 1.0);
  params.delta_hat = 0.01;
  EXPECT_NEAR(params.delta_margin_symbols(), std::log2(100.0), 1e-12);
}

TEST(FmtcpParams, SmallerDeltaNeedsMoreMargin) {
  FmtcpParams strict;
  strict.delta_hat = 0.001;
  FmtcpParams loose;
  loose.delta_hat = 0.1;
  EXPECT_GT(strict.delta_margin_symbols(), loose.delta_margin_symbols());
}

TEST(FmtcpParams, DefaultsValidate) {
  FmtcpParams params;
  params.validate();  // Must not abort.
  SUCCEED();
}

}  // namespace
}  // namespace fmtcp::core
