#include "core/receiver.h"

#include <gtest/gtest.h>

#include "fountain/block.h"
#include "fountain/random_linear.h"

namespace fmtcp::core {
namespace {

FmtcpParams small_params() {
  FmtcpParams params;
  params.block_symbols = 8;
  params.symbol_bytes = 16;
  params.carry_payload = true;
  return params;
}

/// Packet carrying `count` fresh symbols of `block` from `encoder`.
net::Packet symbol_packet(fountain::RandomLinearEncoder& encoder,
                          std::uint32_t count) {
  net::Packet p;
  p.kind = net::PacketKind::kData;
  for (std::uint32_t i = 0; i < count; ++i) {
    p.symbols.push_back(encoder.next_symbol());
  }
  return p;
}

fountain::RandomLinearEncoder encoder_for(net::BlockId id,
                                          const FmtcpParams& params,
                                          std::uint64_t seed) {
  return fountain::RandomLinearEncoder(
      id,
      fountain::make_deterministic_block(id, params.block_symbols,
                                         params.symbol_bytes),
      Rng(seed));
}

struct Fixture {
  sim::Simulator sim{1};
  metrics::GoodputMeter goodput{kSecond};
  FmtcpParams params = small_params();
  FmtcpReceiver receiver{sim, params, &goodput};

  // on_segment takes a mutable lvalue (it moves payloads off the packet);
  // this adapter lets tests feed freshly built packets inline.
  void deliver(net::Packet p) { receiver.on_segment(0, p); }
};

TEST(FmtcpReceiver, DecodesAndDeliversInOrder) {
  Fixture f;
  auto enc0 = encoder_for(0, f.params, 5);
  auto enc1 = encoder_for(1, f.params, 6);
  // Block 1 completes first but must wait for block 0.
  f.deliver(symbol_packet(enc1, 12));
  EXPECT_EQ(f.receiver.blocks_delivered(), 0u);
  f.deliver(symbol_packet(enc0, 12));
  EXPECT_EQ(f.receiver.blocks_delivered(), 2u);
  EXPECT_EQ(f.receiver.deliver_next(), 2u);
  EXPECT_TRUE(f.receiver.payload_verified());
  EXPECT_EQ(f.goodput.total_bytes(), 2u * f.params.block_bytes());
}

TEST(FmtcpReceiver, RedundantSymbolsCounted) {
  Fixture f;
  auto enc = encoder_for(0, f.params, 5);
  f.deliver(symbol_packet(enc, 12));  // Decodes block 0.
  const std::uint64_t redundant = f.receiver.redundant_symbols();
  f.deliver(symbol_packet(enc, 3));  // All redundant now.
  EXPECT_EQ(f.receiver.redundant_symbols(), redundant + 3);
}

TEST(FmtcpReceiver, FillAckReportsRankAndDecode) {
  Fixture f;
  auto enc = encoder_for(0, f.params, 5);
  net::Packet partial = symbol_packet(enc, 3);
  f.receiver.on_segment(0, partial);

  net::Packet ack;
  std::size_t extra = 0;
  f.receiver.fill_ack(0, partial, ack, extra);
  ASSERT_EQ(ack.block_acks.size(), 1u);
  EXPECT_EQ(ack.block_acks[0].block, 0u);
  EXPECT_EQ(ack.block_acks[0].independent_symbols, 3u);
  EXPECT_FALSE(ack.block_acks[0].decoded);

  net::Packet rest = symbol_packet(enc, 9);
  f.receiver.on_segment(0, rest);
  net::Packet ack2;
  f.receiver.fill_ack(0, rest, ack2, extra);
  bool decoded_reported = false;
  for (const auto& block_ack : ack2.block_acks) {
    if (block_ack.block == 0) {
      decoded_reported = block_ack.decoded;
      EXPECT_EQ(block_ack.independent_symbols, 8u);
    }
  }
  EXPECT_TRUE(decoded_reported);
}

TEST(FmtcpReceiver, AckMentionsFirstUndecodedBlock) {
  Fixture f;
  auto enc0 = encoder_for(0, f.params, 5);
  auto enc1 = encoder_for(1, f.params, 6);
  f.deliver(symbol_packet(enc0, 2));  // Block 0 partial.
  net::Packet block1_packet = symbol_packet(enc1, 2);
  f.receiver.on_segment(0, block1_packet);

  net::Packet ack;
  std::size_t extra = 0;
  f.receiver.fill_ack(0, block1_packet, ack, extra);
  bool mentions_block0 = false;
  for (const auto& block_ack : ack.block_acks) {
    mentions_block0 = mentions_block0 || block_ack.block == 0;
  }
  EXPECT_TRUE(mentions_block0);
}

TEST(FmtcpReceiver, RecentlyDecodedEchoedForAckLossRepair) {
  Fixture f;
  auto enc0 = encoder_for(0, f.params, 5);
  auto enc1 = encoder_for(1, f.params, 6);
  f.deliver(symbol_packet(enc0, 12));  // Decode block 0.
  // A later packet with only block-1 symbols must still re-announce
  // block 0's decode (the previous ACK may have been lost).
  net::Packet block1_packet = symbol_packet(enc1, 2);
  f.receiver.on_segment(0, block1_packet);
  net::Packet ack;
  std::size_t extra = 0;
  f.receiver.fill_ack(0, block1_packet, ack, extra);
  bool block0_decoded = false;
  for (const auto& block_ack : ack.block_acks) {
    if (block_ack.block == 0) block0_decoded = block_ack.decoded;
  }
  EXPECT_TRUE(block0_decoded);
}

TEST(FmtcpReceiver, BufferOccupancyTracksUndeliveredData) {
  Fixture f;
  auto enc1 = encoder_for(1, f.params, 6);
  f.deliver(symbol_packet(enc1, 12));  // Decoded, held.
  EXPECT_GE(f.receiver.max_buffered_bytes(), f.params.block_bytes());
}

TEST(FmtcpReceiver, CorruptPayloadDetected) {
  Fixture f;
  // Feed symbols whose payload does NOT match the deterministic block:
  // encode a different block id under block 0's label.
  fountain::RandomLinearEncoder wrong(
      0,
      fountain::make_deterministic_block(99, f.params.block_symbols,
                                         f.params.symbol_bytes),
      Rng(7));
  f.deliver(symbol_packet(wrong, 12));
  EXPECT_EQ(f.receiver.blocks_delivered(), 1u);  // Decodes fine...
  EXPECT_FALSE(f.receiver.payload_verified());   // ...but fails the check.
}

}  // namespace
}  // namespace fmtcp::core
