#include "core/eat.h"

#include <gtest/gtest.h>

namespace fmtcp::core {
namespace {

SubflowSnapshot snap(std::uint64_t window, SimTime edt, SimTime rt,
                     SimTime tau, double cwnd = 10.0) {
  SubflowSnapshot s;
  s.id = 0;
  s.mss_payload = 1204;
  s.window_space = window;
  s.cwnd = cwnd;
  s.edt = edt;
  s.rt = rt;
  s.tau = tau;
  return s;
}

TEST(Eat, EqualsEdtWhileWindowOpen) {
  const SubflowSnapshot s = snap(3, from_ms(100), from_ms(200), 0);
  EXPECT_EQ(expected_arrival_time(s, 0), from_ms(100));
  EXPECT_EQ(expected_arrival_time(s, 2), from_ms(100));
}

TEST(Eat, FirstPacketPastWindowWaitsForAck) {
  const SubflowSnapshot s = snap(2, from_ms(100), from_ms(200), from_ms(50));
  // EDT + RT - tau = 100 + 200 - 50 = 250 ms.
  EXPECT_EQ(expected_arrival_time(s, 2), from_ms(250));
}

TEST(Eat, ZeroWindowUsesPaperFormula) {
  const SubflowSnapshot s = snap(0, from_ms(100), from_ms(200), from_ms(80));
  EXPECT_EQ(expected_arrival_time(s, 0), from_ms(220));
}

TEST(Eat, FlooredAtEdtWhenAckOverdue) {
  // tau exceeds RT: the formula would go below EDT; clamp holds.
  const SubflowSnapshot s = snap(0, from_ms(100), from_ms(200), from_ms(500));
  EXPECT_EQ(expected_arrival_time(s, 0), from_ms(100));
}

TEST(Eat, LaterPacketsSpacedByAckClock) {
  const SubflowSnapshot s =
      snap(0, from_ms(100), from_ms(200), 0, /*cwnd=*/10.0);
  const SimTime first = expected_arrival_time(s, 0);
  const SimTime second = expected_arrival_time(s, 1);
  // Spacing = RT / cwnd = 20 ms.
  EXPECT_EQ(second - first, from_ms(20));
}

TEST(Eat, MonotoneInVirtualAssignment) {
  const SubflowSnapshot s = snap(2, from_ms(100), from_ms(200), 0, 4.0);
  SimTime last = 0;
  for (std::uint64_t q = 0; q < 20; ++q) {
    const SimTime eat = expected_arrival_time(s, q);
    EXPECT_GE(eat, last);
    last = eat;
  }
}

TEST(Eat, StrictlyIncreasesPastWindow) {
  const SubflowSnapshot s = snap(1, from_ms(100), from_ms(200), 0, 2.0);
  EXPECT_LT(expected_arrival_time(s, 1), expected_arrival_time(s, 5));
}

TEST(SnapshotSubflow, CapturesLiveState) {
  sim::Simulator sim;
  net::LinkConfig link_config;
  net::Link link(sim, link_config, nullptr);
  class NullProvider final : public tcp::SegmentProvider {
    std::optional<tcp::SegmentContent> next_segment(std::uint32_t) override {
      return std::nullopt;
    }
  } provider;
  tcp::SubflowConfig config;
  config.id = 3;
  config.mss_payload = 777;
  tcp::Subflow subflow(sim, config, link, provider);
  subflow.set_loss_hint(0.2);
  const SubflowSnapshot s = snapshot_subflow(subflow);
  EXPECT_EQ(s.id, 3u);
  EXPECT_EQ(s.mss_payload, 777u);
  EXPECT_DOUBLE_EQ(s.loss, 0.2);
  EXPECT_EQ(s.window_space, subflow.window_space());
  EXPECT_EQ(s.edt, subflow.expected_edt());
}

}  // namespace
}  // namespace fmtcp::core
