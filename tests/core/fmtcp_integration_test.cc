// End-to-end FMTCP connection tests over the simulated two-path topology.
#include <gtest/gtest.h>

#include "core/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace fmtcp::core {
namespace {

FmtcpConnectionConfig test_config(std::uint64_t total_blocks = 0) {
  FmtcpConnectionConfig config;
  config.params.block_symbols = 16;
  config.params.symbol_bytes = 64;
  config.params.symbol_header_bytes = 12;
  config.params.delta_hat = 0.05;
  config.params.max_pending_blocks = 32;
  config.params.carry_payload = true;
  config.params.total_blocks = total_blocks;
  config.subflow.mss_payload = 8 * config.params.symbol_wire_bytes();
  config.subflow.rtt.max_rto = 4 * kSecond;
  return config;
}

net::PathConfig path(double delay_ms, double loss) {
  net::PathConfig config;
  config.one_way_delay = from_seconds(delay_ms / 1e3);
  config.loss_rate = loss;
  config.bandwidth_Bps = 0.625e6;
  config.queue_packets = 100;
  return config;
}

struct TestRun {
  sim::Simulator sim;
  net::Topology topology;
  FmtcpConnection connection;

  TestRun(std::uint64_t seed, const FmtcpConnectionConfig& config,
      double loss2, double delay2_ms = 100.0)
      : sim(seed),
        topology(sim, {path(100.0, 0.0), path(delay2_ms, loss2)}),
        connection(sim, topology, config) {
    connection.start();
  }
};

TEST(FmtcpIntegration, FiniteTransferCompletesAndVerifies) {
  TestRun run(1, test_config(/*total_blocks=*/50), 0.05);
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 50u);
  EXPECT_TRUE(run.connection.receiver().payload_verified());
  EXPECT_EQ(run.connection.sender().blocks().blocks_completed(), 50u);
}

TEST(FmtcpIntegration, BlocksDeliverInOrder) {
  TestRun run(2, test_config(30), 0.1);
  run.sim.run_until(60 * kSecond);
  // deliver_next equals the count of delivered blocks: strict order.
  EXPECT_EQ(run.connection.receiver().deliver_next(),
            run.connection.receiver().blocks_delivered());
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 30u);
}

TEST(FmtcpIntegration, LosslessPathsNoRetransmissionWaste) {
  TestRun run(3, test_config(20), 0.0);
  run.sim.run_until(30 * kSecond);
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 20u);
  EXPECT_EQ(run.connection.subflow(0).timeouts(), 0u);
  EXPECT_EQ(run.connection.subflow(1).timeouts(), 0u);
}

TEST(FmtcpIntegration, SurvivesSeverePathTwoLoss) {
  TestRun run(4, test_config(40), 0.30);
  run.sim.run_until(120 * kSecond);
  EXPECT_EQ(run.connection.receiver().blocks_delivered(), 40u);
  EXPECT_TRUE(run.connection.receiver().payload_verified());
}

TEST(FmtcpIntegration, ContinuousStreamMakesSteadyProgress) {
  // Regression for the idle-wedge bug: under heavy path-2 loss the
  // connection must keep delivering in every window, not stall.
  TestRun run(5, test_config(0), 0.35);
  std::uint64_t last = 0;
  for (int t = 10; t <= 60; t += 10) {
    run.sim.run_until(t * kSecond);
    const std::uint64_t now = run.connection.receiver().blocks_delivered();
    EXPECT_GT(now, last) << "no progress in window ending " << t << "s";
    last = now;
  }
}

TEST(FmtcpIntegration, RedundancyStaysBounded) {
  TestRun run(6, test_config(100), 0.02);
  run.sim.run_until(120 * kSecond);
  ASSERT_EQ(run.connection.receiver().blocks_delivered(), 100u);
  const double symbols_needed = 100.0 * 16.0;
  const double symbols_sent = static_cast<double>(
      run.connection.sender().blocks().total_symbols_sent());
  // δ̂ = 0.05 with k̂ = 16 costs ~4.3/16 ≈ 27% worst case plus losses;
  // anything beyond 60% indicates an accounting bug.
  EXPECT_LT(symbols_sent / symbols_needed, 1.6);
}

TEST(FmtcpIntegration, DelayRecordedPerBlock) {
  TestRun run(7, test_config(25), 0.05);
  run.sim.run_until(60 * kSecond);
  EXPECT_EQ(run.connection.block_delays().completed_blocks(), 25u);
  EXPECT_GT(run.connection.block_delays().mean_delay_ms(), 0.0);
  // A block cannot complete faster than one path RTT (200 ms).
  for (double d : run.connection.block_delays().delays_ms_in_order()) {
    EXPECT_GE(d, 190.0);
  }
}

TEST(FmtcpIntegration, GoodputAccountsDeliveredBytes) {
  TestRun run(8, test_config(10), 0.0);
  run.sim.run_until(30 * kSecond);
  EXPECT_EQ(run.connection.goodput().total_bytes(),
            10u * test_config().params.block_bytes());
}

TEST(FmtcpIntegration, DeterministicAcrossRuns) {
  const auto run_once = [](std::uint64_t seed) {
    TestRun run(seed, test_config(0), 0.1);
    run.sim.run_until(20 * kSecond);
    return std::pair<std::uint64_t, std::uint64_t>(
        run.connection.receiver().blocks_delivered(),
        run.connection.subflow(1).segments_sent());
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST(FmtcpIntegration, ReceiverBufferBounded) {
  TestRun run(9, test_config(0), 0.15);
  run.sim.run_until(60 * kSecond);
  // Buffer is bounded by the pending-block cap.
  const std::size_t cap = test_config().params.max_pending_blocks *
                          test_config().params.block_bytes() * 2;
  EXPECT_LT(run.connection.receiver().max_buffered_bytes(), cap);
  EXPECT_GT(run.connection.receiver().blocks_delivered(), 100u);
}

TEST(FmtcpIntegration, RankOnlyModeBehavesLikePayloadMode) {
  FmtcpConnectionConfig with_payload = test_config(30);
  FmtcpConnectionConfig rank_only = test_config(30);
  rank_only.params.carry_payload = false;

  TestRun a(10, with_payload, 0.05);
  a.sim.run_until(60 * kSecond);
  TestRun b(10, rank_only, 0.05);
  b.sim.run_until(60 * kSecond);
  // Identical protocol decisions: same seed, same packet sizes -> same
  // delivery count and segment counts.
  EXPECT_EQ(a.connection.receiver().blocks_delivered(),
            b.connection.receiver().blocks_delivered());
  EXPECT_EQ(a.connection.subflow(0).segments_sent(),
            b.connection.subflow(0).segments_sent());
}

TEST(FmtcpIntegration, UrgentSymbolsPreferGoodPath) {
  // With a terrible path 2, nearly all symbols should flow on path 1.
  TestRun run(11, test_config(0), 0.25, /*delay2_ms=*/150.0);
  run.sim.run_until(30 * kSecond);
  EXPECT_GT(run.connection.subflow(0).segments_sent(),
            5 * run.connection.subflow(1).segments_sent());
}

}  // namespace
}  // namespace fmtcp::core
