#include "core/allocator.h"

#include <gtest/gtest.h>

#include <map>

#include "common/time.h"

namespace fmtcp::core {
namespace {

/// Scriptable environment: a fixed set of blocks with given real k̃, a
/// fixed set of subflow snapshots, uniform k̂.
class MockEnv final : public AllocatorEnv {
 public:
  std::vector<SubflowSnapshot> subflows;
  std::vector<net::BlockId> blocks;          ///< Open block ids in order.
  std::map<net::BlockId, double> k_tilde;    ///< Real k̃ per block.
  std::uint32_t k_hat = 8;
  double delta = 0.05;                       ///< Needs k̂ + ~4.32.
  std::size_t wire = 172;
  std::uint64_t prospective_limit = 0;       ///< Extra openable blocks.

  std::vector<SubflowSnapshot> subflow_snapshots() const override {
    return subflows;
  }
  std::optional<net::BlockId> block_at(std::size_t index) const override {
    if (index < blocks.size()) return blocks[index];
    const std::uint64_t beyond = index - blocks.size();
    if (beyond < prospective_limit) {
      return (blocks.empty() ? 0 : blocks.back() + 1) + beyond;
    }
    return std::nullopt;
  }
  std::uint32_t block_k_hat(net::BlockId) const override { return k_hat; }
  double real_k_tilde(net::BlockId id) const override {
    const auto it = k_tilde.find(id);
    return it == k_tilde.end() ? 0.0 : it->second;
  }
  double delta_hat() const override { return delta; }
  std::size_t symbol_wire_bytes() const override { return wire; }
};

SubflowSnapshot make_snap(std::uint32_t id, std::uint64_t window,
                          SimTime edt, double loss = 0.0) {
  SubflowSnapshot s;
  s.id = id;
  s.mss_payload = 1204;  // 7 symbols of 172.
  s.window_space = window;
  s.cwnd = 10.0;
  s.edt = edt;
  s.rt = 2 * edt;
  s.tau = 0;
  s.loss = loss;
  return s;
}

TEST(Allocator, FillsFirstIncompleteBlock) {
  MockEnv env;
  env.subflows = {make_snap(0, 5, from_ms(100))};
  env.blocks = {0};
  env.k_tilde[0] = 0.0;
  Allocator alloc(env);
  const auto plan = alloc.allocate(0);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->entries.size(), 1u);
  EXPECT_EQ(plan->entries[0].block, 0u);
  EXPECT_EQ(plan->entries[0].symbols, 7u);  // MSS-limited.
  EXPECT_EQ(plan->payload_bytes, 7u * 172u);
}

TEST(Allocator, StopsAtDeltaCompleteness) {
  MockEnv env;
  env.subflows = {make_snap(0, 5, from_ms(100))};
  env.blocks = {0};
  // Needs k̂ + log2(1/0.05) ≈ 8 + 4.32; with k̃ = 11, 2 more symbols on a
  // lossless flow reach 13 > 12.32.
  env.k_tilde[0] = 11.0;
  Allocator alloc(env);
  const auto plan = alloc.allocate(0);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->entries.size(), 1u);
  EXPECT_EQ(plan->entries[0].symbols, 2u);
}

TEST(Allocator, SpillsIntoNextBlockWithinMss) {
  MockEnv env;
  env.subflows = {make_snap(0, 5, from_ms(100))};
  env.blocks = {0, 1};
  env.k_tilde[0] = 11.0;  // Needs 2.
  env.k_tilde[1] = 0.0;   // Needs plenty.
  Allocator alloc(env);
  const auto plan = alloc.allocate(0);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->entries.size(), 2u);
  EXPECT_EQ(plan->entries[0].block, 0u);
  EXPECT_EQ(plan->entries[0].symbols, 2u);
  EXPECT_EQ(plan->entries[1].block, 1u);
  EXPECT_EQ(plan->entries[1].symbols, 5u);
}

TEST(Allocator, RuleR2OrdersBlocks) {
  // Block 1 may not receive symbols while block 0 is incomplete.
  MockEnv env;
  env.subflows = {make_snap(0, 5, from_ms(100))};
  env.blocks = {0, 1};
  env.k_tilde[0] = 0.0;
  env.k_tilde[1] = 0.0;
  Allocator alloc(env);
  const auto plan = alloc.allocate(0);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->entries.size(), 1u);
  EXPECT_EQ(plan->entries[0].block, 0u);
}

TEST(Allocator, RuleR1NothingWhenAllComplete) {
  MockEnv env;
  env.subflows = {make_snap(0, 5, from_ms(100))};
  env.blocks = {0};
  env.k_tilde[0] = 20.0;  // Far past δ̂-completeness.
  Allocator alloc(env);
  EXPECT_FALSE(alloc.allocate(0).has_value());
}

TEST(Allocator, OpensProspectiveBlocks) {
  MockEnv env;
  env.subflows = {make_snap(0, 5, from_ms(100))};
  env.blocks = {};
  env.prospective_limit = 2;
  Allocator alloc(env);
  const auto plan = alloc.allocate(0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->entries[0].block, 0u);
}

TEST(Allocator, ExhaustedStreamYieldsNothing) {
  MockEnv env;
  env.subflows = {make_snap(0, 5, from_ms(100))};
  env.blocks = {};
  env.prospective_limit = 0;
  Allocator alloc(env);
  EXPECT_FALSE(alloc.allocate(0).has_value());
}

TEST(Allocator, VirtualAllocationGivesSlowFlowLaterBlocks) {
  // Fast flow 0 (low EAT, huge window) virtually absorbs the early
  // blocks; the pending slow flow 1 is assigned a later block.
  MockEnv env;
  env.subflows = {make_snap(0, 50, from_ms(50)),
                  make_snap(1, 2, from_ms(400))};
  env.blocks = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  Allocator alloc(env);
  const auto plan = alloc.allocate(1);
  // Flow 0's 50-packet window (350 symbols) virtually absorbs all ten
  // blocks (~130 symbols), so the slow pending flow is left with nothing
  // (correct per R1: flow 0 will physically send them when it pulls) —
  // or, at most, a late block. Never an early one.
  if (plan.has_value()) {
    EXPECT_GE(plan->entries[0].block, 8u);
  }
}

TEST(Allocator, PendingFastFlowGetsFirstBlock) {
  MockEnv env;
  env.subflows = {make_snap(0, 50, from_ms(50)),
                  make_snap(1, 2, from_ms(400))};
  env.blocks = {0, 1, 2};
  Allocator alloc(env);
  const auto plan = alloc.allocate(0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->entries[0].block, 0u);
}

TEST(Allocator, LossyFlowAllocatesMoreSymbols) {
  MockEnv env;
  env.blocks = {0};
  env.k_tilde[0] = 11.0;
  // Lossless flow: 2 symbols reach 13 > 12.32. Half-lossy flow: each
  // symbol counts 0.5, so 3 are needed (11 + 1.5 = 12.5).
  env.subflows = {make_snap(0, 5, from_ms(100), /*loss=*/0.5)};
  Allocator alloc(env);
  const auto plan = alloc.allocate(0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->entries[0].symbols, 3u);
}

TEST(Allocator, RespectsSmallMss) {
  MockEnv env;
  SubflowSnapshot tiny = make_snap(0, 5, from_ms(100));
  tiny.mss_payload = 200;  // One 172-byte symbol fits.
  env.subflows = {tiny};
  env.blocks = {0};
  Allocator alloc(env);
  const auto plan = alloc.allocate(0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->total_symbols(), 1u);
  EXPECT_LE(plan->payload_bytes, 200u);
}

TEST(Allocator, MssSmallerThanSymbolSendsNothing) {
  MockEnv env;
  SubflowSnapshot tiny = make_snap(0, 5, from_ms(100));
  tiny.mss_payload = 100;
  env.subflows = {tiny};
  env.blocks = {0};
  Allocator alloc(env);
  EXPECT_FALSE(alloc.allocate(0).has_value());
}

TEST(PacketPlan, TotalSymbols) {
  PacketPlan plan;
  plan.entries = {{0, 3}, {1, 4}};
  EXPECT_EQ(plan.total_symbols(), 7u);
}

}  // namespace
}  // namespace fmtcp::core
