#include "analysis/allocation_analysis.h"

#include <gtest/gtest.h>

namespace fmtcp::analysis {
namespace {

TEST(AllocationAnalysis, ExpectedResponseTimeEq10) {
  EXPECT_DOUBLE_EQ(expected_response_time(0.2, 1.0, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(expected_response_time(0.2, 1.0, 0.5), 0.6);
}

TEST(AllocationAnalysis, SedtEq13) {
  // SEDT = pR/(1-p) + r/2.
  EXPECT_DOUBLE_EQ(sedt(0.2, 0.2, 0.0), 0.1);
  EXPECT_NEAR(sedt(0.2, 0.3, 0.1), 0.1 * 0.3 / 0.9 + 0.1, 1e-12);
}

TEST(AllocationAnalysis, SedtIncreasesWithLoss) {
  EXPECT_LT(sedt(0.2, 0.2, 0.01), sedt(0.2, 0.2, 0.1));
  EXPECT_LT(sedt(0.2, 0.2, 0.1), sedt(0.2, 0.2, 0.3));
}

TEST(AllocationAnalysis, EdtSingleFormula) {
  // (1+p) r / (2(1-p)).
  EXPECT_DOUBLE_EQ(edt_single(0.2, 0.0), 0.1);
  EXPECT_NEAR(edt_single(0.2, 0.2), 1.2 * 0.2 / 1.6, 1e-12);
}

TEST(AllocationAnalysis, Lemma1ThresholdAtLeastR1) {
  for (double p1 : {0.0, 0.05, 0.2}) {
    for (double p2 : {0.0, 0.1, 0.3}) {
      EXPECT_GT(lemma1_min_r2(0.2, p1, p2), 0.2);
    }
  }
}

TEST(AllocationAnalysis, Lemma1KnownValue) {
  // p1 = p2 = 0: factor = 1 + 2 = 3.
  EXPECT_DOUBLE_EQ(lemma1_min_r2(0.1, 0.0, 0.0), 0.3);
}

TEST(AllocationAnalysis, DiversityM) {
  // Identical paths: m = 1.
  EXPECT_DOUBLE_EQ(diversity_m(0.2, 0.1, 0.2, 0.1), 1.0);
  // Worse second path: m > 1.
  EXPECT_GT(diversity_m(0.2, 0.0, 0.4, 0.15), 1.0);
}

TEST(AllocationAnalysis, Theorem3BoundEq17) {
  const double m = 3.0;
  const double bound = theorem3_ratio_bound(0.0, 0.1, m);
  EXPECT_NEAR(bound, 0.1 + 2.0 + 0.9 * 3.0, 1e-12);
}

TEST(AllocationAnalysis, FmtcpBeatsMptcpBeyondThreshold) {
  // For m above the threshold, the FMTCP bound is below m (MPTCP ratio).
  const double p1 = 0.0;
  const double p2 = 0.1;
  const double threshold = fmtcp_advantage_threshold(p1, p2);
  EXPECT_NEAR(threshold, 1.0 + 2.0 / 0.1, 1e-12);
  const double m = threshold * 1.2;
  EXPECT_LT(theorem3_ratio_bound(p1, p2, m), m);
  const double m_small = threshold * 0.8;
  EXPECT_GT(theorem3_ratio_bound(p1, p2, m_small), m_small);
}

TEST(AllocationAnalysis, ThresholdDropsWithWorseLoss) {
  // The lossier path 2 is, the sooner FMTCP wins.
  EXPECT_GT(fmtcp_advantage_threshold(0.0, 0.05),
            fmtcp_advantage_threshold(0.0, 0.2));
}

TEST(AllocationAnalysis, SedtOrderingTheorem2Shape) {
  // Higher-quality path (smaller r, p) has smaller SEDT.
  const double good = sedt(0.1, 0.1, 0.01);
  const double bad = sedt(0.3, 0.3, 0.15);
  EXPECT_LT(good, bad);
}

}  // namespace
}  // namespace fmtcp::analysis
