#include "analysis/coding_analysis.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/random_linear.h"

namespace fmtcp::analysis {
namespace {

TEST(CodingAnalysis, ExpectedPacketsDeliveredEq3) {
  EXPECT_DOUBLE_EQ(expected_packets_delivered(100, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(expected_packets_delivered(100, 0.5), 200.0);
  EXPECT_NEAR(expected_packets_delivered(64, 0.1), 64.0 / 0.9, 1e-12);
}

TEST(CodingAnalysis, BatchEqualsExpectedDelivered) {
  EXPECT_DOUBLE_EQ(fixed_rate_batch(64, 0.2),
                   expected_packets_delivered(64, 0.2));
}

TEST(CodingAnalysis, ActualDeliveredEq5) {
  // a = 100/(1-0.1); E(X_R) = 0.8 * a.
  EXPECT_NEAR(expected_actual_delivered(100, 0.1, 0.2),
              0.8 * 100.0 / 0.9, 1e-12);
}

TEST(CodingAnalysis, ChernoffBoundEq6) {
  const double bound = no_retransmission_probability_bound(100, 0.05, 0.15);
  const double expected =
      std::exp(-(0.1 * 0.1 * 100) / (3.0 * 0.95 * 0.85));
  EXPECT_NEAR(bound, expected, 1e-12);
}

TEST(CodingAnalysis, ChernoffDecreasesWithBlockSize) {
  const double small = no_retransmission_probability_bound(50, 0.05, 0.15);
  const double large = no_retransmission_probability_bound(500, 0.05, 0.15);
  EXPECT_LT(large, small);
}

TEST(CodingAnalysis, ChernoffEqualLossIsTrivial) {
  EXPECT_DOUBLE_EQ(no_retransmission_probability_bound(100, 0.1, 0.1), 1.0);
}

TEST(CodingAnalysis, FountainBoundEq7) {
  EXPECT_DOUBLE_EQ(fountain_expected_symbols_bound(64, 0.0), 68.0);
  EXPECT_DOUBLE_EQ(fountain_expected_symbols_bound(64, 0.5), 136.0);
}

TEST(CodingAnalysis, ExpectedSymbolsToDecodeApproaches1Point6) {
  const double overhead64 = expected_symbols_to_decode(64) - 64.0;
  EXPECT_NEAR(overhead64, 1.6067, 0.01);
  const double overhead8 = expected_symbols_to_decode(8) - 8.0;
  EXPECT_GT(overhead8, 1.5);
  EXPECT_LT(overhead8, 1.7);
}

TEST(CodingAnalysis, ExpectedSymbolsBelowPaperBound) {
  for (std::uint32_t k : {8u, 16u, 64u, 128u}) {
    EXPECT_LT(expected_symbols_to_decode(k),
              fountain_expected_symbols_bound(k, 0.0));
  }
}

TEST(CodingAnalysis, MonteCarloMatchesExpectedSymbols) {
  Rng rng(99);
  const std::uint32_t k = 16;
  double total = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    fountain::RandomLinearEncoder encoder(t, k, 2, rng.fork());
    fountain::BlockDecoder decoder(k, 2, false);
    while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
    total += static_cast<double>(decoder.received_count());
  }
  EXPECT_NEAR(total / trials, expected_symbols_to_decode(k), 0.35);
}

TEST(CodingAnalysis, ExactTailRespectsChernoffBound) {
  for (std::uint32_t A : {50u, 100u, 200u}) {
    const double exact = no_retransmission_probability_exact(A, 0.05, 0.2);
    const double bound = no_retransmission_probability_bound(A, 0.05, 0.2);
    EXPECT_LE(exact, bound + 1e-9) << "A=" << A;
  }
}

TEST(CodingAnalysis, ExactTailSaneProbability) {
  const double p = no_retransmission_probability_exact(100, 0.05, 0.2);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  // Overprovisioned case: actual loss below assumed -> near certainty.
  const double good = no_retransmission_probability_exact(100, 0.2, 0.05);
  EXPECT_GT(good, 0.99);
}

}  // namespace
}  // namespace fmtcp::analysis
