// GF(256) lazy-vs-eager decoder equivalence: the production
// Gf256RlcDecoder defers payload multiplies to decode(); this suite keeps
// a reference *eager* Gaussian-elimination implementation (payload
// eliminated on every arrival via plain gf256_mul loops, independent of
// the kernel plane) and checks that for arbitrary symbol streams — mixed
// systematic/coded, duplicates, out-of-order, many seeds — the rank
// trajectory, redundant counts, and decoded bytes are identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fountain/codec.h"
#include "fountain/gf256.h"
#include "fountain/gf256_rlc.h"

namespace fmtcp::fountain {
namespace {

/// Reference eager GF(256) Gaussian elimination, deliberately simple:
/// byte-by-byte gf256_mul everywhere, no kernels, no laziness.
class EagerGf256Decoder {
 public:
  EagerGf256Decoder(std::uint32_t symbols, std::size_t symbol_bytes)
      : symbols_(symbols), symbol_bytes_(symbol_bytes),
        pivot_rows_(symbols) {}

  bool add_symbol(const net::EncodedSymbol& symbol) {
    Row row;
    row.coeffs.assign(symbols_, 0);
    if (symbol.is_systematic()) {
      row.coeffs[symbol.systematic_index] = 1;
    } else {
      std::vector<std::uint8_t> expanded;
      gf256_coefficients_from_seed_into(symbol.coeff_seed, symbols_,
                                        expanded);
      row.coeffs = expanded;
    }
    row.data = symbol.data;
    ++received_;
    if (rank_ == symbols_) {
      ++redundant_;
      return false;
    }
    std::size_t pivot = first_nonzero(row.coeffs);
    while (pivot < symbols_ && pivot_rows_[pivot].has_value()) {
      eliminate(row, *pivot_rows_[pivot], row.coeffs[pivot]);
      pivot = first_nonzero(row.coeffs);
    }
    if (pivot >= symbols_) {
      ++redundant_;
      return false;
    }
    normalise(row, pivot);
    pivot_rows_[pivot] = std::move(row);
    ++rank_;
    return true;
  }

  std::uint32_t rank() const { return rank_; }
  std::uint64_t redundant_count() const { return redundant_; }
  std::uint64_t received_count() const { return received_; }
  bool complete() const { return rank_ == symbols_; }

  BlockData decode() {
    for (std::size_t p = symbols_; p-- > 0;) {
      for (std::size_t q = 0; q < p; ++q) {
        Row& upper = *pivot_rows_[q];
        const std::uint8_t c = upper.coeffs[p];
        if (c != 0) eliminate(upper, *pivot_rows_[p], c);
      }
    }
    BlockData out(symbols_, symbol_bytes_);
    for (std::uint32_t i = 0; i < symbols_; ++i) {
      const Row& row = *pivot_rows_[i];
      std::copy(row.data.begin(), row.data.end(), out.symbol(i));
    }
    return out;
  }

 private:
  struct Row {
    std::vector<std::uint8_t> coeffs;
    AlignedBytes data;
  };

  std::size_t first_nonzero(const std::vector<std::uint8_t>& v) const {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] != 0) return i;
    }
    return v.size();
  }

  /// row ^= c · other, coefficients and payload.
  void eliminate(Row& row, const Row& other, std::uint8_t c) {
    for (std::size_t i = 0; i < symbols_; ++i) {
      row.coeffs[i] ^= gf256_mul(c, other.coeffs[i]);
    }
    for (std::size_t j = 0; j < row.data.size(); ++j) {
      row.data[j] ^= gf256_mul(c, other.data[j]);
    }
  }

  /// row = pivot⁻¹ · row, so the pivot coefficient becomes 1.
  void normalise(Row& row, std::size_t pivot) {
    const std::uint8_t inv = gf256_inv(row.coeffs[pivot]);
    for (std::size_t i = 0; i < symbols_; ++i) {
      row.coeffs[i] = gf256_mul(inv, row.coeffs[i]);
    }
    for (std::size_t j = 0; j < row.data.size(); ++j) {
      row.data[j] = gf256_mul(inv, row.data[j]);
    }
  }

  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  std::uint32_t rank_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t redundant_ = 0;
  std::vector<std::optional<Row>> pivot_rows_;
};

/// Builds a chaotic stream: systematic prefix mixed with coded repair
/// symbols, random duplicates, then a full shuffle.
std::vector<net::EncodedSymbol> chaotic_stream(std::uint64_t seed,
                                               std::uint32_t k,
                                               std::size_t symbol_bytes,
                                               bool systematic) {
  Rng rng(seed * 131 + 17);
  Gf256RlcEncoder encoder(seed, make_deterministic_block(seed, k, symbol_bytes),
                          rng.fork(), systematic);
  std::vector<net::EncodedSymbol> pool;
  for (std::uint32_t i = 0; i < 2 * k + 8; ++i) {
    pool.push_back(encoder.next_symbol());
    if (rng.bernoulli(0.3)) pool.push_back(pool.back());  // Duplicate.
  }
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.next_below(i)]);
  }
  return pool;
}

using EquivParam = std::tuple<std::uint64_t /*seed*/, std::uint32_t /*k*/,
                              bool /*systematic*/>;

class Gf256LazyEagerEquivalence
    : public ::testing::TestWithParam<EquivParam> {};

TEST_P(Gf256LazyEagerEquivalence, IdenticalTrajectoryAndDecode) {
  const auto [seed, k, systematic] = GetParam();
  const std::size_t symbol_bytes = 24;
  const std::vector<net::EncodedSymbol> stream =
      chaotic_stream(seed, k, symbol_bytes, systematic);

  Gf256RlcDecoder lazy(k, symbol_bytes, /*track_data=*/true);
  EagerGf256Decoder eager(k, symbol_bytes);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    net::EncodedSymbol copy = stream[i];
    const bool a = lazy.add_symbol(std::move(copy));
    const bool b = eager.add_symbol(stream[i]);
    ASSERT_EQ(a, b) << "symbol " << i;
    ASSERT_EQ(lazy.rank(), eager.rank()) << "symbol " << i;
    ASSERT_EQ(lazy.redundant_count(), eager.redundant_count())
        << "symbol " << i;
  }
  ASSERT_EQ(lazy.complete(), eager.complete());
  // 2k+8 generated symbols: every seed in the suite reaches full rank
  // (a GF(256) draw is dependent with probability ≤ 2⁻⁸ per symbol).
  ASSERT_TRUE(lazy.complete());
  EXPECT_EQ(lazy.decode().bytes(), eager.decode().bytes());
  EXPECT_EQ(lazy.decode().bytes(),
            make_deterministic_block(seed, k, symbol_bytes).bytes());
}

TEST_P(Gf256LazyEagerEquivalence, RankOnlyModeTouchesZeroPayloadBytes) {
  const auto [seed, k, systematic] = GetParam();
  const std::vector<net::EncodedSymbol> stream =
      chaotic_stream(seed, k, 24, systematic);
  Gf256RlcDecoder rank_only(k, 24, /*track_data=*/false);
  Gf256RlcDecoder tracked(k, 24, /*track_data=*/true);
  for (const auto& symbol : stream) {
    rank_only.add_symbol(symbol);
    tracked.add_symbol(symbol);
    ASSERT_EQ(rank_only.rank(), tracked.rank());
  }
  // The online phase is coefficient-only; rank-only mode never touches
  // payload bytes at all.
  EXPECT_EQ(rank_only.payload_bytes_multiplied(), 0u);
  EXPECT_EQ(tracked.payload_bytes_multiplied(), 0u);
  ASSERT_TRUE(tracked.complete());
  tracked.decode();
  EXPECT_GT(tracked.payload_bytes_multiplied(), 0u);
  EXPECT_EQ(tracked.rows_composed(), k);
  EXPECT_EQ(rank_only.payload_bytes_multiplied(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, Gf256LazyEagerEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u),
                       ::testing::Values(4u, 16u, 24u, 64u, 128u),
                       ::testing::Bool()));

TEST(Gf256ReceptionOverhead, DenserFieldNeedsFewerExtraSymbols) {
  // The CTCP argument, observed directly: over many random streams the
  // GF(256) decoder almost never sees a dependent draw before full rank,
  // while GF(2) routinely needs a few extra symbols.
  const std::uint32_t k = 64;
  std::uint64_t gf256_redundant = 0;
  std::uint64_t trials = 0;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    Rng rng(seed);
    Gf256RlcEncoder encoder(seed, k, 16, rng.fork());
    Gf256RlcDecoder decoder(k, 16, /*track_data=*/false);
    while (!decoder.complete()) {
      net::EncodedSymbol s = encoder.next_symbol();
      decoder.add_symbol(std::move(s));
      ++trials;
    }
    gf256_redundant += decoder.redundant_count();
  }
  // Expected redundancy ≈ trials / 255 ≈ 10 over 40×64 symbols; allow a
  // wide margin but catch a GF(2)-like decoder (which would see ~40).
  EXPECT_LE(gf256_redundant, 25u);
}

TEST(SymbolCodecWrapper, Gf256RoundTripBehindProtocolInterface) {
  // The variant wrappers the protocol layer holds: encode with a
  // SymbolEncoder(kGf256), decode with a SymbolDecoder(kGf256).
  const std::uint32_t k = 32;
  const std::size_t symbol_bytes = 40;
  Rng rng(7);
  SymbolEncoder encoder(CodingField::kGf256, 9,
                        make_deterministic_block(9, k, symbol_bytes),
                        rng.fork(), /*systematic=*/true);
  SymbolDecoder decoder(CodingField::kGf256, k, symbol_bytes,
                        /*track_data=*/true);
  EXPECT_EQ(encoder.field(), CodingField::kGf256);
  EXPECT_EQ(decoder.field(), CodingField::kGf256);
  while (!decoder.complete()) {
    decoder.add_symbol(encoder.next_symbol());
  }
  DecodeScratch scratch;
  EXPECT_EQ(decoder.decode(scratch).bytes(),
            make_deterministic_block(9, k, symbol_bytes).bytes());
}

}  // namespace
}  // namespace fmtcp::fountain
