// Lazy-vs-eager decoder equivalence: the production BlockDecoder defers
// payload XORs to decode(); this suite keeps a reference *eager*
// implementation (payload eliminated on every arrival, as the decoder
// originally worked) and checks that for arbitrary symbol streams —
// mixed systematic/coded, duplicates, out-of-order, many seeds — the
// rank trajectory, redundant counts, and decoded bytes are identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/random_linear.h"

namespace fmtcp::fountain {
namespace {

/// Reference eager Gaussian-elimination decoder: every arriving symbol's
/// payload is XORed during online elimination, and back-substitution
/// XORs payloads row by row. Deliberately simple and independent of the
/// production decoder's lazy composition machinery.
class EagerDecoder {
 public:
  EagerDecoder(std::uint32_t symbols, std::size_t symbol_bytes)
      : symbols_(symbols), symbol_bytes_(symbol_bytes),
        pivot_rows_(symbols) {}

  bool add_symbol(const net::EncodedSymbol& symbol) {
    BitVector coeffs(symbols_);
    if (symbol.is_systematic()) {
      coeffs.set(symbol.systematic_index, true);
    } else {
      coeffs = coefficients_from_seed(symbol.coeff_seed, symbols_);
    }
    ++received_;
    if (rank_ == symbols_) {
      ++redundant_;
      return false;
    }
    Row row{coeffs, symbol.data};
    std::size_t pivot = row.coeffs.lowest_set_bit();
    while (pivot < symbols_ && pivot_rows_[pivot].has_value()) {
      row.coeffs.xor_with(pivot_rows_[pivot]->coeffs);
      xor_bytes(row.data, pivot_rows_[pivot]->data);
      pivot = row.coeffs.lowest_set_bit();
    }
    if (pivot >= symbols_) {
      ++redundant_;
      return false;
    }
    pivot_rows_[pivot] = std::move(row);
    ++rank_;
    return true;
  }

  std::uint32_t rank() const { return rank_; }
  std::uint64_t redundant_count() const { return redundant_; }
  std::uint64_t received_count() const { return received_; }
  bool complete() const { return rank_ == symbols_; }

  BlockData decode() {
    for (std::size_t p = symbols_; p-- > 0;) {
      for (std::size_t q = 0; q < p; ++q) {
        Row& upper = *pivot_rows_[q];
        if (upper.coeffs.get(p)) {
          upper.coeffs.xor_with(pivot_rows_[p]->coeffs);
          xor_bytes(upper.data, pivot_rows_[p]->data);
        }
      }
    }
    BlockData out(symbols_, symbol_bytes_);
    for (std::uint32_t i = 0; i < symbols_; ++i) {
      const Row& row = *pivot_rows_[i];
      std::copy(row.data.begin(), row.data.end(), out.symbol(i));
    }
    return out;
  }

 private:
  struct Row {
    BitVector coeffs;
    AlignedBytes data;
  };
  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  std::uint32_t rank_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t redundant_ = 0;
  std::vector<std::optional<Row>> pivot_rows_;
};

/// Builds a chaotic stream: systematic prefix mixed with coded repair
/// symbols, random duplicates, then a full shuffle.
std::vector<net::EncodedSymbol> chaotic_stream(std::uint64_t seed,
                                               std::uint32_t k,
                                               std::size_t symbol_bytes,
                                               bool systematic) {
  Rng rng(seed * 131 + 17);
  RandomLinearEncoder encoder(seed,
                              make_deterministic_block(seed, k, symbol_bytes),
                              rng.fork(), systematic);
  std::vector<net::EncodedSymbol> pool;
  for (std::uint32_t i = 0; i < 2 * k + 8; ++i) {
    pool.push_back(encoder.next_symbol());
    if (rng.bernoulli(0.3)) pool.push_back(pool.back());  // Duplicate.
  }
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.next_below(i)]);
  }
  return pool;
}

using EquivParam = std::tuple<std::uint64_t /*seed*/, std::uint32_t /*k*/,
                              bool /*systematic*/>;

class LazyEagerEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(LazyEagerEquivalence, IdenticalTrajectoryAndDecode) {
  const auto [seed, k, systematic] = GetParam();
  const std::size_t symbol_bytes = 24;
  const std::vector<net::EncodedSymbol> stream =
      chaotic_stream(seed, k, symbol_bytes, systematic);

  BlockDecoder lazy(k, symbol_bytes, /*track_data=*/true);
  EagerDecoder eager(k, symbol_bytes);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const bool a = lazy.add_symbol(stream[i]);
    const bool b = eager.add_symbol(stream[i]);
    ASSERT_EQ(a, b) << "symbol " << i;
    ASSERT_EQ(lazy.rank(), eager.rank()) << "symbol " << i;
    ASSERT_EQ(lazy.redundant_count(), eager.redundant_count())
        << "symbol " << i;
  }
  ASSERT_EQ(lazy.complete(), eager.complete());
  // 2k+8 generated symbols: every seed in the suite reaches full rank.
  ASSERT_TRUE(lazy.complete());
  EXPECT_EQ(lazy.decode().bytes(), eager.decode().bytes());
  EXPECT_EQ(lazy.decode().bytes(),
            make_deterministic_block(seed, k, symbol_bytes).bytes());
}

TEST_P(LazyEagerEquivalence, RankOnlyModeTouchesZeroPayloadBytes) {
  const auto [seed, k, systematic] = GetParam();
  const std::vector<net::EncodedSymbol> stream =
      chaotic_stream(seed, k, 24, systematic);
  BlockDecoder rank_only(k, 24, /*track_data=*/false);
  BlockDecoder tracked(k, 24, /*track_data=*/true);
  for (const auto& symbol : stream) {
    rank_only.add_symbol(symbol);
    tracked.add_symbol(symbol);
    ASSERT_EQ(rank_only.rank(), tracked.rank());
  }
  // Lazy elimination never touches payload bytes online; rank-only mode
  // never touches them at all.
  EXPECT_EQ(rank_only.payload_bytes_xored(), 0u);
  EXPECT_EQ(tracked.payload_bytes_xored(), 0u);
  ASSERT_TRUE(tracked.complete());
  tracked.decode();
  EXPECT_GT(tracked.payload_bytes_xored(), 0u);
  EXPECT_EQ(tracked.rows_composed(), k);
  EXPECT_EQ(rank_only.payload_bytes_xored(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, LazyEagerEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u),
                       ::testing::Values(4u, 16u, 24u, 64u, 128u),
                       ::testing::Bool()));

TEST(LazyDecoder, CodingMetricsCountersMirrorAccessors) {
  obs::MetricsRegistry registry;
  CodingMetrics metrics;
  metrics.payload_bytes_xored =
      registry.counter("fountain.payload_bytes_xored");
  metrics.coeff_word_xors = registry.counter("fountain.coeff_word_xors");
  metrics.rows_composed = registry.counter("fountain.rows_composed");

  const std::uint32_t k = 32;
  Rng rng(5);
  RandomLinearEncoder encoder(1, make_deterministic_block(1, k, 16),
                              rng.fork());
  BlockDecoder decoder(k, 16, /*track_data=*/true, /*pool=*/nullptr,
                       &metrics);
  while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
  decoder.decode();

  EXPECT_EQ(registry.counter_value("fountain.payload_bytes_xored"),
            decoder.payload_bytes_xored());
  EXPECT_EQ(registry.counter_value("fountain.coeff_word_xors"),
            decoder.coeff_word_xors());
  EXPECT_EQ(registry.counter_value("fountain.rows_composed"), k);
  EXPECT_GT(decoder.coeff_word_xors(), 0u);
}

}  // namespace
}  // namespace fmtcp::fountain
