// Inactivation-vs-plain equivalence: decode() may solve a block either by
// plain blocked elimination or by inactivation (sparse rows substitute
// symbolically, only the dense core pays dense elimination). Both compute
// the unique GF(2) solution, so for any stream the decoded bytes must be
// byte-identical under either strategy, under kAuto, and under any
// dispatched XOR kernel. This suite forces each strategy on identical
// streams — systematic/coded mixes are the inactivation sweet spot
// (weight-1 pivot rows plus a few dense repair rows) — and cross-checks
// everything against the known source block.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/gf2_kernels.h"
#include "fountain/random_linear.h"

namespace fmtcp::fountain {
namespace {

/// Mixed stream: a partial systematic prefix (sparse rows) topped up with
/// dense coded repair symbols, shuffled, with duplicates sprinkled in.
/// `coded_fraction` steers the dense-core size the classifier sees.
std::vector<net::EncodedSymbol> mixed_stream(std::uint64_t seed,
                                             std::uint32_t k,
                                             std::size_t symbol_bytes,
                                             double coded_fraction) {
  Rng rng(seed * 977 + 5);
  RandomLinearEncoder systematic(
      seed, make_deterministic_block(seed, k, symbol_bytes), rng.fork(),
      /*systematic=*/true);
  RandomLinearEncoder coded(seed,
                            make_deterministic_block(seed, k, symbol_bytes),
                            rng.fork(), /*systematic=*/false);
  std::vector<net::EncodedSymbol> pool;
  for (std::uint32_t i = 0; i < k; ++i) {
    // Drop a fraction of the systematic pass, as loss would.
    auto symbol = systematic.next_symbol();
    if (!rng.bernoulli(coded_fraction)) pool.push_back(std::move(symbol));
  }
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(k * coded_fraction) +
                                    k / 4 + 8;
       ++i) {
    pool.push_back(coded.next_symbol());
    if (rng.bernoulli(0.15)) pool.push_back(pool.back());  // Duplicate.
  }
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.next_below(i)]);
  }
  return pool;
}

using Param = std::tuple<std::uint64_t /*seed*/, std::uint32_t /*k*/,
                         double /*coded_fraction*/>;

class InactivationEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(InactivationEquivalence, StrategiesDecodeIdenticalBytes) {
  const auto [seed, k, coded_fraction] = GetParam();
  const std::size_t symbol_bytes = 24;
  const std::vector<net::EncodedSymbol> stream =
      mixed_stream(seed, k, symbol_bytes, coded_fraction);
  const BlockData expected = make_deterministic_block(seed, k, symbol_bytes);

  BlockDecoder plain(k, symbol_bytes, /*track_data=*/true);
  BlockDecoder inact(k, symbol_bytes, /*track_data=*/true);
  BlockDecoder auto_pick(k, symbol_bytes, /*track_data=*/true);
  plain.set_decode_strategy(BlockDecoder::DecodeStrategy::kPlainElimination);
  inact.set_decode_strategy(BlockDecoder::DecodeStrategy::kInactivation);

  for (std::size_t i = 0; i < stream.size(); ++i) {
    // The strategy choice affects decode() only: the online rank
    // trajectory must be identical.
    const bool a = plain.add_symbol(stream[i]);
    const bool b = inact.add_symbol(stream[i]);
    const bool c = auto_pick.add_symbol(stream[i]);
    ASSERT_EQ(a, b) << "symbol " << i;
    ASSERT_EQ(a, c) << "symbol " << i;
    ASSERT_EQ(plain.rank(), inact.rank()) << "symbol " << i;
  }
  ASSERT_TRUE(plain.complete());
  ASSERT_TRUE(inact.complete());

  DecodeScratch scratch;  // Shared: decode() must leave no stale state.
  const BlockData& plain_out = plain.decode(scratch);
  const BlockData& inact_out = inact.decode(scratch);
  const BlockData& auto_out = auto_pick.decode(scratch);
  EXPECT_EQ(plain_out.bytes(), expected.bytes());
  EXPECT_EQ(inact_out.bytes(), expected.bytes());
  EXPECT_EQ(auto_out.bytes(), expected.bytes());
}

TEST_P(InactivationEquivalence, StrategiesAgreeUnderEveryKernel) {
  const auto [seed, k, coded_fraction] = GetParam();
  if (k > 128) GTEST_SKIP() << "per-kernel sweep kept small";
  const std::size_t symbol_bytes = 24;
  const std::vector<net::EncodedSymbol> stream =
      mixed_stream(seed, k, symbol_bytes, coded_fraction);
  const BlockData expected = make_deterministic_block(seed, k, symbol_bytes);

  const std::string saved = gf2_kernel().name;
  for (const Gf2KernelOps* ops : gf2_available_kernels()) {
    ASSERT_TRUE(gf2_set_kernel(ops->name));
    for (const auto strategy :
         {BlockDecoder::DecodeStrategy::kPlainElimination,
          BlockDecoder::DecodeStrategy::kInactivation}) {
      BlockDecoder decoder(k, symbol_bytes, /*track_data=*/true);
      decoder.set_decode_strategy(strategy);
      for (const auto& symbol : stream) decoder.add_symbol(symbol);
      ASSERT_TRUE(decoder.complete()) << ops->name;
      EXPECT_EQ(decoder.decode().bytes(), expected.bytes()) << ops->name;
    }
  }
  ASSERT_TRUE(gf2_set_kernel(saved.c_str()));
}

INSTANTIATE_TEST_SUITE_P(
    Streams, InactivationEquivalence,
    ::testing::Combine(::testing::Values(1u, 4u, 9u, 16u),
                       ::testing::Values(32u, 65u, 128u, 256u),
                       ::testing::Values(0.1, 0.45, 1.0)));

TEST(InactivationEquivalence, PureDenseStreamForcedInactivationStillExact) {
  // Worst case for inactivation: every row dense, the core is nearly the
  // whole block. Forcing the strategy must still be exact (it just loses
  // its advantage).
  const std::uint32_t k = 96;
  Rng rng(8);
  RandomLinearEncoder encoder(3, make_deterministic_block(3, k, 40),
                              rng.fork(), /*systematic=*/false);
  BlockDecoder decoder(k, 40, /*track_data=*/true);
  decoder.set_decode_strategy(BlockDecoder::DecodeStrategy::kInactivation);
  while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
  EXPECT_EQ(decoder.decode().bytes(),
            make_deterministic_block(3, k, 40).bytes());
}

}  // namespace
}  // namespace fmtcp::fountain
