// Property sweeps over the fountain codec: any (k, symbol size, seed)
// combination must round-trip, and measured redundancy must match the
// analytic expectation.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/coding_analysis.h"
#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/lt_codec.h"
#include "fountain/random_linear.h"

namespace fmtcp::fountain {
namespace {

using CodecParam = std::tuple<std::uint32_t /*k*/, std::size_t /*bytes*/,
                              std::uint64_t /*seed*/>;

class CodecRoundTrip : public ::testing::TestWithParam<CodecParam> {};

TEST_P(CodecRoundTrip, DecodesToOriginal) {
  const auto [k, symbol_bytes, seed] = GetParam();
  const BlockData original = make_deterministic_block(seed, k, symbol_bytes);
  RandomLinearEncoder encoder(seed, original, Rng(seed * 31 + 7));
  BlockDecoder decoder(k, symbol_bytes, /*track_data=*/true);
  int guard = 0;
  while (!decoder.complete()) {
    decoder.add_symbol(encoder.next_symbol());
    ASSERT_LT(++guard, static_cast<int>(10 * k + 100));
  }
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
  EXPECT_EQ(decoder.rank(), k);
}

TEST_P(CodecRoundTrip, RankOnlyModeTracksSameRank) {
  const auto [k, symbol_bytes, seed] = GetParam();
  RandomLinearEncoder data_encoder(
      seed, make_deterministic_block(seed, k, symbol_bytes),
      Rng(seed * 31 + 7));
  RandomLinearEncoder rank_encoder(seed, k, symbol_bytes,
                                   Rng(seed * 31 + 7));
  BlockDecoder data_decoder(k, symbol_bytes, true);
  BlockDecoder rank_decoder(k, symbol_bytes, false);
  for (std::uint32_t i = 0; i < 2 * k + 8; ++i) {
    const bool a = data_decoder.add_symbol(data_encoder.next_symbol());
    const bool b = rank_decoder.add_symbol(rank_encoder.next_symbol());
    ASSERT_EQ(a, b) << "symbol " << i;
    ASSERT_EQ(data_decoder.rank(), rank_decoder.rank());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 8u, 16u, 64u, 128u),
                       ::testing::Values(1u, 16u, 160u),
                       ::testing::Values(1u, 99u)));

class RedundancySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RedundancySweep, MeasuredOverheadMatchesAnalysis) {
  const std::uint32_t k = GetParam();
  Rng rng(k * 1000 + 5);
  double total = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    RandomLinearEncoder encoder(t, k, 1, rng.fork());
    BlockDecoder decoder(k, 1, false);
    while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
    total += static_cast<double>(decoder.received_count());
  }
  const double expected = analysis::expected_symbols_to_decode(k);
  EXPECT_NEAR(total / trials, expected, 0.4) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, RedundancySweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u));

class FailureModelSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FailureModelSweep, EquationTwoBoundsEmpiricalFailure) {
  // Receive exactly k̂ + extra random symbols; failure to reach full rank
  // must happen at most ~2^-extra of the time (Eq. 2 is an upper bound).
  const std::uint32_t extra = GetParam();
  const std::uint32_t k = 16;
  Rng rng(extra * 77 + 3);
  int failures = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    RandomLinearEncoder encoder(t, k, 1, rng.fork());
    BlockDecoder decoder(k, 1, false);
    for (std::uint32_t i = 0; i < k + extra; ++i) {
      decoder.add_symbol(encoder.next_symbol());
    }
    if (!decoder.complete()) ++failures;
  }
  const double empirical = static_cast<double>(failures) / trials;
  const double bound = decode_failure_probability(
      k, static_cast<double>(k + extra));
  EXPECT_LE(empirical, bound + 0.02) << "extra=" << extra;
}

INSTANTIATE_TEST_SUITE_P(Extras, FailureModelSweep,
                         ::testing::Values(0u, 1u, 2u, 4u, 6u));

using LtParam = std::tuple<std::uint32_t, std::uint64_t>;

class LtRoundTrip : public ::testing::TestWithParam<LtParam> {};

TEST_P(LtRoundTrip, DecodesToOriginal) {
  const auto [k, seed] = GetParam();
  const RobustSoliton dist(k, 0.1, 0.05);
  const BlockData original = make_deterministic_block(seed, k, 8);
  LtEncoder encoder(seed, original, dist, Rng(seed + 1));
  LtDecoder decoder(k, 8, dist);
  int guard = 0;
  while (!decoder.complete()) {
    decoder.add_symbol(encoder.next_symbol());
    ASSERT_LT(++guard, static_cast<int>(30 * k + 300));
  }
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LtRoundTrip,
    ::testing::Combine(::testing::Values(4u, 16u, 64u, 256u),
                       ::testing::Values(3u, 11u)));

}  // namespace
}  // namespace fmtcp::fountain
