// Adversarial decoder properties: arbitrary reordering, duplication, and
// mixed systematic/repair arrivals must never corrupt a decode or break
// the rank invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/random_linear.h"

namespace fmtcp::fountain {
namespace {

class DecoderChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderChaos, ShuffledAndDuplicatedSymbolsStillDecode) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::uint32_t k = 24;
  const BlockData original = make_deterministic_block(seed, k, 12);
  RandomLinearEncoder encoder(seed, original, rng.fork());

  // Generate a pool with duplicates, then shuffle it.
  std::vector<net::EncodedSymbol> pool;
  for (std::uint32_t i = 0; i < k + 8; ++i) {
    pool.push_back(encoder.next_symbol());
    if (rng.bernoulli(0.4)) pool.push_back(pool.back());  // Duplicate.
  }
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.next_below(i)]);
  }

  BlockDecoder decoder(k, 12, /*track_data=*/true);
  std::uint32_t last_rank = 0;
  for (const auto& symbol : pool) {
    decoder.add_symbol(symbol);
    EXPECT_GE(decoder.rank(), last_rank);
    last_rank = decoder.rank();
  }
  // 8 extra symbols: failure probability ~2^-8 per seed; the fixed seeds
  // below are known-good.
  ASSERT_TRUE(decoder.complete());
  EXPECT_EQ(decoder.decode().bytes(), original.bytes());
}

TEST_P(DecoderChaos, SystematicAndRepairInterleaved) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 7 + 1);
  const std::uint32_t k = 16;
  const BlockData original = make_deterministic_block(seed, k, 8);
  RandomLinearEncoder encoder(seed, original, rng.fork(),
                              /*systematic=*/true);

  std::vector<net::EncodedSymbol> pool;
  for (std::uint32_t i = 0; i < 2 * k; ++i) {
    pool.push_back(encoder.next_symbol());
  }
  // Drop a random third, shuffle the rest.
  std::vector<net::EncodedSymbol> survivors;
  for (const auto& symbol : pool) {
    if (!rng.bernoulli(1.0 / 3.0)) survivors.push_back(symbol);
  }
  for (std::size_t i = survivors.size(); i > 1; --i) {
    std::swap(survivors[i - 1], survivors[rng.next_below(i)]);
  }

  BlockDecoder decoder(k, 8, true);
  for (const auto& symbol : survivors) {
    if (decoder.complete()) break;
    decoder.add_symbol(symbol);
  }
  if (decoder.complete()) {
    EXPECT_EQ(decoder.decode().bytes(), original.bytes());
  } else {
    // Not enough survivors this seed: more repair symbols must finish it.
    while (!decoder.complete()) decoder.add_symbol(encoder.next_symbol());
    EXPECT_EQ(decoder.decode().bytes(), original.bytes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderChaos,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(DecoderRobustness, RankNeverExceedsReceivedMinusRedundant) {
  Rng rng(99);
  const std::uint32_t k = 32;
  RandomLinearEncoder encoder(1, k, 4, rng.fork());
  BlockDecoder decoder(k, 4, false);
  for (int i = 0; i < 200; ++i) {
    decoder.add_symbol(encoder.next_symbol());
    EXPECT_EQ(decoder.rank() + decoder.redundant_count(),
              decoder.received_count());
  }
}

TEST(DecoderRobustness, MixedBlocksNeverCrossContaminate) {
  // Two decoders fed from interleaved encoders stay independent.
  Rng rng(7);
  const std::uint32_t k = 16;
  const BlockData block_a = make_deterministic_block(100, k, 8);
  const BlockData block_b = make_deterministic_block(200, k, 8);
  RandomLinearEncoder enc_a(100, block_a, rng.fork());
  RandomLinearEncoder enc_b(200, block_b, rng.fork());
  BlockDecoder dec_a(k, 8, true);
  BlockDecoder dec_b(k, 8, true);
  while (!dec_a.complete() || !dec_b.complete()) {
    if (!dec_a.complete()) dec_a.add_symbol(enc_a.next_symbol());
    if (!dec_b.complete()) dec_b.add_symbol(enc_b.next_symbol());
  }
  EXPECT_EQ(dec_a.decode().bytes(), block_a.bytes());
  EXPECT_EQ(dec_b.decode().bytes(), block_b.bytes());
}

}  // namespace
}  // namespace fmtcp::fountain
