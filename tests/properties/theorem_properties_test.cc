// Checks of the paper's §IV-C theorems against the implementation and
// across randomly drawn parameters.
#include <gtest/gtest.h>

#include "analysis/allocation_analysis.h"
#include "common/rng.h"
#include "core/allocator.h"
#include "core/eat.h"

namespace fmtcp {
namespace {

// --- Theorem 1: EDT_i < EDT_j with window space on i => EAT_i < EAT_j,
// so a symbol needing resending is never appended to the worse flow. ---

TEST(Theorem1, MinEatFlowHasWindowSpaceAndLowerEdt) {
  core::SubflowSnapshot fast;
  fast.id = 0;
  fast.window_space = 4;
  fast.edt = from_ms(80);
  fast.rt = from_ms(160);

  core::SubflowSnapshot slow;
  slow.id = 1;
  slow.window_space = 4;
  slow.edt = from_ms(300);
  slow.rt = from_ms(600);

  // With window space, EAT == EDT on both; the fast flow wins.
  EXPECT_LT(core::expected_arrival_time(fast, 0),
            core::expected_arrival_time(slow, 0));
}

TEST(Theorem1, RandomizedEatOrdering) {
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    core::SubflowSnapshot a;
    a.window_space = 1 + rng.next_below(8);
    a.edt = from_ms(static_cast<std::int64_t>(rng.uniform_int(10, 200)));
    a.rt = 2 * a.edt;
    core::SubflowSnapshot b = a;
    b.edt = a.edt + from_ms(static_cast<std::int64_t>(
                        rng.uniform_int(1, 300)));
    b.rt = 2 * b.edt;
    // Theorem 1's premise: i has window space => EAT_i = EDT_i < EDT_j
    // <= EAT_j.
    EXPECT_LT(core::expected_arrival_time(a, 0),
              core::expected_arrival_time(b, 0));
  }
}

// --- Theorem 2: EDT_i < EDT_j => SEDT_i < SEDT_j (with r ≈ R). The
// closed forms let us check the ordering across random paths. ---

TEST(Theorem2, SedtOrderFollowsEdtOrder) {
  Rng rng(7);
  int checked = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const double r1 = rng.uniform(0.02, 0.5);
    const double p1 = rng.uniform(0.0, 0.4);
    const double r2 = rng.uniform(0.02, 0.5);
    const double p2 = rng.uniform(0.0, 0.4);
    const double edt1 = analysis::edt_single(r1, p1);
    const double edt2 = analysis::edt_single(r2, p2);
    if (edt1 >= edt2) continue;
    ++checked;
    EXPECT_LT(analysis::sedt(r1, r1, p1), analysis::sedt(r2, r2, p2))
        << "r1=" << r1 << " p1=" << p1 << " r2=" << r2 << " p2=" << p2;
  }
  EXPECT_GT(checked, 500);
}

// --- Theorem 3 / Lemma 1 consistency. ---

TEST(Theorem3, BoundExceedsOneAndScalesWithM) {
  Rng rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    const double p1 = rng.uniform(0.0, 0.3);
    const double p2 = rng.uniform(0.01, 0.4);
    const double m = rng.uniform(1.0, 20.0);
    const double bound = analysis::theorem3_ratio_bound(p1, p2, m);
    EXPECT_GT(bound, 0.0);
    // Bound grows linearly in m with slope (1 - p2) < 1: for large m it
    // must fall below the MPTCP ratio m.
    const double larger = analysis::theorem3_ratio_bound(p1, p2, m + 1.0);
    EXPECT_NEAR(larger - bound, 1.0 - p2, 1e-9);
  }
}

TEST(Theorem3, AdvantageThresholdSeparatesRegimes) {
  Rng rng(11);
  for (int trial = 0; trial < 500; ++trial) {
    const double p1 = rng.uniform(0.0, 0.3);
    const double p2 = rng.uniform(0.02, 0.4);
    const double threshold = analysis::fmtcp_advantage_threshold(p1, p2);
    EXPECT_LT(analysis::theorem3_ratio_bound(p1, p2, threshold * 1.01),
              threshold * 1.01);
    EXPECT_GT(analysis::theorem3_ratio_bound(p1, p2, threshold * 0.99),
              threshold * 0.99);
  }
}

TEST(Lemma1, ThresholdGrowsWithPathOneQualityGap) {
  // The minimum r2 for "lost symbols only append on path 1" always
  // exceeds r1 and grows as p1 rises (path 1 must be clearly better).
  Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    const double r1 = rng.uniform(0.02, 0.3);
    const double p2 = rng.uniform(0.0, 0.4);
    const double lo = analysis::lemma1_min_r2(r1, 0.0, p2);
    const double hi = analysis::lemma1_min_r2(r1, 0.3, p2);
    EXPECT_GT(lo, r1);
    EXPECT_GT(hi, lo);
  }
}

}  // namespace
}  // namespace fmtcp
