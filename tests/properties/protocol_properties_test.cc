// Protocol-level property sweeps: for every (loss, delay) combination the
// transport invariants must hold — reliable, in-order, verified delivery.
#include <gtest/gtest.h>

#include <tuple>

#include "core/connection.h"
#include "mptcp/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace fmtcp {
namespace {

using PathParam = std::tuple<double /*loss2*/, double /*delay2_ms*/,
                             std::uint64_t /*seed*/>;

net::PathConfig make_path(double delay_ms, double loss) {
  net::PathConfig config;
  config.one_way_delay = from_seconds(delay_ms / 1e3);
  config.loss_rate = loss;
  config.bandwidth_Bps = 0.625e6;
  config.queue_packets = 100;
  return config;
}

class FmtcpPathSweep : public ::testing::TestWithParam<PathParam> {};

TEST_P(FmtcpPathSweep, DeliversAllBlocksInOrderVerified) {
  const auto [loss2, delay2, seed] = GetParam();
  sim::Simulator sim(seed);
  net::Topology topology(
      sim, {make_path(100.0, 0.0), make_path(delay2, loss2)});

  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 16;
  config.params.symbol_bytes = 64;
  config.params.total_blocks = 30;
  config.params.carry_payload = true;
  config.subflow.mss_payload = 8 * config.params.symbol_wire_bytes();
  config.subflow.rtt.max_rto = 4 * kSecond;

  core::FmtcpConnection connection(sim, topology, config);
  connection.start();
  sim.run_until(180 * kSecond);

  EXPECT_EQ(connection.receiver().blocks_delivered(), 30u);
  EXPECT_EQ(connection.receiver().deliver_next(), 30u);
  EXPECT_TRUE(connection.receiver().payload_verified());
  EXPECT_EQ(connection.sender().blocks().blocks_completed(), 30u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FmtcpPathSweep,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.15, 0.30),
                       ::testing::Values(25.0, 100.0, 150.0),
                       ::testing::Values(1u, 2u)));

class MptcpPathSweep : public ::testing::TestWithParam<PathParam> {};

TEST_P(MptcpPathSweep, DeliversExactInOrderBytes) {
  const auto [loss2, delay2, seed] = GetParam();
  sim::Simulator sim(seed);
  net::Topology topology(
      sim, {make_path(100.0, 0.0), make_path(delay2, loss2)});

  mptcp::MptcpConnectionConfig config;
  config.sender.segment_bytes = 1000;
  config.sender.total_bytes = 50000;
  config.receive_buffer_bytes = 64 * 1024;
  config.subflow.rtt.max_rto = 4 * kSecond;

  mptcp::MptcpConnection connection(sim, topology, config);
  connection.start();
  sim.run_until(180 * kSecond);

  EXPECT_EQ(connection.receiver().delivered_bytes(), 50000u);
  EXPECT_EQ(connection.receiver().rcv_data_next(), 50000u);
  EXPECT_EQ(connection.sender().data_acked(), 50000u);
  EXPECT_LE(connection.receiver().max_out_of_order_bytes(), 64u * 1024u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MptcpPathSweep,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.15, 0.30),
                       ::testing::Values(25.0, 100.0, 150.0),
                       ::testing::Values(1u, 2u)));

/// Both paths lossy — no clean path to hide behind.
class FmtcpBothLossySweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(FmtcpBothLossySweep, StillReliable) {
  const auto [loss, seed] = GetParam();
  sim::Simulator sim(seed);
  net::Topology topology(
      sim, {make_path(100.0, loss), make_path(100.0, loss)});

  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 16;
  config.params.symbol_bytes = 64;
  config.params.total_blocks = 20;
  config.subflow.mss_payload = 8 * config.params.symbol_wire_bytes();
  config.subflow.rtt.max_rto = 4 * kSecond;

  core::FmtcpConnection connection(sim, topology, config);
  connection.start();
  sim.run_until(240 * kSecond);

  EXPECT_EQ(connection.receiver().blocks_delivered(), 20u);
  EXPECT_TRUE(connection.receiver().payload_verified());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FmtcpBothLossySweep,
    ::testing::Combine(::testing::Values(0.05, 0.20), ::testing::Values(3u)));

/// The paper evaluates two paths, but nothing in FMTCP is two-path
/// specific: the connection must work unchanged over N disjoint paths.
class FmtcpManyPathsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FmtcpManyPathsSweep, DeliversOverNPaths) {
  const std::size_t paths = GetParam();
  sim::Simulator sim(17);
  std::vector<net::PathConfig> configs;
  for (std::size_t i = 0; i < paths; ++i) {
    configs.push_back(
        make_path(50.0 + 30.0 * static_cast<double>(i),
                  0.04 * static_cast<double>(i)));
  }
  net::Topology topology(sim, configs);

  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 16;
  config.params.symbol_bytes = 64;
  config.params.total_blocks = 40;
  config.subflow.mss_payload = 8 * config.params.symbol_wire_bytes();
  config.subflow.rtt.max_rto = 4 * kSecond;

  core::FmtcpConnection connection(sim, topology, config);
  connection.start();
  sim.run_until(120 * kSecond);

  EXPECT_EQ(connection.receiver().blocks_delivered(), 40u);
  EXPECT_TRUE(connection.receiver().payload_verified());
  // Every subflow carried something.
  for (std::size_t i = 0; i < paths; ++i) {
    EXPECT_GT(connection.subflow(i).segments_sent(), 0u) << "subflow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, FmtcpManyPathsSweep,
                         ::testing::Values(1u, 3u, 4u));

TEST(FmtcpBurstyLoss, SurvivesGilbertElliottChannel) {
  sim::Simulator sim(23);
  net::Topology topology(sim, {make_path(100.0, 0.0), make_path(100.0, 0.0)});
  net::GilbertElliottLoss::Config ge;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.2;
  ge.loss_bad = 0.6;
  topology.path(1).set_forward_loss(
      std::make_unique<net::GilbertElliottLoss>(ge));

  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 16;
  config.params.symbol_bytes = 64;
  config.params.total_blocks = 30;
  config.subflow.mss_payload = 8 * config.params.symbol_wire_bytes();
  config.subflow.rtt.max_rto = 4 * kSecond;

  core::FmtcpConnection connection(sim, topology, config);
  connection.start();
  sim.run_until(180 * kSecond);
  EXPECT_EQ(connection.receiver().blocks_delivered(), 30u);
  EXPECT_TRUE(connection.receiver().payload_verified());
}

/// ACK-path (reverse) loss: cumulative ACKs make individual ACK losses
/// harmless; both protocols must stay fully reliable.
class AckLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(AckLossSweep, FmtcpReliableUnderAckLoss) {
  const double ack_loss = GetParam();
  sim::Simulator sim(31);
  net::PathConfig path1 = make_path(100.0, 0.0);
  path1.ack_loss_rate = ack_loss;
  net::PathConfig path2 = make_path(100.0, 0.05);
  path2.ack_loss_rate = ack_loss;
  net::Topology topology(sim, {path1, path2});

  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 16;
  config.params.symbol_bytes = 64;
  config.params.total_blocks = 25;
  config.subflow.mss_payload = 8 * config.params.symbol_wire_bytes();
  config.subflow.rtt.max_rto = 4 * kSecond;
  core::FmtcpConnection connection(sim, topology, config);
  connection.start();
  sim.run_until(180 * kSecond);
  EXPECT_EQ(connection.receiver().blocks_delivered(), 25u);
  EXPECT_TRUE(connection.receiver().payload_verified());
}

TEST_P(AckLossSweep, MptcpReliableUnderAckLoss) {
  const double ack_loss = GetParam();
  sim::Simulator sim(37);
  net::PathConfig path1 = make_path(100.0, 0.0);
  path1.ack_loss_rate = ack_loss;
  net::PathConfig path2 = make_path(100.0, 0.05);
  path2.ack_loss_rate = ack_loss;
  net::Topology topology(sim, {path1, path2});

  mptcp::MptcpConnectionConfig config;
  config.sender.segment_bytes = 1000;
  config.sender.total_bytes = 40000;
  config.subflow.rtt.max_rto = 4 * kSecond;
  mptcp::MptcpConnection connection(sim, topology, config);
  connection.start();
  sim.run_until(180 * kSecond);
  EXPECT_EQ(connection.receiver().delivered_bytes(), 40000u);
}

INSTANTIATE_TEST_SUITE_P(Rates, AckLossSweep,
                         ::testing::Values(0.05, 0.20));

TEST(MptcpBurstyLoss, SurvivesGilbertElliottChannel) {
  sim::Simulator sim(29);
  net::Topology topology(sim, {make_path(100.0, 0.0), make_path(100.0, 0.0)});
  net::GilbertElliottLoss::Config ge;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.2;
  ge.loss_bad = 0.6;
  topology.path(1).set_forward_loss(
      std::make_unique<net::GilbertElliottLoss>(ge));

  mptcp::MptcpConnectionConfig config;
  config.sender.segment_bytes = 1000;
  config.sender.total_bytes = 50000;
  config.subflow.rtt.max_rto = 4 * kSecond;

  mptcp::MptcpConnection connection(sim, topology, config);
  connection.start();
  sim.run_until(180 * kSecond);
  EXPECT_EQ(connection.receiver().delivered_bytes(), 50000u);
}

}  // namespace
}  // namespace fmtcp
