#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace fmtcp::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim(1);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, ForkRngDeterministicPerSeed) {
  Simulator a(42);
  Simulator b(42);
  Rng ra = a.fork_rng();
  Rng rb = b.fork_rng();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ra.next_u64(), rb.next_u64());
}

TEST(Simulator, PacketUidStreamIsPerSimulator) {
  // Each run draws 1, 2, 3, ... from its own counter, so a cell's uids
  // do not depend on what other simulations are doing.
  Simulator a(1);
  Simulator b(2);
  EXPECT_EQ(a.next_packet_uid(), 1u);
  EXPECT_EQ(a.next_packet_uid(), 2u);
  EXPECT_EQ(b.next_packet_uid(), 1u);
  EXPECT_EQ(a.next_packet_uid(), 3u);
  EXPECT_EQ(b.next_packet_uid(), 2u);
}

TEST(Simulator, PacketUidsDoNotInterleaveAcrossThreads) {
  // Regression for the parallel sweep: simulators running concurrently
  // must each see the exact sequence a serial run would have seen.
  constexpr int kSims = 4;
  constexpr std::uint64_t kDraws = 5000;
  std::vector<std::vector<std::uint64_t>> streams(kSims);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSims; ++s) {
    threads.emplace_back([&streams, s] {
      Simulator sim(static_cast<std::uint64_t>(s) + 1);
      streams[s].reserve(kDraws);
      for (std::uint64_t i = 0; i < kDraws; ++i) {
        streams[s].push_back(sim.next_packet_uid());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const auto& stream : streams) {
    ASSERT_EQ(stream.size(), kDraws);
    for (std::uint64_t i = 0; i < kDraws; ++i) {
      ASSERT_EQ(stream[i], i + 1);  // 1, 2, 3, ... with no gaps.
    }
  }
}

TEST(Simulator, ForkRngStreamsAreDistinct) {
  Simulator sim(42);
  Rng first = sim.fork_rng();
  Rng second = sim.fork_rng();
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (first.next_u64() != second.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Simulator, DifferentSeedsDifferentStreams) {
  Simulator a(1);
  Simulator b(2);
  EXPECT_NE(a.fork_rng().next_u64(), b.fork_rng().next_u64());
}

TEST(Simulator, ScheduleAndRunUntil) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule_in(from_ms(10), [&] { ++fired; });
  sim.schedule_at(from_ms(30), [&] { ++fired; });
  sim.run_until(from_ms(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), from_ms(20));
  sim.run_until(from_ms(40));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepDelegatesToScheduler) {
  Simulator sim(1);
  EXPECT_FALSE(sim.step());
  sim.schedule_in(5, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(sim.scheduler().executed_count(), 1u);
}

}  // namespace
}  // namespace fmtcp::sim
