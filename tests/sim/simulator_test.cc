#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace fmtcp::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim(1);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Simulator, ForkRngDeterministicPerSeed) {
  Simulator a(42);
  Simulator b(42);
  Rng ra = a.fork_rng();
  Rng rb = b.fork_rng();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ra.next_u64(), rb.next_u64());
}

TEST(Simulator, ForkRngStreamsAreDistinct) {
  Simulator sim(42);
  Rng first = sim.fork_rng();
  Rng second = sim.fork_rng();
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (first.next_u64() != second.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Simulator, DifferentSeedsDifferentStreams) {
  Simulator a(1);
  Simulator b(2);
  EXPECT_NE(a.fork_rng().next_u64(), b.fork_rng().next_u64());
}

TEST(Simulator, ScheduleAndRunUntil) {
  Simulator sim(1);
  int fired = 0;
  sim.schedule_in(from_ms(10), [&] { ++fired; });
  sim.schedule_at(from_ms(30), [&] { ++fired; });
  sim.run_until(from_ms(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), from_ms(20));
  sim.run_until(from_ms(40));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepDelegatesToScheduler) {
  Simulator sim(1);
  EXPECT_FALSE(sim.step());
  sim.schedule_in(5, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(sim.scheduler().executed_count(), 1u);
}

}  // namespace
}  // namespace fmtcp::sim
