#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace fmtcp::sim {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, FifoTieBreak) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(10, [&] { order.push_back(2); });
  s.schedule_at(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(42, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(s.now(), 42);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run();
  SimTime seen = -1;
  s.schedule_in(50, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(Scheduler, CancelSkipsEvent) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.schedule_at(10, [&] { ran = true; });
  h.cancel();
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed_count(), 0u);
}

TEST(Scheduler, PendingReflectsState) {
  Scheduler s;
  EventHandle h = s.schedule_at(10, [] {});
  EXPECT_TRUE(h.pending());
  s.run();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, CancelledNotPending) {
  Scheduler s;
  EventHandle h = s.schedule_at(10, [] {});
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, DefaultHandleSafe) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // No crash.
}

TEST(Scheduler, RunUntilExecutesBoundaryInclusive) {
  Scheduler s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(21, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.queued_count(), 1u);
}

TEST(Scheduler, RunUntilAdvancesClockWithoutEvents) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  std::vector<SimTime> times;
  s.schedule_at(10, [&] {
    times.push_back(s.now());
    s.schedule_in(5, [&] { times.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ZeroDelayEventRunsAtSameTime) {
  Scheduler s;
  s.schedule_at(10, [] {});
  s.run();
  SimTime seen = -1;
  s.schedule_in(0, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 10);
}

TEST(Scheduler, ExecutedCountExcludesCancelled) {
  Scheduler s;
  s.schedule_at(1, [] {});
  EventHandle h = s.schedule_at(2, [] {});
  s.schedule_at(3, [] {});
  h.cancel();
  s.run();
  EXPECT_EQ(s.executed_count(), 2u);
}

TEST(Scheduler, DispatchProfileCountsByTag) {
  Scheduler s;
  s.set_profiling(true);
  s.schedule_at(1, "timer", [] {});
  s.schedule_at(2, "timer", [] {});
  s.schedule_at(3, "link.deliver", [] {});
  s.schedule_at(4, [] {});  // Untagged counts as "event".
  EventHandle h = s.schedule_at(5, "timer", [] {});
  h.cancel();  // Cancelled events never reach the profile.
  s.run();

  std::uint64_t timer = 0, deliver = 0, untagged = 0;
  for (const auto& [tag, count] : s.dispatch_profile()) {
    if (tag == "timer") timer = count;
    if (tag == "link.deliver") deliver = count;
    if (tag == "event") untagged = count;
  }
  EXPECT_EQ(timer, 2u);
  EXPECT_EQ(deliver, 1u);
  EXPECT_EQ(untagged, 1u);
}

TEST(Scheduler, DiscardedPendingEventCreatesNoHandle) {
  Scheduler s;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(i + 1, [] {});  // PendingEvent discarded.
  }
  EXPECT_EQ(s.handles_created(), 0u);
  s.run();
  EXPECT_EQ(s.executed_count(), 10u);
}

TEST(Scheduler, HandleStatesComeFromFreeList) {
  Scheduler s;
  // Timer-style churn: keep a handle, cancel, let the queue reap the
  // entry. After the first allocation the control block recycles.
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    {
      EventHandle h = s.schedule_at(++t, [] {});
      h.cancel();
    }  // Handle dropped: the queue holds the last reference.
    s.run();  // Reaps the cancelled entry, pooling its state.
  }
  EXPECT_EQ(s.handles_created(), 50u);
  EXPECT_EQ(s.handle_states_reused(), 49u);
}

TEST(Scheduler, CancelRemovesWheelEntryImmediately) {
  Scheduler s;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(s.schedule_at(1000 + i, [] {}));
  }
  EXPECT_EQ(s.queued_count(), 100u);
  for (EventHandle& h : handles) h.cancel();
  // Wheel cancellation is eager: every entry is gone, no tombstones.
  EXPECT_EQ(s.queued_count(), 0u);
  EXPECT_EQ(s.cancelled_removed(), 100u);
  for (EventHandle& h : handles) {
    EXPECT_FALSE(h.pending());
    h.cancel();  // Idempotent even though the entry was removed.
  }
  s.schedule_at(1, [] {});
  s.run();
  EXPECT_EQ(s.executed_count(), 1u);
}

TEST(Scheduler, CancelMiddleOfBucketKeepsOrder) {
  Scheduler s;
  std::vector<int> order;
  // Same timestamp => same level-0 bucket; removing from the middle
  // swap-shuffles the bucket, and the seq sort at dispatch must still
  // restore FIFO order among the survivors.
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) {
    handles.push_back(s.schedule_at(50, [&order, i] { order.push_back(i); }));
  }
  handles[3].cancel();
  handles[1].cancel();
  handles[6].cancel();
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4, 5, 7}));
}

TEST(Scheduler, CancelSameTimestampDuringDispatch) {
  Scheduler s;
  // Cancelling an event in the currently-running batch (it is already
  // in the run queue) must skip it without disturbing the rest.
  std::vector<int> order;
  EventHandle victim;
  s.schedule_at(10, [&] { order.push_back(1); victim.cancel(); });
  victim = s.schedule_at(10, [&] { order.push_back(2); });
  s.schedule_at(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(s.executed_count(), 2u);
}

TEST(Scheduler, FarFutureEventsUseOverflow) {
  Scheduler s;
  // Beyond the 2^50 ns wheel horizon: parked in the overflow heap, and
  // still dispatched in exact (when, seq) order once reached.
  const SimTime far = (SimTime{1} << 51) + 7;
  std::vector<int> order;
  s.schedule_at(far, [&] { order.push_back(2); });
  s.schedule_at(far, [&] { order.push_back(3); });
  s.schedule_at(5, [&] { order.push_back(1); });
  EXPECT_EQ(s.overflow_scheduled(), 2u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), far);
}

TEST(Scheduler, CancelFarFutureEvent) {
  Scheduler s;
  const SimTime far = SimTime{1} << 52;
  EventHandle h = s.schedule_at(far, [] {});
  bool ran = false;
  s.schedule_at(far + 1, [&] { ran = true; });
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_TRUE(ran);  // The surviving far event still runs.
  EXPECT_EQ(s.executed_count(), 1u);
  EXPECT_EQ(s.now(), far + 1);
}

TEST(Scheduler, CascadesAcrossLevels) {
  Scheduler s;
  // An event several byte-levels out must cascade down level by level
  // and still fire at its exact nanosecond. Set bits in each level's
  // range (levels start at bit 26, the calendar-queue base grain).
  SimTime seen = -1;
  const SimTime when = (SimTime{3} << 44) + (SimTime{5} << 36) +
                       (SimTime{7} << 28) + 9;
  s.schedule_at(when, [&] { seen = s.now(); });
  s.schedule_at(1, [] {});
  s.run();
  EXPECT_EQ(seen, when);
  EXPECT_GE(s.cascades(), 2u);
}

TEST(Scheduler, RunUntilDoesNotDisturbFutureOrder) {
  Scheduler s;
  // Partial runs must not perturb later ordering: drive the clock in
  // small steps across events that were scheduled before any step.
  std::vector<int> order;
  s.schedule_at(100, [&] { order.push_back(1); });
  s.schedule_at(70000, [&] { order.push_back(2); });
  s.schedule_at(70000, [&] { order.push_back(3); });
  s.schedule_at(20'000'000, [&] { order.push_back(4); });
  for (SimTime t = 50; t <= 20'000'050; t += 65000) {
    s.run_until(t);
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace fmtcp::sim
