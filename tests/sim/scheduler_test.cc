#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace fmtcp::sim {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, FifoTieBreak) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(10, [&] { order.push_back(2); });
  s.schedule_at(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, NowAdvancesToEventTime) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(42, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 42);
  EXPECT_EQ(s.now(), 42);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run();
  SimTime seen = -1;
  s.schedule_in(50, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 150);
}

TEST(Scheduler, CancelSkipsEvent) {
  Scheduler s;
  bool ran = false;
  EventHandle h = s.schedule_at(10, [&] { ran = true; });
  h.cancel();
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed_count(), 0u);
}

TEST(Scheduler, PendingReflectsState) {
  Scheduler s;
  EventHandle h = s.schedule_at(10, [] {});
  EXPECT_TRUE(h.pending());
  s.run();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, CancelledNotPending) {
  Scheduler s;
  EventHandle h = s.schedule_at(10, [] {});
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(Scheduler, DefaultHandleSafe) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // No crash.
}

TEST(Scheduler, RunUntilExecutesBoundaryInclusive) {
  Scheduler s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(21, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  EXPECT_EQ(s.queued_count(), 1u);
}

TEST(Scheduler, RunUntilAdvancesClockWithoutEvents) {
  Scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  std::vector<SimTime> times;
  s.schedule_at(10, [&] {
    times.push_back(s.now());
    s.schedule_in(5, [&] { times.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ZeroDelayEventRunsAtSameTime) {
  Scheduler s;
  s.schedule_at(10, [] {});
  s.run();
  SimTime seen = -1;
  s.schedule_in(0, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 10);
}

TEST(Scheduler, ExecutedCountExcludesCancelled) {
  Scheduler s;
  s.schedule_at(1, [] {});
  EventHandle h = s.schedule_at(2, [] {});
  s.schedule_at(3, [] {});
  h.cancel();
  s.run();
  EXPECT_EQ(s.executed_count(), 2u);
}

TEST(Scheduler, DispatchProfileCountsByTag) {
  Scheduler s;
  s.set_profiling(true);
  s.schedule_at(1, "timer", [] {});
  s.schedule_at(2, "timer", [] {});
  s.schedule_at(3, "link.deliver", [] {});
  s.schedule_at(4, [] {});  // Untagged counts as "event".
  EventHandle h = s.schedule_at(5, "timer", [] {});
  h.cancel();  // Cancelled events never reach the profile.
  s.run();

  std::uint64_t timer = 0, deliver = 0, untagged = 0;
  for (const auto& [tag, count] : s.dispatch_profile()) {
    if (tag == "timer") timer = count;
    if (tag == "link.deliver") deliver = count;
    if (tag == "event") untagged = count;
  }
  EXPECT_EQ(timer, 2u);
  EXPECT_EQ(deliver, 1u);
  EXPECT_EQ(untagged, 1u);
}

TEST(Scheduler, DiscardedPendingEventCreatesNoHandle) {
  Scheduler s;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(i + 1, [] {});  // PendingEvent discarded.
  }
  EXPECT_EQ(s.handles_created(), 0u);
  s.run();
  EXPECT_EQ(s.executed_count(), 10u);
}

TEST(Scheduler, HandleStatesComeFromFreeList) {
  Scheduler s;
  // Timer-style churn: keep a handle, cancel, let the queue reap the
  // entry. After the first allocation the control block recycles.
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    {
      EventHandle h = s.schedule_at(++t, [] {});
      h.cancel();
    }  // Handle dropped: the queue holds the last reference.
    s.run();  // Reaps the cancelled entry, pooling its state.
  }
  EXPECT_EQ(s.handles_created(), 50u);
  EXPECT_EQ(s.handle_states_reused(), 49u);
}

TEST(Scheduler, CompactsWhenCancelledDominates) {
  Scheduler s;
  std::vector<EventHandle> handles;
  // Enough live entries to pass the minimum-queue-size gate.
  for (int i = 0; i < 100; ++i) {
    handles.push_back(s.schedule_at(1000 + i, [] {}));
  }
  // The 51st cancel tips cancelled past half of the 100-entry queue;
  // compaction reaps every cancelled entry in one pass.
  for (EventHandle& h : handles) h.cancel();
  EXPECT_GE(s.compactions(), 1u);
  EXPECT_LT(s.queued_count(), 100u);
  s.schedule_at(1, [] {});
  s.run();
  EXPECT_EQ(s.executed_count(), 1u);
}

TEST(Scheduler, CancelAfterCompactionIsSafe) {
  Scheduler s;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(s.schedule_at(1000 + i, [] {}));
  }
  for (EventHandle& h : handles) h.cancel();  // Triggers compaction.
  for (EventHandle& h : handles) {
    EXPECT_FALSE(h.pending());
    h.cancel();  // Idempotent even though the entry was reaped.
  }
  s.run();
  EXPECT_EQ(s.executed_count(), 0u);
}

}  // namespace
}  // namespace fmtcp::sim
