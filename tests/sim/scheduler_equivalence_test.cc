// Property test: the timer-wheel Scheduler and the frozen seed heap
// scheduler (reference_scheduler.h) must be observationally identical —
// same dispatch order (including same-timestamp FIFO ties), same clock
// trajectory, same executed counts, same post-cancel handle states —
// when driven by identical randomized schedule/cancel/reschedule traces.
//
// Traces are pre-generated scripts (a random event tree) so both
// implementations execute byte-identical logic: each script op fires a
// callback that schedules its children at recorded relative delays and
// optionally cancels a recorded target. Delays mix exact ties, zero
// delays, every wheel level, and beyond-horizon jumps that exercise the
// overflow heap.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "reference_scheduler.h"
#include "sim/scheduler.h"

namespace fmtcp::sim {
namespace {

struct ScriptOp {
  SimTime delay = 0;        ///< From parent fire time (roots: from 0).
  bool want_handle = false; ///< Materialise + keep an EventHandle.
  int cancel_target = -1;   ///< Op whose handle to cancel when firing.
  std::vector<int> children;
};

struct Script {
  std::vector<ScriptOp> ops;
  std::vector<int> roots;
  /// Ops cancelled at setup time, right after the roots are scheduled.
  std::vector<int> setup_cancels;
  /// run_until checkpoints, ascending; the tail runs to drain.
  std::vector<SimTime> checkpoints;
};

SimTime random_delay(Rng& rng) {
  switch (rng.uniform_int(0, 7)) {
    case 0: return 0;                                    // same timestamp
    case 1: return rng.uniform_int(1, 255);              // within window
    case 2: return rng.uniform_int(256, 65535);          // window edges
    case 3: return rng.uniform_int(1, 200) * 100'000;    // within window
    case 4: return rng.uniform_int(1, 500) * 10'000'000; // level 0-1
    case 5: return rng.uniform_int(1, 90) * kSecond;     // level 1-2
    case 6: return 100;                                  // frequent ties
    default:
      // Beyond the 2^50 ns wheel horizon: overflow heap traffic.
      return (SimTime{1} << 50) + rng.uniform_int(0, 3) * kSecond;
  }
}

Script make_script(std::uint64_t seed, int op_count) {
  Rng rng(seed);
  Script script;
  script.ops.resize(static_cast<std::size_t>(op_count));
  for (int i = 0; i < op_count; ++i) {
    ScriptOp& op = script.ops[static_cast<std::size_t>(i)];
    op.delay = random_delay(rng);
    op.want_handle = rng.uniform_int(0, 3) == 0;
    if (i == 0 || rng.uniform_int(0, 4) == 0) {
      script.roots.push_back(i);
    } else {
      const int parent = static_cast<int>(rng.uniform_int(0, i - 1));
      script.ops[static_cast<std::size_t>(parent)].children.push_back(i);
    }
  }
  // Cancels: only ops that keep handles can be cancelled. Cancelling an
  // op that already fired (or was itself cancelled) is a no-op in both
  // implementations, so targets need no liveness screening.
  std::vector<int> handled;
  for (int i = 0; i < op_count; ++i) {
    if (script.ops[static_cast<std::size_t>(i)].want_handle) {
      handled.push_back(i);
    }
  }
  if (!handled.empty()) {
    for (int i = 0; i < op_count; ++i) {
      if (rng.uniform_int(0, 5) == 0) {
        script.ops[static_cast<std::size_t>(i)].cancel_target =
            handled[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(handled.size()) - 1))];
      }
    }
    for (int k = 0; k < 3; ++k) {
      script.setup_cancels.push_back(
          handled[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(handled.size()) - 1))]);
    }
  }
  // Checkpoints at awkward boundaries: mid-window, an exact second,
  // just past the wheel horizon.
  script.checkpoints = {rng.uniform_int(1, 70000),
                        rng.uniform_int(1, 5) * kSecond,
                        (SimTime{1} << 50) + kSecond};
  return script;
}

struct FireRecord {
  int op;
  SimTime at;
  bool operator==(const FireRecord&) const = default;
};

/// Runs `script` on a scheduler implementation, returning the exact
/// dispatch log plus the final observable state.
template <typename Sched>
struct TraceResult {
  std::vector<FireRecord> log;
  std::vector<SimTime> checkpoint_now;
  std::uint64_t executed = 0;
  std::vector<bool> handle_pending;
};

template <typename Sched>
TraceResult<Sched> run_script(const Script& script) {
  using Handle = typename Sched::handle_type;
  Sched s;
  TraceResult<Sched> result;
  std::vector<Handle> handles(script.ops.size());

  // Recursive scheduling closure; defined as a struct so callbacks can
  // re-enter it for their children.
  struct Driver {
    const Script& script;
    Sched& s;
    std::vector<Handle>& handles;
    std::vector<FireRecord>& log;

    void schedule(int op_id, SimTime base) {
      const ScriptOp& op = script.ops[static_cast<std::size_t>(op_id)];
      auto pending = s.schedule_at(base + op.delay, "equiv",
                                   [this, op_id] { fire(op_id); });
      if (op.want_handle) {
        handles[static_cast<std::size_t>(op_id)] = pending;
      }
    }

    void fire(int op_id) {
      log.push_back({op_id, s.now()});
      const ScriptOp& op = script.ops[static_cast<std::size_t>(op_id)];
      for (int child : op.children) schedule(child, s.now());
      if (op.cancel_target >= 0) {
        handles[static_cast<std::size_t>(op.cancel_target)].cancel();
      }
    }
  };
  Driver driver{script, s, handles, result.log};

  for (int root : script.roots) driver.schedule(root, 0);
  for (int target : script.setup_cancels) {
    handles[static_cast<std::size_t>(target)].cancel();
  }
  for (SimTime checkpoint : script.checkpoints) {
    s.run_until(checkpoint);
    result.checkpoint_now.push_back(s.now());
  }
  s.run();
  result.executed = s.executed_count();
  result.handle_pending.reserve(handles.size());
  for (const Handle& h : handles) result.handle_pending.push_back(h.pending());
  return result;
}

void expect_equivalent(const Script& script) {
  const auto wheel = run_script<Scheduler>(script);
  const auto heap = run_script<HeapScheduler>(script);
  ASSERT_EQ(wheel.log.size(), heap.log.size());
  for (std::size_t i = 0; i < wheel.log.size(); ++i) {
    ASSERT_EQ(wheel.log[i], heap.log[i]) << "divergence at dispatch " << i;
  }
  EXPECT_EQ(wheel.checkpoint_now, heap.checkpoint_now);
  EXPECT_EQ(wheel.executed, heap.executed);
  EXPECT_EQ(wheel.handle_pending, heap.handle_pending);
}

TEST(SchedulerEquivalence, RandomTraces) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_equivalent(make_script(seed, 400));
  }
}

TEST(SchedulerEquivalence, DenseTies) {
  // Many ops collapsing onto few timestamps: FIFO tie-breaking and
  // same-time newcomers appended mid-batch dominate this trace.
  for (std::uint64_t seed = 100; seed <= 106; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    Script script;
    script.ops.resize(300);
    for (int i = 0; i < 300; ++i) {
      ScriptOp& op = script.ops[static_cast<std::size_t>(i)];
      op.delay = rng.uniform_int(0, 3) * 100;  // 4 distinct offsets
      op.want_handle = rng.uniform_int(0, 1) == 0;
      if (i < 20) {
        script.roots.push_back(i);
      } else {
        script.ops[static_cast<std::size_t>(rng.uniform_int(0, i - 1))]
            .children.push_back(i);
      }
      if (i > 0 && rng.uniform_int(0, 3) == 0) {
        op.cancel_target = static_cast<int>(rng.uniform_int(0, i - 1));
        if (!script.ops[static_cast<std::size_t>(op.cancel_target)]
                 .want_handle) {
          op.cancel_target = -1;
        }
      }
    }
    script.checkpoints = {100, 350, 600};
    expect_equivalent(script);
  }
}

TEST(SchedulerEquivalence, TimerRearmChurn) {
  // The Timer cancel + reschedule pattern, the hottest cancel path in
  // the simulator: each firing op cancels the previous keeper and
  // schedules a replacement.
  // Two parallel chains (even ops / odd ops); every chain op also arms
  // a long-lived "victim" timer, and cancels the victim armed by the
  // other chain's neighbour. Victims linger, so many cancels hit
  // genuinely pending entries; others hit not-yet-materialised or
  // already-fired handles — all must behave identically, and cancelling
  // victims never breaks the chains themselves.
  Script script;
  script.ops.resize(200);
  script.roots = {0, 1};
  for (int i = 0; i < 100; ++i) {
    ScriptOp& op = script.ops[static_cast<std::size_t>(i)];
    op.delay = 50 + (i % 7) * 13;
    op.want_handle = true;
    if (i + 2 < 100) op.children.push_back(i + 2);
    op.children.push_back(100 + i);  // Arm this op's victim timer.
    if (i + 1 < 100) op.cancel_target = 100 + i + 1;
    ScriptOp& victim = script.ops[static_cast<std::size_t>(100 + i)];
    victim.delay = 5000 + (i % 5) * 700;
    victim.want_handle = true;
  }
  script.checkpoints = {500, 5000};
  expect_equivalent(script);
}

}  // namespace
}  // namespace fmtcp::sim
