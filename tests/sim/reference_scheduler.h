// The seed binary-heap scheduler, frozen as a reference implementation.
//
// This is the pre-timer-wheel sim::Scheduler, byte-for-byte in behaviour:
// binary min-heap on (when, seq), lazy cancellation with half-queue
// compaction, pooled handle control blocks, push-hint PendingEvent
// materialisation. Two consumers keep it alive:
//   - tests/sim/scheduler_equivalence_test.cc drives it and the wheel
//     with identical randomized operation traces and asserts identical
//     dispatch order, clocks, and handle states;
//   - bench/bench_sim_micro.cc replays recorded cell traces into both to
//     measure the wheel's events/sec speedup (BENCH_sched.json).
// The only deliberate delta from the seed: trace spans are dropped so
// the header has no obs/ dependency (they were no-ops in these uses).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/time.h"
#include "common/unique_function.h"

namespace fmtcp::sim {

class HeapScheduler;

/// Handle for cancelling a scheduled event (reference-heap flavour).
class HeapEventHandle {
 public:
  HeapEventHandle() = default;

  void cancel();
  bool pending() const {
    return state_ && !state_->cancelled && !state_->fired;
  }

 private:
  friend class HeapScheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
    HeapScheduler* owner = nullptr;
  };
  explicit HeapEventHandle(std::shared_ptr<State> s)
      : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Deferred handle materialisation, as in the seed scheduler.
class HeapPendingEvent {
 public:
  HeapPendingEvent(const HeapPendingEvent&) = delete;
  HeapPendingEvent& operator=(const HeapPendingEvent&) = delete;

  operator HeapEventHandle() const;  // NOLINT(google-explicit-constructor)

 private:
  friend class HeapScheduler;
  HeapPendingEvent(HeapScheduler* scheduler, std::uint64_t seq)
      : scheduler_(scheduler), seq_(seq) {}
  HeapScheduler* scheduler_;
  std::uint64_t seq_;
};

/// Min-heap event queue with a monotonically advancing clock.
class HeapScheduler {
 public:
  using handle_type = HeapEventHandle;

  HeapScheduler() = default;
  ~HeapScheduler() {
    for (Entry& entry : heap_) {
      if (entry.state) entry.state->owner = nullptr;
    }
  }
  HeapScheduler(const HeapScheduler&) = delete;
  HeapScheduler& operator=(const HeapScheduler&) = delete;

  SimTime now() const { return now_; }

  HeapPendingEvent schedule_at(SimTime when, UniqueFunction fn) {
    return schedule_at(when, kDefaultTag, std::move(fn));
  }
  HeapPendingEvent schedule_at(SimTime when, const char* tag,
                               UniqueFunction fn) {
    FMTCP_CHECK(when >= now_);
    FMTCP_CHECK(static_cast<bool>(fn));
    FMTCP_CHECK(tag != nullptr);
    const std::uint64_t seq = next_seq_++;
    heap_.push_back(Entry{when, seq, tag, std::move(fn), nullptr});
    sift_up(heap_.size() - 1);
    return HeapPendingEvent(this, seq);
  }

  HeapPendingEvent schedule_in(SimTime delay, UniqueFunction fn) {
    return schedule_in(delay, kDefaultTag, std::move(fn));
  }
  HeapPendingEvent schedule_in(SimTime delay, const char* tag,
                               UniqueFunction fn) {
    FMTCP_CHECK(delay >= 0);
    return schedule_at(now_ + delay, tag, std::move(fn));
  }

  bool step() {
    while (!heap_.empty()) {
      Entry entry = pop_top();
      if (entry.state) {
        if (entry.state->cancelled) {
          FMTCP_DCHECK(cancelled_in_queue_ > 0);
          --cancelled_in_queue_;
          recycle_state(std::move(entry.state));
          continue;
        }
        entry.state->fired = true;
      }
      FMTCP_DCHECK(entry.when >= now_);
      now_ = entry.when;
      ++executed_;
      recycle_state(std::move(entry.state));
      entry.fn();
      return true;
    }
    return false;
  }

  void run_until(SimTime deadline) {
    FMTCP_CHECK(deadline >= now_);
    while (!heap_.empty()) {
      const Entry& top = heap_.front();
      if (top.state && top.state->cancelled) {
        Entry dead = pop_top();
        FMTCP_DCHECK(cancelled_in_queue_ > 0);
        --cancelled_in_queue_;
        recycle_state(std::move(dead.state));
        continue;
      }
      if (top.when > deadline) break;
      step();
    }
    now_ = deadline;
  }

  void run() {
    while (step()) {
    }
  }

  std::uint64_t executed_count() const { return executed_; }
  std::size_t queued_count() const { return heap_.size(); }
  std::uint64_t handles_created() const { return handles_created_; }
  std::uint64_t compactions() const { return compactions_; }

 private:
  friend class HeapEventHandle;
  friend class HeapPendingEvent;

  static constexpr const char* kDefaultTag = "event";
  static constexpr std::size_t kCompactMinQueue = 64;

  struct Entry {
    SimTime when;
    std::uint64_t seq;
    const char* tag;
    UniqueFunction fn;
    std::shared_ptr<HeapEventHandle::State> state;
  };

  static bool before(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
    last_push_index_ = i;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) return;
      std::size_t least = left;
      const std::size_t right = left + 1;
      if (right < n && before(heap_[right], heap_[left])) least = right;
      if (!before(heap_[least], heap_[i])) return;
      std::swap(heap_[i], heap_[least]);
      i = least;
    }
  }

  Entry pop_top() {
    FMTCP_DCHECK(!heap_.empty());
    Entry top = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  HeapEventHandle make_handle(std::uint64_t seq) {
    Entry* entry = nullptr;
    if (last_push_index_ < heap_.size() &&
        heap_[last_push_index_].seq == seq) {
      entry = &heap_[last_push_index_];
    } else {
      for (Entry& e : heap_) {
        if (e.seq == seq) {
          entry = &e;
          break;
        }
      }
    }
    if (entry == nullptr) return HeapEventHandle();  // Already executed.
    if (!entry->state) entry->state = acquire_state();
    ++handles_created_;
    return HeapEventHandle(entry->state);
  }

  std::shared_ptr<HeapEventHandle::State> acquire_state() {
    if (!state_pool_.empty()) {
      std::shared_ptr<HeapEventHandle::State> state =
          std::move(state_pool_.back());
      state_pool_.pop_back();
      state->cancelled = false;
      state->fired = false;
      state->owner = this;
      return state;
    }
    auto state = std::make_shared<HeapEventHandle::State>();
    state->owner = this;
    return state;
  }

  void recycle_state(std::shared_ptr<HeapEventHandle::State>&& state) {
    if (!state) return;
    state->owner = nullptr;
    if (state.use_count() == 1) {
      state_pool_.push_back(std::move(state));
    } else {
      state.reset();
    }
  }

  void note_cancelled() {
    ++cancelled_in_queue_;
    if (heap_.size() >= kCompactMinQueue &&
        cancelled_in_queue_ > heap_.size() / 2) {
      compact();
    }
  }

  void compact() {
    ++compactions_;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i].state && heap_[i].state->cancelled) {
        recycle_state(std::move(heap_[i].state));
        continue;
      }
      if (kept != i) heap_[kept] = std::move(heap_[i]);
      ++kept;
    }
    heap_.resize(kept);
    cancelled_in_queue_ = 0;
    std::make_heap(heap_.begin(), heap_.end(),
                   [](const Entry& a, const Entry& b) {
                     return before(b, a);  // make_heap wants "less".
                   });
    last_push_index_ = heap_.size();
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;
  std::size_t last_push_index_ = 0;
  std::vector<std::shared_ptr<HeapEventHandle::State>> state_pool_;
  std::size_t cancelled_in_queue_ = 0;
  std::uint64_t handles_created_ = 0;
  std::uint64_t compactions_ = 0;
};

inline void HeapEventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->owner != nullptr) state_->owner->note_cancelled();
}

inline HeapPendingEvent::operator HeapEventHandle() const {
  return scheduler_->make_handle(seq_);
}

}  // namespace fmtcp::sim
