#include "sim/timer.h"

#include <gtest/gtest.h>

#include <memory>

namespace fmtcp::sim {
namespace {

TEST(Timer, FiresAtExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(100);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Timer, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(100);
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RescheduleReplacesExpiry) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(100);
  t.schedule(200);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 200);
}

TEST(Timer, PendingAndExpiry) {
  Simulator sim;
  Timer t(sim, [] {});
  EXPECT_FALSE(t.pending());
  EXPECT_EQ(t.expiry(), kNever);
  t.schedule(50);
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.expiry(), 50);
  sim.run();
  EXPECT_FALSE(t.pending());
  EXPECT_EQ(t.expiry(), kNever);
}

TEST(Timer, DestructionCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.schedule(100);
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, ReArmInsideCallback) {
  Simulator sim;
  int fired = 0;
  std::unique_ptr<Timer> t;
  t = std::make_unique<Timer>(sim, [&] {
    if (++fired < 3) t->schedule(10);
  });
  t->schedule(10);
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 30);
}

TEST(Timer, ScheduleAtAbsolute) {
  Simulator sim;
  SimTime seen = -1;
  Timer t(sim, [&] { seen = sim.now(); });
  sim.schedule_at(10, [] {});
  sim.run();
  t.schedule_at(300);
  sim.run();
  EXPECT_EQ(seen, 300);
}

TEST(Timer, CancelIdempotent) {
  Simulator sim;
  Timer t(sim, [] {});
  t.cancel();
  t.schedule(10);
  t.cancel();
  t.cancel();
  sim.run();
  EXPECT_FALSE(t.pending());
}

}  // namespace
}  // namespace fmtcp::sim
