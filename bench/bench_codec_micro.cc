// Microbenchmarks (google-benchmark): fountain codec throughput vs k̂
// and symbol size — the §III-B "coding complexity" constraint on
// choosing the block size.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/lt_codec.h"
#include "fountain/random_linear.h"

namespace {

using namespace fmtcp;
using namespace fmtcp::fountain;

void BM_EncodeSymbol(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto symbol_bytes = static_cast<std::size_t>(state.range(1));
  RandomLinearEncoder encoder(1, make_deterministic_block(1, k, symbol_bytes),
                              Rng(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.next_symbol());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbol_bytes));
}
BENCHMARK(BM_EncodeSymbol)
    ->Args({16, 160})
    ->Args({64, 160})
    ->Args({128, 160})
    ->Args({64, 1024});

void BM_DecodeBlock(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto symbol_bytes = static_cast<std::size_t>(state.range(1));
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    RandomLinearEncoder encoder(1, make_deterministic_block(1, k, symbol_bytes),
                                rng.fork());
    std::vector<net::EncodedSymbol> symbols;
    for (std::uint32_t i = 0; i < k + 8; ++i) {
      symbols.push_back(encoder.next_symbol());
    }
    state.ResumeTiming();

    BlockDecoder decoder(k, symbol_bytes, /*track_data=*/true);
    for (const auto& symbol : symbols) {
      if (decoder.complete()) break;
      decoder.add_symbol(symbol);
    }
    // ~2^-8 of iterations the k+8 symbols are rank-deficient; skip those.
    if (decoder.complete()) benchmark::DoNotOptimize(decoder.decode());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k) *
                          static_cast<std::int64_t>(symbol_bytes));
}
BENCHMARK(BM_DecodeBlock)
    ->Args({16, 160})
    ->Args({64, 160})
    ->Args({128, 160});

void BM_RankOnlyDecode(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    RandomLinearEncoder encoder(1, k, 1, rng.fork());
    std::vector<net::EncodedSymbol> symbols;
    for (std::uint32_t i = 0; i < k + 8; ++i) {
      symbols.push_back(encoder.next_symbol());
    }
    state.ResumeTiming();

    BlockDecoder decoder(k, 1, /*track_data=*/false);
    for (const auto& symbol : symbols) {
      if (decoder.complete()) break;
      decoder.add_symbol(symbol);
    }
    benchmark::DoNotOptimize(decoder.rank());
  }
}
BENCHMARK(BM_RankOnlyDecode)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_LtDecodeBlock(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const RobustSoliton dist(k, 0.1, 0.05);
  Rng rng(17);
  for (auto _ : state) {
    state.PauseTiming();
    LtEncoder encoder(1, make_deterministic_block(1, k, 160), dist,
                      rng.fork());
    state.ResumeTiming();
    LtDecoder decoder(k, 160, dist);
    while (!decoder.complete()) {
      decoder.add_symbol(encoder.next_symbol());
    }
    benchmark::DoNotOptimize(decoder.recovered());
  }
}
BENCHMARK(BM_LtDecodeBlock)->Arg(64)->Arg(256);

void BM_CoefficientsFromSeed(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coefficients_from_seed(seed++, k));
  }
}
BENCHMARK(BM_CoefficientsFromSeed)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
