// Fountain codec microbenchmarks.
//
// Two modes:
//  - Default: google-benchmark micros (encode throughput vs k̂ and symbol
//    size — the §III-B "coding complexity" constraint on block size).
//  - --json=FILE / --guard=FILE: a self-contained decode-throughput
//    harness (MB/s of recovered source data and symbols/s) across
//    k ∈ {16, 32, 64, 128}, systematic-heavy vs dense-coded streams, and
//    eager-equivalent vs lazy decoding; plus new-decoder-only cases at
//    k ∈ {256, 512} (dense), a batch-decode case (shared scratch across
//    blocks), and an MTU-sized 1400-byte-symbol case. --json writes the
//    numbers (the committed BENCH_codec.json baseline at the repo root,
//    produced by tools/bench.sh); --guard re-runs the harness and fails
//    if any case regressed more than --max-regression (default 0.20)
//    against the baseline file (tools/check.sh FMTCP_BENCH_GUARD=1).
//    The harness also covers the GF(256) RLC ablation codec
//    (gf256_dense_k* / gf256_systematic_k*) and the raw gf256 multiply
//    kernel (gf256_mul_region vs gf256_mul_region_scalar — the
//    split-nibble SIMD speedup on record). The JSON records the active
//    GF(2) and GF(256) kernels and CPU features; a guard run whose
//    active kernels differ from the baseline's skips (exit 0) rather
//    than compare across unlike machines, and a full guard run fails if
//    any committed case is no longer measured by the harness.
//  - --cases=REGEX restricts the harness (json and guard modes) to case
//    names matching the regex; a filtered --json run keeps the previous
//    recordings of the cases it skipped.
//  - --symbol-bytes=N changes the harness's default symbol size (160).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "json_baseline.h"
#include "common/check.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/gf2_kernels.h"
#include "fountain/gf256_kernels.h"
#include "fountain/gf256_rlc.h"
#include "fountain/lt_codec.h"
#include "fountain/random_linear.h"

namespace {

using namespace fmtcp;
using namespace fmtcp::fountain;
using namespace fmtcp::benchjson;

// --------------------------------------------------------------------------
// google-benchmark micros (default mode)
// --------------------------------------------------------------------------

void BM_EncodeSymbol(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto symbol_bytes = static_cast<std::size_t>(state.range(1));
  RandomLinearEncoder encoder(1, make_deterministic_block(1, k, symbol_bytes),
                              Rng(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.next_symbol());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbol_bytes));
}
BENCHMARK(BM_EncodeSymbol)
    ->Args({16, 160})
    ->Args({64, 160})
    ->Args({128, 160})
    ->Args({64, 1024});

void BM_DecodeBlock(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto symbol_bytes = static_cast<std::size_t>(state.range(1));
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    RandomLinearEncoder encoder(1, make_deterministic_block(1, k, symbol_bytes),
                                rng.fork());
    std::vector<net::EncodedSymbol> symbols;
    for (std::uint32_t i = 0; i < k + 8; ++i) {
      symbols.push_back(encoder.next_symbol());
    }
    state.ResumeTiming();

    BlockDecoder decoder(k, symbol_bytes, /*track_data=*/true);
    for (const auto& symbol : symbols) {
      if (decoder.complete()) break;
      decoder.add_symbol(symbol);
    }
    // ~2^-8 of iterations the k+8 symbols are rank-deficient; skip those.
    if (decoder.complete()) benchmark::DoNotOptimize(decoder.decode());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k) *
                          static_cast<std::int64_t>(symbol_bytes));
}
BENCHMARK(BM_DecodeBlock)
    ->Args({16, 160})
    ->Args({64, 160})
    ->Args({128, 160})
    ->Args({256, 160})
    ->Args({512, 160});

void BM_RankOnlyDecode(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    RandomLinearEncoder encoder(1, k, 1, rng.fork());
    std::vector<net::EncodedSymbol> symbols;
    for (std::uint32_t i = 0; i < k + 8; ++i) {
      symbols.push_back(encoder.next_symbol());
    }
    state.ResumeTiming();

    BlockDecoder decoder(k, 1, /*track_data=*/false);
    for (const auto& symbol : symbols) {
      if (decoder.complete()) break;
      decoder.add_symbol(symbol);
    }
    benchmark::DoNotOptimize(decoder.rank());
  }
}
BENCHMARK(BM_RankOnlyDecode)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_LtDecodeBlock(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const RobustSoliton dist(k, 0.1, 0.05);
  Rng rng(17);
  for (auto _ : state) {
    state.PauseTiming();
    LtEncoder encoder(1, make_deterministic_block(1, k, 160), dist,
                      rng.fork());
    state.ResumeTiming();
    LtDecoder decoder(k, 160, dist);
    while (!decoder.complete()) {
      decoder.add_symbol(encoder.next_symbol());
    }
    benchmark::DoNotOptimize(decoder.recovered());
  }
}
BENCHMARK(BM_LtDecodeBlock)->Arg(64)->Arg(256);

void BM_CoefficientsFromSeed(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  BitVector scratch;
  for (auto _ : state) {
    coefficients_from_seed_into(seed++, k, scratch);
    benchmark::DoNotOptimize(scratch.word_data());
  }
}
BENCHMARK(BM_CoefficientsFromSeed)->Arg(64)->Arg(256);

void BM_Gf256EncodeSymbol(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto symbol_bytes = static_cast<std::size_t>(state.range(1));
  Gf256RlcEncoder encoder(1, make_deterministic_block(1, k, symbol_bytes),
                          Rng(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.next_symbol());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(symbol_bytes));
}
BENCHMARK(BM_Gf256EncodeSymbol)
    ->Args({16, 160})
    ->Args({64, 160})
    ->Args({128, 160})
    ->Args({64, 1024});

void BM_Gf256DecodeBlock(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto symbol_bytes = static_cast<std::size_t>(state.range(1));
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    Gf256RlcEncoder encoder(1, make_deterministic_block(1, k, symbol_bytes),
                            rng.fork());
    std::vector<net::EncodedSymbol> symbols;
    for (std::uint32_t i = 0; i < k + 4; ++i) {
      symbols.push_back(encoder.next_symbol());
    }
    state.ResumeTiming();

    Gf256RlcDecoder decoder(k, symbol_bytes, /*track_data=*/true);
    for (const auto& symbol : symbols) {
      if (decoder.complete()) break;
      decoder.add_symbol(symbol);
    }
    // ~256^-4 of iterations the k+4 symbols are rank-deficient; skip.
    if (decoder.complete()) benchmark::DoNotOptimize(decoder.decode());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k) *
                          static_cast<std::int64_t>(symbol_bytes));
}
BENCHMARK(BM_Gf256DecodeBlock)
    ->Args({16, 160})
    ->Args({64, 160})
    ->Args({128, 160});

void BM_Gf256MulRegion(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Rng rng(23);
  std::vector<std::uint8_t> dst(size);
  std::vector<std::uint8_t> src(size);
  for (auto& b : dst) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_below(256));
  const Gf256KernelOps& ops = gf256_kernel();
  std::uint8_t c = 2;  // Stays off the c==0/1 fast paths.
  for (auto _ : state) {
    ops.mul_region(dst.data(), src.data(), c, size);
    benchmark::DoNotOptimize(dst.data());
    c = c == 255 ? 2 : static_cast<std::uint8_t>(c + 1);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  state.SetLabel(ops.name);
}
BENCHMARK(BM_Gf256MulRegion)->Arg(160)->Arg(1400)->Arg(65536);

// --------------------------------------------------------------------------
// Decode-throughput harness (--json / --guard modes)
// --------------------------------------------------------------------------

std::size_t g_symbol_bytes = 160;  ///< --symbol-bytes=N overrides.
std::optional<std::regex> g_cases_filter;  ///< --cases=REGEX overrides.

/// True when `name` should run under the active --cases filter.
bool case_enabled(const std::string& name) {
  return !g_cases_filter.has_value() ||
         std::regex_search(name, *g_cases_filter);
}
constexpr std::size_t kMtuSymbolBytes = 1400;
constexpr std::uint32_t kKs[] = {16, 32, 64, 128};
constexpr std::uint32_t kLargeKs[] = {256, 512};  ///< New decoder only.
constexpr int kStreamsPerCase = 16;
constexpr int kBatchBlocks = 8;
constexpr double kMinSeconds = 0.25;

/// The pre-overhaul decoder, faithfully reproducing the seed
/// implementation's cost profile: a heap-backed std::vector<uint64_t>
/// bit vector allocated per coefficient expansion and per row, a full
/// EncodedSymbol payload copy on every arrival (the seed's const&
/// overload did `net::EncodedSymbol copy = symbol`), payload bytes
/// XORed eagerly on every elimination step, and the original scalar
/// word-at-a-time kernel. This is the "before" of every before/after
/// number in BENCH_codec.json.
class EagerReferenceDecoder {
 public:
  EagerReferenceDecoder(std::uint32_t symbols, std::size_t symbol_bytes)
      : symbols_(symbols), symbol_bytes_(symbol_bytes),
        pivot_rows_(symbols) {}

  bool add_symbol(const net::EncodedSymbol& symbol) {
    // Seed: full copy first (into plain heap storage).
    std::vector<std::uint8_t> data(symbol.data.begin(), symbol.data.end());
    RefBitVector coeffs(symbols_);
    if (symbol.is_systematic()) {
      coeffs.set(symbol.systematic_index);
    } else {
      coeffs = ref_coefficients_from_seed(symbol.coeff_seed, symbols_);
    }
    if (rank_ == symbols_) return false;
    Row row{std::move(coeffs), std::move(data)};
    std::size_t pivot = row.coeffs.lowest_set_bit();
    while (pivot < symbols_ && pivot_rows_[pivot].has_value()) {
      row.coeffs.xor_with(pivot_rows_[pivot]->coeffs);
      scalar_xor(row.data, pivot_rows_[pivot]->data);
      pivot = row.coeffs.lowest_set_bit();
    }
    if (pivot >= symbols_) return false;
    pivot_rows_[pivot] = std::move(row);
    ++rank_;
    return true;
  }

  bool complete() const { return rank_ == symbols_; }

  BlockData decode() {
    for (std::size_t p = symbols_; p-- > 0;) {
      for (std::size_t q = 0; q < p; ++q) {
        Row& upper = *pivot_rows_[q];
        if (upper.coeffs.get(p)) {
          upper.coeffs.xor_with(pivot_rows_[p]->coeffs);
          scalar_xor(upper.data, pivot_rows_[p]->data);
        }
      }
    }
    BlockData out(symbols_, symbol_bytes_);
    for (std::uint32_t i = 0; i < symbols_; ++i) {
      const auto& data = pivot_rows_[i]->data;
      std::memcpy(out.symbol(i), data.data(), data.size());
    }
    return out;
  }

 private:
  /// The seed's BitVector: heap storage, allocated per construction.
  struct RefBitVector {
    explicit RefBitVector(std::size_t bit_count)
        : bits(bit_count), words((bit_count + 63) / 64, 0) {}
    void set(std::size_t i) { words[i / 64] |= 1ULL << (i % 64); }
    bool get(std::size_t i) const {
      return (words[i / 64] >> (i % 64)) & 1ULL;
    }
    bool any() const {
      for (std::uint64_t w : words) {
        if (w != 0) return true;
      }
      return false;
    }
    void xor_with(const RefBitVector& other) {
      for (std::size_t w = 0; w < words.size(); ++w) {
        words[w] ^= other.words[w];
      }
    }
    std::size_t lowest_set_bit() const {
      for (std::size_t w = 0; w < words.size(); ++w) {
        if (words[w] != 0) {
          return w * 64 +
                 static_cast<std::size_t>(std::countr_zero(words[w]));
        }
      }
      return bits;
    }
    std::size_t bits;
    std::vector<std::uint64_t> words;
  };

  struct Row {
    RefBitVector coeffs;
    std::vector<std::uint8_t> data;
  };

  /// Same Rng stream as coefficients_from_seed, same per-call heap
  /// allocation as the seed's implementation.
  static RefBitVector ref_coefficients_from_seed(std::uint64_t seed,
                                                 std::uint32_t k) {
    Rng rng(seed);
    RefBitVector v = ref_random(k, rng);
    while (!v.any()) v = ref_random(k, rng);
    return v;
  }

  static RefBitVector ref_random(std::uint32_t k, Rng& rng) {
    RefBitVector v(k);
    for (auto& word : v.words) word = rng.next_u64();
    const std::size_t tail = k % 64;
    if (tail != 0) v.words.back() &= (~0ULL >> (64 - tail));
    return v;
  }

  static void scalar_xor(std::vector<std::uint8_t>& dst,
                         const std::vector<std::uint8_t>& src) {
    std::size_t i = 0;
    for (; i + 8 <= dst.size(); i += 8) {
      std::uint64_t d;
      std::uint64_t s;
      __builtin_memcpy(&d, dst.data() + i, 8);
      __builtin_memcpy(&s, src.data() + i, 8);
      d ^= s;
      __builtin_memcpy(dst.data() + i, &d, 8);
    }
    for (; i < dst.size(); ++i) dst[i] ^= src[i];
  }

  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  std::uint32_t rank_ = 0;
  std::vector<std::optional<Row>> pivot_rows_;
};

/// A symbol stream guaranteed to reach full rank when fed in order.
/// Dense: non-systematic random linear symbols. Systematic-heavy: a
/// systematic encoder's output thinned by 12% i.i.d. loss (so most
/// symbols are plain source symbols plus a few coded repairs).
std::vector<net::EncodedSymbol> make_stream(std::uint32_t k,
                                            std::size_t symbol_bytes,
                                            bool dense, std::uint64_t seed) {
  Rng loss_rng(seed * 977 + 11);
  RandomLinearEncoder encoder(seed, make_deterministic_block(seed, k,
                                                             symbol_bytes),
                              Rng(seed * 31 + 7), /*systematic=*/!dense);
  std::vector<net::EncodedSymbol> stream;
  BlockDecoder probe(k, symbol_bytes, /*track_data=*/false);
  while (!probe.complete()) {
    net::EncodedSymbol s = encoder.next_symbol();
    if (!dense && loss_rng.bernoulli(0.12)) continue;  // Lost in transit.
    probe.add_symbol(s);
    stream.push_back(std::move(s));
  }
  return stream;
}

std::vector<std::vector<net::EncodedSymbol>> make_streams(
    std::uint32_t k, std::size_t symbol_bytes, bool dense) {
  std::vector<std::vector<net::EncodedSymbol>> streams;
  for (int s = 0; s < kStreamsPerCase; ++s) {
    streams.push_back(make_stream(k, symbol_bytes, dense,
                                  static_cast<std::uint64_t>(s) + 1));
  }
  return streams;
}

/// GF(256) counterpart of make_stream: same shapes (dense coded vs
/// systematic thinned by 12% loss), byte-coefficient symbols.
std::vector<net::EncodedSymbol> make_gf256_stream(std::uint32_t k,
                                                  std::size_t symbol_bytes,
                                                  bool dense,
                                                  std::uint64_t seed) {
  Rng loss_rng(seed * 977 + 11);
  Gf256RlcEncoder encoder(seed,
                          make_deterministic_block(seed, k, symbol_bytes),
                          Rng(seed * 31 + 7), /*systematic=*/!dense);
  std::vector<net::EncodedSymbol> stream;
  Gf256RlcDecoder probe(k, symbol_bytes, /*track_data=*/false);
  while (!probe.complete()) {
    net::EncodedSymbol s = encoder.next_symbol();
    if (!dense && loss_rng.bernoulli(0.12)) continue;  // Lost in transit.
    probe.add_symbol(s);
    stream.push_back(std::move(s));
  }
  return stream;
}

std::vector<std::vector<net::EncodedSymbol>> make_gf256_streams(
    std::uint32_t k, std::size_t symbol_bytes, bool dense) {
  std::vector<std::vector<net::EncodedSymbol>> streams;
  for (int s = 0; s < kStreamsPerCase; ++s) {
    streams.push_back(make_gf256_stream(k, symbol_bytes, dense,
                                        static_cast<std::uint64_t>(s) + 1));
  }
  return streams;
}

struct CaseResult {
  std::string name;
  double mbytes_per_sec = 0.0;
  double symbols_per_sec = 0.0;
};

/// Shared payload recycler, like the simulator's per-run pool: decoders
/// release decoded blocks' symbol buffers here and the next block's
/// copies re-acquire them.
BufferPool& bench_pool() {
  static BufferPool p;
  return p;
}

template <typename Decoder>
CaseResult run_case(const std::string& name, std::uint32_t k,
                    std::size_t symbol_bytes,
                    const std::vector<std::vector<net::EncodedSymbol>>&
                        streams) {
  // Warm-up + timed loop: decode whole blocks round-robin over the
  // pre-generated streams until the clock budget is spent.
  std::uint64_t blocks = 0;
  std::uint64_t symbols_fed = 0;
  std::size_t next = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    const auto& stream = streams[next];
    next = (next + 1) % streams.size();
    Decoder decoder(k, symbol_bytes);
    for (const auto& symbol : stream) {
      decoder.add_symbol(symbol);
      ++symbols_fed;
    }
    FMTCP_CHECK(decoder.complete());
    benchmark::DoNotOptimize(decoder.decode());
    ++blocks;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  } while (elapsed < kMinSeconds);

  CaseResult result;
  result.name = name;
  result.mbytes_per_sec = static_cast<double>(blocks) * k * symbol_bytes /
                          elapsed / 1e6;
  result.symbols_per_sec = static_cast<double>(symbols_fed) / elapsed;
  return result;
}

/// Batch decode: feed kBatchBlocks decoders to completion, then decode
/// them all through decode_batch() with one shared scratch — the
/// receiver-side shape where table storage amortises across blocks.
CaseResult run_batch_case(const std::string& name, std::uint32_t k,
                          std::size_t symbol_bytes,
                          const std::vector<std::vector<net::EncodedSymbol>>&
                              streams) {
  DecodeScratch scratch;
  std::uint64_t blocks = 0;
  std::uint64_t symbols_fed = 0;
  std::size_t next = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    std::vector<BlockDecoder> decoders;
    decoders.reserve(kBatchBlocks);
    std::vector<BlockDecoder*> ptrs;
    for (int b = 0; b < kBatchBlocks; ++b) {
      decoders.emplace_back(k, symbol_bytes, /*track_data=*/true,
                            &bench_pool());
      const auto& stream = streams[next];
      next = (next + 1) % streams.size();
      for (const auto& symbol : stream) {
        if (decoders.back().complete()) break;
        decoders.back().add_symbol(symbol);
        ++symbols_fed;
      }
      FMTCP_CHECK(decoders.back().complete());
      ptrs.push_back(&decoders.back());
    }
    const std::size_t decoded =
        decode_batch(ptrs.data(), ptrs.size(), scratch);
    FMTCP_CHECK(decoded == ptrs.size());
    blocks += decoded;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  } while (elapsed < kMinSeconds);

  CaseResult result;
  result.name = name;
  result.mbytes_per_sec = static_cast<double>(blocks) * k * symbol_bytes /
                          elapsed / 1e6;
  result.symbols_per_sec = static_cast<double>(symbols_fed) / elapsed;
  return result;
}

/// Adapters giving both decoders the same (k, symbol_bytes) constructor
/// and decode() shape for run_case.
struct LazyAdapter {
  LazyAdapter(std::uint32_t k, std::size_t bytes)
      : decoder(k, bytes, /*track_data=*/true, &bench_pool()) {}
  void add_symbol(const net::EncodedSymbol& s) {
    if (!decoder.complete()) decoder.add_symbol(s);
  }
  bool complete() const { return decoder.complete(); }
  const BlockData& decode() { return decoder.decode(scratch()); }
  /// Shared across blocks, like the receiver's per-connection scratch.
  static DecodeScratch& scratch() {
    static DecodeScratch s;
    return s;
  }
  BlockDecoder decoder;
};

struct EagerAdapter {
  EagerAdapter(std::uint32_t k, std::size_t bytes) : decoder(k, bytes) {}
  void add_symbol(const net::EncodedSymbol& s) {
    if (!decoder.complete()) decoder.add_symbol(s);
  }
  bool complete() const { return decoder.complete(); }
  BlockData decode() { return decoder.decode(); }
  EagerReferenceDecoder decoder;
};

struct Gf256Adapter {
  Gf256Adapter(std::uint32_t k, std::size_t bytes)
      : decoder(k, bytes, /*track_data=*/true, &bench_pool()) {}
  void add_symbol(const net::EncodedSymbol& s) {
    if (!decoder.complete()) decoder.add_symbol(s);
  }
  bool complete() const { return decoder.complete(); }
  const BlockData& decode() { return decoder.decode(); }
  Gf256RlcDecoder decoder;
};

/// Raw gf256 mul_region throughput (dst ^= c·src over a 64 KiB region):
/// the number the split-nibble SIMD kernels exist to move. Coefficients
/// cycle through [2, 255] so the c==0/1 fast paths never fire.
CaseResult run_mul_region_case(const std::string& name,
                               const Gf256KernelOps& ops) {
  constexpr std::size_t kBufBytes = 64 * 1024;
  Rng rng(12345);
  std::vector<std::uint8_t> dst(kBufBytes);
  std::vector<std::uint8_t> src(kBufBytes);
  for (auto& b : dst) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_below(256));
  std::uint8_t c = 2;
  std::uint64_t passes = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    ops.mul_region(dst.data(), src.data(), c, kBufBytes);
    benchmark::DoNotOptimize(dst.data());
    c = c == 255 ? 2 : static_cast<std::uint8_t>(c + 1);
    ++passes;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  } while (elapsed < kMinSeconds);
  CaseResult result;
  result.name = name;
  result.mbytes_per_sec =
      static_cast<double>(passes) * kBufBytes / elapsed / 1e6;
  result.symbols_per_sec = static_cast<double>(passes) / elapsed;
  return result;
}

/// Best-of-N repetitions of `fn`, so a background burst on this
/// (single-core) box degrades one repetition, not the result.
template <typename Fn>
CaseResult best_of(int reps, Fn&& fn) {
  CaseResult best;
  for (int rep = 0; rep < reps; ++rep) {
    const CaseResult r = fn();
    if (r.mbytes_per_sec > best.mbytes_per_sec) best = r;
    best.name = r.name;
  }
  return best;
}

std::vector<CaseResult> run_harness() {
  std::vector<CaseResult> results;
  for (std::uint32_t k : kKs) {
    for (bool dense : {false, true}) {
      const std::string suffix =
          std::string(dense ? "dense" : "systematic") + "_k" +
          std::to_string(k);
      const bool want_eager = case_enabled("eager_" + suffix);
      const bool want_lazy = case_enabled("lazy_" + suffix);
      if (!want_eager && !want_lazy) continue;
      const auto streams = make_streams(k, g_symbol_bytes, dense);
      // Alternate decoders across repetitions (see best_of).
      CaseResult eager;
      CaseResult lazy;
      for (int rep = 0; rep < 5; ++rep) {
        if (want_eager) {
          const CaseResult e = run_case<EagerAdapter>(
              "eager_" + suffix, k, g_symbol_bytes, streams);
          if (e.mbytes_per_sec > eager.mbytes_per_sec) eager = e;
        }
        if (want_lazy) {
          const CaseResult l = run_case<LazyAdapter>(
              "lazy_" + suffix, k, g_symbol_bytes, streams);
          if (l.mbytes_per_sec > lazy.mbytes_per_sec) lazy = l;
        }
      }
      if (want_eager && want_lazy) {
        std::printf("  %-20s eager %8.1f MB/s   lazy %8.1f MB/s   (%.2fx)\n",
                    suffix.c_str(), eager.mbytes_per_sec,
                    lazy.mbytes_per_sec,
                    lazy.mbytes_per_sec / eager.mbytes_per_sec);
      } else {
        const CaseResult& only = want_eager ? eager : lazy;
        std::printf("  %-26s %8.1f MB/s\n", only.name.c_str(),
                    only.mbytes_per_sec);
      }
      if (want_eager) results.push_back(eager);
      if (want_lazy) results.push_back(lazy);
    }
  }

  // Large-k̂ dense cases, new decoder only (the eager reference is
  // quadratic in payload work and would dominate harness runtime).
  for (std::uint32_t k : kLargeKs) {
    const std::string name = "lazy_dense_k" + std::to_string(k);
    if (!case_enabled(name)) continue;
    const auto streams = make_streams(k, g_symbol_bytes, /*dense=*/true);
    const CaseResult r = best_of(5, [&] {
      return run_case<LazyAdapter>(name, k, g_symbol_bytes, streams);
    });
    std::printf("  %-20s                     lazy %8.1f MB/s\n",
                name.c_str() + 5, r.mbytes_per_sec);
    results.push_back(r);
  }

  // Batch decode across blocks, shared scratch.
  if (case_enabled("batch_dense_k128")) {
    const std::uint32_t k = 128;
    const auto streams = make_streams(k, g_symbol_bytes, /*dense=*/true);
    const CaseResult r = best_of(5, [&] {
      return run_batch_case("batch_dense_k128", k, g_symbol_bytes, streams);
    });
    std::printf("  %-20s                     lazy %8.1f MB/s\n",
                "batch_dense_k128", r.mbytes_per_sec);
    results.push_back(r);
  }

  // MTU-sized symbols: payload kernels dominate at 1400 bytes/symbol.
  if (case_enabled("lazy_dense_k128_sb1400")) {
    const std::uint32_t k = 128;
    const auto streams = make_streams(k, kMtuSymbolBytes, /*dense=*/true);
    const CaseResult r = best_of(5, [&] {
      return run_case<LazyAdapter>("lazy_dense_k128_sb1400", k,
                                   kMtuSymbolBytes, streams);
    });
    std::printf("  %-20s                     lazy %8.1f MB/s\n",
                "dense_k128_sb1400", r.mbytes_per_sec);
    results.push_back(r);
  }

  // GF(256) RLC ablation codec: decode throughput over the same stream
  // shapes, byte coefficients through the multiply kernels.
  for (std::uint32_t k : kKs) {
    for (bool dense : {false, true}) {
      const std::string name = std::string("gf256_") +
                               (dense ? "dense" : "systematic") + "_k" +
                               std::to_string(k);
      if (!case_enabled(name)) continue;
      const auto streams = make_gf256_streams(k, g_symbol_bytes, dense);
      const CaseResult r = best_of(5, [&] {
        return run_case<Gf256Adapter>(name, k, g_symbol_bytes, streams);
      });
      std::printf("  %-26s %8.1f MB/s\n", name.c_str(), r.mbytes_per_sec);
      results.push_back(r);
    }
  }

  // Raw gf256 multiply-kernel throughput, dispatched vs forced-scalar:
  // the split-nibble SIMD speedup on record (>= 4x expected wherever
  // PSHUFB or vtbl is available).
  {
    const bool want_simd = case_enabled("gf256_mul_region");
    const bool want_scalar = case_enabled("gf256_mul_region_scalar");
    CaseResult simd;
    CaseResult scalar;
    if (want_simd) {
      simd = best_of(5, [&] {
        return run_mul_region_case("gf256_mul_region", gf256_kernel());
      });
      results.push_back(simd);
    }
    if (want_scalar) {
      scalar = best_of(5, [&] {
        return run_mul_region_case("gf256_mul_region_scalar",
                                   gf256_scalar_kernel());
      });
      results.push_back(scalar);
    }
    if (want_simd && want_scalar) {
      std::printf(
          "  gf256_mul_region (%s) %8.1f MB/s   scalar %8.1f MB/s   "
          "(%.2fx)\n",
          gf256_kernel().name, simd.mbytes_per_sec, scalar.mbytes_per_sec,
          simd.mbytes_per_sec / scalar.mbytes_per_sec);
    }
  }

  // Deterministic JSON: case keys sorted by name.
  std::sort(results.begin(), results.end(),
            [](const CaseResult& a, const CaseResult& b) {
              return a.name < b.name;
            });
  return results;
}

/// Rank-only mode must touch zero payload bytes; returns the counter so
/// the JSON can record it.
std::uint64_t rank_only_payload_bytes() {
  const std::uint32_t k = 64;
  const auto stream = make_stream(k, g_symbol_bytes, /*dense=*/true, 42);
  BlockDecoder decoder(k, g_symbol_bytes, /*track_data=*/false);
  for (const auto& symbol : stream) decoder.add_symbol(symbol);
  FMTCP_CHECK(decoder.complete());
  FMTCP_CHECK(decoder.payload_bytes_xored() == 0);
  return decoder.payload_bytes_xored();
}

/// Same invariant for the GF(256) decoder's rank-only mode.
std::uint64_t gf256_rank_only_payload_bytes() {
  const std::uint32_t k = 64;
  const auto stream =
      make_gf256_stream(k, g_symbol_bytes, /*dense=*/true, 42);
  Gf256RlcDecoder decoder(k, g_symbol_bytes, /*track_data=*/false);
  for (const auto& symbol : stream) decoder.add_symbol(symbol);
  FMTCP_CHECK(decoder.complete());
  FMTCP_CHECK(decoder.payload_bytes_multiplied() == 0);
  return decoder.payload_bytes_multiplied();
}

void write_json(const std::string& path, std::vector<CaseResult> results,
                bool merge_min) {
  if (merge_min) {
    // Fold the previous recording in, keeping the elementwise minimum:
    // repeated passes (separate processes, so independent heap layouts)
    // converge on a floor a guard run on an idle box can always meet.
    const std::string prev = read_file(path);
    for (CaseResult& r : results) {
      const std::optional<double> mb =
          baseline_field(prev, r.name, "mbytes_per_sec");
      const std::optional<double> sym =
          baseline_field(prev, r.name, "symbols_per_sec");
      if (mb.has_value() && *mb < r.mbytes_per_sec) r.mbytes_per_sec = *mb;
      if (sym.has_value() && *sym < r.symbols_per_sec) {
        r.symbols_per_sec = *sym;
      }
    }
  }
  if (g_cases_filter.has_value()) {
    // A filtered re-recording keeps the previous numbers of every case
    // it skipped, so --cases cannot silently shrink the baseline.
    const std::string prev = read_file(path);
    for (const std::string& name : baseline_case_names(prev)) {
      const bool measured =
          std::any_of(results.begin(), results.end(),
                      [&](const CaseResult& r) { return r.name == name; });
      if (measured) continue;
      const std::optional<double> mb =
          baseline_field(prev, name, "mbytes_per_sec");
      const std::optional<double> sym =
          baseline_field(prev, name, "symbols_per_sec");
      if (mb.has_value() && sym.has_value()) {
        results.push_back({name, *mb, *sym});
      }
    }
    std::sort(results.begin(), results.end(),
              [](const CaseResult& a, const CaseResult& b) {
                return a.name < b.name;
              });
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::perror(("cannot open " + path).c_str());
    std::exit(1);
  }
  std::fprintf(file,
               "{\n"
               "  \"symbol_bytes\": %zu,\n"
               "  \"kernel\": \"%s\",\n"
               "  \"gf256_kernel\": \"%s\",\n"
               "  \"cpu_features\": \"%s\",\n"
               "  \"rank_only_payload_bytes_xored\": %llu,\n"
               "  \"gf256_rank_only_payload_bytes_multiplied\": %llu,\n"
               "  \"cases\": {\n",
               g_symbol_bytes, gf2_kernel().name, gf256_kernel().name,
               cpu_features_string().c_str(),
               static_cast<unsigned long long>(rank_only_payload_bytes()),
               static_cast<unsigned long long>(
                   gf256_rank_only_payload_bytes()));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    std::fprintf(file,
                 "    \"%s\": {\"mbytes_per_sec\": %.1f, "
                 "\"symbols_per_sec\": %.0f}%s\n",
                 r.name.c_str(), r.mbytes_per_sec, r.symbols_per_sec,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(file, "  }\n}\n");
  FMTCP_CHECK(std::fclose(file) == 0);
  std::printf("json: -> %s\n", path.c_str());
}

int run_guard(const std::string& baseline_path, double max_regression) {
  const std::string json = read_file(baseline_path);
  if (json.empty()) {
    std::fprintf(stderr, "guard: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }

  // Like-with-like: numbers recorded under one kernel are not comparable
  // to a run dispatched to another (different machine, FMTCP_FORCE_KERNEL,
  // or an -DFMTCP_SIMD=OFF build). Skip cleanly instead of flagging a
  // phantom regression.
  const std::optional<std::string> base_kernel =
      baseline_string(json, "kernel");
  if (base_kernel.has_value() && *base_kernel != gf2_kernel().name) {
    std::printf(
        "guard: baseline kernel \"%s\" != active kernel \"%s\"; "
        "skipping (not comparable)\n",
        base_kernel->c_str(), gf2_kernel().name);
    return 0;
  }
  const std::optional<std::string> base_gf256_kernel =
      baseline_string(json, "gf256_kernel");
  if (base_gf256_kernel.has_value() &&
      *base_gf256_kernel != gf256_kernel().name) {
    std::printf(
        "guard: baseline gf256_kernel \"%s\" != active \"%s\"; "
        "skipping (not comparable)\n",
        base_gf256_kernel->c_str(), gf256_kernel().name);
    return 0;
  }

  const std::vector<CaseResult> results = run_harness();
  int failures = 0;
  if (!g_cases_filter.has_value()) {
    // Completeness: every committed case must still be measured by a
    // full harness run, or a dropped case would silently leave the gate.
    for (const std::string& name : baseline_case_names(json)) {
      const bool measured =
          std::any_of(results.begin(), results.end(),
                      [&](const CaseResult& r) { return r.name == name; });
      if (!measured) {
        std::printf("guard: %-24s in baseline but NOT MEASURED\n",
                    name.c_str());
        ++failures;
      }
    }
  }
  for (const CaseResult& r : results) {
    const std::optional<double> base =
        baseline_field(json, r.name, "mbytes_per_sec");
    if (!base.has_value()) {
      std::printf("guard: %-24s no baseline, skipped\n", r.name.c_str());
      continue;
    }
    const double floor = *base * (1.0 - max_regression);
    if (r.mbytes_per_sec < floor) {
      std::printf("guard: %-24s REGRESSED %.1f MB/s < %.1f (baseline %.1f)\n",
                  r.name.c_str(), r.mbytes_per_sec, floor, *base);
      ++failures;
    } else {
      std::printf("guard: %-24s ok %.1f MB/s (baseline %.1f)\n",
                  r.name.c_str(), r.mbytes_per_sec, *base);
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "guard: %d case(s) regressed > %.0f%%\n", failures,
                 max_regression * 100.0);
    return 1;
  }
  std::printf("guard: all cases within %.0f%% of baseline\n",
              max_regression * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<std::string> symbol_bytes =
      flag_value(argc, argv, "symbol-bytes");
  if (symbol_bytes.has_value()) {
    g_symbol_bytes = static_cast<std::size_t>(std::stoul(*symbol_bytes));
    FMTCP_CHECK(g_symbol_bytes > 0);
  }
  const std::optional<std::string> cases = flag_value(argc, argv, "cases");
  if (cases.has_value()) {
    try {
      g_cases_filter.emplace(*cases);
    } catch (const std::regex_error& e) {
      std::fprintf(stderr, "bad --cases regex '%s': %s\n", cases->c_str(),
                   e.what());
      return 2;
    }
  }
  const std::optional<std::string> json_path =
      flag_value(argc, argv, "json");
  const std::optional<std::string> guard_path =
      flag_value(argc, argv, "guard");
  if (guard_path.has_value()) {
    const std::optional<std::string> tolerance =
        flag_value(argc, argv, "max-regression");
    const double max_regression =
        tolerance.has_value() ? std::stod(*tolerance) : 0.20;
    return run_guard(*guard_path, max_regression);
  }
  if (json_path.has_value()) {
    bool merge_min = false;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--merge-min") == 0) merge_min = true;
    }
    std::printf("decode throughput (%zu-byte symbols, %s kernel, cpu %s):\n",
                g_symbol_bytes, fmtcp::fountain::gf2_kernel().name,
                fmtcp::cpu_features_string().c_str());
    write_json(*json_path, run_harness(), merge_min);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
