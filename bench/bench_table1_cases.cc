// Table I — the full metric matrix over the paper's eight test cases,
// for all four protocols (FMTCP, IETF-MPTCP, plus the HMTP and
// fixed-rate comparators from the related-work discussion).
#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SweepRunner runner(jobs_from_flags(flags));

  print_header("Table I test-case matrix: all protocols, all metrics");

  const Protocol protocols[] = {Protocol::kFmtcp, Protocol::kMptcp,
                                Protocol::kHmtp, Protocol::kFixedRate};
  for (std::size_t c = 0; c < table1_cases().size(); ++c) {
    Scenario scenario = table1_scenario(c);
    scenario.duration = 60 * kSecond;  // 4 protocols x 8 cases: keep lean.
    for (Protocol protocol : protocols) {
      runner.submit(protocol, scenario, ProtocolOptions::defaults());
    }
  }
  const std::vector<RunResult> results = runner.run();

  std::vector<std::vector<std::string>> rows;
  std::size_t i = 0;
  for (std::size_t c = 0; c < table1_cases().size(); ++c) {
    for (Protocol protocol : protocols) {
      const RunResult& r = results[i++];
      rows.push_back(
          {std::to_string(c + 1), protocol_name(protocol),
           fmt(r.goodput_MBps, 3), fmt(r.mean_delay_ms, 0),
           fmt(r.jitter_ms, 0), std::to_string(r.blocks_completed),
           fmt(r.coding_overhead(ProtocolOptions::defaults().fmtcp.block_symbols) * 100, 1),
           r.payload_ok ? "yes" : "NO"});
    }
  }
  print_table({"case", "protocol", "goodput(MB/s)", "delay(ms)",
               "jitter(ms)", "blocks", "overhead(%)", "verified"},
              rows);
  return 0;
}
