// Microbenchmarks (google-benchmark): Algorithm 1 allocation cost as the
// number of pending blocks and subflows grows — the §IV-B complexity
// claim O(m + MSS_f · log n) motivates keeping this off the critical
// path's hot loop.
#include <benchmark/benchmark.h>

#include <map>

#include "core/allocator.h"

namespace {

using namespace fmtcp;
using namespace fmtcp::core;

/// Static environment with `blocks` half-filled pending blocks and
/// `subflows` identical subflows.
class StaticEnv final : public AllocatorEnv {
 public:
  StaticEnv(std::size_t subflows, std::size_t blocks) : blocks_(blocks) {
    for (std::size_t i = 0; i < subflows; ++i) {
      SubflowSnapshot s;
      s.id = static_cast<std::uint32_t>(i);
      s.mss_payload = 1204;
      s.window_space = 4;
      s.cwnd = 10.0;
      s.edt = from_ms(50 + 30 * static_cast<std::int64_t>(i));
      s.rt = 2 * s.edt;
      s.loss = 0.02 * static_cast<double>(i);
      snaps_.push_back(s);
    }
  }

  std::vector<SubflowSnapshot> subflow_snapshots() const override {
    return snaps_;
  }
  std::optional<net::BlockId> block_at(std::size_t index) const override {
    if (index < blocks_) return index;
    return std::nullopt;
  }
  std::uint32_t block_k_hat(net::BlockId) const override { return 64; }
  double real_k_tilde(net::BlockId id) const override {
    return id == 0 ? 60.0 : 0.0;  // Front block nearly done.
  }
  double delta_hat() const override { return 0.05; }
  std::size_t symbol_wire_bytes() const override { return 172; }

 private:
  std::vector<SubflowSnapshot> snaps_;
  std::size_t blocks_;
};

void BM_AllocatePacket(benchmark::State& state) {
  StaticEnv env(static_cast<std::size_t>(state.range(0)),
                static_cast<std::size_t>(state.range(1)));
  Allocator allocator(env);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(0));
  }
}
BENCHMARK(BM_AllocatePacket)
    ->Args({2, 8})
    ->Args({2, 64})
    ->Args({2, 512})
    ->Args({4, 64})
    ->Args({8, 64});

void BM_AllocateForSlowestSubflow(benchmark::State& state) {
  // Worst case: the pending subflow has the highest EAT, so the virtual
  // loop walks the other subflows' windows first.
  StaticEnv env(static_cast<std::size_t>(state.range(0)), 256);
  Allocator allocator(env);
  const auto pending =
      static_cast<std::uint32_t>(state.range(0) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(pending));
  }
}
BENCHMARK(BM_AllocateForSlowestSubflow)->Arg(2)->Arg(4)->Arg(8);

void BM_GreedyAllocate(benchmark::State& state) {
  StaticEnv env(2, static_cast<std::size_t>(state.range(0)));
  Allocator allocator(env, AllocationMode::kGreedy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocator.allocate(0));
  }
}
BENCHMARK(BM_GreedyAllocate)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
