// Ablation A2 — δ̂ sweep: the maximum acceptable decoding-failure
// probability trades redundancy (symbols sent beyond k̂) against
// stop-and-wait stalls (a too-strict δ̂ front-loads margin symbols; a
// loose δ̂ risks decode failures that cost a feedback round trip).
#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SweepRunner runner(jobs_from_flags(flags));

  print_header("Ablation A2: delta_hat sweep on test case 3 (100ms, 10%)");

  const double deltas[] = {0.30, 0.10, 0.05, 0.01, 0.001};
  std::vector<ProtocolOptions> all_options;
  for (double delta : deltas) {
    Scenario scenario = table1_scenario(2);
    scenario.duration = 60 * kSecond;
    ProtocolOptions options = ProtocolOptions::defaults();
    options.fmtcp.delta_hat = delta;
    all_options.push_back(options);
    runner.submit(Protocol::kFmtcp, scenario, options);
  }
  const std::vector<RunResult> results = runner.run();

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    rows.push_back({fmt(deltas[i], 3),
                    fmt(all_options[i].fmtcp.delta_margin_symbols(), 2),
                    fmt(r.goodput_MBps, 3), fmt(r.mean_delay_ms, 0),
                    fmt(r.jitter_ms, 0),
                    fmt(r.coding_overhead(ProtocolOptions::defaults().fmtcp.block_symbols) * 100, 1)});
  }
  print_table({"delta_hat", "margin(sym)", "goodput(MB/s)", "delay(ms)",
               "jitter(ms)", "overhead(%)"},
              rows);
  return 0;
}
