// Ablation A2 — δ̂ sweep: the maximum acceptable decoding-failure
// probability trades redundancy (symbols sent beyond k̂) against
// stop-and-wait stalls (a too-strict δ̂ front-loads margin symbols; a
// loose δ̂ risks decode failures that cost a feedback round trip).
#include "harness/printer.h"
#include "harness/runner.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main() {
  print_header("Ablation A2: delta_hat sweep on test case 3 (100ms, 10%)");

  std::vector<std::vector<std::string>> rows;
  for (double delta : {0.30, 0.10, 0.05, 0.01, 0.001}) {
    Scenario scenario = table1_scenario(2);
    scenario.duration = 60 * kSecond;
    ProtocolOptions options = ProtocolOptions::defaults();
    options.fmtcp.delta_hat = delta;
    const RunResult r = run_scenario(Protocol::kFmtcp, scenario, options);
    rows.push_back({fmt(delta, 3),
                    fmt(options.fmtcp.delta_margin_symbols(), 2),
                    fmt(r.goodput_MBps, 3), fmt(r.mean_delay_ms, 0),
                    fmt(r.jitter_ms, 0),
                    fmt(r.coding_overhead(ProtocolOptions::defaults().fmtcp.block_symbols) * 100, 1)});
  }
  print_table({"delta_hat", "margin(sym)", "goodput(MB/s)", "delay(ms)",
               "jitter(ms)", "overhead(%)"},
              rows);
  return 0;
}
