// Ablation A6 — bursty (Gilbert–Elliott) loss instead of the paper's
// i.i.d. erasures: wireless links lose packets in fades, which stresses
// the coding protocols differently (a burst can erase many symbols of
// one block at once).
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/hmtp.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "core/connection.h"
#include "harness/printer.h"
#include "harness/scenario.h"
#include "harness/sweep.h"
#include "mptcp/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

/// Average loss ~10% in all three shapes; burstiness varies.
struct BurstShape {
  const char* name;
  double p_good_to_bad;
  double p_bad_to_good;
  double loss_bad;
};

struct CellResult {
  double goodput = 0.0;
  double delay = 0.0;
  double jitter = 0.0;
};

/// One fully self-contained simulation (these cells bypass run_scenario
/// because Scenario cannot express a Gilbert–Elliott loss model).
CellResult run_cell(const BurstShape& shape, Protocol protocol) {
  Scenario scenario;
  scenario.path2 = {100.0, 0.0};
  scenario.duration = 60 * kSecond;
  scenario.seed = 13;

  const ProtocolOptions options = ProtocolOptions::defaults();
  sim::Simulator simulator(scenario.seed);
  net::Topology topology(simulator,
                         {scenario.path_config(scenario.path1),
                          scenario.path_config(scenario.path2)});
  net::GilbertElliottLoss::Config ge;
  ge.p_good_to_bad = shape.p_good_to_bad;
  ge.p_bad_to_good = shape.p_bad_to_good;
  ge.loss_bad = shape.loss_bad;
  topology.path(1).set_forward_loss(
      std::make_unique<net::GilbertElliottLoss>(ge));

  CellResult result;
  if (protocol == Protocol::kFmtcp) {
    core::FmtcpConnectionConfig config;
    config.params = options.fmtcp;
    config.subflow = options.subflow;
    core::FmtcpConnection connection(simulator, topology, config);
    connection.start();
    simulator.run_until(scenario.duration);
    result.goodput = connection.goodput().mean_rate_MBps(scenario.duration);
    result.delay = connection.block_delays().mean_delay_ms();
    result.jitter = connection.block_delays().jitter_ms();
  } else {
    mptcp::MptcpConnectionConfig config;
    config.subflow = options.subflow;
    config.sender.segment_bytes = options.subflow.mss_payload;
    config.sender.metric_block_bytes = options.fmtcp.block_bytes();
    config.receive_buffer_bytes = options.mptcp_receive_buffer;
    mptcp::MptcpConnection connection(simulator, topology, config);
    connection.start();
    simulator.run_until(scenario.duration);
    result.goodput = connection.goodput().mean_rate_MBps(scenario.duration);
    result.delay = connection.block_delays().mean_delay_ms();
    result.jitter = connection.block_delays().jitter_ms();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  unsigned jobs = jobs_from_flags(flags);
  if (jobs == 0) jobs = ThreadPool::hardware_threads();

  print_header(
      "Ablation A6: bursty (Gilbert-Elliott) loss on subflow 2, ~10% avg");
  // Stationary bad fraction p_gb/(p_gb+p_bg); loss = fraction * loss_bad.
  const BurstShape shapes[] = {
      {"near-iid (short bad)", 0.10, 0.50, 0.60},   // ~16.7% bad * 0.6.
      {"moderate bursts", 0.02, 0.10, 0.60},        // Same avg, longer.
      {"long fades", 0.005, 0.025, 0.60},           // Multi-packet fades.
  };
  const Protocol protocols[] = {Protocol::kFmtcp, Protocol::kMptcp};

  std::vector<CellResult> results(std::size(shapes) * std::size(protocols));
  const auto cell = [&](std::size_t i) {
    results[i] =
        run_cell(shapes[i / std::size(protocols)], protocols[i % 2]);
  };
  if (jobs <= 1) {
    for (std::size_t i = 0; i < results.size(); ++i) cell(i);
  } else {
    ThreadPool pool(std::min<unsigned>(
        jobs, static_cast<unsigned>(results.size())));
    for (std::size_t i = 0; i < results.size(); ++i) {
      pool.submit([&cell, i] { cell(i); });
    }
    pool.wait();
  }

  std::size_t i = 0;
  for (const BurstShape& shape : shapes) {
    for (Protocol protocol : protocols) {
      const CellResult& r = results[i++];
      std::printf(
          "%-22s %-11s %.3f MB/s  delay %4.0f ms  jitter %4.0f ms\n",
          shape.name, protocol_name(protocol), r.goodput, r.delay,
          r.jitter);
    }
  }
  std::printf(
      "\nLonger fades concentrate erasures inside single blocks: FMTCP "
      "needs bigger top-ups per block but never retransmits; MPTCP's\n"
      "losses compound into RTO chains on the same segments.\n");
  return 0;
}
