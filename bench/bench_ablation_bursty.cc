// Ablation A6 — bursty (Gilbert–Elliott) loss instead of the paper's
// i.i.d. erasures: wireless links lose packets in fades, which stresses
// the coding protocols differently (a burst can erase many symbols of
// one block at once).
#include <cstdio>
#include <memory>

#include "baselines/hmtp.h"
#include "core/connection.h"
#include "harness/printer.h"
#include "harness/scenario.h"
#include "mptcp/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

/// Average loss ~10% in all three shapes; burstiness varies.
struct BurstShape {
  const char* name;
  double p_good_to_bad;
  double p_bad_to_good;
  double loss_bad;
};

void run_shape(const BurstShape& shape) {
  for (Protocol protocol : {Protocol::kFmtcp, Protocol::kMptcp}) {
    Scenario scenario;
    scenario.path2 = {100.0, 0.0};
    scenario.duration = 60 * kSecond;
    scenario.seed = 13;

    const ProtocolOptions options = ProtocolOptions::defaults();
    sim::Simulator simulator(scenario.seed);
    net::Topology topology(simulator,
                           {scenario.path_config(scenario.path1),
                            scenario.path_config(scenario.path2)});
    net::GilbertElliottLoss::Config ge;
    ge.p_good_to_bad = shape.p_good_to_bad;
    ge.p_bad_to_good = shape.p_bad_to_good;
    ge.loss_bad = shape.loss_bad;
    topology.path(1).set_forward_loss(
        std::make_unique<net::GilbertElliottLoss>(ge));

    double goodput = 0.0;
    double delay = 0.0;
    double jitter = 0.0;
    if (protocol == Protocol::kFmtcp) {
      core::FmtcpConnectionConfig config;
      config.params = options.fmtcp;
      config.subflow = options.subflow;
      core::FmtcpConnection connection(simulator, topology, config);
      connection.start();
      simulator.run_until(scenario.duration);
      goodput = connection.goodput().mean_rate_MBps(scenario.duration);
      delay = connection.block_delays().mean_delay_ms();
      jitter = connection.block_delays().jitter_ms();
    } else {
      mptcp::MptcpConnectionConfig config;
      config.subflow = options.subflow;
      config.sender.segment_bytes = options.subflow.mss_payload;
      config.sender.metric_block_bytes = options.fmtcp.block_bytes();
      config.receive_buffer_bytes = options.mptcp_receive_buffer;
      mptcp::MptcpConnection connection(simulator, topology, config);
      connection.start();
      simulator.run_until(scenario.duration);
      goodput = connection.goodput().mean_rate_MBps(scenario.duration);
      delay = connection.block_delays().mean_delay_ms();
      jitter = connection.block_delays().jitter_ms();
    }
    std::printf("%-22s %-11s %.3f MB/s  delay %4.0f ms  jitter %4.0f ms\n",
                shape.name, protocol_name(protocol), goodput, delay,
                jitter);
  }
}

}  // namespace

int main() {
  print_header(
      "Ablation A6: bursty (Gilbert-Elliott) loss on subflow 2, ~10% avg");
  // Stationary bad fraction p_gb/(p_gb+p_bg); loss = fraction * loss_bad.
  const BurstShape shapes[] = {
      {"near-iid (short bad)", 0.10, 0.50, 0.60},   // ~16.7% bad * 0.6.
      {"moderate bursts", 0.02, 0.10, 0.60},        // Same avg, longer.
      {"long fades", 0.005, 0.025, 0.60},           // Multi-packet fades.
  };
  for (const BurstShape& shape : shapes) run_shape(shape);
  std::printf(
      "\nLonger fades concentrate erasures inside single blocks: FMTCP "
      "needs bigger top-ups per block but never retransmits; MPTCP's\n"
      "losses compound into RTO chains on the same segments.\n");
  return 0;
}
