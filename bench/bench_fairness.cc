// Fairness on a shared bottleneck (§III-A / §II): FMTCP claims its
// coding avoids retransmissions "without doing harm to the fairness of
// transmission". Two single-path connections compete on one link; Jain's
// index near 1 and a ~50% share mean the coded flow is TCP-friendly.
#include <cstdio>

#include "harness/fairness.h"
#include "harness/printer.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

void run_matchup(const char* title, Protocol a, Protocol b, double loss) {
  FairnessConfig config;
  config.protocol_a = a;
  config.protocol_b = b;
  config.loss_rate = loss;
  config.seed = 11;
  const FairnessResult r = run_fairness(config);
  std::printf("%-28s loss=%2.0f%%  A=%.3f MB/s  B=%.3f MB/s  "
              "shareA=%.2f  Jain=%.3f\n",
              title, loss * 100, r.goodput_a_MBps, r.goodput_b_MBps,
              r.share_a(), r.jain_index());
}

}  // namespace

int main() {
  print_header("Shared-bottleneck fairness (two flows, one 5 Mb/s link)");
  for (double loss : {0.0, 0.02, 0.05}) {
    run_matchup("TCP vs TCP (sanity)", Protocol::kMptcp, Protocol::kMptcp,
                loss);
    run_matchup("FMTCP vs TCP", Protocol::kFmtcp, Protocol::kMptcp, loss);
    run_matchup("FMTCP vs FMTCP", Protocol::kFmtcp, Protocol::kFmtcp,
                loss);
  }
  std::printf(
      "\nFMTCP runs the same Reno congestion control per subflow, so its "
      "share should track a plain TCP flow's (Jain close to 1).\n");
  return 0;
}
