// Ablation A5 — the extension features beyond the paper's baseline:
// SACK, CUBIC, delayed ACKs, the systematic fountain code, coupled LIA,
// and MPTCP opportunistic reinjection. Each is toggled on the default
// operating point (Table-I case 3 unless noted) to show its marginal
// effect — including how much of FMTCP's advantage a *modernised* MPTCP
// (SACK + reinjection) claws back.
#include <cstdio>

#include "harness/printer.h"
#include "harness/runner.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

std::vector<std::string> row(const char* name, const RunResult& r) {
  return {name,
          fmt(r.goodput_MBps, 3),
          fmt(r.mean_delay_ms, 0),
          fmt(r.jitter_ms, 0),
          fmt(r.max_delay_ms, 0)};
}

}  // namespace

int main() {
  Scenario scenario = table1_scenario(2);  // 100 ms, 10%.
  scenario.duration = 60 * kSecond;

  {
    print_header("FMTCP variants (case 3: 100ms, 10%)");
    std::vector<std::vector<std::string>> rows;
    {
      const RunResult r = run_scenario(Protocol::kFmtcp, scenario);
      rows.push_back(row("baseline (Reno, dense code)", r));
    }
    {
      ProtocolOptions o = ProtocolOptions::defaults();
      o.sack = true;
      rows.push_back(row("+ SACK", run_scenario(Protocol::kFmtcp,
                                                scenario, o)));
    }
    {
      ProtocolOptions o = ProtocolOptions::defaults();
      o.fmtcp.systematic = true;
      rows.push_back(row("+ systematic code",
                         run_scenario(Protocol::kFmtcp, scenario, o)));
    }
    {
      ProtocolOptions o = ProtocolOptions::defaults();
      o.subflow.congestion = tcp::CongestionAlgo::kCubic;
      rows.push_back(row("+ CUBIC", run_scenario(Protocol::kFmtcp,
                                                 scenario, o)));
    }
    {
      ProtocolOptions o = ProtocolOptions::defaults();
      o.fmtcp_use_lia = true;
      rows.push_back(row("+ LIA coupling",
                         run_scenario(Protocol::kFmtcp, scenario, o)));
    }
    {
      ProtocolOptions o = ProtocolOptions::defaults();
      o.delayed_acks = true;
      rows.push_back(row("+ delayed ACKs",
                         run_scenario(Protocol::kFmtcp, scenario, o)));
    }
    print_table({"variant", "goodput(MB/s)", "delay(ms)", "jitter(ms)",
                 "max delay(ms)"},
                rows);
  }

  {
    print_header("IETF-MPTCP variants (case 3), vs FMTCP baseline");
    std::vector<std::vector<std::string>> rows;
    const RunResult fmtcp_base = run_scenario(Protocol::kFmtcp, scenario);
    rows.push_back(row("FMTCP baseline (reference)", fmtcp_base));
    {
      rows.push_back(row("MPTCP baseline",
                         run_scenario(Protocol::kMptcp, scenario)));
    }
    {
      ProtocolOptions o = ProtocolOptions::defaults();
      o.sack = true;
      rows.push_back(row("MPTCP + SACK",
                         run_scenario(Protocol::kMptcp, scenario, o)));
    }
    {
      ProtocolOptions o = ProtocolOptions::defaults();
      o.mptcp_reinjection = true;
      rows.push_back(row("MPTCP + reinjection",
                         run_scenario(Protocol::kMptcp, scenario, o)));
    }
    {
      ProtocolOptions o = ProtocolOptions::defaults();
      o.sack = true;
      o.mptcp_reinjection = true;
      rows.push_back(row("MPTCP + SACK + reinjection",
                         run_scenario(Protocol::kMptcp, scenario, o)));
    }
    {
      ProtocolOptions o = ProtocolOptions::defaults();
      o.mptcp_use_lia = true;
      rows.push_back(row("MPTCP + LIA",
                         run_scenario(Protocol::kMptcp, scenario, o)));
    }
    print_table({"variant", "goodput(MB/s)", "delay(ms)", "jitter(ms)",
                 "max delay(ms)"},
                rows);
    std::printf(
        "\nEven a modernised MPTCP narrows but does not close the gap: "
        "retransmissions still anchor urgent data to the lossy path,\n"
        "whereas FMTCP replaces them with fungible symbols.\n");
  }
  return 0;
}
