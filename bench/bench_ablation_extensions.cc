// Ablation A5 — the extension features beyond the paper's baseline:
// SACK, CUBIC, delayed ACKs, the systematic fountain code, coupled LIA,
// and MPTCP opportunistic reinjection. Each is toggled on the default
// operating point (Table-I case 3 unless noted) to show its marginal
// effect — including how much of FMTCP's advantage a *modernised* MPTCP
// (SACK + reinjection) claws back.
#include <cstdio>

#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

std::vector<std::string> row(const char* name, const RunResult& r) {
  return {name,
          fmt(r.goodput_MBps, 3),
          fmt(r.mean_delay_ms, 0),
          fmt(r.jitter_ms, 0),
          fmt(r.max_delay_ms, 0)};
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SweepRunner runner(jobs_from_flags(flags));

  Scenario scenario = table1_scenario(2);  // 100 ms, 10%.
  scenario.duration = 60 * kSecond;

  // FMTCP variants.
  struct Cell {
    const char* name;
    Protocol protocol;
    ProtocolOptions options;
  };
  std::vector<Cell> cells;
  const auto add = [&](const char* name, Protocol protocol,
                       ProtocolOptions options) {
    cells.push_back({name, protocol, options});
    runner.submit(protocol, scenario, options);
  };

  add("baseline (Reno, dense code)", Protocol::kFmtcp,
      ProtocolOptions::defaults());
  {
    ProtocolOptions o = ProtocolOptions::defaults();
    o.sack = true;
    add("+ SACK", Protocol::kFmtcp, o);
  }
  {
    ProtocolOptions o = ProtocolOptions::defaults();
    o.fmtcp.systematic = true;
    add("+ systematic code", Protocol::kFmtcp, o);
  }
  {
    ProtocolOptions o = ProtocolOptions::defaults();
    o.subflow.congestion = tcp::CongestionAlgo::kCubic;
    add("+ CUBIC", Protocol::kFmtcp, o);
  }
  {
    ProtocolOptions o = ProtocolOptions::defaults();
    o.fmtcp_use_lia = true;
    add("+ LIA coupling", Protocol::kFmtcp, o);
  }
  {
    ProtocolOptions o = ProtocolOptions::defaults();
    o.delayed_acks = true;
    add("+ delayed ACKs", Protocol::kFmtcp, o);
  }
  const std::size_t fmtcp_variants = cells.size();

  // MPTCP variants (FMTCP baseline re-printed as the reference row; it
  // reuses the first result rather than re-running).
  add("MPTCP baseline", Protocol::kMptcp, ProtocolOptions::defaults());
  {
    ProtocolOptions o = ProtocolOptions::defaults();
    o.sack = true;
    add("MPTCP + SACK", Protocol::kMptcp, o);
  }
  {
    ProtocolOptions o = ProtocolOptions::defaults();
    o.mptcp_reinjection = true;
    add("MPTCP + reinjection", Protocol::kMptcp, o);
  }
  {
    ProtocolOptions o = ProtocolOptions::defaults();
    o.sack = true;
    o.mptcp_reinjection = true;
    add("MPTCP + SACK + reinjection", Protocol::kMptcp, o);
  }
  {
    ProtocolOptions o = ProtocolOptions::defaults();
    o.mptcp_use_lia = true;
    add("MPTCP + LIA", Protocol::kMptcp, o);
  }

  const std::vector<RunResult> results = runner.run();

  print_header("FMTCP variants (case 3: 100ms, 10%)");
  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < fmtcp_variants; ++i) {
    rows.push_back(row(cells[i].name, results[i]));
  }
  print_table({"variant", "goodput(MB/s)", "delay(ms)", "jitter(ms)",
               "max delay(ms)"},
              rows);

  print_header("IETF-MPTCP variants (case 3), vs FMTCP baseline");
  std::vector<std::vector<std::string>> rows2;
  rows2.push_back(row("FMTCP baseline (reference)", results[0]));
  for (std::size_t i = fmtcp_variants; i < cells.size(); ++i) {
    rows2.push_back(row(cells[i].name, results[i]));
  }
  print_table({"variant", "goodput(MB/s)", "delay(ms)", "jitter(ms)",
               "max delay(ms)"},
              rows2);
  std::printf(
      "\nEven a modernised MPTCP narrows but does not close the gap: "
      "retransmissions still anchor urgent data to the lossy path,\n"
      "whereas FMTCP replaces them with fungible symbols.\n");
  return 0;
}
