// Figure 5 — Average block delivery delay of FMTCP vs IETF-MPTCP over
// the Table-I test cases (3 seeds per cell, parallel; mean ± sd). A
// block's delivery delay runs from the first transmission of its data to
// the sender receiving the ACK confirming the whole block (decode ACK
// for FMTCP; cumulative data ACK past the block end for MPTCP, whose
// stream is partitioned into equal blocks).
//
// Paper shape: MPTCP's delay is higher everywhere and grows considerably
// as subflow-2 quality falls; FMTCP stays low and flat.
#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const unsigned parallel_jobs = jobs_from_flags(flags);

  print_header("Figure 5: average block delivery delay (ms), Table I");

  const std::vector<std::uint64_t> seeds = {1001, 2002, 3003};
  std::vector<SweepJob> jobs;
  for (std::size_t c = 0; c < table1_cases().size(); ++c) {
    for (Protocol protocol : {Protocol::kFmtcp, Protocol::kMptcp}) {
      for (std::uint64_t seed : seeds) {
        SweepJob job;
        job.protocol = protocol;
        job.scenario = table1_scenario(c);
        job.scenario.seed = seed;
        jobs.push_back(job);
      }
    }
  }
  const std::vector<RunResult> results = run_parallel(jobs, parallel_jobs);

  const auto cell = [&](std::size_t c, int protocol_index,
                        double (*metric)(const RunResult&)) {
    std::vector<RunResult> slice(
        results.begin() +
            static_cast<long>((c * 2 + protocol_index) * seeds.size()),
        results.begin() +
            static_cast<long>((c * 2 + protocol_index + 1) * seeds.size()));
    return aggregate(slice, metric);
  };
  const auto mean_delay = [](const RunResult& r) { return r.mean_delay_ms; };
  const auto max_delay = [](const RunResult& r) { return r.max_delay_ms; };

  std::vector<std::vector<std::string>> rows;
  for (std::size_t c = 0; c < table1_cases().size(); ++c) {
    const Scenario scenario = table1_scenario(c);
    rows.push_back(
        {std::to_string(c + 1), fmt(scenario.path2.delay_ms, 0),
         fmt(scenario.path2.loss * 100, 0),
         fmt(cell(c, 0, mean_delay).mean, 1) + "±" +
             fmt(cell(c, 0, mean_delay).stddev, 1),
         fmt(cell(c, 1, mean_delay).mean, 1) + "±" +
             fmt(cell(c, 1, mean_delay).stddev, 1),
         fmt(cell(c, 0, max_delay).mean, 0),
         fmt(cell(c, 1, max_delay).mean, 0)});
  }
  print_table({"case", "delay2(ms)", "loss2(%)", "FMTCP mean",
               "MPTCP mean", "FMTCP max", "MPTCP max"},
              rows);
  return 0;
}
