// Tiny helpers shared by the microbench --json/--guard harnesses
// (bench_codec_micro, bench_sim_micro): reading a committed baseline
// JSON, pulling single fields back out of it with plain string search
// (the files are machine-written, so no general parser is needed), and
// ad-hoc --flag=value extraction that coexists with google-benchmark's
// own argv handling.
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace fmtcp::benchjson {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Finds `"name": {... "key": <value>` in a previously written JSON file.
inline std::optional<double> baseline_field(const std::string& json,
                                            const std::string& name,
                                            const std::string& key) {
  const std::size_t at = json.find("\"" + name + "\"");
  if (at == std::string::npos) return std::nullopt;
  const std::string field_key = "\"" + key + "\":";
  const std::size_t field = json.find(field_key, at);
  if (field == std::string::npos) return std::nullopt;
  return std::strtod(json.c_str() + field + field_key.size(), nullptr);
}

/// Finds a top-level `"key": "value"` string field.
inline std::optional<std::string> baseline_string(const std::string& json,
                                                  const std::string& key) {
  const std::string field_key = "\"" + key + "\": \"";
  const std::size_t at = json.find(field_key);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t begin = at + field_key.size();
  const std::size_t end = json.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return json.substr(begin, end - begin);
}

inline std::optional<std::string> flag_value(int argc, char** argv,
                                             const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

}  // namespace fmtcp::benchjson
