// Tiny helpers shared by the microbench --json/--guard harnesses
// (bench_codec_micro, bench_sim_micro): reading a committed baseline
// JSON, pulling single fields back out of it with plain string search
// (the files are machine-written, so no general parser is needed), and
// ad-hoc --flag=value extraction that coexists with google-benchmark's
// own argv handling.
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace fmtcp::benchjson {

inline std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Finds `"name": {... "key": <value>` in a previously written JSON file.
inline std::optional<double> baseline_field(const std::string& json,
                                            const std::string& name,
                                            const std::string& key) {
  const std::size_t at = json.find("\"" + name + "\"");
  if (at == std::string::npos) return std::nullopt;
  const std::string field_key = "\"" + key + "\":";
  const std::size_t field = json.find(field_key, at);
  if (field == std::string::npos) return std::nullopt;
  return std::strtod(json.c_str() + field + field_key.size(), nullptr);
}

/// Finds a top-level `"key": "value"` string field.
inline std::optional<std::string> baseline_string(const std::string& json,
                                                  const std::string& key) {
  const std::string field_key = "\"" + key + "\": \"";
  const std::size_t at = json.find(field_key);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t begin = at + field_key.size();
  const std::size_t end = json.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return json.substr(begin, end - begin);
}

/// Lists every case name under the `"cases": {` object of a previously
/// written baseline (machine-written format: one `"name": {...}` entry
/// per line). Used by guard runs to verify the gate still measures
/// every committed case.
inline std::vector<std::string> baseline_case_names(const std::string& json) {
  std::vector<std::string> names;
  const std::size_t cases = json.find("\"cases\"");
  if (cases == std::string::npos) return names;
  std::size_t pos = json.find('{', cases);
  if (pos == std::string::npos) return names;
  ++pos;
  while (true) {
    const std::size_t q1 = json.find('"', pos);
    if (q1 == std::string::npos) break;
    const std::size_t q2 = json.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    names.push_back(json.substr(q1 + 1, q2 - q1 - 1));
    const std::size_t close = json.find('}', q2);  // End of the entry.
    if (close == std::string::npos) break;
    pos = close + 1;
    const std::size_t next = json.find_first_not_of(",\n\r\t ", pos);
    if (next == std::string::npos || json[next] == '}') break;
  }
  return names;
}

inline std::optional<std::string> flag_value(int argc, char** argv,
                                             const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return std::nullopt;
}

}  // namespace fmtcp::benchjson
