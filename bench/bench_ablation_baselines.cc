// Ablation A4 — FMTCP vs the related-work coding baselines (§II/§III-B):
// HMTP's stop-and-wait fountain and fixed-rate FEC with ARQ top-ups.
//
// Two regimes: (1) heterogeneous paths (Table-I case 3), where a good
// path can mask fixed-rate's weakness; (2) both paths lossy with the
// loss rate underestimated — the Eq. 5–6 regime where fixed-rate needs
// ARQ rounds while the rateless fountain just keeps streaming.
#include <cstdio>

#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

constexpr Protocol kProtocols[] = {Protocol::kFmtcp, Protocol::kHmtp,
                                   Protocol::kFixedRate, Protocol::kMptcp};

void print_regime(const char* title, const std::vector<RunResult>& results,
                  std::size_t& i) {
  print_header(title);
  std::vector<std::vector<std::string>> rows;
  for (Protocol protocol : kProtocols) {
    const RunResult& r = results[i++];
    rows.push_back({protocol_name(protocol), fmt(r.goodput_MBps, 3),
                    fmt(r.mean_delay_ms, 0), fmt(r.jitter_ms, 0),
                    fmt(r.max_delay_ms, 0),
                    fmt(r.coding_overhead(ProtocolOptions::defaults().fmtcp.block_symbols) * 100, 1)});
  }
  print_table({"protocol", "goodput(MB/s)", "delay(ms)", "jitter(ms)",
               "max delay(ms)", "overhead(%)"},
              rows);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SweepRunner runner(jobs_from_flags(flags));

  Scenario hetero = table1_scenario(2);
  hetero.duration = 60 * kSecond;
  for (Protocol protocol : kProtocols) {
    runner.submit(protocol, hetero, ProtocolOptions::defaults());
  }

  Scenario lossy;
  lossy.path1 = {100.0, 0.15};
  lossy.path2 = {100.0, 0.15};
  lossy.duration = 60 * kSecond;
  lossy.seed = 9;
  ProtocolOptions lossy_options = ProtocolOptions::defaults();
  lossy_options.fixed_rate.assumed_loss = 0.02;  // Underestimated (Eq. 5-6).
  for (Protocol protocol : kProtocols) {
    runner.submit(protocol, lossy, lossy_options);
  }

  const std::vector<RunResult> results = runner.run();
  std::size_t i = 0;
  print_regime("Ablation A4a: heterogeneous paths (case 3: 100ms, 10%)",
               results, i);
  print_regime("Ablation A4b: both paths 15% lossy, fixed-rate assumes 2%",
               results, i);
  std::printf(
      "\nThe fixed-rate scheme's delay tail reflects its ARQ top-up "
      "rounds (Eq. 5-6 regime: loss underestimated).\n");
  return 0;
}
