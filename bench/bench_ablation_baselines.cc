// Ablation A4 — FMTCP vs the related-work coding baselines (§II/§III-B):
// HMTP's stop-and-wait fountain and fixed-rate FEC with ARQ top-ups.
//
// Two regimes: (1) heterogeneous paths (Table-I case 3), where a good
// path can mask fixed-rate's weakness; (2) both paths lossy with the
// loss rate underestimated — the Eq. 5–6 regime where fixed-rate needs
// ARQ rounds while the rateless fountain just keeps streaming.
#include <cstdio>

#include "harness/printer.h"
#include "harness/runner.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

void run_regime(const char* title, const Scenario& scenario,
                const ProtocolOptions& options) {
  print_header(title);
  std::vector<std::vector<std::string>> rows;
  for (Protocol protocol : {Protocol::kFmtcp, Protocol::kHmtp,
                            Protocol::kFixedRate, Protocol::kMptcp}) {
    const RunResult r = run_scenario(protocol, scenario, options);
    rows.push_back({protocol_name(protocol), fmt(r.goodput_MBps, 3),
                    fmt(r.mean_delay_ms, 0), fmt(r.jitter_ms, 0),
                    fmt(r.max_delay_ms, 0),
                    fmt(r.coding_overhead(ProtocolOptions::defaults().fmtcp.block_symbols) * 100, 1)});
  }
  print_table({"protocol", "goodput(MB/s)", "delay(ms)", "jitter(ms)",
               "max delay(ms)", "overhead(%)"},
              rows);
}

}  // namespace

int main() {
  {
    Scenario scenario = table1_scenario(2);
    scenario.duration = 60 * kSecond;
    run_regime("Ablation A4a: heterogeneous paths (case 3: 100ms, 10%)",
               scenario, ProtocolOptions::defaults());
  }
  {
    Scenario scenario;
    scenario.path1 = {100.0, 0.15};
    scenario.path2 = {100.0, 0.15};
    scenario.duration = 60 * kSecond;
    scenario.seed = 9;
    ProtocolOptions options = ProtocolOptions::defaults();
    options.fixed_rate.assumed_loss = 0.02;  // Underestimated (Eq. 5-6).
    run_regime(
        "Ablation A4b: both paths 15% lossy, fixed-rate assumes 2%",
        scenario, options);
    std::printf(
        "\nThe fixed-rate scheme's delay tail reflects its ARQ top-up "
        "rounds (Eq. 5-6 regime: loss underestimated).\n");
  }
  return 0;
}
