// Ablation A1 — value of the EAT-based virtual allocation (Algorithm 1)
// against a greedy allocator (serve the pulling subflow the first
// incomplete blocks, no cross-subflow prediction) and against HMTP's
// no-allocation stop-and-wait, across the Table-I cases.
//
// Expected: greedy loses most on delay/jitter in the asymmetric cases —
// it lets the lossy subflow carry the most urgent block — while EAT
// reserves urgent blocks for the path that will deliver them soonest.
#include "common/flags.h"
#include "core/params.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SweepRunner runner(jobs_from_flags(flags));

  print_header("Ablation A1: EAT virtual allocation vs greedy vs HMTP");

  const std::size_t cases[] = {0u, 3u, 7u};  // Cases 1, 4, 8.
  for (std::size_t c : cases) {
    Scenario scenario = table1_scenario(c);
    scenario.duration = 60 * kSecond;

    ProtocolOptions greedy_options = ProtocolOptions::defaults();
    greedy_options.fmtcp.allocation = core::AllocationMode::kGreedy;

    runner.submit(Protocol::kFmtcp, scenario, ProtocolOptions::defaults());
    runner.submit(Protocol::kFmtcp, scenario, greedy_options);
    runner.submit(Protocol::kHmtp, scenario, ProtocolOptions::defaults());
  }

  // Margin-starved variant (printed second, queued in the same sweep).
  // With the default δ̂ the margin symbols already cover a misplaced
  // packet, so EAT ≈ greedy above (an honest finding). Starve the margin
  // (δ̂ = 0.45, under one extra symbol) on a severely asymmetric pair of
  // paths: now a greedy sender that lets the slow lossy subflow carry
  // the first pending block stalls that block's completion, while the
  // EAT allocator routes it to the fast path.
  Scenario hard;
  hard.path1 = {100.0, 0.0};
  hard.path2 = {300.0, 0.20};
  hard.duration = 60 * kSecond;
  hard.seed = 5;
  for (bool greedy : {false, true}) {
    ProtocolOptions options = ProtocolOptions::defaults();
    options.fmtcp.delta_hat = 0.45;
    options.fmtcp.allocation = greedy ? core::AllocationMode::kGreedy
                                      : core::AllocationMode::kEatVirtual;
    runner.submit(Protocol::kFmtcp, hard, options);
  }

  const std::vector<RunResult> results = runner.run();

  std::vector<std::vector<std::string>> rows;
  std::size_t i = 0;
  for (std::size_t c : cases) {
    const auto row = [&](const char* name, const RunResult& r) {
      rows.push_back({std::to_string(c + 1), name, fmt(r.goodput_MBps, 3),
                      fmt(r.mean_delay_ms, 0), fmt(r.jitter_ms, 0),
                      fmt(r.coding_overhead(ProtocolOptions::defaults().fmtcp.block_symbols) * 100, 1)});
    };
    row("EAT (Alg.1)", results[i++]);
    row("greedy", results[i++]);
    row("HMTP stop&wait", results[i++]);
  }
  print_table({"case", "allocator", "goodput(MB/s)", "delay(ms)",
               "jitter(ms)", "overhead(%)"},
              rows);

  print_header("margin-starved variant: delta=0.45, path2 = 300ms / 20%");
  std::vector<std::vector<std::string>> rows2;
  for (bool greedy : {false, true}) {
    const RunResult& r = results[i++];
    rows2.push_back({greedy ? "greedy" : "EAT (Alg.1)",
                     fmt(r.goodput_MBps, 3), fmt(r.mean_delay_ms, 0),
                     fmt(r.jitter_ms, 0), fmt(r.max_delay_ms, 0)});
  }
  print_table({"allocator", "goodput(MB/s)", "delay(ms)", "jitter(ms)",
               "max delay(ms)"},
              rows2);
  return 0;
}
