// Ablation A7 — coefficient field: GF(2) vs GF(256) random linear
// coding (fig4-style loss sweep at the codec level, plus a
// protocol-level run with params.coding_field flipped).
//
// The tradeoff on record: byte coefficients make a dependent reception
// ~128× less likely per extra symbol (reception overhead → 0), but every
// elimination/composition step runs through GF(256) multiply kernels
// instead of pure XOR (decode cost up). The codec-level numbers are
// deterministic counts (symbols, redundancy, kernel bytes), so the
// committed BENCH_gf256_ablation.json is machine-independent.
//
//   bench_ablation_gf256 [--json=FILE] [--trials=N] [--duration=S]
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/gf256_rlc.h"
#include "fountain/random_linear.h"
#include "harness/printer.h"
#include "harness/runner.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::fountain;
using namespace fmtcp::harness;

namespace {

constexpr std::uint32_t kKs[] = {16, 64, 128};
constexpr int kLossPcts[] = {0, 5, 10, 20, 30};
constexpr std::size_t kSymbolBytes = 160;

/// Per-(field, k, loss) deterministic averages over the trial seeds.
struct SweepPoint {
  std::string name;
  double received = 0.0;        ///< Mean symbols accepted until full rank.
  double redundant = 0.0;       ///< Mean linearly dependent receptions.
  double overhead_pct = 0.0;    ///< 100·(received/k − 1).
  double payload_kernel_bytes = 0.0;  ///< Mean decode()-phase kernel bytes.
  double coeff_cost_bytes = 0.0;      ///< Mean elimination coefficient bytes.
};

/// One decode-to-completion trial; returns (received, redundant,
/// payload kernel bytes, coefficient cost bytes).
template <bool kGf256>
void run_trial(std::uint32_t k, double loss, std::uint64_t seed,
               SweepPoint& acc) {
  Rng channel(seed * 7919 + 13);
  const BlockData block = make_deterministic_block(seed, k, kSymbolBytes);
  if constexpr (kGf256) {
    Gf256RlcEncoder encoder(seed, block, Rng(seed * 31 + 7));
    Gf256RlcDecoder decoder(k, kSymbolBytes, /*track_data=*/true);
    while (!decoder.complete()) {
      net::EncodedSymbol s = encoder.next_symbol();
      if (channel.bernoulli(loss)) continue;
      decoder.add_symbol(std::move(s));
    }
    FMTCP_CHECK(decoder.decode().bytes() == block.bytes());
    acc.received += static_cast<double>(decoder.received_count());
    acc.redundant += static_cast<double>(decoder.redundant_count());
    acc.payload_kernel_bytes +=
        static_cast<double>(decoder.payload_bytes_multiplied());
    acc.coeff_cost_bytes +=
        static_cast<double>(decoder.coeff_bytes_eliminated());
  } else {
    RandomLinearEncoder encoder(seed, block, Rng(seed * 31 + 7));
    BlockDecoder decoder(k, kSymbolBytes, /*track_data=*/true);
    while (!decoder.complete()) {
      net::EncodedSymbol s = encoder.next_symbol();
      if (channel.bernoulli(loss)) continue;
      decoder.add_symbol(std::move(s));
    }
    FMTCP_CHECK(decoder.decode().bytes() == block.bytes());
    acc.received += static_cast<double>(decoder.received_count());
    acc.redundant += static_cast<double>(decoder.redundant_count());
    acc.payload_kernel_bytes +=
        static_cast<double>(decoder.payload_bytes_xored());
    // GF(2) eliminates coefficients a 64-bit word at a time.
    acc.coeff_cost_bytes +=
        static_cast<double>(decoder.coeff_word_xors()) * 8.0;
  }
}

template <bool kGf256>
SweepPoint run_point(std::uint32_t k, int loss_pct, int trials) {
  SweepPoint point;
  point.name = std::string(kGf256 ? "gf256" : "gf2") + "_k" +
               std::to_string(k) + "_p" + std::to_string(loss_pct);
  for (int t = 0; t < trials; ++t) {
    run_trial<kGf256>(k, loss_pct / 100.0,
                      static_cast<std::uint64_t>(t) + 1, point);
  }
  point.received /= trials;
  point.redundant /= trials;
  point.payload_kernel_bytes /= trials;
  point.coeff_cost_bytes /= trials;
  point.overhead_pct = 100.0 * (point.received / k - 1.0);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const int trials = flags.get_int("trials", 50, "decode trials per point");
  const double duration_s =
      flags.get_double("duration", 30.0, "protocol-level simulated seconds");
  const std::string json_path = flags.get_string(
      "json", "", "write the sweep as JSON (BENCH_gf256_ablation.json)");
  if (flags.get_bool("help", false, "show this help")) {
    std::printf("usage: %s [flags]\n%s", flags.program().c_str(),
                flags.usage().c_str());
    return 0;
  }
  for (const std::string& flag : flags.unknown_flags()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n", flag.c_str());
    return 2;
  }

  print_header(
      "Ablation A7: coefficient field GF(2) vs GF(256), erasure sweep");

  std::vector<SweepPoint> points;
  std::vector<std::vector<std::string>> rows;
  for (std::uint32_t k : kKs) {
    for (int loss_pct : kLossPcts) {
      const SweepPoint gf2 = run_point<false>(k, loss_pct, trials);
      const SweepPoint gf256 = run_point<true>(k, loss_pct, trials);
      rows.push_back(
          {std::to_string(k), std::to_string(loss_pct),
           fmt(gf2.overhead_pct, 2), fmt(gf256.overhead_pct, 2),
           fmt(gf2.redundant, 2), fmt(gf256.redundant, 2),
           fmt(gf2.payload_kernel_bytes / 1e3, 1),
           fmt(gf256.payload_kernel_bytes / 1e3, 1)});
      points.push_back(gf2);
      points.push_back(gf256);
    }
  }
  print_table({"k", "loss(%)", "ovh gf2(%)", "ovh gf256(%)", "redun gf2",
               "redun gf256", "payload gf2(KB)", "payload gf256(KB)"},
              rows);
  std::printf(
      "\n(reception overhead = symbols accepted beyond k; GF(256) payload\n"
      " bytes run through multiply kernels, GF(2) through XOR kernels)\n");

  // Protocol-level: the same FMTCP cell (test case 3: 100 ms, 10% loss)
  // with only params.coding_field flipped.
  print_header("Protocol level: fmtcp with coding_field gf2 vs gf256");
  RunResult proto[2];
  const char* field_names[2] = {"gf2", "gf256"};
  for (int f = 0; f < 2; ++f) {
    Scenario scenario = table1_scenario(2);
    scenario.duration = from_seconds(duration_s);
    ProtocolOptions options = ProtocolOptions::defaults();
    options.fmtcp.coding_field =
        f == 0 ? CodingField::kGf2 : CodingField::kGf256;
    proto[f] = run_scenario(Protocol::kFmtcp, scenario, options);
    FMTCP_CHECK(proto[f].payload_ok);
  }
  std::vector<std::vector<std::string>> proto_rows;
  const std::uint32_t k_hat = ProtocolOptions::defaults().fmtcp.block_symbols;
  for (int f = 0; f < 2; ++f) {
    proto_rows.push_back(
        {field_names[f], fmt(proto[f].goodput_MBps, 4),
         fmt(proto[f].mean_delay_ms, 1), fmt(proto[f].jitter_ms, 1),
         fmt(proto[f].coding_overhead(k_hat) * 100, 2),
         std::to_string(proto[f].redundant_symbols)});
  }
  print_table({"field", "goodput(MB/s)", "delay(ms)", "jitter(ms)",
               "overhead(%)", "redundant"},
              proto_rows);

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::perror(("cannot open " + json_path).c_str());
      return 1;
    }
    std::fprintf(file,
                 "{\n"
                 "  \"symbol_bytes\": %zu,\n"
                 "  \"trials\": %d,\n"
                 "  \"cases\": {\n",
                 kSymbolBytes, trials);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      std::fprintf(file,
                   "    \"%s\": {\"received\": %.2f, \"redundant\": %.2f, "
                   "\"overhead_pct\": %.3f, \"payload_kernel_bytes\": %.0f, "
                   "\"coeff_cost_bytes\": %.0f}%s\n",
                   p.name.c_str(), p.received, p.redundant, p.overhead_pct,
                   p.payload_kernel_bytes, p.coeff_cost_bytes,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(file, "  },\n  \"protocol\": {\n");
    for (int f = 0; f < 2; ++f) {
      std::fprintf(file,
                   "    \"%s\": {\"goodput_MBps\": %.4f, "
                   "\"mean_delay_ms\": %.1f, \"overhead_pct\": %.2f, "
                   "\"redundant_symbols\": %llu}%s\n",
                   field_names[f], proto[f].goodput_MBps,
                   proto[f].mean_delay_ms,
                   proto[f].coding_overhead(k_hat) * 100,
                   static_cast<unsigned long long>(
                       proto[f].redundant_symbols),
                   f == 0 ? "," : "");
    }
    std::fprintf(file, "  }\n}\n");
    FMTCP_CHECK(std::fclose(file) == 0);
    std::printf("json: -> %s\n", json_path.c_str());
  }
  return 0;
}
