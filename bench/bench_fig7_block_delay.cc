// Figure 7 — Per-block delivery delay over the block sequence for test
// case 4 (subflow 2: 100 ms delay, 15% loss), first 1000 blocks.
//
// Paper shape: IETF-MPTCP shows extreme fluctuations with spikes around
// five times its average (urgent data stuck on the lossy subflow), while
// FMTCP's per-block delay stays flat.
#include <algorithm>
#include <cstdio>
#include "common/stats.h"

#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SweepRunner runner(jobs_from_flags(flags));

  print_header(
      "Figure 7: per-block delivery delay, test case 4 (100ms, 15%)");

  Scenario scenario = table1_scenario(3);
  scenario.duration = 200 * kSecond;  // Enough for 1000+ blocks.
  runner.submit(Protocol::kFmtcp, scenario, ProtocolOptions::defaults());
  runner.submit(Protocol::kMptcp, scenario, ProtocolOptions::defaults());
  const std::vector<RunResult> results = runner.run();
  const RunResult& fmtcp_run = results[0];
  const RunResult& mptcp_run = results[1];

  const std::size_t count =
      std::min<std::size_t>(1000, std::min(fmtcp_run.block_delays_ms.size(),
                                           mptcp_run.block_delays_ms.size()));
  std::printf("block\tFMTCP(ms)\tMPTCP(ms)\n");
  for (std::size_t i = 0; i < count; i += 5) {  // Every 5th block.
    std::printf("%zu\t%.1f\t%.1f\n", i, fmtcp_run.block_delays_ms[i],
                mptcp_run.block_delays_ms[i]);
  }

  const auto summarize = [&](const char* name,
                             const std::vector<double>& delays,
                             double mean) {
    SampleSet set;
    std::size_t spikes = 0;
    for (double d : delays) {
      set.add(d);
      if (d > 2.0 * mean) ++spikes;
    }
    std::printf(
        "%s: mean %.0f ms, p95 %.0f ms, p99 %.0f ms, max %.0f ms, "
        "blocks above 2x mean: %.1f%%\n",
        name, mean, set.quantile(0.95), set.quantile(0.99), set.max(),
        100.0 * static_cast<double>(spikes) /
            static_cast<double>(delays.size()));
  };
  std::printf("\nsummary over %zu blocks:\n", count);
  summarize("FMTCP", fmtcp_run.block_delays_ms, fmtcp_run.mean_delay_ms);
  summarize("MPTCP", mptcp_run.block_delays_ms, mptcp_run.mean_delay_ms);
  return 0;
}
