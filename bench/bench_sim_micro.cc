// Microbenchmarks (google-benchmark): event-scheduler and end-to-end
// simulation throughput — how many simulated seconds per wall second the
// substrate sustains.
#include <benchmark/benchmark.h>

#include "core/connection.h"
#include "net/topology.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace {

using namespace fmtcp;

void BM_SchedulerChurn(benchmark::State& state) {
  // Schedule + execute one event per iteration (self-perpetuating chain).
  sim::Simulator sim(1);
  SimTime t = 0;
  for (auto _ : state) {
    sim.schedule_at(++t, [] {});
    benchmark::DoNotOptimize(sim.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchedulerChurn);

void BM_SchedulerDeepQueue(benchmark::State& state) {
  // Heap behaviour with many pending events.
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim(1);
    for (std::size_t i = 0; i < depth; ++i) {
      sim.schedule_at(static_cast<SimTime>(i + 1), [] {});
    }
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_SchedulerDeepQueue)->Arg(1000)->Arg(100000);

void BM_DispatchProfiling(benchmark::State& state) {
  // Cost of the per-dispatch profiling path (tag scan + tally) vs the
  // default-off fast path. run_scenario only enables profiling when an
  // observer is attached; this measures what that gate saves.
  const bool profiling = state.range(0) != 0;
  sim::Simulator sim(1);
  sim.scheduler().set_profiling(profiling);
  SimTime t = 0;
  for (auto _ : state) {
    sim.schedule_at(++t, "net.link.deliver", [] {});
    benchmark::DoNotOptimize(sim.step());
  }
  state.SetLabel(profiling ? "profiling" : "no-observer");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DispatchProfiling)->Arg(0)->Arg(1);

void BM_TimerRearm(benchmark::State& state) {
  sim::Simulator sim(1);
  sim::Timer timer(sim, [] {});
  SimTime t = 0;
  for (auto _ : state) {
    timer.schedule_at(++t + kSecond);  // Cancels + reschedules.
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimerRearm);

void BM_FmtcpSimulatedSecond(benchmark::State& state) {
  // Full-stack cost of one simulated second of FMTCP over two paths
  // (payload mode: real GF(2) encoding + decoding included).
  const bool payload = state.range(0) != 0;
  sim::Simulator sim(1);
  net::PathConfig path1;
  path1.one_way_delay = from_ms(100);
  path1.bandwidth_Bps = 0.625e6;
  net::PathConfig path2 = path1;
  path2.loss_rate = 0.1;
  net::Topology topology(sim, {path1, path2});

  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 128;
  config.params.symbol_bytes = 160;
  config.params.carry_payload = payload;
  config.subflow.mss_payload = 7 * config.params.symbol_wire_bytes();
  core::FmtcpConnection connection(sim, topology, config);
  connection.start();

  for (auto _ : state) {
    sim.run_until(sim.now() + kSecond);
  }
  state.SetLabel(payload ? "payload" : "rank-only");
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(connection.receiver().blocks_delivered()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FmtcpSimulatedSecond)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
