// Event-scheduler microbenchmarks.
//
// Two modes:
//  - Default: google-benchmark micros (scheduler churn, deep queues,
//    dispatch profiling cost, timer re-arm, full-stack simulated-second
//    throughput).
//  - --json=FILE / --guard=FILE: the scheduler replay harness behind
//    the committed BENCH_sched.json baseline. It records the exact
//    schedule/cancel/handle operation stream of representative sweep
//    cells (FMTCP and MPTCP, a few simulated seconds each) through
//    Scheduler's op-recorder hook, then replays that stream with no-op
//    callbacks against both the production timer-wheel scheduler and
//    the frozen seed binary-heap scheduler
//    (tests/sim/reference_scheduler.h). With the callback bodies gone,
//    events/sec is pure scheduler cost on a real workload's timer
//    pattern, and wheel/heap is the speedup the wheel buys
//    sched.run_until. --json writes the numbers (tools/bench.sh,
//    --merge-min keeps elementwise minima across passes); --guard
//    re-runs and fails if any case regressed more than --max-regression
//    (default 0.20) against the baseline (tools/check.sh
//    FMTCP_BENCH_GUARD=1).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/connection.h"
#include "harness/scenario.h"
#include "json_baseline.h"
#include "mptcp/connection.h"
#include "net/topology.h"
#include "sim/reference_scheduler.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace {

using namespace fmtcp;
using namespace fmtcp::benchjson;

void BM_SchedulerChurn(benchmark::State& state) {
  // Schedule + execute one event per iteration (self-perpetuating chain).
  sim::Simulator sim(1);
  SimTime t = 0;
  for (auto _ : state) {
    sim.schedule_at(++t, [] {});
    benchmark::DoNotOptimize(sim.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchedulerChurn);

void BM_SchedulerDeepQueue(benchmark::State& state) {
  // Wheel behaviour with many pending events.
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim(1);
    for (std::size_t i = 0; i < depth; ++i) {
      sim.schedule_at(static_cast<SimTime>(i + 1), [] {});
    }
    state.ResumeTiming();
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(depth));
}
BENCHMARK(BM_SchedulerDeepQueue)->Arg(1000)->Arg(100000);

void BM_DispatchProfiling(benchmark::State& state) {
  // Cost of the per-dispatch profiling path (tag scan + tally) vs the
  // default-off fast path. run_scenario only enables profiling when an
  // observer is attached; this measures what that gate saves.
  const bool profiling = state.range(0) != 0;
  sim::Simulator sim(1);
  sim.scheduler().set_profiling(profiling);
  SimTime t = 0;
  for (auto _ : state) {
    sim.schedule_at(++t, "net.link.deliver", [] {});
    benchmark::DoNotOptimize(sim.step());
  }
  state.SetLabel(profiling ? "profiling" : "no-observer");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DispatchProfiling)->Arg(0)->Arg(1);

void BM_TimerRearm(benchmark::State& state) {
  sim::Simulator sim(1);
  sim::Timer timer(sim, [] {});
  SimTime t = 0;
  for (auto _ : state) {
    timer.schedule_at(++t + kSecond);  // Cancels + reschedules.
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimerRearm);

void BM_FmtcpSimulatedSecond(benchmark::State& state) {
  // Full-stack cost of one simulated second of FMTCP over two paths
  // (payload mode: real GF(2) encoding + decoding included).
  const bool payload = state.range(0) != 0;
  sim::Simulator sim(1);
  net::PathConfig path1;
  path1.one_way_delay = from_ms(100);
  path1.bandwidth_Bps = 0.625e6;
  net::PathConfig path2 = path1;
  path2.loss_rate = 0.1;
  net::Topology topology(sim, {path1, path2});

  core::FmtcpConnectionConfig config;
  config.params.block_symbols = 128;
  config.params.symbol_bytes = 160;
  config.params.carry_payload = payload;
  config.subflow.mss_payload = 7 * config.params.symbol_wire_bytes();
  core::FmtcpConnection connection(sim, topology, config);
  connection.start();

  for (auto _ : state) {
    sim.run_until(sim.now() + kSecond);
  }
  state.SetLabel(payload ? "payload" : "rank-only");
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(connection.receiver().blocks_delivered()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FmtcpSimulatedSecond)->Arg(1)->Arg(0);

// --------------------------------------------------------------------------
// Scheduler replay harness (--json / --guard modes)
// --------------------------------------------------------------------------

constexpr double kMinSeconds = 0.25;

/// One recorded scheduler operation, replayed inside its parent's
/// callback (or at setup, for parentless ops). `target` is the child's
/// seq for schedules, the victim's seq for cancels; seqs are dense, so
/// they double as vector indices.
struct ReplayOp {
  std::uint64_t target = 0;
  SimTime when = 0;           ///< Schedules only: absolute fire time.
  bool is_cancel = false;
  bool want_handle = false;   ///< A handle was kept (cancel target).
};

struct Trace {
  std::vector<ReplayOp> setup;               ///< Parentless ops, in order.
  std::vector<std::vector<ReplayOp>> by_seq; ///< Ops by parent callback.
  std::uint64_t scheduled = 0;
  SimTime horizon = 0;
};

/// Captures the live workload's operation stream. Interleaving is
/// preserved per parent (a callback's schedules and cancels replay in
/// the order it performed them); on_handle retroactively marks the
/// schedule op it refers to, wherever it was recorded.
class TraceRecorder : public sim::SchedulerOpRecorder {
 public:
  explicit TraceRecorder(Trace* trace) : trace_(trace) {}

  void on_schedule(std::uint64_t parent, std::uint64_t seq, SimTime when,
                   const char* /*tag*/) override {
    // Grow by_seq before taking the parent's list reference — the
    // resize moves the outer vector.
    if (trace_->by_seq.size() <= seq) trace_->by_seq.resize(seq + 1);
    if (locations_.size() <= seq) locations_.resize(seq + 1);
    std::vector<ReplayOp>& ops = ops_for(parent);
    locations_[seq] = {parent, ops.size()};
    ops.push_back({seq, when, /*is_cancel=*/false, /*want_handle=*/false});
    ++trace_->scheduled;
  }

  void on_handle(std::uint64_t /*parent*/, std::uint64_t seq) override {
    const Location& at = locations_[seq];
    ops_for(at.parent)[at.index].want_handle = true;
  }

  void on_cancel(std::uint64_t parent, std::uint64_t target) override {
    ops_for(parent).push_back({target, 0, /*is_cancel=*/true, false});
  }

 private:
  struct Location {
    std::uint64_t parent = 0;
    std::size_t index = 0;
  };

  std::vector<ReplayOp>& ops_for(std::uint64_t parent) {
    if (parent == kNoParent) return trace_->setup;
    return trace_->by_seq[parent];
  }

  Trace* trace_;
  std::vector<Location> locations_;
};

/// A representative FMTCP sweep cell (two asymmetric-quality paths,
/// real coding work driving retransmission and block timers).
Trace record_fmtcp_cell(double seconds) {
  Trace trace;
  TraceRecorder recorder(&trace);
  sim::Simulator sim(1);
  sim.scheduler().set_op_recorder(&recorder);

  harness::Scenario scenario;
  scenario.path2 = {100.0, 0.05};
  net::Topology topology(sim, {scenario.path_config(scenario.path1),
                               scenario.path_config(scenario.path2)});
  const harness::ProtocolOptions options =
      harness::ProtocolOptions::defaults();
  core::FmtcpConnectionConfig config;
  config.params = options.fmtcp;
  config.subflow = options.subflow;
  core::FmtcpConnection connection(sim, topology, config);
  connection.start();

  sim.run_until(from_seconds(seconds));
  // Detach before teardown: destructor-time cancels are not part of the
  // workload being modelled.
  sim.scheduler().set_op_recorder(nullptr);
  trace.horizon = from_seconds(seconds);
  return trace;
}

/// The MPTCP counterpart: no coding, but heavy per-segment timer
/// re-arm churn — the cancel-dominated pattern.
Trace record_mptcp_cell(double seconds) {
  Trace trace;
  TraceRecorder recorder(&trace);
  sim::Simulator sim(1);
  sim.scheduler().set_op_recorder(&recorder);

  harness::Scenario scenario;
  scenario.path2 = {100.0, 0.05};
  net::Topology topology(sim, {scenario.path_config(scenario.path1),
                               scenario.path_config(scenario.path2)});
  const harness::ProtocolOptions options =
      harness::ProtocolOptions::defaults();
  mptcp::MptcpConnectionConfig config;
  config.subflow = options.subflow;
  config.sender.segment_bytes = options.subflow.mss_payload;
  config.sender.metric_block_bytes = options.fmtcp.block_bytes();
  config.sender.scheduler = options.mptcp_scheduler;
  config.receive_buffer_bytes = options.mptcp_receive_buffer;
  mptcp::MptcpConnection connection(sim, topology, config);
  connection.start();

  sim.run_until(from_seconds(seconds));
  sim.scheduler().set_op_recorder(nullptr);
  trace.horizon = from_seconds(seconds);
  return trace;
}

/// Replays `trace` against a fresh scheduler with no-op callback
/// bodies; returns the executed-event count. Because replayed seqs are
/// assigned in the same global order as the recording, recorded seqs
/// line up with replay seqs and cancels hit the intended events.
template <typename Sched>
std::uint64_t replay_trace(const Trace& trace) {
  Sched s;
  std::vector<typename Sched::handle_type> handles(trace.by_seq.size());

  struct Driver {
    const Trace& trace;
    Sched& s;
    std::vector<typename Sched::handle_type>& handles;

    void run_ops(const std::vector<ReplayOp>& ops) {
      for (const ReplayOp& op : ops) {
        if (op.is_cancel) {
          handles[op.target].cancel();
          continue;
        }
        const std::uint64_t child = op.target;
        auto pending = s.schedule_at(op.when, "replay", [this, child] {
          run_ops(trace.by_seq[child]);
        });
        if (op.want_handle) handles[child] = pending;
      }
    }
  };
  Driver driver{trace, s, handles};
  driver.run_ops(trace.setup);
  s.run_until(trace.horizon);
  return s.executed_count();
}

struct CaseResult {
  std::string name;
  double events_per_sec = 0.0;
};

template <typename Sched>
CaseResult run_replay_case(const std::string& name, const Trace& trace,
                           std::uint64_t expect_executed) {
  // Warm-up pass (also a correctness gate: both schedulers must execute
  // the same events), then repeat until the clock budget is spent.
  FMTCP_CHECK(replay_trace<Sched>(trace) == expect_executed);
  std::uint64_t events = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    events += replay_trace<Sched>(trace);
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  } while (elapsed < kMinSeconds);

  CaseResult result;
  result.name = name;
  result.events_per_sec = static_cast<double>(events) / elapsed;
  return result;
}

struct HarnessReport {
  std::vector<CaseResult> cases;
  double speedup_fmtcp = 0.0;
  double speedup_mptcp = 0.0;
};

HarnessReport run_harness() {
  HarnessReport report;
  const struct {
    const char* name;
    Trace trace;
  } traces[] = {
      {"fmtcp_cell", record_fmtcp_cell(4.0)},
      {"mptcp_cell", record_mptcp_cell(4.0)},
  };
  for (const auto& [name, trace] : traces) {
    const std::uint64_t executed =
        replay_trace<sim::Scheduler>(trace);
    std::printf("  %-12s %7llu ops, %6llu executed:",
                name, static_cast<unsigned long long>(trace.scheduled),
                static_cast<unsigned long long>(executed));
    // Alternate implementations across repetitions so a background
    // burst on this box degrades one repetition, not one side.
    CaseResult wheel;
    CaseResult heap;
    for (int rep = 0; rep < 5; ++rep) {
      const CaseResult w = run_replay_case<sim::Scheduler>(
          std::string(name) + "_wheel", trace, executed);
      if (w.events_per_sec > wheel.events_per_sec) wheel = w;
      const CaseResult h = run_replay_case<sim::HeapScheduler>(
          std::string(name) + "_heap", trace, executed);
      if (h.events_per_sec > heap.events_per_sec) heap = h;
    }
    const double speedup = wheel.events_per_sec / heap.events_per_sec;
    std::printf(" wheel %6.2fM ev/s   heap %6.2fM ev/s   (%.2fx)\n",
                wheel.events_per_sec / 1e6, heap.events_per_sec / 1e6,
                speedup);
    report.cases.push_back(wheel);
    report.cases.push_back(heap);
    if (std::string(name) == "fmtcp_cell") report.speedup_fmtcp = speedup;
    if (std::string(name) == "mptcp_cell") report.speedup_mptcp = speedup;
  }
  return report;
}

void write_json(const std::string& path, HarnessReport report,
                bool merge_min) {
  if (merge_min) {
    // Fold the previous recording in, keeping the elementwise minimum:
    // repeated passes converge on a floor a guard run on an idle box
    // can always meet. Speedups are recomputed from the merged floors.
    const std::string prev = read_file(path);
    for (CaseResult& r : report.cases) {
      const std::optional<double> base =
          baseline_field(prev, r.name, "events_per_sec");
      if (base.has_value() && *base < r.events_per_sec) {
        r.events_per_sec = *base;
      }
    }
    const auto rate = [&report](const std::string& name) {
      for (const CaseResult& r : report.cases) {
        if (r.name == name) return r.events_per_sec;
      }
      return 0.0;
    };
    report.speedup_fmtcp = rate("fmtcp_cell_wheel") / rate("fmtcp_cell_heap");
    report.speedup_mptcp = rate("mptcp_cell_wheel") / rate("mptcp_cell_heap");
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::perror(("cannot open " + path).c_str());
    std::exit(1);
  }
  std::fprintf(file,
               "{\n"
               "  \"host\": {\n"
               "    \"hardware_concurrency\": %u,\n"
               "    \"compiler\": \"%s\"\n"
               "  },\n"
               "  \"speedup_wheel_vs_heap\": {\n"
               "    \"fmtcp_cell\": %.2f,\n"
               "    \"mptcp_cell\": %.2f\n"
               "  },\n"
               "  \"cases\": {\n",
               ThreadPool::hardware_threads(), __VERSION__,
               report.speedup_fmtcp, report.speedup_mptcp);
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    const CaseResult& r = report.cases[i];
    std::fprintf(file, "    \"%s\": {\"events_per_sec\": %.0f}%s\n",
                 r.name.c_str(), r.events_per_sec,
                 i + 1 < report.cases.size() ? "," : "");
  }
  std::fprintf(file, "  }\n}\n");
  FMTCP_CHECK(std::fclose(file) == 0);
  std::printf("json: -> %s\n", path.c_str());
}

int run_guard(const std::string& baseline_path, double max_regression) {
  const std::string json = read_file(baseline_path);
  if (json.empty()) {
    std::fprintf(stderr, "guard: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  const HarnessReport report = run_harness();
  int failures = 0;
  for (const CaseResult& r : report.cases) {
    const std::optional<double> base =
        baseline_field(json, r.name, "events_per_sec");
    if (!base.has_value()) {
      std::printf("guard: %-18s no baseline, skipped\n", r.name.c_str());
      continue;
    }
    const double floor = *base * (1.0 - max_regression);
    if (r.events_per_sec < floor) {
      std::printf(
          "guard: %-18s REGRESSED %.2fM ev/s < %.2fM (baseline %.2fM)\n",
          r.name.c_str(), r.events_per_sec / 1e6, floor / 1e6, *base / 1e6);
      ++failures;
    } else {
      std::printf("guard: %-18s ok %.2fM ev/s (baseline %.2fM)\n",
                  r.name.c_str(), r.events_per_sec / 1e6, *base / 1e6);
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "guard: %d case(s) regressed > %.0f%%\n", failures,
                 max_regression * 100.0);
    return 1;
  }
  std::printf("guard: all cases within %.0f%% of baseline\n",
              max_regression * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<std::string> json_path = flag_value(argc, argv, "json");
  const std::optional<std::string> guard_path =
      flag_value(argc, argv, "guard");
  if (guard_path.has_value()) {
    const std::optional<std::string> tolerance =
        flag_value(argc, argv, "max-regression");
    const double max_regression =
        tolerance.has_value() ? std::stod(*tolerance) : 0.20;
    return run_guard(*guard_path, max_regression);
  }
  if (json_path.has_value()) {
    bool merge_min = false;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--merge-min") == 0) merge_min = true;
    }
    std::printf("scheduler replay throughput (no-op callbacks):\n");
    write_json(*json_path, run_harness(), merge_min);
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
