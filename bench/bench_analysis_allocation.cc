// §IV-C quantitative analysis — SEDT (Eq. 13), the Lemma-1 condition,
// and the Theorem-3 bound on E(T2)/E(T1), cross-checked against the
// simulator's per-subflow EDT estimates.
//
// Shape to reproduce: SEDT orders subflows by quality (Theorem 2), and
// beyond the diversity threshold m* the FMTCP delivery-time ratio bound
// falls below MPTCP's exact ratio m (Theorem 3 discussion).
#include <cstdio>

#include "analysis/allocation_analysis.h"
#include "harness/printer.h"
#include "harness/runner.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::analysis;
using namespace fmtcp::harness;

int main() {
  print_header("SIV-C Eq.13: SEDT per Table-I subflow-2 configuration");
  {
    std::vector<std::vector<std::string>> rows;
    const double sedt1 = sedt(0.2, 0.2, 0.0);  // Subflow 1: 200ms RTT.
    for (std::size_t c = 0; c < table1_cases().size(); ++c) {
      const PathSpec& spec = table1_cases()[c];
      const double r2 = 2.0 * spec.delay_ms / 1e3;
      const double sedt2 = sedt(r2, r2, spec.loss);
      const double m = sedt2 / sedt1;
      rows.push_back({std::to_string(c + 1), fmt(spec.delay_ms, 0),
                      fmt(spec.loss * 100, 0), fmt(sedt2 * 1e3, 1),
                      fmt(m, 2),
                      fmt(fmtcp_advantage_threshold(0.0, spec.loss), 2),
                      fmt(theorem3_ratio_bound(0.0, spec.loss, m), 2)});
    }
    print_table({"case", "delay2(ms)", "loss2(%)", "SEDT2(ms)",
                 "m=SEDT2/SEDT1", "m* (advantage)", "Thm3 bound"},
                rows);
  }

  print_header("SIV-C Lemma 1: minimum r2 so losses avoid subflow 2");
  {
    std::vector<std::vector<std::string>> rows;
    for (double p2 : {0.02, 0.05, 0.10, 0.15, 0.30}) {
      rows.push_back({fmt(p2 * 100, 0),
                      fmt(lemma1_min_r2(0.2, 0.0, p2) * 1e3, 1)});
    }
    print_table({"loss2(%)", "min r2 (ms) for r1=200ms"}, rows);
  }

  print_header("Simulator cross-check: live EDT estimates vs Eq.13 SEDT");
  {
    // Run FMTCP on case 3 and compare each subflow's internal EDT with
    // the closed form (EDT ≈ SEDT shape: r/2 + p/(1-p)·RTO).
    Scenario scenario = table1_scenario(2);
    scenario.duration = 30 * kSecond;
    const RunResult result = run_scenario(Protocol::kFmtcp, scenario);
    std::printf(
        "subflow loss estimates after 30s: p0=%.3f (true 0.00), "
        "p1=%.3f (true 0.10)\n",
        result.subflows[0].loss_estimate, result.subflows[1].loss_estimate);
    std::printf(
        "closed-form SEDT: subflow1 %.1f ms, subflow2 %.1f ms (ratio "
        "m=%.2f)\n",
        sedt(0.2, 0.2, 0.0) * 1e3, sedt(0.2, 0.2, 0.1) * 1e3,
        diversity_m(0.2, 0.0, 0.2, 0.1));
  }
  return 0;
}
