// §III-B quantitative analysis — regenerates the paper's coding-analysis
// numbers (Eq. 3–7) and cross-checks them against Monte-Carlo runs of the
// actual codec.
//
// Shape to reproduce: under an underestimated loss rate the fixed-rate
// scheme's no-retransmission probability collapses exponentially in the
// block size (Eq. 6), while the fountain code only ever needs a constant
// expected number of extra symbols (Eq. 7).
#include <cstdio>

#include "analysis/coding_analysis.h"
#include "common/rng.h"
#include "fountain/decoder.h"
#include "fountain/random_linear.h"
#include "harness/printer.h"

using namespace fmtcp;
using namespace fmtcp::analysis;
using namespace fmtcp::harness;

int main() {
  print_header("SIII-B Eq.3-6: fixed-rate coding under estimation error");
  {
    const double p1 = 0.05;  // Assumed.
    const double p2 = 0.15;  // Actual.
    std::vector<std::vector<std::string>> rows;
    for (std::uint32_t A : {16u, 32u, 64u, 128u, 256u, 512u}) {
      rows.push_back(
          {std::to_string(A), fmt(expected_packets_delivered(A, p1), 1),
           fmt(expected_actual_delivered(A, p1, p2), 1),
           fmt(no_retransmission_probability_exact(A, p1, p2), 4),
           fmt(no_retransmission_probability_bound(A, p1, p2), 4)});
    }
    print_table({"A", "batch a (Eq.4)", "E[X_R] (Eq.5)",
                 "P(no-retx) exact", "Chernoff bound (Eq.6)"},
                rows);
  }

  print_header("SIII-B Eq.7: fountain expected symbols");
  {
    std::vector<std::vector<std::string>> rows;
    Rng rng(2024);
    for (std::uint32_t k : {8u, 16u, 32u, 64u, 128u}) {
      // Monte-Carlo symbols to decode.
      double total = 0.0;
      const int trials = 300;
      for (int t = 0; t < trials; ++t) {
        fountain::RandomLinearEncoder encoder(t, k, 1, rng.fork());
        fountain::BlockDecoder decoder(k, 1, false);
        while (!decoder.complete()) {
          decoder.add_symbol(encoder.next_symbol());
        }
        total += static_cast<double>(decoder.received_count());
      }
      for (double p : {0.0, 0.1}) {
        rows.push_back({std::to_string(k), fmt(p, 2),
                        fmt(total / trials / (1.0 - p), 2),
                        fmt(expected_symbols_to_decode(k) / (1.0 - p), 2),
                        fmt(fountain_expected_symbols_bound(k, p), 2)});
      }
    }
    print_table({"k_hat", "loss p", "measured E[Y]", "analytic E[Y]",
                 "paper bound (k+4)/(1-p)"},
                rows);
    std::printf(
        "\nNote: the fountain's expected overhead is ~1.61 symbols "
        "regardless of k_hat; the paper's Eq. 7 uses the looser +4.\n");
  }
  return 0;
}
