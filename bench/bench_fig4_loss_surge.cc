// Figure 4 — Goodput-rate time series under an abrupt loss surge on
// subflow 2: 1% initially, surging to 25% (a) / 35% (b) at t=50 s and
// back to 1% at t=200 s; 100 ms delay on both paths.
//
// Paper shape: IETF-MPTCP's rate fluctuates severely during the surge
// (at 35% it barely works), while FMTCP degrades gracefully and stays
// stable, recovering immediately when the surge ends.
//
// Two variants are printed. The paper sets BOTH paths to 1% initial
// loss; at this simulator's Reno parameters a 1%-lossy path 1 is itself
// Mathis-limited, which compresses the contrast, so the headline run
// keeps path 1 clean (the blocking mechanism under test is unchanged —
// see DESIGN.md) and the paper-literal 1%/1% run follows.
//
// With --json, emits one JSONL record per (variant, protocol) with the
// during-surge mean and stddev instead of the tables:
//   {"bench":"fig4_loss_surge","metric":"surge_goodput_MBps",
//    "protocol":"fmtcp","case":"a","value":0.43,"stddev":0.02}
#include <cmath>
#include <cstdio>

#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

struct Variant {
  const char* name;
  const char* slug;
  double path1_loss;
  double surge;
};

Scenario make_scenario(const Variant& v) {
  Scenario scenario;
  scenario.path1 = {100.0, v.path1_loss};
  scenario.path2 = {100.0, 0.01};
  scenario.duration = 300 * kSecond;
  scenario.seed = 42;
  scenario.path2_loss_schedule = {
      {0, 0.01}, {50 * kSecond, v.surge}, {200 * kSecond, 0.01}};
  return scenario;
}

void report_variant(const Variant& v, const RunResult& fmtcp_run,
                    const RunResult& mptcp_run, bool json) {
  if (!json) {
    std::printf("\n-- %s: surge to %.0f%% during [50s,200s) --\n", v.name,
                v.surge * 100);
    std::printf("t(s)\tFMTCP(MB/s)\tMPTCP(MB/s)\n");
    const auto window_avg = [](const std::vector<double>& series,
                               std::size_t i) {
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t j = i; j < i + 10 && j < series.size(); ++j, ++n) {
        sum += series[j];
      }
      return n == 0 ? 0.0 : sum / static_cast<double>(n);
    };
    for (std::size_t t = 0; t < 300; t += 10) {
      std::printf("%zu\t%.4f\t%.4f\n", t,
                  window_avg(fmtcp_run.goodput_series_MBps, t),
                  window_avg(mptcp_run.goodput_series_MBps, t));
    }
  }

  // Stability during the surge: stddev of the 1-second rates in
  // [60s, 200s) (skipping 10 s of transient).
  const auto stability = [](const std::vector<double>& series) {
    double mean = 0.0;
    std::size_t n = 0;
    for (std::size_t t = 60; t < 200 && t < series.size(); ++t, ++n) {
      mean += series[t];
    }
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t t = 60; t < 200 && t < series.size(); ++t) {
      var += (series[t] - mean) * (series[t] - mean);
    }
    return std::pair<double, double>(
        mean, std::sqrt(var / static_cast<double>(n)));
  };
  const auto [f_mean, f_sd] = stability(fmtcp_run.goodput_series_MBps);
  const auto [m_mean, m_sd] = stability(mptcp_run.goodput_series_MBps);
  if (json) {
    std::printf(
        "{\"bench\":\"fig4_loss_surge\",\"metric\":\"surge_goodput_MBps\","
        "\"protocol\":\"fmtcp\",\"case\":\"%s\",\"value\":%.6f,"
        "\"stddev\":%.6f}\n",
        v.slug, f_mean, f_sd);
    std::printf(
        "{\"bench\":\"fig4_loss_surge\",\"metric\":\"surge_goodput_MBps\","
        "\"protocol\":\"mptcp\",\"case\":\"%s\",\"value\":%.6f,"
        "\"stddev\":%.6f}\n",
        v.slug, m_mean, m_sd);
    return;
  }
  std::printf(
      "during surge: FMTCP %.3f±%.3f MB/s, MPTCP %.3f±%.3f MB/s "
      "(coef.var. %.2f vs %.2f)\n",
      f_mean, f_sd, m_mean, m_sd, f_sd / f_mean, m_sd / m_mean);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool json = flags.get_bool(
      "json", false, "emit JSONL {metric,protocol,value} records");
  SweepRunner runner(jobs_from_flags(flags));

  if (!json) {
    print_header(
        "Figure 4: goodput rate under abrupt subflow-2 loss surge");
  }

  const Variant variants[] = {
      {"Fig 4(a)", "a", 0.0, 0.25},
      {"Fig 4(b)", "b", 0.0, 0.35},
      {"Fig 4(a) paper-literal (path1 loss 1%)", "a_paper", 0.01, 0.25},
      {"Fig 4(b) paper-literal (path1 loss 1%)", "b_paper", 0.01, 0.35},
  };
  for (const Variant& v : variants) {
    for (Protocol protocol : {Protocol::kFmtcp, Protocol::kMptcp}) {
      runner.submit(protocol, make_scenario(v), ProtocolOptions::defaults());
    }
  }
  const std::vector<RunResult> results = runner.run();

  for (std::size_t i = 0; i < std::size(variants); ++i) {
    report_variant(variants[i], results[2 * i], results[2 * i + 1], json);
  }
  return 0;
}
