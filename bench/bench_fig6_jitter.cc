// Figure 6 — Average block jitter of FMTCP vs IETF-MPTCP over the
// Table-I test cases (3 seeds per cell, parallel; mean ± sd). Jitter is
// the spread of per-block delivery delays, reported as the standard
// deviation.
//
// Paper shape: the jitter gap is even larger than the delay gap of
// Fig. 5, especially when subflow 2 is poor — MPTCP cannot keep urgent
// data off the bad path, so its block delays swing; FMTCP stays stable.
#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const unsigned parallel_jobs = jobs_from_flags(flags);

  print_header("Figure 6: average block jitter (ms), Table I");

  const std::vector<std::uint64_t> seeds = {1001, 2002, 3003};
  std::vector<SweepJob> jobs;
  for (std::size_t c = 0; c < table1_cases().size(); ++c) {
    for (Protocol protocol : {Protocol::kFmtcp, Protocol::kMptcp}) {
      for (std::uint64_t seed : seeds) {
        SweepJob job;
        job.protocol = protocol;
        job.scenario = table1_scenario(c);
        job.scenario.seed = seed;
        jobs.push_back(job);
      }
    }
  }
  const std::vector<RunResult> results = run_parallel(jobs, parallel_jobs);

  const auto cell = [&](std::size_t c, int protocol_index) {
    std::vector<RunResult> slice(
        results.begin() +
            static_cast<long>((c * 2 + protocol_index) * seeds.size()),
        results.begin() +
            static_cast<long>((c * 2 + protocol_index + 1) * seeds.size()));
    return aggregate(slice,
                     [](const RunResult& r) { return r.jitter_ms; });
  };

  std::vector<std::vector<std::string>> rows;
  for (std::size_t c = 0; c < table1_cases().size(); ++c) {
    const Scenario scenario = table1_scenario(c);
    const SeedStats fmtcp_stats = cell(c, 0);
    const SeedStats mptcp_stats = cell(c, 1);
    rows.push_back({std::to_string(c + 1),
                    fmt(scenario.path2.delay_ms, 0),
                    fmt(scenario.path2.loss * 100, 0),
                    fmt(fmtcp_stats.mean, 1) + "±" +
                        fmt(fmtcp_stats.stddev, 1),
                    fmt(mptcp_stats.mean, 1) + "±" +
                        fmt(mptcp_stats.stddev, 1),
                    fmt(mptcp_stats.mean / fmtcp_stats.mean, 2)});
  }
  print_table({"case", "delay2(ms)", "loss2(%)", "FMTCP jitter",
               "MPTCP jitter", "MPTCP/FMTCP"},
              rows);
  return 0;
}
