// Sweep-throughput benchmark: wall time and events/sec for a fixed cell
// grid across a list of thread counts (--jobs=1,2,4,8), verifying on
// the way that every mode produces results bit-identical to the serial
// baseline. Each mode runs under a span-profiling session, so the JSON
// (--json=FILE, committed as BENCH_sweep.json via tools/bench.sh)
// carries the per-span aggregate breakdown alongside the wall numbers,
// plus a "slowdown" analysis naming the span whose self time grew most
// from jobs=1 to jobs=2 (waiting spans excluded — they are overlap, not
// work). --trace-out=FILE writes a Chrome/Perfetto trace of the last
// mode in the list.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "harness/sweep.h"
#include "harness/table1.h"
#include "obs/trace/chrome_trace.h"
#include "obs/trace/tracer.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

struct ModeStats {
  unsigned jobs = 0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  obs::trace::TraceReport report;
  double events_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds
                            : 0.0;
  }
};

std::vector<SweepJob> build_grid(double seconds, int seeds) {
  // Table-I cases 1-4 x {FMTCP, MPTCP} x seeds: a representative mix of
  // loss rates (coding work) and clean paths (pure event churn).
  std::vector<SweepJob> jobs;
  for (int seed = 1; seed <= seeds; ++seed) {
    for (std::size_t c = 0; c < 4; ++c) {
      for (Protocol protocol : {Protocol::kFmtcp, Protocol::kMptcp}) {
        SweepJob job;
        job.protocol = protocol;
        job.scenario = table1_scenario(c);
        job.scenario.duration = from_seconds(seconds);
        job.scenario.seed = static_cast<std::uint64_t>(seed);
        jobs.push_back(job);
      }
    }
  }
  return jobs;
}

/// "--jobs=1,2,4,8" -> {1,2,4,8}; 0 entries mean hardware concurrency.
/// A serial (jobs=1) baseline is prepended when absent — every other
/// mode's results are checked against it and speedups are relative to
/// it.
std::vector<unsigned> parse_jobs_list(const std::string& spec) {
  std::vector<unsigned> out;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const long value = std::stol(item);
    FMTCP_CHECK(value >= 0);
    out.push_back(value == 0 ? ThreadPool::hardware_threads()
                             : static_cast<unsigned>(value));
  }
  FMTCP_CHECK(!out.empty());
  if (out.front() != 1) out.insert(out.begin(), 1);
  return out;
}

ModeStats run_mode(const std::vector<SweepJob>& jobs, unsigned threads,
                   bool capture_records,
                   std::vector<RunResult>* results_out) {
  obs::trace::TraceConfig config;
  config.capture_records = capture_records;
  obs::trace::start(config);

  const auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = run_parallel(jobs, threads);
  const auto stop = std::chrono::steady_clock::now();

  ModeStats stats;
  stats.jobs = threads;
  stats.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  for (const RunResult& r : results) stats.events += r.sim_events;
  stats.report = obs::trace::stop();
  if (results_out != nullptr) *results_out = std::move(results);
  return stats;
}

void expect_identical(const std::vector<RunResult>& a,
                      const std::vector<RunResult>& b) {
  FMTCP_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    FMTCP_CHECK(a[i].delivered_bytes == b[i].delivered_bytes);
    FMTCP_CHECK(a[i].blocks_completed == b[i].blocks_completed);
    FMTCP_CHECK(a[i].sim_events == b[i].sim_events);
    FMTCP_CHECK(a[i].block_delays_ms == b[i].block_delays_ms);
  }
}

/// Spans that measure *blocking on other threads' progress*: they
/// overlap with real work, so their growth under contention explains
/// nothing about where cycles went.
bool is_waiting_span(const std::string& name) {
  return name == "sweep.wait" || name == "sweep.run" ||
         name == "threadpool.wait" || name == "threadpool.idle";
}

struct Slowdown {
  bool valid = false;
  unsigned reference_jobs = 0;
  unsigned compared_jobs = 0;
  std::string dominant_span;
  double self_ms_reference = 0.0;
  double self_ms_compared = 0.0;
};

/// Where did the extra wall time of the jobs=2 mode go, relative to the
/// serial baseline? Largest positive self-time delta among working
/// (non-waiting) spans.
Slowdown analyze_slowdown(const std::vector<ModeStats>& modes) {
  Slowdown slowdown;
  const ModeStats* reference = nullptr;
  const ModeStats* compared = nullptr;
  for (const ModeStats& mode : modes) {
    if (mode.jobs == 1 && reference == nullptr) reference = &mode;
    if (mode.jobs == 2 && compared == nullptr) compared = &mode;
  }
  if (reference == nullptr || compared == nullptr) return slowdown;

  double best_delta = 0.0;
  for (const obs::trace::SpanAggregate& span : compared->report.spans) {
    if (is_waiting_span(span.name)) continue;
    const obs::trace::SpanAggregate* base =
        reference->report.find(span.name);
    const double base_self = base != nullptr ? base->self_ms : 0.0;
    const double delta = span.self_ms - base_self;
    if (delta > best_delta) {
      best_delta = delta;
      slowdown.valid = true;
      slowdown.dominant_span = span.name;
      slowdown.self_ms_reference = base_self;
      slowdown.self_ms_compared = span.self_ms;
    }
  }
  slowdown.reference_jobs = reference->jobs;
  slowdown.compared_jobs = compared->jobs;
  return slowdown;
}

void write_spans_json(std::FILE* file, const obs::trace::TraceReport& report,
                      const char* indent) {
  std::fprintf(file, "%s\"spans\": [", indent);
  bool first = true;
  for (const obs::trace::SpanAggregate& span : report.spans) {
    std::fprintf(file,
                 "%s\n%s  {\"name\": \"%s\", \"count\": %llu, "
                 "\"total_ms\": %.3f, \"self_ms\": %.3f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f}",
                 first ? "" : ",", indent, span.name.c_str(),
                 static_cast<unsigned long long>(span.count),
                 span.total_ms, span.self_ms, span.p50_ms, span.p99_ms);
    first = false;
  }
  std::fprintf(file, "\n%s]", indent);
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const double seconds =
      flags.get_double("seconds", 10.0, "simulated seconds per cell");
  const int seeds = flags.get_int("seeds", 2, "seeds per cell");
  const std::string jobs_spec = flags.get_string(
      "jobs", "0", "comma list of thread counts (0 = hardware)");
  const std::string json_path =
      flags.get_string("json", "", "write results as JSON to file");
  const std::string trace_out_path = flags.get_string(
      "trace-out", "", "write Chrome span trace of the last mode");

  const std::vector<unsigned> jobs_list = parse_jobs_list(jobs_spec);
  const std::vector<SweepJob> jobs = build_grid(seconds, seeds);
  std::printf("sweep: %zu cells x %.0f simulated seconds, jobs {",
              jobs.size(), seconds);
  for (std::size_t i = 0; i < jobs_list.size(); ++i) {
    std::printf("%s%u", i > 0 ? "," : "", jobs_list[i]);
  }
  std::printf("}\n");

  std::vector<ModeStats> modes;
  std::vector<RunResult> serial_results;
  for (std::size_t i = 0; i < jobs_list.size(); ++i) {
    const unsigned threads = jobs_list[i];
    const bool capture =
        !trace_out_path.empty() && i + 1 == jobs_list.size();
    std::vector<RunResult> results;
    modes.push_back(run_mode(jobs, threads, capture, &results));
    const ModeStats& mode = modes.back();

    if (i == 0) {
      serial_results = std::move(results);
      std::printf("jobs=%-2u   %6.2f s wall, %.2fM events/s\n",
                  mode.jobs, mode.wall_seconds,
                  mode.events_per_second() / 1e6);
    } else {
      expect_identical(serial_results, results);
      std::printf("jobs=%-2u   %6.2f s wall, %.2fM events/s (%.2fx)\n",
                  mode.jobs, mode.wall_seconds,
                  mode.events_per_second() / 1e6,
                  modes.front().wall_seconds / mode.wall_seconds);
    }
  }
  std::printf("results:  all modes bit-identical to serial\n");

  const Slowdown slowdown = analyze_slowdown(modes);
  if (slowdown.valid) {
    std::printf(
        "slowdown: jobs=%u spends %+.0f ms more self time in '%s' than "
        "jobs=%u (%.0f -> %.0f ms)\n",
        slowdown.compared_jobs,
        slowdown.self_ms_compared - slowdown.self_ms_reference,
        slowdown.dominant_span.c_str(), slowdown.reference_jobs,
        slowdown.self_ms_reference, slowdown.self_ms_compared);
  }

  if (!trace_out_path.empty()) {
    obs::trace::write_chrome_trace(modes.back().report, trace_out_path);
    std::printf("trace:    %zu records (jobs=%u) -> %s\n",
                modes.back().report.records.size(), modes.back().jobs,
                trace_out_path.c_str());
  }

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::perror(("cannot open " + json_path).c_str());
      return 1;
    }
    std::fprintf(file,
                 "{\n"
                 "  \"cells\": %zu,\n"
                 "  \"simulated_seconds_per_cell\": %.1f,\n"
                 "  \"total_sim_events\": %llu,\n"
                 "  \"modes\": [",
                 jobs.size(), seconds,
                 static_cast<unsigned long long>(modes.front().events));
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const ModeStats& mode = modes[i];
      std::fprintf(file,
                   "%s\n    {\n"
                   "      \"jobs\": %u,\n"
                   "      \"wall_seconds\": %.3f,\n"
                   "      \"events_per_second\": %.0f,\n"
                   "      \"speedup\": %.3f,\n",
                   i > 0 ? "," : "", mode.jobs, mode.wall_seconds,
                   mode.events_per_second(),
                   modes.front().wall_seconds / mode.wall_seconds);
      write_spans_json(file, mode.report, "      ");
      std::fprintf(file, "\n    }");
    }
    std::fprintf(file, "\n  ],\n  \"identical_results\": true");
    if (slowdown.valid) {
      std::fprintf(
          file,
          ",\n  \"slowdown\": {\n"
          "    \"reference_jobs\": %u,\n"
          "    \"compared_jobs\": %u,\n"
          "    \"dominant_span\": \"%s\",\n"
          "    \"self_ms_reference\": %.3f,\n"
          "    \"self_ms_compared\": %.3f\n"
          "  }",
          slowdown.reference_jobs, slowdown.compared_jobs,
          slowdown.dominant_span.c_str(), slowdown.self_ms_reference,
          slowdown.self_ms_compared);
    }
    std::fprintf(file, "\n}\n");
    FMTCP_CHECK(std::fclose(file) == 0);
    std::printf("json:     -> %s\n", json_path.c_str());
  }
  return 0;
}
