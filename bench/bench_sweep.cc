// Sweep-throughput benchmark: wall time and events/sec for a fixed cell
// grid run serially (--jobs 1) vs on the thread pool, verifying on the
// way that both modes produce identical results. Writes the numbers as
// JSON (--json=FILE) so a run can be committed as the perf baseline
// (see BENCH_sweep.json at the repo root, produced by tools/bench.sh).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

struct ModeStats {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  double events_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds
                            : 0.0;
  }
};

std::vector<SweepJob> build_grid(double seconds, int seeds) {
  // Table-I cases 1-4 x {FMTCP, MPTCP} x seeds: a representative mix of
  // loss rates (coding work) and clean paths (pure event churn).
  std::vector<SweepJob> jobs;
  for (int seed = 1; seed <= seeds; ++seed) {
    for (std::size_t c = 0; c < 4; ++c) {
      for (Protocol protocol : {Protocol::kFmtcp, Protocol::kMptcp}) {
        SweepJob job;
        job.protocol = protocol;
        job.scenario = table1_scenario(c);
        job.scenario.duration = from_seconds(seconds);
        job.scenario.seed = static_cast<std::uint64_t>(seed);
        jobs.push_back(job);
      }
    }
  }
  return jobs;
}

ModeStats run_mode(const std::vector<SweepJob>& jobs, unsigned threads,
                   std::vector<RunResult>* results_out) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = run_parallel(jobs, threads);
  const auto stop = std::chrono::steady_clock::now();

  ModeStats stats;
  stats.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  for (const RunResult& r : results) stats.events += r.sim_events;
  if (results_out != nullptr) *results_out = std::move(results);
  return stats;
}

void expect_identical(const std::vector<RunResult>& a,
                      const std::vector<RunResult>& b) {
  FMTCP_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    FMTCP_CHECK(a[i].delivered_bytes == b[i].delivered_bytes);
    FMTCP_CHECK(a[i].blocks_completed == b[i].blocks_completed);
    FMTCP_CHECK(a[i].sim_events == b[i].sim_events);
    FMTCP_CHECK(a[i].block_delays_ms == b[i].block_delays_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const double seconds =
      flags.get_double("seconds", 10.0, "simulated seconds per cell");
  const int seeds = flags.get_int("seeds", 2, "seeds per cell");
  unsigned parallel_threads = jobs_from_flags(flags);
  const std::string json_path =
      flags.get_string("json", "", "write results as JSON to file");
  if (parallel_threads == 0) {
    parallel_threads = ThreadPool::hardware_threads();
  }

  const std::vector<SweepJob> jobs = build_grid(seconds, seeds);
  std::printf("sweep: %zu cells x %.0f simulated seconds, %u threads\n",
              jobs.size(), seconds, parallel_threads);

  std::vector<RunResult> serial_results;
  const ModeStats serial = run_mode(jobs, 1, &serial_results);
  std::printf("serial:   %6.2f s wall, %.2fM events/s\n",
              serial.wall_seconds, serial.events_per_second() / 1e6);

  std::vector<RunResult> parallel_results;
  const ModeStats parallel =
      run_mode(jobs, parallel_threads, &parallel_results);
  std::printf("parallel: %6.2f s wall, %.2fM events/s (%.2fx)\n",
              parallel.wall_seconds, parallel.events_per_second() / 1e6,
              serial.wall_seconds / parallel.wall_seconds);

  expect_identical(serial_results, parallel_results);
  std::printf("results:  parallel run bit-identical to serial\n");

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::perror(("cannot open " + json_path).c_str());
      return 1;
    }
    std::fprintf(
        file,
        "{\n"
        "  \"cells\": %zu,\n"
        "  \"simulated_seconds_per_cell\": %.1f,\n"
        "  \"threads\": %u,\n"
        "  \"total_sim_events\": %llu,\n"
        "  \"serial\": {\"wall_seconds\": %.3f, \"events_per_second\": "
        "%.0f},\n"
        "  \"parallel\": {\"wall_seconds\": %.3f, \"events_per_second\": "
        "%.0f},\n"
        "  \"speedup\": %.3f,\n"
        "  \"identical_results\": true\n"
        "}\n",
        jobs.size(), seconds, parallel_threads,
        static_cast<unsigned long long>(serial.events),
        serial.wall_seconds, serial.events_per_second(),
        parallel.wall_seconds, parallel.events_per_second(),
        serial.wall_seconds / parallel.wall_seconds);
    FMTCP_CHECK(std::fclose(file) == 0);
    std::printf("json:     -> %s\n", json_path.c_str());
  }
  return 0;
}
