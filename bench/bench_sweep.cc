// Sweep-throughput benchmark, two modes.
//
// Scaling mode (default): wall time and events/sec for a fixed cell
// grid across a list of thread counts (--jobs=1,2,4,8), verifying on
// the way that every mode produces results bit-identical to the serial
// baseline. Each mode runs under a span-profiling session, so the JSON
// (--json=FILE, committed as BENCH_sweep.json via tools/bench.sh)
// carries the per-span aggregate breakdown alongside the wall numbers,
// plus a "slowdown" analysis naming the span whose self time grew most
// from jobs=1 to jobs=2 (waiting spans excluded — they are overlap, not
// work). --trace-out=FILE writes a Chrome/Perfetto trace of the last
// mode in the list.
//
// Grid mode (--grid): the fleet-scale engine. Builds the cartesian
// product loss x RTT x path-asymmetry x block-size x protocol x seed
// (hundreds to thousands of cells), streams one JSON line per cell to
// --out in submission order as cells complete, and holds only a small
// in-flight window in memory (SweepRunner::run_streaming). Lines carry
// only deterministic fields, so the file is byte-identical at any
// --jobs value, and because delivery is a completed prefix the file
// doubles as the crash-resume manifest: --resume validates the intact
// prefix of an interrupted run (dropping a torn tail line) and
// continues from the first missing cell without recomputing anything.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/thread_pool.h"
#include "harness/sweep.h"
#include "harness/table1.h"
#include "obs/trace/chrome_trace.h"
#include "obs/trace/tracer.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

struct ModeStats {
  unsigned jobs = 0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  obs::trace::TraceReport report;
  double events_per_second() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds
                            : 0.0;
  }
};

std::vector<SweepJob> build_grid(double seconds, int seeds) {
  // Table-I cases 1-4 x {FMTCP, MPTCP} x seeds: a representative mix of
  // loss rates (coding work) and clean paths (pure event churn).
  std::vector<SweepJob> jobs;
  for (int seed = 1; seed <= seeds; ++seed) {
    for (std::size_t c = 0; c < 4; ++c) {
      for (Protocol protocol : {Protocol::kFmtcp, Protocol::kMptcp}) {
        SweepJob job;
        job.protocol = protocol;
        job.scenario = table1_scenario(c);
        job.scenario.duration = from_seconds(seconds);
        job.scenario.seed = static_cast<std::uint64_t>(seed);
        jobs.push_back(job);
      }
    }
  }
  return jobs;
}

/// "--jobs=1,2,4,8" -> {1,2,4,8}; 0 entries mean hardware concurrency.
/// A serial (jobs=1) baseline is prepended when absent — every other
/// mode's results are checked against it and speedups are relative to
/// it.
std::vector<unsigned> parse_jobs_list(const std::string& spec) {
  std::vector<unsigned> out;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const long value = std::stol(item);
    FMTCP_CHECK(value >= 0);
    out.push_back(value == 0 ? ThreadPool::hardware_threads()
                             : static_cast<unsigned>(value));
  }
  FMTCP_CHECK(!out.empty());
  if (out.front() != 1) out.insert(out.begin(), 1);
  return out;
}

ModeStats run_mode(const std::vector<SweepJob>& jobs, unsigned threads,
                   bool capture_records,
                   std::vector<RunResult>* results_out) {
  obs::trace::TraceConfig config;
  config.capture_records = capture_records;
  obs::trace::start(config);

  const auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = run_parallel(jobs, threads);
  const auto stop = std::chrono::steady_clock::now();

  ModeStats stats;
  stats.jobs = threads;
  stats.wall_seconds =
      std::chrono::duration<double>(stop - start).count();
  for (const RunResult& r : results) stats.events += r.sim_events;
  stats.report = obs::trace::stop();
  if (results_out != nullptr) *results_out = std::move(results);
  return stats;
}

void expect_identical(const std::vector<RunResult>& a,
                      const std::vector<RunResult>& b) {
  FMTCP_CHECK(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    FMTCP_CHECK(a[i].delivered_bytes == b[i].delivered_bytes);
    FMTCP_CHECK(a[i].blocks_completed == b[i].blocks_completed);
    FMTCP_CHECK(a[i].sim_events == b[i].sim_events);
    FMTCP_CHECK(a[i].block_delays_ms == b[i].block_delays_ms);
  }
}

/// Spans that measure *blocking on other threads' progress*: they
/// overlap with real work, so their growth under contention explains
/// nothing about where cycles went.
bool is_waiting_span(const std::string& name) {
  return name == "sweep.wait" || name == "sweep.run" ||
         name == "threadpool.wait" || name == "threadpool.idle";
}

struct Slowdown {
  bool valid = false;
  unsigned reference_jobs = 0;
  unsigned compared_jobs = 0;
  std::string dominant_span;
  double self_ms_reference = 0.0;
  double self_ms_compared = 0.0;
};

/// Where did the extra wall time of the jobs=2 mode go, relative to the
/// serial baseline? Largest positive self-time delta among working
/// (non-waiting) spans.
Slowdown analyze_slowdown(const std::vector<ModeStats>& modes) {
  Slowdown slowdown;
  const ModeStats* reference = nullptr;
  const ModeStats* compared = nullptr;
  for (const ModeStats& mode : modes) {
    if (mode.jobs == 1 && reference == nullptr) reference = &mode;
    if (mode.jobs == 2 && compared == nullptr) compared = &mode;
  }
  if (reference == nullptr || compared == nullptr) return slowdown;

  double best_delta = 0.0;
  for (const obs::trace::SpanAggregate& span : compared->report.spans) {
    if (is_waiting_span(span.name)) continue;
    const obs::trace::SpanAggregate* base =
        reference->report.find(span.name);
    const double base_self = base != nullptr ? base->self_ms : 0.0;
    const double delta = span.self_ms - base_self;
    if (delta > best_delta) {
      best_delta = delta;
      slowdown.valid = true;
      slowdown.dominant_span = span.name;
      slowdown.self_ms_reference = base_self;
      slowdown.self_ms_compared = span.self_ms;
    }
  }
  slowdown.reference_jobs = reference->jobs;
  slowdown.compared_jobs = compared->jobs;
  return slowdown;
}

void write_spans_json(std::FILE* file, const obs::trace::TraceReport& report,
                      const char* indent) {
  std::fprintf(file, "%s\"spans\": [", indent);
  bool first = true;
  for (const obs::trace::SpanAggregate& span : report.spans) {
    std::fprintf(file,
                 "%s\n%s  {\"name\": \"%s\", \"count\": %llu, "
                 "\"total_ms\": %.3f, \"self_ms\": %.3f, "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f}",
                 first ? "" : ",", indent, span.name.c_str(),
                 static_cast<unsigned long long>(span.count),
                 span.total_ms, span.self_ms, span.p50_ms, span.p99_ms);
    first = false;
  }
  std::fprintf(file, "\n%s]", indent);
}

// --- Grid mode -------------------------------------------------------

/// One cell of the cartesian grid: the job plus the axis coordinates
/// that produced it (echoed into its JSONL line).
struct GridCell {
  SweepJob job;
  double loss2 = 0.0;
  double delay2_ms = 0.0;
  double delay1_ms = 0.0;
  std::uint32_t block_symbols = 0;
  std::uint64_t seed = 0;
};

std::vector<double> parse_double_list(const std::string& spec) {
  std::vector<double> out;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) out.push_back(std::stod(item));
  FMTCP_CHECK(!out.empty());
  return out;
}

Protocol parse_protocol(const std::string& name) {
  if (name == "fmtcp") return Protocol::kFmtcp;
  if (name == "mptcp") return Protocol::kMptcp;
  if (name == "hmtp") return Protocol::kHmtp;
  FMTCP_CHECK(name == "fixed-rate");
  return Protocol::kFixedRate;
}

std::vector<Protocol> parse_protocol_list(const std::string& spec) {
  std::vector<Protocol> out;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    out.push_back(parse_protocol(item));
  }
  FMTCP_CHECK(!out.empty());
  return out;
}

/// Grid axis lists. Iteration order (outer to inner): seed, protocol,
/// block size, path-1 delay, path-2 delay, loss. The order is part of
/// the output contract — cell ids index this sequence, and resume
/// counts on it.
struct GridAxes {
  std::vector<double> loss2;
  std::vector<double> delay2_ms;
  std::vector<double> delay1_ms;
  std::vector<std::uint32_t> block_symbols;
  std::vector<Protocol> protocols;
  int seeds = 1;
};

std::vector<GridCell> build_grid_cells(const GridAxes& axes, double seconds) {
  std::vector<GridCell> cells;
  for (int seed = 1; seed <= axes.seeds; ++seed) {
    for (Protocol protocol : axes.protocols) {
      for (std::uint32_t blocks : axes.block_symbols) {
        for (double delay1 : axes.delay1_ms) {
          for (double delay2 : axes.delay2_ms) {
            for (double loss : axes.loss2) {
              GridCell cell;
              cell.loss2 = loss;
              cell.delay2_ms = delay2;
              cell.delay1_ms = delay1;
              cell.block_symbols = blocks;
              cell.seed = static_cast<std::uint64_t>(seed);
              cell.job.protocol = protocol;
              cell.job.scenario.path1 = {delay1, 0.0};
              cell.job.scenario.path2 = {delay2, loss};
              cell.job.scenario.duration = from_seconds(seconds);
              cell.job.scenario.seed = cell.seed;
              cell.job.options.fmtcp.block_symbols = blocks;
              cells.push_back(std::move(cell));
            }
          }
        }
      }
    }
  }
  return cells;
}

/// Formats one cell's JSONL line. Deterministic fields only (no wall
/// clock), so the byte stream is identical at any --jobs value.
std::string grid_line(std::size_t cell_id, const GridCell& cell,
                      const RunResult& r) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"cell\": %zu, \"protocol\": \"%s\", \"loss2\": %.10g, "
      "\"delay2_ms\": %.10g, \"delay1_ms\": %.10g, "
      "\"block_symbols\": %u, \"seed\": %llu, "
      "\"delivered_bytes\": %llu, \"goodput_MBps\": %.10g, "
      "\"blocks_completed\": %llu, \"mean_delay_ms\": %.10g, "
      "\"jitter_ms\": %.10g, \"max_delay_ms\": %.10g, "
      "\"redundant_symbols\": %llu, \"payload_ok\": %s, "
      "\"sim_events\": %llu}\n",
      cell_id, protocol_name(cell.job.protocol), cell.loss2, cell.delay2_ms,
      cell.delay1_ms, cell.block_symbols,
      static_cast<unsigned long long>(cell.seed),
      static_cast<unsigned long long>(r.delivered_bytes), r.goodput_MBps,
      static_cast<unsigned long long>(r.blocks_completed), r.mean_delay_ms,
      r.jitter_ms, r.max_delay_ms,
      static_cast<unsigned long long>(r.redundant_symbols),
      r.payload_ok ? "true" : "false",
      static_cast<unsigned long long>(r.sim_events));
  return buffer;
}

/// Scans an interrupted run's output for its intact prefix: complete
/// lines whose leading "cell" ids are exactly 0,1,2,... Returns the
/// number of valid lines; `prefix` receives their exact bytes (a torn
/// tail line from a mid-write crash is dropped).
std::size_t scan_resume_prefix(const std::string& path, std::string* prefix) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return 0;
  std::size_t next_cell = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (in.eof() && !line.empty()) break;  // Torn tail: no newline.
    unsigned long long cell = 0;
    if (std::sscanf(line.c_str(), "{\"cell\": %llu,", &cell) != 1 ||
        cell != next_cell || line.back() != '}') {
      break;
    }
    prefix->append(line);
    prefix->push_back('\n');
    ++next_cell;
  }
  return next_cell;
}

int run_grid(FlagParser& flags, double seconds, unsigned threads) {
  GridAxes axes;
  axes.loss2 = parse_double_list(flags.get_string(
      "grid-loss", "0,0.005,0.01,0.02,0.05,0.1", "path-2 loss axis"));
  axes.delay2_ms = parse_double_list(flags.get_string(
      "grid-delay2", "50,100,150,200", "path-2 one-way delay axis (ms)"));
  axes.delay1_ms = parse_double_list(flags.get_string(
      "grid-delay1", "50,100,150,200",
      "path-1 one-way delay axis (ms) — path asymmetry"));
  for (double blocks : parse_double_list(flags.get_string(
           "grid-blocks", "16,64,128", "block size axis (source symbols)"))) {
    FMTCP_CHECK(blocks >= 1);
    axes.block_symbols.push_back(static_cast<std::uint32_t>(blocks));
  }
  axes.protocols = parse_protocol_list(flags.get_string(
      "grid-protocols", "fmtcp,mptcp", "protocol axis (comma list)"));
  axes.seeds = static_cast<int>(flags.get_int("grid-seeds", 1,
                                              "seeds per grid point"));
  const std::string out_path =
      flags.get_string("out", "grid.jsonl", "grid output (JSONL)");
  const bool resume = flags.get_bool(
      "resume", false, "continue an interrupted run from --out's prefix");

  const std::vector<GridCell> cells = build_grid_cells(axes, seconds);
  std::printf(
      "grid: %zu cells (%zu loss x %zu delay2 x %zu delay1 x %zu blocks "
      "x %zu protocols x %d seeds) x %.0f simulated s, jobs=%u\n",
      cells.size(), axes.loss2.size(), axes.delay2_ms.size(),
      axes.delay1_ms.size(), axes.block_symbols.size(),
      axes.protocols.size(), axes.seeds, seconds, threads);

  std::string prefix;
  std::size_t first_cell = 0;
  if (resume) {
    first_cell = scan_resume_prefix(out_path, &prefix);
    FMTCP_CHECK(first_cell <= cells.size());
    std::printf("resume: %zu/%zu cells already complete in %s\n",
                first_cell, cells.size(), out_path.c_str());
  }

  // "w" + replay of the validated prefix (rather than append) truncates
  // any torn tail line the crash left behind.
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::perror(("cannot open " + out_path).c_str());
    return 1;
  }
  if (!prefix.empty()) {
    FMTCP_CHECK(std::fwrite(prefix.data(), 1, prefix.size(), out) ==
                prefix.size());
  }
  FMTCP_CHECK(std::fflush(out) == 0);

  const auto start = std::chrono::steady_clock::now();
  SweepRunner runner(threads);
  for (std::size_t i = first_cell; i < cells.size(); ++i) {
    runner.submit(cells[i].job);
  }
  std::uint64_t events = 0;
  std::size_t done = first_cell;
  runner.run_streaming([&](std::size_t index, const SweepJob&,
                           RunResult&& result) {
    const std::size_t cell_id = first_cell + index;
    const std::string line = grid_line(cell_id, cells[cell_id], result);
    FMTCP_CHECK(std::fwrite(line.data(), 1, line.size(), out) ==
                line.size());
    // Flush per line: the completed prefix on disk is the resume
    // manifest, so it must survive a kill at any instant.
    FMTCP_CHECK(std::fflush(out) == 0);
    events += result.sim_events;
    ++done;
    if (done % 50 == 0 || done == cells.size()) {
      std::printf("grid: %zu/%zu cells\n", done, cells.size());
    }
  });
  FMTCP_CHECK(std::fclose(out) == 0);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf(
      "grid: %zu cells in %.2f s wall (%.1f cells/s, %.2fM events/s) "
      "-> %s\n",
      cells.size() - first_cell, wall,
      wall > 0 ? static_cast<double>(cells.size() - first_cell) / wall : 0.0,
      wall > 0 ? static_cast<double>(events) / wall / 1e6 : 0.0,
      out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool grid_mode = flags.get_bool(
      "grid", false, "fleet-scale grid mode (streaming JSONL, resumable)");
  const double seconds = flags.get_double(
      "seconds", grid_mode ? 2.0 : 10.0, "simulated seconds per cell");
  const int seeds = flags.get_int("seeds", 2, "seeds per cell");
  const std::string jobs_spec = flags.get_string(
      "jobs", "0", "comma list of thread counts (0 = hardware)");
  const std::string json_path =
      flags.get_string("json", "", "write results as JSON to file");
  const std::string trace_out_path = flags.get_string(
      "trace-out", "", "write Chrome span trace of the last mode");

  if (grid_mode) {
    // Grid mode runs at a single thread count — the last --jobs entry
    // (the parser prepends the serial baseline that scaling mode needs,
    // so "--jobs=4" parses as {1,4}).
    const std::vector<unsigned> jobs_list = parse_jobs_list(jobs_spec);
    return run_grid(flags, seconds, jobs_list.back());
  }

  const std::vector<unsigned> jobs_list = parse_jobs_list(jobs_spec);
  const std::vector<SweepJob> jobs = build_grid(seconds, seeds);
  std::printf("sweep: %zu cells x %.0f simulated seconds, jobs {",
              jobs.size(), seconds);
  for (std::size_t i = 0; i < jobs_list.size(); ++i) {
    std::printf("%s%u", i > 0 ? "," : "", jobs_list[i]);
  }
  std::printf("}\n");

  std::vector<ModeStats> modes;
  std::vector<RunResult> serial_results;
  for (std::size_t i = 0; i < jobs_list.size(); ++i) {
    const unsigned threads = jobs_list[i];
    const bool capture =
        !trace_out_path.empty() && i + 1 == jobs_list.size();
    std::vector<RunResult> results;
    modes.push_back(run_mode(jobs, threads, capture, &results));
    const ModeStats& mode = modes.back();

    if (i == 0) {
      serial_results = std::move(results);
      std::printf("jobs=%-2u   %6.2f s wall, %.2fM events/s\n",
                  mode.jobs, mode.wall_seconds,
                  mode.events_per_second() / 1e6);
    } else {
      expect_identical(serial_results, results);
      std::printf("jobs=%-2u   %6.2f s wall, %.2fM events/s (%.2fx)\n",
                  mode.jobs, mode.wall_seconds,
                  mode.events_per_second() / 1e6,
                  modes.front().wall_seconds / mode.wall_seconds);
    }
  }
  std::printf("results:  all modes bit-identical to serial\n");

  const Slowdown slowdown = analyze_slowdown(modes);
  if (slowdown.valid) {
    std::printf(
        "slowdown: jobs=%u spends %+.0f ms more self time in '%s' than "
        "jobs=%u (%.0f -> %.0f ms)\n",
        slowdown.compared_jobs,
        slowdown.self_ms_compared - slowdown.self_ms_reference,
        slowdown.dominant_span.c_str(), slowdown.reference_jobs,
        slowdown.self_ms_reference, slowdown.self_ms_compared);
  }

  if (!trace_out_path.empty()) {
    obs::trace::write_chrome_trace(modes.back().report, trace_out_path);
    std::printf("trace:    %zu records (jobs=%u) -> %s\n",
                modes.back().report.records.size(), modes.back().jobs,
                trace_out_path.c_str());
  }

  if (!json_path.empty()) {
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr) {
      std::perror(("cannot open " + json_path).c_str());
      return 1;
    }
    // Host context: scaling numbers are meaningless without the core
    // count (on a 1-core box every jobs>1 mode time-slices, so a mild
    // slowdown is expected, not a regression).
    std::fprintf(file,
                 "{\n"
                 "  \"host\": {\n"
                 "    \"hardware_concurrency\": %u,\n"
                 "    \"compiler\": \"%s\"\n"
                 "  },\n"
                 "  \"cells\": %zu,\n"
                 "  \"simulated_seconds_per_cell\": %.1f,\n"
                 "  \"total_sim_events\": %llu,\n"
                 "  \"modes\": [",
                 ThreadPool::hardware_threads(), __VERSION__, jobs.size(),
                 seconds,
                 static_cast<unsigned long long>(modes.front().events));
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const ModeStats& mode = modes[i];
      std::fprintf(file,
                   "%s\n    {\n"
                   "      \"jobs\": %u,\n"
                   "      \"wall_seconds\": %.3f,\n"
                   "      \"events_per_second\": %.0f,\n"
                   "      \"speedup\": %.3f,\n",
                   i > 0 ? "," : "", mode.jobs, mode.wall_seconds,
                   mode.events_per_second(),
                   modes.front().wall_seconds / mode.wall_seconds);
      write_spans_json(file, mode.report, "      ");
      std::fprintf(file, "\n    }");
    }
    std::fprintf(file, "\n  ],\n  \"identical_results\": true");
    if (slowdown.valid) {
      std::fprintf(
          file,
          ",\n  \"slowdown\": {\n"
          "    \"reference_jobs\": %u,\n"
          "    \"compared_jobs\": %u,\n"
          "    \"dominant_span\": \"%s\",\n"
          "    \"self_ms_reference\": %.3f,\n"
          "    \"self_ms_compared\": %.3f,\n"
          "    \"expected_on_host\": %s\n"
          "  }",
          slowdown.reference_jobs, slowdown.compared_jobs,
          slowdown.dominant_span.c_str(), slowdown.self_ms_reference,
          slowdown.self_ms_compared,
          ThreadPool::hardware_threads() == 1 ? "true" : "false");
    }
    std::fprintf(file, "\n}\n");
    FMTCP_CHECK(std::fclose(file) == 0);
    std::printf("json:     -> %s\n", json_path.c_str());
  }
  return 0;
}
