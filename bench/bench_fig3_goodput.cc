// Figure 3 — Goodput comparison between FMTCP and IETF-MPTCP as the
// quality of subflow 2 varies over the Table-I test cases (subflow 1
// fixed at 100 ms delay, no loss). Three seeds per cell, run in
// parallel; mean ± sd reported.
//
// Paper shape to reproduce: FMTCP above IETF-MPTCP in every case; as
// subflow-2 loss rises 2%→15% (cases 1–4) MPTCP degrades sharply (the
// paper reports up to ~60%) while FMTCP degrades only slightly; the gap
// also persists across the delay sweep (cases 5–8).
//
// With --json, emits one JSONL record per (case, protocol) instead of
// the table:
//   {"bench":"fig3_goodput","metric":"goodput_MBps","protocol":"fmtcp",
//    "case":1,"value":0.512,"stddev":0.004}
#include <cstdio>

#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool json = flags.get_bool(
      "json", false, "emit JSONL {metric,protocol,value} records");
  const unsigned parallel_jobs = jobs_from_flags(flags);

  if (!json) {
    print_header("Figure 3: total goodput vs subflow-2 quality (Table I)");
  }

  const std::vector<std::uint64_t> seeds = {1001, 2002, 3003};
  std::vector<SweepJob> jobs;
  for (std::size_t c = 0; c < table1_cases().size(); ++c) {
    for (Protocol protocol : {Protocol::kFmtcp, Protocol::kMptcp}) {
      for (std::uint64_t seed : seeds) {
        SweepJob job;
        job.protocol = protocol;
        job.scenario = table1_scenario(c);
        job.scenario.seed = seed;
        jobs.push_back(job);
      }
    }
  }
  const std::vector<RunResult> results = run_parallel(jobs, parallel_jobs);

  const auto cell = [&](std::size_t c, int protocol_index) {
    std::vector<RunResult> slice(
        results.begin() +
            static_cast<long>((c * 2 + protocol_index) * seeds.size()),
        results.begin() +
            static_cast<long>((c * 2 + protocol_index + 1) * seeds.size()));
    return aggregate(slice,
                     [](const RunResult& r) { return r.goodput_MBps; });
  };

  if (json) {
    for (std::size_t c = 0; c < table1_cases().size(); ++c) {
      const SeedStats fmtcp_stats = cell(c, 0);
      const SeedStats mptcp_stats = cell(c, 1);
      std::printf(
          "{\"bench\":\"fig3_goodput\",\"metric\":\"goodput_MBps\","
          "\"protocol\":\"fmtcp\",\"case\":%zu,\"value\":%.6f,"
          "\"stddev\":%.6f}\n",
          c + 1, fmtcp_stats.mean, fmtcp_stats.stddev);
      std::printf(
          "{\"bench\":\"fig3_goodput\",\"metric\":\"goodput_MBps\","
          "\"protocol\":\"mptcp\",\"case\":%zu,\"value\":%.6f,"
          "\"stddev\":%.6f}\n",
          c + 1, mptcp_stats.mean, mptcp_stats.stddev);
    }
    return 0;
  }

  std::vector<std::vector<std::string>> rows;
  SeedStats fmtcp_case1;
  SeedStats fmtcp_case4;
  SeedStats mptcp_case1;
  SeedStats mptcp_case4;
  for (std::size_t c = 0; c < table1_cases().size(); ++c) {
    const SeedStats fmtcp_stats = cell(c, 0);
    const SeedStats mptcp_stats = cell(c, 1);
    if (c == 0) {
      fmtcp_case1 = fmtcp_stats;
      mptcp_case1 = mptcp_stats;
    }
    if (c == 3) {
      fmtcp_case4 = fmtcp_stats;
      mptcp_case4 = mptcp_stats;
    }
    const Scenario scenario = table1_scenario(c);
    rows.push_back({std::to_string(c + 1),
                    fmt(scenario.path2.delay_ms, 0),
                    fmt(scenario.path2.loss * 100, 0),
                    fmt(fmtcp_stats.mean, 3) + "±" +
                        fmt(fmtcp_stats.stddev, 3),
                    fmt(mptcp_stats.mean, 3) + "±" +
                        fmt(mptcp_stats.stddev, 3),
                    fmt(fmtcp_stats.mean / mptcp_stats.mean, 2)});
  }

  print_table({"case", "delay2(ms)", "loss2(%)", "FMTCP(MB/s)",
               "MPTCP(MB/s)", "ratio"},
              rows);

  std::printf(
      "\nloss sweep degradation (case 1 -> 4): FMTCP %.1f%%, "
      "IETF-MPTCP %.1f%%  (3 seeds per cell)\n",
      100.0 * (1.0 - fmtcp_case4.mean / fmtcp_case1.mean),
      100.0 * (1.0 - mptcp_case4.mean / mptcp_case1.mean));
  return 0;
}
