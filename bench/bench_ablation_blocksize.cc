// Ablation A3 — block size (k̂) sweep: the paper's §III-B constraints.
// Larger blocks amortise the δ̂ margin (lower redundancy) but pin more
// receive buffer and delay each block's completion; smaller blocks decode
// sooner but pay proportionally more margin overhead.
#include <algorithm>

#include "harness/printer.h"
#include "harness/runner.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main() {
  print_header("Ablation A3: block-size sweep on test case 3 (100ms, 10%)");

  std::vector<std::vector<std::string>> rows;
  for (std::uint32_t k : {16u, 32u, 64u, 128u, 256u}) {
    Scenario scenario = table1_scenario(2);
    scenario.duration = 60 * kSecond;
    ProtocolOptions options = ProtocolOptions::defaults();
    options.fmtcp.block_symbols = k;
    // Keep the pending window a constant number of bytes.
    options.fmtcp.max_pending_blocks =
        std::max<std::size_t>(4, 128 * 64 / k);
    const RunResult r = run_scenario(Protocol::kFmtcp, scenario, options);
    rows.push_back({std::to_string(k),
                    std::to_string(options.fmtcp.block_bytes()),
                    fmt(r.goodput_MBps, 3), fmt(r.mean_delay_ms, 0),
                    fmt(r.jitter_ms, 0),
                    fmt(r.coding_overhead(k) * 100, 1)});
  }
  print_table({"k_hat", "block(B)", "goodput(MB/s)", "delay(ms)",
               "jitter(ms)", "overhead(%)"},
              rows);
  return 0;
}
