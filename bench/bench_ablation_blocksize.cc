// Ablation A3 — block size (k̂) sweep: the paper's §III-B constraints.
// Larger blocks amortise the δ̂ margin (lower redundancy) but pin more
// receive buffer and delay each block's completion; smaller blocks decode
// sooner but pay proportionally more margin overhead.
#include <algorithm>

#include "common/flags.h"
#include "harness/printer.h"
#include "harness/sweep.h"
#include "harness/table1.h"

using namespace fmtcp;
using namespace fmtcp::harness;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  SweepRunner runner(jobs_from_flags(flags));

  print_header("Ablation A3: block-size sweep on test case 3 (100ms, 10%)");

  const std::uint32_t ks[] = {16u, 32u, 64u, 128u, 256u};
  std::vector<ProtocolOptions> all_options;
  for (std::uint32_t k : ks) {
    Scenario scenario = table1_scenario(2);
    scenario.duration = 60 * kSecond;
    ProtocolOptions options = ProtocolOptions::defaults();
    options.fmtcp.block_symbols = k;
    // Keep the pending window a constant number of bytes.
    options.fmtcp.max_pending_blocks =
        std::max<std::size_t>(4, 128 * 64 / k);
    all_options.push_back(options);
    runner.submit(Protocol::kFmtcp, scenario, options);
  }
  const std::vector<RunResult> results = runner.run();

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const std::uint32_t k = ks[i];
    rows.push_back({std::to_string(k),
                    std::to_string(all_options[i].fmtcp.block_bytes()),
                    fmt(r.goodput_MBps, 3), fmt(r.mean_delay_ms, 0),
                    fmt(r.jitter_ms, 0),
                    fmt(r.coding_overhead(k) * 100, 1)});
  }
  print_table({"k_hat", "block(B)", "goodput(MB/s)", "delay(ms)",
               "jitter(ms)", "overhead(%)"},
              rows);
  return 0;
}
