#!/usr/bin/env python3
"""Determinism lint for result-affecting FMTCP code.

The repo's load-bearing invariant is that every simulation result —
fig3–7, Table I, and parallel sweeps at any --jobs — is bit-identical
run to run and thread-count to thread-count. That only holds if the
result-affecting code draws no entropy from outside the seeded Rng and
orders nothing by memory address or hash-table layout. This lint bans
the classic leak sources at review time, before a TSan run or a
determinism test would have to catch the symptom:

  rand            std::rand / srand / std::random_device — unseeded or
                  machine-dependent entropy. Use fmtcp::Rng streams.
  wall-clock      time(), gettimeofday, clock_gettime, std::chrono
                  clocks — wall time varies per run and per host. The
                  obs layer (spans, sim-progress profiling) is the one
                  place allowed to look at a clock.
  unordered-iter  Iteration over std::unordered_map/set — the visit
                  order depends on hash seeding, allocation addresses
                  and load factor, so anything it feeds (output rows,
                  event ordering, accumulation of floats) can differ
                  between runs. Iterate a sorted/stable container, or
                  sort before consuming.
  cpu-dispatch    __builtin_cpu_supports / __get_cpuid / getauxval —
                  host CPU probing. Feature-based dispatch is allowed
                  to change throughput, never a result; every probe
                  must live behind common/cpu_features with a
                  documented NOLINT so review sees each site. A NOLINT
                  on this rule is only honored inside the dispatch TU
                  itself (cpu_features.cc) — both the GF(2) and GF(256)
                  kernel planes read the probed CpuFeatures struct, and
                  a raw probe anywhere else (even a justified one) would
                  fork the dispatch decision per call site.
  pointer-key     std::map/set (or unordered_) keyed on a pointer —
                  iteration order is address order, i.e. allocator
                  behaviour; and identical content at distinct
                  addresses (string literals across TUs) splits rows.

Escape hatch, one finding at a time and only with a reason:

    foo();  // NOLINT-DETERMINISM(wall-clock diagnostics only)

or on the line directly above the flagged one. A bare or empty
NOLINT-DETERMINISM is itself an error — the acceptance bar is zero
*unexplained* suppressions.

Scanned: src/** except src/obs/** (the observability plane measures
wall time by design). bench/, tools/, tests/, examples/ are out of
scope — they are allowed to time things and print diagnostics.

Usage:
  tools/lint_determinism.py [--root REPO] [paths...]
  tools/lint_determinism.py --self-test        # run against fixtures
  tools/lint_determinism.py --list-rules
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

# Directories scanned relative to the repo root, and subtrees excluded
# from them. src/obs is the deliberate allowlist: the trace plane and
# event-loop profiling exist to measure wall time.
SCAN_DIRS = ("src",)
ALLOWLIST = ("src/obs",)
EXTENSIONS = (".h", ".cc")

NOLINT_RE = re.compile(r"//\s*NOLINT-DETERMINISM\s*(?:\(([^)]*)\))?")

# The one TU allowed to probe the CPU, even with a NOLINT reason. Matched
# by basename so explicit-path scans and self-test fixtures behave the
# same as the default tree walk.
CPU_DISPATCH_TU_BASENAME = "cpu_features.cc"


@dataclass(frozen=True)
class Rule:
    name: str
    pattern: re.Pattern
    message: str


RULES = (
    Rule(
        "rand",
        re.compile(
            r"\bstd::rand\b|(?<![\w:])srand\s*\(|\brandom_device\b"
        ),
        "unseeded/machine entropy; draw from a seeded fmtcp::Rng stream",
    ),
    Rule(
        "wall-clock",
        re.compile(
            r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
            r"|(?<![\w:])gettimeofday\s*\("
            r"|(?<![\w:])clock_gettime\s*\("
            r"|\bstd::time\b|\bstd::clock\b"
            r"|(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        ),
        "wall clock in result-affecting code; sim time comes from the "
        "scheduler, profiling belongs in src/obs",
    ),
    Rule(
        "unordered-iter",
        # Filled in dynamically per file: range-for over an expression
        # mentioning unordered_, or over an identifier declared as an
        # unordered container earlier in the same file.
        re.compile(r"for\s*\([^;)]*:\s*[^)]*unordered_"),
        "iterating an unordered container; hash-layout order can feed "
        "output or event ordering — use a sorted container or sort first",
    ),
    Rule(
        "cpu-dispatch",
        re.compile(
            r"\b__builtin_cpu_supports\s*\("
            r"|\b__builtin_cpu_init\s*\("
            r"|\b__get_cpuid(?:_count)?\s*\("
            r"|(?<![\w:])getauxval\s*\("
            r"|\b_xgetbv\s*\("
        ),
        "CPU feature probing; host-dependent dispatch may change "
        "throughput only, never a result — route it through "
        "common/cpu_features and justify the probe site",
    ),
    Rule(
        "pointer-key",
        re.compile(
            r"(?:unordered_)?map\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?"
            r"\s*\*\s*(?:const\s*)?,"
            r"|(?:unordered_)?set\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?"
            r"\s*\*\s*(?:const\s*)?>"
        ),
        "pointer-keyed map/set; iteration order is address order and "
        "equal content at distinct addresses splits keys — key by value "
        "(string_view/id) instead",
    ),
)

# Declarations like `std::unordered_map<K, V> name;` / `...> name =` —
# collected per file so `for (x : name)` trips unordered-iter even when
# the type is not spelled in the loop.
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s*&?\s*"
    r"(\w+)\s*(?:[;={(]|$)"
)
RANGE_FOR_RE = re.compile(r"for\s*\([^;()]*[&\s]:\s*(.+)\)\s*\{?")
IDENT_RE = re.compile(r"(\w+)\s*$")


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Drops // comments and the bodies of "..." literals, so banned
    tokens in prose or log strings do not trip rules. Char literals are
    skipped so '"' cannot open a phantom string. (Block comments are
    rare in this codebase and not handled; a stray token inside one can
    be NOLINT'd.)"""
    out = []
    i, n = 0, len(line)
    in_string = False
    while i < n:
        c = line[i]
        if in_string:
            if c == "\\":
                i += 2
                continue
            if c == '"':
                in_string = False
                out.append(c)
            i += 1
            continue
        if c == "'":
            # Char literal: skip to its closing quote ('\'' included).
            j = i + 1
            while j < n and line[j] != "'":
                j += 2 if line[j] == "\\" else 1
            i = j + 1
            continue
        if c == '"':
            in_string = True
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def scan_lines(path: str, lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    unordered_names: set[str] = set()
    # NOLINT on line N suppresses findings on N and N+1.
    suppressed: dict[int, str] = {}
    for number, raw in enumerate(lines, start=1):
        m = NOLINT_RE.search(raw)
        if m:
            reason = (m.group(1) or "").strip()
            if not reason:
                findings.append(
                    Finding(
                        path,
                        number,
                        "nolint",
                        "NOLINT-DETERMINISM without a reason; write "
                        "NOLINT-DETERMINISM(<why this is safe>)",
                    )
                )
            else:
                suppressed[number] = reason
                suppressed[number + 1] = reason

    for number, raw in enumerate(lines, start=1):
        code = strip_comments_and_strings(raw)
        decl = UNORDERED_DECL_RE.search(code)
        if decl:
            unordered_names.add(decl.group(1))

        hits: list[Rule] = []
        for rule in RULES:
            if rule.name == "unordered-iter":
                continue  # handled below
            if rule.pattern.search(code):
                hits.append(rule)

        iter_rule = RULES[2]
        range_for = RANGE_FOR_RE.search(code)
        if range_for:
            expr = range_for.group(1).strip()
            ident = IDENT_RE.search(
                expr.split(".")[-1].split("->")[-1].replace("()", "")
            )
            if "unordered_" in expr or (
                ident and ident.group(1) in unordered_names
            ):
                hits.append(iter_rule)

        for rule in hits:
            if number in suppressed:
                if (
                    rule.name == "cpu-dispatch"
                    and os.path.basename(path) != CPU_DISPATCH_TU_BASENAME
                ):
                    findings.append(
                        Finding(
                            path,
                            number,
                            "cpu-dispatch",
                            "CPU probe NOLINT'd outside the dispatch TU "
                            "(common/cpu_features.cc); read the probed "
                            "features via common/cpu_features.h instead",
                        )
                    )
                continue
            findings.append(Finding(path, number, rule.name, rule.message))
    return findings


def scan_file(path: str, display: str | None = None) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    return scan_lines(display or path, lines)


def iter_scan_files(root: str):
    for scan_dir in SCAN_DIRS:
        base = os.path.join(root, scan_dir)
        for dirpath, dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root)
            if any(
                rel_dir == a or rel_dir.startswith(a + os.sep)
                for a in ALLOWLIST
            ):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(EXTENSIONS):
                    yield os.path.join(dirpath, name)


def run_self_test(fixtures_dir: str) -> int:
    """Each fixture line expecting a finding carries an
    `EXPECT-LINT(rule)` marker (inside a comment, so it never alters
    what the rules see in code). The fixture passes when the found
    (line, rule) set equals the expected set."""
    expect_re = re.compile(r"EXPECT-LINT\(([\w-]+)\)")
    fixtures = sorted(
        f
        for f in os.listdir(fixtures_dir)
        if f.endswith(EXTENSIONS)
    )
    if not fixtures:
        print(f"self-test: no fixtures under {fixtures_dir}", file=sys.stderr)
        return 2
    failures = 0
    for fixture in fixtures:
        path = os.path.join(fixtures_dir, fixture)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        expected = set()
        for number, line in enumerate(lines, start=1):
            for m in expect_re.finditer(line):
                expected.add((number, m.group(1)))
        found = {
            (f.line, f.rule) for f in scan_lines(fixture, lines)
        }
        if found != expected:
            failures += 1
            print(f"self-test FAIL: {fixture}", file=sys.stderr)
            for line, rule in sorted(expected - found):
                print(f"  missing: line {line} [{rule}]", file=sys.stderr)
            for line, rule in sorted(found - expected):
                print(f"  spurious: line {line} [{rule}]", file=sys.stderr)
    total = len(fixtures)
    if failures:
        print(f"self-test: {failures}/{total} fixtures failed",
              file=sys.stderr)
        return 1
    print(f"self-test: {total} fixtures ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Determinism lint for result-affecting FMTCP code"
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the rule fixtures under tests/lint/fixtures",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rules and exit"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="explicit files to scan instead of the default tree "
        "(allowlist not applied)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.message}")
        return 0

    if args.self_test:
        fixtures = os.path.join(args.root, "tests", "lint", "fixtures")
        return run_self_test(fixtures)

    findings: list[Finding] = []
    if args.paths:
        for path in args.paths:
            findings.extend(scan_file(path))
        scanned = len(args.paths)
    else:
        scanned = 0
        for path in iter_scan_files(args.root):
            display = os.path.relpath(path, args.root)
            findings.extend(scan_file(path, display))
            scanned += 1

    for finding in findings:
        print(finding.render())
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s) in "
            f"{scanned} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"lint_determinism: {scanned} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
