#!/bin/sh
# Perf baseline: build the optimised benches and record sweep throughput
# (serial vs parallel wall time, events/sec) into BENCH_sweep.json and
# codec decode throughput (eager-equivalent vs lazy, MB/s + symbols/s)
# into BENCH_codec.json at the repo root, plus the scheduler microbench
# numbers on stdout.
#
#   tools/bench.sh [build-dir]      (default: build)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

# The repo's default build type (RelWithDebInfo) — same config the
# committed BENCH_*.json numbers were recorded under.
cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$(nproc)" --target \
  bench_sweep bench_sim_micro bench_codec_micro

# Scaling mode: serial baseline plus 2/4/8-thread pooled runs, each
# under a span-profiling session. The JSON records per-mode wall time,
# the span aggregate tables, and the "slowdown" analysis naming the
# span whose self time grew most from jobs=1 to jobs=2.
"$build/bench/bench_sweep" --jobs=1,2,4,8 --json="$repo/BENCH_sweep.json"

# Codec decode-throughput baseline (tools/check.sh FMTCP_BENCH_GUARD=1
# compares future runs against this file). Three separate processes,
# merged elementwise-min: per-process heap layout shifts each case by a
# few percent, and the committed floor must be one a guard run on an
# idle box can always meet.
"$build/bench/bench_codec_micro" --json="$repo/BENCH_codec.json"
"$build/bench/bench_codec_micro" --json="$repo/BENCH_codec.json" --merge-min
"$build/bench/bench_codec_micro" --json="$repo/BENCH_codec.json" --merge-min

# Event-loop microbenches (scheduler churn, dispatch-profiling gate,
# full-stack simulated-second cost). Informational; not recorded.
"$build/bench/bench_sim_micro" --benchmark_min_time=0.2

echo "bench.sh: wrote $repo/BENCH_sweep.json and $repo/BENCH_codec.json"
