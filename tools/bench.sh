#!/bin/sh
# Perf baseline: build the optimised benches and record sweep throughput
# (serial vs parallel wall time, events/sec) into BENCH_sweep.json at the
# repo root, plus the scheduler/codec microbench numbers on stdout.
#
#   tools/bench.sh [build-dir]      (default: build)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

# The repo's default build type (RelWithDebInfo) — same config the
# committed BENCH_sweep.json numbers were recorded under.
cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$(nproc)" --target \
  bench_sweep bench_sim_micro

# --jobs=2 floor so the pooled path is exercised even on 1-core boxes
# (the JSON records the thread count used).
jobs="$(nproc)"
[ "$jobs" -lt 2 ] && jobs=2
"$build/bench/bench_sweep" --jobs="$jobs" --json="$repo/BENCH_sweep.json"

# Event-loop microbenches (scheduler churn, dispatch-profiling gate,
# full-stack simulated-second cost). Informational; not recorded.
"$build/bench/bench_sim_micro" --benchmark_min_time=0.2

echo "bench.sh: wrote $repo/BENCH_sweep.json"
