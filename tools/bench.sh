#!/bin/sh
# Perf baseline: build the optimised benches and record sweep throughput
# (serial vs parallel wall time, events/sec) into BENCH_sweep.json,
# codec decode throughput (eager-equivalent vs lazy, MB/s + symbols/s)
# into BENCH_codec.json, and event-core replay throughput (timer wheel
# vs the frozen seed heap on recorded cell traces) into BENCH_sched.json
# at the repo root, plus the scheduler microbench numbers on stdout.
#
#   tools/bench.sh [build-dir]      (default: build)
#
# FMTCP_FORCE_KERNEL=scalar|sse2|avx2|avx512|neon pins the GF(2) kernel
# for the codec bench (the bench records which kernel ran in the JSON).
# Forced runs write BENCH_codec.<kernel>.json instead of the committed
# baseline: BENCH_codec.json stays the native-dispatch floor the
# tools/check.sh guard compares against, and forced files sit beside it
# for kernel-vs-kernel comparison (see EXPERIMENTS.md).
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

codec_json="$repo/BENCH_codec.json"
if [ -n "${FMTCP_FORCE_KERNEL:-}" ]; then
  codec_json="$repo/BENCH_codec.${FMTCP_FORCE_KERNEL}.json"
  echo "bench.sh: kernel forced to ${FMTCP_FORCE_KERNEL};" \
       "writing $codec_json"
fi

# The repo's default build type (RelWithDebInfo) — same config the
# committed BENCH_*.json numbers were recorded under.
cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$(nproc)" --target \
  bench_sweep bench_sim_micro bench_codec_micro

# Scaling mode: serial baseline plus 2/4/8-thread pooled runs, each
# under a span-profiling session. The JSON records per-mode wall time,
# the span aggregate tables, the host's hardware_concurrency, and the
# "slowdown" analysis naming the span whose self time grew most from
# jobs=1 to jobs=2.
"$build/bench/bench_sweep" --jobs=1,2,4,8 --json="$repo/BENCH_sweep.json"
if [ "$(nproc)" = "1" ]; then
  echo "bench.sh: NOTE: single-core host — pooled sweep runs are" \
       "expected to be slower than serial here (the JSON records" \
       "\"expected_on_host\": true); scaling numbers are only" \
       "meaningful on a multi-core box."
fi

# Codec decode-throughput baseline (tools/check.sh FMTCP_BENCH_GUARD=1
# compares future runs against this file). Three separate processes,
# merged elementwise-min: per-process heap layout shifts each case by a
# few percent, and the committed floor must be one a guard run on an
# idle box can always meet.
"$build/bench/bench_codec_micro" --json="$codec_json"
"$build/bench/bench_codec_micro" --json="$codec_json" --merge-min
"$build/bench/bench_codec_micro" --json="$codec_json" --merge-min

# Event-core replay baseline: records a real fmtcp and mptcp cell's
# scheduler operation trace, replays it with no-op callbacks on the
# timer wheel and the frozen seed heap, and writes the events/sec
# floors (same 3-pass elementwise-min policy as the codec bench).
# tools/check.sh FMTCP_BENCH_GUARD=1 guards against this file.
"$build/bench/bench_sim_micro" --json="$repo/BENCH_sched.json"
"$build/bench/bench_sim_micro" --json="$repo/BENCH_sched.json" --merge-min
"$build/bench/bench_sim_micro" --json="$repo/BENCH_sched.json" --merge-min

# Event-loop microbenches (scheduler churn, dispatch-profiling gate,
# full-stack simulated-second cost). Informational; not recorded.
"$build/bench/bench_sim_micro" --benchmark_min_time=0.2

echo "bench.sh: wrote $repo/BENCH_sweep.json, $repo/BENCH_sched.json," \
     "and $codec_json"
