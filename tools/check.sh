#!/bin/sh
# Smoke check: build with AddressSanitizer + UBSan and run the full test
# suite, then a short instrumented simulation. Catches memory errors the
# regular RelWithDebInfo build will not.
#
#   tools/check.sh [build-dir]          (default: build-asan)
#
# FMTCP_TSAN=1 tools/check.sh [build-dir]   (default: build-tsan)
#   builds with ThreadSanitizer instead and exercises the concurrent
#   paths: thread pool, parallel sweeps, packet-uid streams. TSan and
#   ASan cannot be combined, so this is a separate mode/build dir.
#
# FMTCP_BENCH_GUARD=1 tools/check.sh [build-dir]   (default: build)
#   perf-regression mode: builds the regular optimised config, runs the
#   bench_codec_micro decode-throughput harness and the bench_sim_micro
#   event-core replay harness, and fails if any case regressed more
#   than 20% against the committed BENCH_codec.json / BENCH_sched.json
#   baselines. Skipped by default — wall-clock numbers are only
#   meaningful on a quiet machine comparable to the baseline's.
#
# FMTCP_STATIC=1 tools/check.sh [build-dir]   (default: build-static)
#   static-analysis mode, three legs (docs/ARCHITECTURE.md "Static
#   analysis"):
#     1. determinism lint (tools/lint_determinism.py) — self-test, then
#        the result-affecting src/ tree must be clean;
#     2. clang -Werror=thread-safety build over the annotations in
#        common/thread_annotations.h (FMTCP_THREAD_SAFETY=ON);
#     3. clang-tidy over the full compile database (.clang-tidy).
#   Legs 2 and 3 need a clang toolchain; on a machine without one they
#   SKIP loudly (the lint still gates). CI runs all three.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"

# First available binary from the argument list, tried bare and with the
# version suffixes recent distros ship (-20 ... -14); empty if none.
find_tool() {
  for base in "$@"; do
    for suffix in "" -20 -19 -18 -17 -16 -15 -14; do
      if command -v "$base$suffix" > /dev/null 2>&1; then
        echo "$base$suffix"
        return 0
      fi
    done
  done
  return 0
}

if [ "${FMTCP_STATIC:-0}" = "1" ]; then
  build="${1:-$repo/build-static}"
  status=0

  echo "== static leg 1/3: determinism lint =="
  python3 "$repo/tools/lint_determinism.py" --self-test --root "$repo"
  python3 "$repo/tools/lint_determinism.py" --root "$repo"

  clangxx="$(find_tool clang++)"
  echo "== static leg 2/3: clang thread-safety build =="
  if [ -n "$clangxx" ]; then
    cmake -B "$build" -S "$repo" -DCMAKE_CXX_COMPILER="$clangxx" \
      -DFMTCP_THREAD_SAFETY=ON -DFMTCP_WERROR=ON
    cmake --build "$build" -j "$(nproc)"
  else
    echo "SKIP: no clang++ on PATH — -Werror=thread-safety needs clang." >&2
    status=1
  fi

  tidy="$(find_tool clang-tidy)"
  echo "== static leg 3/3: clang-tidy =="
  if [ -n "$tidy" ]; then
    # The thread-safety build above exported the compile database; fall
    # back to a plain configure when leg 2 was skipped.
    if [ ! -f "$build/compile_commands.json" ]; then
      cmake -B "$build" -S "$repo"
    fi
    runner="$(find_tool run-clang-tidy run-clang-tidy.py)"
    if [ -n "$runner" ]; then
      "$runner" -clang-tidy-binary "$tidy" -p "$build" -quiet \
        "$repo/(src|tests|bench|tools|examples)/"
    else
      # No run-clang-tidy wrapper: drive clang-tidy over every TU in the
      # compile database ourselves.
      python3 -c "import json,sys;  \
        [print(e['file']) for e in json.load(open(sys.argv[1]))]" \
        "$build/compile_commands.json" |
        xargs -P "$(nproc)" -n 8 "$tidy" -p "$build" -quiet
    fi
  else
    echo "SKIP: no clang-tidy on PATH." >&2
    status=1
  fi

  if [ "$status" -ne 0 ]; then
    echo "check.sh (static): lint clean; clang legs SKIPPED (no clang" \
      "toolchain here — run on a machine with clang, e.g. the CI" \
      "static job, for full coverage)"
  else
    echo "check.sh (static): all good"
  fi
  exit 0
fi

if [ "${FMTCP_BENCH_GUARD:-0}" = "1" ]; then
  build="${1:-$repo/build}"
  cmake -B "$build" -S "$repo"
  cmake --build "$build" -j "$(nproc)" --target \
    bench_codec_micro bench_sim_micro
  "$build/bench/bench_codec_micro" --guard="$repo/BENCH_codec.json" \
    --max-regression=0.20
  "$build/bench/bench_sim_micro" --guard="$repo/BENCH_sched.json" \
    --max-regression=0.20
  echo "check.sh (bench guard): all good"
  exit 0
fi

if [ "${FMTCP_TSAN:-0}" = "1" ]; then
  build="${1:-$repo/build-tsan}"
  cmake -B "$build" -S "$repo" -DFMTCP_SANITIZE=thread \
    -DFMTCP_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc)"

  # The concurrency surface: pool, sweep determinism, uid streams, span
  # tracer cross-thread drains — plus a traced parallel sweep under
  # load. Everything else is single-threaded by construction and
  # covered by the ASan mode.
  (cd "$build" && ctest --output-on-failure -j "$(nproc)" \
    -R 'ThreadPool|SweepRunner|Sweep\.|PacketUid|UidsUnique|GlobalUids|SpanTracer')
  "$build/bench/bench_sweep" --seconds=2 --seeds=1 --jobs=4 \
    --trace-out="$build/check_spans.json"

  echo "check.sh (tsan): all good"
  exit 0
fi

build="${1:-$repo/build-asan}"

cmake -B "$build" -S "$repo" -DFMTCP_SANITIZE=address,undefined \
  -DFMTCP_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)"

(cd "$build" && ctest --output-on-failure -j "$(nproc)")

# A short observability-instrumented run exercises the JSONL/JSON
# writers under the sanitizers too, and the --trace-out output must
# parse as valid JSON (Perfetto/chrome://tracing compatibility).
"$build/tools/fmtcp_sim" --protocol=fmtcp --loss2=0.15 --duration=5 \
  --metrics-json="$build/check_metrics.json" \
  --timeline="$build/check_timeline.jsonl" \
  --trace-out="$build/check_spans.json" --profile
"$build/tools/trace_summary" --timeline "$build/check_timeline.jsonl"
"$build/tools/trace_summary" --spans "$build/check_spans.json"
python3 -m json.tool "$build/check_spans.json" > /dev/null
python3 -m json.tool "$build/check_metrics.json" > /dev/null

# The GF(256) ablation codec end to end under the sanitizers: once on
# the host-dispatched multiply kernel, once pinned to scalar (results
# must not depend on the kernel; ctest's *_scalar_kernel legs cover the
# suites, this covers the full protocol path).
"$build/tools/fmtcp_sim" --protocol=fmtcp --coding=gf256 --loss2=0.15 \
  --duration=5 > /dev/null
FMTCP_FORCE_KERNEL=scalar "$build/tools/fmtcp_sim" --protocol=fmtcp \
  --coding=gf256 --loss2=0.15 --duration=5 > /dev/null

# Grid-sweep determinism smoke: a small grid must stream byte-identical
# JSONL at any job count, and resuming from a torn file (half the lines
# plus a truncated tail) must reproduce the same bytes without
# recomputing the completed prefix.
grid_flags="--grid --grid-loss=0,0.05 --grid-delay2=50,100 \
  --grid-delay1=100 --grid-blocks=64 --grid-seeds=1 --seconds=1"
"$build/bench/bench_sweep" $grid_flags --jobs=1 \
  --out="$build/check_grid_serial.jsonl" > /dev/null
"$build/bench/bench_sweep" $grid_flags --jobs=2 \
  --out="$build/check_grid_pooled.jsonl" > /dev/null
cmp "$build/check_grid_serial.jsonl" "$build/check_grid_pooled.jsonl"
{ head -n 2 "$build/check_grid_serial.jsonl";
  head -n 3 "$build/check_grid_serial.jsonl" | tail -n 1 | cut -c1-20; } \
  > "$build/check_grid_resume.jsonl"
"$build/bench/bench_sweep" $grid_flags --jobs=2 --resume \
  --out="$build/check_grid_resume.jsonl" > /dev/null
cmp "$build/check_grid_serial.jsonl" "$build/check_grid_resume.jsonl"

echo "check.sh: all good"
