#!/bin/sh
# Smoke check: build with AddressSanitizer + UBSan and run the full test
# suite, then a short instrumented simulation. Catches memory errors the
# regular RelWithDebInfo build will not.
#
#   tools/check.sh [build-dir]          (default: build-asan)
#
# FMTCP_TSAN=1 tools/check.sh [build-dir]   (default: build-tsan)
#   builds with ThreadSanitizer instead and exercises the concurrent
#   paths: thread pool, parallel sweeps, packet-uid streams. TSan and
#   ASan cannot be combined, so this is a separate mode/build dir.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"

if [ "${FMTCP_TSAN:-0}" = "1" ]; then
  build="${1:-$repo/build-tsan}"
  cmake -B "$build" -S "$repo" -DFMTCP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc)"

  # The concurrency surface: pool, sweep determinism, uid streams —
  # plus a parallel sweep under load. Everything else is single-threaded
  # by construction and covered by the ASan mode.
  (cd "$build" && ctest --output-on-failure -j "$(nproc)" \
    -R 'ThreadPool|SweepRunner|Sweep\.|PacketUid|UidsUnique|GlobalUids')
  "$build/bench/bench_sweep" --seconds=2 --seeds=1 --jobs=4

  echo "check.sh (tsan): all good"
  exit 0
fi

build="${1:-$repo/build-asan}"

cmake -B "$build" -S "$repo" -DFMTCP_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)"

(cd "$build" && ctest --output-on-failure -j "$(nproc)")

# A short observability-instrumented run exercises the JSONL/JSON
# writers under the sanitizers too.
"$build/tools/fmtcp_sim" --protocol=fmtcp --loss2=0.15 --duration=5 \
  --metrics-json="$build/check_metrics.json" \
  --timeline="$build/check_timeline.jsonl"
"$build/tools/trace_summary" --timeline "$build/check_timeline.jsonl"

echo "check.sh: all good"
