#!/bin/sh
# Smoke check: build with AddressSanitizer + UBSan and run the full test
# suite, then a short instrumented simulation. Catches memory errors the
# regular RelWithDebInfo build will not.
#
#   tools/check.sh [build-dir]      (default: build-asan)
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-asan}"

cmake -B "$build" -S "$repo" -DFMTCP_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)"

(cd "$build" && ctest --output-on-failure -j "$(nproc)")

# A short observability-instrumented run exercises the JSONL/JSON
# writers under the sanitizers too.
"$build/tools/fmtcp_sim" --protocol=fmtcp --loss2=0.15 --duration=5 \
  --metrics-json="$build/check_metrics.json" \
  --timeline="$build/check_timeline.jsonl"
"$build/tools/trace_summary" --timeline "$build/check_timeline.jsonl"

echo "check.sh: all good"
