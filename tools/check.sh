#!/bin/sh
# Smoke check: build with AddressSanitizer + UBSan and run the full test
# suite, then a short instrumented simulation. Catches memory errors the
# regular RelWithDebInfo build will not.
#
#   tools/check.sh [build-dir]          (default: build-asan)
#
# FMTCP_TSAN=1 tools/check.sh [build-dir]   (default: build-tsan)
#   builds with ThreadSanitizer instead and exercises the concurrent
#   paths: thread pool, parallel sweeps, packet-uid streams. TSan and
#   ASan cannot be combined, so this is a separate mode/build dir.
#
# FMTCP_BENCH_GUARD=1 tools/check.sh [build-dir]   (default: build)
#   perf-regression mode: builds the regular optimised config, runs the
#   bench_codec_micro decode-throughput harness, and fails if any case
#   regressed more than 20% against the committed BENCH_codec.json
#   baseline. Skipped by default — wall-clock numbers are only
#   meaningful on a quiet machine comparable to the baseline's.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"

if [ "${FMTCP_BENCH_GUARD:-0}" = "1" ]; then
  build="${1:-$repo/build}"
  cmake -B "$build" -S "$repo"
  cmake --build "$build" -j "$(nproc)" --target bench_codec_micro
  "$build/bench/bench_codec_micro" --guard="$repo/BENCH_codec.json" \
    --max-regression=0.20
  echo "check.sh (bench guard): all good"
  exit 0
fi

if [ "${FMTCP_TSAN:-0}" = "1" ]; then
  build="${1:-$repo/build-tsan}"
  cmake -B "$build" -S "$repo" -DFMTCP_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc)"

  # The concurrency surface: pool, sweep determinism, uid streams, span
  # tracer cross-thread drains — plus a traced parallel sweep under
  # load. Everything else is single-threaded by construction and
  # covered by the ASan mode.
  (cd "$build" && ctest --output-on-failure -j "$(nproc)" \
    -R 'ThreadPool|SweepRunner|Sweep\.|PacketUid|UidsUnique|GlobalUids|SpanTracer')
  "$build/bench/bench_sweep" --seconds=2 --seeds=1 --jobs=4 \
    --trace-out="$build/check_spans.json"

  echo "check.sh (tsan): all good"
  exit 0
fi

build="${1:-$repo/build-asan}"

cmake -B "$build" -S "$repo" -DFMTCP_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)"

(cd "$build" && ctest --output-on-failure -j "$(nproc)")

# A short observability-instrumented run exercises the JSONL/JSON
# writers under the sanitizers too, and the --trace-out output must
# parse as valid JSON (Perfetto/chrome://tracing compatibility).
"$build/tools/fmtcp_sim" --protocol=fmtcp --loss2=0.15 --duration=5 \
  --metrics-json="$build/check_metrics.json" \
  --timeline="$build/check_timeline.jsonl" \
  --trace-out="$build/check_spans.json" --profile
"$build/tools/trace_summary" --timeline "$build/check_timeline.jsonl"
"$build/tools/trace_summary" --spans "$build/check_spans.json"
python3 -m json.tool "$build/check_spans.json" > /dev/null
python3 -m json.tool "$build/check_metrics.json" > /dev/null

echo "check.sh: all good"
