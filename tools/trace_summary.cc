// trace_summary — aggregates simulator output files into reports.
//
// Three modes:
//   - CSV packet traces written by `fmtcp_sim --trace=FILE` (or any
//     CsvTracer) → per-link statistics.
//   - JSONL event timelines written by `fmtcp_sim --timeline=FILE` →
//     per-subflow and per-block summaries (pass --timeline).
//   - Chrome span traces written by `fmtcp_sim --trace-out=FILE` (or
//     `bench_sweep --trace-out=FILE`) → per-span-name aggregate table
//     with exact percentiles (pass --spans).
//
//   fmtcp_sim --protocol=fmtcp --trace=/tmp/run.csv --duration=30
//   trace_summary /tmp/run.csv
//   fmtcp_sim --protocol=fmtcp --timeline=/tmp/run.jsonl --duration=30
//   trace_summary --timeline /tmp/run.jsonl
//   fmtcp_sim --protocol=fmtcp --trace-out=/tmp/spans.json --duration=30
//   trace_summary --spans /tmp/spans.json
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "net/trace_summary.h"
#include "obs/timeline_summary.h"
#include "obs/trace/chrome_trace.h"

namespace {

enum class Mode { kCsv, kTimeline, kSpans };

int summarize_csv(std::istream& in) {
  const fmtcp::net::TraceSummary summary = fmtcp::net::summarize_trace(in);
  std::fputs(fmtcp::net::format_trace_summary(summary).c_str(), stdout);
  std::printf(
      "\n(link ids from the harness: 0/2 = path-1/2 forward, 1/3 = "
      "reverse)\n");
  return 0;
}

int summarize_timeline(std::istream& in) {
  const fmtcp::obs::TimelineSummary summary =
      fmtcp::obs::summarize_timeline(in);
  std::fputs(fmtcp::obs::format_timeline_summary(summary).c_str(), stdout);
  return 0;
}

int summarize_spans(std::istream& in) {
  const fmtcp::obs::trace::ChromeTraceSummary summary =
      fmtcp::obs::trace::summarize_chrome_trace(in);
  std::fputs(
      fmtcp::obs::trace::format_span_table(summary.report).c_str(), stdout);
  std::printf("\n%llu events parsed",
              static_cast<unsigned long long>(summary.events_parsed));
  if (summary.lines_skipped > 0) {
    std::printf(", %llu lines skipped",
                static_cast<unsigned long long>(summary.lines_skipped));
  }
  std::printf("\n");
  return 0;
}

int dispatch(Mode mode, std::istream& in) {
  switch (mode) {
    case Mode::kTimeline:
      return summarize_timeline(in);
    case Mode::kSpans:
      return summarize_spans(in);
    case Mode::kCsv:
      break;
  }
  return summarize_csv(in);
}

}  // namespace

int main(int argc, char** argv) {
  Mode mode = Mode::kCsv;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timeline") == 0) {
      mode = Mode::kTimeline;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      mode = Mode::kSpans;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;  // Too many positionals.
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--timeline | --spans] "
                 "<trace.csv | timeline.jsonl | spans.json>  "
                 "(use - for stdin)\n",
                 argv[0]);
    return 2;
  }

  if (std::strcmp(path, "-") == 0) {
    return dispatch(mode, std::cin);
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  return dispatch(mode, in);
}
