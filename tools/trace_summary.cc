// trace_summary — aggregates simulator output files into reports.
//
// Two modes:
//   - CSV packet traces written by `fmtcp_sim --trace=FILE` (or any
//     CsvTracer) → per-link statistics.
//   - JSONL event timelines written by `fmtcp_sim --timeline=FILE` →
//     per-subflow and per-block summaries (pass --timeline).
//
//   fmtcp_sim --protocol=fmtcp --trace=/tmp/run.csv --duration=30
//   trace_summary /tmp/run.csv
//   fmtcp_sim --protocol=fmtcp --timeline=/tmp/run.jsonl --duration=30
//   trace_summary --timeline /tmp/run.jsonl
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "net/trace_summary.h"
#include "obs/timeline_summary.h"

namespace {

int summarize_csv(std::istream& in) {
  const fmtcp::net::TraceSummary summary = fmtcp::net::summarize_trace(in);
  std::fputs(fmtcp::net::format_trace_summary(summary).c_str(), stdout);
  std::printf(
      "\n(link ids from the harness: 0/2 = path-1/2 forward, 1/3 = "
      "reverse)\n");
  return 0;
}

int summarize_timeline(std::istream& in) {
  const fmtcp::obs::TimelineSummary summary =
      fmtcp::obs::summarize_timeline(in);
  std::fputs(fmtcp::obs::format_timeline_summary(summary).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool timeline = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timeline") == 0) {
      timeline = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;  // Too many positionals.
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--timeline] <trace.csv | timeline.jsonl>  "
                 "(use - for stdin)\n",
                 argv[0]);
    return 2;
  }

  if (std::strcmp(path, "-") == 0) {
    return timeline ? summarize_timeline(std::cin) : summarize_csv(std::cin);
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  return timeline ? summarize_timeline(in) : summarize_csv(in);
}
