// trace_summary — aggregates a CSV packet trace written by
// `fmtcp_sim --trace=FILE` (or any CsvTracer) into per-link statistics.
//
//   fmtcp_sim --protocol=fmtcp --trace=/tmp/run.csv --duration=30
//   trace_summary /tmp/run.csv
#include <cstdio>
#include <fstream>
#include <iostream>

#include "net/trace_summary.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.csv>  (use - for stdin)\n",
                 argv[0]);
    return 2;
  }

  fmtcp::net::TraceSummary summary;
  const std::string path = argv[1];
  if (path == "-") {
    summary = fmtcp::net::summarize_trace(std::cin);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    summary = fmtcp::net::summarize_trace(in);
  }

  std::fputs(fmtcp::net::format_trace_summary(summary).c_str(), stdout);
  std::printf(
      "\n(link ids from the harness: 0/2 = path-1/2 forward, 1/3 = "
      "reverse)\n");
  return 0;
}
