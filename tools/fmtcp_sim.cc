// fmtcp_sim — command-line front end for the simulator.
//
// Runs one protocol over the two-disjoint-path topology with every knob
// exposed as a flag, printing the paper's metrics (and optionally the
// per-second goodput series or a CSV packet trace).
//
// Examples:
//   fmtcp_sim --protocol=fmtcp --loss2=0.15 --duration=60
//   fmtcp_sim --protocol=mptcp --loss2=0.10 --reinjection --sack
//   fmtcp_sim --protocol=fmtcp --surge=50:0.35,200:0.01 --series
//   fmtcp_sim --protocol=fmtcp --trace=/tmp/run.csv --duration=5
//   fmtcp_sim --protocol=fmtcp --metrics-json=m.json --timeline=t.jsonl
//   fmtcp_sim --protocol=fmtcp --log-level=debug --duration=2
//   fmtcp_sim --protocol=fmtcp --profile --duration=10
//   fmtcp_sim --protocol=fmtcp --trace-out=trace.json --duration=10
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/flags.h"
#include "common/logging.h"
#include "fountain/coding_field.h"
#include "harness/runner.h"
#include "harness/sweep.h"
#include "net/trace.h"
#include "obs/observer.h"
#include "obs/trace/chrome_trace.h"
#include "obs/trace/span_metrics.h"
#include "obs/trace/tracer.h"

using namespace fmtcp;
using namespace fmtcp::harness;

namespace {

Protocol parse_protocol(const std::string& name) {
  if (name == "fmtcp") return Protocol::kFmtcp;
  if (name == "mptcp") return Protocol::kMptcp;
  if (name == "hmtp") return Protocol::kHmtp;
  if (name == "fixedrate") return Protocol::kFixedRate;
  std::fprintf(stderr,
               "unknown --protocol '%s' (fmtcp|mptcp|hmtp|fixedrate)\n",
               name.c_str());
  std::exit(2);
}

/// Parses "t1:rate1,t2:rate2,..." into a loss schedule (seconds:rate).
std::vector<net::TimeVaryingLoss::Step> parse_surge(
    const std::string& spec, double initial_rate) {
  std::vector<net::TimeVaryingLoss::Step> steps = {{0, initial_rate}};
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad --surge entry '%s' (want t:rate)\n",
                   item.c_str());
      std::exit(2);
    }
    steps.push_back(
        {from_seconds(std::stod(item.substr(0, colon))),
         std::stod(item.substr(colon + 1))});
  }
  return steps;
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  std::fprintf(stderr,
               "unknown --log-level '%s' (trace|debug|info|warn|error)\n",
               name.c_str());
  std::exit(2);
}

/// Opened before the run so a bad --metrics-json path fails fast
/// instead of after the whole simulation.
std::FILE* open_metrics_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::perror(("metrics: cannot open '" + path + "' for writing").c_str());
    std::exit(1);
  }
  return file;
}

void write_metrics_json(const obs::MetricsRegistry& metrics,
                        std::FILE* file) {
  const std::string json = metrics.to_json();
  std::fputs(json.c_str(), file);
  std::fputc('\n', file);
  FMTCP_CHECK(std::fclose(file) == 0);
}

/// Stops the span tracer and emits its outputs: the Chrome trace file
/// (when requested), the aggregate table (--profile), and — when a
/// metrics registry is being written — the span.* / trace.* metrics.
obs::trace::TraceReport finish_tracing(const std::string& trace_out_path,
                                       bool profile,
                                       obs::MetricsRegistry* metrics) {
  obs::trace::TraceReport report = obs::trace::stop();
  if (metrics != nullptr) obs::trace::merge_report(report, *metrics);
  if (!trace_out_path.empty()) {
    obs::trace::write_chrome_trace(report, trace_out_path);
    std::printf("span trace:      %zu records -> %s\n",
                report.records.size(), trace_out_path.c_str());
  }
  if (profile) {
    std::printf("\n%s", obs::trace::format_span_table(report).c_str());
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);

  const std::string protocol_name = flags.get_string(
      "protocol", "fmtcp", "fmtcp | mptcp | hmtp | fixedrate");

  Scenario scenario;
  scenario.path1.delay_ms =
      flags.get_double("delay1", 100.0, "path-1 one-way delay (ms)");
  scenario.path1.loss =
      flags.get_double("loss1", 0.0, "path-1 loss rate [0,1)");
  scenario.path2.delay_ms =
      flags.get_double("delay2", 100.0, "path-2 one-way delay (ms)");
  scenario.path2.loss =
      flags.get_double("loss2", 0.1, "path-2 loss rate [0,1)");
  scenario.bandwidth_Bps =
      flags.get_double("bandwidth_mbps", 5.0, "per-path rate (Mb/s)") *
      1e6 / 8.0;
  scenario.queue_packets = static_cast<std::size_t>(
      flags.get_int("queue", 100, "drop-tail queue (packets)"));
  scenario.duration = from_seconds(
      flags.get_double("duration", 60.0, "simulated seconds"));
  scenario.seed = static_cast<std::uint64_t>(
      flags.get_int("seed", 1, "RNG seed (reproducible runs)"));

  const std::string surge =
      flags.get_string("surge", "", "path-2 loss schedule t:rate,...");
  if (!surge.empty()) {
    scenario.path2_loss_schedule =
        parse_surge(surge, scenario.path2.loss);
  }

  ProtocolOptions options = ProtocolOptions::defaults();
  options.fmtcp.block_symbols = static_cast<std::uint32_t>(flags.get_int(
      "block_symbols", options.fmtcp.block_symbols, "k-hat"));
  options.fmtcp.delta_hat = flags.get_double(
      "delta", options.fmtcp.delta_hat, "max decode-failure prob");
  options.fmtcp.systematic =
      flags.get_bool("systematic", false, "systematic fountain code");
  const std::string coding_name = flags.get_string(
      "coding", "gf2", "coefficient field: gf2 | gf256");
  if (const auto field = fountain::parse_coding_field(coding_name.c_str())) {
    options.fmtcp.coding_field = *field;
  } else {
    std::fprintf(stderr, "unknown --coding '%s' (gf2|gf256)\n",
                 coding_name.c_str());
    return 2;
  }
  options.sack = flags.get_bool("sack", false, "enable SACK");
  options.delayed_acks =
      flags.get_bool("delayed_acks", false, "RFC1122 delayed ACKs");
  options.mptcp_reinjection =
      flags.get_bool("reinjection", false, "MPTCP loss reinjection");
  options.fmtcp_use_lia = options.mptcp_use_lia =
      flags.get_bool("lia", false, "couple subflows with LIA");
  if (flags.get_bool("cubic", false, "CUBIC instead of Reno")) {
    options.subflow.congestion = tcp::CongestionAlgo::kCubic;
  }
  options.mptcp_receive_buffer = static_cast<std::size_t>(flags.get_int(
      "buffer_kb", 128, "MPTCP receive buffer (KB)")) * 1024;

  const int seed_count =
      flags.get_int("seeds", 1, "replicate across N seeds (seed..seed+N-1)");
  const unsigned parallel_jobs = jobs_from_flags(flags);
  const bool print_series =
      flags.get_bool("series", false, "print per-second goodput");
  const std::string trace_path =
      flags.get_string("trace", "", "write CSV packet trace to file");
  const std::string metrics_path = flags.get_string(
      "metrics-json", "", "write run metrics as JSON to file");
  const std::string timeline_path = flags.get_string(
      "timeline", "", "write event timeline as JSONL to file");
  const std::string trace_out_path = flags.get_string(
      "trace-out", "", "write Chrome/Perfetto span trace to file");
  const bool profile = flags.get_bool(
      "profile", false, "print the span-profile aggregate table");
  const std::string log_level_name = flags.get_string(
      "log-level", "warn", "trace | debug | info | warn | error");

  if (flags.get_bool("help", false, "show this help")) {
    std::printf("usage: %s [flags]\n%s", flags.program().c_str(),
                flags.usage().c_str());
    return 0;
  }
  for (const std::string& flag : flags.unknown_flags()) {
    std::fprintf(stderr, "unknown flag --%s (see --help)\n", flag.c_str());
    return 2;
  }

  set_log_level(parse_log_level(log_level_name));

  std::unique_ptr<net::CsvTracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<net::CsvTracer>(trace_path);
    scenario.tracer = tracer.get();
  }

  std::unique_ptr<obs::Observer> observer;
  std::FILE* metrics_file = nullptr;
  if (!metrics_path.empty() || !timeline_path.empty()) {
    observer = std::make_unique<obs::Observer>();
    if (!metrics_path.empty()) {
      metrics_file = open_metrics_file(metrics_path);
    }
    if (!timeline_path.empty()) {
      observer->timeline.open_jsonl(timeline_path);
    }
    scenario.observer = observer.get();
  }

  const Protocol protocol = parse_protocol(protocol_name);

  const bool tracing = profile || !trace_out_path.empty();
  if (tracing) {
    obs::trace::TraceConfig trace_config;
    // The ring (per-event records) only feeds the Chrome exporter; the
    // aggregate table is exact regardless, so skip capture for --profile.
    trace_config.capture_records = !trace_out_path.empty();
    obs::trace::start(trace_config);
  }

  if (seed_count > 1) {
    if (tracer || observer) {
      std::fprintf(stderr,
                   "--seeds is incompatible with --trace/--metrics-json/"
                   "--timeline (per-run outputs would collide)\n");
      return 2;
    }
    std::vector<std::uint64_t> seeds;
    for (int i = 0; i < seed_count; ++i) {
      seeds.push_back(scenario.seed + static_cast<std::uint64_t>(i));
    }
    const std::vector<RunResult> results =
        run_seeds(protocol, scenario, options, seeds, parallel_jobs);
    std::printf("protocol:  %s, %d seeds (%llu..%llu), jobs=%u\n",
                protocol_name.c_str(), seed_count,
                static_cast<unsigned long long>(seeds.front()),
                static_cast<unsigned long long>(seeds.back()),
                parallel_jobs);
    std::printf("seed\tgoodput(MB/s)\tdelay(ms)\tjitter(ms)\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("%llu\t%.4f\t%.1f\t%.1f\n",
                  static_cast<unsigned long long>(seeds[i]),
                  results[i].goodput_MBps, results[i].mean_delay_ms,
                  results[i].jitter_ms);
    }
    const SeedStats goodput = aggregate(
        results, [](const RunResult& r) { return r.goodput_MBps; });
    const SeedStats delay = aggregate(
        results, [](const RunResult& r) { return r.mean_delay_ms; });
    std::printf("mean\t%.4f +/- %.4f\t%.1f +/- %.1f ms\n", goodput.mean,
                goodput.stddev, delay.mean, delay.stddev);
    if (tracing) finish_tracing(trace_out_path, profile, nullptr);
    return 0;
  }

  const RunResult result = run_scenario(protocol, scenario, options);

  std::printf("protocol:        %s\n", protocol_name.c_str());
  std::printf("paths:           %.0fms/%.1f%% + %.0fms/%.1f%% @ %.1f Mb/s\n",
              scenario.path1.delay_ms, scenario.path1.loss * 100,
              scenario.path2.delay_ms, scenario.path2.loss * 100,
              scenario.bandwidth_Bps * 8 / 1e6);
  std::printf("goodput:         %.4f MB/s (%llu bytes in %.0f s)\n",
              result.goodput_MBps,
              static_cast<unsigned long long>(result.delivered_bytes),
              to_seconds(scenario.duration));
  std::printf("blocks:          %llu completed\n",
              static_cast<unsigned long long>(result.blocks_completed));
  std::printf("block delay:     %.1f ms mean, %.1f ms jitter, %.1f ms max\n",
              result.mean_delay_ms, result.jitter_ms, result.max_delay_ms);
  if (result.symbols_sent > 0) {
    std::printf("coding overhead: %.1f%% (payload %s)\n",
                result.coding_overhead(options.fmtcp.block_symbols) * 100,
                result.payload_ok ? "verified" : "CORRUPT");
  }
  for (std::size_t i = 0; i < result.subflows.size(); ++i) {
    const SubflowStats& s = result.subflows[i];
    std::printf(
        "subflow %zu:       sent=%llu rtx=%llu timeouts=%llu cwnd=%.1f "
        "loss_est=%.3f\n",
        i, static_cast<unsigned long long>(s.segments_sent),
        static_cast<unsigned long long>(s.retransmissions),
        static_cast<unsigned long long>(s.timeouts), s.final_cwnd,
        s.loss_estimate);
  }
  std::printf("event loop:      %llu events in %.2f s wall\n",
              static_cast<unsigned long long>(result.sim_events),
              result.wall_seconds);
  if (tracer) {
    std::printf("trace:           %llu rows -> %s\n",
                static_cast<unsigned long long>(tracer->rows_written()),
                trace_path.c_str());
  }
  if (tracing) {
    finish_tracing(trace_out_path, profile,
                   observer ? &observer->metrics : nullptr);
  }
  if (observer) {
    if (metrics_file != nullptr) {
      write_metrics_json(observer->metrics, metrics_file);
      std::printf("metrics:         %zu metrics -> %s\n",
                  observer->metrics.metric_count(), metrics_path.c_str());
    }
    if (!timeline_path.empty()) {
      observer->timeline.flush();
      std::printf("timeline:        %llu events -> %s\n",
                  static_cast<unsigned long long>(
                      observer->timeline.emitted()),
                  timeline_path.c_str());
    }
  }
  if (print_series) {
    std::printf("\nt(s)\tgoodput(MB/s)\n");
    for (std::size_t t = 0; t < result.goodput_series_MBps.size(); ++t) {
      std::printf("%zu\t%.4f\n", t, result.goodput_series_MBps[t]);
    }
  }
  return 0;
}
