#include "metrics/block_stats.h"

#include <algorithm>

namespace fmtcp::metrics {

void BlockDelayRecorder::record(std::uint64_t block, SimTime delay) {
  Entry e{block, delay};
  const auto it = std::lower_bound(
      by_block_.begin(), by_block_.end(), e,
      [](const Entry& a, const Entry& b) { return a.block < b.block; });
  by_block_.insert(it, e);
}

SampleSet BlockDelayRecorder::ordered_samples_ms() const {
  SampleSet set;
  for (const Entry& e : by_block_) set.add(to_ms(e.delay));
  return set;
}

double BlockDelayRecorder::mean_delay_ms() const {
  return ordered_samples_ms().mean();
}

double BlockDelayRecorder::jitter_ms() const {
  return ordered_samples_ms().stddev();
}

double BlockDelayRecorder::consecutive_jitter_ms() const {
  return ordered_samples_ms().mean_abs_delta();
}

double BlockDelayRecorder::stddev_delay_ms() const {
  return ordered_samples_ms().stddev();
}

double BlockDelayRecorder::max_delay_ms() const {
  return ordered_samples_ms().max();
}

std::vector<double> BlockDelayRecorder::delays_ms_in_order() const {
  std::vector<double> out;
  out.reserve(by_block_.size());
  for (const Entry& e : by_block_) out.push_back(to_ms(e.delay));
  return out;
}

}  // namespace fmtcp::metrics
