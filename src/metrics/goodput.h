// Goodput measurement: application bytes delivered in order, over time.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "common/timeseries.h"

namespace fmtcp::metrics {

class GoodputMeter {
 public:
  /// `bin_width` controls the resolution of the rate-over-time series
  /// (Fig. 4 uses multi-second bins).
  explicit GoodputMeter(SimTime bin_width = kSecond);

  /// Records `bytes` of application data delivered at time `t`.
  void on_delivered(SimTime t, std::size_t bytes);

  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Time of the last delivery (0 if none).
  SimTime last_delivery() const { return last_delivery_; }

  /// Mean goodput in bytes/second over [0, horizon].
  double mean_rate(SimTime horizon) const;

  /// Mean goodput in MB/s over [0, horizon] (paper's Fig. 3/4 unit).
  double mean_rate_MBps(SimTime horizon) const;

  const BinnedSeries& series() const { return series_; }

 private:
  BinnedSeries series_;
  std::uint64_t total_bytes_ = 0;
  SimTime last_delivery_ = 0;
};

}  // namespace fmtcp::metrics
