// Block-granularity delay and jitter, as the paper measures them (§V):
// the delivery delay of a block runs from the transmission of its first
// symbol (or first byte, for MPTCP) to the sender receiving the ACK that
// confirms the block decoded (or was cumulatively acknowledged).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/time.h"

namespace fmtcp::metrics {

class BlockDelayRecorder {
 public:
  /// Records the completion of `block` with the given sender-measured
  /// delivery delay. Blocks may complete out of order; samples are kept
  /// in block-id order for the Fig. 7 sequence plot.
  void record(std::uint64_t block, SimTime delay);

  std::size_t completed_blocks() const { return by_block_.size(); }

  /// Mean delivery delay in milliseconds.
  double mean_delay_ms() const;

  /// Jitter: standard deviation of block delivery delays, in
  /// milliseconds — the delay-variation spread Fig. 6 reports.
  double jitter_ms() const;

  /// Mean absolute difference between consecutive blocks' delivery
  /// delays (an alternative, smoother jitter definition).
  double consecutive_jitter_ms() const;

  /// Standard deviation of block delays in milliseconds (== jitter_ms).
  double stddev_delay_ms() const;

  double max_delay_ms() const;

  /// Delay of each completed block in id order, milliseconds.
  std::vector<double> delays_ms_in_order() const;

 private:
  struct Entry {
    std::uint64_t block;
    SimTime delay;
  };
  SampleSet ordered_samples_ms() const;

  std::vector<Entry> by_block_;  ///< Kept sorted by block id.
};

}  // namespace fmtcp::metrics
