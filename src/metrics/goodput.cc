#include "metrics/goodput.h"

#include "common/check.h"

namespace fmtcp::metrics {

GoodputMeter::GoodputMeter(SimTime bin_width) : series_(bin_width) {}

void GoodputMeter::on_delivered(SimTime t, std::size_t bytes) {
  series_.add(t, static_cast<double>(bytes));
  total_bytes_ += bytes;
  last_delivery_ = t;
}

double GoodputMeter::mean_rate(SimTime horizon) const {
  FMTCP_CHECK(horizon > 0);
  return static_cast<double>(total_bytes_) / to_seconds(horizon);
}

double GoodputMeter::mean_rate_MBps(SimTime horizon) const {
  return mean_rate(horizon) / 1e6;
}

}  // namespace fmtcp::metrics
