// Offline analysis of CsvTracer output: parses the CSV back into per-link
// statistics (the companion to `fmtcp_sim --trace`).
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <string>

#include "common/time.h"

namespace fmtcp::net {

/// Aggregate statistics for one traced link.
struct LinkTraceStats {
  std::uint64_t enqueued = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t channel_drops = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t ack_packets = 0;
  double first_event_s = 0.0;
  double last_event_s = 0.0;

  /// Fraction of transmitted packets the channel erased.
  double channel_loss_rate() const;
  /// Delivered payload rate over the observed span (bytes/second).
  double delivery_rate_Bps() const;
};

struct TraceSummary {
  std::map<std::uint32_t, LinkTraceStats> links;
  std::uint64_t total_rows = 0;
  std::uint64_t malformed_rows = 0;
};

/// Parses a CsvTracer stream (header + rows). Unknown/malformed rows are
/// counted, not fatal.
TraceSummary summarize_trace(std::istream& in);

/// Renders the summary as a printable table.
std::string format_trace_summary(const TraceSummary& summary);

}  // namespace fmtcp::net
