// Unidirectional point-to-point link: serialisation + propagation + loss.
//
// A packet handed to `send()` waits in a drop-tail queue while the link is
// busy, occupies the link for size/bandwidth seconds, then — unless the
// loss model erases it — arrives at the sink after the propagation delay.
// Lost packets still consume transmission time (the erasure is on the
// channel, as on a wireless hop).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/loss_model.h"
#include "net/packet.h"
#include "net/queue.h"
#include "net/trace.h"
#include "sim/simulator.h"

namespace fmtcp::net {

enum class QueueDiscipline { kDropTail, kRed };

/// Link configuration.
struct LinkConfig {
  /// Transmission rate in bytes per second (default 12.5 MB/s == 100 Mb/s).
  double bandwidth_Bps = 12.5e6;

  /// One-way propagation delay.
  SimTime prop_delay = from_ms(50);

  /// Mean of an exponentially distributed extra per-packet delay
  /// (0 = deterministic propagation). Models wireless MAC/queuing noise;
  /// note that large jitter can reorder deliveries, as real radio links
  /// do.
  SimTime prop_jitter_mean = 0;

  /// Queue capacity in packets (0 = unlimited; drop-tail only).
  std::size_t queue_packets = 200;

  /// Queue capacity in bytes (0 = unlimited; drop-tail only).
  std::size_t queue_bytes = 0;

  /// Queueing discipline; kRed uses `red` below instead of the caps.
  QueueDiscipline discipline = QueueDiscipline::kDropTail;
  RedConfig red;
};

class Link {
 public:
  using Sink = std::function<void(Packet)>;

  /// `loss` may be null (treated as lossless). The link forks its own RNG
  /// stream from the simulator at construction.
  Link(sim::Simulator& simulator, const LinkConfig& config,
       std::unique_ptr<LossModel> loss);

  /// Sets the delivery callback; must be set before the first delivery.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Hands a packet to the link. May drop on queue overflow.
  void send(Packet p);

  /// Replaces the loss model mid-run (e.g. for handover scenarios).
  void set_loss_model(std::unique_ptr<LossModel> loss);

  /// Attaches an observer (not owned; null detaches). `link_id` labels
  /// this link in the trace.
  void set_tracer(PacketTracer* tracer, std::uint32_t link_id = 0) {
    tracer_ = tracer;
    trace_link_id_ = link_id;
  }

  /// The loss model's configured rate at the current time (0 if none).
  double loss_rate() const;

  const LinkConfig& config() const { return config_; }

  // --- Counters (diagnostics / tests) ---
  std::uint64_t sent_count() const { return sent_; }
  std::uint64_t delivered_count() const { return delivered_; }
  std::uint64_t channel_drop_count() const { return channel_drops_; }
  std::uint64_t queue_drop_count() const { return queue_->drop_count(); }
  const PacketQueue& queue() const { return *queue_; }

 private:
  void start_transmission();
  SimTime serialization_time(std::size_t bytes) const;
  void trace(TraceEvent event, const Packet& p) const;

  sim::Simulator& simulator_;
  LinkConfig config_;
  std::unique_ptr<LossModel> loss_;
  Rng rng_;
  std::unique_ptr<PacketQueue> queue_;
  Sink sink_;
  PacketTracer* tracer_ = nullptr;
  std::uint32_t trace_link_id_ = 0;
  bool busy_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t channel_drops_ = 0;
};

}  // namespace fmtcp::net
