#include "net/link.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace fmtcp::net {

namespace {

std::unique_ptr<PacketQueue> make_queue(const LinkConfig& config,
                                        sim::Simulator& simulator) {
  if (config.discipline == QueueDiscipline::kRed) {
    return std::make_unique<RedQueue>(config.red, simulator.fork_rng());
  }
  return std::make_unique<DropTailQueue>(config.queue_packets,
                                         config.queue_bytes);
}

}  // namespace

Link::Link(sim::Simulator& simulator, const LinkConfig& config,
           std::unique_ptr<LossModel> loss)
    : simulator_(simulator),
      config_(config),
      loss_(std::move(loss)),
      rng_(simulator.fork_rng()),
      queue_(make_queue(config, simulator)) {
  FMTCP_CHECK(config_.bandwidth_Bps > 0);
  FMTCP_CHECK(config_.prop_delay >= 0);
}

void Link::trace(TraceEvent event, const Packet& p) const {
  if (tracer_ != nullptr) {
    tracer_->on_packet(event, simulator_.now(), trace_link_id_, p);
  }
}

void Link::send(Packet p) {
  ++sent_;
  if (tracer_ != nullptr) {
    // The queue decision (possibly probabilistic, e.g. RED) happens in
    // push; keep a clone so the outcome can be traced.
    Packet copy = p.clone();
    const bool pushed = queue_->push(std::move(p));
    trace(pushed ? TraceEvent::kEnqueue : TraceEvent::kQueueDrop, copy);
    if (!pushed) return;
  } else if (!queue_->push(std::move(p))) {
    return;
  }
  if (!busy_) start_transmission();
}

void Link::set_loss_model(std::unique_ptr<LossModel> loss) {
  loss_ = std::move(loss);
}

double Link::loss_rate() const {
  return loss_ ? loss_->current_rate(simulator_.now()) : 0.0;
}

SimTime Link::serialization_time(std::size_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) / config_.bandwidth_Bps;
  // Round up so zero-length packets still take one tick and time moves.
  return std::max<SimTime>(1, from_seconds(seconds));
}

void Link::start_transmission() {
  FMTCP_CHECK(!busy_);
  if (queue_->empty()) return;
  busy_ = true;
  Packet p = queue_->pop();
  const SimTime ser = serialization_time(p.size_bytes);
  simulator_.schedule_in(
      ser, "link.serialize", [this, p = std::move(p)]() mutable {
        busy_ = false;
        const bool dropped =
            loss_ != nullptr && loss_->should_drop(simulator_.now(), rng_);
        if (dropped) {
          ++channel_drops_;
          trace(TraceEvent::kChannelDrop, p);
        } else {
          SimTime delay = config_.prop_delay;
          if (config_.prop_jitter_mean > 0) {
            delay += from_seconds(rng_.exponential(
                to_seconds(config_.prop_jitter_mean)));
          }
          simulator_.schedule_in(delay, "link.deliver",
                                 [this, p = std::move(p)]() mutable {
                                   ++delivered_;
                                   trace(TraceEvent::kDeliver, p);
                                   FMTCP_CHECK(sink_ != nullptr);
                                   sink_(std::move(p));
                                 });
        }
        if (!queue_->empty()) start_transmission();
      });
}

}  // namespace fmtcp::net
