// Wire packet model shared by every protocol in the repository.
//
// One struct covers all protocols: a packet is either a data segment or an
// ACK, with optional MPTCP data-sequence mapping and optional FMTCP symbol
// payloads / block-acknowledgement fields. A real implementation would use
// TCP options; in the simulator the fields live side by side and the wire
// size is accounted for explicitly in `size_bytes`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/time.h"

namespace fmtcp::net {

/// Identifier of a data block (FMTCP coding unit), assigned sequentially
/// from 0 by the sender.
using BlockId = std::uint64_t;

/// One encoded fountain symbol carried in a packet.
///
/// The coefficient vector is not shipped explicitly: like practical
/// fountain deployments (e.g. RFC 5053 / RaptorQ), the packet carries the
/// PRNG seed from which both ends regenerate the k-bit coefficient vector.
/// `data` carries the encoded bytes; it may be empty when the simulation
/// runs in rank-only mode (protocol timing is unaffected).
struct EncodedSymbol {
  BlockId block = 0;
  std::uint32_t block_symbols = 0;  ///< k̂ of the block (vector length).
  std::uint64_t coeff_seed = 0;     ///< Seed regenerating the coefficients.
  /// Systematic-code marker: when != kNotSystematic the symbol IS source
  /// symbol `systematic_index` (unit coefficient vector; coeff_seed
  /// unused). Lets a systematic encoder ship plain data first.
  std::uint32_t systematic_index = kNotSystematic;
  /// Encoded payload bytes (optional). AlignedBytes so the 64-byte
  /// alignment a BufferPool establishes survives every move of the
  /// symbol across the packet path (moves never reallocate).
  AlignedBytes data;

  static constexpr std::uint32_t kNotSystematic = UINT32_MAX;

  bool is_systematic() const { return systematic_index != kNotSystematic; }
};

/// Per-block feedback carried on FMTCP ACKs: the receiver's current count
/// of linearly independent symbols, k̄_b (paper §III-B).
struct BlockAck {
  BlockId block = 0;
  std::uint32_t independent_symbols = 0;  ///< k̄_b.
  bool decoded = false;                   ///< Block fully decoded.
};

enum class PacketKind : std::uint8_t { kData, kAck };

/// A simulated packet. Moved (never copied) through links — copying is
/// deleted so an accidental copy of the payload vectors cannot sneak
/// into the hot path; the rare observer that needs a duplicate (e.g.
/// tracing both queue outcomes) must say so explicitly via clone().
struct Packet {
  Packet() = default;
  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;
  Packet(Packet&&) = default;
  Packet& operator=(Packet&&) = default;

  /// Explicit deep copy (payloads included). Off the hot path only.
  Packet clone() const;

  PacketKind kind = PacketKind::kData;

  /// Which subflow this packet belongs to (index into the connection's
  /// subflow array). ACKs travel on the same subflow's reverse path.
  std::uint32_t subflow = 0;

  /// Connection tag for demultiplexing when several connections share a
  /// link (fairness experiments). 0 for single-connection topologies.
  std::uint32_t flow_tag = 0;

  /// Subflow-level segment sequence number (packet granularity). For ACKs,
  /// unused; see `ack_next`.
  std::uint64_t seq = 0;

  /// For ACKs: next expected subflow-level sequence (cumulative ACK).
  std::uint64_t ack_next = 0;

  /// MPTCP: connection-level data sequence number of the first payload
  /// byte (data-sequence mapping). For MPTCP ACKs: connection-level
  /// cumulative ACK (next expected data-sequence byte).
  std::uint64_t data_seq = 0;

  /// MPTCP: payload length in bytes covered by the data-sequence mapping.
  std::uint32_t data_len = 0;

  /// MPTCP ACKs: receive window in bytes (connection-level flow control).
  std::uint32_t window = 0;

  /// FMTCP: encoded symbols carried by a data packet (description vector
  /// V of Algorithm 1, materialised).
  std::vector<EncodedSymbol> symbols;

  /// FMTCP ACKs: per-block decoding feedback.
  std::vector<BlockAck> block_acks;

  /// Optional SACK option: up to a few [start, end) subflow-sequence
  /// ranges received above the cumulative ACK.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sack_ranges;

  /// Wire size in bytes, including header overhead; used for link
  /// serialisation time and queue accounting.
  std::size_t size_bytes = 0;

  /// Time the packet was handed to the link (set by the sender; used for
  /// RTT sampling on the ACK path).
  SimTime sent_at = 0;

  /// Echo of the data packet's `sent_at`, set on ACKs (RTT timestamp
  /// option) so senders can take RTT samples without per-packet state.
  SimTime echo_sent_at = 0;

  /// Globally unique id for tracing/debugging.
  std::uint64_t uid = 0;
};

/// Header overhead charged per packet (IP + TCP-like header, bytes).
inline constexpr std::size_t kHeaderBytes = 40;

/// Returns a fresh globally-unique packet uid (monotonic within a process).
std::uint64_t next_packet_uid();

/// Computes and stores `size_bytes` for a data packet carrying `payload`
/// payload bytes.
void finalize_size(Packet& p, std::size_t payload);

}  // namespace fmtcp::net
