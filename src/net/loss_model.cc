#include "net/loss_model.h"

#include "common/check.h"

namespace fmtcp::net {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  FMTCP_CHECK(p >= 0.0 && p < 1.0);
}

bool BernoulliLoss::should_drop(SimTime, Rng& rng) {
  return rng.bernoulli(p_);
}

TimeVaryingLoss::TimeVaryingLoss(std::vector<Step> steps)
    : steps_(std::move(steps)) {
  FMTCP_CHECK(!steps_.empty());
  FMTCP_CHECK(steps_.front().start == 0);
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    FMTCP_CHECK(steps_[i].start > steps_[i - 1].start);
  }
  for (const Step& s : steps_) {
    FMTCP_CHECK(s.rate >= 0.0 && s.rate < 1.0);
  }
}

bool TimeVaryingLoss::should_drop(SimTime now, Rng& rng) {
  return rng.bernoulli(current_rate(now));
}

double TimeVaryingLoss::current_rate(SimTime now) const {
  double rate = steps_.front().rate;
  for (const Step& s : steps_) {
    if (s.start <= now) {
      rate = s.rate;
    } else {
      break;
    }
  }
  return rate;
}

GilbertElliottLoss::GilbertElliottLoss(const Config& config)
    : config_(config) {
  FMTCP_CHECK(config.p_good_to_bad >= 0 && config.p_good_to_bad <= 1);
  FMTCP_CHECK(config.p_bad_to_good >= 0 && config.p_bad_to_good <= 1);
  FMTCP_CHECK(config.loss_good >= 0 && config.loss_good < 1);
  FMTCP_CHECK(config.loss_bad >= 0 && config.loss_bad <= 1);
}

bool GilbertElliottLoss::should_drop(SimTime, Rng& rng) {
  // Advance the state chain once per packet, then draw the loss.
  if (bad_) {
    if (rng.bernoulli(config_.p_bad_to_good)) bad_ = false;
  } else {
    if (rng.bernoulli(config_.p_good_to_bad)) bad_ = true;
  }
  return rng.bernoulli(bad_ ? config_.loss_bad : config_.loss_good);
}

double GilbertElliottLoss::current_rate(SimTime) const {
  const double denom = config_.p_good_to_bad + config_.p_bad_to_good;
  if (denom == 0.0) {
    return bad_ ? config_.loss_bad : config_.loss_good;
  }
  const double frac_bad = config_.p_good_to_bad / denom;
  return frac_bad * config_.loss_bad + (1.0 - frac_bad) * config_.loss_good;
}

std::unique_ptr<LossModel> make_bernoulli(double p) {
  if (p <= 0.0) return std::make_unique<NoLoss>();
  return std::make_unique<BernoulliLoss>(p);
}

}  // namespace fmtcp::net
