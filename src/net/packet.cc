#include "net/packet.h"

#include <atomic>

namespace fmtcp::net {

namespace {
// Atomic so parallel simulations (harness/sweep.h) can share the counter.
std::atomic<std::uint64_t> g_next_uid{1};
}  // namespace

std::uint64_t next_packet_uid() {
  return g_next_uid.fetch_add(1, std::memory_order_relaxed);
}

Packet Packet::clone() const {
  Packet copy;
  copy.kind = kind;
  copy.subflow = subflow;
  copy.flow_tag = flow_tag;
  copy.seq = seq;
  copy.ack_next = ack_next;
  copy.data_seq = data_seq;
  copy.data_len = data_len;
  copy.window = window;
  copy.symbols = symbols;
  copy.block_acks = block_acks;
  copy.sack_ranges = sack_ranges;
  copy.size_bytes = size_bytes;
  copy.sent_at = sent_at;
  copy.echo_sent_at = echo_sent_at;
  copy.uid = uid;
  return copy;
}

void finalize_size(Packet& p, std::size_t payload) {
  p.size_bytes = kHeaderBytes + payload;
}

}  // namespace fmtcp::net
