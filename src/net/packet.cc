#include "net/packet.h"

#include <atomic>

namespace fmtcp::net {

namespace {
// Atomic so parallel simulations (harness/sweep.h) can share the counter.
std::atomic<std::uint64_t> g_next_uid{1};
}  // namespace

std::uint64_t next_packet_uid() {
  return g_next_uid.fetch_add(1, std::memory_order_relaxed);
}

void finalize_size(Packet& p, std::size_t payload) {
  p.size_bytes = kHeaderBytes + payload;
}

}  // namespace fmtcp::net
