#include "net/queue.h"

#include <utility>

#include "common/check.h"

namespace fmtcp::net {

DropTailQueue::DropTailQueue(std::size_t max_packets, std::size_t max_bytes)
    : max_packets_(max_packets), max_bytes_(max_bytes) {}

bool DropTailQueue::would_overflow(std::size_t bytes) const {
  const bool over_packets =
      max_packets_ != 0 && queue_.size() >= max_packets_;
  const bool over_bytes = max_bytes_ != 0 && bytes_ + bytes > max_bytes_;
  return over_packets || over_bytes;
}

bool DropTailQueue::push(Packet p) {
  if (would_overflow(p.size_bytes)) {
    ++drops_;
    return false;
  }
  bytes_ += p.size_bytes;
  queue_.push_back(std::move(p));
  return true;
}

Packet DropTailQueue::pop() {
  FMTCP_CHECK(!queue_.empty());
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  FMTCP_DCHECK(bytes_ >= p.size_bytes);
  bytes_ -= p.size_bytes;
  return p;
}

RedQueue::RedQueue(const RedConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  FMTCP_CHECK(config_.min_th_packets < config_.max_th_packets);
  FMTCP_CHECK(config_.max_p > 0.0 && config_.max_p <= 1.0);
  FMTCP_CHECK(config_.weight > 0.0 && config_.weight <= 1.0);
  if (config_.limit_packets == 0) {
    config_.limit_packets = 2 * config_.max_th_packets;
  }
}

bool RedQueue::would_overflow(std::size_t /*bytes*/) const {
  return queue_.size() >= config_.limit_packets;
}

bool RedQueue::push(Packet p) {
  avg_ = (1.0 - config_.weight) * avg_ +
         config_.weight * static_cast<double>(queue_.size());

  bool drop = false;
  if (queue_.size() >= config_.limit_packets) {
    drop = true;  // Hard limit.
  } else if (avg_ >= static_cast<double>(config_.max_th_packets)) {
    drop = true;
    ++early_drops_;
  } else if (avg_ > static_cast<double>(config_.min_th_packets)) {
    const double span = static_cast<double>(config_.max_th_packets -
                                            config_.min_th_packets);
    const double p_drop =
        config_.max_p *
        (avg_ - static_cast<double>(config_.min_th_packets)) / span;
    if (rng_.bernoulli(p_drop)) {
      drop = true;
      ++early_drops_;
    }
  }

  if (drop) {
    ++drops_;
    return false;
  }
  bytes_ += p.size_bytes;
  queue_.push_back(std::move(p));
  return true;
}

Packet RedQueue::pop() {
  FMTCP_CHECK(!queue_.empty());
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  FMTCP_DCHECK(bytes_ >= p.size_bytes);
  bytes_ -= p.size_bytes;
  return p;
}

}  // namespace fmtcp::net
