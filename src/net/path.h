// A bidirectional end-to-end path: one forward (data) link and one reverse
// (ACK) link. The paper's topology uses disjoint paths, so a path maps 1:1
// to a subflow.
#pragma once

#include <memory>

#include "net/link.h"

namespace fmtcp::net {

/// Per-path parameters as the paper states them (Table I): a one-way
/// propagation delay and an i.i.d. loss rate on the data direction.
struct PathConfig {
  SimTime one_way_delay = from_ms(100);
  double loss_rate = 0.0;       ///< Forward (data) loss probability.
  double ack_loss_rate = 0.0;   ///< Reverse (ACK) loss probability.
  double bandwidth_Bps = 12.5e6;
  std::size_t queue_packets = 200;
  /// Mean exponential per-packet delay jitter (0 = none); both
  /// directions.
  SimTime delay_jitter_mean = 0;
};

class Path {
 public:
  Path(sim::Simulator& simulator, const PathConfig& config);

  Link& forward() { return *forward_; }
  Link& reverse() { return *reverse_; }
  const PathConfig& config() const { return config_; }

  /// Replaces the forward-direction loss model (loss-surge scenarios).
  void set_forward_loss(std::unique_ptr<LossModel> loss) {
    forward_->set_loss_model(std::move(loss));
  }

  /// Base round-trip propagation time (no queueing): 2 * one-way delay.
  SimTime base_rtt() const { return 2 * config_.one_way_delay; }

 private:
  PathConfig config_;
  std::unique_ptr<Link> forward_;
  std::unique_ptr<Link> reverse_;
};

}  // namespace fmtcp::net
