#include "net/trace_summary.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace fmtcp::net {

double LinkTraceStats::channel_loss_rate() const {
  const std::uint64_t transmitted = delivered + channel_drops;
  if (transmitted == 0) return 0.0;
  return static_cast<double>(channel_drops) /
         static_cast<double>(transmitted);
}

double LinkTraceStats::delivery_rate_Bps() const {
  const double span = last_event_s - first_event_s;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(delivered_bytes) / span;
}

TraceSummary summarize_trace(std::istream& in) {
  TraceSummary summary;
  std::string line;
  bool header_skipped = false;
  while (std::getline(in, line)) {
    if (!header_skipped) {
      header_skipped = true;
      if (line.rfind("time_s,", 0) == 0) continue;  // Header row.
    }
    if (line.empty()) continue;
    ++summary.total_rows;

    // time_s,event,link,uid,kind,subflow,seq,size_bytes,data_seq,symbols
    std::vector<std::string> fields;
    std::stringstream stream(line);
    std::string field;
    while (std::getline(stream, field, ',')) fields.push_back(field);
    if (fields.size() != 10) {
      ++summary.malformed_rows;
      continue;
    }

    const double time_s = std::strtod(fields[0].c_str(), nullptr);
    const std::string& event = fields[1];
    const auto link = static_cast<std::uint32_t>(
        std::strtoul(fields[2].c_str(), nullptr, 10));
    const std::string& kind = fields[4];
    const auto size_bytes =
        std::strtoull(fields[7].c_str(), nullptr, 10);

    LinkTraceStats& stats = summary.links[link];
    if (stats.enqueued + stats.queue_drops + stats.channel_drops +
            stats.delivered ==
        0) {
      stats.first_event_s = time_s;
    }
    stats.last_event_s = std::max(stats.last_event_s, time_s);

    if (event == "enqueue") {
      ++stats.enqueued;
      if (kind == "data") {
        ++stats.data_packets;
      } else {
        ++stats.ack_packets;
      }
    } else if (event == "queue_drop") {
      ++stats.queue_drops;
    } else if (event == "channel_drop") {
      ++stats.channel_drops;
    } else if (event == "deliver") {
      ++stats.delivered;
      stats.delivered_bytes += size_bytes;
    } else {
      ++summary.malformed_rows;
    }
  }
  return summary;
}

std::string format_trace_summary(const TraceSummary& summary) {
  std::ostringstream out;
  out << "link  enqueued  qdrops  chdrops  delivered  loss%   rate(B/s)  "
         "data/ack\n";
  for (const auto& [link, stats] : summary.links) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%-5u %-9llu %-7llu %-8llu %-10llu %-6.2f %-10.0f "
                  "%llu/%llu\n",
                  link,
                  static_cast<unsigned long long>(stats.enqueued),
                  static_cast<unsigned long long>(stats.queue_drops),
                  static_cast<unsigned long long>(stats.channel_drops),
                  static_cast<unsigned long long>(stats.delivered),
                  stats.channel_loss_rate() * 100.0,
                  stats.delivery_rate_Bps(),
                  static_cast<unsigned long long>(stats.data_packets),
                  static_cast<unsigned long long>(stats.ack_packets));
    out << buffer;
  }
  out << "rows: " << summary.total_rows
      << " (malformed: " << summary.malformed_rows << ")\n";
  return out.str();
}

}  // namespace fmtcp::net
