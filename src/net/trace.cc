#include "net/trace.h"

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace fmtcp::net {

const char* trace_event_name(TraceEvent event) {
  switch (event) {
    case TraceEvent::kEnqueue:
      return "enqueue";
    case TraceEvent::kQueueDrop:
      return "queue_drop";
    case TraceEvent::kChannelDrop:
      return "channel_drop";
    case TraceEvent::kDeliver:
      return "deliver";
  }
  return "?";
}

void CountingTracer::on_packet(TraceEvent event, SimTime /*when*/,
                               std::uint32_t /*link_id*/,
                               const Packet& /*packet*/) {
  ++counts_[static_cast<std::uint8_t>(event)];
}

std::uint64_t CountingTracer::count(TraceEvent event) const {
  return counts_[static_cast<std::uint8_t>(event)];
}

std::uint64_t CountingTracer::total() const {
  return counts_[0] + counts_[1] + counts_[2] + counts_[3];
}

CsvTracer::CsvTracer(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    // Name the path and the reason before aborting — a bare CHECK line
    // is useless to someone who mistyped --trace.
    std::fprintf(stderr, "trace: cannot open '%s' for writing: %s\n",
                 path.c_str(), std::strerror(errno));
  }
  FMTCP_CHECK(file_ != nullptr);
  std::fprintf(file_,
               "time_s,event,link,uid,kind,subflow,seq,size_bytes,"
               "data_seq,symbols\n");
}

CsvTracer::~CsvTracer() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void CsvTracer::on_packet(TraceEvent event, SimTime when,
                          std::uint32_t link_id, const Packet& packet) {
  std::fprintf(file_, "%.9f,%s,%u,%llu,%s,%u,%llu,%zu,%llu,%zu\n",
               to_seconds(when), trace_event_name(event), link_id,
               static_cast<unsigned long long>(packet.uid),
               packet.kind == PacketKind::kData ? "data" : "ack",
               packet.subflow,
               static_cast<unsigned long long>(packet.seq),
               packet.size_bytes,
               static_cast<unsigned long long>(packet.data_seq),
               packet.symbols.size());
  ++rows_;
}

}  // namespace fmtcp::net
