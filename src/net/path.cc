#include "net/path.h"

namespace fmtcp::net {

Path::Path(sim::Simulator& simulator, const PathConfig& config)
    : config_(config) {
  LinkConfig link_config;
  link_config.bandwidth_Bps = config.bandwidth_Bps;
  link_config.prop_delay = config.one_way_delay;
  link_config.queue_packets = config.queue_packets;
  link_config.prop_jitter_mean = config.delay_jitter_mean;

  forward_ = std::make_unique<Link>(simulator, link_config,
                                    make_bernoulli(config.loss_rate));
  reverse_ = std::make_unique<Link>(simulator, link_config,
                                    make_bernoulli(config.ack_loss_rate));
}

}  // namespace fmtcp::net
