// Link queues: drop-tail FIFO (the paper's setup) and RED active queue
// management (ns-2's other staple) behind one interface.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "common/rng.h"
#include "net/packet.h"

namespace fmtcp::net {

/// FIFO packet queue with a drop policy decided at enqueue time.
class PacketQueue {
 public:
  virtual ~PacketQueue() = default;

  /// Enqueues if the discipline admits the packet; returns false (and
  /// counts a drop) otherwise.
  virtual bool push(Packet p) = 0;

  /// True if a push of `bytes` would be rejected right now. Advisory for
  /// tracing; RED's probabilistic decision is made by push itself.
  virtual bool would_overflow(std::size_t bytes) const = 0;

  /// Pops the head; queue must be non-empty.
  virtual Packet pop() = 0;

  virtual bool empty() const = 0;
  virtual std::size_t packets() const = 0;
  virtual std::size_t bytes() const = 0;
  virtual std::uint64_t drop_count() const = 0;
};

/// Byte- and packet-capacity-bounded FIFO with drop-tail semantics.
class DropTailQueue final : public PacketQueue {
 public:
  /// `max_packets` == 0 means unlimited packet count; `max_bytes` == 0
  /// means unlimited byte count.
  DropTailQueue(std::size_t max_packets, std::size_t max_bytes);

  bool would_overflow(std::size_t bytes) const override;
  bool push(Packet p) override;
  Packet pop() override;

  bool empty() const override { return queue_.empty(); }
  std::size_t packets() const override { return queue_.size(); }
  std::size_t bytes() const override { return bytes_; }
  std::uint64_t drop_count() const override { return drops_; }

 private:
  std::size_t max_packets_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::deque<Packet> queue_;
};

/// Random Early Detection (Floyd & Jacobson 1993, simplified: packet
/// units, no idle-time compensation). Early drops start once the EWMA of
/// the queue length crosses min_th; beyond max_th everything drops.
struct RedConfig {
  std::size_t min_th_packets = 25;
  std::size_t max_th_packets = 75;
  /// Hard capacity (0 = 2 * max_th).
  std::size_t limit_packets = 0;
  double max_p = 0.1;  ///< Drop probability at max_th.
  double weight = 0.002;  ///< EWMA weight w_q.
};

class RedQueue final : public PacketQueue {
 public:
  RedQueue(const RedConfig& config, Rng rng);

  bool would_overflow(std::size_t bytes) const override;
  bool push(Packet p) override;
  Packet pop() override;

  bool empty() const override { return queue_.empty(); }
  std::size_t packets() const override { return queue_.size(); }
  std::size_t bytes() const override { return bytes_; }
  std::uint64_t drop_count() const override { return drops_; }

  double average_queue() const { return avg_; }
  std::uint64_t early_drops() const { return early_drops_; }

 private:
  RedConfig config_;
  Rng rng_;
  double avg_ = 0.0;
  std::size_t bytes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t early_drops_ = 0;
  std::deque<Packet> queue_;
};

}  // namespace fmtcp::net
