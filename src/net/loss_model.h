// Packet loss models for simulated links.
//
// The paper's experiments use i.i.d. (Bernoulli) loss per path, plus a
// time-varying schedule for the loss-surge experiment (Fig. 4). A
// Gilbert–Elliott model is included for bursty-loss extensions.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace fmtcp::net {

/// Decides, per packet, whether the channel erases it.
class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Returns true if the packet leaving the link at time `now` is lost.
  virtual bool should_drop(SimTime now, Rng& rng) = 0;

  /// The model's current configured loss probability (for reporting and
  /// for protocols that are told the statistical loss rate).
  virtual double current_rate(SimTime now) const = 0;
};

/// Never drops.
class NoLoss final : public LossModel {
 public:
  bool should_drop(SimTime, Rng&) override { return false; }
  double current_rate(SimTime) const override { return 0.0; }
};

/// Independent drops with fixed probability p.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);
  bool should_drop(SimTime now, Rng& rng) override;
  double current_rate(SimTime) const override { return p_; }

 private:
  double p_;
};

/// Piecewise-constant loss rate over time: the Fig. 4 surge schedule
/// (1% -> 25%/35% at 50 s -> 1% at 200 s) is three steps.
class TimeVaryingLoss final : public LossModel {
 public:
  struct Step {
    SimTime start;  ///< Rate applies from this time (inclusive).
    double rate;
  };

  /// `steps` must be non-empty, sorted by start, first start == 0.
  explicit TimeVaryingLoss(std::vector<Step> steps);

  bool should_drop(SimTime now, Rng& rng) override;
  double current_rate(SimTime now) const override;

 private:
  std::vector<Step> steps_;
};

/// Two-state Markov (Gilbert–Elliott) bursty loss, advanced per packet.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Config {
    double p_good_to_bad = 0.01;  ///< Per-packet transition G->B.
    double p_bad_to_good = 0.2;   ///< Per-packet transition B->G.
    double loss_good = 0.0;       ///< Drop probability in Good.
    double loss_bad = 0.5;        ///< Drop probability in Bad.
  };

  explicit GilbertElliottLoss(const Config& config);

  bool should_drop(SimTime now, Rng& rng) override;

  /// Long-run average loss rate implied by the chain's stationary
  /// distribution.
  double current_rate(SimTime) const override;

  bool in_bad_state() const { return bad_; }

 private:
  Config config_;
  bool bad_ = false;
};

/// Convenience factory: NoLoss for p<=0, else BernoulliLoss(p).
std::unique_ptr<LossModel> make_bernoulli(double p);

}  // namespace fmtcp::net
