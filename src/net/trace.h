// Packet tracing: an optional per-link observer recording every enqueue,
// drop, and delivery — the ns-2 trace-file equivalent. Attach a tracer
// to a Link to debug protocol behaviour or export runs for offline
// analysis.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/time.h"
#include "net/packet.h"

namespace fmtcp::net {

enum class TraceEvent : std::uint8_t {
  kEnqueue,      ///< Packet handed to the link (entered the queue).
  kQueueDrop,    ///< Drop-tail overflow.
  kChannelDrop,  ///< Erased by the loss model after transmission.
  kDeliver,      ///< Arrived at the sink.
};

const char* trace_event_name(TraceEvent event);

/// Observer interface; one tracer may serve many links.
class PacketTracer {
 public:
  virtual ~PacketTracer() = default;

  /// `link_id` is the caller-chosen identifier set via Link::set_tracer.
  virtual void on_packet(TraceEvent event, SimTime when,
                         std::uint32_t link_id, const Packet& packet) = 0;
};

/// Counts events per type (tests, quick stats).
class CountingTracer final : public PacketTracer {
 public:
  void on_packet(TraceEvent event, SimTime when, std::uint32_t link_id,
                 const Packet& packet) override;

  std::uint64_t count(TraceEvent event) const;
  std::uint64_t total() const;

 private:
  std::uint64_t counts_[4] = {0, 0, 0, 0};
};

/// Writes one CSV row per event:
///   time_s,event,link,uid,kind,subflow,seq,size_bytes,data_seq,symbols
class CsvTracer final : public PacketTracer {
 public:
  /// Opens (truncates) `path`; fails the run loudly (message naming the
  /// path and errno, then FMTCP_CHECK) if it cannot be opened. Rows are
  /// flushed on destruction.
  explicit CsvTracer(const std::string& path);
  ~CsvTracer() override;
  CsvTracer(const CsvTracer&) = delete;
  CsvTracer& operator=(const CsvTracer&) = delete;

  void on_packet(TraceEvent event, SimTime when, std::uint32_t link_id,
                 const Packet& packet) override;

  std::uint64_t rows_written() const { return rows_; }

 private:
  std::FILE* file_;
  std::uint64_t rows_ = 0;
};

}  // namespace fmtcp::net
