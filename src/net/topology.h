// Topology builder for the paper's evaluation: N disjoint paths between
// one sender host and one receiver host (N = 2 in all paper experiments).
#pragma once

#include <memory>
#include <vector>

#include "net/path.h"

namespace fmtcp::net {

class Topology {
 public:
  /// Builds one disjoint Path per entry of `paths`.
  Topology(sim::Simulator& simulator, const std::vector<PathConfig>& paths);

  std::size_t path_count() const { return paths_.size(); }
  Path& path(std::size_t i) { return *paths_.at(i); }
  const Path& path(std::size_t i) const { return *paths_.at(i); }

 private:
  std::vector<std::unique_ptr<Path>> paths_;
};

/// The paper's standard setup: subflow 1 fixed (100 ms, lossless) and
/// subflow 2 configured by the caller.
Topology make_two_path(sim::Simulator& simulator, const PathConfig& path2);

}  // namespace fmtcp::net
