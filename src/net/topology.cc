#include "net/topology.h"

#include "common/check.h"

namespace fmtcp::net {

Topology::Topology(sim::Simulator& simulator,
                   const std::vector<PathConfig>& paths) {
  FMTCP_CHECK(!paths.empty());
  paths_.reserve(paths.size());
  for (const PathConfig& cfg : paths) {
    paths_.push_back(std::make_unique<Path>(simulator, cfg));
  }
}

Topology make_two_path(sim::Simulator& simulator, const PathConfig& path2) {
  PathConfig path1;
  path1.one_way_delay = from_ms(100);
  path1.loss_rate = 0.0;
  return Topology(simulator, {path1, path2});
}

}  // namespace fmtcp::net
