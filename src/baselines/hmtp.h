// HMTP-style baseline (paper §II, [21]): fountain-coded multipath
// transport with *stop-and-wait* block progression — the sender keeps
// encoding and sending symbols of the current block on every subflow
// until the receiver's "decoded" feedback arrives, then moves to the next
// block. No completeness prediction, no EAT-based allocation; the
// redundancy and idle time this wastes is exactly what FMTCP's δ̂/EAT
// machinery removes (ablation A4).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/block_manager.h"
#include "core/params.h"
#include "core/receiver.h"
#include "metrics/block_stats.h"
#include "metrics/goodput.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::baselines {

class HmtpSender final : public tcp::SegmentProvider {
 public:
  HmtpSender(sim::Simulator& simulator, const core::FmtcpParams& params,
             metrics::BlockDelayRecorder* delays = nullptr);

  void register_subflow(tcp::Subflow* subflow);
  void start();

  core::BlockManager& blocks() { return blocks_; }

  // --- tcp::SegmentProvider ------------------------------------------
  std::optional<tcp::SegmentContent> next_segment(
      std::uint32_t subflow) override;
  std::optional<tcp::SegmentContent> retransmit_segment(
      std::uint32_t subflow, std::uint64_t seq) override;
  void on_segment_acked(std::uint32_t subflow, std::uint64_t seq,
                        const tcp::SegmentContent& content) override;
  void on_segment_lost(std::uint32_t subflow, std::uint64_t seq,
                       const tcp::SegmentContent& content) override;
  void on_ack_info(std::uint32_t subflow, const net::Packet& ack) override;

 private:
  /// The single block currently being pushed; opens the next one when the
  /// current is confirmed decoded. Nullptr when the stream is exhausted.
  core::SenderBlock* current_block();

  /// Coalesced zero-delay re-offer of send opportunities to all subflows.
  void schedule_poke();

  sim::Simulator& simulator_;
  core::FmtcpParams params_;
  core::BlockManager blocks_;
  std::vector<tcp::Subflow*> subflows_;
  bool poke_pending_ = false;
};

struct HmtpConnectionConfig {
  core::FmtcpParams params;
  tcp::SubflowConfig subflow;
  bool seed_loss_hint = true;
  SimTime goodput_bin = kSecond;
};

/// HMTP endpoints over a topology; the receiver is FMTCP's (symbol
/// aggregation and decode feedback are identical).
class HmtpConnection {
 public:
  HmtpConnection(sim::Simulator& simulator, net::Topology& topology,
                 const HmtpConnectionConfig& config);

  void start() { sender_->start(); }

  HmtpSender& sender() { return *sender_; }
  core::FmtcpReceiver& receiver() { return *receiver_; }
  tcp::Subflow& subflow(std::size_t i) { return *subflows_.at(i); }

  const metrics::GoodputMeter& goodput() const { return goodput_; }
  const metrics::BlockDelayRecorder& block_delays() const { return delays_; }

 private:
  metrics::GoodputMeter goodput_;
  metrics::BlockDelayRecorder delays_;
  std::unique_ptr<HmtpSender> sender_;
  std::unique_ptr<core::FmtcpReceiver> receiver_;
  std::vector<std::unique_ptr<tcp::Subflow>> subflows_;
  std::vector<std::unique_ptr<tcp::SubflowReceiver>> subflow_receivers_;
};

}  // namespace fmtcp::baselines
