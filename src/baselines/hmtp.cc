#include "baselines/hmtp.h"

#include <map>

#include "common/check.h"
#include "tcp/wiring.h"

namespace fmtcp::baselines {

HmtpSender::HmtpSender(sim::Simulator& simulator,
                       const core::FmtcpParams& params,
                       metrics::BlockDelayRecorder* delays)
    : simulator_(simulator),
      params_(params),
      blocks_(simulator, params,
              [delays](net::BlockId id, SimTime delay) {
                if (delays != nullptr) delays->record(id, delay);
              }) {}

void HmtpSender::register_subflow(tcp::Subflow* subflow) {
  FMTCP_CHECK(subflow != nullptr);
  FMTCP_CHECK(subflow->id() == subflows_.size());
  subflows_.push_back(subflow);
}

void HmtpSender::start() {
  for (tcp::Subflow* subflow : subflows_) {
    subflow->notify_send_opportunity();
  }
}

core::SenderBlock* HmtpSender::current_block() {
  // Stop-and-wait: exactly one block open at a time.
  for (core::SenderBlock& block : blocks_.open_blocks()) {
    if (!block.decoded) return &block;
  }
  if (blocks_.can_open()) {
    return &blocks_.ensure_block(blocks_.next_block_id());
  }
  return nullptr;
}

std::optional<tcp::SegmentContent> HmtpSender::next_segment(
    std::uint32_t subflow) {
  core::SenderBlock* block = current_block();
  if (block == nullptr) return std::nullopt;

  FMTCP_CHECK(subflow < subflows_.size());
  const std::size_t mss = subflows_[subflow]->mss_payload();
  const std::size_t wire = params_.symbol_wire_bytes();
  const auto count = static_cast<std::uint32_t>(mss / wire);
  if (count == 0) return std::nullopt;

  tcp::SegmentContent content;
  content.payload_bytes = count * wire;
  for (std::uint32_t i = 0; i < count; ++i) {
    content.symbols.push_back(block->encoder.next_symbol());
  }
  blocks_.on_symbols_sent(block->id, subflow, count);
  return content;
}

std::optional<tcp::SegmentContent> HmtpSender::retransmit_segment(
    std::uint32_t subflow, std::uint64_t /*seq*/) {
  return next_segment(subflow);
}

void HmtpSender::on_segment_acked(std::uint32_t subflow,
                                  std::uint64_t /*seq*/,
                                  const tcp::SegmentContent& content) {
  std::map<net::BlockId, std::uint32_t> per_block;
  for (const net::EncodedSymbol& s : content.symbols) ++per_block[s.block];
  for (const auto& [block, count] : per_block) {
    blocks_.on_symbols_acked(block, subflow, count);
  }
}

void HmtpSender::on_segment_lost(std::uint32_t subflow,
                                 std::uint64_t /*seq*/,
                                 const tcp::SegmentContent& content) {
  std::map<net::BlockId, std::uint32_t> per_block;
  for (const net::EncodedSymbol& s : content.symbols) ++per_block[s.block];
  for (const auto& [block, count] : per_block) {
    blocks_.on_symbols_lost(block, subflow, count);
  }
}

void HmtpSender::on_ack_info(std::uint32_t /*subflow*/,
                             const net::Packet& ack) {
  for (const net::BlockAck& block_ack : ack.block_acks) {
    blocks_.on_block_ack(block_ack);
  }
  schedule_poke();
}

void HmtpSender::schedule_poke() {
  if (poke_pending_) return;
  poke_pending_ = true;
  simulator_.schedule_in(0, [this] {
    poke_pending_ = false;
    for (tcp::Subflow* subflow : subflows_) {
      subflow->notify_send_opportunity();
    }
  });
}

HmtpConnection::HmtpConnection(sim::Simulator& simulator,
                               net::Topology& topology,
                               const HmtpConnectionConfig& config)
    : goodput_(config.goodput_bin) {
  sender_ = std::make_unique<HmtpSender>(simulator, config.params, &delays_);
  receiver_ = std::make_unique<core::FmtcpReceiver>(simulator, config.params,
                                                    &goodput_);

  tcp::WiringOptions options;
  options.subflow = config.subflow;
  options.fresh_payload_on_retransmit = true;
  options.seed_loss_hint = config.seed_loss_hint;

  tcp::WiredSubflows wired =
      tcp::wire_subflows(simulator, topology, *sender_, *receiver_, options);
  subflows_ = std::move(wired.subflows);
  subflow_receivers_ = std::move(wired.subflow_receivers);
  for (auto& subflow : subflows_) sender_->register_subflow(subflow.get());
}

}  // namespace fmtcp::baselines
