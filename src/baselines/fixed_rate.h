// Fixed-rate FEC multipath baseline (paper §III-B analysis).
//
// Each block of A source symbols is pre-encoded into a fixed batch of
// a = ceil(A / (1 - p̂)) symbols under an MDS assumption (any A distinct
// symbols recover the block), where p̂ is the loss rate the scheme
// *assumed* when it chose the rate. If the actual loss exceeds p̂, the
// batch is insufficient and the sender must fall back to ARQ top-up
// rounds — the retransmission blow-up Eq. 3–6 quantify.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "metrics/block_stats.h"
#include "metrics/goodput.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::baselines {

struct FixedRateParams {
  std::uint32_t block_symbols = 64;  ///< A: source symbols per block.
  std::size_t symbol_bytes = 160;
  std::size_t symbol_header_bytes = 12;
  /// p̂: the loss rate assumed when fixing the code rate.
  double assumed_loss = 0.02;
  std::size_t max_pending_blocks = 32;
  std::uint64_t total_blocks = 0;  ///< 0 = unbounded.

  std::size_t block_bytes() const {
    return static_cast<std::size_t>(block_symbols) * symbol_bytes;
  }
  std::size_t symbol_wire_bytes() const {
    return symbol_bytes + symbol_header_bytes;
  }
  /// a: batch size (Eq. 4).
  std::uint32_t batch_size() const;
};

/// Sender: streams each block's fixed batch in order, then ARQ top-ups.
class FixedRateSender final : public tcp::SegmentProvider {
 public:
  FixedRateSender(sim::Simulator& simulator, const FixedRateParams& params,
                  metrics::BlockDelayRecorder* delays = nullptr);

  void register_subflow(tcp::Subflow* subflow);
  void start();

  std::uint64_t blocks_completed() const { return completed_; }
  std::uint64_t symbols_sent() const { return symbols_sent_; }
  std::uint64_t topup_rounds() const { return topup_rounds_; }

  // --- tcp::SegmentProvider ------------------------------------------
  std::optional<tcp::SegmentContent> next_segment(
      std::uint32_t subflow) override;
  std::optional<tcp::SegmentContent> retransmit_segment(
      std::uint32_t subflow, std::uint64_t seq) override;
  void on_segment_acked(std::uint32_t subflow, std::uint64_t seq,
                        const tcp::SegmentContent& content) override;
  void on_segment_lost(std::uint32_t subflow, std::uint64_t seq,
                       const tcp::SegmentContent& content) override;
  void on_ack_info(std::uint32_t subflow, const net::Packet& ack) override;

 private:
  struct PendingBlock {
    net::BlockId id = 0;
    std::uint32_t received = 0;    ///< Distinct symbols receiver reported.
    std::uint32_t next_symbol = 0; ///< Next symbol index to emit.
    std::uint32_t budget = 0;      ///< Symbols authorised (batch+top-ups).
    std::uint32_t in_flight = 0;
    bool decoded = false;
    SimTime first_sent = kNever;
  };

  PendingBlock* sendable_block();
  void account(const tcp::SegmentContent& content, bool acked);
  /// Coalesced zero-delay re-offer of send opportunities to all subflows.
  void schedule_poke();

  sim::Simulator& simulator_;
  FixedRateParams params_;
  metrics::BlockDelayRecorder* delays_;
  std::vector<tcp::Subflow*> subflows_;
  std::map<net::BlockId, PendingBlock> pending_;
  net::BlockId next_id_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t symbols_sent_ = 0;
  std::uint64_t topup_rounds_ = 0;
  bool poke_pending_ = false;
};

/// Receiver: counts distinct symbol indices per block (MDS decode at A).
class FixedRateReceiver final : public tcp::DataSink {
 public:
  FixedRateReceiver(sim::Simulator& simulator, const FixedRateParams& params,
                    metrics::GoodputMeter* goodput = nullptr);

  void on_segment(std::uint32_t subflow, net::Packet& p) override;
  void fill_ack(std::uint32_t subflow, const net::Packet& data,
                net::Packet& ack, std::size_t& extra_bytes) override;

  std::uint64_t blocks_delivered() const { return blocks_delivered_; }
  std::uint64_t redundant_symbols() const { return redundant_; }

 private:
  bool is_decoded(net::BlockId id) const;
  void deliver_ready();

  sim::Simulator& simulator_;
  FixedRateParams params_;
  metrics::GoodputMeter* goodput_;
  std::map<net::BlockId, std::set<std::uint64_t>> received_;
  std::set<net::BlockId> decoded_waiting_;
  std::deque<net::BlockId> recently_decoded_;
  net::BlockId deliver_next_ = 0;
  std::uint64_t blocks_delivered_ = 0;
  std::uint64_t redundant_ = 0;
};

struct FixedRateConnectionConfig {
  FixedRateParams params;
  tcp::SubflowConfig subflow;
  bool seed_loss_hint = true;
  SimTime goodput_bin = kSecond;
};

class FixedRateConnection {
 public:
  FixedRateConnection(sim::Simulator& simulator, net::Topology& topology,
                      const FixedRateConnectionConfig& config);

  void start() { sender_->start(); }

  FixedRateSender& sender() { return *sender_; }
  FixedRateReceiver& receiver() { return *receiver_; }

  const metrics::GoodputMeter& goodput() const { return goodput_; }
  const metrics::BlockDelayRecorder& block_delays() const { return delays_; }

 private:
  metrics::GoodputMeter goodput_;
  metrics::BlockDelayRecorder delays_;
  std::unique_ptr<FixedRateSender> sender_;
  std::unique_ptr<FixedRateReceiver> receiver_;
  std::vector<std::unique_ptr<tcp::Subflow>> subflows_;
  std::vector<std::unique_ptr<tcp::SubflowReceiver>> subflow_receivers_;
};

}  // namespace fmtcp::baselines
