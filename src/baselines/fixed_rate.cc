#include "baselines/fixed_rate.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tcp/wiring.h"

namespace fmtcp::baselines {

std::uint32_t FixedRateParams::batch_size() const {
  FMTCP_CHECK(assumed_loss >= 0.0 && assumed_loss < 1.0);
  return static_cast<std::uint32_t>(std::ceil(
      static_cast<double>(block_symbols) / (1.0 - assumed_loss)));
}

FixedRateSender::FixedRateSender(sim::Simulator& simulator,
                                 const FixedRateParams& params,
                                 metrics::BlockDelayRecorder* delays)
    : simulator_(simulator), params_(params), delays_(delays) {}

void FixedRateSender::register_subflow(tcp::Subflow* subflow) {
  FMTCP_CHECK(subflow != nullptr);
  FMTCP_CHECK(subflow->id() == subflows_.size());
  subflows_.push_back(subflow);
}

void FixedRateSender::start() {
  for (tcp::Subflow* subflow : subflows_) {
    subflow->notify_send_opportunity();
  }
}

FixedRateSender::PendingBlock* FixedRateSender::sendable_block() {
  // First, any open block with authorised symbols left (id order).
  for (auto& [id, block] : pending_) {
    if (!block.decoded && block.next_symbol < block.budget) return &block;
  }
  // The oldest undecoded block may need an ARQ top-up round: its batch is
  // fully resolved (nothing in flight) yet the receiver still lacks
  // symbols. This is the fixed-rate failure mode of Eq. 5–6.
  if (!pending_.empty()) {
    PendingBlock& front = pending_.begin()->second;
    if (!front.decoded && front.in_flight == 0 &&
        front.next_symbol >= front.budget &&
        front.received < params_.block_symbols) {
      const std::uint32_t deficit = params_.block_symbols - front.received;
      const auto topup = static_cast<std::uint32_t>(std::ceil(
          static_cast<double>(deficit) / (1.0 - params_.assumed_loss)));
      front.budget += std::max<std::uint32_t>(1, topup);
      ++topup_rounds_;
      return &front;
    }
  }
  // Otherwise open a new block if the stream and the pending cap allow.
  if (pending_.size() < params_.max_pending_blocks &&
      (params_.total_blocks == 0 || next_id_ < params_.total_blocks)) {
    PendingBlock block;
    block.id = next_id_;
    block.budget = params_.batch_size();
    auto [it, inserted] = pending_.emplace(next_id_, block);
    ++next_id_;
    return &it->second;
  }
  return nullptr;
}

std::optional<tcp::SegmentContent> FixedRateSender::next_segment(
    std::uint32_t subflow) {
  PendingBlock* block = sendable_block();
  if (block == nullptr) return std::nullopt;

  FMTCP_CHECK(subflow < subflows_.size());
  const std::size_t wire = params_.symbol_wire_bytes();
  const auto per_packet = static_cast<std::uint32_t>(
      subflows_[subflow]->mss_payload() / wire);
  const std::uint32_t remaining = block->budget - block->next_symbol;
  const std::uint32_t count = std::min(per_packet, remaining);
  if (count == 0) return std::nullopt;

  tcp::SegmentContent content;
  content.payload_bytes = count * wire;
  for (std::uint32_t i = 0; i < count; ++i) {
    net::EncodedSymbol symbol;
    symbol.block = block->id;
    symbol.block_symbols = params_.block_symbols;
    symbol.coeff_seed = block->next_symbol++;  // Symbol index, MDS model.
    content.symbols.push_back(symbol);
  }
  block->in_flight += count;
  symbols_sent_ += count;
  if (block->first_sent == kNever) block->first_sent = simulator_.now();
  return content;
}

std::optional<tcp::SegmentContent> FixedRateSender::retransmit_segment(
    std::uint32_t subflow, std::uint64_t /*seq*/) {
  // Retransmission slots carry whatever symbols are authorised next; if
  // none, the subflow sends a filler.
  return next_segment(subflow);
}

void FixedRateSender::account(const tcp::SegmentContent& content,
                              bool /*acked*/) {
  for (const net::EncodedSymbol& symbol : content.symbols) {
    auto it = pending_.find(symbol.block);
    if (it == pending_.end()) continue;
    if (it->second.in_flight > 0) --it->second.in_flight;
  }
}

void FixedRateSender::on_segment_acked(std::uint32_t /*subflow*/,
                                       std::uint64_t /*seq*/,
                                       const tcp::SegmentContent& content) {
  account(content, true);
  schedule_poke();
}

void FixedRateSender::on_segment_lost(std::uint32_t /*subflow*/,
                                      std::uint64_t /*seq*/,
                                      const tcp::SegmentContent& content) {
  account(content, false);
  schedule_poke();
}

void FixedRateSender::schedule_poke() {
  if (poke_pending_) return;
  poke_pending_ = true;
  simulator_.schedule_in(0, [this] {
    poke_pending_ = false;
    for (tcp::Subflow* subflow : subflows_) {
      subflow->notify_send_opportunity();
    }
  });
}

void FixedRateSender::on_ack_info(std::uint32_t /*subflow*/,
                                  const net::Packet& ack) {
  for (const net::BlockAck& block_ack : ack.block_acks) {
    auto it = pending_.find(block_ack.block);
    if (it == pending_.end()) continue;
    PendingBlock& block = it->second;
    block.received = std::max(block.received, block_ack.independent_symbols);
    if (block_ack.decoded && !block.decoded) {
      block.decoded = true;
      ++completed_;
      if (delays_ != nullptr && block.first_sent != kNever) {
        delays_->record(block.id, simulator_.now() - block.first_sent);
      }
    }
  }
  // Close decoded blocks from the front to free pending slots.
  while (!pending_.empty() && pending_.begin()->second.decoded) {
    pending_.erase(pending_.begin());
  }
  schedule_poke();
}

FixedRateReceiver::FixedRateReceiver(sim::Simulator& simulator,
                                     const FixedRateParams& params,
                                     metrics::GoodputMeter* goodput)
    : simulator_(simulator), params_(params), goodput_(goodput) {}

bool FixedRateReceiver::is_decoded(net::BlockId id) const {
  return id < deliver_next_ || decoded_waiting_.count(id) != 0;
}

void FixedRateReceiver::on_segment(std::uint32_t /*subflow*/,
                                   net::Packet& p) {
  for (const net::EncodedSymbol& symbol : p.symbols) {
    if (is_decoded(symbol.block)) {
      ++redundant_;
      continue;
    }
    std::set<std::uint64_t>& seen = received_[symbol.block];
    if (!seen.insert(symbol.coeff_seed).second) {
      ++redundant_;  // Same fixed symbol received twice.
      continue;
    }
    if (seen.size() >= params_.block_symbols) {
      decoded_waiting_.insert(symbol.block);
      recently_decoded_.push_front(symbol.block);
      if (recently_decoded_.size() > 4) recently_decoded_.pop_back();
      received_.erase(symbol.block);
      deliver_ready();
    }
  }
}

void FixedRateReceiver::deliver_ready() {
  while (decoded_waiting_.erase(deliver_next_) != 0) {
    if (goodput_ != nullptr) {
      goodput_->on_delivered(simulator_.now(), params_.block_bytes());
    }
    ++blocks_delivered_;
    ++deliver_next_;
  }
}

void FixedRateReceiver::fill_ack(std::uint32_t /*subflow*/,
                                 const net::Packet& data, net::Packet& ack,
                                 std::size_t& /*extra_bytes*/) {
  std::set<net::BlockId> mentioned;
  for (const net::EncodedSymbol& symbol : data.symbols) {
    mentioned.insert(symbol.block);
  }
  if (!received_.empty()) mentioned.insert(received_.begin()->first);
  for (net::BlockId id : recently_decoded_) mentioned.insert(id);

  for (net::BlockId id : mentioned) {
    net::BlockAck block_ack;
    block_ack.block = id;
    if (is_decoded(id)) {
      block_ack.independent_symbols = params_.block_symbols;
      block_ack.decoded = true;
    } else {
      const auto it = received_.find(id);
      block_ack.independent_symbols =
          it == received_.end()
              ? 0
              : static_cast<std::uint32_t>(it->second.size());
    }
    ack.block_acks.push_back(block_ack);
  }
}

FixedRateConnection::FixedRateConnection(
    sim::Simulator& simulator, net::Topology& topology,
    const FixedRateConnectionConfig& config)
    : goodput_(config.goodput_bin) {
  sender_ = std::make_unique<FixedRateSender>(simulator, config.params,
                                              &delays_);
  receiver_ = std::make_unique<FixedRateReceiver>(simulator, config.params,
                                                  &goodput_);

  tcp::WiringOptions options;
  options.subflow = config.subflow;
  options.fresh_payload_on_retransmit = true;
  options.seed_loss_hint = config.seed_loss_hint;

  tcp::WiredSubflows wired =
      tcp::wire_subflows(simulator, topology, *sender_, *receiver_, options);
  subflows_ = std::move(wired.subflows);
  subflow_receivers_ = std::move(wired.subflow_receivers);
  for (auto& subflow : subflows_) sender_->register_subflow(subflow.get());
}

}  // namespace fmtcp::baselines
