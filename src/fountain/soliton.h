// Soliton degree distributions for LT codes (MacKay [17], the paper's
// fountain-code reference). The paper's protocol uses the dense random
// linear fountain; the LT codec is provided as an extension and for the
// overhead-comparison benches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fmtcp::fountain {

/// Ideal soliton: P(1) = 1/k, P(d) = 1/(d(d-1)) for d = 2..k.
class IdealSoliton {
 public:
  explicit IdealSoliton(std::uint32_t k);

  /// Samples a degree in [1, k].
  std::uint32_t sample(Rng& rng) const;

  /// P(degree == d).
  double pmf(std::uint32_t d) const;

  std::uint32_t k() const { return k_; }

 protected:
  std::uint32_t k_;
  std::vector<double> cdf_;  ///< cdf_[d-1] = P(degree <= d).
};

/// Robust soliton with the usual (c, delta) parameterisation.
class RobustSoliton {
 public:
  RobustSoliton(std::uint32_t k, double c, double delta);

  std::uint32_t sample(Rng& rng) const;
  double pmf(std::uint32_t d) const;

  std::uint32_t k() const { return k_; }
  /// The spike location R = c * ln(k/delta) * sqrt(k).
  double spike() const { return spike_; }

 private:
  std::uint32_t k_;
  double spike_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace fmtcp::fountain
