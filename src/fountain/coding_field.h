// Coefficient-field selection for the coding plane.
//
// Kept in its own tiny header so core/params.h can carry the knob
// without pulling the codec implementations in; fountain/codec.h has the
// wrappers that act on it.
#pragma once

#include <cstdint>
#include <optional>

namespace fmtcp::fountain {

/// Which coefficient field the random linear codec draws from.
///   kGf2   — bit coefficients, XOR kernels (the paper's code; default).
///   kGf256 — byte coefficients, PSHUFB/NEON multiply kernels (CTCP-style
///            ablation: lower reception overhead, costlier decode).
enum class CodingField : std::uint8_t { kGf2, kGf256 };

/// Stable lowercase name ("gf2", "gf256") — the --coding flag vocabulary
/// and what sweep outputs record.
const char* coding_field_name(CodingField field);

/// Parses a --coding flag value; nullopt if unknown.
std::optional<CodingField> parse_coding_field(const char* name);

/// Decoding-failure probability after `received` random symbols of a
/// k̂-symbol block, in the given field: Eq. 2's 2^-(received-k̂) for
/// GF(2), the q = 256 union bound for GF(256). Drives δ̃ (Def. 3), so the
/// sender's redundancy margin automatically shrinks for the denser field.
double field_decode_failure_probability(CodingField field,
                                        std::uint32_t k_hat, double received);

}  // namespace fmtcp::fountain
