// GF(256) field arithmetic: the coefficient algebra of the dense
// random-linear codec (CTCP-style ablation; see PAPERS.md, Kim et al.).
//
// The field is GF(2^8) with the primitive polynomial
//   x^8 + x^4 + x^3 + x^2 + 1   (0x11D)
// and generator alpha = 2, the conventional choice of RFC 6330 / Reed–
// Solomon implementations. All tables are computed at compile time, so
// the field needs no runtime initialisation and the scalar reference
// path is pure table lookups.
//
// Three table families live here:
//   - exp/log: scalar multiply, divide, inverse (the mathematical
//     reference the kernels are property-tested against);
//   - split-nibble tables: for every constant c, two 16-entry tables
//     with T_lo[n] = c·n and T_hi[n] = c·(n<<4), so c·v =
//     T_lo[v & 0xF] ^ T_hi[v >> 4]. This is the layout the PSHUFB /
//     vtbl kernels (gf256_kernels.h) load straight into vector
//     registers; the scalar kernel walks the same tables bytewise,
//     keeping every dispatch variant bit-identical by construction.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace fmtcp::fountain {

/// The primitive polynomial, reduced form (x^8 dropped): 0x1D.
inline constexpr std::uint16_t kGf256Poly = 0x11D;

namespace gf256_detail {

struct Tables {
  /// exp[i] = alpha^i for i in [0, 510): doubled so mul can index
  /// log[a] + log[b] without a conditional modulo 255.
  std::array<std::uint8_t, 510> exp{};
  /// log[a] for a in [1, 256); log[0] is unused (stored 0).
  std::array<std::uint8_t, 256> log{};

  constexpr Tables() {
    std::uint16_t x = 1;
    for (std::size_t i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      exp[i + 255] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kGf256Poly;
    }
  }
};

inline constexpr Tables kTables{};

}  // namespace gf256_detail

/// a · b in GF(256).
constexpr std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return gf256_detail::kTables
      .exp[gf256_detail::kTables.log[a] + gf256_detail::kTables.log[b]];
}

/// a^-1 in GF(256). a must be nonzero.
constexpr std::uint8_t gf256_inv(std::uint8_t a) {
  return gf256_detail::kTables
      .exp[255 - gf256_detail::kTables.log[a]];
}

/// a / b in GF(256). b must be nonzero.
constexpr std::uint8_t gf256_div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  return gf256_detail::kTables.exp[gf256_detail::kTables.log[a] + 255 -
                                   gf256_detail::kTables.log[b]];
}

/// alpha^i (i any non-negative exponent).
constexpr std::uint8_t gf256_exp(std::size_t i) {
  return gf256_detail::kTables.exp[i % 255];
}

/// log_alpha(a). a must be nonzero.
constexpr std::uint8_t gf256_log(std::uint8_t a) {
  return gf256_detail::kTables.log[a];
}

/// Split-nibble multiply tables for one constant c (32 bytes: exactly
/// two 16-byte vector registers). c·v = lo[v & 0xF] ^ hi[v >> 4] —
/// valid because GF(2^8) multiplication is linear over the nibble
/// decomposition v = (v & 0xF) ^ (v & 0xF0).
struct Gf256NibbleTables {
  std::uint8_t lo[16];
  std::uint8_t hi[16];
};

/// All 256 constants' nibble tables (8 KiB, compile-time), indexed by c.
const Gf256NibbleTables* gf256_nibble_tables();

/// Decoding-failure probability after receiving `received` random
/// GF(256) symbols of a k̂-symbol block: 1 if received < k̂, else the
/// standard union bound q^-(received-k̂) · q/(q-1) for q = 256, clamped
/// to 1. The GF(256) analogue of decode_failure_probability (Eq. 2):
/// dense byte coefficients make a redundant draw ~128× less likely per
/// extra symbol than GF(2), which is the reception-overhead side of the
/// CTCP tradeoff.
double gf256_decode_failure_probability(std::uint32_t k_hat,
                                        double received);

}  // namespace fmtcp::fountain
