#include "fountain/block.h"

#include "common/check.h"

namespace fmtcp::fountain {

BlockData::BlockData(std::uint32_t symbols, std::size_t symbol_bytes)
    : symbols_(symbols),
      symbol_bytes_(symbol_bytes),
      bytes_(static_cast<std::size_t>(symbols) * symbol_bytes, 0) {
  FMTCP_CHECK(symbols > 0);
  FMTCP_CHECK(symbol_bytes > 0);
}

std::uint8_t* BlockData::symbol(std::uint32_t i) {
  FMTCP_DCHECK(i < symbols_);
  return bytes_.data() + static_cast<std::size_t>(i) * symbol_bytes_;
}

const std::uint8_t* BlockData::symbol(std::uint32_t i) const {
  FMTCP_DCHECK(i < symbols_);
  return bytes_.data() + static_cast<std::size_t>(i) * symbol_bytes_;
}

AlignedBytes BlockData::symbol_copy(std::uint32_t i) const {
  const std::uint8_t* p = symbol(i);
  return AlignedBytes(p, p + symbol_bytes_);
}

BlockData make_deterministic_block(std::uint64_t block_id,
                                   std::uint32_t symbols,
                                   std::size_t symbol_bytes) {
  BlockData block(symbols, symbol_bytes);
  // Seed mixed with a constant so block 0 is not the RNG's default stream.
  Rng rng(block_id * 0x9e3779b97f4a7c15ULL + 0x51ed2701);
  for (auto& byte : block.bytes()) {
    byte = static_cast<std::uint8_t>(rng.next_u64());
  }
  return block;
}

}  // namespace fmtcp::fountain
