// Incremental Gaussian-elimination decoder for the random linear fountain.
//
// The receiver feeds symbols as they arrive (from any subflow, in any
// order); the decoder reduces each against its pivot rows, drops linearly
// dependent symbols on the spot (paper §III-B: "checks the linear
// independence and drops redundant symbols"), and reports the current rank
// k̄_b for the ACK feedback. Once rank == k̂ it back-substitutes and
// recovers the original block.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/buffer_pool.h"
#include "fountain/block.h"
#include "fountain/gf2.h"
#include "net/packet.h"

namespace fmtcp::fountain {

class BlockDecoder {
 public:
  /// `track_data` false = rank-only mode (no payload bytes stored).
  /// `pool`, when set, receives the payload buffers of dropped redundant
  /// symbols and of pivot rows once the block has been decoded, so the
  /// encoder side of the same simulator can reuse them.
  BlockDecoder(std::uint32_t symbols, std::size_t symbol_bytes,
               bool track_data, BufferPool* pool = nullptr);

  /// Inserts a symbol given its expanded coefficients and payload.
  /// Returns true if the symbol was innovative (rank increased).
  /// Takes ownership of `data`: the bytes are stored (or recycled)
  /// without copying.
  bool add_symbol(const BitVector& coeffs, std::vector<std::uint8_t>&& data);

  /// Copying convenience overload (tests and observers).
  bool add_symbol(const BitVector& coeffs,
                  const std::vector<std::uint8_t>& data);

  /// Inserts a wire symbol, taking ownership of its payload bytes
  /// (coefficients regenerated from its seed). The hot-path form: the
  /// receiver moves each symbol straight off the packet.
  bool add_symbol(net::EncodedSymbol&& symbol);

  /// Copying convenience overload (tests and observers).
  bool add_symbol(const net::EncodedSymbol& symbol);

  /// Current number of linearly independent symbols, k̄_b.
  std::uint32_t rank() const { return rank_; }

  /// True when rank == k̂ (block decodable).
  bool complete() const { return rank_ == symbols_; }

  std::uint32_t symbols() const { return symbols_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }

  /// Total symbols fed in, including redundant ones.
  std::uint64_t received_count() const { return received_; }

  /// Symbols dropped as linearly dependent.
  std::uint64_t redundant_count() const { return redundant_; }

  /// Receive-buffer bytes this block currently pins (stored symbol rows;
  /// rank-only mode counts the bytes the rows would occupy).
  std::size_t buffered_bytes() const;

  /// Recovers the original block. Requires complete() and track_data.
  /// Idempotent; the first call performs back-substitution.
  const BlockData& decode();

 private:
  struct Row {
    BitVector coeffs;
    std::vector<std::uint8_t> data;
  };

  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  bool track_data_;
  BufferPool* pool_ = nullptr;
  std::uint32_t rank_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t redundant_ = 0;
  /// pivot_rows_[p] holds the row whose lowest set bit is p (if any).
  std::vector<std::optional<Row>> pivot_rows_;
  std::optional<BlockData> decoded_;
};

}  // namespace fmtcp::fountain
