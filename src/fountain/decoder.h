// Incremental Gaussian-elimination decoder for the random linear fountain.
//
// The receiver feeds symbols as they arrive (from any subflow, in any
// order); the decoder reduces each against its pivot rows, drops linearly
// dependent symbols on the spot (paper §III-B: "checks the linear
// independence and drops redundant symbols"), and reports the current rank
// k̄_b for the ACK feedback. Once rank == k̂ it back-substitutes and
// recovers the original block.
//
// Elimination is *lazy* on payloads: the online phase works on word-packed
// coefficient vectors only, recording per pivot row a second k-bit
// composition vector that indexes the raw stored symbol payloads. Payload
// byte XORs are deferred to decode(), where back-substitution runs on the
// (coefficients, composition) pair and every source symbol is then
// materialised as one sparse combination of raw payloads, applied once.
// Rank-only mode (track_data = false) therefore touches zero payload
// bytes by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/buffer_pool.h"
#include "fountain/block.h"
#include "fountain/gf2.h"
#include "net/packet.h"
#include "obs/metrics.h"

namespace fmtcp::fountain {

/// Optional coding-plane instrumentation (obs-layer counters, null-safe):
/// one struct shared by every BlockDecoder of a receiver. Registered by
/// the receiver as fountain.payload_bytes_xored / fountain.coeff_word_xors
/// / fountain.rows_composed.
struct CodingMetrics {
  obs::Counter payload_bytes_xored;  ///< Payload bytes run through XOR kernels.
  obs::Counter coeff_word_xors;      ///< 64-bit words XORed in elimination.
  obs::Counter rows_composed;        ///< Source rows materialised at decode().
};

class BlockDecoder {
 public:
  /// `track_data` false = rank-only mode (no payload bytes stored).
  /// `pool`, when set, receives the payload buffers of dropped redundant
  /// symbols and of stored symbols once the block has been decoded, so
  /// the encoder side of the same simulator can reuse them.
  /// `metrics`, when set, must outlive the decoder; counters are bumped
  /// at add_symbol()/decode() granularity (never inside the hot loops).
  BlockDecoder(std::uint32_t symbols, std::size_t symbol_bytes,
               bool track_data, BufferPool* pool = nullptr,
               CodingMetrics* metrics = nullptr);

  /// Inserts a symbol given its expanded coefficients and payload.
  /// Returns true if the symbol was innovative (rank increased).
  /// Takes ownership of `data`: the bytes are stored (or recycled)
  /// without copying.
  bool add_symbol(const BitVector& coeffs, std::vector<std::uint8_t>&& data);

  /// Copying convenience overload (tests and observers). The payload is
  /// only copied in track_data mode.
  bool add_symbol(const BitVector& coeffs,
                  const std::vector<std::uint8_t>& data);

  /// Inserts a wire symbol, taking ownership of its payload bytes
  /// (coefficients regenerated from its seed). The hot-path form: the
  /// receiver moves each symbol straight off the packet.
  bool add_symbol(net::EncodedSymbol&& symbol);

  /// Copying convenience overload (tests and observers). The payload is
  /// only copied in track_data mode.
  bool add_symbol(const net::EncodedSymbol& symbol);

  /// Current number of linearly independent symbols, k̄_b.
  std::uint32_t rank() const { return rank_; }

  /// True when rank == k̂ (block decodable).
  bool complete() const { return rank_ == symbols_; }

  std::uint32_t symbols() const { return symbols_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }

  /// Total symbols fed in, including redundant ones.
  std::uint64_t received_count() const { return received_; }

  /// Symbols dropped as linearly dependent.
  std::uint64_t redundant_count() const { return redundant_; }

  /// Receive-buffer bytes this block currently pins (stored symbol rows;
  /// rank-only mode counts the bytes the rows would occupy).
  std::size_t buffered_bytes() const;

  /// Recovers the original block. Requires complete() and track_data.
  /// Idempotent; the first call performs back-substitution and the
  /// deferred payload XORs.
  const BlockData& decode();

  // --- Cost introspection (mirrors the CodingMetrics counters) ---
  std::uint64_t payload_bytes_xored() const { return payload_bytes_xored_; }
  std::uint64_t coeff_word_xors() const { return coeff_word_xors_; }
  std::uint64_t rows_composed() const { return rows_composed_; }

 private:
  struct Row {
    BitVector coeffs;  ///< Over the k̂ source symbols.
    BitVector comp;    ///< Over stored_ slots; empty in rank-only mode.
  };

  /// Expands a wire symbol's coefficients into scratch_coeffs_.
  void expand_coefficients(const net::EncodedSymbol& symbol);

  /// Sparse composition application: XOR each row's selected raw
  /// payloads straight into `out`. Returns payload bytes XORed.
  std::uint64_t compose_direct(BlockData& out);

  /// Dense application via 4-bit group tables (method of four
  /// Russians): all 15 subset XORs per group of four stored payloads
  /// are built once and shared across output rows.
  std::uint64_t compose_grouped(BlockData& out, std::size_t groups);

  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  bool track_data_;
  BufferPool* pool_ = nullptr;
  CodingMetrics* metrics_ = nullptr;
  std::uint32_t rank_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t redundant_ = 0;
  std::uint64_t payload_bytes_xored_ = 0;
  std::uint64_t coeff_word_xors_ = 0;
  std::uint64_t rows_composed_ = 0;
  /// pivot_rows_[p] holds the row whose lowest set bit is p (if any).
  std::vector<std::optional<Row>> pivot_rows_;
  /// Raw payloads of stored (innovative) symbols, in arrival order; slot
  /// j is what comp bit j refers to. Empty in rank-only mode.
  std::vector<std::vector<std::uint8_t>> stored_;
  BitVector scratch_coeffs_;  ///< Reused across add_symbol calls.
  std::optional<BlockData> decoded_;
};

}  // namespace fmtcp::fountain
