// Incremental Gaussian-elimination decoder for the random linear fountain.
//
// The receiver feeds symbols as they arrive (from any subflow, in any
// order); the decoder reduces each against its pivot rows, drops linearly
// dependent symbols on the spot (paper §III-B: "checks the linear
// independence and drops redundant symbols"), and reports the current rank
// k̄_b for the ACK feedback. Once rank == k̂ it back-substitutes and
// recovers the original block.
//
// Elimination is *lazy* on payloads: the online phase works on word-packed
// coefficient vectors only, recording per pivot row a second k-bit
// composition vector that indexes the raw stored symbol payloads. Payload
// byte XORs are deferred to decode(), where back-substitution runs on the
// (coefficients, composition) pair and every source symbol is then
// materialised as one sparse combination of raw payloads, applied once.
// Rank-only mode (track_data = false) therefore touches zero payload
// bytes by construction.
//
// Storage is a flat fused row arena: pivot row p is one record of
// `stride_words` 64-bit words at rows_[p * stride_words] — coefficient
// half first, composition half immediately after — so one fused
// kernel XOR (gf2_kernels.h reduce_row) eliminates both halves per step
// with no per-row allocation and no per-step function-call overhead.
//
// decode() picks among three equivalent strategies (the decoded block is
// the unique GF(2) solution, so all produce byte-identical output; the
// choice depends only on the symbol stream, never on the machine):
//   - k̂ ≤ 64 register path: whole rows in two registers.
//   - plain elimination: blocked (8-column) method-of-four-Russians
//     triangular solve on the symbolic rows, then payload composition
//     via direct sparse XOR or adaptive 4/8-bit group tables.
//   - inactivation (RFC 6330 style): sparse pivot rows substitute
//     symbolically; only the dense "inactivated" core — d rows, d ≤ k̂/4
//     — pays dense elimination, so low-degree streams with a few dense
//     repair rows stop being ~k̂² payload work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/aligned.h"
#include "common/buffer_pool.h"
#include "fountain/block.h"
#include "fountain/gf2.h"
#include "net/packet.h"
#include "obs/metrics.h"

namespace fmtcp::fountain {

/// Optional coding-plane instrumentation (obs-layer counters, null-safe):
/// one struct shared by every BlockDecoder of a receiver. Registered by
/// the receiver as fountain.payload_bytes_xored / fountain.coeff_word_xors
/// / fountain.rows_composed.
struct CodingMetrics {
  obs::Counter payload_bytes_xored;  ///< Payload bytes run through XOR kernels.
  obs::Counter coeff_word_xors;      ///< 64-bit words XORed in elimination.
  obs::Counter rows_composed;        ///< Source rows materialised at decode().
};

/// Reusable decode() workspace: solve tables, M4R payload tables,
/// inactivation core state. One scratch serves any number of decoders
/// (receiver-wide, or across a whole bench batch), so the table
/// allocations amortise across blocks instead of being paid per decode.
/// Not thread-safe; use one per thread.
class DecodeScratch {
 public:
  DecodeScratch() = default;
  DecodeScratch(const DecodeScratch&) = delete;
  DecodeScratch& operator=(const DecodeScratch&) = delete;

 private:
  friend class BlockDecoder;
  AlignedWords solve_tables_;   ///< Blocked-solve subset tables (≤256 rows).
  AlignedWords icomp_;          ///< Per-row inactive-core combinations.
  AlignedWords core_;           ///< Dense core records (matrix | rhs).
  AlignedBytes payload_tables_; ///< M4R payload strip tables.
  AlignedBytes core_payloads_;  ///< Materialised inactivated symbols.
  std::vector<std::uint8_t> dense_;        ///< Per-pivot density flags.
  std::vector<std::uint32_t> core_index_;  ///< Pivot -> core column.
  std::vector<std::uint32_t> core_pivots_; ///< Core column -> pivot.
  std::vector<const std::uint64_t*> comp_ptrs_;
  std::vector<std::uint8_t*> dst_ptrs_;
};

class BlockDecoder {
 public:
  /// Strategy override for equivalence tests; kAuto picks by stream
  /// shape (deterministically — never by machine).
  enum class DecodeStrategy { kAuto, kPlainElimination, kInactivation };

  /// `track_data` false = rank-only mode (no payload bytes stored).
  /// `pool`, when set, receives the payload buffers of dropped redundant
  /// symbols and of stored symbols once the block has been decoded, so
  /// the encoder side of the same simulator can reuse them.
  /// `metrics`, when set, must outlive the decoder; counters are bumped
  /// at add_symbol()/decode() granularity (never inside the hot loops).
  BlockDecoder(std::uint32_t symbols, std::size_t symbol_bytes,
               bool track_data, BufferPool* pool = nullptr,
               CodingMetrics* metrics = nullptr);

  /// Inserts a symbol given its expanded coefficients and payload.
  /// Returns true if the symbol was innovative (rank increased).
  /// Takes ownership of `data`: the bytes are stored (or recycled)
  /// without copying.
  bool add_symbol(const BitVector& coeffs, AlignedBytes&& data);

  /// Copying convenience overload (tests and observers). The payload is
  /// only copied in track_data mode.
  bool add_symbol(const BitVector& coeffs, const AlignedBytes& data);

  /// Inserts a wire symbol, taking ownership of its payload bytes
  /// (coefficients regenerated from its seed). The hot-path form: the
  /// receiver moves each symbol straight off the packet.
  bool add_symbol(net::EncodedSymbol&& symbol);

  /// Copying convenience overload (tests and observers). The payload is
  /// only copied in track_data mode.
  bool add_symbol(const net::EncodedSymbol& symbol);

  /// Current number of linearly independent symbols, k̄_b.
  std::uint32_t rank() const { return rank_; }

  /// True when rank == k̂ (block decodable).
  bool complete() const { return rank_ == symbols_; }

  std::uint32_t symbols() const { return symbols_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }

  /// Total symbols fed in, including redundant ones.
  std::uint64_t received_count() const { return received_; }

  /// Symbols dropped as linearly dependent.
  std::uint64_t redundant_count() const { return redundant_; }

  /// Receive-buffer bytes this block currently pins (stored symbol rows;
  /// rank-only mode counts the bytes the rows would occupy).
  std::size_t buffered_bytes() const;

  /// Recovers the original block. Requires complete() and track_data.
  /// Idempotent; the first call performs back-substitution and the
  /// deferred payload XORs (using a private scratch).
  const BlockData& decode();

  /// As decode(), but working in caller-owned scratch so table storage
  /// amortises across blocks (the receiver passes one per connection).
  const BlockData& decode(DecodeScratch& scratch);

  /// Overrides the decode() strategy choice (tests).
  void set_decode_strategy(DecodeStrategy s) { strategy_ = s; }

  // --- Cost introspection (mirrors the CodingMetrics counters) ---
  std::uint64_t payload_bytes_xored() const { return payload_bytes_xored_; }
  std::uint64_t coeff_word_xors() const { return coeff_word_xors_; }
  std::uint64_t rows_composed() const { return rows_composed_; }

 private:
  /// Expands a wire symbol's coefficients into scratch_coeffs_.
  void expand_coefficients(const net::EncodedSymbol& symbol);

  std::uint64_t* row(std::size_t p) { return rows_.data() + p * stride_words_; }
  const std::uint64_t* row(std::size_t p) const {
    return rows_.data() + p * stride_words_;
  }
  std::uint64_t* row_comp(std::size_t p) { return row(p) + coeff_words_; }
  const std::uint64_t* row_comp(std::size_t p) const {
    return row(p) + coeff_words_;
  }
  bool has_pivot(std::size_t p) const {
    return ((present_[p >> 6] >> (p & 63)) & 1ULL) != 0;
  }

  /// Symbolic back-substitution via 8-column blocked M4R over the fused
  /// rows; afterwards each pivot row's composition is final. Dispatches
  /// to a constant-W instantiation for common widths (the W-word inner
  /// XORs fully unroll); WC = 0 is the runtime-width fallback.
  std::uint64_t solve_symbolic_blocked(DecodeScratch& scratch);
  template <std::size_t WC>
  std::uint64_t solve_symbolic_blocked_impl(DecodeScratch& scratch);

  /// Reduces the incoming track-mode record in scratch_row_ against the
  /// pivot rows. Constant-W instantiations keep the whole fused record
  /// in registers across the scan (no store-to-load stalls on the
  /// serial eliminate-and-rescan chain); the runtime-width fallback
  /// uses the dispatched kernel's fused reduce_row. Returns the free
  /// pivot (or k̂ if redundant) and adds to `words`.
  std::size_t reduce_track(std::uint64_t& words);
  template <std::size_t WC>
  std::size_t reduce_track_impl(std::uint64_t& words);

  /// Inactivation: substitutes sparse rows symbolically, solves the
  /// d-row dense core, materialises core payloads, then every output
  /// row. Returns payload bytes XORed; adds symbolic words to `words`.
  std::uint64_t decode_inactivation(BlockData& out, DecodeScratch& scratch,
                                    std::uint64_t& words);

  /// Materialises `nrows` payload rows: dsts[i] ^= XOR of stored_ slots
  /// selected by comps[i] (k̂-bit vectors). Picks direct sparse gather or
  /// strip-processed 4/8-bit M4R group tables by total set-bit cost.
  std::uint64_t compose_rows(const std::uint64_t* const* comps,
                             std::uint8_t* const* dsts, std::size_t nrows,
                             DecodeScratch& scratch);

  std::uint64_t compose_rows_direct(const std::uint64_t* const* comps,
                                    std::uint8_t* const* dsts,
                                    std::size_t nrows);
  std::uint64_t compose_rows_m4r(const std::uint64_t* const* comps,
                                 std::uint8_t* const* dsts,
                                 std::size_t nrows, std::size_t group_bits,
                                 DecodeScratch& scratch);

  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  bool track_data_;
  BufferPool* pool_ = nullptr;
  CodingMetrics* metrics_ = nullptr;
  DecodeStrategy strategy_ = DecodeStrategy::kAuto;
  std::uint32_t rank_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t redundant_ = 0;
  std::uint64_t payload_bytes_xored_ = 0;
  std::uint64_t coeff_word_xors_ = 0;
  std::uint64_t rows_composed_ = 0;
  std::size_t coeff_words_;   ///< ceil(k̂ / 64).
  std::size_t stride_words_;  ///< Record stride: 2·coeff_words_ (track) or 1·.
  /// Flat fused row arena: record p = [coeffs | comp] at p·stride_words_.
  /// Pivot row p has its lowest coefficient bit at p; absent rows zero.
  AlignedWords rows_;
  std::vector<std::uint64_t> present_;  ///< Pivot-present bitmap.
  AlignedWords scratch_row_;            ///< Incoming record being reduced.
  /// Raw payloads of stored (innovative) symbols, in arrival order; slot
  /// j is what comp bit j refers to. Empty in rank-only mode.
  std::vector<AlignedBytes> stored_;
  BitVector scratch_coeffs_;  ///< Reused across add_symbol calls.
  std::optional<BlockData> decoded_;
};

/// Decodes every complete(), not-yet-decoded decoder in `decoders`,
/// sharing `scratch` so solve/table storage is allocated once for the
/// whole batch. Returns the number of blocks decoded. Incomplete
/// decoders are skipped (call again when more symbols arrive).
std::size_t decode_batch(BlockDecoder* const* decoders, std::size_t n,
                         DecodeScratch& scratch);

}  // namespace fmtcp::fountain
