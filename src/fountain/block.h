// Source-data block: the fountain coding unit (paper §III-B).
//
// A block holds k̂ source symbols of `symbol_bytes` each. The paper ties
// symbol size to block size (k̂-bit symbols, k̂² bits per block) for
// notational convenience; we keep the two independent, which preserves the
// code and the failure model while allowing realistic packet payloads
// (documented substitution in DESIGN.md).
#pragma once

#include <cstdint>

#include "common/aligned.h"
#include "common/rng.h"

namespace fmtcp::fountain {

class BlockData {
 public:
  /// Zero-filled block of `symbols` symbols, `symbol_bytes` bytes each.
  BlockData(std::uint32_t symbols, std::size_t symbol_bytes);

  std::uint32_t symbols() const { return symbols_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }
  std::size_t total_bytes() const { return bytes_.size(); }

  /// Mutable access to symbol i's bytes (contiguous).
  std::uint8_t* symbol(std::uint32_t i);
  const std::uint8_t* symbol(std::uint32_t i) const;

  /// Copies symbol i out as a (64-byte-aligned) vector.
  AlignedBytes symbol_copy(std::uint32_t i) const;

  const AlignedBytes& bytes() const { return bytes_; }
  AlignedBytes& bytes() { return bytes_; }

 private:
  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  /// 64-byte aligned so decode() output rows start the kernels on the
  /// wide fast path. Symbol stride stays symbol_bytes_ — the byte
  /// layout is unchanged; only the base pointer gains alignment.
  AlignedBytes bytes_;
};

/// Deterministic pseudo-random block content derived from `block_id`.
/// Sender and verifying receiver can regenerate the same bytes, giving
/// end-to-end integrity checking without storing the whole stream.
BlockData make_deterministic_block(std::uint64_t block_id,
                                   std::uint32_t symbols,
                                   std::size_t symbol_bytes);

}  // namespace fmtcp::fountain
