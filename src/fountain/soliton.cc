#include "fountain/soliton.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fmtcp::fountain {

namespace {

/// Binary-searches a CDF for the first index with cdf >= u; returns the
/// 1-based degree.
std::uint32_t sample_cdf(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const auto idx = static_cast<std::uint32_t>(it - cdf.begin());
  return std::min<std::uint32_t>(idx + 1,
                                 static_cast<std::uint32_t>(cdf.size()));
}

}  // namespace

IdealSoliton::IdealSoliton(std::uint32_t k) : k_(k), cdf_(k) {
  FMTCP_CHECK(k >= 1);
  double acc = 0.0;
  for (std::uint32_t d = 1; d <= k; ++d) {
    acc += pmf(d);
    cdf_[d - 1] = acc;
  }
  cdf_.back() = 1.0;
}

double IdealSoliton::pmf(std::uint32_t d) const {
  if (d < 1 || d > k_) return 0.0;
  if (d == 1) return 1.0 / static_cast<double>(k_);
  return 1.0 / (static_cast<double>(d) * static_cast<double>(d - 1));
}

std::uint32_t IdealSoliton::sample(Rng& rng) const {
  return sample_cdf(cdf_, rng);
}

RobustSoliton::RobustSoliton(std::uint32_t k, double c, double delta)
    : k_(k), pmf_(k), cdf_(k) {
  FMTCP_CHECK(k >= 1);
  FMTCP_CHECK(c > 0.0);
  FMTCP_CHECK(delta > 0.0 && delta < 1.0);

  spike_ = c * std::log(static_cast<double>(k) / delta) *
           std::sqrt(static_cast<double>(k));
  const auto spike_idx = static_cast<std::uint32_t>(
      std::clamp(std::round(static_cast<double>(k) / spike_), 1.0,
                 static_cast<double>(k)));

  IdealSoliton rho(k);
  // tau(d) per Luby: R/(d k) for d < k/R, R ln(R/delta)/k at d = k/R.
  std::vector<double> tau(k, 0.0);
  for (std::uint32_t d = 1; d <= k; ++d) {
    if (d < spike_idx) {
      tau[d - 1] = spike_ / (static_cast<double>(d) * k);
    } else if (d == spike_idx) {
      tau[d - 1] = spike_ * std::log(spike_ / delta) / k;
    }
  }

  double norm = 0.0;
  for (std::uint32_t d = 1; d <= k; ++d) {
    pmf_[d - 1] = rho.pmf(d) + tau[d - 1];
    norm += pmf_[d - 1];
  }
  double acc = 0.0;
  for (std::uint32_t d = 1; d <= k; ++d) {
    pmf_[d - 1] /= norm;
    acc += pmf_[d - 1];
    cdf_[d - 1] = acc;
  }
  cdf_.back() = 1.0;
}

double RobustSoliton::pmf(std::uint32_t d) const {
  if (d < 1 || d > k_) return 0.0;
  return pmf_[d - 1];
}

std::uint32_t RobustSoliton::sample(Rng& rng) const {
  return sample_cdf(cdf_, rng);
}

}  // namespace fmtcp::fountain
