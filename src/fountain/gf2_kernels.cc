#include "fountain/gf2_kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cpu_features.h"

#if (defined(__x86_64__) || defined(__i386__)) && !defined(FMTCP_SIMD_DISABLED)
#define FMTCP_HAVE_X86_SIMD 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && !defined(FMTCP_SIMD_DISABLED)
#define FMTCP_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace fmtcp::fountain {
namespace {

// ---- Scalar stamp (always compiled; the reference implementation). ----
#define FMTCP_ISA_NS scalar_impl
#define FMTCP_ISA_NAME "scalar"
#define FMTCP_ISA_TARGET
#define FMTCP_VEC_BYTES 8
#define FMTCP_VLOAD(p) lo64(p)
#define FMTCP_VSTORE(p, v) st64(p, v)
#define FMTCP_VXOR(a, b) ((a) ^ (b))
#include "fountain/gf2_kernels_simd.inc"

#if defined(FMTCP_HAVE_X86_SIMD)

#define FMTCP_ISA_NS sse2_impl
#define FMTCP_ISA_NAME "sse2"
#define FMTCP_ISA_TARGET __attribute__((target("sse2")))
#define FMTCP_VEC_BYTES 16
#define FMTCP_VLOAD(p) \
  _mm_loadu_si128(reinterpret_cast<const __m128i*>(p))
#define FMTCP_VSTORE(p, v) \
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), (v))
#define FMTCP_VXOR(a, b) _mm_xor_si128((a), (b))
#include "fountain/gf2_kernels_simd.inc"

#define FMTCP_ISA_NS avx2_impl
#define FMTCP_ISA_NAME "avx2"
#define FMTCP_ISA_TARGET __attribute__((target("avx2")))
#define FMTCP_VEC_BYTES 32
#define FMTCP_VLOAD(p) \
  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))
#define FMTCP_VSTORE(p, v) \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), (v))
#define FMTCP_VXOR(a, b) _mm256_xor_si256((a), (b))
#include "fountain/gf2_kernels_simd.inc"

#define FMTCP_ISA_NS avx512_impl
#define FMTCP_ISA_NAME "avx512"
#define FMTCP_ISA_TARGET __attribute__((target("avx512f")))
#define FMTCP_VEC_BYTES 64
#define FMTCP_VLOAD(p) _mm512_loadu_si512(p)
#define FMTCP_VSTORE(p, v) _mm512_storeu_si512((p), (v))
#define FMTCP_VXOR(a, b) _mm512_xor_si512((a), (b))
#include "fountain/gf2_kernels_simd.inc"

#endif  // FMTCP_HAVE_X86_SIMD

#if defined(FMTCP_HAVE_NEON)

#define FMTCP_ISA_NS neon_impl
#define FMTCP_ISA_NAME "neon"
#define FMTCP_ISA_TARGET
#define FMTCP_VEC_BYTES 16
#define FMTCP_VLOAD(p) vld1q_u8(p)
#define FMTCP_VSTORE(p, v) vst1q_u8((p), (v))
#define FMTCP_VXOR(a, b) veorq_u8((a), (b))
#include "fountain/gf2_kernels_simd.inc"

#endif  // FMTCP_HAVE_NEON

const Gf2KernelOps* pick_widest() {
#if defined(FMTCP_HAVE_X86_SIMD)
  const CpuFeatures& f = cpu_features();
  // AVX2 is preferred over AVX-512 by default: at fountain symbol sizes
  // (hundreds of bytes) 512-bit ops measure slower on common parts
  // (frequency licensing), and 256-bit lanes already saturate the loads.
  // FMTCP_FORCE_KERNEL=avx512 opts in explicitly.
  if (f.avx2) return &avx2_impl::kOps;
  if (f.sse2) return &sse2_impl::kOps;
#endif
#if defined(FMTCP_HAVE_NEON)
  if (cpu_features().neon) return &neon_impl::kOps;
#endif
  return &scalar_impl::kOps;
}

const Gf2KernelOps* find_available(const char* name) {
  for (const Gf2KernelOps* ops : gf2_available_kernels()) {
    if (std::strcmp(ops->name, name) == 0) return ops;
  }
  return nullptr;
}

const Gf2KernelOps* initial_kernel() {
  // Environment override for tests and reproducible benchmarking. An
  // unknown or unavailable name aborts loudly rather than silently
  // benchmarking the wrong kernel.
  const char* force = std::getenv("FMTCP_FORCE_KERNEL");
  if (force != nullptr && *force != '\0') {
    if (const Gf2KernelOps* ops = find_available(force)) return ops;
    std::string names;
    for (const Gf2KernelOps* ops : gf2_available_kernels()) {
      if (!names.empty()) names += ',';
      names += ops->name;
    }
    std::fprintf(stderr,
                 "FMTCP_FORCE_KERNEL=%s: unknown or unavailable GF(2) "
                 "kernel (available: %s)\n",
                 force, names.c_str());
    std::abort();
  }
  return pick_widest();
}

std::atomic<const Gf2KernelOps*> g_active{nullptr};

}  // namespace

const Gf2KernelOps& gf2_kernel() {
  const Gf2KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign init race: initial_kernel() is deterministic per process
    // environment, so concurrent first calls store the same pointer.
    ops = initial_kernel();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

const Gf2KernelOps& gf2_scalar_kernel() { return scalar_impl::kOps; }

std::vector<const Gf2KernelOps*> gf2_available_kernels() {
  std::vector<const Gf2KernelOps*> out;
  out.push_back(&scalar_impl::kOps);
#if defined(FMTCP_HAVE_X86_SIMD)
  const CpuFeatures& f = cpu_features();
  if (f.sse2) out.push_back(&sse2_impl::kOps);
  if (f.avx2) out.push_back(&avx2_impl::kOps);
  if (f.avx512f) out.push_back(&avx512_impl::kOps);
#endif
#if defined(FMTCP_HAVE_NEON)
  if (cpu_features().neon) out.push_back(&neon_impl::kOps);
#endif
  return out;
}

bool gf2_set_kernel(const char* name) {
  const Gf2KernelOps* ops = find_available(name);
  if (ops == nullptr) return false;
  g_active.store(ops, std::memory_order_release);
  return true;
}

}  // namespace fmtcp::fountain
