// Field-polymorphic codec wrappers.
//
// SymbolEncoder / SymbolDecoder hold either the GF(2) random linear
// codec (random_linear.h + decoder.h) or the GF(256) one (gf256_rlc.h)
// behind exactly the interface the protocol layer uses, so the sender's
// block manager and the receiver pick the coefficient field from
// FmtcpParams::coding_field without any other change — the wire format
// (seed-carrying EncodedSymbol) is shared, and nothing default-on
// changes (kGf2 reproduces the GF(2) plane byte for byte).
//
// Dispatch is a std::variant visit per call, far off the hot loops (the
// per-byte work happens inside the held codec's kernels).
#pragma once

#include <cstddef>
#include <cstdint>
#include <variant>

#include "common/buffer_pool.h"
#include "common/rng.h"
#include "fountain/block.h"
#include "fountain/coding_field.h"
#include "fountain/decoder.h"
#include "fountain/gf256_rlc.h"
#include "fountain/random_linear.h"
#include "net/packet.h"

namespace fmtcp::fountain {

/// Per-block encoder in the chosen field. API mirrors the codecs it
/// wraps (payload / rank-only modes, systematic prefix, buffer pool).
class SymbolEncoder {
 public:
  /// Payload mode: encodes real bytes from `block` (copied).
  SymbolEncoder(CodingField field, std::uint64_t block_id, BlockData block,
                Rng rng, bool systematic = false);

  /// Rank-only mode: symbols have empty `data`.
  SymbolEncoder(CodingField field, std::uint64_t block_id,
                std::uint32_t symbols, std::size_t symbol_bytes, Rng rng,
                bool systematic = false);

  net::EncodedSymbol next_symbol();
  void set_buffer_pool(BufferPool* pool);

  CodingField field() const {
    return std::holds_alternative<RandomLinearEncoder>(impl_)
               ? CodingField::kGf2
               : CodingField::kGf256;
  }
  bool systematic() const;
  std::uint64_t block_id() const;
  std::uint32_t symbols() const;
  std::size_t symbol_bytes() const;
  std::uint64_t generated_count() const;

 private:
  std::variant<RandomLinearEncoder, Gf256RlcEncoder> impl_;
};

/// Per-block decoder in the chosen field. `metrics` (GF(2)-plane obs
/// counters) applies to the GF(2) decoder; the GF(256) decoder keeps its
/// own cost counters (gf256_rlc.h accessors).
class SymbolDecoder {
 public:
  SymbolDecoder(CodingField field, std::uint32_t symbols,
                std::size_t symbol_bytes, bool track_data,
                BufferPool* pool = nullptr, CodingMetrics* metrics = nullptr);

  /// Hot-path form: takes ownership of the symbol's payload bytes.
  bool add_symbol(net::EncodedSymbol&& symbol);
  /// Copying convenience overload (tests and observers).
  bool add_symbol(const net::EncodedSymbol& symbol);

  std::uint32_t rank() const;
  bool complete() const;
  std::uint32_t symbols() const;
  std::size_t symbol_bytes() const;
  std::uint64_t received_count() const;
  std::uint64_t redundant_count() const;
  std::size_t buffered_bytes() const;

  /// Recovers the original block (complete() and track_data required).
  /// `scratch` amortises GF(2) decode tables across blocks; the GF(256)
  /// decoder has no cross-block tables and ignores it.
  const BlockData& decode(DecodeScratch& scratch);
  const BlockData& decode();

  CodingField field() const {
    return std::holds_alternative<BlockDecoder>(impl_) ? CodingField::kGf2
                                                       : CodingField::kGf256;
  }

 private:
  std::variant<BlockDecoder, Gf256RlcDecoder> impl_;
};

}  // namespace fmtcp::fountain
