#include "fountain/gf256_kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cpu_features.h"
#include "fountain/gf256.h"

#if (defined(__x86_64__) || defined(__i386__)) && !defined(FMTCP_SIMD_DISABLED)
#define FMTCP_HAVE_X86_SIMD 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && !defined(FMTCP_SIMD_DISABLED)
#define FMTCP_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace fmtcp::fountain {
namespace {

// ---- Scalar stamp (always compiled; the reference implementation). ----
// FMTCP_VEC_BYTES 1 compiles the vector blocks out of the .inc, leaving
// pure split-nibble table walks; the vector macros are placeholders.
#define FMTCP_ISA_NS scalar_impl
#define FMTCP_ISA_NAME "scalar"
#define FMTCP_ISA_TARGET
#define FMTCP_VEC_BYTES 1
#define FMTCP_VLOAD(p) (*(p))
#define FMTCP_VSTORE(p, v) (*(p) = (v))
#define FMTCP_VXOR(a, b) ((a) ^ (b))
#define FMTCP_MT_T const Gf256NibbleTables*
#define FMTCP_MT_PREP(t) (&(t))
#define FMTCP_VMUL(mt, v) mul1(*(mt), (v))
#include "fountain/gf256_kernels_simd.inc"

#if defined(FMTCP_HAVE_X86_SIMD)

// Prepared split-nibble tables of one constant, staged into registers.
// The lookup is two PSHUFB-family shuffles + XOR per vector: lo table
// indexed by v & 0xF, hi table indexed by v >> 4.
struct Mt128 {
  __m128i lo, hi;
};

__attribute__((target("ssse3"))) static inline Mt128 mt128_prep(
    const Gf256NibbleTables& t) {
  return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi))};
}

__attribute__((target("ssse3"))) static inline __m128i mt128_mul(Mt128 mt,
                                                                 __m128i v) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  return _mm_xor_si128(
      _mm_shuffle_epi8(mt.lo, _mm_and_si128(v, mask)),
      _mm_shuffle_epi8(mt.hi, _mm_and_si128(_mm_srli_epi16(v, 4), mask)));
}

#define FMTCP_ISA_NS ssse3_impl
#define FMTCP_ISA_NAME "ssse3"
#define FMTCP_ISA_TARGET __attribute__((target("ssse3")))
#define FMTCP_VEC_BYTES 16
#define FMTCP_VLOAD(p) \
  _mm_loadu_si128(reinterpret_cast<const __m128i*>(p))
#define FMTCP_VSTORE(p, v) \
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), (v))
#define FMTCP_VXOR(a, b) _mm_xor_si128((a), (b))
#define FMTCP_MT_T Mt128
#define FMTCP_MT_PREP(t) mt128_prep(t)
#define FMTCP_VMUL(mt, v) mt128_mul((mt), (v))
#include "fountain/gf256_kernels_simd.inc"

struct Mt256 {
  __m256i lo, hi;
};

__attribute__((target("avx2"))) static inline Mt256 mt256_prep(
    const Gf256NibbleTables& t) {
  // VPSHUFB shuffles within each 128-bit lane, so the 16-byte tables are
  // broadcast to both lanes.
  return {_mm256_broadcastsi128_si256(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo))),
          _mm256_broadcastsi128_si256(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)))};
}

__attribute__((target("avx2"))) static inline __m256i mt256_mul(Mt256 mt,
                                                                __m256i v) {
  const __m256i mask = _mm256_set1_epi8(0x0F);
  return _mm256_xor_si256(
      _mm256_shuffle_epi8(mt.lo, _mm256_and_si256(v, mask)),
      _mm256_shuffle_epi8(mt.hi,
                          _mm256_and_si256(_mm256_srli_epi16(v, 4), mask)));
}

#define FMTCP_ISA_NS avx2_impl
#define FMTCP_ISA_NAME "avx2"
#define FMTCP_ISA_TARGET __attribute__((target("avx2")))
#define FMTCP_VEC_BYTES 32
#define FMTCP_VLOAD(p) \
  _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))
#define FMTCP_VSTORE(p, v) \
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), (v))
#define FMTCP_VXOR(a, b) _mm256_xor_si256((a), (b))
#define FMTCP_MT_T Mt256
#define FMTCP_MT_PREP(t) mt256_prep(t)
#define FMTCP_VMUL(mt, v) mt256_mul((mt), (v))
#include "fountain/gf256_kernels_simd.inc"

struct Mt512 {
  __m512i lo, hi;
};

#define FMTCP_AVX512_GF256_TARGET \
  __attribute__((target("avx512f,avx512bw,avx512vbmi")))

FMTCP_AVX512_GF256_TARGET static inline Mt512 mt512_prep(
    const Gf256NibbleTables& t) {
  // VPERMB indexes the full 64-byte register, so the 16-byte table is
  // broadcast 4×; index bits [5:4] then select an identical copy, which
  // makes the low-nibble lookup maskless.
  return {_mm512_broadcast_i32x4(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo))),
          _mm512_broadcast_i32x4(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)))};
}

FMTCP_AVX512_GF256_TARGET static inline __m512i mt512_mul(Mt512 mt,
                                                          __m512i v) {
  // VPERMB uses index bits [5:0]; the broadcast table makes bits [5:4]
  // irrelevant, so v itself indexes the lo table. The hi index still
  // masks because the 16-bit shift drags neighbour-byte bits in.
  return _mm512_xor_si512(
      _mm512_permutexvar_epi8(v, mt.lo),
      _mm512_permutexvar_epi8(
          _mm512_and_si512(_mm512_srli_epi16(v, 4), _mm512_set1_epi8(0x0F)),
          mt.hi));
}

#define FMTCP_ISA_NS avx512_impl
#define FMTCP_ISA_NAME "avx512"
#define FMTCP_ISA_TARGET FMTCP_AVX512_GF256_TARGET
#define FMTCP_VEC_BYTES 64
#define FMTCP_VLOAD(p) _mm512_loadu_si512(p)
#define FMTCP_VSTORE(p, v) _mm512_storeu_si512((p), (v))
#define FMTCP_VXOR(a, b) _mm512_xor_si512((a), (b))
#define FMTCP_MT_T Mt512
#define FMTCP_MT_PREP(t) mt512_prep(t)
#define FMTCP_VMUL(mt, v) mt512_mul((mt), (v))
#include "fountain/gf256_kernels_simd.inc"

#endif  // FMTCP_HAVE_X86_SIMD

#if defined(FMTCP_HAVE_NEON)

struct MtNeon {
  uint8x16_t lo, hi;
};

static inline MtNeon mtneon_prep(const Gf256NibbleTables& t) {
  return {vld1q_u8(t.lo), vld1q_u8(t.hi)};
}

static inline uint8x16_t mtneon_mul(MtNeon mt, uint8x16_t v) {
  // vqtbl1q is a true 16-entry byte table lookup; vshrq_n_u8 shifts per
  // byte, so the hi index needs no mask.
  return veorq_u8(vqtbl1q_u8(mt.lo, vandq_u8(v, vdupq_n_u8(0x0F))),
                  vqtbl1q_u8(mt.hi, vshrq_n_u8(v, 4)));
}

#define FMTCP_ISA_NS neon_impl
#define FMTCP_ISA_NAME "neon"
#define FMTCP_ISA_TARGET
#define FMTCP_VEC_BYTES 16
#define FMTCP_VLOAD(p) vld1q_u8(p)
#define FMTCP_VSTORE(p, v) vst1q_u8((p), (v))
#define FMTCP_VXOR(a, b) veorq_u8((a), (b))
#define FMTCP_MT_T MtNeon
#define FMTCP_MT_PREP(t) mtneon_prep(t)
#define FMTCP_VMUL(mt, v) mtneon_mul((mt), (v))
#include "fountain/gf256_kernels_simd.inc"

#endif  // FMTCP_HAVE_NEON

const Gf256KernelOps* pick_widest() {
#if defined(FMTCP_HAVE_X86_SIMD)
  const CpuFeatures& f = cpu_features();
  // AVX2 preferred over AVX-512 by default, matching the GF(2) plane:
  // at fountain symbol sizes 512-bit ops measure slower on common parts
  // (frequency licensing). FMTCP_FORCE_KERNEL=avx512 opts in explicitly.
  if (f.avx2) return &avx2_impl::kOps;
  if (f.ssse3) return &ssse3_impl::kOps;
#endif
#if defined(FMTCP_HAVE_NEON)
  if (cpu_features().neon) return &neon_impl::kOps;
#endif
  return &scalar_impl::kOps;
}

const Gf256KernelOps* find_available(const char* name) {
  // "sse2" is the GF(2) plane's narrowest x86 kernel; pre-SSSE3 x86 has
  // no PSHUFB, so the scalar table walk is its GF(256) counterpart. The
  // alias keeps one FMTCP_FORCE_KERNEL value valid for both planes.
  if (std::strcmp(name, "sse2") == 0) return &scalar_impl::kOps;
  for (const Gf256KernelOps* ops : gf256_available_kernels()) {
    if (std::strcmp(ops->name, name) == 0) return ops;
  }
  return nullptr;
}

const Gf256KernelOps* initial_kernel() {
  // Environment override for tests and reproducible benchmarking —
  // shared with the GF(2) plane so one variable pins the process. An
  // unknown or unavailable name aborts loudly rather than silently
  // benchmarking the wrong kernel.
  const char* force = std::getenv("FMTCP_FORCE_KERNEL");
  if (force != nullptr && *force != '\0') {
    if (const Gf256KernelOps* ops = find_available(force)) return ops;
    std::string names;
    for (const Gf256KernelOps* ops : gf256_available_kernels()) {
      if (!names.empty()) names += ',';
      names += ops->name;
    }
    std::fprintf(stderr,
                 "FMTCP_FORCE_KERNEL=%s: unknown or unavailable GF(256) "
                 "kernel (available: %s, alias sse2=scalar)\n",
                 force, names.c_str());
    std::abort();
  }
  return pick_widest();
}

std::atomic<const Gf256KernelOps*> g_active{nullptr};

}  // namespace

const Gf256KernelOps& gf256_kernel() {
  const Gf256KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign init race: initial_kernel() is deterministic per process
    // environment, so concurrent first calls store the same pointer.
    ops = initial_kernel();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

const Gf256KernelOps& gf256_scalar_kernel() { return scalar_impl::kOps; }

std::vector<const Gf256KernelOps*> gf256_available_kernels() {
  std::vector<const Gf256KernelOps*> out;
  out.push_back(&scalar_impl::kOps);
#if defined(FMTCP_HAVE_X86_SIMD)
  const CpuFeatures& f = cpu_features();
  if (f.ssse3) out.push_back(&ssse3_impl::kOps);
  if (f.avx2) out.push_back(&avx2_impl::kOps);
  // VPERMB needs both BW (512-bit byte ops) and VBMI — AVX-512F alone
  // (e.g. Skylake-SP Xeon Bronze) cannot run this kernel.
  if (f.avx512bw && f.avx512vbmi) out.push_back(&avx512_impl::kOps);
#endif
#if defined(FMTCP_HAVE_NEON)
  if (cpu_features().neon) out.push_back(&neon_impl::kOps);
#endif
  return out;
}

bool gf256_set_kernel(const char* name) {
  const Gf256KernelOps* ops = find_available(name);
  if (ops == nullptr) return false;
  g_active.store(ops, std::memory_order_release);
  return true;
}

}  // namespace fmtcp::fountain
