#include "fountain/random_linear.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/trace/span.h"

namespace fmtcp::fountain {

BitVector coefficients_from_seed(std::uint64_t seed, std::uint32_t k) {
  BitVector v;
  coefficients_from_seed_into(seed, k, v);
  return v;
}

void coefficients_from_seed_into(std::uint64_t seed, std::uint32_t k,
                                 BitVector& out) {
  Rng rng(seed);
  BitVector::random_into(k, rng, out);
  while (!out.any()) BitVector::random_into(k, rng, out);
}

AlignedBytes encode_with_coefficients(const BlockData& block,
                                      const BitVector& coeffs) {
  AlignedBytes out;
  encode_with_coefficients_into(block, coeffs, out);
  return out;
}

void encode_with_coefficients_into(const BlockData& block,
                                   const BitVector& coeffs,
                                   AlignedBytes& out) {
  FMTCP_CHECK(coeffs.size() == block.symbols());
  out.assign(block.symbol_bytes(), 0);
  // Iterate set words, not per-bit get(i), and fold batches of source
  // symbols through one pass over the output.
  const std::uint8_t* srcs[kXorBatch];
  std::size_t n = 0;
  coeffs.for_each_set_bit([&](std::size_t i) {
    srcs[n++] = block.symbol(static_cast<std::uint32_t>(i));
    if (n == kXorBatch) {
      xor_accumulate(out.data(), srcs, n, out.size());
      n = 0;
    }
  });
  if (n > 0) xor_accumulate(out.data(), srcs, n, out.size());
}

double decode_failure_probability(std::uint32_t k_hat, double received) {
  if (received < static_cast<double>(k_hat)) return 1.0;
  return std::exp2(-(received - static_cast<double>(k_hat)));
}

RandomLinearEncoder::RandomLinearEncoder(std::uint64_t block_id,
                                         BlockData block, Rng rng,
                                         bool systematic)
    : block_id_(block_id),
      symbols_(block.symbols()),
      symbol_bytes_(block.symbol_bytes()),
      data_(std::move(block)),
      rng_(rng),
      systematic_(systematic) {}

RandomLinearEncoder::RandomLinearEncoder(std::uint64_t block_id,
                                         std::uint32_t symbols,
                                         std::size_t symbol_bytes, Rng rng,
                                         bool systematic)
    : block_id_(block_id),
      symbols_(symbols),
      symbol_bytes_(symbol_bytes),
      rng_(rng),
      systematic_(systematic) {
  FMTCP_CHECK(symbols > 0);
  FMTCP_CHECK(symbol_bytes > 0);
}

net::EncodedSymbol RandomLinearEncoder::next_symbol() {
  FMTCP_COUNT("codec.encode_symbol", 1);
  net::EncodedSymbol s;
  s.block = block_id_;
  s.block_symbols = symbols_;
  if (systematic_ && generated_ < symbols_) {
    s.systematic_index = static_cast<std::uint32_t>(generated_);
    if (data_.has_value()) {
      if (pool_ != nullptr) s.data = pool_->acquire(symbol_bytes_);
      const std::uint8_t* src = data_->symbol(s.systematic_index);
      s.data.assign(src, src + symbol_bytes_);
    }
  } else {
    s.coeff_seed = rng_.next_u64();
    if (data_.has_value()) {
      coefficients_from_seed_into(s.coeff_seed, symbols_, coeff_scratch_);
      if (pool_ != nullptr) s.data = pool_->acquire(symbol_bytes_);
      encode_with_coefficients_into(*data_, coeff_scratch_, s.data);
    }
  }
  ++generated_;
  return s;
}

}  // namespace fmtcp::fountain
