#include "fountain/gf256_rlc.h"

#include <cstring>
#include <utility>

#include "common/check.h"
#include "fountain/gf2.h"
#include "fountain/gf256.h"
#include "fountain/gf256_kernels.h"
#include "obs/trace/span.h"

namespace fmtcp::fountain {

void gf256_coefficients_from_seed_into(std::uint64_t seed, std::uint32_t k,
                                       std::vector<std::uint8_t>& out) {
  out.resize(k);
  Rng rng(seed);
  for (;;) {
    // Eight coefficient bytes per PRNG draw, little-endian like the
    // GF(2) expansion, truncated to k.
    for (std::uint32_t i = 0; i < k; i += 8) {
      std::uint64_t w = rng.next_u64();
      const std::uint32_t n = k - i < 8 ? k - i : 8;
      std::memcpy(out.data() + i, &w, n);
    }
    for (std::uint32_t i = 0; i < k; ++i) {
      if (out[i] != 0) return;
    }
    // All-zero draw (k < 8 only, in practice): re-roll deterministically.
  }
}

void gf256_encode_with_coefficients_into(const BlockData& block,
                                         const std::uint8_t* coeffs,
                                         AlignedBytes& out) {
  out.assign(block.symbol_bytes(), 0);
  const Gf256KernelOps& ops = gf256_kernel();
  // Fold batches of source symbols through one fused pass over the
  // output, mirroring the GF(2) kXorBatch idiom.
  const std::uint8_t* srcs[kXorBatch];
  std::uint8_t cs[kXorBatch];
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < block.symbols(); ++i) {
    if (coeffs[i] == 0) continue;
    srcs[n] = block.symbol(i);
    cs[n] = coeffs[i];
    if (++n == kXorBatch) {
      ops.mul_accumulate(out.data(), srcs, cs, n, out.size());
      n = 0;
    }
  }
  if (n > 0) ops.mul_accumulate(out.data(), srcs, cs, n, out.size());
}

Gf256RlcEncoder::Gf256RlcEncoder(std::uint64_t block_id, BlockData block,
                                 Rng rng, bool systematic)
    : block_id_(block_id),
      symbols_(block.symbols()),
      symbol_bytes_(block.symbol_bytes()),
      data_(std::move(block)),
      rng_(rng),
      systematic_(systematic) {}

Gf256RlcEncoder::Gf256RlcEncoder(std::uint64_t block_id, std::uint32_t symbols,
                                 std::size_t symbol_bytes, Rng rng,
                                 bool systematic)
    : block_id_(block_id),
      symbols_(symbols),
      symbol_bytes_(symbol_bytes),
      rng_(rng),
      systematic_(systematic) {
  FMTCP_CHECK(symbols > 0);
  FMTCP_CHECK(symbol_bytes > 0);
}

net::EncodedSymbol Gf256RlcEncoder::next_symbol() {
  FMTCP_COUNT("codec.encode_symbol", 1);
  net::EncodedSymbol s;
  s.block = block_id_;
  s.block_symbols = symbols_;
  if (systematic_ && generated_ < symbols_) {
    s.systematic_index = static_cast<std::uint32_t>(generated_);
    if (data_.has_value()) {
      if (pool_ != nullptr) s.data = pool_->acquire(symbol_bytes_);
      const std::uint8_t* src = data_->symbol(s.systematic_index);
      s.data.assign(src, src + symbol_bytes_);
    }
  } else {
    s.coeff_seed = rng_.next_u64();
    if (data_.has_value()) {
      gf256_coefficients_from_seed_into(s.coeff_seed, symbols_,
                                        coeff_scratch_);
      if (pool_ != nullptr) s.data = pool_->acquire(symbol_bytes_);
      gf256_encode_with_coefficients_into(*data_, coeff_scratch_.data(),
                                          s.data);
    }
  }
  ++generated_;
  return s;
}

Gf256RlcDecoder::Gf256RlcDecoder(std::uint32_t symbols,
                                 std::size_t symbol_bytes, bool track_data,
                                 BufferPool* pool)
    : symbols_(symbols),
      symbol_bytes_(symbol_bytes),
      track_data_(track_data),
      pool_(pool),
      stride_(track_data ? 2 * static_cast<std::size_t>(symbols)
                         : static_cast<std::size_t>(symbols)),
      rows_(symbols * stride_, 0),
      present_((symbols + 63) / 64, 0),
      scratch_record_(stride_, 0) {
  FMTCP_CHECK(symbols > 0);
  FMTCP_CHECK(symbol_bytes > 0);
  if (track_data_) stored_.reserve(symbols);
}

bool Gf256RlcDecoder::add_symbol(const std::uint8_t* coeffs,
                                 AlignedBytes&& data) {
  ++received_;
  if (complete()) {
    // Late symbol for an already-decodable block: count and recycle.
    ++redundant_;
    if (pool_ != nullptr && !data.empty()) pool_->release(std::move(data));
    return false;
  }
  const std::uint32_t k = symbols_;
  std::uint8_t* rec = scratch_record_.data();
  std::memcpy(rec, coeffs, k);
  if (track_data_) {
    // Composition starts as "this symbol alone"; elimination folds pivot
    // rows' compositions in through the same fused suffix ops.
    std::memset(rec + k, 0, k);
    rec[k + stored_.size()] = 1;
  }
  const Gf256KernelOps& ops = gf256_kernel();
  // Forward elimination with partial pivoting: scan for the first
  // nonzero coefficient; eliminate while that column already has a
  // pivot. Pivot row p has coeffs[<p] zero, so one fused mul_region over
  // the record suffix [p, stride) handles coefficients and composition.
  std::uint32_t p = 0;
  while (p < k) {
    if (rec[p] == 0) {
      ++p;
      continue;
    }
    if (!has_pivot(p)) break;
    const std::uint8_t factor = rec[p];  // Pivot coefficient is 1.
    ops.mul_region(rec + p, row(p) + p, factor, stride_ - p);
    coeff_bytes_eliminated_ += stride_ - p;
    // rec[p] is now zero by construction; continue at the next column.
    ++p;
  }
  if (p == k) {
    ++redundant_;
    if (pool_ != nullptr && !data.empty()) pool_->release(std::move(data));
    return false;
  }
  // Innovative: normalise so the pivot coefficient is 1 (bytes before p
  // are zero already), then the row enters the arena at p.
  const std::uint8_t inv = gf256_inv(rec[p]);
  ops.scale_region(rec + p, inv, stride_ - p);
  coeff_bytes_eliminated_ += stride_ - p;
  std::memcpy(row(p), rec, stride_);
  present_[p >> 6] |= 1ULL << (p & 63);
  ++rank_;
  if (track_data_) {
    FMTCP_CHECK(data.size() == symbol_bytes_);
    stored_.push_back(std::move(data));
  } else if (pool_ != nullptr && !data.empty()) {
    pool_->release(std::move(data));
  }
  return true;
}

bool Gf256RlcDecoder::add_symbol(net::EncodedSymbol&& symbol) {
  FMTCP_CHECK(symbol.block_symbols == symbols_);
  if (symbol.is_systematic()) {
    FMTCP_CHECK(symbol.systematic_index < symbols_);
    scratch_coeffs_.assign(symbols_, 0);
    scratch_coeffs_[symbol.systematic_index] = 1;
  } else {
    gf256_coefficients_from_seed_into(symbol.coeff_seed, symbols_,
                                      scratch_coeffs_);
  }
  return add_symbol(scratch_coeffs_.data(), std::move(symbol.data));
}

bool Gf256RlcDecoder::add_symbol(const net::EncodedSymbol& symbol) {
  net::EncodedSymbol copy;
  copy.block = symbol.block;
  copy.block_symbols = symbol.block_symbols;
  copy.coeff_seed = symbol.coeff_seed;
  copy.systematic_index = symbol.systematic_index;
  if (track_data_) copy.data = symbol.data;
  return add_symbol(std::move(copy));
}

std::size_t Gf256RlcDecoder::buffered_bytes() const {
  if (track_data_) {
    std::size_t total = 0;
    for (const AlignedBytes& s : stored_) total += s.size();
    return total;
  }
  return static_cast<std::size_t>(rank_) * symbol_bytes_;
}

const BlockData& Gf256RlcDecoder::decode() {
  if (decoded_.has_value()) return *decoded_;
  FMTCP_CHECK(complete());
  FMTCP_CHECK(track_data_);
  FMTCP_SPAN("gf256.decode");
  const std::uint32_t k = symbols_;
  const Gf256KernelOps& ops = gf256_kernel();
  // Back-substitution on the fused records, descending. Row p is final
  // (coeffs = unit vector) once every row above has eliminated column p;
  // the same fused suffix op as the online phase clears row q's
  // coefficient p and folds row p's composition in.
  for (std::uint32_t p = k; p-- > 0;) {
    const std::uint8_t* rp = row(p);
    for (std::uint32_t q = 0; q < p; ++q) {
      std::uint8_t* rq = row(q);
      const std::uint8_t c = rq[p];
      if (c == 0) continue;
      ops.mul_region(rq + p, rp + p, c, stride_ - p);
      coeff_bytes_eliminated_ += stride_ - p;
    }
  }
  // Materialise each source symbol as one fused multiply-accumulate of
  // the stored payloads selected by its composition row.
  decoded_.emplace(symbols_, symbol_bytes_);
  std::vector<const std::uint8_t*> ptrs(stored_.size());
  for (std::size_t j = 0; j < stored_.size(); ++j) ptrs[j] = stored_[j].data();
  for (std::uint32_t p = 0; p < k; ++p) {
    const std::uint8_t* comp = row(p) + k;
    ops.mul_accumulate(decoded_->symbol(p), ptrs.data(), comp,
                       stored_.size(), symbol_bytes_);
    std::size_t nnz = 0;
    for (std::size_t j = 0; j < stored_.size(); ++j) nnz += comp[j] != 0;
    payload_bytes_multiplied_ += nnz * symbol_bytes_;
    ++rows_composed_;
  }
  if (pool_ != nullptr) {
    for (AlignedBytes& s : stored_) pool_->release(std::move(s));
  }
  stored_.clear();
  return *decoded_;
}

}  // namespace fmtcp::fountain
