#include "fountain/gf256.h"

#include <cmath>

namespace fmtcp::fountain {
namespace {

struct NibbleTableArray {
  std::array<Gf256NibbleTables, 256> tables{};

  constexpr NibbleTableArray() {
    for (std::size_t c = 0; c < 256; ++c) {
      for (std::size_t n = 0; n < 16; ++n) {
        tables[c].lo[n] = gf256_mul(static_cast<std::uint8_t>(c),
                                    static_cast<std::uint8_t>(n));
        tables[c].hi[n] = gf256_mul(static_cast<std::uint8_t>(c),
                                    static_cast<std::uint8_t>(n << 4));
      }
    }
  }
};

constexpr NibbleTableArray kNibbleTables{};

}  // namespace

const Gf256NibbleTables* gf256_nibble_tables() {
  return kNibbleTables.tables.data();
}

double gf256_decode_failure_probability(std::uint32_t k_hat,
                                        double received) {
  if (received < static_cast<double>(k_hat)) return 1.0;
  // P(k̂ random vectors over GF(q)^k̂ among `received` fail to span) ≤
  // q^-(received-k̂) · q/(q-1); exact enough for the δ̃ margin and
  // monotone in `received` like the GF(2) formula.
  const double q = 256.0;
  const double p = std::pow(q, -(received - static_cast<double>(k_hat))) *
                   (q / (q - 1.0));
  return p > 1.0 ? 1.0 : p;
}

}  // namespace fmtcp::fountain
