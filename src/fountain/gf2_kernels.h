// Runtime-dispatched GF(2) XOR kernel plane.
//
// One kernel table per instruction set (scalar always; SSE2/AVX2/AVX-512
// on x86-64, NEON on AArch64), compiled into every build via per-function
// target attributes — a generic -O2 build ships the AVX2/AVX-512 paths
// and picks at runtime. Every variant computes bit-identical XOR: the
// dispatch decision can change throughput only, never a simulation
// result (fig3–7 / Table I are byte-identical under any kernel).
//
// Selection, once at first use:
//   1. FMTCP_FORCE_KERNEL=scalar|sse2|avx2|avx512|neon — exact kernel,
//      loud abort if unknown or unavailable (tests, reproducible bench).
//   2. Otherwise the widest kernel the CPU supports (common/cpu_features).
// Builds configured with -DFMTCP_SIMD=OFF compile the scalar table only.
//
// Alignment contract: kernels use unaligned-tolerant loads throughout, so
// any pointer/length is correct; 64-byte-aligned buffers (common/aligned.h)
// are the fast path the allocators arrange, not a requirement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fmtcp::fountain {

/// One instruction-set variant of the XOR kernel family. All function
/// pointers are non-null; all variants are bit-identical.
struct Gf2KernelOps {
  /// Stable lowercase identifier ("scalar", "sse2", "avx2", "avx512",
  /// "neon") — the FMTCP_FORCE_KERNEL vocabulary and what
  /// BENCH_codec.json records.
  const char* name;

  /// dst[0..size) ^= src[0..size).
  void (*xor_bytes_raw)(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t size);

  /// dst[0..size) = a[0..size) ^ b[0..size), fused single pass.
  /// dst must not overlap a or b.
  void (*xor_into)(std::uint8_t* dst, const std::uint8_t* a,
                   const std::uint8_t* b, std::size_t size);

  /// dst ^= srcs[0] ^ ... ^ srcs[n-1], folding up to four sources per
  /// pass over dst.
  void (*xor_accumulate)(std::uint8_t* dst,
                         const std::uint8_t* const* srcs, std::size_t n,
                         std::size_t size);

  /// dst[0..nwords) ^= src[0..nwords) on packed 64-bit words
  /// (coefficient/composition rows). No overlap.
  void (*xor_words)(std::uint64_t* dst, const std::uint64_t* src,
                    std::size_t nwords);

  /// Fully reduces `row` against the pivot rows of a flat row arena:
  /// on return no coefficient bit of `row` coincides with a present
  /// pivot. `row` is one record of `stride_words` 64-bit words whose
  /// first `coeff_words` words are the k-bit coefficient vector (padding
  /// bits zero); the remainder (composition half) is carried through
  /// each fused XOR. `rows` holds k records of the same stride;
  /// `present` is a bitmap of which pivots exist. Relies on pivot row p
  /// having its lowest set bit at p, so eliminating at p only disturbs
  /// bits ≥ p and the hit mask (row & present) advances monotonically
  /// within each word. Returns the lowest surviving coefficient bit —
  /// the free pivot the row can occupy — or k if the row reduced to
  /// zero (redundant). `*steps` is incremented once per row XOR
  /// (metrics).
  std::size_t (*reduce_row)(std::uint64_t* row, const std::uint64_t* rows,
                            const std::uint64_t* present, std::size_t k,
                            std::size_t coeff_words,
                            std::size_t stride_words, std::size_t* steps);
};

/// The active kernel table (selected on first call, then stable for the
/// process unless gf2_set_kernel intervenes). Hot loops should hoist
/// `const Gf2KernelOps& ops = gf2_kernel();` out of their inner loop.
const Gf2KernelOps& gf2_kernel();

/// The scalar table — always available, the reference all SIMD variants
/// are property-tested against.
const Gf2KernelOps& gf2_scalar_kernel();

/// Every kernel usable in this build on this CPU, deterministically
/// ordered narrowest first (scalar, sse2, avx2, avx512 / neon).
std::vector<const Gf2KernelOps*> gf2_available_kernels();

/// Switches the active kernel by name. Returns false (no change) if the
/// name is unknown or the kernel is unavailable here. Test hook; not
/// thread-safe against concurrent kernel calls by design — callers
/// switch only between decode runs.
bool gf2_set_kernel(const char* name);

}  // namespace fmtcp::fountain
