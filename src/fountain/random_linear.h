// Random linear fountain encoder (paper Eq. 1).
//
// Each encoded symbol c_n = sum_k rho_k * g_nk over GF(2), with the
// coefficient vector (g_nk) drawn uniformly at random. Packets carry only
// the 64-bit seed that regenerates the coefficients (both ends expand the
// seed identically), as practical fountain systems do.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/buffer_pool.h"
#include "common/rng.h"
#include "fountain/block.h"
#include "fountain/gf2.h"
#include "net/packet.h"

namespace fmtcp::fountain {

/// Expands a coefficient seed into the k-bit vector both ends agree on.
/// All-zero draws are re-rolled deterministically, so the result always
/// has at least one set bit.
BitVector coefficients_from_seed(std::uint64_t seed, std::uint32_t k);

/// As above, but expands into a caller-owned scratch vector (storage
/// reused across calls) instead of allocating a fresh BitVector. Produces
/// the same bits as coefficients_from_seed for the same seed.
void coefficients_from_seed_into(std::uint64_t seed, std::uint32_t k,
                                 BitVector& out);

/// XOR of the block's symbols selected by `coeffs` (Eq. 1).
AlignedBytes encode_with_coefficients(const BlockData& block,
                                      const BitVector& coeffs);

/// As above, but writes into `out` (resized and zeroed) so a recycled
/// buffer's capacity is reused instead of allocating a fresh vector.
void encode_with_coefficients_into(const BlockData& block,
                                   const BitVector& coeffs,
                                   AlignedBytes& out);

/// Decoding-failure probability after receiving `received` random symbols
/// of a k̂-symbol block (paper Eq. 2): 1 if received < k̂, else
/// 2^-(received - k̂).
double decode_failure_probability(std::uint32_t k_hat, double received);

/// Stateful per-block encoder held by the sender. Can run with or without
/// payload bytes: in rank-only mode symbols carry just the coefficient
/// seed, which leaves every protocol decision and packet size unchanged
/// while skipping the byte XORs (a simulation speed knob).
///
/// Optionally *systematic* (like RFC 5053/6330 Raptor codes): the first
/// k̂ symbols emitted are the source symbols themselves, so a lossless
/// channel decodes for free; repair symbols afterwards are random linear
/// combinations as usual.
class RandomLinearEncoder {
 public:
  /// Payload mode: encodes real bytes from `block` (copied).
  RandomLinearEncoder(std::uint64_t block_id, BlockData block, Rng rng,
                      bool systematic = false);

  /// Rank-only mode: symbols have empty `data`.
  RandomLinearEncoder(std::uint64_t block_id, std::uint32_t symbols,
                      std::size_t symbol_bytes, Rng rng,
                      bool systematic = false);

  /// Generates the next encoded symbol (source symbol while the
  /// systematic prefix lasts, then fresh random coefficients).
  net::EncodedSymbol next_symbol();

  /// Optional buffer pool: when set, payload buffers for emitted symbols
  /// are acquired from it instead of freshly allocated. The pool must
  /// outlive the encoder. Does not affect the symbol stream (seeds and
  /// bytes are identical either way).
  void set_buffer_pool(BufferPool* pool) { pool_ = pool; }

  bool systematic() const { return systematic_; }

  std::uint64_t block_id() const { return block_id_; }
  std::uint32_t symbols() const { return symbols_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }
  std::uint64_t generated_count() const { return generated_; }

 private:
  std::uint64_t block_id_;
  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  std::optional<BlockData> data_;  ///< Absent in rank-only mode.
  BufferPool* pool_ = nullptr;
  Rng rng_;
  bool systematic_ = false;
  std::uint64_t generated_ = 0;
  BitVector coeff_scratch_;  ///< Reused per symbol (payload mode only).
};

}  // namespace fmtcp::fountain
