// Dense GF(2) vectors: the coefficient algebra of the random linear
// fountain code (paper Eq. 1).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace fmtcp::fountain {

/// Fixed-length bit vector over GF(2), packed into 64-bit words.
///
/// Vectors of up to kInlineWords * 64 bits (k ≤ 128, which covers every
/// paper configuration) are stored inline with no heap allocation; larger
/// vectors spill to a heap block. Word-level accessors expose the packed
/// representation so hot loops can iterate set *words* instead of probing
/// bits one at a time.
class BitVector {
 public:
  /// Inline-storage threshold, in 64-bit words (128 bits).
  static constexpr std::size_t kInlineWords = 2;

  /// Empty vector (size() == 0); call reset() before use.
  BitVector() = default;

  /// All-zero vector of `bits` bits.
  explicit BitVector(std::size_t bits) { reset_checked(bits); }

  BitVector(const BitVector& other) { copy_from(other); }
  BitVector& operator=(const BitVector& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  BitVector(BitVector&& other) noexcept { steal_from(other); }
  BitVector& operator=(BitVector&& other) noexcept {
    if (this != &other) {
      delete[] heap_;
      heap_ = nullptr;
      steal_from(other);
    }
    return *this;
  }
  ~BitVector() { delete[] heap_; }

  /// Uniformly random vector (each bit i.i.d. fair). May be all-zero;
  /// callers that need a usable coefficient vector should re-draw.
  static BitVector random(std::size_t bits, Rng& rng);

  /// As random(), but fills `out` in place (reusing its storage) instead
  /// of constructing a fresh vector. Consumes `rng` identically.
  static void random_into(std::size_t bits, Rng& rng, BitVector& out);

  /// Makes *this an all-zero vector of `bits` bits, reusing existing
  /// storage when it is large enough.
  void reset(std::size_t bits) { reset_checked(bits); }

  std::size_t size() const { return bits_; }

  /// Number of packed 64-bit words ((size() + 63) / 64).
  std::size_t word_count() const { return nwords_; }

  /// The packed words, low bits first; padding past size() is zero.
  const std::uint64_t* word_data() const { return words(); }

  /// Mutable packed words. Callers must keep padding bits past size()
  /// zero (equality/popcount assume it).
  std::uint64_t* word_data() { return words(); }

  bool get(std::size_t i) const {
    FMTCP_DCHECK(i < bits_);
    return (words()[i / 64] >> (i % 64)) & 1ULL;
  }

  void set(std::size_t i, bool value) {
    FMTCP_DCHECK(i < bits_);
    const std::uint64_t mask = 1ULL << (i % 64);
    if (value) {
      words()[i / 64] |= mask;
    } else {
      words()[i / 64] &= ~mask;
    }
  }

  /// this ^= other (sizes must match).
  void xor_with(const BitVector& other) {
    FMTCP_DCHECK(bits_ == other.bits_);
    std::uint64_t* w = words();
    const std::uint64_t* o = other.words();
    for (std::size_t i = 0; i < nwords_; ++i) w[i] ^= o[i];
  }

  /// True if any bit is set.
  bool any() const {
    const std::uint64_t* w = words();
    for (std::size_t i = 0; i < nwords_; ++i) {
      if (w[i] != 0) return true;
    }
    return false;
  }

  /// Index of the lowest set bit, or size() if none.
  std::size_t lowest_set_bit() const {
    const std::uint64_t* w = words();
    for (std::size_t i = 0; i < nwords_; ++i) {
      if (w[i] != 0) {
        return i * 64 + static_cast<std::size_t>(std::countr_zero(w[i]));
      }
    }
    return bits_;
  }

  /// Number of set bits.
  std::size_t popcount() const {
    const std::uint64_t* w = words();
    std::size_t total = 0;
    for (std::size_t i = 0; i < nwords_; ++i) {
      total += static_cast<std::size_t>(std::popcount(w[i]));
    }
    return total;
  }

  /// Calls fn(bit_index) for each set bit in ascending order, iterating
  /// set words + countr_zero rather than probing every bit.
  template <typename Fn>
  void for_each_set_bit(Fn&& fn) const {
    const std::uint64_t* w = words();
    for (std::size_t i = 0; i < nwords_; ++i) {
      std::uint64_t word = w[i];
      while (word != 0) {
        fn(i * 64 + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
      }
    }
  }

  bool operator==(const BitVector& other) const {
    if (bits_ != other.bits_) return false;
    const std::uint64_t* a = words();
    const std::uint64_t* b = other.words();
    for (std::size_t i = 0; i < nwords_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

 private:
  std::uint64_t* words() { return heap_ != nullptr ? heap_ : inline_words_; }
  const std::uint64_t* words() const {
    return heap_ != nullptr ? heap_ : inline_words_;
  }

  void reset_checked(std::size_t bits);
  void copy_from(const BitVector& other);
  void steal_from(BitVector& other) noexcept;

  std::size_t bits_ = 0;
  std::size_t nwords_ = 0;
  std::uint64_t inline_words_[kInlineWords] = {0, 0};
  std::uint64_t* heap_ = nullptr;   ///< Owned; null while inline.
  std::size_t heap_words_ = 0;      ///< Heap capacity in words.
};

/// dst[0..size) ^= src[0..size). Dispatches to the widest XOR kernel the
/// CPU supports (fountain/gf2_kernels.h); all variants are bit-identical.
void xor_bytes_raw(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t size);

/// dst ^= src (symbol payload accumulation). Sizes must match. Accepts
/// any contiguous byte containers (std::vector, AlignedBytes, ...).
template <typename DstBytes, typename SrcBytes>
void xor_bytes(DstBytes& dst, const SrcBytes& src) {
  FMTCP_DCHECK(dst.size() == src.size());
  xor_bytes_raw(dst.data(), src.data(), dst.size());
}

/// dst[0..size) = a[0..size) ^ b[0..size) in a single fused pass (no
/// pre-copy). dst must not overlap a or b.
void xor_into(std::uint8_t* dst, const std::uint8_t* a,
              const std::uint8_t* b, std::size_t size);

/// dst ^= srcs[0] ^ ... ^ srcs[n-1], folding up to four sources per pass
/// over dst so the destination is loaded/stored once per batch instead of
/// once per source.
void xor_accumulate(std::uint8_t* dst, const std::uint8_t* const* srcs,
                    std::size_t n, std::size_t size);

/// Batch width callers should gather source pointers in before flushing
/// through xor_accumulate (multiple of the kernel's four-way fold).
inline constexpr std::size_t kXorBatch = 8;

}  // namespace fmtcp::fountain
