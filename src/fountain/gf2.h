// Dense GF(2) vectors: the coefficient algebra of the random linear
// fountain code (paper Eq. 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fmtcp::fountain {

/// Fixed-length bit vector over GF(2), packed into 64-bit words.
class BitVector {
 public:
  /// All-zero vector of `bits` bits.
  explicit BitVector(std::size_t bits);

  /// Uniformly random vector (each bit i.i.d. fair). May be all-zero;
  /// callers that need a usable coefficient vector should re-draw.
  static BitVector random(std::size_t bits, Rng& rng);

  std::size_t size() const { return bits_; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);

  /// this ^= other (sizes must match).
  void xor_with(const BitVector& other);

  /// True if any bit is set.
  bool any() const;

  /// Index of the lowest set bit, or size() if none.
  std::size_t lowest_set_bit() const;

  /// Number of set bits.
  std::size_t popcount() const;

  bool operator==(const BitVector& other) const;

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::size_t bits_;
  std::vector<std::uint64_t> words_;
};

/// dst ^= src (symbol payload accumulation). Sizes must match.
void xor_bytes(std::vector<std::uint8_t>& dst,
               const std::vector<std::uint8_t>& src);

/// dst[0..size) ^= src[0..size), word-at-a-time.
void xor_bytes_raw(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t size);

}  // namespace fmtcp::fountain
