// GF(256) random linear codec (CTCP-style ablation; PAPERS.md, Kim et
// al.). The byte-coefficient sibling of random_linear.h + decoder.h:
// each encoded symbol is c_n = sum_k rho_k · g_nk with g_nk drawn
// uniformly from GF(256), carried on the wire as the same 64-bit seed the
// GF(2) codec uses (both ends expand it into k coefficient bytes).
//
// Dense byte coefficients make a redundant reception ~128× less likely
// per extra symbol than GF(2) (failure shrinks 256× per symbol instead
// of 2×), at the price of multiply kernels instead of pure XOR in
// elimination and composition — the overhead/decode-cost tradeoff the
// bench_ablation_gf256 harness measures.
//
// The decoder mirrors BlockDecoder's two-phase lazy structure: the
// online phase eliminates coefficient bytes only, recording per pivot
// row a GF(256) composition vector over the raw stored payloads; payload
// multiplies are deferred to decode(), where back-substitution runs on
// the fused (coefficients | composition) records and each source symbol
// is materialised as one fused multiply-accumulate pass over the stored
// payloads. Rank-only mode touches zero payload bytes by construction.
//
// Elimination uses partial pivoting in the GF sense: the first nonzero
// coefficient of a reduced row picks its pivot column, and the row is
// normalised (pivot coefficient 1) on storage, so eliminating against a
// pivot is a single fused mul_region over the record suffix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/aligned.h"
#include "common/buffer_pool.h"
#include "common/rng.h"
#include "fountain/block.h"
#include "net/packet.h"

namespace fmtcp::fountain {

/// Expands a coefficient seed into the k coefficient bytes both ends
/// agree on. All-zero draws are re-rolled deterministically, so the
/// result always has at least one nonzero byte.
void gf256_coefficients_from_seed_into(std::uint64_t seed, std::uint32_t k,
                                       std::vector<std::uint8_t>& out);

/// out = sum_i coeffs[i] · block.symbol(i) (resized and zeroed first, so
/// a recycled buffer's capacity is reused). `coeffs` has block.symbols()
/// bytes.
void gf256_encode_with_coefficients_into(const BlockData& block,
                                         const std::uint8_t* coeffs,
                                         AlignedBytes& out);

/// Stateful per-block GF(256) encoder, API-compatible with
/// RandomLinearEncoder (payload / rank-only modes, optional systematic
/// prefix, optional buffer pool) so the sender can hold either behind
/// one interface (fountain/codec.h).
class Gf256RlcEncoder {
 public:
  /// Payload mode: encodes real bytes from `block` (copied).
  Gf256RlcEncoder(std::uint64_t block_id, BlockData block, Rng rng,
                  bool systematic = false);

  /// Rank-only mode: symbols have empty `data`.
  Gf256RlcEncoder(std::uint64_t block_id, std::uint32_t symbols,
                  std::size_t symbol_bytes, Rng rng, bool systematic = false);

  /// Generates the next encoded symbol (source symbol while the
  /// systematic prefix lasts, then fresh random byte coefficients).
  net::EncodedSymbol next_symbol();

  /// Optional buffer pool: when set, payload buffers for emitted symbols
  /// are acquired from it instead of freshly allocated. The pool must
  /// outlive the encoder. Does not affect the symbol stream.
  void set_buffer_pool(BufferPool* pool) { pool_ = pool; }

  bool systematic() const { return systematic_; }
  std::uint64_t block_id() const { return block_id_; }
  std::uint32_t symbols() const { return symbols_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }
  std::uint64_t generated_count() const { return generated_; }

 private:
  std::uint64_t block_id_;
  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  std::optional<BlockData> data_;  ///< Absent in rank-only mode.
  BufferPool* pool_ = nullptr;
  Rng rng_;
  bool systematic_ = false;
  std::uint64_t generated_ = 0;
  std::vector<std::uint8_t> coeff_scratch_;  ///< Reused per symbol.
};

/// Incremental GF(256) Gaussian-elimination decoder with lazy payloads.
/// API-compatible subset of BlockDecoder (fountain/codec.h wraps both).
class Gf256RlcDecoder {
 public:
  /// `track_data` false = rank-only mode (no payload bytes stored).
  /// `pool`, when set, receives the payload buffers of dropped redundant
  /// symbols and of stored symbols once the block has been decoded.
  Gf256RlcDecoder(std::uint32_t symbols, std::size_t symbol_bytes,
                  bool track_data, BufferPool* pool = nullptr);

  /// Inserts a symbol given its k expanded coefficient bytes and
  /// payload. Returns true if the symbol was innovative (rank grew).
  /// Takes ownership of `data` without copying.
  bool add_symbol(const std::uint8_t* coeffs, AlignedBytes&& data);

  /// Inserts a wire symbol, taking ownership of its payload bytes
  /// (coefficients regenerated from its seed, or a unit vector for
  /// systematic symbols).
  bool add_symbol(net::EncodedSymbol&& symbol);

  /// Copying convenience overload (tests and observers). The payload is
  /// only copied in track_data mode.
  bool add_symbol(const net::EncodedSymbol& symbol);

  /// Current number of linearly independent symbols, k̄_b.
  std::uint32_t rank() const { return rank_; }

  /// True when rank == k̂ (block decodable).
  bool complete() const { return rank_ == symbols_; }

  std::uint32_t symbols() const { return symbols_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }

  /// Total symbols fed in, including redundant ones.
  std::uint64_t received_count() const { return received_; }

  /// Symbols dropped as linearly dependent.
  std::uint64_t redundant_count() const { return redundant_; }

  /// Receive-buffer bytes this block currently pins (stored symbol rows;
  /// rank-only mode counts the bytes the rows would occupy).
  std::size_t buffered_bytes() const;

  /// Recovers the original block. Requires complete() and track_data.
  /// Idempotent; the first call performs back-substitution and the
  /// deferred payload multiplies.
  const BlockData& decode();

  // --- Cost introspection ---
  /// Payload bytes run through the multiply kernels (decode() only; the
  /// online phase is coefficient-only, so this stays 0 until decode and
  /// stays 0 forever in rank-only mode).
  std::uint64_t payload_bytes_multiplied() const {
    return payload_bytes_multiplied_;
  }
  /// Coefficient/composition bytes run through fused elimination ops.
  std::uint64_t coeff_bytes_eliminated() const {
    return coeff_bytes_eliminated_;
  }
  /// Source rows materialised at decode().
  std::uint64_t rows_composed() const { return rows_composed_; }

 private:
  std::uint8_t* row(std::size_t p) { return rows_.data() + p * stride_; }
  const std::uint8_t* row(std::size_t p) const {
    return rows_.data() + p * stride_;
  }
  bool has_pivot(std::size_t p) const {
    return ((present_[p >> 6] >> (p & 63)) & 1ULL) != 0;
  }

  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  bool track_data_;
  BufferPool* pool_ = nullptr;
  std::uint32_t rank_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t redundant_ = 0;
  std::uint64_t payload_bytes_multiplied_ = 0;
  std::uint64_t coeff_bytes_eliminated_ = 0;
  std::uint64_t rows_composed_ = 0;
  std::size_t stride_;  ///< Record bytes: 2k̂ (track) or k̂ (rank-only).
  /// Flat fused row arena: record p = [coeffs | composition] at
  /// p·stride_. Pivot row p has coeffs[<p] zero and coeffs[p] == 1;
  /// absent rows zero.
  AlignedBytes rows_;
  std::vector<std::uint64_t> present_;  ///< Pivot-present bitmap.
  AlignedBytes scratch_record_;         ///< Incoming record being reduced.
  /// Raw payloads of stored (innovative) symbols, in arrival order; slot
  /// j is what composition byte j refers to. Empty in rank-only mode.
  std::vector<AlignedBytes> stored_;
  std::vector<std::uint8_t> scratch_coeffs_;  ///< Seed expansion reuse.
  std::optional<BlockData> decoded_;
};

}  // namespace fmtcp::fountain
