#include "fountain/gf2.h"

#include <bit>

#include "common/check.h"

namespace fmtcp::fountain {

BitVector::BitVector(std::size_t bits)
    : bits_(bits), words_((bits + 63) / 64, 0) {
  FMTCP_CHECK(bits > 0);
}

BitVector BitVector::random(std::size_t bits, Rng& rng) {
  BitVector v(bits);
  for (auto& word : v.words_) word = rng.next_u64();
  // Clear padding bits past `bits` so equality/popcount are exact.
  const std::size_t tail = bits % 64;
  if (tail != 0) v.words_.back() &= (~0ULL >> (64 - tail));
  return v;
}

bool BitVector::get(std::size_t i) const {
  FMTCP_DCHECK(i < bits_);
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void BitVector::set(std::size_t i, bool value) {
  FMTCP_DCHECK(i < bits_);
  const std::uint64_t mask = 1ULL << (i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

void BitVector::xor_with(const BitVector& other) {
  FMTCP_CHECK(bits_ == other.bits_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] ^= other.words_[w];
  }
}

bool BitVector::any() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t BitVector::lowest_set_bit() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * 64 +
             static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return bits_;
}

std::size_t BitVector::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

bool BitVector::operator==(const BitVector& other) const {
  return bits_ == other.bits_ && words_ == other.words_;
}

void xor_bytes(std::vector<std::uint8_t>& dst,
               const std::vector<std::uint8_t>& src) {
  FMTCP_CHECK(dst.size() == src.size());
  xor_bytes_raw(dst.data(), src.data(), dst.size());
}

void xor_bytes_raw(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t size) {
  // Word-at-a-time XOR: symbol payloads are hundreds of bytes and this
  // loop dominates payload-mode simulation time.
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t d;
    std::uint64_t s;
    __builtin_memcpy(&d, dst + i, 8);
    __builtin_memcpy(&s, src + i, 8);
    d ^= s;
    __builtin_memcpy(dst + i, &d, 8);
  }
  for (; i < size; ++i) dst[i] ^= src[i];
}

}  // namespace fmtcp::fountain
