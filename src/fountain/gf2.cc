#include "fountain/gf2.h"

#include <algorithm>

#include "common/check.h"

namespace fmtcp::fountain {

void BitVector::reset_checked(std::size_t bits) {
  FMTCP_CHECK(bits > 0);
  const std::size_t nwords = (bits + 63) / 64;
  if (nwords > kInlineWords && nwords > heap_words_) {
    delete[] heap_;
    heap_ = new std::uint64_t[nwords];
    heap_words_ = nwords;
  }
  bits_ = bits;
  nwords_ = nwords;
  std::fill_n(words(), nwords_, 0ULL);
}

void BitVector::copy_from(const BitVector& other) {
  if (other.nwords_ > kInlineWords && other.nwords_ > heap_words_) {
    delete[] heap_;
    heap_ = new std::uint64_t[other.nwords_];
    heap_words_ = other.nwords_;
  }
  bits_ = other.bits_;
  nwords_ = other.nwords_;
  std::copy_n(other.words(), nwords_, words());
}

void BitVector::steal_from(BitVector& other) noexcept {
  bits_ = other.bits_;
  nwords_ = other.nwords_;
  heap_ = other.heap_;
  heap_words_ = other.heap_words_;
  if (heap_ == nullptr) {
    inline_words_[0] = other.inline_words_[0];
    inline_words_[1] = other.inline_words_[1];
  }
  other.bits_ = 0;
  other.nwords_ = 0;
  other.heap_ = nullptr;
  other.heap_words_ = 0;
}

BitVector BitVector::random(std::size_t bits, Rng& rng) {
  BitVector v;
  random_into(bits, rng, v);
  return v;
}

void BitVector::random_into(std::size_t bits, Rng& rng, BitVector& out) {
  out.reset_checked(bits);
  std::uint64_t* w = out.words();
  for (std::size_t i = 0; i < out.nwords_; ++i) w[i] = rng.next_u64();
  // Clear padding bits past `bits` so equality/popcount are exact.
  const std::size_t tail = bits % 64;
  if (tail != 0) w[out.nwords_ - 1] &= (~0ULL >> (64 - tail));
}

void xor_bytes(std::vector<std::uint8_t>& dst,
               const std::vector<std::uint8_t>& src) {
  FMTCP_DCHECK(dst.size() == src.size());
  xor_bytes_raw(dst.data(), src.data(), dst.size());
}

namespace {

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  __builtin_memcpy(&v, p, 8);
  return v;
}

inline void store_u64(std::uint8_t* p, std::uint64_t v) {
  __builtin_memcpy(p, &v, 8);
}

/// dst ^= a ^ b ^ c ^ d, one pass.
void xor4_raw(std::uint8_t* __restrict dst, const std::uint8_t* __restrict a,
              const std::uint8_t* __restrict b,
              const std::uint8_t* __restrict c,
              const std::uint8_t* __restrict d, std::size_t size) {
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    store_u64(dst + i, load_u64(dst + i) ^ load_u64(a + i) ^ load_u64(b + i) ^
                           load_u64(c + i) ^ load_u64(d + i));
  }
  for (; i < size; ++i) dst[i] ^= a[i] ^ b[i] ^ c[i] ^ d[i];
}

/// dst ^= a ^ b, one pass.
void xor2_raw(std::uint8_t* __restrict dst, const std::uint8_t* __restrict a,
              const std::uint8_t* __restrict b, std::size_t size) {
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    store_u64(dst + i,
              load_u64(dst + i) ^ load_u64(a + i) ^ load_u64(b + i));
  }
  for (; i < size; ++i) dst[i] ^= a[i] ^ b[i];
}

}  // namespace

void xor_bytes_raw(std::uint8_t* __restrict dst,
                   const std::uint8_t* __restrict src, std::size_t size) {
  // Payloads are hundreds of bytes; unroll 4 x 64-bit so the compiler can
  // keep the pipeline full (and vectorize where profitable).
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    store_u64(dst + i, load_u64(dst + i) ^ load_u64(src + i));
    store_u64(dst + i + 8, load_u64(dst + i + 8) ^ load_u64(src + i + 8));
    store_u64(dst + i + 16, load_u64(dst + i + 16) ^ load_u64(src + i + 16));
    store_u64(dst + i + 24, load_u64(dst + i + 24) ^ load_u64(src + i + 24));
  }
  for (; i + 8 <= size; i += 8) {
    store_u64(dst + i, load_u64(dst + i) ^ load_u64(src + i));
  }
  for (; i < size; ++i) dst[i] ^= src[i];
}

void xor_into(std::uint8_t* __restrict dst, const std::uint8_t* __restrict a,
              const std::uint8_t* __restrict b, std::size_t size) {
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    store_u64(dst + i, load_u64(a + i) ^ load_u64(b + i));
    store_u64(dst + i + 8, load_u64(a + i + 8) ^ load_u64(b + i + 8));
    store_u64(dst + i + 16, load_u64(a + i + 16) ^ load_u64(b + i + 16));
    store_u64(dst + i + 24, load_u64(a + i + 24) ^ load_u64(b + i + 24));
  }
  for (; i + 8 <= size; i += 8) {
    store_u64(dst + i, load_u64(a + i) ^ load_u64(b + i));
  }
  for (; i < size; ++i) dst[i] = a[i] ^ b[i];
}

void xor_accumulate(std::uint8_t* dst, const std::uint8_t* const* srcs,
                    std::size_t n, std::size_t size) {
  std::size_t s = 0;
  for (; s + 4 <= n; s += 4) {
    xor4_raw(dst, srcs[s], srcs[s + 1], srcs[s + 2], srcs[s + 3], size);
  }
  if (s + 2 <= n) {
    xor2_raw(dst, srcs[s], srcs[s + 1], size);
    s += 2;
  }
  if (s < n) xor_bytes_raw(dst, srcs[s], size);
}

}  // namespace fmtcp::fountain
