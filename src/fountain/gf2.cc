#include "fountain/gf2.h"

#include <algorithm>

#include "common/check.h"
#include "fountain/gf2_kernels.h"

namespace fmtcp::fountain {

void BitVector::reset_checked(std::size_t bits) {
  FMTCP_CHECK(bits > 0);
  const std::size_t nwords = (bits + 63) / 64;
  if (nwords > kInlineWords && nwords > heap_words_) {
    delete[] heap_;
    heap_ = new std::uint64_t[nwords];
    heap_words_ = nwords;
  }
  bits_ = bits;
  nwords_ = nwords;
  std::fill_n(words(), nwords_, 0ULL);
}

void BitVector::copy_from(const BitVector& other) {
  if (other.nwords_ > kInlineWords && other.nwords_ > heap_words_) {
    delete[] heap_;
    heap_ = new std::uint64_t[other.nwords_];
    heap_words_ = other.nwords_;
  }
  bits_ = other.bits_;
  nwords_ = other.nwords_;
  std::copy_n(other.words(), nwords_, words());
}

void BitVector::steal_from(BitVector& other) noexcept {
  bits_ = other.bits_;
  nwords_ = other.nwords_;
  heap_ = other.heap_;
  heap_words_ = other.heap_words_;
  if (heap_ == nullptr) {
    inline_words_[0] = other.inline_words_[0];
    inline_words_[1] = other.inline_words_[1];
  }
  other.bits_ = 0;
  other.nwords_ = 0;
  other.heap_ = nullptr;
  other.heap_words_ = 0;
}

BitVector BitVector::random(std::size_t bits, Rng& rng) {
  BitVector v;
  random_into(bits, rng, v);
  return v;
}

void BitVector::random_into(std::size_t bits, Rng& rng, BitVector& out) {
  out.reset_checked(bits);
  std::uint64_t* w = out.words();
  for (std::size_t i = 0; i < out.nwords_; ++i) w[i] = rng.next_u64();
  // Clear padding bits past `bits` so equality/popcount are exact.
  const std::size_t tail = bits % 64;
  if (tail != 0) w[out.nwords_ - 1] &= (~0ULL >> (64 - tail));
}

// The byte-XOR kernels behind these entry points live in
// fountain/gf2_kernels.cc (scalar + SIMD stamps, runtime-dispatched).
// These forwards pay one atomic load + indirect call; loops that XOR
// many times should hoist `const Gf2KernelOps& ops = gf2_kernel();`.

void xor_bytes_raw(std::uint8_t* dst, const std::uint8_t* src,
                   std::size_t size) {
  gf2_kernel().xor_bytes_raw(dst, src, size);
}

void xor_into(std::uint8_t* dst, const std::uint8_t* a,
              const std::uint8_t* b, std::size_t size) {
  gf2_kernel().xor_into(dst, a, b, size);
}

void xor_accumulate(std::uint8_t* dst, const std::uint8_t* const* srcs,
                    std::size_t n, std::size_t size) {
  gf2_kernel().xor_accumulate(dst, srcs, n, size);
}

}  // namespace fmtcp::fountain
