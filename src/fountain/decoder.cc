#include "fountain/decoder.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "fountain/gf2_kernels.h"
#include "fountain/random_linear.h"
#include "obs/trace/span.h"

namespace fmtcp::fountain {

namespace {

/// Rows with more than this many coefficient bits are "dense" for
/// inactivation classification. Deterministic in the symbol stream only.
std::size_t inactivation_weight_threshold(std::uint32_t k) {
  return std::max<std::size_t>(12, k / 32);
}

/// M4R payload-table strip budget: tables stay around L2-sized so the
/// build/apply loop streams from cache.
constexpr std::size_t kStripTableBytes = 192 * 1024;

std::size_t round_up_64(std::size_t n) { return (n + 63) & ~std::size_t{63}; }

/// Inline word XORs for the symbolic (coefficient/composition) side.
/// Operands here are W = ceil(k̂/64) words — 16..64 bytes — where an
/// indirect call into the dispatched kernel costs more than the XOR
/// itself; the dispatched kernels are reserved for payload-sized passes.
inline void xw(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

inline void xw3(std::uint64_t* dst, const std::uint64_t* a,
                const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] ^ b[i];
}

}  // namespace

BlockDecoder::BlockDecoder(std::uint32_t symbols, std::size_t symbol_bytes,
                           bool track_data, BufferPool* pool,
                           CodingMetrics* metrics)
    : symbols_(symbols),
      symbol_bytes_(symbol_bytes),
      track_data_(track_data),
      pool_(pool),
      metrics_(metrics),
      coeff_words_((symbols + 63) / 64),
      stride_words_(track_data ? 2 * ((symbols + 63) / 64)
                               : (symbols + 63) / 64),
      rows_(static_cast<std::size_t>(symbols) * stride_words_, 0),
      present_((symbols + 63) / 64, 0),
      scratch_row_(stride_words_, 0) {
  FMTCP_CHECK(symbols > 0);
  FMTCP_CHECK(symbol_bytes > 0);
  if (track_data_) stored_.reserve(symbols);
}

bool BlockDecoder::add_symbol(const BitVector& coeffs,
                              const AlignedBytes& data) {
  AlignedBytes copy;
  if (track_data_) {
    // Copy through the pool when one is attached: steady-state feeding
    // then recycles the buffers decode() releases instead of paying a
    // fresh allocation per symbol.
    if (pool_ != nullptr) {
      copy = pool_->acquire(data.size());
      std::memcpy(copy.data(), data.data(), data.size());
    } else {
      copy = data;
    }
  }
  return add_symbol(coeffs, std::move(copy));
}

bool BlockDecoder::add_symbol(const BitVector& coeffs, AlignedBytes&& data) {
  FMTCP_CHECK(coeffs.size() == symbols_);
  FMTCP_COUNT("codec.add_symbol", 1);
  ++received_;
  if (complete()) {
    ++redundant_;
    if (pool_ != nullptr) pool_->release(std::move(data));
    return false;
  }

  // Assemble the incoming fused record in scratch (no allocation): the
  // expanded coefficients, then — in track mode — a composition half
  // that starts as the singleton {rank_}, the stored_ slot this payload
  // will occupy if it proves innovative.
  std::memcpy(scratch_row_.data(), coeffs.word_data(),
              coeff_words_ * sizeof(std::uint64_t));
  if (track_data_) {
    FMTCP_CHECK(data.size() == symbol_bytes_);
    std::fill_n(scratch_row_.data() + coeff_words_, coeff_words_, 0ULL);
    scratch_row_[coeff_words_ + (rank_ >> 6)] = 1ULL << (rank_ & 63);
  }

  // Reduce against existing pivot rows until the leading bit is free —
  // coefficients and composition only; payload bytes are untouched.
  std::uint64_t words = 0;
  std::size_t pivot;
  if (symbols_ <= 64) {
    // One-word fast path: both halves live in registers across the whole
    // reduction, instead of being reloaded every iteration (the compiler
    // cannot prove the scratch record and the arena don't alias). The
    // scan walks set bits of cw & present directly, so every iteration
    // eliminates and the loop branch stays predictable.
    std::uint64_t cw = scratch_row_[0];
    std::uint64_t pv = track_data_ ? scratch_row_[1] : 0;
    std::uint64_t m = cw & present_[0];
    while (m != 0) {
      const auto p = static_cast<std::size_t>(std::countr_zero(m));
      const std::uint64_t* prow = row(p);
      cw ^= prow[0];
      ++words;
      if (track_data_) {
        pv ^= prow[1];
        ++words;
      }
      m = cw & present_[0];
    }
    pivot = cw != 0 ? static_cast<std::size_t>(std::countr_zero(cw))
                    : symbols_;
    scratch_row_[0] = cw;
    if (track_data_) scratch_row_[1] = pv;
  } else if (!track_data_) {
    // Rank-only: the record is the coefficient half alone; the fused
    // kernel reduce_row runs the whole eliminate-and-rescan loop in one
    // dispatched call.
    std::size_t steps = 0;
    pivot = gf2_kernel().reduce_row(scratch_row_.data(), rows_.data(),
                                    present_.data(), symbols_, coeff_words_,
                                    stride_words_, &steps);
    words = steps * stride_words_;
  } else {
    pivot = reduce_track(words);
  }
  coeff_word_xors_ += words;
  if (metrics_ != nullptr) metrics_->coeff_word_xors.inc(words);

  if (pivot >= symbols_) {
    ++redundant_;  // Linearly dependent; dropped (paper §III-B).
    if (pool_ != nullptr) pool_->release(std::move(data));
    return false;
  }

  if (track_data_) {
    stored_.push_back(std::move(data));
  } else if (pool_ != nullptr) {
    pool_->release(std::move(data));
  }
  std::memcpy(row(pivot), scratch_row_.data(),
              stride_words_ * sizeof(std::uint64_t));
  present_[pivot >> 6] |= 1ULL << (pivot & 63);
  ++rank_;
  return true;
}

void BlockDecoder::expand_coefficients(const net::EncodedSymbol& symbol) {
  if (symbol.is_systematic()) {
    FMTCP_CHECK(symbol.systematic_index < symbols_);
    scratch_coeffs_.reset(symbols_);
    scratch_coeffs_.set(symbol.systematic_index, true);
  } else {
    coefficients_from_seed_into(symbol.coeff_seed, symbols_,
                                scratch_coeffs_);
  }
}

bool BlockDecoder::add_symbol(const net::EncodedSymbol& symbol) {
  FMTCP_CHECK(symbol.block_symbols == symbols_);
  expand_coefficients(symbol);
  AlignedBytes data;
  if (track_data_) {
    if (pool_ != nullptr) {
      data = pool_->acquire(symbol.data.size());
      std::memcpy(data.data(), symbol.data.data(), symbol.data.size());
    } else {
      data = symbol.data;
    }
  }
  return add_symbol(scratch_coeffs_, std::move(data));
}

bool BlockDecoder::add_symbol(net::EncodedSymbol&& symbol) {
  FMTCP_CHECK(symbol.block_symbols == symbols_);
  expand_coefficients(symbol);
  return add_symbol(scratch_coeffs_, std::move(symbol.data));
}

std::size_t BlockDecoder::buffered_bytes() const {
  if (complete() && decoded_.has_value()) return 0;
  return static_cast<std::size_t>(rank_) * symbol_bytes_;
}

const BlockData& BlockDecoder::decode() {
  DecodeScratch scratch;
  return decode(scratch);
}

const BlockData& BlockDecoder::decode(DecodeScratch& scratch) {
  FMTCP_CHECK(complete());
  FMTCP_CHECK(track_data_);
  if (decoded_.has_value()) return *decoded_;
  FMTCP_SPAN_ARG("codec.decode", symbols_);

  const std::size_t k = symbols_;
  std::uint64_t words = 0;
  std::uint64_t bytes = 0;
  BlockData out(symbols_, symbol_bytes_);

  // Strategy choice. Every strategy yields the same bytes — the decoded
  // block is the unique GF(2) solution of the received system — so this
  // is purely a cost decision, and it depends only on the symbol stream
  // (coefficient weights), never on the machine or kernel.
  bool use_inactivation = false;
  if (strategy_ != DecodeStrategy::kPlainElimination &&
      (strategy_ == DecodeStrategy::kInactivation || k > 64)) {
    const std::size_t threshold = inactivation_weight_threshold(symbols_);
    scratch.dense_.assign(k, 0);
    scratch.core_index_.assign(k, UINT32_MAX);
    scratch.core_pivots_.clear();
    for (std::size_t q = 0; q < k; ++q) {
      const std::uint64_t* cw = row(q);
      std::size_t weight = 0;
      for (std::size_t w = 0; w < coeff_words_; ++w) {
        weight += static_cast<std::size_t>(std::popcount(cw[w]));
      }
      if (weight > threshold) {
        scratch.dense_[q] = 1;
        scratch.core_index_[q] =
            static_cast<std::uint32_t>(scratch.core_pivots_.size());
        scratch.core_pivots_.push_back(static_cast<std::uint32_t>(q));
      }
    }
    // Worth inactivating only while the dense core stays small; an
    // all-dense random-coded stream gains nothing structural (the
    // blocked solve + SIMD carry that case).
    use_inactivation = strategy_ == DecodeStrategy::kInactivation ||
                       4 * scratch.core_pivots_.size() <= k;
  }

  if (use_inactivation) {
    bytes = decode_inactivation(out, scratch, words);
  } else {
    if (symbols_ <= 64) {
      // One-word fast path (registers; see add_symbol). When row q is
      // processed every row p > q is already the singleton {p}, so
      // eliminating bit p XORs row p's composition only.
      for (std::size_t q = symbols_; q-- > 0;) {
        FMTCP_DCHECK(has_pivot(q));
        std::uint64_t* r = row(q);
        std::uint64_t rest = r[0] ^ (1ULL << q);
        if (rest == 0) continue;
        std::uint64_t pv = r[1];
        while (rest != 0) {
          const auto p = static_cast<std::size_t>(std::countr_zero(rest));
          rest &= rest - 1;
          pv ^= row(p)[1];
          ++words;
        }
        r[1] = pv;
        r[0] = 1ULL << q;
      }
    } else {
      words += solve_symbolic_blocked(scratch);
    }
    scratch.comp_ptrs_.resize(k);
    scratch.dst_ptrs_.resize(k);
    for (std::size_t q = 0; q < k; ++q) {
      scratch.comp_ptrs_[q] = row_comp(q);
      scratch.dst_ptrs_[q] = out.symbol(static_cast<std::uint32_t>(q));
    }
    bytes = compose_rows(scratch.comp_ptrs_.data(), scratch.dst_ptrs_.data(),
                         k, scratch);
  }

  coeff_word_xors_ += words;
  rows_composed_ += symbols_;
  payload_bytes_xored_ += bytes;
  if (metrics_ != nullptr) {
    metrics_->coeff_word_xors.inc(words);
    metrics_->payload_bytes_xored.inc(bytes);
    metrics_->rows_composed.inc(symbols_);
  }

  for (auto& buf : stored_) {
    if (pool_ != nullptr) pool_->release(std::move(buf));
  }
  stored_.clear();
  decoded_ = std::move(out);
  return *decoded_;
}

std::size_t BlockDecoder::reduce_track(std::uint64_t& words) {
  // Narrow records (k̂ ≤ 256) reduce fastest fully register-resident;
  // wider ones leave the off-chain half to the dispatched kernel's
  // fused reduce, whose vector width covers the record in a few ops.
  switch (coeff_words_) {
    case 2: return reduce_track_impl<2>(words);
    case 3: return reduce_track_impl<3>(words);
    case 4: return reduce_track_impl<0>(words);
    default: return reduce_track_impl<0>(words);
  }
}

template <std::size_t WC>
std::size_t BlockDecoder::reduce_track_impl(std::uint64_t& words) {
  if constexpr (WC == 0) {
    // Uncommon width: the dispatched kernel's fused reduce runs the
    // whole eliminate-and-rescan loop in one call.
    std::size_t steps = 0;
    const std::size_t pivot = gf2_kernel().reduce_row(
        scratch_row_.data(), rows_.data(), present_.data(), symbols_,
        coeff_words_, stride_words_, &steps);
    words += steps * stride_words_;
    return pivot;
  } else {
    // The whole fused record lives in a constant-size local array the
    // compiler keeps in registers, so the serial chain per step is just
    // load-XOR-ctz: no store-to-load round trip through the scratch
    // row. The scan iterates set bits of rec & present directly — every
    // loop iteration is a real elimination, so the loop branch is
    // predictable (free set bits never enter the mask). Eliminating at
    // pivot p only touches bits ≥ p, so the recomputed mask advances
    // monotonically and the row ends fully reduced against all pivots;
    // its lowest surviving bit is the new (free) pivot position.
    // Track-mode records have compile-time stride 2·WC, so the row
    // address is a shift, not an imul, on the serial address chain; the
    // unrolled word loop makes every rec index a constant, letting the
    // scan word live in a register across the whole inner loop.
    constexpr std::size_t kStride = 2 * WC;
    const std::uint64_t* arena = rows_.data();
    const std::uint64_t* pres = present_.data();
    std::uint64_t rec[2 * WC];
    std::memcpy(rec, scratch_row_.data(), sizeof(rec));
    std::size_t steps = 0;
#pragma GCC unroll 8
    for (std::size_t w = 0; w < WC; ++w) {
      std::uint64_t cur = rec[w];
      const std::uint64_t pw = pres[w];
      std::uint64_t m = cur & pw;
      while (m != 0) {
        const std::size_t p =
            w * 64 + static_cast<std::size_t>(std::countr_zero(m));
        const std::uint64_t* pr = arena + p * kStride;
        ++steps;
        cur ^= pr[w];
        for (std::size_t i = w + 1; i < 2 * WC; ++i) rec[i] ^= pr[i];
        m = cur & pw;
      }
      rec[w] = cur;
    }
    std::size_t pivot = symbols_;
    for (std::size_t w = 0; w < WC; ++w) {
      if (rec[w] != 0) {
        pivot = w * 64 + static_cast<std::size_t>(std::countr_zero(rec[w]));
        break;
      }
    }
    std::memcpy(scratch_row_.data(), rec, sizeof(rec));
    words += steps * stride_words_;
    return pivot;
  }
}

std::uint64_t BlockDecoder::solve_symbolic_blocked(DecodeScratch& scratch) {
  switch (coeff_words_) {
    case 2: return solve_symbolic_blocked_impl<2>(scratch);
    case 3: return solve_symbolic_blocked_impl<3>(scratch);
    case 4: return solve_symbolic_blocked_impl<4>(scratch);
    case 6: return solve_symbolic_blocked_impl<6>(scratch);
    case 8: return solve_symbolic_blocked_impl<8>(scratch);
    default: return solve_symbolic_blocked_impl<0>(scratch);
  }
}

template <std::size_t WC>
std::uint64_t BlockDecoder::solve_symbolic_blocked_impl(
    DecodeScratch& scratch) {
  // Symbolic back-substitution, 8 pivot columns at a time (method of
  // four Russians on the composition rows). Blocks are processed from
  // the top down; when block B = [b0, b0+m) is reached, every row in B
  // already had its higher-block coefficient bits folded in by earlier
  // apply passes, so after the in-block descending substitution the
  // compositions of B's rows are final. One 2^m-entry subset-XOR table
  // over those m compositions then folds B's contribution into every
  // lower row with a single fused XOR per row — instead of one XOR per
  // set bit. Each coefficient byte is consumed exactly once, so rows
  // never need their coefficients cleared.
  const std::size_t k = symbols_;
  const std::size_t W = WC != 0 ? WC : coeff_words_;
  std::uint64_t words = 0;
  scratch.solve_tables_.resize(512 * W);
  std::uint64_t* tbl_lo = scratch.solve_tables_.data();
  std::uint64_t* tbl_hi = tbl_lo + 256 * W;

  // In-block back-substitution, descending. Row q's bits below q are
  // zero (pivot invariant) and bits in higher blocks were consumed by
  // earlier applies, so only bits (q, b0+m) matter.
  const auto subst = [&](std::size_t b0, std::size_t m, std::size_t word,
                         unsigned shift, std::uint32_t mask) {
    for (std::size_t q = b0 + m; q-- > b0;) {
      FMTCP_DCHECK(has_pivot(q));
      std::uint32_t above = (static_cast<std::uint32_t>(row(q)[word] >> shift) &
                             mask) >>
                            (q - b0 + 1);
      while (above != 0) {
        const std::size_t j =
            (q - b0 + 1) + static_cast<std::size_t>(std::countr_zero(above));
        above &= above - 1;
        xw(row_comp(q), row_comp(b0 + j), W);
        words += W;
      }
    }
  };

  // Subset-XOR table over finalised compositions: entry v holds the
  // XOR of comp rows (base + set bits of v), built incrementally (one
  // fused pass each) from entry v with its lowest bit dropped.
  const auto build_subset = [&](std::uint64_t* t, std::size_t base,
                                std::uint32_t top) {
    for (std::uint32_t v = 1; v <= top; ++v) {
      std::uint64_t* dst = t + static_cast<std::size_t>(v) * W;
      const std::uint64_t* crow =
          row_comp(base + static_cast<std::size_t>(std::countr_zero(v)));
      const std::uint32_t parent = v & (v - 1);
      if (parent == 0) {
        std::memcpy(dst, crow, W * sizeof(std::uint64_t));
      } else {
        xw3(dst, t + static_cast<std::size_t>(parent) * W, crow, W);
        words += W;
      }
    }
  };

  // One block's fold structure. Table size is amortised over the rows
  // below, so the regime is picked by that count alone (a pure function
  // of k̂ — never of the machine): the full 2^m-entry table past ~112
  // rows, two 16-entry nibble tables past ~20, direct per-bit
  // application for short tails (lo == nullptr).
  struct Fold {
    const std::uint64_t* lo = nullptr;
    const std::uint64_t* hi = nullptr;
    std::size_t b0 = 0;
    std::size_t lom = 0;
    std::uint32_t lomask = 0;
  };
  const auto build_fold = [&](std::uint64_t* t, std::size_t b0, std::size_t m,
                              std::uint32_t mask,
                              std::size_t rows_below) -> Fold {
    Fold f;
    f.b0 = b0;
    if (rows_below < 20) return f;
    if (rows_below >= 112) {
      build_subset(t, b0, mask);
      f.lo = t;
      f.lom = m;
      f.lomask = mask;
      return f;
    }
    f.lom = m < 4 ? m : 4;
    f.lomask = static_cast<std::uint32_t>((1u << f.lom) - 1);
    build_subset(t, b0, f.lomask);
    f.lo = t;
    if (m > f.lom) {
      build_subset(t + 16 * W, b0 + f.lom, mask >> f.lom);
      f.hi = t + 16 * W;
    }
    return f;
  };
  const auto apply_fold = [&](const Fold& f, std::uint32_t v,
                              std::uint64_t* comp) {
    if (f.lo == nullptr) {
      while (v != 0) {
        const std::size_t j = static_cast<std::size_t>(std::countr_zero(v));
        v &= v - 1;
        xw(comp, row_comp(f.b0 + j), W);
        words += W;
      }
      return;
    }
    const std::uint32_t vlo = v & f.lomask;
    const std::uint32_t vhi = v >> f.lom;
    if (vlo != 0) {
      xw(comp, f.lo + static_cast<std::size_t>(vlo) * W, W);
      words += W;
    }
    if (vhi != 0) {
      xw(comp, f.hi + static_cast<std::size_t>(vhi) * W, W);
      words += W;
    }
  };

  // Blocks are consumed from the top down, two per sweep: the high
  // block is substituted and folded into the low block's eight rows,
  // the low block substituted, and then one pass over all remaining
  // rows folds BOTH blocks — each row's coefficient and composition
  // lines are touched once per pair instead of once per block, halving
  // the dominant sweep traffic. Each coefficient byte is consumed
  // exactly once, so rows never need their coefficients cleared.
  const std::size_t nblocks = (k + 7) / 8;
  std::size_t bi = nblocks;
  while (bi > 0) {
    const std::size_t h0 = (bi - 1) * 8;
    const std::size_t mh = std::min<std::size_t>(8, k - h0);
    const std::size_t hword = h0 >> 6;
    const auto hshift = static_cast<unsigned>(h0 & 63);
    const auto hmask = static_cast<std::uint32_t>((1u << mh) - 1);
    subst(h0, mh, hword, hshift, hmask);
    if (h0 == 0) break;

    const std::size_t l0 = h0 - 8;
    const Fold fh = build_fold(tbl_hi, h0, mh, hmask, h0);
    const std::size_t lword = l0 >> 6;
    const auto lshift = static_cast<unsigned>(l0 & 63);
    for (std::size_t q = l0; q < h0; ++q) {
      apply_fold(fh,
                 static_cast<std::uint32_t>(row(q)[hword] >> hshift) & hmask,
                 row_comp(q));
    }
    subst(l0, 8, lword, lshift, 0xffu);
    if (l0 == 0) break;

    const Fold fl = build_fold(tbl_lo, l0, 8, 0xffu, l0);
    for (std::size_t q = 0; q < l0; ++q) {
      const std::uint64_t* rq = row(q);
      std::uint64_t* cq = row_comp(q);
      apply_fold(fh, static_cast<std::uint32_t>(rq[hword] >> hshift) & hmask,
                 cq);
      apply_fold(fl, static_cast<std::uint32_t>(rq[lword] >> lshift) & 0xffu,
                 cq);
    }
    bi -= 2;
  }
  return words;
}

std::uint64_t BlockDecoder::decode_inactivation(BlockData& out,
                                                DecodeScratch& scratch,
                                                std::uint64_t& words) {
  // Inactivation decoding (RFC 6330 / Raptor style), symbolically. The
  // pivot system is unit-upper-triangular; rows classified dense are
  // "inactivated": their unknowns X form the core. Descending
  // substitution expresses every row as
  //     x_q = comp_q · stored  ^  icomp_q · X            (sparse q)
  //     X[core(q)] ^ icomp_q · X = comp_q · stored       (dense q)
  // touching W+dW words per set bit — cheap while rows are sparse. The
  // d×d core system is then solved densely (Gauss-Jordan on fused
  // [matrix | rhs] records), the d core payloads are materialised once,
  // and every output row is one sparse gather over stored payloads plus
  // core payloads. Dense elimination cost is confined to d ≤ k/4 rows.
  const Gf2KernelOps& ops = gf2_kernel();
  const std::size_t k = symbols_;
  const std::size_t W = coeff_words_;
  const std::size_t d = scratch.core_pivots_.size();
  const std::size_t dW = (d + 63) / 64;  // 0 when d == 0.
  std::uint64_t bytes = 0;

  // Phase A: descending symbolic substitution. Set bits of row q are all
  // > q; sparse ones are already final (processed later in the loop),
  // dense ones contribute a single core-column bit.
  if (d > 0) scratch.icomp_.assign(k * dW, 0);
  std::uint64_t* icomp = scratch.icomp_.data();
  for (std::size_t q = k; q-- > 0;) {
    FMTCP_DCHECK(has_pivot(q));
    const std::uint64_t* rq = row(q);
    std::uint64_t* cq = row_comp(q);
    std::uint64_t* iq = icomp + q * dW;
    for (std::size_t w = q >> 6; w < W; ++w) {
      std::uint64_t bits = rq[w];
      if (w == (q >> 6)) bits &= ~(1ULL << (q & 63));
      while (bits != 0) {
        const std::size_t p =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (scratch.dense_[p] != 0) {
          const std::uint32_t c = scratch.core_index_[p];
          iq[c >> 6] ^= 1ULL << (c & 63);
        } else {
          xw(cq, row_comp(p), W);
          words += W;
          if (dW > 0) {
            xw(iq, icomp + p * dW, dW);
            words += dW;
          }
        }
      }
    }
  }

  const std::size_t sbpad = round_up_64(symbol_bytes_);
  if (d > 0) {
    // Phase B: dense core solve. Record r = [m_r | rhs_r], where for core
    // row r (pivot q): m_r = e_r ^ icomp_q over core columns, rhs_r =
    // comp_q over stored slots. Gauss-Jordan to the identity leaves
    // record c's rhs as the stored-slot combination equal to X[c]. The
    // system is invertible because the full received system has rank k.
    const std::size_t cs = dW + W;
    scratch.core_.assign(d * cs, 0);
    std::uint64_t* core = scratch.core_.data();
    for (std::size_t r = 0; r < d; ++r) {
      const std::size_t q = scratch.core_pivots_[r];
      std::uint64_t* rec = core + r * cs;
      std::memcpy(rec, icomp + q * dW, dW * sizeof(std::uint64_t));
      rec[r >> 6] ^= 1ULL << (r & 63);
      std::memcpy(rec + dW, row_comp(q), W * sizeof(std::uint64_t));
    }
    for (std::size_t c = 0; c < d; ++c) {
      std::size_t rr = c;
      while (rr < d &&
             ((core[rr * cs + (c >> 6)] >> (c & 63)) & 1ULL) == 0) {
        ++rr;
      }
      FMTCP_CHECK(rr < d);
      if (rr != c) {
        std::swap_ranges(core + rr * cs, core + (rr + 1) * cs,
                         core + c * cs);
      }
      for (std::size_t r2 = 0; r2 < d; ++r2) {
        if (r2 == c) continue;
        if (((core[r2 * cs + (c >> 6)] >> (c & 63)) & 1ULL) == 0) continue;
        xw(core + r2 * cs, core + c * cs, cs);
        words += cs;
      }
    }

    // Phase C: materialise the d core payloads (cost-picked compose over
    // stored slots, like any other row set).
    scratch.core_payloads_.assign(d * sbpad, 0);
    scratch.comp_ptrs_.resize(d);
    scratch.dst_ptrs_.resize(d);
    for (std::size_t c = 0; c < d; ++c) {
      scratch.comp_ptrs_[c] = core + c * cs + dW;
      scratch.dst_ptrs_[c] = scratch.core_payloads_.data() + c * sbpad;
    }
    bytes += compose_rows(scratch.comp_ptrs_.data(), scratch.dst_ptrs_.data(),
                          d, scratch);
  }

  // Phase D: output rows. Dense rows are the core payloads verbatim;
  // sparse rows gather their stored slots plus referenced core payloads
  // (out starts zero-filled).
  if (d == 0) {
    scratch.comp_ptrs_.resize(k);
    scratch.dst_ptrs_.resize(k);
    for (std::size_t q = 0; q < k; ++q) {
      scratch.comp_ptrs_[q] = row_comp(q);
      scratch.dst_ptrs_[q] = out.symbol(static_cast<std::uint32_t>(q));
    }
    return bytes + compose_rows(scratch.comp_ptrs_.data(),
                                scratch.dst_ptrs_.data(), k, scratch);
  }
  const std::uint8_t* srcs[kXorBatch];
  for (std::size_t q = 0; q < k; ++q) {
    std::uint8_t* dst = out.symbol(static_cast<std::uint32_t>(q));
    if (scratch.dense_[q] != 0) {
      std::memcpy(dst,
                  scratch.core_payloads_.data() +
                      scratch.core_index_[q] * sbpad,
                  symbol_bytes_);
      continue;
    }
    std::size_t n = 0;
    const auto flush = [&](const std::uint8_t* src) {
      srcs[n++] = src;
      if (n == kXorBatch) {
        ops.xor_accumulate(dst, srcs, n, symbol_bytes_);
        bytes += n * symbol_bytes_;
        n = 0;
      }
    };
    const std::uint64_t* cq = row_comp(q);
    for (std::size_t w = 0; w < W; ++w) {
      std::uint64_t bits = cq[w];
      while (bits != 0) {
        const std::size_t j =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        flush(stored_[j].data());
      }
    }
    const std::uint64_t* iq = icomp + q * dW;
    for (std::size_t w = 0; w < dW; ++w) {
      std::uint64_t bits = iq[w];
      while (bits != 0) {
        const std::size_t c =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        flush(scratch.core_payloads_.data() + c * sbpad);
      }
    }
    if (n > 0) {
      ops.xor_accumulate(dst, srcs, n, symbol_bytes_);
      bytes += n * symbol_bytes_;
    }
  }
  return bytes;
}

std::uint64_t BlockDecoder::compose_rows(const std::uint64_t* const* comps,
                                         std::uint8_t* const* dsts,
                                         std::size_t nrows,
                                         DecodeScratch& scratch) {
  // Pick the cheaper application strategy by predicted output-sized
  // passes. Direct: one pass per set bit. M4R with g-bit groups: one
  // pass per table entry plus (at most) one per row per group; 4-bit
  // groups win at moderate k, 8-bit at large k where the per-row group
  // count halves.
  const std::size_t k = symbols_;
  std::size_t set_bits = 0;
  for (std::size_t i = 0; i < nrows; ++i) {
    for (std::size_t w = 0; w < coeff_words_; ++w) {
      set_bits += static_cast<std::size_t>(std::popcount(comps[i][w]));
    }
  }
  const std::size_t groups4 = (k + 3) / 4;
  const std::size_t groups8 = (k + 7) / 8;
  const std::size_t cost4 = groups4 * 15 + nrows * groups4;
  const std::size_t cost8 = groups8 * 255 + nrows * groups8;
  const std::size_t cost_m4r = std::min(cost4, cost8);
  if (set_bits <= cost_m4r) return compose_rows_direct(comps, dsts, nrows);
  return compose_rows_m4r(comps, dsts, nrows, cost4 <= cost8 ? 4 : 8,
                          scratch);
}

std::uint64_t BlockDecoder::compose_rows_direct(
    const std::uint64_t* const* comps, std::uint8_t* const* dsts,
    std::size_t nrows) {
  const Gf2KernelOps& ops = gf2_kernel();
  std::uint64_t bytes = 0;
  const std::uint8_t* srcs[kXorBatch];
  for (std::size_t i = 0; i < nrows; ++i) {
    std::uint8_t* dst = dsts[i];
    std::size_t n = 0;
    for (std::size_t w = 0; w < coeff_words_; ++w) {
      std::uint64_t bits = comps[i][w];
      while (bits != 0) {
        const std::size_t j =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        FMTCP_DCHECK(j < stored_.size());
        srcs[n++] = stored_[j].data();
        if (n == kXorBatch) {
          ops.xor_accumulate(dst, srcs, n, symbol_bytes_);
          bytes += n * symbol_bytes_;
          n = 0;
        }
      }
    }
    if (n > 0) {
      ops.xor_accumulate(dst, srcs, n, symbol_bytes_);
      bytes += n * symbol_bytes_;
    }
  }
  return bytes;
}

std::uint64_t BlockDecoder::compose_rows_m4r(
    const std::uint64_t* const* comps, std::uint8_t* const* dsts,
    std::size_t nrows, std::size_t group_bits, DecodeScratch& scratch) {
  // Method of four Russians over stored payloads, strip-processed: the
  // slot axis is cut into strips of a few groups whose subset-XOR tables
  // fit in cache; each strip builds its tables once, then folds into all
  // rows (accumulating into dst, so strips compose). Entry v of a group
  // holds the XOR of the group's stored payloads selected by v's bits —
  // built incrementally, one fused pass per entry. Table rows are padded
  // to 64-byte stride so every entry starts a fresh cache line.
  const Gf2KernelOps& ops = gf2_kernel();
  const std::size_t k = symbols_;
  const std::size_t g = group_bits;
  const std::size_t entries = (std::size_t{1} << g) - 1;
  const std::size_t sbpad = round_up_64(symbol_bytes_);
  const std::size_t per_group = entries * sbpad;
  const std::size_t strip = std::max<std::size_t>(
      1, kStripTableBytes / per_group);
  const std::size_t ngroups = (k + g - 1) / g;
  scratch.payload_tables_.resize(std::min(strip, ngroups) * per_group);
  std::uint8_t* tables = scratch.payload_tables_.data();
  std::uint64_t bytes = 0;
  const std::uint8_t* srcs[kXorBatch];

  for (std::size_t gs = 0; gs < ngroups; gs += strip) {
    const std::size_t ge = std::min(gs + strip, ngroups);
    for (std::size_t gi = gs; gi < ge; ++gi) {
      const std::size_t base = gi * g;
      const std::size_t m = std::min(g, k - base);
      std::uint8_t* tbl = tables + (gi - gs) * per_group;
      for (std::size_t v = 1; v < (std::size_t{1} << m); ++v) {
        std::uint8_t* dst = tbl + (v - 1) * sbpad;
        const std::size_t low = v & (~v + 1);
        const std::size_t rest = v ^ low;
        const std::uint8_t* a =
            stored_[base + static_cast<std::size_t>(
                               std::countr_zero(low))]
                .data();
        if (rest == 0) {
          std::memcpy(dst, a, symbol_bytes_);
        } else {
          ops.xor_into(dst, tbl + (rest - 1) * sbpad, a, symbol_bytes_);
          bytes += symbol_bytes_;
        }
      }
    }

    // Apply the strip: one table lookup per non-zero g-bit field of each
    // row's composition (fields never straddle words: g divides 64).
    for (std::size_t i = 0; i < nrows; ++i) {
      const std::uint64_t* cw = comps[i];
      std::uint8_t* dst = dsts[i];
      std::size_t n = 0;
      for (std::size_t gi = gs; gi < ge; ++gi) {
        const std::size_t field =
            g == 4 ? (static_cast<std::size_t>(cw[gi >> 4] >>
                                               ((gi & 15) * 4)) &
                      0xF)
                   : (static_cast<std::size_t>(cw[gi >> 3] >>
                                               ((gi & 7) * 8)) &
                      0xFF);
        if (field == 0) continue;
        srcs[n++] = tables + (gi - gs) * per_group + (field - 1) * sbpad;
        if (n == kXorBatch) {
          ops.xor_accumulate(dst, srcs, n, symbol_bytes_);
          bytes += n * symbol_bytes_;
          n = 0;
        }
      }
      if (n > 0) {
        ops.xor_accumulate(dst, srcs, n, symbol_bytes_);
        bytes += n * symbol_bytes_;
      }
    }
  }
  return bytes;
}

std::size_t decode_batch(BlockDecoder* const* decoders, std::size_t n,
                         DecodeScratch& scratch) {
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < n; ++i) {
    BlockDecoder* dec = decoders[i];
    if (dec == nullptr || !dec->complete()) continue;
    dec->decode(scratch);
    ++decoded;
  }
  return decoded;
}

}  // namespace fmtcp::fountain
