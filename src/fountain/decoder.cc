#include "fountain/decoder.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <utility>

#include "common/check.h"
#include "fountain/random_linear.h"
#include "obs/trace/span.h"

namespace fmtcp::fountain {

BlockDecoder::BlockDecoder(std::uint32_t symbols, std::size_t symbol_bytes,
                           bool track_data, BufferPool* pool,
                           CodingMetrics* metrics)
    : symbols_(symbols),
      symbol_bytes_(symbol_bytes),
      track_data_(track_data),
      pool_(pool),
      metrics_(metrics),
      pivot_rows_(symbols) {
  FMTCP_CHECK(symbols > 0);
  FMTCP_CHECK(symbol_bytes > 0);
  if (track_data_) stored_.reserve(symbols);
}

bool BlockDecoder::add_symbol(const BitVector& coeffs,
                              const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> copy;
  if (track_data_) copy = data;
  return add_symbol(coeffs, std::move(copy));
}

bool BlockDecoder::add_symbol(const BitVector& coeffs,
                              std::vector<std::uint8_t>&& data) {
  FMTCP_CHECK(coeffs.size() == symbols_);
  FMTCP_COUNT("codec.add_symbol", 1);
  ++received_;
  if (complete()) {
    ++redundant_;
    if (pool_ != nullptr) pool_->release(std::move(data));
    return false;
  }

  Row row{coeffs, BitVector{}};
  if (track_data_) {
    FMTCP_CHECK(data.size() == symbol_bytes_);
    // This symbol's payload would occupy the next stored_ slot; mark it
    // in the composition vector up front (slot == rank_ on success).
    row.comp.reset(symbols_);
    row.comp.set(rank_, true);
  } else if (pool_ != nullptr) {
    pool_->release(std::move(data));
  }

  // Reduce against existing pivot rows until the leading bit is free —
  // coefficients and composition only; payload bytes are untouched.
  std::uint64_t words = 0;
  std::size_t pivot;
  if (symbols_ <= 64) {
    // One-word fast path: both vectors live in registers across the whole
    // reduction, instead of being reloaded every iteration (the compiler
    // cannot prove row and pivot-row storage don't alias).
    std::uint64_t cw = row.coeffs.word_data()[0];
    std::uint64_t pv = track_data_ ? row.comp.word_data()[0] : 0;
    pivot = cw != 0 ? static_cast<std::size_t>(std::countr_zero(cw))
                    : symbols_;
    while (pivot < symbols_ && pivot_rows_[pivot].has_value()) {
      const Row& prow = *pivot_rows_[pivot];
      cw ^= prow.coeffs.word_data()[0];
      ++words;
      if (track_data_) {
        pv ^= prow.comp.word_data()[0];
        ++words;
      }
      pivot = cw != 0 ? static_cast<std::size_t>(std::countr_zero(cw))
                      : symbols_;
    }
    row.coeffs.word_data()[0] = cw;
    if (track_data_) row.comp.word_data()[0] = pv;
  } else {
    pivot = row.coeffs.lowest_set_bit();
    while (pivot < symbols_ && pivot_rows_[pivot].has_value()) {
      const Row& prow = *pivot_rows_[pivot];
      row.coeffs.xor_with(prow.coeffs);
      words += row.coeffs.word_count();
      if (track_data_) {
        row.comp.xor_with(prow.comp);
        words += row.comp.word_count();
      }
      pivot = row.coeffs.lowest_set_bit();
    }
  }
  coeff_word_xors_ += words;
  if (metrics_ != nullptr) metrics_->coeff_word_xors.inc(words);

  if (pivot >= symbols_) {
    ++redundant_;  // Linearly dependent; dropped (paper §III-B).
    if (pool_ != nullptr) pool_->release(std::move(data));
    return false;
  }

  if (track_data_) stored_.push_back(std::move(data));
  pivot_rows_[pivot] = std::move(row);
  ++rank_;
  return true;
}

void BlockDecoder::expand_coefficients(const net::EncodedSymbol& symbol) {
  if (symbol.is_systematic()) {
    FMTCP_CHECK(symbol.systematic_index < symbols_);
    scratch_coeffs_.reset(symbols_);
    scratch_coeffs_.set(symbol.systematic_index, true);
  } else {
    coefficients_from_seed_into(symbol.coeff_seed, symbols_,
                                scratch_coeffs_);
  }
}

bool BlockDecoder::add_symbol(const net::EncodedSymbol& symbol) {
  FMTCP_CHECK(symbol.block_symbols == symbols_);
  expand_coefficients(symbol);
  std::vector<std::uint8_t> data;
  if (track_data_) data = symbol.data;
  return add_symbol(scratch_coeffs_, std::move(data));
}

bool BlockDecoder::add_symbol(net::EncodedSymbol&& symbol) {
  FMTCP_CHECK(symbol.block_symbols == symbols_);
  expand_coefficients(symbol);
  return add_symbol(scratch_coeffs_, std::move(symbol.data));
}

std::size_t BlockDecoder::buffered_bytes() const {
  if (complete() && decoded_.has_value()) return 0;
  return static_cast<std::size_t>(rank_) * symbol_bytes_;
}

const BlockData& BlockDecoder::decode() {
  FMTCP_CHECK(complete());
  FMTCP_CHECK(track_data_);
  if (decoded_.has_value()) return *decoded_;
  FMTCP_SPAN_ARG("codec.decode", symbols_);

  // Back-substitute on (coefficients, composition) pairs — still pure
  // word ops, descending over pivots. When row q is processed every row
  // p > q is already the singleton {p}, so eliminating bit p only clears
  // that one coefficient bit (done in bulk by resetting the row to {q}
  // afterwards) and XORs row p's composition. Iterating the set bits
  // word-sparsely replaces the O(k̂²) scan-every-pair loop.
  std::uint64_t words = 0;
  if (symbols_ <= 64) {
    // One-word fast path (registers; see add_symbol).
    for (std::size_t q = symbols_; q-- > 0;) {
      FMTCP_CHECK(pivot_rows_[q].has_value());
      Row& row = *pivot_rows_[q];
      std::uint64_t rest = row.coeffs.word_data()[0] ^ (1ULL << q);
      if (rest == 0) continue;
      std::uint64_t pv = row.comp.word_data()[0];
      while (rest != 0) {
        const auto p = static_cast<std::size_t>(std::countr_zero(rest));
        rest &= rest - 1;
        pv ^= pivot_rows_[p]->comp.word_data()[0];
        ++words;
      }
      row.comp.word_data()[0] = pv;
      row.coeffs.word_data()[0] = 1ULL << q;
    }
  } else {
    for (std::size_t q = symbols_; q-- > 0;) {
      FMTCP_CHECK(pivot_rows_[q].has_value());
      Row& row = *pivot_rows_[q];
      bool reduced = false;
      row.coeffs.for_each_set_bit([&](std::size_t p) {
        if (p == q) return;
        row.comp.xor_with(pivot_rows_[p]->comp);
        words += row.comp.word_count();
        reduced = true;
      });
      if (reduced) {
        row.coeffs.reset(symbols_);
        row.coeffs.set(q, true);
      }
    }
  }
  coeff_word_xors_ += words;

  // Materialise each source symbol: one sparse combination of the raw
  // stored payloads, applied once, straight into the output block.
  //
  // Two application strategies, picked by composition density. Sparse
  // (systematic-heavy streams): XOR the selected raw payloads directly.
  // Dense (random-coded streams, inverse density ~1/2): method-of-four-
  // Russians — precompute all 15 subset XORs of each group of four
  // stored payloads once, then each output row needs at most one XOR
  // per *group* instead of one per set bit, cutting payload XORs from
  // ~k²/2 to ~k²/4 + 4k.
  std::size_t set_bits = 0;
  for (std::uint32_t i = 0; i < symbols_; ++i) {
    set_bits += pivot_rows_[i]->comp.popcount();
  }
  const std::size_t groups = (static_cast<std::size_t>(symbols_) + 3) / 4;
  const std::size_t m4r_cost = groups * (15 + symbols_);
  BlockData out(symbols_, symbol_bytes_);
  std::uint64_t bytes = 0;
  if (set_bits > m4r_cost) {
    bytes = compose_grouped(out, groups);
  } else {
    bytes = compose_direct(out);
  }
  rows_composed_ += symbols_;
  payload_bytes_xored_ += bytes;
  if (metrics_ != nullptr) {
    metrics_->coeff_word_xors.inc(words);
    metrics_->payload_bytes_xored.inc(bytes);
    metrics_->rows_composed.inc(symbols_);
  }

  for (auto& buf : stored_) {
    if (pool_ != nullptr) pool_->release(std::move(buf));
  }
  stored_.clear();
  decoded_ = std::move(out);
  return *decoded_;
}

std::uint64_t BlockDecoder::compose_direct(BlockData& out) {
  std::uint64_t bytes = 0;
  const std::uint8_t* srcs[kXorBatch];
  for (std::uint32_t i = 0; i < symbols_; ++i) {
    const Row& row = *pivot_rows_[i];
    FMTCP_DCHECK(row.coeffs.popcount() == 1);
    std::uint8_t* dst = out.symbol(i);
    std::size_t n = 0;
    row.comp.for_each_set_bit([&](std::size_t j) {
      FMTCP_DCHECK(j < stored_.size());
      srcs[n++] = stored_[j].data();
      if (n == kXorBatch) {
        xor_accumulate(dst, srcs, n, symbol_bytes_);
        bytes += n * symbol_bytes_;
        n = 0;
      }
    });
    if (n > 0) {
      xor_accumulate(dst, srcs, n, symbol_bytes_);
      bytes += n * symbol_bytes_;
    }
  }
  return bytes;
}

std::uint64_t BlockDecoder::compose_grouped(BlockData& out,
                                            std::size_t groups) {
  // Subset-XOR tables: entry v-1 of group g holds the XOR of the stored
  // payloads selected by the bits of v over slots [4g, 4g+m). Singleton
  // entries are copied; every other entry is one fused three-address XOR
  // of a smaller subset plus one payload, so the whole table costs one
  // output-sized pass per entry.
  // (for_overwrite: every entry that is ever read is written first.)
  const auto tables = std::make_unique_for_overwrite<std::uint8_t[]>(
      groups * 15 * symbol_bytes_);
  std::uint64_t bytes = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t base = g * 4;
    const std::uint32_t m =
        static_cast<std::uint32_t>(std::min<std::size_t>(4, symbols_ - base));
    std::uint8_t* tbl = tables.get() + g * 15 * symbol_bytes_;
    for (std::uint32_t v = 1; v < (1u << m); ++v) {
      std::uint8_t* dst =
          tbl + (static_cast<std::size_t>(v) - 1) * symbol_bytes_;
      const std::uint32_t low = v & (~v + 1u);
      const std::uint32_t rest = v ^ low;
      const std::uint8_t* a =
          stored_[base + static_cast<std::size_t>(std::countr_zero(low))]
              .data();
      if (rest == 0) {
        std::memcpy(dst, a, symbol_bytes_);
      } else {
        xor_into(dst,
                 tbl + (static_cast<std::size_t>(rest) - 1) * symbol_bytes_,
                 a, symbol_bytes_);
        bytes += symbol_bytes_;
      }
    }
  }

  // Apply: one table lookup per non-zero 4-bit nibble of the composition
  // vector. Nibble g lives entirely inside word g/16 (4 divides 64).
  const std::uint8_t* srcs[kXorBatch];
  for (std::uint32_t i = 0; i < symbols_; ++i) {
    const Row& row = *pivot_rows_[i];
    FMTCP_DCHECK(row.coeffs.popcount() == 1);
    std::uint8_t* dst = out.symbol(i);
    const std::uint64_t* cw = row.comp.word_data();
    std::size_t n = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      const std::uint32_t nib =
          static_cast<std::uint32_t>(cw[g >> 4] >> ((g & 15) * 4)) & 0xFu;
      if (nib == 0) continue;
      srcs[n++] = tables.get() + (g * 15 + nib - 1) * symbol_bytes_;
      if (n == kXorBatch) {
        xor_accumulate(dst, srcs, n, symbol_bytes_);
        bytes += n * symbol_bytes_;
        n = 0;
      }
    }
    if (n > 0) {
      xor_accumulate(dst, srcs, n, symbol_bytes_);
      bytes += n * symbol_bytes_;
    }
  }
  return bytes;
}

}  // namespace fmtcp::fountain
