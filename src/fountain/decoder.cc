#include "fountain/decoder.h"

#include <utility>

#include "common/check.h"
#include "fountain/random_linear.h"

namespace fmtcp::fountain {

BlockDecoder::BlockDecoder(std::uint32_t symbols, std::size_t symbol_bytes,
                           bool track_data, BufferPool* pool)
    : symbols_(symbols),
      symbol_bytes_(symbol_bytes),
      track_data_(track_data),
      pool_(pool),
      pivot_rows_(symbols) {
  FMTCP_CHECK(symbols > 0);
  FMTCP_CHECK(symbol_bytes > 0);
}

bool BlockDecoder::add_symbol(const BitVector& coeffs,
                              const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> copy;
  if (track_data_) copy = data;
  return add_symbol(coeffs, std::move(copy));
}

bool BlockDecoder::add_symbol(const BitVector& coeffs,
                              std::vector<std::uint8_t>&& data) {
  FMTCP_CHECK(coeffs.size() == symbols_);
  ++received_;
  if (complete()) {
    ++redundant_;
    if (pool_ != nullptr) pool_->release(std::move(data));
    return false;
  }

  Row row{coeffs, {}};
  if (track_data_) {
    FMTCP_CHECK(data.size() == symbol_bytes_);
    row.data = std::move(data);
  } else if (pool_ != nullptr) {
    pool_->release(std::move(data));
  }

  // Reduce against existing pivot rows until the leading bit is free.
  std::size_t pivot = row.coeffs.lowest_set_bit();
  while (pivot < symbols_ && pivot_rows_[pivot].has_value()) {
    row.coeffs.xor_with(pivot_rows_[pivot]->coeffs);
    if (track_data_) xor_bytes(row.data, pivot_rows_[pivot]->data);
    pivot = row.coeffs.lowest_set_bit();
  }

  if (pivot >= symbols_) {
    ++redundant_;  // Linearly dependent; dropped (paper §III-B).
    if (pool_ != nullptr) pool_->release(std::move(row.data));
    return false;
  }

  pivot_rows_[pivot] = std::move(row);
  ++rank_;
  return true;
}

bool BlockDecoder::add_symbol(const net::EncodedSymbol& symbol) {
  net::EncodedSymbol copy = symbol;
  return add_symbol(std::move(copy));
}

bool BlockDecoder::add_symbol(net::EncodedSymbol&& symbol) {
  FMTCP_CHECK(symbol.block_symbols == symbols_);
  BitVector coeffs(symbols_);
  if (symbol.is_systematic()) {
    FMTCP_CHECK(symbol.systematic_index < symbols_);
    coeffs.set(symbol.systematic_index, true);
  } else {
    coeffs = coefficients_from_seed(symbol.coeff_seed, symbols_);
  }
  return add_symbol(coeffs, std::move(symbol.data));
}

std::size_t BlockDecoder::buffered_bytes() const {
  if (complete() && decoded_.has_value()) return 0;
  return static_cast<std::size_t>(rank_) * symbol_bytes_;
}

const BlockData& BlockDecoder::decode() {
  FMTCP_CHECK(complete());
  FMTCP_CHECK(track_data_);
  if (decoded_.has_value()) return *decoded_;

  // Back-substitute: eliminate every pivot bit from the rows above it so
  // each row ends with exactly one set bit.
  for (std::size_t p = symbols_; p-- > 0;) {
    FMTCP_CHECK(pivot_rows_[p].has_value());
    for (std::size_t q = 0; q < p; ++q) {
      Row& upper = *pivot_rows_[q];
      if (upper.coeffs.get(p)) {
        upper.coeffs.xor_with(pivot_rows_[p]->coeffs);
        xor_bytes(upper.data, pivot_rows_[p]->data);
      }
    }
  }

  BlockData out(symbols_, symbol_bytes_);
  for (std::uint32_t i = 0; i < symbols_; ++i) {
    Row& row = *pivot_rows_[i];
    FMTCP_DCHECK(row.coeffs.popcount() == 1);
    std::copy(row.data.begin(), row.data.end(), out.symbol(i));
    if (pool_ != nullptr) pool_->release(std::move(row.data));
  }
  decoded_ = std::move(out);
  return *decoded_;
}

}  // namespace fmtcp::fountain
