// Runtime-dispatched GF(256) multiply kernel plane.
//
// The byte-coefficient sibling of gf2_kernels.h: one kernel table per
// instruction set (scalar always; SSSE3/AVX2/AVX-512VBMI on x86-64, NEON
// on AArch64), compiled into every build via per-function target
// attributes and picked at runtime. All variants compute the multiply
// through the same constexpr split-nibble tables (fountain/gf256.h), so
// every variant is bit-identical: dispatch changes throughput only,
// never a codec result.
//
// The SIMD trick is the classic table-driven galois multiply: for a
// constant c, two 16-entry tables T_lo[n] = c·n and T_hi[n] = c·(n<<4)
// fit one vector register each, and c·v = T_lo[v & 0xF] ^ T_hi[v >> 4]
// becomes two byte shuffles (PSHUFB / VPERMB / vtbl) plus an XOR — 16,
// 32, or 64 products per instruction pair instead of one table walk per
// byte.
//
// Selection, once at first use (shared FMTCP_FORCE_KERNEL variable with
// the GF(2) plane so one env var pins the whole process):
//   1. FMTCP_FORCE_KERNEL=scalar|ssse3|avx2|avx512|neon — exact kernel,
//      loud abort if unknown or unavailable. "sse2" (a GF(2) name) is
//      accepted as an alias for scalar: pre-SSSE3 x86 has no PSHUFB, so
//      the scalar table walk IS the SSE2-era GF(256) kernel.
//      Note the "avx512" gate differs per plane: GF(2) needs AVX-512F
//      only, GF(256) needs BW+VBMI (VPERMB) — forcing avx512 on an
//      F-only part aborts here rather than benchmarking the wrong thing.
//   2. Otherwise the widest kernel the CPU supports (common/cpu_features);
//      AVX2 is preferred over AVX-512 by default for the same frequency-
//      licensing reason as the GF(2) plane.
// Builds configured with -DFMTCP_SIMD=OFF compile the scalar table only.
//
// Alignment contract: unaligned-tolerant loads throughout; 64-byte
// aligned buffers (common/aligned.h) are the fast path, not a
// requirement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fmtcp::fountain {

/// One instruction-set variant of the GF(256) multiply kernel family.
/// All function pointers are non-null; all variants are bit-identical.
struct Gf256KernelOps {
  /// Stable lowercase identifier ("scalar", "ssse3", "avx2", "avx512",
  /// "neon") — the FMTCP_FORCE_KERNEL vocabulary and what
  /// BENCH_codec.json records as "gf256_kernel".
  const char* name;

  /// dst[0..size) ^= c · src[0..size). c == 0 is a no-op; c == 1 takes
  /// a pure-XOR path. dst must not overlap src.
  void (*mul_region)(std::uint8_t* dst, const std::uint8_t* src,
                     std::uint8_t c, std::size_t size);

  /// dst[0..size) = c · dst[0..size) in place. c == 1 is a no-op;
  /// c == 0 zeroes the region (pivot normalisation uses c = pivot⁻¹).
  void (*scale_region)(std::uint8_t* dst, std::uint8_t c, std::size_t size);

  /// dst ^= coeffs[0]·srcs[0] ^ ... ^ coeffs[n-1]·srcs[n-1], folding up
  /// to four sources per pass over dst (the GF(256) analogue of
  /// xor_accumulate). Zero coefficients are skipped without a pass.
  void (*mul_accumulate)(std::uint8_t* dst, const std::uint8_t* const* srcs,
                         const std::uint8_t* coeffs, std::size_t n,
                         std::size_t size);
};

/// The active kernel table (selected on first call, then stable for the
/// process unless gf256_set_kernel intervenes). Hot loops should hoist
/// `const Gf256KernelOps& ops = gf256_kernel();` out of their inner loop.
const Gf256KernelOps& gf256_kernel();

/// The scalar table — always available, the reference all SIMD variants
/// are property-tested against.
const Gf256KernelOps& gf256_scalar_kernel();

/// Every kernel usable in this build on this CPU, deterministically
/// ordered narrowest first (scalar, ssse3, avx2, avx512 / neon).
std::vector<const Gf256KernelOps*> gf256_available_kernels();

/// Switches the active kernel by name (accepts the "sse2" alias for
/// scalar). Returns false (no change) if the name is unknown or the
/// kernel is unavailable here. Test hook; not thread-safe against
/// concurrent kernel calls by design — callers switch only between
/// decode runs.
bool gf256_set_kernel(const char* name);

}  // namespace fmtcp::fountain
