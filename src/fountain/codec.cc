#include "fountain/codec.h"

#include <cstring>
#include <utility>

#include "fountain/gf256.h"

namespace fmtcp::fountain {

const char* coding_field_name(CodingField field) {
  return field == CodingField::kGf2 ? "gf2" : "gf256";
}

std::optional<CodingField> parse_coding_field(const char* name) {
  if (std::strcmp(name, "gf2") == 0) return CodingField::kGf2;
  if (std::strcmp(name, "gf256") == 0) return CodingField::kGf256;
  return std::nullopt;
}

double field_decode_failure_probability(CodingField field,
                                        std::uint32_t k_hat,
                                        double received) {
  if (field == CodingField::kGf256) {
    return gf256_decode_failure_probability(k_hat, received);
  }
  return decode_failure_probability(k_hat, received);
}

namespace {

template <typename Gf2, typename Gf256, typename... Args>
std::variant<Gf2, Gf256> make_codec(CodingField field, Args&&... args) {
  if (field == CodingField::kGf256) {
    return std::variant<Gf2, Gf256>(std::in_place_type<Gf256>,
                                    std::forward<Args>(args)...);
  }
  return std::variant<Gf2, Gf256>(std::in_place_type<Gf2>,
                                  std::forward<Args>(args)...);
}

}  // namespace

SymbolEncoder::SymbolEncoder(CodingField field, std::uint64_t block_id,
                             BlockData block, Rng rng, bool systematic)
    : impl_(make_codec<RandomLinearEncoder, Gf256RlcEncoder>(
          field, block_id, std::move(block), rng, systematic)) {}

SymbolEncoder::SymbolEncoder(CodingField field, std::uint64_t block_id,
                             std::uint32_t symbols, std::size_t symbol_bytes,
                             Rng rng, bool systematic)
    : impl_(make_codec<RandomLinearEncoder, Gf256RlcEncoder>(
          field, block_id, symbols, symbol_bytes, rng, systematic)) {}

net::EncodedSymbol SymbolEncoder::next_symbol() {
  return std::visit([](auto& e) { return e.next_symbol(); }, impl_);
}

void SymbolEncoder::set_buffer_pool(BufferPool* pool) {
  std::visit([pool](auto& e) { e.set_buffer_pool(pool); }, impl_);
}

bool SymbolEncoder::systematic() const {
  return std::visit([](const auto& e) { return e.systematic(); }, impl_);
}

std::uint64_t SymbolEncoder::block_id() const {
  return std::visit([](const auto& e) { return e.block_id(); }, impl_);
}

std::uint32_t SymbolEncoder::symbols() const {
  return std::visit([](const auto& e) { return e.symbols(); }, impl_);
}

std::size_t SymbolEncoder::symbol_bytes() const {
  return std::visit([](const auto& e) { return e.symbol_bytes(); }, impl_);
}

std::uint64_t SymbolEncoder::generated_count() const {
  return std::visit([](const auto& e) { return e.generated_count(); }, impl_);
}

SymbolDecoder::SymbolDecoder(CodingField field, std::uint32_t symbols,
                             std::size_t symbol_bytes, bool track_data,
                             BufferPool* pool, CodingMetrics* metrics)
    : impl_(field == CodingField::kGf256
                ? std::variant<BlockDecoder, Gf256RlcDecoder>(
                      std::in_place_type<Gf256RlcDecoder>, symbols,
                      symbol_bytes, track_data, pool)
                : std::variant<BlockDecoder, Gf256RlcDecoder>(
                      std::in_place_type<BlockDecoder>, symbols, symbol_bytes,
                      track_data, pool, metrics)) {}

bool SymbolDecoder::add_symbol(net::EncodedSymbol&& symbol) {
  return std::visit(
      [&symbol](auto& d) { return d.add_symbol(std::move(symbol)); }, impl_);
}

bool SymbolDecoder::add_symbol(const net::EncodedSymbol& symbol) {
  return std::visit([&symbol](auto& d) { return d.add_symbol(symbol); },
                    impl_);
}

std::uint32_t SymbolDecoder::rank() const {
  return std::visit([](const auto& d) { return d.rank(); }, impl_);
}

bool SymbolDecoder::complete() const {
  return std::visit([](const auto& d) { return d.complete(); }, impl_);
}

std::uint32_t SymbolDecoder::symbols() const {
  return std::visit([](const auto& d) { return d.symbols(); }, impl_);
}

std::size_t SymbolDecoder::symbol_bytes() const {
  return std::visit([](const auto& d) { return d.symbol_bytes(); }, impl_);
}

std::uint64_t SymbolDecoder::received_count() const {
  return std::visit([](const auto& d) { return d.received_count(); }, impl_);
}

std::uint64_t SymbolDecoder::redundant_count() const {
  return std::visit([](const auto& d) { return d.redundant_count(); }, impl_);
}

std::size_t SymbolDecoder::buffered_bytes() const {
  return std::visit([](const auto& d) { return d.buffered_bytes(); }, impl_);
}

const BlockData& SymbolDecoder::decode(DecodeScratch& scratch) {
  if (auto* gf2 = std::get_if<BlockDecoder>(&impl_)) {
    return gf2->decode(scratch);
  }
  return std::get<Gf256RlcDecoder>(impl_).decode();
}

const BlockData& SymbolDecoder::decode() {
  return std::visit([](auto& d) -> const BlockData& { return d.decode(); },
                    impl_);
}

}  // namespace fmtcp::fountain
