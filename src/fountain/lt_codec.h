// LT (Luby Transform) codec: sparse fountain code with soliton degrees and
// belief-propagation (peeling) decoding. Extension beyond the paper's
// dense random linear code; used by the overhead-comparison benches and
// available to users who want O(k ln k) decoding for large blocks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "fountain/block.h"
#include "fountain/soliton.h"
#include "net/packet.h"

namespace fmtcp::fountain {

/// Expands an LT symbol seed into its neighbour set (distinct source
/// symbol indices). Degree is sampled from `dist`; both ends must use the
/// same distribution parameters.
std::vector<std::uint32_t> lt_neighbors_from_seed(std::uint64_t seed,
                                                  const RobustSoliton& dist,
                                                  Rng* scratch = nullptr);

class LtEncoder {
 public:
  LtEncoder(std::uint64_t block_id, BlockData block, RobustSoliton dist,
            Rng rng);

  net::EncodedSymbol next_symbol();

  std::uint32_t symbols() const { return dist_.k(); }

 private:
  std::uint64_t block_id_;
  BlockData data_;
  RobustSoliton dist_;
  Rng rng_;
};

/// Peeling decoder: symbols of degree one release their source symbol,
/// which is then subtracted from every waiting symbol that covers it.
class LtDecoder {
 public:
  LtDecoder(std::uint32_t symbols, std::size_t symbol_bytes,
            RobustSoliton dist);

  /// Returns true if progress was made (any source symbol recovered).
  bool add_symbol(const net::EncodedSymbol& symbol);

  std::uint32_t recovered() const { return recovered_; }
  bool complete() const { return recovered_ == symbols_; }
  std::uint64_t received_count() const { return received_; }

  /// Requires complete().
  BlockData decode() const;

 private:
  struct PendingSymbol {
    std::vector<std::uint32_t> neighbors;  ///< Unresolved source indices.
    AlignedBytes data;
  };

  void process_ripple(std::vector<std::uint32_t> ripple);

  std::uint32_t symbols_;
  std::size_t symbol_bytes_;
  RobustSoliton dist_;
  std::uint32_t recovered_ = 0;
  std::uint64_t received_ = 0;
  std::vector<std::optional<AlignedBytes>> source_;
  std::vector<PendingSymbol> pending_;
};

}  // namespace fmtcp::fountain
