#include "fountain/lt_codec.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "fountain/gf2.h"

namespace fmtcp::fountain {

std::vector<std::uint32_t> lt_neighbors_from_seed(std::uint64_t seed,
                                                  const RobustSoliton& dist,
                                                  Rng* /*scratch*/) {
  Rng rng(seed);
  const std::uint32_t k = dist.k();
  const std::uint32_t degree = std::min(dist.sample(rng), k);
  // Floyd's algorithm for `degree` distinct values in [0, k).
  std::vector<std::uint32_t> out;
  out.reserve(degree);
  for (std::uint32_t j = k - degree; j < k; ++j) {
    const auto t = static_cast<std::uint32_t>(rng.next_below(j + 1));
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  return out;
}

LtEncoder::LtEncoder(std::uint64_t block_id, BlockData block,
                     RobustSoliton dist, Rng rng)
    : block_id_(block_id),
      data_(std::move(block)),
      dist_(std::move(dist)),
      rng_(rng) {
  FMTCP_CHECK(data_.symbols() == dist_.k());
}

net::EncodedSymbol LtEncoder::next_symbol() {
  net::EncodedSymbol s;
  s.block = block_id_;
  s.block_symbols = dist_.k();
  s.coeff_seed = rng_.next_u64();
  const std::vector<std::uint32_t> neighbors =
      lt_neighbors_from_seed(s.coeff_seed, dist_);
  s.data.assign(data_.symbol_bytes(), 0);
  const std::uint8_t* srcs[kXorBatch];
  std::size_t n = 0;
  for (std::uint32_t idx : neighbors) {
    srcs[n++] = data_.symbol(idx);
    if (n == kXorBatch) {
      xor_accumulate(s.data.data(), srcs, n, s.data.size());
      n = 0;
    }
  }
  if (n > 0) xor_accumulate(s.data.data(), srcs, n, s.data.size());
  return s;
}

LtDecoder::LtDecoder(std::uint32_t symbols, std::size_t symbol_bytes,
                     RobustSoliton dist)
    : symbols_(symbols),
      symbol_bytes_(symbol_bytes),
      dist_(std::move(dist)),
      source_(symbols) {
  FMTCP_CHECK(dist_.k() == symbols);
}

bool LtDecoder::add_symbol(const net::EncodedSymbol& symbol) {
  FMTCP_CHECK(symbol.block_symbols == symbols_);
  FMTCP_CHECK(symbol.data.size() == symbol_bytes_);
  ++received_;
  if (complete()) return false;

  PendingSymbol pending;
  pending.data = symbol.data;
  // Subtract already-recovered neighbours immediately.
  for (std::uint32_t idx : lt_neighbors_from_seed(symbol.coeff_seed, dist_)) {
    if (source_[idx].has_value()) {
      xor_bytes(pending.data, *source_[idx]);
    } else {
      pending.neighbors.push_back(idx);
    }
  }

  if (pending.neighbors.empty()) return false;  // Fully redundant.

  if (pending.neighbors.size() == 1) {
    const std::uint32_t idx = pending.neighbors.front();
    source_[idx] = std::move(pending.data);
    ++recovered_;
    process_ripple({idx});
    return true;
  }

  pending_.push_back(std::move(pending));
  return false;
}

void LtDecoder::process_ripple(std::vector<std::uint32_t> ripple) {
  while (!ripple.empty()) {
    const std::uint32_t released = ripple.back();
    ripple.pop_back();
    for (auto& pending : pending_) {
      auto it = std::find(pending.neighbors.begin(), pending.neighbors.end(),
                          released);
      if (it == pending.neighbors.end()) continue;
      pending.neighbors.erase(it);
      xor_bytes(pending.data, *source_[released]);
      if (pending.neighbors.size() == 1 &&
          !source_[pending.neighbors.front()].has_value()) {
        const std::uint32_t idx = pending.neighbors.front();
        source_[idx] = pending.data;
        pending.neighbors.clear();
        ++recovered_;
        ripple.push_back(idx);
      }
    }
    std::erase_if(pending_, [](const PendingSymbol& p) {
      return p.neighbors.empty();
    });
  }
}

BlockData LtDecoder::decode() const {
  FMTCP_CHECK(complete());
  BlockData out(symbols_, symbol_bytes_);
  for (std::uint32_t i = 0; i < symbols_; ++i) {
    FMTCP_CHECK(source_[i].has_value());
    std::copy(source_[i]->begin(), source_[i]->end(), out.symbol(i));
  }
  return out;
}

}  // namespace fmtcp::fountain
