// Folds a drained TraceReport into a MetricsRegistry so span profiles
// ride along in `--metrics-json` output next to the run's protocol
// metrics. Lives in fmtcp_obs (not fmtcp_trace) because it is the one
// trace-plane piece that depends on the registry.
//
// Naming scheme, per span name S:
//   counter  span.S.count
//   gauges   span.S.total_ms, span.S.self_ms, span.S.p50_ms,
//            span.S.p99_ms, span.S.max_ms
// per FMTCP_COUNT counter C:
//   counter  trace.C
// plus counter trace.dropped_records when the ring overflowed.
#pragma once

#include "obs/metrics.h"
#include "obs/trace/tracer.h"

namespace fmtcp::obs::trace {

void merge_report(const TraceReport& report, MetricsRegistry& metrics);

}  // namespace fmtcp::obs::trace
