#include "obs/trace/tracer.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/trace/span.h"

namespace fmtcp::obs::trace {

namespace detail {

std::atomic<bool> g_tracing_enabled{false};

namespace {

// Durations are bucketed by octave (log2) with 4 sub-buckets each, so
// percentile estimates carry ~19% relative error — plenty for a "where
// did the time go" table without per-sample storage.
constexpr std::size_t kBucketsPerOctave = 4;
constexpr std::size_t kOctaves = 48;  // 2^48 ns ~ 3.3 days; ample.
constexpr std::size_t kBucketCount = kOctaves * kBucketsPerOctave;

std::size_t bucket_index(std::uint64_t ns) {
  const int octave = std::bit_width(ns | 1) - 1;
  const int shift = octave >= 2 ? octave - 2 : 0;
  const std::uint64_t minor = octave >= 2 ? ((ns >> shift) & 3) : 0;
  const std::size_t index =
      static_cast<std::size_t>(octave) * kBucketsPerOctave +
      static_cast<std::size_t>(minor);
  return std::min(index, kBucketCount - 1);
}

/// Geometric representative of a bucket (midpoint of its sub-range).
double bucket_value_ns(std::size_t index) {
  const double octave = static_cast<double>(index / kBucketsPerOctave);
  const double minor = static_cast<double>(index % kBucketsPerOctave);
  const double base = std::exp2(octave);
  return base * (1.0 + (minor + 0.5) / kBucketsPerOctave);
}

struct SpanShard {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t max_ns = 0;
  std::vector<std::uint32_t> buckets;  ///< Lazily sized to kBucketCount.

  void add(std::uint64_t dur_ns, std::uint64_t self) {
    ++count;
    total_ns += dur_ns;
    self_ns += self;
    max_ns = std::max(max_ns, dur_ns);
    if (buckets.empty()) buckets.assign(kBucketCount, 0);
    ++buckets[bucket_index(dur_ns)];
  }
};

struct ThreadState {
  std::uint32_t index = 0;
  std::string name;

  // Ring of completed spans. Only the owning thread writes; the write
  // cursor is release/acquire so a quiescent drain reads cleanly.
  std::vector<SpanRecord> ring;
  std::size_t ring_capacity = 0;
  std::atomic<std::uint64_t> ring_seq{0};
  std::uint64_t session_base_seq = 0;

  std::uint64_t next_span_seq = 0;

  // Keyed by span-name *content*, not pointer identity: the same string
  // literal can have a distinct address in every translation unit, and a
  // pointer key would split one logical span into several rows. The
  // views point into string literals (see SpanScope's contract), so
  // they outlive the session.
  std::unordered_map<std::string_view, SpanShard> spans;
  std::unordered_map<std::string_view, std::uint64_t> counters;
};

struct Registry {
  Mutex mutex;
  // Thread states live for the whole process; each entry is written by
  // its owning thread while a session is active and drained under the
  // mutex at stop() (the quiescence contract in tracer.h makes the two
  // phases disjoint). The *vector* itself is what the mutex guards.
  std::vector<std::unique_ptr<ThreadState>> threads
      FMTCP_GUARDED_BY(mutex);
  TraceConfig config FMTCP_GUARDED_BY(mutex);
  bool active FMTCP_GUARDED_BY(mutex) = false;
  std::uint64_t session_begin_ns FMTCP_GUARDED_BY(mutex) = 0;
};

// Session parameters the per-record hot path needs. push_record() runs
// on arbitrary threads without the registry mutex, so reading
// reg.config there would be a lock-discipline hole (it was, before the
// thread-safety annotations flagged it); instead start() snapshots the
// two fields it needs into these atomics *before* the release store
// that enables tracing, and the hot path reads them relaxed (the
// acquire load in tracing_enabled() orders them).
std::atomic<std::size_t> g_session_ring_capacity{0};
std::atomic<bool> g_session_capture_records{false};

Registry& registry() {
  static Registry* r = new Registry;  // Leaked: outlives thread_locals.
  return *r;
}

thread_local ThreadState* tls_state = nullptr;
thread_local SpanScope* tls_current_span = nullptr;
thread_local const char* tls_pending_name = nullptr;

ThreadState& thread_state() {
  if (tls_state == nullptr) {
    Registry& reg = registry();
    MutexLock lock(reg.mutex);
    auto state = std::make_unique<ThreadState>();
    state->index = static_cast<std::uint32_t>(reg.threads.size());
    if (tls_pending_name != nullptr) state->name = tls_pending_name;
    tls_state = state.get();
    reg.threads.push_back(std::move(state));
  }
  return *tls_state;
}

void push_record(ThreadState& state, const SpanRecord& record) {
  if (!g_session_capture_records.load(std::memory_order_relaxed)) return;
  const std::size_t ring_capacity =
      g_session_ring_capacity.load(std::memory_order_relaxed);
  if (state.ring.size() != ring_capacity) {
    // First record this session (or capacity changed): (re)size lazily
    // so idle threads from past sessions hold no ring memory.
    state.ring.assign(ring_capacity, SpanRecord{});
    state.ring_capacity = ring_capacity;
  }
  const std::uint64_t seq =
      state.ring_seq.load(std::memory_order_relaxed);
  state.ring[seq % state.ring_capacity] = record;
  state.ring_seq.store(seq + 1, std::memory_order_release);
}

}  // namespace

void count_slow(const char* name, std::uint64_t n) {
  thread_state().counters[name] += n;
}

}  // namespace detail

using detail::ThreadState;

std::uint64_t clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_thread_name(const char* name) {
  detail::tls_pending_name = name;
  if (detail::tls_state != nullptr) detail::tls_state->name = name;
}

void SpanScope::begin(const char* name, std::uint64_t arg) {
  ThreadState& state = detail::thread_state();
  armed_ = true;
  name_ = name;
  arg_ = arg;
  child_ns_ = 0;
  thread_state_ = &state;
  parent_ = detail::tls_current_span;
  depth_ = parent_ == nullptr ? 0 : parent_->depth_ + 1;
  // Span ids are unique across threads: thread index in the high bits.
  span_id_ = (static_cast<std::uint64_t>(state.index) << 40) |
             ++state.next_span_seq;
  detail::tls_current_span = this;
  begin_ns_ = clock_ns();  // Last: keep setup out of the measured span.
}

void SpanScope::finish() {
  const std::uint64_t end_ns = clock_ns();
  ThreadState& state = *static_cast<ThreadState*>(thread_state_);
  const std::uint64_t dur = end_ns - begin_ns_;
  const std::uint64_t self = dur > child_ns_ ? dur - child_ns_ : 0;
  state.spans[name_].add(dur, self);

  SpanRecord record;
  record.name = name_;
  record.begin_ns = begin_ns_;
  record.end_ns = end_ns;
  record.self_ns = self;
  record.span_id = span_id_;
  record.parent_id = parent_ == nullptr ? 0 : parent_->span_id_;
  record.arg = arg_;
  record.depth = depth_;
  record.thread_index = state.index;
  detail::push_record(state, record);

  detail::tls_current_span = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += dur;
}

void record_complete(const char* name, std::uint64_t begin_ns,
                     std::uint64_t end_ns, std::uint64_t arg) {
  if (!tracing_enabled()) return;
  ThreadState& state = detail::thread_state();
  const std::uint64_t dur = end_ns > begin_ns ? end_ns - begin_ns : 0;
  state.spans[name].add(dur, dur);

  SpanRecord record;
  record.name = name;
  record.begin_ns = begin_ns;
  record.end_ns = end_ns;
  record.self_ns = dur;
  record.span_id = (static_cast<std::uint64_t>(state.index) << 40) |
                   ++state.next_span_seq;
  record.arg = arg;
  record.thread_index = state.index;
  detail::push_record(state, record);
}

void start(const TraceConfig& config) {
  detail::Registry& reg = detail::registry();
  MutexLock lock(reg.mutex);
  FMTCP_CHECK(!reg.active);
  FMTCP_CHECK(config.ring_capacity > 0);
  reg.config = config;
  // Hot-path snapshot; must be visible before the enabling store below
  // (the release/acquire pair on g_tracing_enabled orders it).
  detail::g_session_ring_capacity.store(config.ring_capacity,
                                        std::memory_order_relaxed);
  detail::g_session_capture_records.store(config.capture_records,
                                          std::memory_order_relaxed);
  for (auto& state : reg.threads) {
    state->session_base_seq =
        state->ring_seq.load(std::memory_order_acquire);
    state->spans.clear();
    state->counters.clear();
  }
  reg.session_begin_ns = clock_ns();
  reg.active = true;
  detail::g_tracing_enabled.store(true, std::memory_order_release);
}

bool active() {
  detail::Registry& reg = detail::registry();
  MutexLock lock(reg.mutex);
  return reg.active;
}

TraceReport stop() {
  detail::Registry& reg = detail::registry();
  MutexLock lock(reg.mutex);
  FMTCP_CHECK(reg.active);
  detail::g_tracing_enabled.store(false, std::memory_order_release);
  reg.active = false;

  TraceReport report;
  report.session_begin_ns = reg.session_begin_ns;
  report.session_end_ns = clock_ns();
  report.captured_records = reg.config.capture_records;

  // Per-thread shards already key by name content; the std::map here
  // merges across threads and fixes the emission order (sorted by name,
  // so --profile / trace_summary --spans tables are byte-stable for a
  // given set of span names).
  struct MergedSpan {
    SpanAggregate agg;
    std::vector<std::uint64_t> buckets;
  };
  std::map<std::string, MergedSpan> merged;
  std::map<std::string, std::uint64_t> counters;

  for (auto& state : reg.threads) {
    const std::uint64_t seq =
        state->ring_seq.load(std::memory_order_acquire);
    const std::uint64_t written = seq - state->session_base_seq;
    if (reg.config.capture_records && written > 0) {
      const std::uint64_t kept =
          std::min<std::uint64_t>(written, state->ring_capacity);
      report.dropped_records += written - kept;
      for (std::uint64_t i = seq - kept; i < seq; ++i) {
        report.records.push_back(
            state->ring[i % state->ring_capacity]);
      }
    }
    if (!state->spans.empty() || !state->counters.empty() ||
        written > 0) {
      report.threads.emplace_back(
          state->index, state->name.empty()
                            ? "thread-" + std::to_string(state->index)
                            : state->name);
    }
    for (const auto& [name, shard] : state->spans) {
      MergedSpan& m = merged[std::string(name)];
      m.agg.count += shard.count;
      m.agg.total_ms += static_cast<double>(shard.total_ns) / 1e6;
      m.agg.self_ms += static_cast<double>(shard.self_ns) / 1e6;
      m.agg.max_ms = std::max(
          m.agg.max_ms, static_cast<double>(shard.max_ns) / 1e6);
      if (!shard.buckets.empty()) {
        if (m.buckets.empty()) m.buckets.assign(shard.buckets.size(), 0);
        for (std::size_t i = 0; i < shard.buckets.size(); ++i) {
          m.buckets[i] += shard.buckets[i];
        }
      }
    }
    for (const auto& [name, value] : state->counters) {
      counters[std::string(name)] += value;
    }
    // Free ring memory until the next session's first record.
    state->ring.clear();
    state->ring.shrink_to_fit();
    state->ring_capacity = 0;
    state->spans.clear();
    state->counters.clear();
  }

  auto percentile = [](const std::vector<std::uint64_t>& buckets,
                       std::uint64_t count, double q) {
    if (count == 0 || buckets.empty()) return 0.0;
    const double target = q * static_cast<double>(count - 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      seen += buckets[i];
      if (static_cast<double>(seen) > target) {
        return detail::bucket_value_ns(i) / 1e6;
      }
    }
    return detail::bucket_value_ns(buckets.size() - 1) / 1e6;
  };

  // The map iterates in name order, so the table comes out sorted by
  // name with no further sort — deterministic row order independent of
  // this run's timings.
  for (auto& [name, m] : merged) {
    m.agg.name = name;
    m.agg.p50_ms = percentile(m.buckets, m.agg.count, 0.50);
    m.agg.p99_ms = percentile(m.buckets, m.agg.count, 0.99);
    report.spans.push_back(std::move(m.agg));
  }
  for (const auto& [name, value] : counters) {
    report.counters.push_back({name, value});
  }
  return report;
}

const SpanAggregate* TraceReport::find(const std::string& name) const {
  for (const SpanAggregate& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::string format_span_table(const TraceReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "span profile: %.2f ms session, %zu span names, "
                "%zu threads%s\n",
                report.session_ms(), report.spans.size(),
                report.threads.size(),
                report.captured_records ? "" : " (aggregates only)");
  out += line;
  if (report.dropped_records > 0) {
    std::snprintf(line, sizeof(line),
                  "  (%llu records dropped to ring overflow; aggregates "
                  "are exact)\n",
                  static_cast<unsigned long long>(report.dropped_records));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%-28s %10s %12s %12s %10s %10s %10s\n", "span", "count",
                "total_ms", "self_ms", "p50_ms", "p99_ms", "max_ms");
  out += line;
  for (const SpanAggregate& s : report.spans) {
    std::snprintf(line, sizeof(line),
                  "%-28s %10llu %12.3f %12.3f %10.4f %10.4f %10.3f\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.count), s.total_ms,
                  s.self_ms, s.p50_ms, s.p99_ms, s.max_ms);
    out += line;
  }
  if (!report.counters.empty()) {
    std::snprintf(line, sizeof(line), "%-28s %10s\n", "counter",
                  "value");
    out += line;
    for (const CounterAggregate& c : report.counters) {
      std::snprintf(line, sizeof(line), "%-28s %10llu\n",
                    c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
      out += line;
    }
  }
  return out;
}

}  // namespace fmtcp::obs::trace
