#include "obs/trace/span_metrics.h"

namespace fmtcp::obs::trace {

void merge_report(const TraceReport& report, MetricsRegistry& metrics) {
  for (const SpanAggregate& span : report.spans) {
    const std::string base = "span." + span.name;
    metrics.counter(base + ".count").inc(span.count);
    metrics.gauge(base + ".total_ms").set(span.total_ms);
    metrics.gauge(base + ".self_ms").set(span.self_ms);
    metrics.gauge(base + ".p50_ms").set(span.p50_ms);
    metrics.gauge(base + ".p99_ms").set(span.p99_ms);
    metrics.gauge(base + ".max_ms").set(span.max_ms);
  }
  for (const CounterAggregate& counter : report.counters) {
    metrics.counter("trace." + counter.name).inc(counter.value);
  }
  if (report.dropped_records > 0) {
    metrics.counter("trace.dropped_records").inc(report.dropped_records);
  }
}

}  // namespace fmtcp::obs::trace
