// Cross-thread span profiler: session control and post-run drain.
//
// A *session* is one start()/stop() pair wrapping a quiescent region of
// interest (a bench mode, a tool run). While active, every FMTCP_SPAN /
// FMTCP_COUNT site in the process records into per-thread state:
//
//   - a fixed-capacity ring of SpanRecord (drop-oldest on overflow,
//     dropped count reported) feeding the Chrome-trace exporter, and
//   - an exact per-span-name aggregate table (count, total/self time,
//     log-bucketed duration histogram for approximate p50/p99) that is
//     *not* subject to ring overflow.
//
// Threads only ever write their own state; stop() merges everything
// into one TraceReport. The contract is quiescence: call stop() only
// when no instrumented thread is mid-span (after ThreadPool::wait() or
// thread join — both establish the needed happens-before edge; the ring
// write cursor is release/acquire as a belt-and-braces handoff).
//
// Sessions are process-global and strictly sequential; nesting start()
// calls is a checked error.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace fmtcp::obs::trace {

struct TraceConfig {
  /// SpanRecords retained per thread; on overflow the oldest records
  /// are dropped (the aggregate table is unaffected).
  std::size_t ring_capacity = 1 << 15;
  /// False = aggregate-only profiling (--profile): spans still fold
  /// into the stats table but no records are retained for export.
  bool capture_records = true;
};

/// One completed span, as retained in the ring. Timestamps are
/// steady_clock nanoseconds (trace::clock_ns()).
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t self_ns = 0;    ///< Duration minus direct children.
  std::uint64_t span_id = 0;    ///< Unique per session, never 0.
  std::uint64_t parent_id = 0;  ///< 0 = top-level.
  std::uint64_t arg = 0;
  std::uint32_t depth = 0;      ///< 0 = top-level.
  std::uint32_t thread_index = 0;
};

/// Per-span-name aggregate over the whole session (all threads).
struct SpanAggregate {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;  ///< Sum of durations (children included).
  double self_ms = 0.0;   ///< Sum of durations minus direct children.
  double max_ms = 0.0;
  double p50_ms = 0.0;  ///< Approximate (log-bucketed, ~19% resolution).
  double p99_ms = 0.0;
};

struct CounterAggregate {
  std::string name;
  std::uint64_t value = 0;
};

struct TraceReport {
  /// Session wall-clock bounds (steady ns), for relative timestamps.
  std::uint64_t session_begin_ns = 0;
  std::uint64_t session_end_ns = 0;
  bool captured_records = false;

  /// Retained records, merged across threads, ordered by end time per
  /// thread (the order they were written).
  std::vector<SpanRecord> records;
  /// Records lost to ring overflow, summed over threads.
  std::uint64_t dropped_records = 0;

  /// Aggregates sorted by name, so tables render in a byte-stable row
  /// order regardless of this run's timings.
  std::vector<SpanAggregate> spans;
  /// FMTCP_COUNT totals, sorted by name.
  std::vector<CounterAggregate> counters;

  /// index -> name for every thread that recorded this session.
  std::vector<std::pair<std::uint32_t, std::string>> threads;

  double session_ms() const {
    return static_cast<double>(session_end_ns - session_begin_ns) / 1e6;
  }
  /// The aggregate for `name`, or nullptr.
  const SpanAggregate* find(const std::string& name) const;
};

/// Opens a session. Checked error if one is already active.
void start(const TraceConfig& config = {});

/// True between start() and stop().
bool active();

/// Closes the session and drains every thread's state. Checked error
/// without an active session. Callers must have quiesced instrumented
/// threads first (see file comment).
TraceReport stop();

/// Human-readable aggregate table (the `--profile` / `--spans` output):
/// one row per span name in name order, then counters.
std::string format_span_table(const TraceReport& report);

}  // namespace fmtcp::obs::trace
