// Scoped-span instrumentation macros: the hot-path face of the trace
// plane (see obs/trace/tracer.h for the session/drain side).
//
//   void SweepRunner::run() {
//     FMTCP_SPAN("sweep.run");
//     ...
//   }
//
// When no trace session is active (the default), FMTCP_SPAN costs one
// relaxed atomic load and a predictable branch — cheap enough to leave
// compiled into scheduler/codec/pool hot paths. When a session is
// active, scope entry stamps a steady-clock timestamp and scope exit
// appends one fixed-size record to the calling thread's ring buffer and
// folds the duration into the thread's aggregate table; threads never
// touch each other's state, so instrumented code stays safe under
// `--jobs N`.
//
// FMTCP_COUNT is the counter counterpart for sites too hot to span
// (per-symbol codec work, per-buffer pool traffic): a per-thread shard
// bumped locally and merged at drain.
#pragma once

#include <atomic>
#include <cstdint>

namespace fmtcp::obs::trace {

namespace detail {

/// The single global gate every instrumentation site checks. Defined in
/// tracer.cc; flipped by trace::start()/trace::stop().
extern std::atomic<bool> g_tracing_enabled;

/// Per-thread counter shard bump (slow path, only when tracing).
void count_slow(const char* name, std::uint64_t n);

}  // namespace detail

/// True while a trace session is active (between start() and stop()).
/// Acquire pairs with the release store in start(): a thread that sees
/// the session as active also sees its shards cleared. On x86 this is
/// the same plain load a relaxed read would be.
inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_acquire);
}

/// RAII scoped span. Prefer the FMTCP_SPAN macro; construct directly
/// only when the scope needs an explicit early close().
///
/// `name` must be a string literal (or otherwise outlive the session):
/// records key on the pointer and aggregation dedupes by content.
class SpanScope {
 public:
  explicit SpanScope(const char* name, std::uint64_t arg = 0) {
    if (tracing_enabled()) begin(name, arg);
  }
  ~SpanScope() {
    if (armed_) finish();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Ends the span now instead of at scope exit. Idempotent.
  void close() {
    if (armed_) {
      finish();
      armed_ = false;
    }
  }

  /// Sets the record's free-form argument (bytes, cell index, ...).
  void set_arg(std::uint64_t arg) { arg_ = arg; }

 private:
  void begin(const char* name, std::uint64_t arg);  // tracer.cc
  void finish();                                    // tracer.cc

  bool armed_ = false;
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t arg_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t child_ns_ = 0;
  std::uint32_t depth_ = 0;
  SpanScope* parent_ = nullptr;
  void* thread_state_ = nullptr;  ///< detail::ThreadState, owned globally.
};

/// Bumps the named trace counter by `n` (no-op without a session).
inline void count(const char* name, std::uint64_t n = 1) {
  if (tracing_enabled()) detail::count_slow(name, n);
}

/// Records an already-measured interval as a completed span (no open
/// scope). Used where RAII does not fit, e.g. a worker measuring how
/// long it waited before waking: the wait must not hold a scope open
/// across a drain. `begin_ns`/`end_ns` are steady_clock nanoseconds
/// (trace::clock_ns()). No-op without a session.
void record_complete(const char* name, std::uint64_t begin_ns,
                     std::uint64_t end_ns, std::uint64_t arg = 0);

/// steady_clock::now() in nanoseconds — the clock every span uses.
std::uint64_t clock_ns();

/// Labels the calling thread in trace exports ("pool-worker-3"). Safe
/// to call with or without an active session; the latest name wins.
void set_thread_name(const char* name);

}  // namespace fmtcp::obs::trace

#define FMTCP_SPAN_CONCAT2(a, b) a##b
#define FMTCP_SPAN_CONCAT(a, b) FMTCP_SPAN_CONCAT2(a, b)

/// Scoped span covering the rest of the enclosing block.
#define FMTCP_SPAN(name)                                    \
  ::fmtcp::obs::trace::SpanScope FMTCP_SPAN_CONCAT(         \
      fmtcp_span_scope_, __COUNTER__) { (name) }

/// Scoped span with a free-form u64 argument attached to the record.
#define FMTCP_SPAN_ARG(name, arg)                           \
  ::fmtcp::obs::trace::SpanScope FMTCP_SPAN_CONCAT(         \
      fmtcp_span_scope_, __COUNTER__) { (name), (arg) }

/// Per-thread sharded counter bump (for sites too hot to span).
#define FMTCP_COUNT(name, n) ::fmtcp::obs::trace::count((name), (n))
