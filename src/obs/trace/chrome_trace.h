// Chrome trace_events exporter for TraceReport records, plus the
// reader that aggregates such a file back into a span table
// (`tools/trace_summary --spans`).
//
// The output is the "JSON object format" chrome://tracing and Perfetto
// both load: {"traceEvents":[...],"displayTimeUnit":"ms"} with one
// complete ("ph":"X") event per span and one metadata ("ph":"M")
// thread_name event per thread. Timestamps are microseconds relative
// to the session start; self time and the free-form span argument ride
// in "args" ("self_us", "arg", "id", "parent").
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>

#include "obs/trace/tracer.h"

namespace fmtcp::obs::trace {

/// Serializes the report's records (one traceEvent per line, so the
/// file is greppable). Reports drained with capture_records=false
/// produce an empty traceEvents array.
std::string to_chrome_trace_json(const TraceReport& report);

/// Writes to_chrome_trace_json() to `path`, failing the run loudly if
/// the file cannot be opened or fully written.
void write_chrome_trace(const TraceReport& report,
                        const std::string& path);

/// Re-aggregates a Chrome trace produced by this exporter: parses the
/// "ph":"X" events and rebuilds per-span-name statistics (percentiles
/// here are exact — the file holds every retained record). Unknown or
/// malformed lines are skipped and counted.
struct ChromeTraceSummary {
  TraceReport report;                  ///< spans/counters/threads filled.
  std::uint64_t events_parsed = 0;
  std::uint64_t lines_skipped = 0;
};
ChromeTraceSummary summarize_chrome_trace(std::istream& in);

}  // namespace fmtcp::obs::trace
