#include "obs/trace/chrome_trace.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <map>
#include <vector>

#include "common/check.h"

namespace fmtcp::obs::trace {

namespace {

/// Minimal JSON string escaping for span/thread names (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Extracts the raw text after `"key":` in `line` (value up to the
/// next ',' or '}' for numbers; the quoted body for strings). Returns
/// false if the key is absent.
bool find_value(const std::string& line, const char* key,
                std::string& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  std::size_t v = at + needle.size();
  if (v >= line.size()) return false;
  if (line[v] == '"') {
    std::size_t end = v + 1;
    while (end < line.size() &&
           (line[end] != '"' || line[end - 1] == '\\')) {
      ++end;
    }
    if (end >= line.size()) return false;
    out = line.substr(v + 1, end - v - 1);
    return true;
  }
  std::size_t end = v;
  while (end < line.size() && line[end] != ',' && line[end] != '}') {
    ++end;
  }
  out = line.substr(v, end - v);
  return !out.empty();
}

bool find_double(const std::string& line, const char* key, double& out) {
  std::string raw;
  if (!find_value(line, key, raw)) return false;
  char* end = nullptr;
  out = std::strtod(raw.c_str(), &end);
  return end != raw.c_str();
}

}  // namespace

std::string to_chrome_trace_json(const TraceReport& report) {
  std::string out = "{\"traceEvents\":[\n";
  char line[512];
  bool first = true;
  for (const auto& [index, name] : report.threads) {
    std::snprintf(line, sizeof(line),
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",\n", index,
                  json_escape(name).c_str());
    out += line;
    first = false;
  }
  for (const SpanRecord& r : report.records) {
    const double ts =
        static_cast<double>(r.begin_ns - report.session_begin_ns) / 1e3;
    const double dur = static_cast<double>(r.end_ns - r.begin_ns) / 1e3;
    const double self_us = static_cast<double>(r.self_ns) / 1e3;
    std::snprintf(
        line, sizeof(line),
        "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"self_us\":%.3f,"
        "\"arg\":%llu,\"id\":%llu,\"parent\":%llu}}",
        first ? "" : ",\n", json_escape(r.name).c_str(),
        r.thread_index, ts, dur, self_us,
        static_cast<unsigned long long>(r.arg),
        static_cast<unsigned long long>(r.span_id),
        static_cast<unsigned long long>(r.parent_id));
    out += line;
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"";
  std::snprintf(line, sizeof(line),
                ",\"otherData\":{\"droppedRecords\":%llu}}\n",
                static_cast<unsigned long long>(report.dropped_records));
  out += line;
  return out;
}

void write_chrome_trace(const TraceReport& report,
                        const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "trace: cannot open '%s' for writing\n",
                 path.c_str());
    FMTCP_CHECK(file != nullptr);
  }
  const std::string json = to_chrome_trace_json(report);
  const std::size_t written =
      std::fwrite(json.data(), 1, json.size(), file);
  FMTCP_CHECK(written == json.size());
  FMTCP_CHECK(std::fclose(file) == 0);
}

ChromeTraceSummary summarize_chrome_trace(std::istream& in) {
  ChromeTraceSummary summary;
  struct Acc {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double self_us = 0.0;
    double max_us = 0.0;
    std::vector<double> durs_us;
  };
  std::map<std::string, Acc> spans;
  std::map<std::uint32_t, std::string> threads;
  double min_ts = 0.0, max_end = 0.0;
  bool any = false;

  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"ph\":\"M\"") != std::string::npos) {
      std::string name, tid_raw;
      // thread_name metadata carries the label in args.name; grab the
      // *last* "name" occurrence (the first is "thread_name" itself).
      const std::size_t args = line.find("\"args\"");
      if (args != std::string::npos &&
          find_value(line.substr(args), "name", name)) {
        double tid = 0.0;
        if (find_double(line, "tid", tid)) {
          threads[static_cast<std::uint32_t>(tid)] = name;
        }
      }
      continue;
    }
    if (line.find("\"ph\":\"X\"") == std::string::npos) {
      if (line.find("\"name\"") != std::string::npos) {
        ++summary.lines_skipped;
      }
      continue;
    }
    std::string name;
    double ts = 0.0, dur = 0.0, self_us = 0.0;
    if (!find_value(line, "name", name) ||
        !find_double(line, "ts", ts) ||
        !find_double(line, "dur", dur)) {
      ++summary.lines_skipped;
      continue;
    }
    if (!find_double(line, "self_us", self_us)) self_us = dur;
    Acc& acc = spans[name];
    ++acc.count;
    acc.total_us += dur;
    acc.self_us += self_us;
    acc.max_us = std::max(acc.max_us, dur);
    acc.durs_us.push_back(dur);
    min_ts = any ? std::min(min_ts, ts) : ts;
    max_end = any ? std::max(max_end, ts + dur) : ts + dur;
    any = true;
    ++summary.events_parsed;
  }

  summary.report.captured_records = true;
  summary.report.session_begin_ns = 0;
  summary.report.session_end_ns =
      static_cast<std::uint64_t>((max_end - min_ts) * 1e3);
  for (auto& [name, acc] : spans) {
    SpanAggregate agg;
    agg.name = name;
    agg.count = acc.count;
    agg.total_ms = acc.total_us / 1e3;
    agg.self_ms = acc.self_us / 1e3;
    agg.max_ms = acc.max_us / 1e3;
    std::sort(acc.durs_us.begin(), acc.durs_us.end());
    const auto at = [&acc](double q) {
      const std::size_t i = static_cast<std::size_t>(
          q * static_cast<double>(acc.durs_us.size() - 1));
      return acc.durs_us[i] / 1e3;
    };
    agg.p50_ms = at(0.50);
    agg.p99_ms = at(0.99);
    summary.report.spans.push_back(std::move(agg));
  }
  // `spans` is a std::map, so this emits in name order — the same
  // byte-stable ordering trace::stop() produces for live sessions.
  for (const auto& [tid, name] : threads) {
    summary.report.threads.emplace_back(tid, name);
  }
  return summary;
}

}  // namespace fmtcp::obs::trace
