// Aggregates a JSONL event timeline (EventTimeline's file sink) into
// per-subflow and per-block summaries — the timeline counterpart of
// net/trace_summary.h for packet traces.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/timeline.h"

namespace fmtcp::obs {

/// Parses one JSONL line produced by to_jsonl(). Returns false (leaving
/// `event` untouched) on malformed lines or unknown event names.
bool parse_jsonl_line(const std::string& line, TimelineEvent& event);

struct SubflowTimelineStats {
  std::uint64_t cwnd_changes = 0;
  double last_cwnd = 0.0;
  double min_cwnd = 0.0;
  double max_cwnd = 0.0;
  std::uint64_t rto_fires = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t allocations = 0;
  std::uint64_t scheduler_grants = 0;
  std::uint64_t reinjections = 0;
  std::uint64_t eat_outcomes = 0;
  /// Mean |predicted - actual| arrival error over eat_outcome events.
  double mean_abs_eat_error_s = 0.0;
};

struct TimelineSummary {
  std::uint64_t total_events = 0;
  std::map<std::string, std::uint64_t> per_type;
  std::map<std::uint32_t, SubflowTimelineStats> per_subflow;

  // Block-level aggregates (FMTCP runs).
  std::uint64_t blocks_decoded = 0;
  std::uint64_t blocks_delivered = 0;
  std::uint64_t rank_progress_events = 0;
  std::uint64_t redundant_symbols = 0;
  /// Mean symbols received per decoded block (kBlockDecoded.a).
  double mean_symbols_per_block = 0.0;
  double first_decode_s = 0.0;
  double last_decode_s = 0.0;

  double first_event_s = 0.0;
  double last_event_s = 0.0;
  std::uint64_t malformed_lines = 0;
};

/// Reads JSONL lines from `in` until EOF; malformed lines are counted,
/// not fatal.
TimelineSummary summarize_timeline(std::istream& in);

/// Human-readable multi-line report.
std::string format_timeline_summary(const TimelineSummary& summary);

}  // namespace fmtcp::obs
