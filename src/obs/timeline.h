// Structured protocol event timeline.
//
// Instrumentation points across the stack emit typed records — cwnd
// changes, RTO fires, fountain decode progress, EAT predictions,
// scheduler decisions, sim-loop progress — into one per-run timeline.
// Records land in a bounded in-memory ring (tests, post-run inspection)
// and, when a path is attached, in a JSONL file (one JSON object per
// line) for offline analysis; `tools/trace_summary --timeline` aggregates
// such files.
//
// The record is a fixed-size POD with two generic value fields; the
// meaning of `subflow`/`id`/`a`/`b` is per-type (see the field table in
// timeline.cc next to the JSONL writer, and docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/time.h"

namespace fmtcp::obs {

enum class EventType : std::uint8_t {
  kCwndChange,      ///< subflow, a=cwnd, b=ssthresh.
  kRtoFired,        ///< subflow, id=snd_una, a=rto_s, b=cwnd after.
  kFastRetransmit,  ///< subflow, id=seq, a=cwnd after, b=ssthresh after.
  kRankProgress,    ///< id=block, a=rank, b=k_hat.
  kRedundantSymbol, ///< subflow, id=block, a=rank at arrival.
  kBlockDecoded,    ///< id=block, a=symbols received, b=redundant among them.
  kBlockDelivered,  ///< id=block, a=blocks delivered so far.
  kEatPrediction,   ///< subflow, id=sample#, a=predicted arrival (abs s).
  kEatOutcome,      ///< subflow, id=sample#, a=predicted (abs s), b=actual.
  kAllocation,      ///< subflow, id=first block, a=symbols, b=block count.
  kSchedulerGrant,  ///< subflow, id=data_seq, a=data_len.
  kReinjection,     ///< subflow=target, id=data_seq, a=lost-on subflow.
  kSimProgress,     ///< a=wall ms for the last sim-second, b=events run.
};

/// Stable string tag used in the JSONL `ev` field.
const char* event_type_name(EventType type);

struct TimelineEvent {
  EventType type{};
  std::uint32_t subflow = 0;
  SimTime t = 0;
  std::uint64_t id = 0;
  double a = 0.0;
  double b = 0.0;
};

class EventTimeline {
 public:
  /// `ring_capacity` bounds the in-memory tail kept for inspection.
  explicit EventTimeline(std::size_t ring_capacity = 8192);
  ~EventTimeline();
  EventTimeline(const EventTimeline&) = delete;
  EventTimeline& operator=(const EventTimeline&) = delete;

  /// Attaches a JSONL sink, truncating `path`. Fails the run loudly
  /// (FMTCP_CHECK with the path in the message) if it cannot be opened.
  void open_jsonl(const std::string& path);

  void emit(const TimelineEvent& event);

  /// Events emitted over the run, including those evicted from the ring.
  std::uint64_t emitted() const { return emitted_; }

  /// The retained tail, oldest first.
  std::vector<TimelineEvent> recent() const;

  /// Retained events of one type, oldest first.
  std::vector<TimelineEvent> recent(EventType type) const;

  void flush();

 private:
  std::size_t capacity_;
  std::vector<TimelineEvent> ring_;
  std::size_t next_ = 0;  ///< Ring write cursor once full.
  std::uint64_t emitted_ = 0;
  std::FILE* file_ = nullptr;
};

/// Writes one event as a single JSONL line (no trailing newline) — the
/// exact format EventTimeline's file sink produces.
std::string to_jsonl(const TimelineEvent& event);

/// JSON string-body escaping (quotes, backslashes, control chars) used
/// by the JSONL writer. Exposed for tests and other JSON emitters.
std::string json_escape(const std::string& s);

/// Flushes (and fsyncs) every open timeline file sink. Installed as the
/// FMTCP_CHECK failure hook so a crashing run keeps the events it
/// emitted; safe to call at any time.
void flush_all_timelines();

}  // namespace fmtcp::obs
