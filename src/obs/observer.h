// The per-run observability context: one metrics registry plus one event
// timeline, attached to a run the way a PacketTracer is — a non-owned
// pointer threaded through the configs (Scenario.observer,
// FmtcpConnectionConfig.observer, SubflowConfig.observer, ...).
//
// Null observer (the default everywhere) means zero instrumentation
// cost beyond a pointer test at each site, so benches keep their seed
// performance unless a run opts in.
#pragma once

#include "obs/metrics.h"
#include "obs/timeline.h"

namespace fmtcp::obs {

struct Observer {
  Observer() = default;
  /// `ring_capacity` sizes the timeline's in-memory tail (tests that
  /// assert on full event history want a large one).
  explicit Observer(std::size_t ring_capacity)
      : timeline(ring_capacity) {}

  MetricsRegistry metrics;
  EventTimeline timeline;
};

}  // namespace fmtcp::obs
