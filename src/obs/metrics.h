// Run-scoped metrics registry: named counters, gauges, and fixed-bucket
// histograms, cheap enough to leave on in benches.
//
// Names are resolved to handles once, at registration; the hot path is a
// single pointer-indirected add/set with no map lookup. Handles are
// null-safe: a default-constructed handle (no registry) makes every
// operation a no-op, so instrumented components can update metrics
// unconditionally whether or not a run attached an Observer.
//
// Registration is idempotent per name: asking twice for "tcp.rto_fires"
// returns handles backed by the same slot, so per-subflow components can
// share connection-wide totals without extra wiring.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace fmtcp::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (slot_ != nullptr) *slot_ += n;
  }
  std::uint64_t value() const { return slot_ == nullptr ? 0 : *slot_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Last-value-wins floating-point metric.
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (slot_ != nullptr) *slot_ = v;
  }
  double value() const { return slot_ == nullptr ? 0.0 : *slot_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* slot) : slot_(slot) {}
  double* slot_ = nullptr;
};

/// Fixed-bucket histogram: bucket i counts samples <= bound[i]; one
/// implicit overflow bucket catches the rest. Sum and count are kept for
/// the mean.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v);

 private:
  friend class MetricsRegistry;
  struct Slot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries.
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  explicit Histogram(Slot* slot) : slot_(slot) {}
  Slot* slot_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns a handle to the named metric, creating the slot on first
  /// use. Handles stay valid for the registry's lifetime.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  /// `upper_bounds` must be strictly increasing; subsequent calls with
  /// the same name ignore the bounds and reuse the first registration.
  Histogram histogram(const std::string& name,
                      std::vector<double> upper_bounds);

  // --- Read side (tests, exporters) ---
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  /// Bucket counts (bounds.size() + 1 entries); empty if unknown.
  std::vector<std::uint64_t> histogram_counts(const std::string& name) const;

  std::size_t metric_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Serializes every metric:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"bounds":[...],"counts":[...],
  ///                          "count":N,"sum":S}}}
  std::string to_json() const;

 private:
  // Deques give stable slot addresses as metrics are added.
  std::map<std::string, std::uint64_t*> counters_;
  std::map<std::string, double*> gauges_;
  std::map<std::string, Histogram::Slot*> histograms_;
  std::deque<std::uint64_t> counter_slots_;
  std::deque<double> gauge_slots_;
  std::deque<Histogram::Slot> histogram_slots_;
};

}  // namespace fmtcp::obs
