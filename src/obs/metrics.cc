#include "obs/metrics.h"

#include <cstdio>

#include "common/check.h"

namespace fmtcp::obs {

namespace {

/// Formats a double the way the rest of the repo's JSON output does:
/// shortest round-trippable representation via %.17g is overkill for
/// metrics; %.9g keeps files readable and is exact for counters.
std::string json_double(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

}  // namespace

void Histogram::observe(double v) {
  if (slot_ == nullptr) return;
  std::size_t i = 0;
  while (i < slot_->bounds.size() && v > slot_->bounds[i]) ++i;
  ++slot_->counts[i];
  ++slot_->count;
  slot_->sum += v;
}

Counter MetricsRegistry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counter_slots_.push_back(0);
    it = counters_.emplace(name, &counter_slots_.back()).first;
  }
  return Counter(it->second);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauge_slots_.push_back(0.0);
    it = gauges_.emplace(name, &gauge_slots_.back()).first;
  }
  return Gauge(it->second);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
      FMTCP_CHECK(upper_bounds[i - 1] < upper_bounds[i]);
    }
    Histogram::Slot slot;
    slot.counts.assign(upper_bounds.size() + 1, 0);
    slot.bounds = std::move(upper_bounds);
    histogram_slots_.push_back(std::move(slot));
    it = histograms_.emplace(name, &histogram_slots_.back()).first;
  }
  return Histogram(it->second);
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : *it->second;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : *it->second;
}

std::vector<std::uint64_t> MetricsRegistry::histogram_counts(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return {};
  return it->second->counts;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, slot] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(*slot);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, slot] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + json_double(*slot);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, slot] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"bounds\":[";
    for (std::size_t i = 0; i < slot->bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += json_double(slot->bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < slot->counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(slot->counts[i]);
    }
    out += "],\"count\":" + std::to_string(slot->count) +
           ",\"sum\":" + json_double(slot->sum) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace fmtcp::obs
