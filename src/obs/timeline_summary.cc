#include "obs/timeline_summary.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <vector>

namespace fmtcp::obs {

namespace {

/// Finds `"key":` in `line` and parses the value that follows as a
/// double. Returns false if the key is absent or non-numeric.
bool find_number(const std::string& line, const char* key, double& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

bool find_string(const std::string& line, const char* key,
                 std::string& out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t start = at + needle.size();
  const std::size_t close = line.find('"', start);
  if (close == std::string::npos) return false;
  out = line.substr(start, close - start);
  return true;
}

const std::vector<EventType>& all_event_types() {
  static const std::vector<EventType> types = {
      EventType::kCwndChange,     EventType::kRtoFired,
      EventType::kFastRetransmit, EventType::kRankProgress,
      EventType::kRedundantSymbol, EventType::kBlockDecoded,
      EventType::kBlockDelivered, EventType::kEatPrediction,
      EventType::kEatOutcome,     EventType::kAllocation,
      EventType::kSchedulerGrant, EventType::kReinjection,
      EventType::kSimProgress,
  };
  return types;
}

std::string fmt_line(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

}  // namespace

bool parse_jsonl_line(const std::string& line, TimelineEvent& event) {
  std::string name;
  if (!find_string(line, "ev", name)) return false;
  bool known = false;
  TimelineEvent parsed;
  for (EventType type : all_event_types()) {
    if (name == event_type_name(type)) {
      parsed.type = type;
      known = true;
      break;
    }
  }
  if (!known) return false;

  double t = 0, sf = 0, id = 0;
  if (!find_number(line, "t", t) || !find_number(line, "sf", sf) ||
      !find_number(line, "id", id)) {
    return false;
  }
  parsed.t = from_seconds(t);
  parsed.subflow = static_cast<std::uint32_t>(sf);
  parsed.id = static_cast<std::uint64_t>(id);
  find_number(line, "a", parsed.a);
  find_number(line, "b", parsed.b);
  event = parsed;
  return true;
}

TimelineSummary summarize_timeline(std::istream& in) {
  TimelineSummary summary;
  double eat_error_sum = 0.0;
  double symbols_sum = 0.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TimelineEvent event;
    if (!parse_jsonl_line(line, event)) {
      ++summary.malformed_lines;
      continue;
    }
    const double t_s = to_seconds(event.t);
    if (summary.total_events == 0) summary.first_event_s = t_s;
    summary.last_event_s = t_s;
    ++summary.total_events;
    ++summary.per_type[event_type_name(event.type)];

    SubflowTimelineStats& sf = summary.per_subflow[event.subflow];
    switch (event.type) {
      case EventType::kCwndChange:
        if (sf.cwnd_changes == 0) {
          sf.min_cwnd = sf.max_cwnd = event.a;
        }
        ++sf.cwnd_changes;
        sf.last_cwnd = event.a;
        sf.min_cwnd = std::min(sf.min_cwnd, event.a);
        sf.max_cwnd = std::max(sf.max_cwnd, event.a);
        break;
      case EventType::kRtoFired:
        ++sf.rto_fires;
        break;
      case EventType::kFastRetransmit:
        ++sf.fast_retransmits;
        break;
      case EventType::kAllocation:
        ++sf.allocations;
        break;
      case EventType::kSchedulerGrant:
        ++sf.scheduler_grants;
        break;
      case EventType::kReinjection:
        ++sf.reinjections;
        break;
      case EventType::kEatOutcome:
        ++sf.eat_outcomes;
        eat_error_sum += std::abs(event.a - event.b);
        break;
      case EventType::kRankProgress:
        ++summary.rank_progress_events;
        break;
      case EventType::kRedundantSymbol:
        ++summary.redundant_symbols;
        break;
      case EventType::kBlockDecoded:
        if (summary.blocks_decoded == 0) summary.first_decode_s = t_s;
        summary.last_decode_s = t_s;
        ++summary.blocks_decoded;
        symbols_sum += event.a;
        break;
      case EventType::kBlockDelivered:
        ++summary.blocks_delivered;
        break;
      case EventType::kEatPrediction:
      case EventType::kSimProgress:
        break;
    }
  }

  std::uint64_t outcomes = 0;
  for (const auto& [id, sf] : summary.per_subflow) {
    outcomes += sf.eat_outcomes;
  }
  if (outcomes > 0) {
    const double mean = eat_error_sum / static_cast<double>(outcomes);
    for (auto& [id, sf] : summary.per_subflow) {
      sf.mean_abs_eat_error_s = mean;
    }
  }
  if (summary.blocks_decoded > 0) {
    summary.mean_symbols_per_block =
        symbols_sum / static_cast<double>(summary.blocks_decoded);
  }
  return summary;
}

std::string format_timeline_summary(const TimelineSummary& summary) {
  std::string out;
  out += fmt_line("timeline: %llu events over [%.3fs, %.3fs]\n",
                  static_cast<unsigned long long>(summary.total_events),
                  summary.first_event_s, summary.last_event_s);
  if (summary.malformed_lines > 0) {
    out += fmt_line("  (%llu malformed lines skipped)\n",
                    static_cast<unsigned long long>(summary.malformed_lines));
  }
  out += "\nevents by type:\n";
  for (const auto& [name, count] : summary.per_type) {
    out += fmt_line("  %-16s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
  }
  out += "\nper subflow:\n";
  for (const auto& [id, sf] : summary.per_subflow) {
    // Subflow 0 also accumulates block/sim events (they carry sf=0);
    // only print rows that saw subflow-scoped activity.
    if (sf.cwnd_changes == 0 && sf.rto_fires == 0 &&
        sf.fast_retransmits == 0 && sf.allocations == 0 &&
        sf.scheduler_grants == 0 && sf.reinjections == 0) {
      continue;
    }
    out += fmt_line(
        "  sf%u: cwnd %llu changes (last %.1f, min %.1f, max %.1f), "
        "%llu RTO, %llu fast-rtx\n",
        id, static_cast<unsigned long long>(sf.cwnd_changes), sf.last_cwnd,
        sf.min_cwnd, sf.max_cwnd,
        static_cast<unsigned long long>(sf.rto_fires),
        static_cast<unsigned long long>(sf.fast_retransmits));
    if (sf.allocations > 0 || sf.scheduler_grants > 0 ||
        sf.reinjections > 0) {
      out += fmt_line(
          "       %llu allocations, %llu grants, %llu reinjections\n",
          static_cast<unsigned long long>(sf.allocations),
          static_cast<unsigned long long>(sf.scheduler_grants),
          static_cast<unsigned long long>(sf.reinjections));
    }
    if (sf.eat_outcomes > 0) {
      out += fmt_line(
          "       EAT: %llu outcomes, mean |error| %.3f s\n",
          static_cast<unsigned long long>(sf.eat_outcomes),
          sf.mean_abs_eat_error_s);
    }
  }
  if (summary.blocks_decoded > 0) {
    out += fmt_line(
        "\nblocks: %llu decoded in [%.3fs, %.3fs] (%llu delivered), "
        "%.1f symbols/block, %llu redundant symbols, "
        "%llu rank-progress events\n",
        static_cast<unsigned long long>(summary.blocks_decoded),
        summary.first_decode_s, summary.last_decode_s,
        static_cast<unsigned long long>(summary.blocks_delivered),
        summary.mean_symbols_per_block,
        static_cast<unsigned long long>(summary.redundant_symbols),
        static_cast<unsigned long long>(summary.rank_progress_events));
  }
  return out;
}

}  // namespace fmtcp::obs
