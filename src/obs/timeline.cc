#include "obs/timeline.h"

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace fmtcp::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kCwndChange:
      return "cwnd_change";
    case EventType::kRtoFired:
      return "rto_fired";
    case EventType::kFastRetransmit:
      return "fast_retransmit";
    case EventType::kRankProgress:
      return "rank_progress";
    case EventType::kRedundantSymbol:
      return "redundant_symbol";
    case EventType::kBlockDecoded:
      return "block_decoded";
    case EventType::kBlockDelivered:
      return "block_delivered";
    case EventType::kEatPrediction:
      return "eat_prediction";
    case EventType::kEatOutcome:
      return "eat_outcome";
    case EventType::kAllocation:
      return "allocation";
    case EventType::kSchedulerGrant:
      return "scheduler_grant";
    case EventType::kReinjection:
      return "reinjection";
    case EventType::kSimProgress:
      return "sim_progress";
  }
  return "?";
}

// Every record serializes with the same uniform keys so one parser reads
// every type; the per-type meaning of sf/id/a/b is documented on
// EventType. Example line:
//   {"ev":"cwnd_change","t":1.234000000,"sf":1,"id":0,"a":12.5,"b":64}
std::string to_jsonl(const TimelineEvent& event) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "{\"ev\":\"%s\",\"t\":%.9f,\"sf\":%u,\"id\":%llu,"
                "\"a\":%.9g,\"b\":%.9g}",
                event_type_name(event.type), to_seconds(event.t),
                event.subflow, static_cast<unsigned long long>(event.id),
                event.a, event.b);
  return buffer;
}

EventTimeline::EventTimeline(std::size_t ring_capacity)
    : capacity_(ring_capacity) {
  FMTCP_CHECK(capacity_ > 0);
  ring_.reserve(capacity_);
}

EventTimeline::~EventTimeline() {
  if (file_ != nullptr) std::fclose(file_);
}

void EventTimeline::open_jsonl(const std::string& path) {
  FMTCP_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "timeline: cannot open '%s' for writing: %s\n",
                 path.c_str(), std::strerror(errno));
    FMTCP_CHECK(file_ != nullptr);
  }
}

void EventTimeline::emit(const TimelineEvent& event) {
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  if (file_ != nullptr) {
    const std::string line = to_jsonl(event);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
  }
}

std::vector<TimelineEvent> EventTimeline::recent() const {
  std::vector<TimelineEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(next_));
  }
  return out;
}

std::vector<TimelineEvent> EventTimeline::recent(EventType type) const {
  std::vector<TimelineEvent> out;
  for (const TimelineEvent& event : recent()) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

void EventTimeline::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace fmtcp::obs
