#include "obs/timeline.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"

namespace fmtcp::obs {

namespace {

// Open file sinks, so a failed FMTCP_CHECK can flush them before the
// process aborts (see flush_all_timelines). Guarded: timelines are
// single-threaded, but independent runs on different threads may each
// own one.
Mutex g_sinks_mutex;
std::vector<std::FILE*>& sinks() FMTCP_REQUIRES(g_sinks_mutex) {
  static std::vector<std::FILE*>* files = new std::vector<std::FILE*>;
  return *files;
}

void register_sink(std::FILE* file) FMTCP_EXCLUDES(g_sinks_mutex) {
  MutexLock lock(g_sinks_mutex);
  sinks().push_back(file);
  detail::check_failure_hook().store(&flush_all_timelines);
}

void unregister_sink(std::FILE* file) FMTCP_EXCLUDES(g_sinks_mutex) {
  MutexLock lock(g_sinks_mutex);
  auto& files = sinks();
  files.erase(std::remove(files.begin(), files.end(), file),
              files.end());
}

}  // namespace

void flush_all_timelines() {
  MutexLock lock(g_sinks_mutex);
  for (std::FILE* file : sinks()) {
    std::fflush(file);
    fsync(fileno(file));
  }
}

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kCwndChange:
      return "cwnd_change";
    case EventType::kRtoFired:
      return "rto_fired";
    case EventType::kFastRetransmit:
      return "fast_retransmit";
    case EventType::kRankProgress:
      return "rank_progress";
    case EventType::kRedundantSymbol:
      return "redundant_symbol";
    case EventType::kBlockDecoded:
      return "block_decoded";
    case EventType::kBlockDelivered:
      return "block_delivered";
    case EventType::kEatPrediction:
      return "eat_prediction";
    case EventType::kEatOutcome:
      return "eat_outcome";
    case EventType::kAllocation:
      return "allocation";
    case EventType::kSchedulerGrant:
      return "scheduler_grant";
    case EventType::kReinjection:
      return "reinjection";
    case EventType::kSimProgress:
      return "sim_progress";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Every record serializes with the same uniform keys so one parser reads
// every type; the per-type meaning of sf/id/a/b is documented on
// EventType. Example line:
//   {"ev":"cwnd_change","t":1.234000000,"sf":1,"id":0,"a":12.5,"b":64}
std::string to_jsonl(const TimelineEvent& event) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "{\"ev\":\"%s\",\"t\":%.9f,\"sf\":%u,\"id\":%llu,"
                "\"a\":%.9g,\"b\":%.9g}",
                json_escape(event_type_name(event.type)).c_str(),
                to_seconds(event.t), event.subflow,
                static_cast<unsigned long long>(event.id), event.a,
                event.b);
  return buffer;
}

EventTimeline::EventTimeline(std::size_t ring_capacity)
    : capacity_(ring_capacity) {
  FMTCP_CHECK(capacity_ > 0);
  ring_.reserve(capacity_);
}

EventTimeline::~EventTimeline() {
  if (file_ != nullptr) {
    unregister_sink(file_);
    std::fclose(file_);
  }
}

void EventTimeline::open_jsonl(const std::string& path) {
  FMTCP_CHECK(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "timeline: cannot open '%s' for writing: %s\n",
                 path.c_str(), std::strerror(errno));
    FMTCP_CHECK(file_ != nullptr);
  }
  // Line buffering keeps the file at a record boundary at all times: a
  // fully-buffered sink flushes mid-line whenever the 4 KiB buffer
  // happens to fill, so a crashed run used to truncate its last record.
  std::setvbuf(file_, nullptr, _IOLBF, 1 << 12);
  register_sink(file_);
}

void EventTimeline::emit(const TimelineEvent& event) {
  ++emitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  if (file_ != nullptr) {
    // One fwrite per complete line (newline included) so the
    // line-buffered stream hits the kernel only at record boundaries.
    std::string line = to_jsonl(event);
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), file_);
  }
}

std::vector<TimelineEvent> EventTimeline::recent() const {
  std::vector<TimelineEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<long>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(next_));
  }
  return out;
}

std::vector<TimelineEvent> EventTimeline::recent(EventType type) const {
  std::vector<TimelineEvent> out;
  for (const TimelineEvent& event : recent()) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

void EventTimeline::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace fmtcp::obs
