// Paper Table I: the eight subflow-2 parameter sets used throughout the
// evaluation (subflow 1 is always 100 ms delay, lossless).
#pragma once

#include <array>

#include "harness/scenario.h"

namespace fmtcp::harness {

/// Table I, test cases 1..8 (index 0..7).
///   delay (ms): 100 100 100 100  25  50 100 150
///   loss  (%):    2   5  10  15  10  10  10  10
const std::array<PathSpec, 8>& table1_cases();

/// A Scenario for test case `index` (0-based), with the paper's fixed
/// subflow-1 parameters.
Scenario table1_scenario(std::size_t index);

}  // namespace fmtcp::harness
