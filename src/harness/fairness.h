// Shared-bottleneck fairness experiments (paper §III-A / §II: FMTCP's
// coding must not "do harm to the fairness of transmission").
//
// Two single-path connections share one bottleneck link; each runs
// either FMTCP or a plain TCP stream (the MPTCP machinery with a single
// subflow). Packets carry a connection flow_tag, demultiplexed at both
// ends. The result reports each connection's goodput and Jain's
// fairness index.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "harness/scenario.h"

namespace fmtcp::harness {

struct FairnessConfig {
  Protocol protocol_a = Protocol::kFmtcp;
  Protocol protocol_b = Protocol::kMptcp;  ///< kMptcp == plain TCP here.
  double bottleneck_Bps = 0.625e6;
  SimTime one_way_delay = from_ms(100);
  double loss_rate = 0.0;  ///< Random loss on the bottleneck.
  std::size_t queue_packets = 50;
  SimTime duration = 100 * kSecond;
  std::uint64_t seed = 1;
};

struct FairnessResult {
  double goodput_a_MBps = 0.0;
  double goodput_b_MBps = 0.0;

  /// Jain's index over the two goodputs: 1.0 = perfectly fair, 0.5 =
  /// one flow starved.
  double jain_index() const;

  /// Connection A's share of the aggregate goodput.
  double share_a() const;
};

/// Runs the two connections head to head over the shared bottleneck.
/// Only kFmtcp and kMptcp are supported per side.
FairnessResult run_fairness(const FairnessConfig& config);

}  // namespace fmtcp::harness
