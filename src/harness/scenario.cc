#include "harness/scenario.h"

#include "common/check.h"

namespace fmtcp::harness {

net::PathConfig Scenario::path_config(const PathSpec& spec) const {
  net::PathConfig config;
  config.one_way_delay = from_seconds(spec.delay_ms / 1e3);
  config.loss_rate = spec.loss;
  config.bandwidth_Bps = bandwidth_Bps;
  config.queue_packets = queue_packets;
  return config;
}

const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kFmtcp:
      return "FMTCP";
    case Protocol::kMptcp:
      return "IETF-MPTCP";
    case Protocol::kHmtp:
      return "HMTP";
    case Protocol::kFixedRate:
      return "FixedRate";
  }
  return "?";
}

ProtocolOptions ProtocolOptions::defaults() {
  ProtocolOptions options;

  options.fmtcp.block_symbols = 128;
  options.fmtcp.symbol_bytes = 160;
  options.fmtcp.symbol_header_bytes = 12;
  options.fmtcp.delta_hat = 0.01;
  options.fmtcp.max_pending_blocks = 64;
  options.fmtcp.carry_payload = true;

  options.fixed_rate.block_symbols = options.fmtcp.block_symbols;
  options.fixed_rate.symbol_bytes = options.fmtcp.symbol_bytes;
  options.fixed_rate.symbol_header_bytes =
      options.fmtcp.symbol_header_bytes;
  options.fixed_rate.assumed_loss = 0.02;
  options.fixed_rate.max_pending_blocks =
      options.fmtcp.max_pending_blocks;

  // 7 symbols of 172 wire bytes per packet.
  options.subflow.mss_payload = 7 * options.fmtcp.symbol_wire_bytes();
  // Bound exponential backoff (ns-2-style): multi-minute RTOs would park
  // segments on a dead path far longer than any experiment horizon.
  options.subflow.rtt.max_rto = 4 * kSecond;
  // ns-2-style window_ cap, sized to the per-path BDP (~104 packets at
  // 5 Mb/s x 200 ms) plus small queue headroom. Without it a sender with
  // no connection-level flow control (FMTCP) fills the drop-tail queue
  // and the self-inflicted RTT inflation distorts the delay metrics.
  options.subflow.reno.max_cwnd = 110.0;
  options.subflow.cubic.max_cwnd = 110.0;
  return options;
}

}  // namespace fmtcp::harness
