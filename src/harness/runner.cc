#include "harness/runner.h"

#include <memory>

#include "baselines/fixed_rate.h"
#include "baselines/hmtp.h"
#include "common/check.h"
#include "core/connection.h"
#include "mptcp/connection.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace fmtcp::harness {

namespace {

void collect_subflow(const tcp::Subflow& subflow, RunResult& result) {
  SubflowStats stats;
  stats.segments_sent = subflow.segments_sent();
  stats.retransmissions = subflow.retransmissions();
  stats.timeouts = subflow.timeouts();
  stats.fast_retransmits = subflow.fast_retransmits();
  stats.final_cwnd = subflow.cwnd();
  stats.loss_estimate = subflow.loss_estimate();
  result.subflows.push_back(stats);
}

void collect_common(const metrics::GoodputMeter& goodput,
                    const metrics::BlockDelayRecorder& delays,
                    const Scenario& scenario, RunResult& result) {
  result.delivered_bytes = goodput.total_bytes();
  result.goodput_MBps = goodput.mean_rate_MBps(scenario.duration);
  for (std::size_t i = 0; i < goodput.series().bin_count(); ++i) {
    result.goodput_series_MBps.push_back(goodput.series().rate_at(i) / 1e6);
  }
  result.blocks_completed = delays.completed_blocks();
  result.mean_delay_ms = delays.mean_delay_ms();
  result.jitter_ms = delays.jitter_ms();
  result.stddev_delay_ms = delays.stddev_delay_ms();
  result.max_delay_ms = delays.max_delay_ms();
  result.block_delays_ms = delays.delays_ms_in_order();
}

net::Topology build_topology(sim::Simulator& simulator,
                             const Scenario& scenario) {
  net::Topology topology(
      simulator,
      {scenario.path_config(scenario.path1),
       scenario.path_config(scenario.path2)});
  if (!scenario.path2_loss_schedule.empty()) {
    topology.path(1).set_forward_loss(
        std::make_unique<net::TimeVaryingLoss>(
            scenario.path2_loss_schedule));
  }
  if (scenario.tracer != nullptr) {
    for (std::size_t i = 0; i < topology.path_count(); ++i) {
      topology.path(i).forward().set_tracer(
          scenario.tracer, static_cast<std::uint32_t>(2 * i));
      topology.path(i).reverse().set_tracer(
          scenario.tracer, static_cast<std::uint32_t>(2 * i + 1));
    }
  }
  return topology;
}

}  // namespace

double RunResult::coding_overhead(std::uint32_t block_symbols) const {
  if (blocks_completed == 0 || symbols_sent == 0) return 0.0;
  const double needed = static_cast<double>(blocks_completed) *
                        static_cast<double>(block_symbols);
  return static_cast<double>(symbols_sent) / needed - 1.0;
}

RunResult run_scenario(Protocol protocol, const Scenario& scenario,
                       const ProtocolOptions& options) {
  sim::Simulator simulator(scenario.seed);
  net::Topology topology = build_topology(simulator, scenario);

  RunResult result;
  result.protocol = protocol;

  switch (protocol) {
    case Protocol::kFmtcp: {
      core::FmtcpConnectionConfig config;
      config.params = options.fmtcp;
      config.subflow = options.subflow;
      config.subflow.enable_sack = options.sack;
      config.receiver.delayed_acks = options.delayed_acks;
      config.use_lia = options.fmtcp_use_lia;
      config.goodput_bin = options.goodput_bin;
      core::FmtcpConnection connection(simulator, topology, config);
      connection.start();
      simulator.run_until(scenario.duration);
      collect_common(connection.goodput(), connection.block_delays(),
                     scenario, result);
      for (std::size_t i = 0; i < connection.subflow_count(); ++i) {
        collect_subflow(connection.subflow(i), result);
      }
      result.redundant_symbols = connection.receiver().redundant_symbols();
      result.symbols_sent = connection.sender().blocks().total_symbols_sent();
      result.payload_ok = connection.receiver().payload_verified();
      break;
    }

    case Protocol::kMptcp: {
      mptcp::MptcpConnectionConfig config;
      config.subflow = options.subflow;
      config.subflow.enable_sack = options.sack;
      config.sender.segment_bytes = options.subflow.mss_payload;
      config.sender.metric_block_bytes = options.fmtcp.block_bytes();
      config.sender.scheduler = options.mptcp_scheduler;
      config.sender.enable_reinjection = options.mptcp_reinjection;
      config.receiver.delayed_acks = options.delayed_acks;
      config.receive_buffer_bytes = options.mptcp_receive_buffer;
      config.use_lia = options.mptcp_use_lia;
      config.goodput_bin = options.goodput_bin;
      mptcp::MptcpConnection connection(simulator, topology, config);
      connection.start();
      simulator.run_until(scenario.duration);
      collect_common(connection.goodput(), connection.block_delays(),
                     scenario, result);
      for (std::size_t i = 0; i < connection.subflow_count(); ++i) {
        collect_subflow(connection.subflow(i), result);
      }
      break;
    }

    case Protocol::kHmtp: {
      baselines::HmtpConnectionConfig config;
      config.params = options.fmtcp;
      config.subflow = options.subflow;
      config.goodput_bin = options.goodput_bin;
      baselines::HmtpConnection connection(simulator, topology, config);
      connection.start();
      simulator.run_until(scenario.duration);
      collect_common(connection.goodput(), connection.block_delays(),
                     scenario, result);
      collect_subflow(connection.subflow(0), result);
      collect_subflow(connection.subflow(1), result);
      result.redundant_symbols = connection.receiver().redundant_symbols();
      result.symbols_sent =
          connection.sender().blocks().total_symbols_sent();
      result.payload_ok = connection.receiver().payload_verified();
      break;
    }

    case Protocol::kFixedRate: {
      baselines::FixedRateConnectionConfig config;
      config.params = options.fixed_rate;
      config.subflow = options.subflow;
      config.goodput_bin = options.goodput_bin;
      baselines::FixedRateConnection connection(simulator, topology,
                                                config);
      connection.start();
      simulator.run_until(scenario.duration);
      collect_common(connection.goodput(), connection.block_delays(),
                     scenario, result);
      result.redundant_symbols = connection.receiver().redundant_symbols();
      result.symbols_sent = connection.sender().symbols_sent();
      break;
    }
  }
  return result;
}

RunResult run_scenario(Protocol protocol, const Scenario& scenario) {
  return run_scenario(protocol, scenario, ProtocolOptions::defaults());
}

}  // namespace fmtcp::harness
