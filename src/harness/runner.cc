#include "harness/runner.h"

#include <algorithm>
#include <chrono>
#include <memory>

#include "baselines/fixed_rate.h"
#include "baselines/hmtp.h"
#include "common/check.h"
#include "core/connection.h"
#include "mptcp/connection.h"
#include "net/topology.h"
#include "obs/trace/span.h"
#include "sim/simulator.h"

namespace fmtcp::harness {

namespace {

void collect_subflow(const tcp::Subflow& subflow, RunResult& result) {
  SubflowStats stats;
  stats.segments_sent = subflow.segments_sent();
  stats.retransmissions = subflow.retransmissions();
  stats.timeouts = subflow.timeouts();
  stats.fast_retransmits = subflow.fast_retransmits();
  stats.final_cwnd = subflow.cwnd();
  stats.loss_estimate = subflow.loss_estimate();
  result.subflows.push_back(stats);
}

void collect_common(const metrics::GoodputMeter& goodput,
                    const metrics::BlockDelayRecorder& delays,
                    const Scenario& scenario, RunResult& result) {
  result.delivered_bytes = goodput.total_bytes();
  result.goodput_MBps = goodput.mean_rate_MBps(scenario.duration);
  for (std::size_t i = 0; i < goodput.series().bin_count(); ++i) {
    result.goodput_series_MBps.push_back(goodput.series().rate_at(i) / 1e6);
  }
  result.blocks_completed = delays.completed_blocks();
  result.mean_delay_ms = delays.mean_delay_ms();
  result.jitter_ms = delays.jitter_ms();
  result.stddev_delay_ms = delays.stddev_delay_ms();
  result.max_delay_ms = delays.max_delay_ms();
  result.block_delays_ms = delays.delays_ms_in_order();
}

/// Runs the event loop for scenario.duration. With an observer, pauses
/// at each sim-second boundary to emit a kSimProgress record pairing
/// wall-clock cost with events executed — the event-loop profile.
void run_clock(sim::Simulator& simulator, const Scenario& scenario) {
  obs::Observer* obs = scenario.observer;
  if (obs == nullptr) {
    simulator.run_until(scenario.duration);
    return;
  }
  // NOLINT-DETERMINISM(feeds only the kSimProgress profiling record)
  using Clock = std::chrono::steady_clock;
  std::uint64_t last_events = simulator.scheduler().executed_count();
  Clock::time_point last_wall = Clock::now();
  std::uint64_t second = 0;
  SimTime t = std::min<SimTime>(kSecond, scenario.duration);
  while (true) {
    simulator.run_until(t);
    const Clock::time_point wall = Clock::now();
    const std::uint64_t events = simulator.scheduler().executed_count();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(wall - last_wall)
            .count();
    obs->timeline.emit({obs::EventType::kSimProgress, 0, simulator.now(),
                        second++, wall_ms,
                        static_cast<double>(events - last_events)});
    last_events = events;
    last_wall = wall;
    if (t >= scenario.duration) break;
    t = std::min<SimTime>(t + kSecond, scenario.duration);
  }
}

/// Copies the scheduler's per-tag dispatch counts into sim.events.*
/// counters and the buffer pool's lifetime stats into bufferpool.*
/// gauges so --metrics-json captures both profiles.
void export_dispatch_profile(sim::Simulator& simulator,
                             const Scenario& scenario) {
  if (scenario.observer == nullptr) return;
  for (const auto& [tag, count] :
       simulator.scheduler().dispatch_profile()) {
    scenario.observer->metrics.counter("sim.events." + tag).inc(count);
  }
  const BufferPool::Stats pool = simulator.buffer_pool().stats();
  obs::MetricsRegistry& metrics = scenario.observer->metrics;
  metrics.gauge("bufferpool.acquired").set(static_cast<double>(pool.acquired));
  metrics.gauge("bufferpool.reused").set(static_cast<double>(pool.reused));
  metrics.gauge("bufferpool.allocated")
      .set(static_cast<double>(pool.allocated));
  metrics.gauge("bufferpool.released").set(static_cast<double>(pool.released));
  metrics.gauge("bufferpool.dropped").set(static_cast<double>(pool.dropped));
  metrics.gauge("bufferpool.outstanding")
      .set(static_cast<double>(pool.outstanding));
  metrics.gauge("bufferpool.high_water")
      .set(static_cast<double>(pool.high_water));
  metrics.gauge("bufferpool.free").set(static_cast<double>(pool.free));
  scenario.observer->timeline.flush();
}

net::Topology build_topology(sim::Simulator& simulator,
                             const Scenario& scenario) {
  net::Topology topology(
      simulator,
      {scenario.path_config(scenario.path1),
       scenario.path_config(scenario.path2)});
  if (!scenario.path2_loss_schedule.empty()) {
    topology.path(1).set_forward_loss(
        std::make_unique<net::TimeVaryingLoss>(
            scenario.path2_loss_schedule));
  }
  if (scenario.tracer != nullptr) {
    for (std::size_t i = 0; i < topology.path_count(); ++i) {
      topology.path(i).forward().set_tracer(
          scenario.tracer, static_cast<std::uint32_t>(2 * i));
      topology.path(i).reverse().set_tracer(
          scenario.tracer, static_cast<std::uint32_t>(2 * i + 1));
    }
  }
  return topology;
}

}  // namespace

double RunResult::coding_overhead(std::uint32_t block_symbols) const {
  if (blocks_completed == 0 || symbols_sent == 0) return 0.0;
  const double needed = static_cast<double>(blocks_completed) *
                        static_cast<double>(block_symbols);
  return static_cast<double>(symbols_sent) / needed - 1.0;
}

RunResult run_scenario(Protocol protocol, const Scenario& scenario,
                       const ProtocolOptions& options) {
  // One cell = one simulation. The phase spans below (setup / sim /
  // collect / teardown) are what the sweep profiler aggregates to
  // explain where parallel sweeps spend their time; simulator and
  // topology destruction lands in sweep.cell self time.
  FMTCP_SPAN_ARG("sweep.cell", scenario.seed);
  sim::Simulator simulator(scenario.seed);
  // Per-tag dispatch counting costs a scan per event; only pay for it
  // when someone is attached to read the profile.
  simulator.scheduler().set_profiling(scenario.observer != nullptr);
  net::Topology topology = build_topology(simulator, scenario);

  RunResult result;
  result.protocol = protocol;
  // NOLINT-DETERMINISM(wall_seconds diagnostic; no result derives from it)
  const auto wall_start = std::chrono::steady_clock::now();

  switch (protocol) {
    case Protocol::kFmtcp: {
      std::unique_ptr<core::FmtcpConnection> connection;
      {
        FMTCP_SPAN("sweep.cell.setup");
        core::FmtcpConnectionConfig config;
        config.params = options.fmtcp;
        config.subflow = options.subflow;
        config.subflow.enable_sack = options.sack;
        config.receiver.delayed_acks = options.delayed_acks;
        config.use_lia = options.fmtcp_use_lia;
        config.goodput_bin = options.goodput_bin;
        config.observer = scenario.observer;
        connection = std::make_unique<core::FmtcpConnection>(
            simulator, topology, config);
        connection->start();
      }
      {
        FMTCP_SPAN("sweep.cell.sim");
        run_clock(simulator, scenario);
      }
      {
        FMTCP_SPAN("sweep.cell.collect");
        collect_common(connection->goodput(), connection->block_delays(),
                       scenario, result);
        for (std::size_t i = 0; i < connection->subflow_count(); ++i) {
          collect_subflow(connection->subflow(i), result);
        }
        result.redundant_symbols =
            connection->receiver().redundant_symbols();
        result.symbols_sent =
            connection->sender().blocks().total_symbols_sent();
        result.payload_ok = connection->receiver().payload_verified();
      }
      {
        FMTCP_SPAN("sweep.cell.teardown");
        connection.reset();
      }
      break;
    }

    case Protocol::kMptcp: {
      std::unique_ptr<mptcp::MptcpConnection> connection;
      {
        FMTCP_SPAN("sweep.cell.setup");
        mptcp::MptcpConnectionConfig config;
        config.subflow = options.subflow;
        config.subflow.enable_sack = options.sack;
        config.sender.segment_bytes = options.subflow.mss_payload;
        config.sender.metric_block_bytes = options.fmtcp.block_bytes();
        config.sender.scheduler = options.mptcp_scheduler;
        config.sender.enable_reinjection = options.mptcp_reinjection;
        config.receiver.delayed_acks = options.delayed_acks;
        config.receive_buffer_bytes = options.mptcp_receive_buffer;
        config.use_lia = options.mptcp_use_lia;
        config.goodput_bin = options.goodput_bin;
        config.observer = scenario.observer;
        connection = std::make_unique<mptcp::MptcpConnection>(
            simulator, topology, config);
        connection->start();
      }
      {
        FMTCP_SPAN("sweep.cell.sim");
        run_clock(simulator, scenario);
      }
      {
        FMTCP_SPAN("sweep.cell.collect");
        collect_common(connection->goodput(), connection->block_delays(),
                       scenario, result);
        for (std::size_t i = 0; i < connection->subflow_count(); ++i) {
          collect_subflow(connection->subflow(i), result);
        }
      }
      {
        FMTCP_SPAN("sweep.cell.teardown");
        connection.reset();
      }
      break;
    }

    case Protocol::kHmtp: {
      std::unique_ptr<baselines::HmtpConnection> connection;
      {
        FMTCP_SPAN("sweep.cell.setup");
        baselines::HmtpConnectionConfig config;
        config.params = options.fmtcp;
        config.subflow = options.subflow;
        config.subflow.observer = scenario.observer;
        config.goodput_bin = options.goodput_bin;
        connection = std::make_unique<baselines::HmtpConnection>(
            simulator, topology, config);
        connection->start();
      }
      {
        FMTCP_SPAN("sweep.cell.sim");
        run_clock(simulator, scenario);
      }
      {
        FMTCP_SPAN("sweep.cell.collect");
        collect_common(connection->goodput(), connection->block_delays(),
                       scenario, result);
        collect_subflow(connection->subflow(0), result);
        collect_subflow(connection->subflow(1), result);
        result.redundant_symbols =
            connection->receiver().redundant_symbols();
        result.symbols_sent =
            connection->sender().blocks().total_symbols_sent();
        result.payload_ok = connection->receiver().payload_verified();
      }
      {
        FMTCP_SPAN("sweep.cell.teardown");
        connection.reset();
      }
      break;
    }

    case Protocol::kFixedRate: {
      std::unique_ptr<baselines::FixedRateConnection> connection;
      {
        FMTCP_SPAN("sweep.cell.setup");
        baselines::FixedRateConnectionConfig config;
        config.params = options.fixed_rate;
        config.subflow = options.subflow;
        config.subflow.observer = scenario.observer;
        config.goodput_bin = options.goodput_bin;
        connection = std::make_unique<baselines::FixedRateConnection>(
            simulator, topology, config);
        connection->start();
      }
      {
        FMTCP_SPAN("sweep.cell.sim");
        run_clock(simulator, scenario);
      }
      {
        FMTCP_SPAN("sweep.cell.collect");
        collect_common(connection->goodput(), connection->block_delays(),
                       scenario, result);
        result.redundant_symbols =
            connection->receiver().redundant_symbols();
        result.symbols_sent = connection->sender().symbols_sent();
      }
      {
        FMTCP_SPAN("sweep.cell.teardown");
        connection.reset();
      }
      break;
    }
  }
  result.sim_events = simulator.scheduler().executed_count();
  result.wall_seconds =
      // NOLINT-DETERMINISM(wall_seconds diagnostic; no result derives from it)
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  export_dispatch_profile(simulator, scenario);
  return result;
}

RunResult run_scenario(Protocol protocol, const Scenario& scenario) {
  return run_scenario(protocol, scenario, ProtocolOptions::defaults());
}

}  // namespace fmtcp::harness
