// Console table/series printers used by the bench binaries to emit the
// same rows and series the paper's figures report.
#pragma once

#include <string>
#include <vector>

namespace fmtcp::harness {

/// Prints "== title ==" with surrounding spacing.
void print_header(const std::string& title);

/// Prints a fixed-width table: `columns` headers, then each row (values
/// already formatted as strings).
void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows);

/// Prints a numbered series "label[i] = value" with one decimal index
/// column, e.g. for a goodput time series or per-block delays.
void print_series(const std::string& x_label, const std::string& y_label,
                  const std::vector<double>& xs,
                  const std::vector<double>& ys);

/// Formats a double with `digits` decimals.
std::string fmt(double value, int digits = 2);

}  // namespace fmtcp::harness
