#include "harness/table1.h"

#include "common/check.h"

namespace fmtcp::harness {

const std::array<PathSpec, 8>& table1_cases() {
  static const std::array<PathSpec, 8> kCases = {{
      {100.0, 0.02},
      {100.0, 0.05},
      {100.0, 0.10},
      {100.0, 0.15},
      {25.0, 0.10},
      {50.0, 0.10},
      {100.0, 0.10},
      {150.0, 0.10},
  }};
  return kCases;
}

Scenario table1_scenario(std::size_t index) {
  FMTCP_CHECK(index < table1_cases().size());
  Scenario scenario;
  scenario.path1 = {100.0, 0.0};
  scenario.path2 = table1_cases()[index];
  scenario.seed = 1000 + index;
  return scenario;
}

}  // namespace fmtcp::harness
