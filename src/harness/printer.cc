#include "harness/printer.h"

#include <cstdio>

#include "common/check.h"

namespace fmtcp::harness {

void print_header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void print_table(const std::vector<std::string>& columns,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths;
  widths.reserve(columns.size());
  for (const std::string& c : columns) widths.push_back(c.size());
  for (const auto& row : rows) {
    FMTCP_CHECK(row.size() == columns.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  };

  print_row(columns);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows) print_row(row);
}

void print_series(const std::string& x_label, const std::string& y_label,
                  const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  FMTCP_CHECK(xs.size() == ys.size());
  std::printf("%s\t%s\n", x_label.c_str(), y_label.c_str());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("%.3f\t%.4f\n", xs[i], ys[i]);
  }
}

std::string fmt(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace fmtcp::harness
