// Experiment configuration shared by benches, examples, and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/fixed_rate.h"
#include "core/params.h"
#include "mptcp/scheduler.h"
#include "net/loss_model.h"
#include "net/path.h"
#include "net/trace.h"
#include "obs/observer.h"
#include "tcp/subflow.h"

namespace fmtcp::harness {

/// One path's quality, in the paper's Table-I units.
struct PathSpec {
  double delay_ms = 100.0;  ///< One-way propagation delay.
  double loss = 0.0;        ///< i.i.d. loss rate (data direction).
};

/// A full experiment setup: the paper's two-disjoint-path topology with
/// subflow 1 fixed and subflow 2 swept.
struct Scenario {
  PathSpec path1{100.0, 0.0};
  PathSpec path2{100.0, 0.02};

  /// Per-path bandwidth in bytes/second (default 5 Mb/s: a wireless-ish
  /// access link whose BDP the congestion window actually reaches, so
  /// congestion and loss dynamics both matter).
  double bandwidth_Bps = 0.625e6;
  std::size_t queue_packets = 100;

  SimTime duration = 100 * kSecond;
  std::uint64_t seed = 1;

  /// Optional time-varying loss schedule for path 2 (Fig. 4 surges);
  /// empty = constant path2.loss.
  std::vector<net::TimeVaryingLoss::Step> path2_loss_schedule;

  /// Optional packet tracer (not owned) attached to every link: forward
  /// links get ids 2*path, reverse links 2*path+1.
  net::PacketTracer* tracer = nullptr;

  /// Optional observability sink (not owned): metrics and timeline
  /// events from every layer of the run, plus per-sim-second event-loop
  /// progress records and a scheduler dispatch profile (sim.events.*
  /// counters). Null = off, with near-zero overhead.
  obs::Observer* observer = nullptr;

  net::PathConfig path_config(const PathSpec& spec) const;
};

enum class Protocol { kFmtcp, kMptcp, kHmtp, kFixedRate };

const char* protocol_name(Protocol protocol);

/// Knobs for every protocol, with defaults giving a like-for-like
/// comparison (equal packet sizes, equal metric block size).
struct ProtocolOptions {
  core::FmtcpParams fmtcp;               ///< Also used by HMTP.
  baselines::FixedRateParams fixed_rate;
  tcp::SubflowConfig subflow;
  std::size_t mptcp_receive_buffer = 128 * 1024;
  mptcp::SchedulerPolicy mptcp_scheduler =
      mptcp::SchedulerPolicy::kOpportunistic;
  bool mptcp_use_lia = false;
  /// Extensions (all off at the paper's baseline operating point).
  bool mptcp_reinjection = false;
  bool fmtcp_use_lia = false;
  bool sack = false;
  bool delayed_acks = false;
  SimTime goodput_bin = kSecond;

  /// Defaults: 64×160 B blocks, 7 symbols/packet (1204 B payload), MPTCP
  /// segments of the same wire size.
  static ProtocolOptions defaults();
};

}  // namespace fmtcp::harness
