#include "harness/sweep.h"

#include <atomic>
#include <cmath>
#include <thread>

#include "common/check.h"

namespace fmtcp::harness {

std::vector<RunResult> run_parallel(const std::vector<SweepJob>& jobs,
                                    unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  threads = std::min<unsigned>(threads,
                               static_cast<unsigned>(jobs.size()));

  std::vector<RunResult> results(jobs.size());
  if (jobs.empty()) return results;

  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      results[i] =
          run_scenario(jobs[i].protocol, jobs[i].scenario, jobs[i].options);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

std::vector<RunResult> run_seeds(Protocol protocol, Scenario scenario,
                                 const ProtocolOptions& options,
                                 const std::vector<std::uint64_t>& seeds,
                                 unsigned threads) {
  FMTCP_CHECK(scenario.tracer == nullptr);  // Tracers are not thread-safe.
  std::vector<SweepJob> jobs;
  jobs.reserve(seeds.size());
  for (std::uint64_t seed : seeds) {
    SweepJob job{protocol, scenario, options};
    job.scenario.seed = seed;
    jobs.push_back(std::move(job));
  }
  return run_parallel(jobs, threads);
}

SeedStats aggregate(const std::vector<RunResult>& results,
                    const std::function<double(const RunResult&)>& metric) {
  SeedStats stats;
  if (results.empty()) return stats;
  double sum = 0.0;
  for (const RunResult& r : results) sum += metric(r);
  stats.mean = sum / static_cast<double>(results.size());
  if (results.size() < 2) return stats;
  double var = 0.0;
  for (const RunResult& r : results) {
    const double d = metric(r) - stats.mean;
    var += d * d;
  }
  stats.stddev = std::sqrt(var / static_cast<double>(results.size() - 1));
  return stats;
}

}  // namespace fmtcp::harness
