#include "harness/sweep.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "obs/trace/span.h"

namespace fmtcp::harness {

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs == 0 ? ThreadPool::hardware_threads() : jobs) {}

std::size_t SweepRunner::submit(Protocol protocol, Scenario scenario,
                                const ProtocolOptions& options) {
  return submit(SweepJob{protocol, std::move(scenario), options});
}

std::size_t SweepRunner::submit(SweepJob job) {
  queue_.push_back(std::move(job));
  return queue_.size() - 1;
}

std::vector<RunResult> SweepRunner::run() {
  std::vector<RunResult> results(queue_.size());
  run_streaming([&results](std::size_t i, const SweepJob&, RunResult&& r) {
    results[i] = std::move(r);
  });
  return results;
}

void SweepRunner::run_streaming(const ResultSink& sink) {
  FMTCP_SPAN_ARG("sweep.run", queue_.size());
  std::vector<SweepJob> jobs = std::move(queue_);
  queue_.clear();
  if (jobs.empty()) return;

  if (jobs_ == 1 || jobs.size() == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      RunResult result =
          run_scenario(jobs[i].protocol, jobs[i].scenario, jobs[i].options);
      sink(i, jobs[i], std::move(result));
    }
    return;
  }

  // Tracers and observers are single-threaded; concurrent cells must not
  // share them.
  // NOLINT-DETERMINISM(duplicate-check membership only, never iterated)
  std::set<const void*> observers;
  for (const SweepJob& job : jobs) {
    FMTCP_CHECK(job.scenario.tracer == nullptr);
    if (job.scenario.observer != nullptr) {
      FMTCP_CHECK(observers.insert(job.scenario.observer).second);
    }
  }

  const unsigned threads =
      std::min<unsigned>(jobs_, static_cast<unsigned>(jobs.size()));
  // In-flight window: cell i is submitted only after cell i-window has
  // been delivered, so at most `window` results are ever buffered.
  // 2x the thread count keeps every worker busy while the main thread
  // drains the ordered prefix; the +4 floor keeps tiny pools pipelined.
  const std::size_t window =
      std::max<std::size_t>(2 * threads, std::size_t{threads} + 4);

  // Completion slots, reused modulo `window`. The windowing invariant
  // (submitted - delivered <= window) means a worker writes slot
  // i % window only after the main thread consumed its previous
  // occupant, so each slot has exactly one writer at a time.
  struct Slot {
    RunResult result;
    bool done = false;
  };
  std::vector<Slot> slots(window);
  Mutex mutex;
  CondVar slot_done;

  obs::trace::SpanScope startup_span("sweep.pool_start");
  ThreadPool pool(threads);
  startup_span.close();

  std::size_t submitted = 0;
  auto submit_one = [&](std::size_t i) {
    pool.submit([&jobs, &slots, &mutex, &slot_done, window, i] {
      RunResult result =
          run_scenario(jobs[i].protocol, jobs[i].scenario, jobs[i].options);
      MutexLock lock(mutex);
      Slot& slot = slots[i % window];
      slot.result = std::move(result);
      slot.done = true;
      slot_done.notify_all();
    });
  };
  {
    FMTCP_SPAN_ARG("sweep.dispatch", std::min(window, jobs.size()));
    for (; submitted < jobs.size() && submitted < window; ++submitted) {
      submit_one(submitted);
    }
  }
  for (std::size_t delivered = 0; delivered < jobs.size(); ++delivered) {
    RunResult result;
    {
      // Main-thread time blocked on workers; overlap, not extra work.
      FMTCP_SPAN("sweep.wait");
      MutexLock lock(mutex);
      Slot& slot = slots[delivered % window];
      while (!slot.done) slot_done.wait(mutex);
      result = std::move(slot.result);
      slot.done = false;
    }
    sink(delivered, jobs[delivered], std::move(result));
    if (submitted < jobs.size()) {
      submit_one(submitted);
      ++submitted;
    }
  }
  pool.wait();  // All delivered, so the pool is already idle.
}

unsigned jobs_from_flags(FlagParser& flags) {
  const std::int64_t jobs = flags.get_int(
      "jobs", 0, "max concurrent simulations (0 = hardware concurrency)");
  FMTCP_CHECK(jobs >= 0);
  return static_cast<unsigned>(jobs);
}

std::vector<RunResult> run_parallel(const std::vector<SweepJob>& jobs,
                                    unsigned threads) {
  SweepRunner runner(threads);
  for (const SweepJob& job : jobs) runner.submit(job);
  return runner.run();
}

std::vector<RunResult> run_seeds(Protocol protocol, Scenario scenario,
                                 const ProtocolOptions& options,
                                 const std::vector<std::uint64_t>& seeds,
                                 unsigned threads) {
  SweepRunner runner(threads);
  for (std::uint64_t seed : seeds) {
    SweepJob job{protocol, scenario, options};
    job.scenario.seed = seed;
    runner.submit(std::move(job));
  }
  return runner.run();
}

SeedStats aggregate(const std::vector<RunResult>& results,
                    const std::function<double(const RunResult&)>& metric) {
  SeedStats stats;
  if (results.empty()) return stats;
  double sum = 0.0;
  for (const RunResult& r : results) sum += metric(r);
  stats.mean = sum / static_cast<double>(results.size());
  if (results.size() < 2) return stats;
  double var = 0.0;
  for (const RunResult& r : results) {
    const double d = metric(r) - stats.mean;
    var += d * d;
  }
  stats.stddev = std::sqrt(var / static_cast<double>(results.size() - 1));
  return stats;
}

}  // namespace fmtcp::harness
