#include "harness/sweep.h"

#include <cmath>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/trace/span.h"

namespace fmtcp::harness {

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs == 0 ? ThreadPool::hardware_threads() : jobs) {}

std::size_t SweepRunner::submit(Protocol protocol, Scenario scenario,
                                const ProtocolOptions& options) {
  return submit(SweepJob{protocol, std::move(scenario), options});
}

std::size_t SweepRunner::submit(SweepJob job) {
  queue_.push_back(std::move(job));
  return queue_.size() - 1;
}

std::vector<RunResult> SweepRunner::run() {
  FMTCP_SPAN_ARG("sweep.run", queue_.size());
  std::vector<SweepJob> jobs = std::move(queue_);
  queue_.clear();
  std::vector<RunResult> results(jobs.size());
  if (jobs.empty()) return results;

  if (jobs_ == 1 || jobs.size() == 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] =
          run_scenario(jobs[i].protocol, jobs[i].scenario, jobs[i].options);
    }
    return results;
  }

  // Tracers and observers are single-threaded; concurrent cells must not
  // share them.
  // NOLINT-DETERMINISM(duplicate-check membership only, never iterated)
  std::set<const void*> observers;
  for (const SweepJob& job : jobs) {
    FMTCP_CHECK(job.scenario.tracer == nullptr);
    if (job.scenario.observer != nullptr) {
      FMTCP_CHECK(observers.insert(job.scenario.observer).second);
    }
  }

  const unsigned threads =
      std::min<unsigned>(jobs_, static_cast<unsigned>(jobs.size()));
  obs::trace::SpanScope startup_span("sweep.pool_start");
  ThreadPool pool(threads);
  startup_span.close();
  {
    FMTCP_SPAN_ARG("sweep.dispatch", jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      pool.submit([&jobs, &results, i] {
        results[i] = run_scenario(jobs[i].protocol, jobs[i].scenario,
                                  jobs[i].options);
      });
    }
  }
  {
    // Main-thread time blocked on workers; overlap, not extra work.
    FMTCP_SPAN("sweep.wait");
    pool.wait();
  }
  return results;
}

unsigned jobs_from_flags(FlagParser& flags) {
  const std::int64_t jobs = flags.get_int(
      "jobs", 0, "max concurrent simulations (0 = hardware concurrency)");
  FMTCP_CHECK(jobs >= 0);
  return static_cast<unsigned>(jobs);
}

std::vector<RunResult> run_parallel(const std::vector<SweepJob>& jobs,
                                    unsigned threads) {
  SweepRunner runner(threads);
  for (const SweepJob& job : jobs) runner.submit(job);
  return runner.run();
}

std::vector<RunResult> run_seeds(Protocol protocol, Scenario scenario,
                                 const ProtocolOptions& options,
                                 const std::vector<std::uint64_t>& seeds,
                                 unsigned threads) {
  SweepRunner runner(threads);
  for (std::uint64_t seed : seeds) {
    SweepJob job{protocol, scenario, options};
    job.scenario.seed = seed;
    runner.submit(std::move(job));
  }
  return runner.run();
}

SeedStats aggregate(const std::vector<RunResult>& results,
                    const std::function<double(const RunResult&)>& metric) {
  SeedStats stats;
  if (results.empty()) return stats;
  double sum = 0.0;
  for (const RunResult& r : results) sum += metric(r);
  stats.mean = sum / static_cast<double>(results.size());
  if (results.size() < 2) return stats;
  double var = 0.0;
  for (const RunResult& r : results) {
    const double d = metric(r) - stats.mean;
    var += d * d;
  }
  stats.stddev = std::sqrt(var / static_cast<double>(results.size() - 1));
  return stats;
}

}  // namespace fmtcp::harness
