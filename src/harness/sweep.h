// Parallel scenario sweeps: run many independent simulations across
// threads and aggregate per-seed statistics. Each simulation is fully
// self-contained (its own Simulator, topology, RNG streams), so runs are
// embarrassingly parallel; results are returned in job order regardless
// of completion order, preserving determinism.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harness/runner.h"

namespace fmtcp::harness {

struct SweepJob {
  Protocol protocol = Protocol::kFmtcp;
  Scenario scenario;
  ProtocolOptions options = ProtocolOptions::defaults();
};

/// Runs every job, `threads` at a time (0 = hardware concurrency).
/// Results are in job order.
std::vector<RunResult> run_parallel(const std::vector<SweepJob>& jobs,
                                    unsigned threads = 0);

/// Replicates one configuration across `seeds` (overriding
/// scenario.seed) and runs them in parallel.
std::vector<RunResult> run_seeds(Protocol protocol, Scenario scenario,
                                 const ProtocolOptions& options,
                                 const std::vector<std::uint64_t>& seeds,
                                 unsigned threads = 0);

/// Mean and sample standard deviation of `metric` over results.
struct SeedStats {
  double mean = 0.0;
  double stddev = 0.0;
};
SeedStats aggregate(const std::vector<RunResult>& results,
                    const std::function<double(const RunResult&)>& metric);

}  // namespace fmtcp::harness
