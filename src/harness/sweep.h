// Parallel scenario sweeps: run many independent simulations across
// threads and aggregate per-seed statistics. Each simulation is fully
// self-contained (its own Simulator, topology, RNG streams, packet-uid
// stream, buffer pool), so runs are embarrassingly parallel; results are
// returned in submission order regardless of completion order, and are
// bit-identical to a serial run of the same cells.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flags.h"
#include "harness/runner.h"

namespace fmtcp::harness {

struct SweepJob {
  Protocol protocol = Protocol::kFmtcp;
  Scenario scenario;
  ProtocolOptions options = ProtocolOptions::defaults();
};

/// Thread-pooled sweep executor: submit cells, then run() them all.
///
/// `jobs == 1` executes every cell inline on the calling thread, in
/// submission order — exactly the pre-pool serial behaviour. With
/// `jobs > 1` the cells run on a pool, but because every simulation is
/// self-contained the RunResult vector is identical either way.
class SweepRunner {
 public:
  /// `jobs` = maximum simulations in flight; 0 = hardware concurrency.
  explicit SweepRunner(unsigned jobs = 0);

  /// Queues one simulation cell; returns its index in the result vector.
  std::size_t submit(Protocol protocol, Scenario scenario,
                     const ProtocolOptions& options);
  std::size_t submit(SweepJob job);

  /// Runs every queued cell and returns results in submission order;
  /// the queue is cleared for reuse. With jobs > 1, queued scenarios
  /// must not carry tracers and must not share a non-null observer
  /// (neither is thread-safe).
  std::vector<RunResult> run();

  /// Per-cell result callback for run_streaming: the cell's submission
  /// index, the job that produced it, and its result (moved in).
  using ResultSink =
      std::function<void(std::size_t index, const SweepJob& job,
                         RunResult&& result)>;

  /// Streaming variant of run(): delivers each result to `sink` in
  /// submission order, on the calling thread, as soon as it (and every
  /// earlier cell) completes. At most a small window of cells is in
  /// flight or buffered at once, so arbitrarily large grids run in
  /// bounded memory; completed-prefix delivery is what makes an output
  /// log double as a crash-resume manifest. Results are bit-identical
  /// to run() at any `jobs` value. Same tracer/observer rules as run().
  void run_streaming(const ResultSink& sink);

  unsigned jobs() const { return jobs_; }
  std::size_t queued() const { return queue_.size(); }

 private:
  unsigned jobs_;
  std::vector<SweepJob> queue_;
};

/// Registers and parses the shared `--jobs` flag (0 = hardware
/// concurrency) for the bench/tool binaries.
unsigned jobs_from_flags(FlagParser& flags);

/// Runs every job, `threads` at a time (0 = hardware concurrency).
/// Results are in job order. Wrapper over SweepRunner.
std::vector<RunResult> run_parallel(const std::vector<SweepJob>& jobs,
                                    unsigned threads = 0);

/// Replicates one configuration across `seeds` (overriding
/// scenario.seed) and runs them in parallel.
std::vector<RunResult> run_seeds(Protocol protocol, Scenario scenario,
                                 const ProtocolOptions& options,
                                 const std::vector<std::uint64_t>& seeds,
                                 unsigned threads = 0);

/// Mean and sample standard deviation of `metric` over results.
struct SeedStats {
  double mean = 0.0;
  double stddev = 0.0;
};
SeedStats aggregate(const std::vector<RunResult>& results,
                    const std::function<double(const RunResult&)>& metric);

}  // namespace fmtcp::harness
