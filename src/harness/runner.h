// Runs one protocol over one scenario and collects the paper's metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/scenario.h"

namespace fmtcp::harness {

struct SubflowStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  double final_cwnd = 0.0;
  double loss_estimate = 0.0;
};

struct RunResult {
  Protocol protocol{};

  // Goodput (receiver, in-order application bytes).
  std::uint64_t delivered_bytes = 0;
  double goodput_MBps = 0.0;
  /// Per-bin goodput rate series in MB/s (bin width = goodput_bin).
  std::vector<double> goodput_series_MBps;

  // Block metrics (sender-measured, §V definitions).
  std::uint64_t blocks_completed = 0;
  double mean_delay_ms = 0.0;
  double jitter_ms = 0.0;
  double stddev_delay_ms = 0.0;
  double max_delay_ms = 0.0;
  /// Per-block delivery delay in block order (Fig. 7 series).
  std::vector<double> block_delays_ms;

  // Diagnostics.
  std::vector<SubflowStats> subflows;
  std::uint64_t redundant_symbols = 0;  ///< Coded protocols only.
  std::uint64_t symbols_sent = 0;       ///< Coded protocols only.
  bool payload_ok = true;

  // Event-loop profile (always filled; cheap).
  std::uint64_t sim_events = 0;  ///< Scheduler events executed.
  double wall_seconds = 0.0;     ///< Wall-clock time for the whole run.

  /// Coding overhead: symbols sent per source symbol delivered, minus 1.
  /// 0 for MPTCP.
  double coding_overhead(std::uint32_t block_symbols) const;
};

/// Builds the two-path topology from `scenario`, runs `protocol` for
/// scenario.duration, and returns the metrics.
RunResult run_scenario(Protocol protocol, const Scenario& scenario,
                       const ProtocolOptions& options);

/// run_scenario with ProtocolOptions::defaults().
RunResult run_scenario(Protocol protocol, const Scenario& scenario);

}  // namespace fmtcp::harness
