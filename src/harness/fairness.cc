#include "harness/fairness.h"

#include <memory>

#include "common/check.h"
#include "core/params.h"
#include "core/receiver.h"
#include "core/sender.h"
#include "metrics/goodput.h"
#include "mptcp/receiver.h"
#include "mptcp/sender.h"
#include "net/link.h"
#include "sim/simulator.h"
#include "tcp/subflow.h"

namespace fmtcp::harness {

namespace {

/// One single-path endpoint pair (sender side + receiver side) of either
/// protocol, exposing the pieces the shared wiring needs.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual tcp::SegmentProvider& provider() = 0;
  virtual tcp::DataSink& sink() = 0;
  virtual void attach_and_start(tcp::Subflow* subflow) = 0;
  virtual std::uint64_t delivered_bytes() const = 0;
};

class FmtcpEndpoint final : public Endpoint {
 public:
  FmtcpEndpoint(sim::Simulator& simulator, const core::FmtcpParams& params)
      : goodput_(kSecond),
        sender_(simulator, params),
        receiver_(simulator, params, &goodput_) {}

  tcp::SegmentProvider& provider() override { return sender_; }
  tcp::DataSink& sink() override { return receiver_; }
  void attach_and_start(tcp::Subflow* subflow) override {
    sender_.register_subflow(subflow);
    sender_.start();
  }
  std::uint64_t delivered_bytes() const override {
    return goodput_.total_bytes();
  }

 private:
  metrics::GoodputMeter goodput_;
  core::FmtcpSender sender_;
  core::FmtcpReceiver receiver_;
};

class TcpEndpoint final : public Endpoint {
 public:
  TcpEndpoint(sim::Simulator& simulator, std::size_t segment_bytes)
      : goodput_(kSecond),
        sender_(simulator, make_config(segment_bytes)),
        receiver_(simulator, 128 * 1024, &goodput_) {}

  tcp::SegmentProvider& provider() override { return sender_; }
  tcp::DataSink& sink() override { return receiver_; }
  void attach_and_start(tcp::Subflow* subflow) override {
    sender_.register_subflow(subflow);
    sender_.start();
  }
  std::uint64_t delivered_bytes() const override {
    return goodput_.total_bytes();
  }

 private:
  static mptcp::MptcpSenderConfig make_config(std::size_t segment_bytes) {
    mptcp::MptcpSenderConfig config;
    config.segment_bytes = segment_bytes;
    return config;
  }

  metrics::GoodputMeter goodput_;
  mptcp::MptcpSender sender_;
  mptcp::MptcpReceiver receiver_;
};

std::unique_ptr<Endpoint> make_endpoint(sim::Simulator& simulator,
                                        Protocol protocol,
                                        const ProtocolOptions& options) {
  switch (protocol) {
    case Protocol::kFmtcp:
      return std::make_unique<FmtcpEndpoint>(simulator, options.fmtcp);
    case Protocol::kMptcp:
      return std::make_unique<TcpEndpoint>(simulator,
                                           options.subflow.mss_payload);
    default:
      FMTCP_CHECK(false && "fairness supports kFmtcp / kMptcp only");
      return nullptr;
  }
}

}  // namespace

double FairnessResult::jain_index() const {
  const double sum = goodput_a_MBps + goodput_b_MBps;
  const double sum_sq = goodput_a_MBps * goodput_a_MBps +
                        goodput_b_MBps * goodput_b_MBps;
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (2.0 * sum_sq);
}

double FairnessResult::share_a() const {
  const double sum = goodput_a_MBps + goodput_b_MBps;
  return sum == 0.0 ? 0.5 : goodput_a_MBps / sum;
}

FairnessResult run_fairness(const FairnessConfig& config) {
  sim::Simulator simulator(config.seed);
  const ProtocolOptions options = ProtocolOptions::defaults();

  // Shared bottleneck forward link; roomy reverse link for ACKs.
  net::LinkConfig forward_config;
  forward_config.bandwidth_Bps = config.bottleneck_Bps;
  forward_config.prop_delay = config.one_way_delay;
  forward_config.queue_packets = config.queue_packets;
  net::Link forward(simulator, forward_config,
                    net::make_bernoulli(config.loss_rate));

  net::LinkConfig reverse_config = forward_config;
  reverse_config.bandwidth_Bps = 100e6;
  reverse_config.queue_packets = 0;
  net::Link reverse(simulator, reverse_config, nullptr);

  std::unique_ptr<Endpoint> a =
      make_endpoint(simulator, config.protocol_a, options);
  std::unique_ptr<Endpoint> b =
      make_endpoint(simulator, config.protocol_b, options);

  tcp::SubflowConfig subflow_config = options.subflow;
  subflow_config.id = 0;

  // Connection A (tag 1).
  subflow_config.flow_tag = 1;
  subflow_config.fresh_payload_on_retransmit =
      config.protocol_a == Protocol::kFmtcp;
  auto subflow_a = std::make_unique<tcp::Subflow>(
      simulator, subflow_config, forward, a->provider());
  auto receiver_a = std::make_unique<tcp::SubflowReceiver>(
      simulator, 0, reverse, a->sink());

  // Connection B (tag 2).
  subflow_config.flow_tag = 2;
  subflow_config.fresh_payload_on_retransmit =
      config.protocol_b == Protocol::kFmtcp;
  auto subflow_b = std::make_unique<tcp::Subflow>(
      simulator, subflow_config, forward, b->provider());
  auto receiver_b = std::make_unique<tcp::SubflowReceiver>(
      simulator, 0, reverse, b->sink());

  // Demultiplex by connection tag at both ends.
  forward.set_sink([ra = receiver_a.get(),
                    rb = receiver_b.get()](net::Packet p) {
    (p.flow_tag == 1 ? ra : rb)->on_data_packet(std::move(p));
  });
  reverse.set_sink([sa = subflow_a.get(),
                    sb = subflow_b.get()](net::Packet p) {
    (p.flow_tag == 1 ? sa : sb)->on_ack_packet(std::move(p));
  });

  a->attach_and_start(subflow_a.get());
  b->attach_and_start(subflow_b.get());
  simulator.run_until(config.duration);

  FairnessResult result;
  result.goodput_a_MBps = static_cast<double>(a->delivered_bytes()) /
                          to_seconds(config.duration) / 1e6;
  result.goodput_b_MBps = static_cast<double>(b->delivered_bytes()) /
                          to_seconds(config.duration) / 1e6;
  return result;
}

}  // namespace fmtcp::harness
