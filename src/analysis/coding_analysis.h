// Closed-form coding analysis of paper §III-B (Eq. 3–7): fixed-rate
// erasure coding vs the fountain code under i.i.d. loss.
#pragma once

#include <cstdint>

namespace fmtcp::analysis {

/// Eq. 3 — Expected Packets Delivered for a fixed-rate block of A source
/// packets on a path with loss rate p1: E(X) = A / (1 - p1).
double expected_packets_delivered(std::uint32_t A, double p1);

/// Eq. 4 — the batch size a fixed-rate scheme generates: a = A/(1-p1).
double fixed_rate_batch(std::uint32_t A, double p1);

/// Eq. 5 — mean packets actually delivered when the true loss is p2:
/// E(X_R) = (1 - p2) * a.
double expected_actual_delivered(std::uint32_t A, double p1, double p2);

/// Eq. 6 — Chernoff upper bound on the probability that *no*
/// retransmission is needed (X_R >= A) when the loss rate was
/// underestimated (p2 > p1):
///   P(X_R >= A) <= exp(-(p2-p1)^2 A / (3 (1-p1)(1-p2))).
double no_retransmission_probability_bound(std::uint32_t A, double p1,
                                           double p2);

/// Eq. 7 — upper bound on the fountain code's Expected Symbols Delivered:
/// E(Y) <= (k̂ + 4) / (1 - p).
double fountain_expected_symbols_bound(std::uint32_t k_hat, double p);

/// Expected number of *received* random-linear symbols until a k̂-symbol
/// block reaches full rank: sum over ranks r of 1/(1 - 2^(r - k̂)).
/// Approaches k̂ + 1.6067 for large k̂ (the fountain's true redundancy).
double expected_symbols_to_decode(std::uint32_t k_hat);

/// Exact P(X_R >= A) for the fixed-rate scheme by binomial tail
/// summation (reference value for the Chernoff bound bench).
double no_retransmission_probability_exact(std::uint32_t A, double p1,
                                           double p2);

}  // namespace fmtcp::analysis
