#include "analysis/allocation_analysis.h"

#include "common/check.h"

namespace fmtcp::analysis {

namespace {
void check_loss(double p) { FMTCP_CHECK(p >= 0.0 && p < 1.0); }
}  // namespace

double expected_response_time(double rtt, double rto, double p) {
  check_loss(p);
  return (1.0 - p) * rtt + p * rto;
}

double sedt(double r, double R, double p) {
  check_loss(p);
  return p * R / (1.0 - p) + r / 2.0;
}

double edt_single(double r, double p) {
  check_loss(p);
  return (1.0 + p) * r / (2.0 * (1.0 - p));
}

double lemma1_min_r2(double r1, double p1, double p2) {
  check_loss(p1);
  check_loss(p2);
  const double factor = (1.0 + p1) * (1.0 - p2) /
                            ((1.0 - p1) * (1.0 + p2)) +
                        2.0 / (1.0 + p2);
  return factor * r1;
}

double diversity_m(double r1, double p1, double r2, double p2) {
  return sedt(r2, r2, p2) / sedt(r1, r1, p1);
}

double theorem3_ratio_bound(double p1, double p2, double m) {
  check_loss(p1);
  check_loss(p2);
  return p2 + 2.0 * (1.0 - p1) / (1.0 + p1) + (1.0 - p2) * m;
}

double fmtcp_advantage_threshold(double p1, double p2) {
  check_loss(p1);
  FMTCP_CHECK(p2 > 0.0 && p2 < 1.0);
  return 1.0 + 2.0 * (1.0 - p1) / (p2 * (1.0 + p1));
}

}  // namespace fmtcp::analysis
