#include "analysis/coding_analysis.h"

#include <cmath>

#include "common/check.h"

namespace fmtcp::analysis {

namespace {
void check_loss(double p) { FMTCP_CHECK(p >= 0.0 && p < 1.0); }
}  // namespace

double expected_packets_delivered(std::uint32_t A, double p1) {
  check_loss(p1);
  return static_cast<double>(A) / (1.0 - p1);
}

double fixed_rate_batch(std::uint32_t A, double p1) {
  return expected_packets_delivered(A, p1);
}

double expected_actual_delivered(std::uint32_t A, double p1, double p2) {
  check_loss(p2);
  return (1.0 - p2) * fixed_rate_batch(A, p1);
}

double no_retransmission_probability_bound(std::uint32_t A, double p1,
                                           double p2) {
  check_loss(p1);
  check_loss(p2);
  FMTCP_CHECK(p2 >= p1);
  const double num = (p2 - p1) * (p2 - p1) * static_cast<double>(A);
  const double den = 3.0 * (1.0 - p1) * (1.0 - p2);
  return std::exp(-num / den);
}

double fountain_expected_symbols_bound(std::uint32_t k_hat, double p) {
  check_loss(p);
  return (static_cast<double>(k_hat) + 4.0) / (1.0 - p);
}

double expected_symbols_to_decode(std::uint32_t k_hat) {
  FMTCP_CHECK(k_hat >= 1);
  // At rank r, a fresh coefficient vector is innovative unless it falls
  // in the current row space. The encoder never emits the all-zero
  // vector (it re-draws), so of the 2^k̂ - 1 possible vectors, 2^r - 1
  // are non-innovative: p = (2^k̂ - 2^r) / (2^k̂ - 1). The wait per rank
  // is geometric. For k̂ ≳ 16 this matches the classic
  // sum 1/(1 - 2^(r-k̂)) to within 1e-4.
  const double total = std::exp2(static_cast<double>(k_hat)) - 1.0;
  double expected = 0.0;
  for (std::uint32_t r = 0; r < k_hat; ++r) {
    const double innovative =
        std::exp2(static_cast<double>(k_hat)) -
        std::exp2(static_cast<double>(r));
    expected += total / innovative;
  }
  return expected;
}

double no_retransmission_probability_exact(std::uint32_t A, double p1,
                                           double p2) {
  check_loss(p1);
  check_loss(p2);
  const auto a = static_cast<std::uint32_t>(
      std::ceil(fixed_rate_batch(A, p1)));
  if (a < A) return 0.0;
  // P(Binomial(a, 1-p2) >= A), summed from the tail in log space.
  const double log_q = std::log(1.0 - p2);
  const double log_p = p2 > 0.0 ? std::log(p2) : 0.0;
  double total = 0.0;
  double log_choose = 0.0;  // log C(a, a) = 0; iterate k = a down to A.
  for (std::uint32_t k = a;; --k) {
    // log C(a, k) built incrementally: C(a,k-1) = C(a,k) * k / (a-k+1).
    const double log_term =
        log_choose + static_cast<double>(k) * log_q +
        (p2 > 0.0 ? static_cast<double>(a - k) * log_p
                  : (a == k ? 0.0 : -1e300));
    total += std::exp(log_term);
    if (k == A) break;
    log_choose += std::log(static_cast<double>(k)) -
                  std::log(static_cast<double>(a - k + 1));
  }
  return total > 1.0 ? 1.0 : total;
}

}  // namespace fmtcp::analysis
