// Closed-form allocation analysis of paper §IV-C (Eq. 10–18,
// Theorems 1–3): SEDT, the Lemma-1 condition, and the Theorem-3 bound on
// the cross-subflow delivery-time ratio.
#pragma once

namespace fmtcp::analysis {

/// Eq. 10 — expected response time RT = (1-p)·RTT + p·RTO. Times in
/// arbitrary units (callers use seconds).
double expected_response_time(double rtt, double rto, double p);

/// Eq. 13 — Single-path Expected Delivery Time for a path with round-trip
/// time r, RTO R, loss p: SEDT = p·R/(1-p) + r/2.
double sedt(double r, double R, double p);

/// EDT estimate used in the Lemma-1 proof (r ≈ R):
/// EDT ≈ (1+p) r / (2(1-p)).
double edt_single(double r, double p);

/// Lemma 1 — minimum r2 such that symbols lost on subflow 2 are only
/// appended on subflow 1:
/// r2 >= [ (1+p1)(1-p2) / ((1-p1)(1+p2)) + 2/(1+p2) ] · r1.
double lemma1_min_r2(double r1, double p1, double p2);

/// m — the path-diversity ratio SEDT2 / SEDT1 (with r ≈ R on each path).
double diversity_m(double r1, double p1, double r2, double p2);

/// Eq. 17 (Theorem 3) — upper bound on E(T2)/E(T1) under FMTCP:
/// p2 + 2(1-p1)/(1+p1) + (1-p2)·m.
double theorem3_ratio_bound(double p1, double p2, double m);

/// Threshold on m beyond which FMTCP's ratio bound beats MPTCP's exact
/// ratio (which is m): m > 1 + 2(1-p1)/(p2(1+p1)).
double fmtcp_advantage_threshold(double p1, double p2);

}  // namespace fmtcp::analysis
