// Deterministic random number generation.
//
// Every stochastic component (loss models, fountain coefficient vectors,
// workload generators) draws from an explicitly seeded Rng so that a whole
// simulation is reproducible from a single 64-bit seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64; it is fast,
// passes BigCrush, and — unlike std::mt19937 — has a portable, documented
// stream across standard-library implementations.
#pragma once

#include <cstdint>

namespace fmtcp {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Not thread-safe; give each concurrent component its own instance (use
/// `fork()` to derive decorrelated child streams).
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// A single uniformly random bit.
  bool next_bit();

  /// Derives an independent child generator (for per-component streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace fmtcp
