#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fmtcp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double SampleSet::quantile(double q) const {
  FMTCP_CHECK(!samples_.empty());
  FMTCP_CHECK(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double SampleSet::mean_abs_delta() const {
  if (samples_.size() < 2) return 0.0;
  double s = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    s += std::abs(samples_[i] - samples_[i - 1]);
  }
  return s / static_cast<double>(samples_.size() - 1);
}

void SampleSet::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

}  // namespace fmtcp
