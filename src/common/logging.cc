#include "common/logging.h"

#include <cstdio>

namespace fmtcp {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level);
}

void log_message(LogLevel level, SimTime t, const char* module,
                 const char* format, ...) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "[%s t=%.6fs] %s: ", level_name(level), to_seconds(t),
               module);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace fmtcp
