#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace fmtcp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one forbidden state of xoshiro; splitmix64 of any
  // seed cannot produce four zero words in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  FMTCP_CHECK(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FMTCP_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  FMTCP_CHECK(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

bool Rng::next_bit() { return (next_u64() >> 63) != 0; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace fmtcp
