// Free-list recycler for byte buffers (packet / fountain-symbol
// payloads). One pool per Simulator: the decoder releases symbol rows it
// no longer needs and the encoder re-acquires them, so steady-state
// simulation stops allocating fresh vector storage per symbol.
//
// Buffers are AlignedBytes: every allocation the pool ever hands out is
// 64-byte aligned (common/aligned.h), which keeps the SIMD GF(2) kernels
// on their wide-load fast path for the whole sender→packet→receiver→
// decoder journey — moves preserve the allocation, so alignment
// established here survives the packet path. stats().aligned_handouts
// counts acquire() calls whose data() met the contract (it equals
// acquired; the assertion is stats()-visible rather than a crash).
//
// Not thread-safe by design — a pool belongs to exactly one simulation,
// and parallel sweeps give every cell its own Simulator (and pool).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned.h"

namespace fmtcp {

class BufferPool {
 public:
  /// `max_free` caps the free list so a bursty run cannot pin unbounded
  /// memory; surplus releases are simply freed.
  explicit BufferPool(std::size_t max_free = 4096) : max_free_(max_free) {}

  /// Returns a buffer with size() == `size` and unspecified contents
  /// (callers overwrite or zero it). Reuses a released buffer when one
  /// is available. data() is 64-byte aligned (kBufferAlignment).
  AlignedBytes acquire(std::size_t size);

  /// Hands a buffer back for reuse. Empty buffers are ignored.
  void release(AlignedBytes&& buffer);

  // --- Diagnostics ---

  /// Lifetime picture of the pool, cheap to collect at any point (the
  /// harness exports it as bufferpool.* gauges after a run).
  struct Stats {
    std::uint64_t acquired = 0;   ///< acquire() calls.
    std::uint64_t reused = 0;     ///< ... served from the free list.
    std::uint64_t allocated = 0;  ///< ... that had to allocate (misses).
    std::uint64_t released = 0;   ///< release() calls (non-empty).
    std::uint64_t dropped = 0;    ///< Releases freed over max_free.
    /// acquire() calls whose buffer met the 64-byte alignment contract.
    /// Always == acquired (AlignedAllocator guarantees it); exported so
    /// a regression is visible in bufferpool.* gauges, not just a crash.
    std::uint64_t aligned_handouts = 0;
    /// Buffers out with callers right now (acquired minus released;
    /// buffers destroyed instead of released stay counted).
    std::int64_t outstanding = 0;
    std::int64_t high_water = 0;  ///< Max outstanding ever seen.
    std::size_t free = 0;         ///< Free-list size right now.
  };
  Stats stats() const {
    Stats s;
    s.acquired = acquired_;
    s.reused = reused_;
    s.allocated = acquired_ - reused_;
    s.released = released_;
    s.dropped = dropped_;
    s.aligned_handouts = aligned_handouts_;
    s.outstanding = outstanding_;
    s.high_water = high_water_;
    s.free = free_.size();
    return s;
  }

  std::size_t free_count() const { return free_.size(); }
  std::uint64_t acquired() const { return acquired_; }
  /// Acquisitions served from the free list (no allocation).
  std::uint64_t reused() const { return reused_; }

 private:
  std::size_t max_free_;
  std::vector<AlignedBytes> free_;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t aligned_handouts_ = 0;
  std::int64_t outstanding_ = 0;
  std::int64_t high_water_ = 0;
};

}  // namespace fmtcp
