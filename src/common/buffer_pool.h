// Free-list recycler for byte buffers (packet / fountain-symbol
// payloads). One pool per Simulator: the decoder releases symbol rows it
// no longer needs and the encoder re-acquires them, so steady-state
// simulation stops allocating fresh std::vector storage per symbol.
//
// Not thread-safe by design — a pool belongs to exactly one simulation,
// and parallel sweeps give every cell its own Simulator (and pool).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fmtcp {

class BufferPool {
 public:
  /// `max_free` caps the free list so a bursty run cannot pin unbounded
  /// memory; surplus releases are simply freed.
  explicit BufferPool(std::size_t max_free = 4096) : max_free_(max_free) {}

  /// Returns a buffer with size() == `size` and unspecified contents
  /// (callers overwrite or zero it). Reuses a released buffer when one
  /// is available.
  std::vector<std::uint8_t> acquire(std::size_t size);

  /// Hands a buffer back for reuse. Empty buffers are ignored.
  void release(std::vector<std::uint8_t>&& buffer);

  // --- Diagnostics ---
  std::size_t free_count() const { return free_.size(); }
  std::uint64_t acquired() const { return acquired_; }
  /// Acquisitions served from the free list (no allocation).
  std::uint64_t reused() const { return reused_; }

 private:
  std::size_t max_free_;
  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t acquired_ = 0;
  std::uint64_t reused_ = 0;
};

}  // namespace fmtcp
