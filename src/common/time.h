// Simulation time: a signed 64-bit count of nanoseconds.
//
// All protocol and simulator code uses integer nanoseconds so that event
// ordering is exact and runs are bit-for-bit reproducible across platforms
// (doubles would accumulate rounding in RTT/RTO arithmetic).
#pragma once

#include <cstdint>

namespace fmtcp {

/// Simulation timestamp or duration, in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// A SimTime value meaning "never" / unset; orders after every real time.
inline constexpr SimTime kNever = INT64_MAX;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Builds a duration from integer milliseconds.
constexpr SimTime from_ms(std::int64_t ms) { return ms * kMillisecond; }

/// Builds a duration from integer microseconds.
constexpr SimTime from_us(std::int64_t us) { return us * kMicrosecond; }

/// Builds a duration from (possibly fractional) seconds.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}

/// Converts a duration/timestamp to seconds (for reporting only).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a duration/timestamp to milliseconds (for reporting only).
constexpr double to_ms(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace fmtcp
