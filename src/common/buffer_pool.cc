#include "common/buffer_pool.h"

#include <utility>

#include "obs/trace/span.h"

namespace fmtcp {

AlignedBytes BufferPool::acquire(std::size_t size) {
  ++acquired_;
  if (++outstanding_ > high_water_) high_water_ = outstanding_;
  FMTCP_COUNT("bufferpool.acquire", 1);
  if (!free_.empty()) {
    AlignedBytes buffer = std::move(free_.back());
    free_.pop_back();
    ++reused_;
    buffer.resize(size);
    if (buffer.empty() || is_buffer_aligned(buffer.data())) {
      ++aligned_handouts_;
    }
    return buffer;
  }
  // The miss path is the one worth a span: free-list hits are a move,
  // misses are a fresh heap allocation (and, under --jobs N, the place
  // allocator contention would show up).
  FMTCP_SPAN_ARG("bufferpool.alloc", size);
  AlignedBytes buffer(size);
  if (buffer.empty() || is_buffer_aligned(buffer.data())) {
    ++aligned_handouts_;
  }
  return buffer;
}

void BufferPool::release(AlignedBytes&& buffer) {
  if (buffer.empty()) return;
  ++released_;
  --outstanding_;
  FMTCP_COUNT("bufferpool.release", 1);
  if (free_.size() >= max_free_) {
    ++dropped_;
    return;
  }
  free_.push_back(std::move(buffer));
}

}  // namespace fmtcp
