#include "common/buffer_pool.h"

#include <utility>

namespace fmtcp {

std::vector<std::uint8_t> BufferPool::acquire(std::size_t size) {
  ++acquired_;
  if (!free_.empty()) {
    std::vector<std::uint8_t> buffer = std::move(free_.back());
    free_.pop_back();
    ++reused_;
    buffer.resize(size);
    return buffer;
  }
  return std::vector<std::uint8_t>(size);
}

void BufferPool::release(std::vector<std::uint8_t>&& buffer) {
  if (buffer.empty() || free_.size() >= max_free_) return;
  free_.push_back(std::move(buffer));
}

}  // namespace fmtcp
