// Minimal leveled logging for simulator diagnostics.
//
// Protocol modules log at kDebug/kTrace; the default level is kWarn so that
// benchmark binaries stay quiet. Logging is printf-style to keep hot paths
// allocation-free when the level is filtered out.
#pragma once

#include <cstdarg>

#include "common/time.h"

namespace fmtcp {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True if a message at `level` would be emitted.
bool log_enabled(LogLevel level);

/// Emits a log line: "[lvl t=1.234s] module: message".
/// `t` is the simulation time to stamp (pass 0 outside a simulation).
void log_message(LogLevel level, SimTime t, const char* module,
                 const char* format, ...) __attribute__((format(printf, 4, 5)));

}  // namespace fmtcp

#define FMTCP_LOG(level, t, module, ...)                    \
  do {                                                      \
    if (::fmtcp::log_enabled(level)) {                      \
      ::fmtcp::log_message(level, t, module, __VA_ARGS__);  \
    }                                                       \
  } while (false)
