// Time-binned accumulation, used for goodput-rate-over-time plots (Fig. 4).
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.h"

namespace fmtcp {

/// Accumulates (time, value) contributions into fixed-width time bins.
/// `rate_at(i)` reports the per-second rate of the accumulated quantity in
/// bin i — e.g. feed delivered bytes and read back bytes/second.
class BinnedSeries {
 public:
  /// `bin_width` must be a positive duration.
  explicit BinnedSeries(SimTime bin_width);

  /// Adds `value` to the bin containing time `t` (t >= 0).
  void add(SimTime t, double value);

  std::size_t bin_count() const { return bins_.size(); }
  SimTime bin_width() const { return bin_width_; }

  /// Start time of bin i.
  SimTime bin_start(std::size_t i) const;

  /// Total accumulated in bin i.
  double bin_sum(std::size_t i) const;

  /// Accumulated value per second in bin i.
  double rate_at(std::size_t i) const;

  /// Sum over all bins.
  double total() const;

 private:
  SimTime bin_width_;
  std::vector<double> bins_;
};

}  // namespace fmtcp
