// Invariant checking.
//
// FMTCP_CHECK is always on (simulations are cheap relative to the cost of a
// silently corrupted run); FMTCP_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fmtcp::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace fmtcp::detail

#define FMTCP_CHECK(expr)                                      \
  do {                                                         \
    if (!(expr)) {                                             \
      ::fmtcp::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                          \
  } while (false)

#ifdef NDEBUG
#define FMTCP_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define FMTCP_DCHECK(expr) FMTCP_CHECK(expr)
#endif
