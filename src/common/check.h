// Invariant checking.
//
// FMTCP_CHECK is always on (simulations are cheap relative to the cost of a
// silently corrupted run); FMTCP_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace fmtcp::detail {

/// Called (if set) just before a failed FMTCP_CHECK aborts, so sinks
/// with buffered output (the JSONL event timeline) can flush/fsync what
/// they have instead of losing the tail of a crashed run. Must be
/// async-signal-tolerant in spirit: no allocation, no throwing.
using CheckFailureHook = void (*)();
inline std::atomic<CheckFailureHook>& check_failure_hook() {
  static std::atomic<CheckFailureHook> hook{nullptr};
  return hook;
}

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  if (CheckFailureHook hook = check_failure_hook().load()) hook();
  std::abort();
}

}  // namespace fmtcp::detail

#define FMTCP_CHECK(expr)                                      \
  do {                                                         \
    if (!(expr)) {                                             \
      ::fmtcp::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                          \
  } while (false)

#ifdef NDEBUG
#define FMTCP_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define FMTCP_DCHECK(expr) FMTCP_CHECK(expr)
#endif
