#include "common/cpu_features.h"

namespace fmtcp {
namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  // The one sanctioned machine probe in the codebase: kernel dispatch.
  // Every kernel variant computes bit-identical XOR, so this cannot
  // change any simulation result — see docs/ARCHITECTURE.md §9.
  __builtin_cpu_init();        // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
  f.sse2 = __builtin_cpu_supports("sse2");        // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
  f.ssse3 = __builtin_cpu_supports("ssse3");      // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
  f.avx2 = __builtin_cpu_supports("avx2");        // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
  f.avx512f = __builtin_cpu_supports("avx512f");  // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
  f.avx512bw = __builtin_cpu_supports("avx512bw");      // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
  f.avx512vbmi = __builtin_cpu_supports("avx512vbmi");  // NOLINT-DETERMINISM(kernel dispatch only; all variants bit-identical)
#elif defined(__aarch64__)
  f.neon = true;  // Advanced SIMD is architecturally baseline on AArch64.
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

std::string cpu_features_string() {
  const CpuFeatures& f = cpu_features();
  std::string out;
  // Fixed order, narrowest first, so the string is stable on a given
  // machine and diffs between machines read as capability deltas.
  for (const auto& [on, name] : {
           std::pair<bool, const char*>{f.sse2, "sse2"},
           {f.ssse3, "ssse3"},
           {f.avx2, "avx2"},
           {f.avx512f, "avx512f"},
           {f.avx512bw, "avx512bw"},
           {f.avx512vbmi, "avx512vbmi"},
           {f.neon, "neon"},
       }) {
    if (!on) continue;
    if (!out.empty()) out += ',';
    out += name;
  }
  if (out.empty()) out = "none";
  return out;
}

}  // namespace fmtcp
