#include "common/flags.h"

#include <cstdlib>
#include <sstream>

namespace fmtcp {

FlagParser::FlagParser(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is another flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";  // Bare boolean.
    }
  }
}

bool FlagParser::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string FlagParser::get_string(const std::string& name,
                                   const std::string& fallback,
                                   const std::string& help) {
  registered_[name] = {fallback, help};
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double FlagParser::get_double(const std::string& name, double fallback,
                              const std::string& help) {
  std::ostringstream fallback_str;
  fallback_str << fallback;
  registered_[name] = {fallback_str.str(), help};
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::int64_t FlagParser::get_int(const std::string& name,
                                 std::int64_t fallback,
                                 const std::string& help) {
  registered_[name] = {std::to_string(fallback), help};
  const auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool FlagParser::get_bool(const std::string& name, bool fallback,
                          const std::string& help) {
  registered_[name] = {fallback ? "true" : "false", help};
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v.empty() || v == "1" || v == "true" || v == "yes";
}

std::vector<std::string> FlagParser::unknown_flags() const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (registered_.count(name) == 0) unknown.push_back(name);
  }
  return unknown;
}

std::string FlagParser::usage() const {
  std::ostringstream out;
  for (const auto& [name, info] : registered_) {
    out << "  --" << name << " (default: " << info.fallback << ")";
    if (!info.help.empty()) out << "  " << info.help;
    out << "\n";
  }
  return out.str();
}

}  // namespace fmtcp
