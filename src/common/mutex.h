// Capability-annotated mutex wrapper (see common/thread_annotations.h).
//
// fmtcp::Mutex is std::mutex plus the clang thread-safety capability
// attributes, so members declared FMTCP_GUARDED_BY(mutex_) are
// compile-time checked against it. MutexLock is the std::lock_guard
// analogue; CondVar pairs with Mutex the way std::condition_variable
// pairs with std::mutex (wait() must be called with the mutex held and
// returns with it held).
//
// All of the concurrency in this codebase is coarse-grained coordination
// — thread-pool queues, trace-registry bookkeeping, sink lists — so a
// plain std::mutex under the annotations is the whole story: no
// reader/writer locks, no recursion, no timed waits.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace fmtcp {

class FMTCP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FMTCP_ACQUIRE() { mutex_.lock(); }
  void unlock() FMTCP_RELEASE() { mutex_.unlock(); }
  bool try_lock() FMTCP_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// RAII lock for Mutex (std::lock_guard shape, annotated).
class FMTCP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FMTCP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() FMTCP_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with fmtcp::Mutex. The annotation contract:
/// wait() requires the mutex held and returns with it held — exactly the
/// window the analysis cannot see through (the wait releases and
/// re-acquires internally), hence the local analysis opt-outs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups possible; loop on the
  /// predicate (or use the predicate overload).
  void wait(Mutex& mutex) FMTCP_REQUIRES(mutex)
      FMTCP_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Caller still holds the mutex, as annotated.
  }

  // No predicate overload on purpose: a predicate lambda is analyzed
  // out of line, so its guarded reads would need their own annotation
  // escape. `while (!pred()) cv.wait(mutex);` keeps the reads inside
  // the scope the analysis can already prove holds the mutex.

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fmtcp
