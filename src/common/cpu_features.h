// Runtime CPU feature detection for kernel dispatch.
//
// Queried once (cached) at first use; the GF(2) kernel plane picks the
// widest available XOR kernel from this. Detection is inherently
// machine-dependent, which is why it lives behind one narrow, documented
// interface: every kernel variant is bit-identical XOR, so the selection
// can never change a simulation result — only how fast it is produced.
// tools/lint_determinism.py bans cpuid-style probes everywhere else.
#pragma once

#include <string>

namespace fmtcp {

struct CpuFeatures {
  bool sse2 = false;        ///< x86-64 baseline (always true there).
  bool ssse3 = false;       ///< PSHUFB — the GF(256) split-nibble multiply.
  bool avx2 = false;
  bool avx512f = false;     ///< AVX-512 Foundation (512-bit XOR).
  bool avx512bw = false;    ///< AVX-512 byte/word ops (512-bit shuffles).
  bool avx512vbmi = false;  ///< VPERMB — 64-entry byte permute for GF(256).
  bool neon = false;        ///< AArch64 baseline (always true there).
};

/// Detected features of the running CPU (cached after the first call;
/// thread-safe via static initialisation).
const CpuFeatures& cpu_features();

/// Deterministically ordered comma-separated feature list, e.g.
/// "sse2,avx2,avx512f" — recorded in BENCH_codec.json so regression
/// comparisons are like-with-like.
std::string cpu_features_string();

}  // namespace fmtcp
