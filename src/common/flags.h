// Minimal command-line flag parsing for the tools/ binaries.
//
// Accepts "--name=value", "--name value", and bare "--name" (boolean
// true). Flags are registered by the get_* accessors, which also collect
// help text so `usage()` and `unknown_flags()` work without a separate
// registration step.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fmtcp {

class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);

  /// True if --name was present on the command line.
  bool has(const std::string& name) const;

  // Each accessor registers the flag (for usage/unknown detection) and
  // returns the parsed value or `fallback`.
  std::string get_string(const std::string& name,
                         const std::string& fallback,
                         const std::string& help = "");
  double get_double(const std::string& name, double fallback,
                    const std::string& help = "");
  std::int64_t get_int(const std::string& name, std::int64_t fallback,
                       const std::string& help = "");
  /// Bare "--name" and "--name=true/1/yes" are true.
  bool get_bool(const std::string& name, bool fallback,
                const std::string& help = "");

  /// Arguments that were not flags.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags given on the command line that no accessor registered.
  std::vector<std::string> unknown_flags() const;

  /// One line per registered flag: "--name (default: X)  help".
  std::string usage() const;

  const std::string& program() const { return program_; }

 private:
  struct Registered {
    std::string fallback;
    std::string help;
  };

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::map<std::string, Registered> registered_;
};

}  // namespace fmtcp
