// Clang Thread Safety Analysis annotation macros.
//
// These wrap the [[clang::...]] capability attributes so lock discipline
// is declared in the code itself and re-proven on every compile:
//
//   class FMTCP_CAPABILITY("mutex") Mutex { ... };          (common/mutex.h)
//   std::deque<Task> queue_ FMTCP_GUARDED_BY(mutex_);
//   void drain_locked() FMTCP_REQUIRES(mutex_);
//
// Under clang with -Wthread-safety (the FMTCP_THREAD_SAFETY CMake option,
// driven by FMTCP_STATIC=1 tools/check.sh) a read or write of a
// FMTCP_GUARDED_BY member without its mutex held, or a call to a
// FMTCP_REQUIRES function without the named capability, is a
// compile-time error. Under GCC (which has no such analysis) every macro
// expands to nothing, so the annotations are free documentation.
//
// Naming follows the standard capability vocabulary (see the clang
// ThreadSafetyAnalysis docs); only the spellings used in this codebase
// are defined here.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FMTCP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef FMTCP_THREAD_ANNOTATION
#define FMTCP_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a type to be a capability (lockable). Argument is the
/// capability kind shown in diagnostics, e.g. "mutex".
#define FMTCP_CAPABILITY(x) FMTCP_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (std::lock_guard-shaped types).
#define FMTCP_SCOPED_CAPABILITY FMTCP_THREAD_ANNOTATION(scoped_lockable)

/// Member that may only be read or written while `x` is held.
#define FMTCP_GUARDED_BY(x) FMTCP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define FMTCP_PT_GUARDED_BY(x) FMTCP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the listed capabilities held (and
/// does not release them).
#define FMTCP_REQUIRES(...) \
  FMTCP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with the listed capabilities NOT held.
#define FMTCP_EXCLUDES(...) \
  FMTCP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the listed capabilities (empty list = `this`).
#define FMTCP_ACQUIRE(...) \
  FMTCP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities (empty list = `this`).
#define FMTCP_RELEASE(...) \
  FMTCP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define FMTCP_TRY_ACQUIRE(ret, ...) \
  FMTCP_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function returning a reference to the capability guarding it, so
/// accessor indirection does not defeat the analysis.
#define FMTCP_RETURN_CAPABILITY(x) \
  FMTCP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function manipulates locks in a pattern the
/// analysis cannot follow (condition-variable wait re-acquisition).
/// Every use carries a comment justifying why it is correct.
#define FMTCP_NO_THREAD_SAFETY_ANALYSIS \
  FMTCP_THREAD_ANNOTATION(no_thread_safety_analysis)
