// Running statistics used by the metrics module and the benches.
#pragma once

#include <cstddef>
#include <vector>

namespace fmtcp {

/// Single-pass mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact quantiles. Use for per-block delays
/// where the sample count is modest (thousands).
class SampleSet {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Exact quantile by linear interpolation, q in [0,1]. Requires samples.
  double quantile(double q) const;

  /// Mean absolute difference between consecutive samples (insertion
  /// order) — the block-jitter definition used in the evaluation.
  double mean_abs_delta() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace fmtcp
