#include "common/timeseries.h"

#include "common/check.h"

namespace fmtcp {

BinnedSeries::BinnedSeries(SimTime bin_width) : bin_width_(bin_width) {
  FMTCP_CHECK(bin_width > 0);
}

void BinnedSeries::add(SimTime t, double value) {
  FMTCP_CHECK(t >= 0);
  const auto idx = static_cast<std::size_t>(t / bin_width_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += value;
}

SimTime BinnedSeries::bin_start(std::size_t i) const {
  return static_cast<SimTime>(i) * bin_width_;
}

double BinnedSeries::bin_sum(std::size_t i) const {
  FMTCP_CHECK(i < bins_.size());
  return bins_[i];
}

double BinnedSeries::rate_at(std::size_t i) const {
  return bin_sum(i) / to_seconds(bin_width_);
}

double BinnedSeries::total() const {
  double s = 0.0;
  for (double b : bins_) s += b;
  return s;
}

}  // namespace fmtcp
