// Move-only callable wrapper for the event hot path.
//
// std::function requires its target to be copy-constructible, which rules
// out lambdas that capture a move-only net::Packet. std::move_only_function
// is C++23; this is the small subset the scheduler needs: void(), move-only,
// with inline storage so typical captures (a few pointers plus a packet)
// avoid a heap allocation per event.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fmtcp {

class UniqueFunction {
 public:
  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { steal(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(unsigned char* buf);
    void (*move)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char* buf);
  };

  /// Covers pointer/index captures (timers, pokes) without allocating.
  /// Larger captures (e.g. a moved-in packet) spill to the heap; keeping
  /// the wrapper small matters more, because the scheduler sifts whole
  /// entries through its binary heap on every push/pop.
  static constexpr std::size_t kInlineBytes = 48;

  template <typename Fn>
  static constexpr bool fits_inline =
      sizeof(Fn) <= kInlineBytes &&
      alignof(Fn) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](unsigned char* from, unsigned char* to) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(from));
        ::new (static_cast<void*>(to)) Fn(std::move(*f));
        f->~Fn();
      },
      [](unsigned char* buf) {
        std::launder(reinterpret_cast<Fn*>(buf))->~Fn();
      },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* buf) { (**reinterpret_cast<Fn**>(buf))(); },
      [](unsigned char* from, unsigned char* to) {
        *reinterpret_cast<Fn**>(to) = *reinterpret_cast<Fn**>(from);
      },
      [](unsigned char* buf) { delete *reinterpret_cast<Fn**>(buf); },
  };

  void steal(UniqueFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->move(other.buf_, buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace fmtcp
