// Cache-line-aligned storage for hot-path byte buffers.
//
// The GF(2) SIMD kernels (fountain/gf2_kernels.h) use unaligned-tolerant
// loads, so alignment is never a correctness requirement — but 64-byte
// alignment keeps the wide loads on the fast path and every payload on
// its own cache line. The BufferPool, symbol payloads, decoder row
// arenas, and M4R scratch tables all allocate through AlignedAllocator
// so the common case is aligned end to end (the "alignment contract",
// docs/ARCHITECTURE.md §9).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace fmtcp {

/// Alignment of every pooled payload buffer and kernel scratch area.
inline constexpr std::size_t kBufferAlignment = 64;

/// Minimal C++17 allocator handing out `Alignment`-aligned blocks.
/// Stateless: all instances compare equal, so containers move/swap
/// storage freely (buffer recycling relies on this).
template <typename T, std::size_t Alignment = kBufferAlignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0, "power of two");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// Payload buffer type: what the BufferPool recycles and what symbol
/// payloads travel in, sender to receiver. Moves preserve the
/// allocation, so alignment established at acquire() survives the whole
/// packet path.
using AlignedBytes =
    std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>>;

/// 64-bit word storage with the same alignment (decoder row arenas).
using AlignedWords =
    std::vector<std::uint64_t, AlignedAllocator<std::uint64_t>>;

/// True if `p` meets the buffer alignment contract.
inline bool is_buffer_aligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) %
          kBufferAlignment) == 0;
}

}  // namespace fmtcp
