#include "common/thread_pool.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "obs/trace/span.h"

namespace fmtcp {

ThreadPool::ThreadPool(unsigned threads) {
  FMTCP_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] {
      // Stable label for trace exports; the buffer outlives the thread
      // registration (the tracer keeps its own copy).
      char name[32];
      std::snprintf(name, sizeof(name), "pool-worker-%u", i);
      obs::trace::set_thread_name(name);
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  FMTCP_CHECK(task != nullptr);
  FMTCP_SPAN("threadpool.submit");
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait() {
  FMTCP_SPAN("threadpool.wait");
  MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) idle_.wait(mutex_);
}

unsigned ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 4 : n;
}

void ThreadPool::worker_loop() {
  for (;;) {
    // Stamp the gap between finishing one task and starting the next —
    // the worker-idle signal in sweep profiles. Recorded only once a
    // task arrives, so no span stays open across a post-wait() drain.
    const std::uint64_t idle_begin = obs::trace::clock_ns();
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_ready_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    obs::trace::record_complete("threadpool.idle", idle_begin,
                                obs::trace::clock_ns());
    {
      FMTCP_SPAN("threadpool.task");
      task();
    }
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace fmtcp
