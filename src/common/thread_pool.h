// Minimal fixed-size thread pool for embarrassingly parallel work
// (harness::SweepRunner). Tasks are closures; submission is cheap, and
// wait() blocks until everything submitted so far has finished. No
// futures, no task graph — the sweep layer owns result placement.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fmtcp {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads);
  /// Waits for queued work, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait();

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// std::thread::hardware_concurrency with a sane fallback when the
  /// runtime cannot tell (returns at least 1).
  static unsigned hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fmtcp
