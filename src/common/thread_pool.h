// Minimal fixed-size thread pool for embarrassingly parallel work
// (harness::SweepRunner). Tasks are closures; submission is cheap, and
// wait() blocks until everything submitted so far has finished. No
// futures, no task graph — the sweep layer owns result placement.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fmtcp {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads);
  /// Waits for queued work, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void submit(std::function<void()> task) FMTCP_EXCLUDES(mutex_);

  /// Blocks until every submitted task has completed.
  void wait() FMTCP_EXCLUDES(mutex_);

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// std::thread::hardware_concurrency with a sane fallback when the
  /// runtime cannot tell (returns at least 1).
  static unsigned hardware_threads();

 private:
  void worker_loop() FMTCP_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar work_ready_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ FMTCP_GUARDED_BY(mutex_);
  std::size_t in_flight_ FMTCP_GUARDED_BY(mutex_) = 0;
  bool stopping_ FMTCP_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace fmtcp
